// Distributed runtime: wire format, router fault injection, and LightSecAgg
// as communicating state machines (including the "delayed user" semantics
// the orchestrated implementation does not model).
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "field/random_field.h"
#include "runtime/machines.h"

namespace {

using namespace lsa::runtime;
using lsa::field::Fp32;
using rep = Fp32::rep;

TEST(Wire, SerializeDeserializeRoundTrip) {
  Message m;
  m.type = MsgType::kAggregatedShares;
  m.sender = 7;
  m.receiver = 12;
  m.round = 0xdeadbeefULL;
  m.payload = {0, 1, 4294967290u, 42};
  const auto frame = serialize(m);
  const auto back = deserialize(frame);
  EXPECT_EQ(back.type, m.type);
  EXPECT_EQ(back.sender, m.sender);
  EXPECT_EQ(back.receiver, m.receiver);
  EXPECT_EQ(back.round, m.round);
  EXPECT_EQ(back.payload, m.payload);
}

TEST(Wire, CorruptionIsDetected) {
  Message m;
  m.payload = {1, 2, 3};
  auto frame = serialize(m);
  frame[kHeaderBytes + 1] ^= 0x40;  // flip a payload bit
  EXPECT_THROW((void)deserialize(frame), lsa::ProtocolError);
}

TEST(Wire, TruncationIsDetected) {
  Message m;
  m.payload = {1, 2, 3};
  auto frame = serialize(m);
  frame.pop_back();
  EXPECT_THROW((void)deserialize(frame), lsa::ProtocolError);
}

TEST(Wire, NonCanonicalElementsRejected) {
  Message m;
  m.payload = {4294967295u};  // >= q = 2^32 - 5
  auto frame = serialize(m);
  EXPECT_THROW((void)deserialize(frame), lsa::ProtocolError);
}

TEST(Router, FifoDeliveryAndCrashSemantics) {
  Router router(3);
  Message a;
  a.sender = 0;
  a.receiver = 1;
  a.payload = {1};
  Message b = a;
  b.payload = {2};
  router.send(a);
  router.send(b);
  router.crash(0);
  Message late = a;
  late.payload = {3};
  router.send(late);  // dropped: sender is down

  Message got;
  ASSERT_TRUE(router.deliver_next(got));
  EXPECT_EQ(got.payload, std::vector<rep>{1});
  ASSERT_TRUE(router.deliver_next(got));
  EXPECT_EQ(got.payload, std::vector<rep>{2});
  EXPECT_FALSE(router.deliver_next(got));  // nothing else
}

TEST(Router, FaultHookCanDropFrames) {
  Router router(2);
  int count = 0;
  router.set_fault_hook([&count](std::vector<std::uint8_t>&) {
    return ++count % 2 == 0;  // drop every other frame
  });
  Message m;
  m.sender = 0;
  m.receiver = 1;
  for (int i = 0; i < 6; ++i) router.send(m);
  Message got;
  int delivered = 0;
  while (router.deliver_next(got)) ++delivered;
  EXPECT_EQ(delivered, 3);
}

lsa::protocol::Params net_params(std::size_t n, std::size_t t,
                                 std::size_t u, std::size_t d) {
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d;
  return p;
}

std::vector<std::vector<rep>> random_models(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> models(n);
  for (auto& m : models) m = lsa::field::uniform_vector<Fp32>(d, rng);
  return models;
}

std::vector<rep> sum_of(const std::vector<std::vector<rep>>& models,
                        const std::vector<std::uint32_t>& users) {
  std::vector<rep> s(models[0].size(), Fp32::zero);
  for (auto u : users) {
    lsa::field::add_inplace<Fp32>(std::span<rep>(s),
                                  std::span<const rep>(models[u]));
  }
  return s;
}

TEST(NetworkRound, NoDropsAggregatesEveryone) {
  Network net(net_params(6, 2, 4, 24), 5);
  auto models = random_models(6, 24, 6);
  auto result = net.run_round(0, models, {});
  std::vector<std::uint32_t> all = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(result, sum_of(models, all));
  // Every live user received the broadcast result.
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(net.user(i).last_result().has_value());
    EXPECT_EQ(*net.user(i).last_result(), result);
  }
}

TEST(NetworkRound, DelayedUsersAreStillIncluded) {
  // Users 1 and 4 crash AFTER their masked models arrive: the aggregate
  // must still include them — their masks are recovered from the encoded
  // shares the others hold. This is Theorem 1's "delayed, not dropped"
  // worst case, which the state-machine runtime models for real.
  Network net(net_params(7, 2, 5, 16), 7);
  auto models = random_models(7, 16, 8);
  auto result = net.run_round(0, models, {1, 4});
  std::vector<std::uint32_t> everyone = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(result, sum_of(models, everyone));
  // The crashed users never saw the result.
  EXPECT_FALSE(net.user(1).last_result().has_value());
  EXPECT_TRUE(net.user(0).last_result().has_value());
}

TEST(NetworkRound, TooManyCrashesFailLoudly) {
  Network net(net_params(6, 1, 5, 8), 9);
  auto models = random_models(6, 8, 10);
  // 5 = U survivors needed, but 2 crash -> only 4 responders.
  EXPECT_THROW((void)net.run_round(0, models, {0, 1}), lsa::ProtocolError);
}

TEST(NetworkRound, MultipleRoundsWithFreshMasksAndRejoins) {
  Network net(net_params(5, 1, 4, 12), 11);
  for (std::uint64_t round = 0; round < 4; ++round) {
    // The previous round's casualty rejoins (cross-device users churn).
    for (std::size_t i = 0; i < 5; ++i) net.router().revive(i);
    auto models = random_models(5, 12, 100 + round);
    auto result = net.run_round(round, models, {round % 5});
    // Crashed user is still included (delayed semantics).
    std::vector<std::uint32_t> all = {0, 1, 2, 3, 4};
    EXPECT_EQ(result, sum_of(models, all)) << "round " << round;
  }
  // Share stores must not grow without bound: users that crashed mid-
  // recovery keep at most the retention window's worth of stale shares
  // (purged at the next round start), everyone else is fully consumed.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(net.user(i).stored_shares(),
              2 * 5 * lsa::runtime::UserDevice::kShareRetentionRounds)
        << "user " << i;
  }
}

TEST(NetworkRound, ServerSeesOnlyMaskedUniformLookingData) {
  // Capture frames to the server during upload; payloads must differ from
  // the raw models (they are masked) — a wire-level privacy smoke check.
  lsa::protocol::Params p = net_params(4, 1, 3, 32);
  Network net(p, 13);
  auto models = random_models(4, 32, 14);

  bool saw_raw_model = false;
  net.router().set_fault_hook([&](std::vector<std::uint8_t>& frame) {
    Message m = deserialize(frame);
    if (m.type == MsgType::kMaskedModel) {
      if (m.payload == models[m.sender]) saw_raw_model = true;
    }
    return true;
  });
  (void)net.run_round(0, models, {});
  EXPECT_FALSE(saw_raw_model);
}

}  // namespace
