// Asynchronous LightSecAgg as distributed state machines (App. F through
// the wire-format router): mixed-staleness aggregation, delayed-user and
// crash semantics, share lifecycle, and multi-cycle operation.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "field/random_field.h"
#include "quant/staleness.h"
#include "runtime/async_machines.h"

namespace {

using Fp = lsa::runtime::AsyncNetwork::Fp;
using rep = Fp::rep;
using Arrival = lsa::runtime::AsyncNetwork::Arrival;

constexpr std::size_t kN = 10, kT = 2, kU = 7, kD = 32;
constexpr std::size_t kBufferK = 4;
constexpr std::uint64_t kCg = 1u << 6;

lsa::protocol::Params make_params() {
  lsa::protocol::Params p;
  p.num_users = kN;
  p.privacy = kT;
  p.dropout = kN - kU;
  p.target_survivors = kU;
  p.model_dim = kD;
  return p;
}

std::vector<rep> random_update(std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  return lsa::field::uniform_vector<Fp>(kD, rng);
}

/// Plaintext reference: sum_b w_b * update_b with the same quantized
/// staleness weights the protocol uses.
std::vector<rep> expected_weighted_sum(
    const std::vector<Arrival>& arrivals, std::uint64_t now,
    const lsa::quant::StalenessPolicy& policy) {
  std::vector<rep> out(kD, Fp::zero);
  for (const auto& a : arrivals) {
    const auto w = lsa::quant::quantized_staleness_weight(
        policy, now - a.born_round, kCg);
    lsa::field::axpy_inplace<Fp>(std::span<rep>(out), Fp::from_u64(w),
                                 std::span<const rep>(a.update));
  }
  return out;
}

TEST(AsyncRuntime, UniformStalenessMatchesPlainWeightedSum) {
  lsa::quant::StalenessPolicy constant{
      lsa::quant::StalenessKind::kConstant, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, constant, kCg, 3);

  std::vector<Arrival> arrivals;
  for (std::size_t b = 0; b < kBufferK; ++b) {
    arrivals.push_back({b, /*born_round=*/5, random_update(100 + b)});
  }
  const auto out = net.run_cycle(/*now=*/5, arrivals);
  EXPECT_EQ(out.weighted_sum, expected_weighted_sum(arrivals, 5, constant));
  EXPECT_EQ(out.weight_sum, kBufferK * kCg);  // s(0) = 1 exactly
}

TEST(AsyncRuntime, MixedStalenessPolyWeighting) {
  // Updates born at rounds 2, 4, 7, 8 aggregated at round 8 with
  // Poly(alpha=1): weights c_g/(1+tau), tau in {6, 4, 1, 0} — the exact
  // App. F.3.3 combination of shares generated in different rounds.
  lsa::quant::StalenessPolicy poly{
      lsa::quant::StalenessKind::kPolynomial, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, poly, kCg, 5);

  std::vector<Arrival> arrivals{{1, 2, random_update(201)},
                                {3, 4, random_update(202)},
                                {5, 7, random_update(203)},
                                {8, 8, random_update(204)}};
  const auto out = net.run_cycle(/*now=*/8, arrivals);
  EXPECT_EQ(out.weighted_sum, expected_weighted_sum(arrivals, 8, poly));
  // Weight sum: 64/7 + 64/5 + 64/2 + 64 -> llround: 9 + 13 + 32 + 64.
  EXPECT_EQ(out.weight_sum, 9u + 13u + 32u + 64u);
}

TEST(AsyncRuntime, ContributorCrashAfterUploadStillIncluded) {
  // The async "delayed user": its masked update is buffered, then it
  // crashes. The surviving users' weighted shares still cancel its mask.
  lsa::quant::StalenessPolicy constant{
      lsa::quant::StalenessKind::kConstant, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, constant, kCg, 7);

  std::vector<Arrival> arrivals;
  for (std::size_t b = 0; b < kBufferK; ++b) {
    arrivals.push_back({b, 3, random_update(300 + b)});
  }
  const auto out =
      net.run_cycle(/*now=*/4, arrivals, /*crash_before_recovery=*/{0, 1});
  EXPECT_EQ(out.weighted_sum, expected_weighted_sum(arrivals, 4, constant));
}

TEST(AsyncRuntime, TooFewReachableUsersAborts) {
  lsa::quant::StalenessPolicy constant{
      lsa::quant::StalenessKind::kConstant, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, constant, kCg, 9);
  std::vector<Arrival> arrivals;
  for (std::size_t b = 0; b < kBufferK; ++b) {
    arrivals.push_back({b, 1, random_update(400 + b)});
  }
  // Crash 4 users: only 6 < U = 7 can respond.
  EXPECT_THROW((void)net.run_cycle(1, arrivals, {0, 1, 2, 3}),
               lsa::ProtocolError);
}

TEST(AsyncRuntime, SharesAreConsumedAfterAggregation) {
  lsa::quant::StalenessPolicy constant{
      lsa::quant::StalenessKind::kConstant, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, constant, kCg, 11);
  std::vector<Arrival> arrivals;
  for (std::size_t b = 0; b < kBufferK; ++b) {
    arrivals.push_back({b, 2, random_update(500 + b)});
  }
  (void)net.run_cycle(2, arrivals);
  // Every user's store must be empty: all manifested shares were consumed.
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_EQ(net.user(j).stored_shares(), 0u) << "user " << j;
  }
}

TEST(AsyncRuntime, MultipleCyclesWithInterleavedTimestamps) {
  lsa::quant::StalenessPolicy poly{
      lsa::quant::StalenessKind::kPolynomial, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, poly, kCg, 13);

  for (std::uint64_t cycle = 0; cycle < 3; ++cycle) {
    const std::uint64_t now = 10 * (cycle + 1);
    std::vector<Arrival> arrivals;
    for (std::size_t b = 0; b < kBufferK; ++b) {
      arrivals.push_back({(2 * b + cycle) % kN, now - b,
                          random_update(600 + 10 * cycle + b)});
    }
    const auto out = net.run_cycle(now, arrivals);
    EXPECT_EQ(out.weighted_sum, expected_weighted_sum(arrivals, now, poly))
        << "cycle " << cycle;
  }
}

TEST(AsyncRuntime, ResultBroadcastReachesEveryUser) {
  lsa::quant::StalenessPolicy constant{
      lsa::quant::StalenessKind::kConstant, 1.0};
  lsa::runtime::AsyncNetwork net(make_params(), kBufferK, constant, kCg, 15);
  std::vector<Arrival> arrivals;
  for (std::size_t b = 0; b < kBufferK; ++b) {
    arrivals.push_back({b + 2, 6, random_update(700 + b)});
  }
  const auto out = net.run_cycle(6, arrivals);
  for (std::size_t j = 0; j < kN; ++j) {
    ASSERT_TRUE(net.user(j).last_result().has_value()) << j;
    EXPECT_EQ(*net.user(j).last_result(), out.weighted_sum) << j;
  }
}

}  // namespace
