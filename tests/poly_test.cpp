// Fast polynomial toolkit: division invariants, power-series inversion,
// subproduct-tree evaluation/interpolation against naive references.
// Field-generic (typed over Goldilocks and Fp61) so the fast paths and the
// schoolbook fallbacks are both exercised.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "coding/poly.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using lsa::field::Fp61;
using lsa::field::Goldilocks;

template <class F>
class PolyToolkit : public ::testing::Test {};

using PolyFields = ::testing::Types<Goldilocks, Fp61>;
TYPED_TEST_SUITE(PolyToolkit, PolyFields);

template <class F>
std::vector<typename F::rep> random_poly(std::size_t n, std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  auto v = lsa::field::uniform_vector<F>(n, rng);
  if (!v.empty() && v.back() == F::zero) v.back() = F::one;  // keep degree
  return v;
}

template <class F>
std::vector<typename F::rep> distinct_points(std::size_t n) {
  std::vector<typename F::rep> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = F::from_u64(3 * i + 1);  // distinct, nonzero
  }
  return xs;
}

TYPED_TEST(PolyToolkit, DerivativeOfProductRule) {
  using F = TypeParam;
  using rep = typename F::rep;
  const auto a = random_poly<F>(9, 1);
  const auto b = random_poly<F>(7, 2);
  const auto ab = lsa::coding::polymul<F>(std::span<const rep>(a),
                                          std::span<const rep>(b));
  // (ab)' == a'b + ab'
  const auto lhs = lsa::coding::poly_derivative<F>(std::span<const rep>(ab));
  const auto da = lsa::coding::poly_derivative<F>(std::span<const rep>(a));
  const auto db = lsa::coding::poly_derivative<F>(std::span<const rep>(b));
  const auto rhs = lsa::coding::poly_add<F>(
      std::span<const rep>(lsa::coding::polymul<F>(std::span<const rep>(da),
                                                   std::span<const rep>(b))),
      std::span<const rep>(lsa::coding::polymul<F>(std::span<const rep>(a),
                                                   std::span<const rep>(db))));
  EXPECT_EQ(lhs, rhs);
}

TYPED_TEST(PolyToolkit, DivRemIdentityAcrossSizeMixes) {
  using F = TypeParam;
  using rep = typename F::rep;
  for (const auto& [na, nb] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {5, 9},      // deg a < deg b: q == 0
        {9, 5},      // small: schoolbook path
        {40, 7},
        {120, 40},   // large: Newton path
        {300, 150},
        {257, 19}}) {
    const auto a = random_poly<F>(na, 100 + na);
    const auto b = random_poly<F>(nb, 200 + nb);
    const auto [q, r] = lsa::coding::poly_divrem<F>(std::span<const rep>(a),
                                                    std::span<const rep>(b));
    // a == q*b + r and deg r < deg b.
    EXPECT_LT(r.size(), b.size());
    const auto qb = lsa::coding::polymul<F>(std::span<const rep>(q),
                                            std::span<const rep>(b));
    auto reconstructed = lsa::coding::poly_add<F>(std::span<const rep>(qb),
                                                  std::span<const rep>(r));
    std::vector<rep> a_trim(a);
    lsa::coding::poly_trim<F>(a_trim);
    EXPECT_EQ(reconstructed, a_trim) << na << "/" << nb;
  }
}

TYPED_TEST(PolyToolkit, DivRemByZeroThrows) {
  using F = TypeParam;
  using rep = typename F::rep;
  const auto a = random_poly<F>(5, 1);
  const std::vector<rep> zero;
  EXPECT_THROW((void)lsa::coding::poly_divrem<F>(std::span<const rep>(a),
                                                 std::span<const rep>(zero)),
               lsa::CodingError);
}

TYPED_TEST(PolyToolkit, PowerSeriesInverse) {
  using F = TypeParam;
  using rep = typename F::rep;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{17},
                              std::size_t{64}, std::size_t{200}}) {
    const auto a = random_poly<F>(50, 300 + k);
    ASSERT_NE(a[0], F::zero);
    const auto b =
        lsa::coding::poly_inverse_mod_xk<F>(std::span<const rep>(a), k);
    auto prod = lsa::coding::polymul<F>(std::span<const rep>(a),
                                        std::span<const rep>(b));
    prod.resize(k);
    EXPECT_EQ(prod[0], F::one) << "k=" << k;
    for (std::size_t i = 1; i < k; ++i) {
      EXPECT_EQ(prod[i], F::zero) << "k=" << k << " i=" << i;
    }
  }
}

TYPED_TEST(PolyToolkit, PowerSeriesInverseRequiresUnitConstantTerm) {
  using F = TypeParam;
  using rep = typename F::rep;
  std::vector<rep> a{F::zero, F::one};
  EXPECT_THROW(
      (void)lsa::coding::poly_inverse_mod_xk<F>(std::span<const rep>(a), 4),
      lsa::CodingError);
}

TYPED_TEST(PolyToolkit, SubproductTreeRootIsMonicWithCorrectRoots) {
  using F = TypeParam;
  using rep = typename F::rep;
  const auto xs = distinct_points<F>(13);
  lsa::coding::SubproductTree<F> tree{std::span<const rep>(xs)};
  const auto& m = tree.root();
  EXPECT_EQ(m.size(), xs.size() + 1);  // degree n
  EXPECT_EQ(m.back(), F::one);         // monic
  for (const rep x : xs) {
    EXPECT_EQ(lsa::coding::poly_eval<F>(std::span<const rep>(m), x), F::zero);
  }
  // Nonroot stays nonzero.
  EXPECT_NE(lsa::coding::poly_eval<F>(std::span<const rep>(m),
                                      F::from_u64(999983)),
            F::zero);
}

TYPED_TEST(PolyToolkit, FastMultipointEvalMatchesHorner) {
  using F = TypeParam;
  using rep = typename F::rep;
  for (const auto& [npoints, deg] :
       {std::pair<std::size_t, std::size_t>{1, 5},
        {2, 1},
        {7, 7},      // odd point count: carry-through nodes
        {16, 40},    // poly much larger than tree
        {33, 10},
        {100, 99}}) {
    const auto xs = distinct_points<F>(npoints);
    const auto f = random_poly<F>(deg, 400 + npoints);
    lsa::coding::SubproductTree<F> tree{std::span<const rep>(xs)};
    const auto fast = tree.evaluate(std::span<const rep>(f));
    ASSERT_EQ(fast.size(), npoints);
    for (std::size_t j = 0; j < npoints; ++j) {
      EXPECT_EQ(fast[j],
                lsa::coding::poly_eval<F>(std::span<const rep>(f), xs[j]))
          << "points=" << npoints << " deg=" << deg << " j=" << j;
    }
  }
}

TYPED_TEST(PolyToolkit, FastInterpolationMatchesNaive) {
  using F = TypeParam;
  using rep = typename F::rep;
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{8}, std::size_t{21},
                              std::size_t{64}, std::size_t{101}}) {
    const auto xs = distinct_points<F>(n);
    lsa::common::Xoshiro256ss rng(500 + n);
    const auto ys = lsa::field::uniform_vector<F>(n, rng);
    lsa::coding::SubproductTree<F> tree{std::span<const rep>(xs)};
    const auto fast = tree.interpolate(std::span<const rep>(ys));
    const auto naive = lsa::coding::interpolate_naive<F>(
        std::span<const rep>(xs), std::span<const rep>(ys));
    EXPECT_EQ(fast, naive) << "n=" << n;
    // And it actually passes through the points.
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(lsa::coding::poly_eval<F>(std::span<const rep>(fast), xs[j]),
                ys[j]);
    }
  }
}

TYPED_TEST(PolyToolkit, InterpolateEvalRoundTrip) {
  using F = TypeParam;
  using rep = typename F::rep;
  // evaluate(interpolate(ys)) == ys — the codec's core identity.
  const std::size_t n = 47;
  const auto xs = distinct_points<F>(n);
  lsa::common::Xoshiro256ss rng(61);
  const auto ys = lsa::field::uniform_vector<F>(n, rng);
  lsa::coding::SubproductTree<F> tree{std::span<const rep>(xs)};
  const auto f = tree.interpolate(std::span<const rep>(ys));
  EXPECT_LE(f.size(), n);  // degree < n
  EXPECT_EQ(tree.evaluate(std::span<const rep>(f)), ys);
}

TYPED_TEST(PolyToolkit, TreeRejectsDuplicatePoints) {
  using F = TypeParam;
  using rep = typename F::rep;
  std::vector<rep> xs{1, 2, 1};
  EXPECT_THROW(lsa::coding::SubproductTree<F> tree{std::span<const rep>(xs)},
               lsa::CodingError);
}

TYPED_TEST(PolyToolkit, EvaluateZeroAndConstantPolynomials) {
  using F = TypeParam;
  using rep = typename F::rep;
  const auto xs = distinct_points<F>(9);
  lsa::coding::SubproductTree<F> tree{std::span<const rep>(xs)};
  const std::vector<rep> zero;
  for (const rep v : tree.evaluate(std::span<const rep>(zero))) {
    EXPECT_EQ(v, F::zero);
  }
  const std::vector<rep> c{42};
  for (const rep v : tree.evaluate(std::span<const rep>(c))) {
    EXPECT_EQ(v, F::from_u64(42));
  }
}

}  // namespace
