// Cross-module integration: federated averaging driven through the
// distributed state-machine runtime, and full FL training with each
// baseline protocol as the aggregator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "field/fp.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/model.h"
#include "protocol/secagg.h"
#include "protocol/secagg_plus.h"
#include "quant/quantizer.h"
#include "runtime/machines.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;

TEST(Integration, QuantizedAveragingThroughStateMachines) {
  // Real-valued model averaging over the serialized wire: quantize, run a
  // full state-machine round (with one delayed user), demap, average.
  const std::size_t n = 5, d = 30;
  lsa::protocol::Params p{.num_users = n, .privacy = 1, .dropout = 1,
                          .target_survivors = 4, .model_dim = d};
  lsa::runtime::Network net(p, 3);

  lsa::common::Xoshiro256ss rng(4);
  lsa::quant::Quantizer<Fp32> quant(1u << 16);
  std::vector<std::vector<double>> real_models(n);
  std::vector<std::vector<rep>> field_models(n);
  for (std::size_t i = 0; i < n; ++i) {
    real_models[i].resize(d);
    for (auto& v : real_models[i]) v = rng.next_gaussian();
    field_models[i] =
        quant.quantize_vector(std::span<const double>(real_models[i]), rng);
  }

  // User 2 crashes after upload — still included (delayed semantics).
  const auto agg = net.run_round(0, field_models, {2});

  std::vector<double> expected(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < d; ++k) expected[k] += real_models[i][k];
  }
  for (std::size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(quant.dequantize_scaled(agg[k], double(n)),
                expected[k] / double(n), 1e-3);
  }
}

TEST(Integration, FedAvgTrainsThroughSecAgg) {
  auto ds = lsa::fl::SyntheticDataset::mnist_like(400, 150, 60);
  auto parts = ds.partition_iid(6, 61);
  lsa::fl::LogisticRegression model(784, 10, 62);

  lsa::protocol::Params p{.num_users = 6, .privacy = 2, .dropout = 1,
                          .target_survivors = 0, .model_dim = 7850};
  lsa::protocol::SecAgg<Fp32> proto(p, 63);

  lsa::fl::FedAvgConfig cfg;
  cfg.rounds = 4;
  cfg.dropout_rate = 0.15;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.1};
  cfg.seed = 64;
  auto rec = lsa::fl::run_fedavg(model, ds, parts, cfg,
                                 lsa::fl::secure_aggregate(proto, 1u << 16, 65));
  EXPECT_GT(rec.back().test_accuracy, 0.5);
}

TEST(Integration, FedAvgTrainsThroughSecAggPlus) {
  auto ds = lsa::fl::SyntheticDataset::mnist_like(400, 150, 70);
  auto parts = ds.partition_iid(8, 71);
  lsa::fl::LogisticRegression model(784, 10, 72);

  lsa::protocol::Params p{.num_users = 8, .privacy = 2, .dropout = 1,
                          .target_survivors = 0, .model_dim = 7850};
  lsa::protocol::SecAggPlus<Fp32> proto(p, 73, nullptr, /*degree=*/6,
                                        /*threshold=*/2);
  lsa::fl::FedAvgConfig cfg;
  cfg.rounds = 4;
  cfg.dropout_rate = 0.1;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.1};
  cfg.seed = 74;
  auto rec = lsa::fl::run_fedavg(model, ds, parts, cfg,
                                 lsa::fl::secure_aggregate(proto, 1u << 16, 75));
  EXPECT_GT(rec.back().test_accuracy, 0.5);
}

TEST(Integration, NonIidTrainingStillConverges) {
  // Shard partition (2 classes per user): the heterogeneous regime the
  // paper's FEMNIST experiments live in.
  auto ds = lsa::fl::SyntheticDataset::mnist_like(800, 200, 80);
  auto parts = ds.partition_shards(8, 2, 81);
  lsa::fl::LogisticRegression model(784, 10, 82);
  lsa::fl::FedAvgConfig cfg;
  cfg.rounds = 8;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.05};
  cfg.seed = 83;
  auto rec = lsa::fl::run_fedavg(model, ds, parts, cfg,
                                 lsa::fl::plaintext_average());
  EXPECT_GT(rec.back().test_accuracy, 0.4);  // above chance despite non-IID
}

}  // namespace
