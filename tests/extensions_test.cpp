// Extension features: verified (error-detecting) decoding, weighted secure
// aggregation (Remark 3), and quantizer auto-tuning.
#include <gtest/gtest.h>

#include <cmath>

#include "coding/mask_codec.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "fl/secure_adapter.h"
#include "protocol/lightsecagg.h"
#include "quant/autotune.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;

TEST(VerifiedDecode, AgreesOnHonestShares) {
  lsa::common::Xoshiro256ss rng(1);
  lsa::coding::MaskCodec<Fp32> codec(/*N=*/8, /*U=*/5, /*T=*/2, /*d=*/21);
  auto mask = lsa::field::uniform_vector<Fp32>(21, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);

  std::vector<std::size_t> owners = {0, 1, 2, 3, 4, 5, 6};
  std::vector<std::vector<rep>> sub;
  for (auto o : owners) sub.push_back(shares[o]);
  EXPECT_EQ(codec.decode_aggregate_verified(owners, sub), mask);
}

TEST(VerifiedDecode, DetectsSingleTamperedShare) {
  lsa::common::Xoshiro256ss rng(2);
  lsa::coding::MaskCodec<Fp32> codec(8, 5, 2, 21);
  auto mask = lsa::field::uniform_vector<Fp32>(21, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);

  std::vector<std::size_t> owners = {0, 1, 2, 3, 4, 5, 6};
  std::vector<std::vector<rep>> sub;
  for (auto o : owners) sub.push_back(shares[o]);
  // A Byzantine responder perturbs one element of its aggregated share.
  sub[3][0] = Fp32::add(sub[3][0], 1);
  EXPECT_THROW((void)codec.decode_aggregate_verified(owners, sub),
               lsa::CodingError);
}

TEST(VerifiedDecode, DetectsTamperingInEverySharePosition) {
  lsa::common::Xoshiro256ss rng(3);
  lsa::coding::MaskCodec<Fp32> codec(7, 4, 1, 12);
  auto mask = lsa::field::uniform_vector<Fp32>(12, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);
  std::vector<std::size_t> owners = {0, 1, 2, 3, 4, 5};
  for (std::size_t victim = 0; victim < owners.size(); ++victim) {
    std::vector<std::vector<rep>> sub;
    for (auto o : owners) sub.push_back(shares[o]);
    sub[victim][2] = Fp32::add(sub[victim][2], 12345);
    EXPECT_THROW((void)codec.decode_aggregate_verified(owners, sub),
                 lsa::CodingError)
        << "tampered position " << victim;
  }
}

TEST(VerifiedDecode, NeedsRedundancy) {
  lsa::common::Xoshiro256ss rng(4);
  lsa::coding::MaskCodec<Fp32> codec(6, 5, 2, 10);
  auto mask = lsa::field::uniform_vector<Fp32>(10, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);
  std::vector<std::size_t> owners = {0, 1, 2, 3, 4};  // exactly U
  std::vector<std::vector<rep>> sub;
  for (auto o : owners) sub.push_back(shares[o]);
  EXPECT_THROW((void)codec.decode_aggregate_verified(owners, sub),
               lsa::ProtocolError);
}

TEST(WeightedAggregation, MatchesPlaintextWeightedAverage) {
  const std::size_t n = 6, d = 40;
  lsa::protocol::Params p{.num_users = n, .privacy = 2, .dropout = 1,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::LightSecAgg<Fp32> proto(p, 5);

  lsa::common::Xoshiro256ss rng(6);
  std::vector<std::vector<double>> locals(n);
  for (auto& v : locals) {
    v.resize(d);
    for (auto& x : v) x = rng.next_gaussian();
  }
  std::vector<std::uint64_t> samples = {10, 250, 3, 77, 120, 40};
  std::vector<bool> dropped(n, false);
  dropped[2] = true;

  auto got = lsa::fl::secure_weighted_average<Fp32>(proto, locals, samples,
                                                    dropped, 1u << 16, rng);

  std::vector<double> expected(d, 0.0);
  double wsum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dropped[i]) continue;
    wsum += static_cast<double>(samples[i]);
    for (std::size_t k = 0; k < d; ++k) {
      expected[k] += static_cast<double>(samples[i]) * locals[i][k];
    }
  }
  for (std::size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(got[k], expected[k] / wsum, 1e-3) << "coord " << k;
  }
}

TEST(WeightedAggregation, EqualWeightsReduceToPlainAverage) {
  const std::size_t n = 5, d = 16;
  lsa::protocol::Params p{.num_users = n, .privacy = 1, .dropout = 1,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::LightSecAgg<Fp32> proto_w(p, 7);
  lsa::protocol::LightSecAgg<Fp32> proto_u(p, 7);

  lsa::common::Xoshiro256ss rng(8);
  std::vector<std::vector<double>> locals(n);
  for (auto& v : locals) {
    v.resize(d);
    for (auto& x : v) x = rng.next_gaussian();
  }
  std::vector<bool> dropped(n, false);
  std::vector<std::uint64_t> ones(n, 1);

  lsa::common::Xoshiro256ss rng_a(9), rng_b(9);
  auto weighted = lsa::fl::secure_weighted_average<Fp32>(
      proto_w, locals, ones, dropped, 1u << 16, rng_a);
  auto plain = lsa::fl::secure_average<Fp32>(proto_u, locals, dropped,
                                             1u << 16, rng_b);
  for (std::size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(weighted[k], plain[k], 1e-4);
  }
}

TEST(Autotune, PicksPowerOfTwoWithinHeadroom) {
  lsa::quant::AutotuneConfig cfg;
  cfg.summands = 10;
  cfg.max_weight = 64;
  cfg.safety_margin = 4.0;
  const auto c = lsa::quant::pick_levels<Fp32>(/*max_abs=*/0.5, cfg);
  EXPECT_EQ(std::popcount(c), 1);  // power of two
  // Bound holds with margin:
  EXPECT_LT(10.0 * 64 * static_cast<double>(c) * 0.5 * 4.0,
            static_cast<double>(Fp32::modulus) / 2.0 * 1.0001);
  // And c is maximal: doubling it violates the bound.
  EXPECT_GE(10.0 * 64 * static_cast<double>(2 * c) * 0.5 * 4.0,
            static_cast<double>(Fp32::modulus) / 2.0 * 0.9999);
}

TEST(Autotune, DegeneratesGracefully) {
  lsa::quant::AutotuneConfig cfg;
  cfg.summands = 1000000;
  cfg.max_weight = 1u << 20;
  const auto c = lsa::quant::pick_levels<Fp32>(1e6, cfg);
  EXPECT_EQ(c, cfg.min_levels);  // no safe level exists -> floor
}

TEST(Autotune, ScalesInverselyWithMagnitude) {
  lsa::quant::AutotuneConfig cfg;
  cfg.summands = 10;
  cfg.max_weight = 1;
  const auto small = lsa::quant::pick_levels<Fp32>(0.01, cfg);
  const auto large = lsa::quant::pick_levels<Fp32>(10.0, cfg);
  EXPECT_GT(small, large);
  EXPECT_NEAR(std::log2(double(small) / double(large)), 10.0, 1.0);
}

TEST(Autotune, MaxAbsHelper) {
  std::vector<double> xs = {0.1, -2.5, 1.0};
  EXPECT_DOUBLE_EQ(lsa::quant::max_abs(xs), 2.5);
}

}  // namespace
