// Stochastic quantization: unbiasedness (Lemma 2), variance bound, field
// embedding, staleness functions (eq. 34).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "field/fp.h"
#include "quant/quantizer.h"
#include "quant/staleness.h"

namespace {

using lsa::field::Fp32;

TEST(StochasticRound, ExactIntegersAreFixedPoints) {
  lsa::common::Xoshiro256ss rng(1);
  for (std::int64_t v : {-5, -1, 0, 1, 42}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(lsa::quant::stochastic_round(static_cast<double>(v), rng), v);
    }
  }
}

TEST(StochasticRound, UnbiasedWithQuarterVarianceBound) {
  // Lemma 2: E[Q_c(x)] = x and Var <= 1/(4c^2); at integer scale this is
  // E[round(y)] = y and Var <= 1/4.
  lsa::common::Xoshiro256ss rng(2);
  for (double y : {0.25, 0.5, 0.75, -1.3, 3.9}) {
    lsa::common::RunningStat stat;
    constexpr int kTrials = 40000;
    for (int i = 0; i < kTrials; ++i) {
      stat.add(static_cast<double>(lsa::quant::stochastic_round(y, rng)));
    }
    EXPECT_NEAR(stat.mean(), y, 0.02) << "y=" << y;
    EXPECT_LE(stat.variance(), 0.26) << "y=" << y;
  }
}

TEST(Quantizer, RoundTripErrorBoundedByOneLevel) {
  lsa::common::Xoshiro256ss rng(3);
  lsa::quant::Quantizer<Fp32> q(1u << 16);
  for (int i = 0; i < 2000; ++i) {
    const double x = (rng.next_double() - 0.5) * 20.0;
    const double back = q.dequantize(q.quantize(x, rng));
    EXPECT_NEAR(back, x, 1.0 / (1 << 16) + 1e-12);
  }
}

TEST(Quantizer, AggregationInFieldMatchesRealSum) {
  // Quantize K vectors, sum in the field, demap: must equal the real sum
  // within K quantization steps per coordinate.
  lsa::common::Xoshiro256ss rng(4);
  constexpr std::size_t k = 10, d = 50;
  constexpr std::uint64_t c = 1u << 12;
  lsa::quant::Quantizer<Fp32> q(c);
  std::vector<double> real_sum(d, 0.0);
  std::vector<Fp32::rep> field_sum(d, Fp32::zero);
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<double> x(d);
    for (auto& v : x) v = (rng.next_double() - 0.5) * 4.0;
    for (std::size_t j = 0; j < d; ++j) real_sum[j] += x[j];
    auto qx = q.quantize_vector(std::span<const double>(x), rng);
    for (std::size_t j = 0; j < d; ++j) {
      field_sum[j] = Fp32::add(field_sum[j], qx[j]);
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(q.dequantize(field_sum[j]), real_sum[j],
                static_cast<double>(k) / c + 1e-9);
  }
}

TEST(Quantizer, ScaledDequantizeAverages) {
  lsa::quant::Quantizer<Fp32> q(100);
  // phi(300) / (100 * 3) = 1.0
  EXPECT_DOUBLE_EQ(q.dequantize_scaled(Fp32::from_i64(300), 3.0), 1.0);
  EXPECT_DOUBLE_EQ(q.dequantize_scaled(Fp32::from_i64(-300), 3.0), -1.0);
  EXPECT_THROW((void)q.dequantize_scaled(1, 0.0), lsa::QuantError);
}

TEST(Quantizer, RejectsOutOfRangeValues) {
  lsa::common::Xoshiro256ss rng(5);
  lsa::quant::Quantizer<Fp32> q(1u << 16);
  EXPECT_THROW((void)q.quantize(1e30, rng), lsa::QuantError);
  EXPECT_THROW(lsa::quant::Quantizer<Fp32>(0), lsa::QuantError);
}

TEST(Quantizer, WrapAroundAtHugeCl) {
  // Fig. 12's failure mode: c_l so large that K summed updates overflow
  // q/2 and demap to the wrong sign. Verify the mechanism exists (this is
  // *why* the paper tunes c_l): with c = 2^29, four values of 1.0 summed
  // reach 2^31 > (q-1)/2 and wrap to a negative demap.
  lsa::common::Xoshiro256ss rng(6);
  lsa::quant::Quantizer<Fp32> q(1u << 29);
  const auto a = q.quantize(1.0, rng);
  auto s = Fp32::add(a, a);
  s = Fp32::add(s, s);  // 4 * 2^29 = 2^31
  EXPECT_LT(q.dequantize(s), 0.0);
  // A single value at this scale is still fine — the guard in quantize()
  // rejects values that could not even be stored individually.
  EXPECT_DOUBLE_EQ(q.dequantize(a), 1.0);
  EXPECT_THROW((void)q.quantize(8.0, rng), lsa::QuantError);
}

TEST(Staleness, RealWeightsMatchPaperDefinitions) {
  lsa::quant::StalenessPolicy constant{lsa::quant::StalenessKind::kConstant,
                                       1.0};
  lsa::quant::StalenessPolicy poly{lsa::quant::StalenessKind::kPolynomial,
                                   1.0};
  EXPECT_DOUBLE_EQ(constant.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(constant.weight(10), 1.0);
  EXPECT_DOUBLE_EQ(poly.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(poly.weight(1), 0.5);
  EXPECT_DOUBLE_EQ(poly.weight(3), 0.25);
  // Monotone non-increasing.
  for (std::uint64_t tau = 0; tau < 20; ++tau) {
    EXPECT_GE(poly.weight(tau), poly.weight(tau + 1));
  }
}

TEST(Staleness, QuantizedWeightsAreConsistentIntegers) {
  lsa::quant::StalenessPolicy poly{lsa::quant::StalenessKind::kPolynomial,
                                   1.0};
  const std::uint64_t c_g = 1u << 6;
  EXPECT_EQ(lsa::quant::quantized_staleness_weight(poly, 0, c_g), c_g);
  EXPECT_EQ(lsa::quant::quantized_staleness_weight(poly, 1, c_g), c_g / 2);
  // Deterministic: same input -> same weight (server and users must agree).
  for (std::uint64_t tau = 0; tau < 12; ++tau) {
    EXPECT_EQ(lsa::quant::quantized_staleness_weight(poly, tau, c_g),
              lsa::quant::quantized_staleness_weight(poly, tau, c_g));
  }
}

}  // namespace
