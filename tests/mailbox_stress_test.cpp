// Mailbox stress: hammers concurrent crash/revive/send/recv on ONE
// receiver, under both mailbox strategies. Built for the TSAN CI job —
// TSAN's happens-before tracking turns any lost synchronization in the
// lock-free ring, the parked-waiter protocol, or the crash-fence gate into
// a hard failure — but the test also asserts functional invariants that
// hold in any build:
//
//   * frame conservation: every send_row call is eventually accounted as
//     delivered or dropped, never lost and never duplicated;
//   * per-link ordering: the sequence numbers a receiver observes from one
//     sender are strictly increasing (crashes may punch holes, never
//     reorder);
//   * crash fencing: after the chaos stops and the receiver is revived, a
//     full drain leaves the mailbox idle and the pool with zero
//     outstanding buffers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "transport/concurrent_router.h"
#include "transport/mpsc_ring.h"

namespace {

using namespace lsa::transport;
using lsa::field::Fp32;
using lsa::runtime::MsgType;
using rep = Fp32::rep;

// ------------------------------------------------------------- ring unit

TEST(MpscRing, ExactLogicalCapacityAndFifoPerProducer) {
  BufferPool pool;
  MpscRing ring(/*capacity=*/3);  // physical rounds up to 4; logical stays 3
  EXPECT_EQ(ring.capacity(), 3u);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(ring.try_push(pool.acquire(8)));
  }
  EXPECT_FALSE(ring.try_push(pool.acquire(8)));  // exact bound, not 4
  BufferRef out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  EXPECT_TRUE(ring.try_push(pool.acquire(8)));  // room re-opens
  while (ring.try_pop(out)) out.reset();
  EXPECT_TRUE(ring.empty_approx());
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(MpscRing, ConcurrentProducersPreserveProgramOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 2000;
  BufferPool pool;
  MpscRing ring(64);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint32_t k = 0; k < kPerProducer; ++k) {
        BufferRef buf = pool.acquire(8);
        auto words = buf.words();
        words[0] = static_cast<std::uint32_t>(p);
        words[1] = k;
        while (!ring.try_push(std::move(buf))) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint32_t> next(kProducers, 0);
  std::size_t got = 0;
  BufferRef out;
  while (got < kProducers * kPerProducer) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    const auto words = out.words();
    ASSERT_LT(words[0], kProducers);
    EXPECT_EQ(words[1], next[words[0]]) << "producer " << words[0];
    next[words[0]] = words[1] + 1;
    out.reset();
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.empty_approx());
  EXPECT_EQ(pool.outstanding(), 0u);
}

// ------------------------------------------------------------ chaos sweep

void hammer_one_receiver(MailboxStrategy strategy) {
  SCOPED_TRACE(to_string(strategy));
  constexpr std::size_t kSenders = 3;
  constexpr std::uint32_t kFramesPerSender = 1500;
  constexpr std::uint32_t kCrashCycles = 60;
  ConcurrentRouter router(kSenders + 1, /*queue_capacity=*/8, strategy);
  const std::uint32_t receiver = kSenders;

  std::vector<std::thread> senders;
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (std::uint32_t k = 0; k < kFramesPerSender; ++k) {
        const std::vector<rep> payload = {s, k};
        router.send_row(MsgType::kMaskedModel, s, receiver, 0,
                        std::span<const rep>(payload));
      }
    });
  }

  std::atomic<bool> stop{false};
  std::vector<std::uint32_t> next_min(kSenders, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    Inbound in;
    while (!stop.load(std::memory_order_acquire)) {
      if (router.recv_wait(receiver, in, std::chrono::milliseconds(1))) {
        const std::uint32_t s = in.view.payload[0];
        const std::uint32_t k = in.view.payload[1];
        ASSERT_LT(s, kSenders);
        // Per-link order: strictly increasing, holes allowed (crash drops).
        ASSERT_GE(k, next_min[s]) << "reordered frame from sender " << s;
        next_min[s] = k + 1;
        in.buf.reset();
        ++received;
      }
    }
  });

  // Chaos: crash/revive the receiver while senders and consumer run. Each
  // crash() must return with the mailbox fenced empty.
  for (std::uint32_t c = 0; c < kCrashCycles; ++c) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    router.crash(receiver);
    Inbound in;
    EXPECT_FALSE(router.try_recv(receiver, in));  // down => nothing delivered
    router.revive(receiver);
  }

  for (auto& t : senders) t.join();
  // Drain the tail (senders are done; whatever they enqueued last must be
  // deliverable), then stop the consumer.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  consumer.join();
  router.revive(receiver);
  Inbound in;
  std::uint64_t tail = 0;
  while (router.try_recv(receiver, in)) {
    in.buf.reset();
    ++tail;
  }

  // Conservation: every send_row call ended as a delivery or a counted
  // drop (gate drops + crash drains), never lost or duplicated.
  const std::uint64_t calls = kSenders * std::uint64_t{kFramesPerSender};
  EXPECT_EQ(router.frames_delivered(), received + tail);
  EXPECT_EQ(router.frames_delivered() + router.frames_dropped(), calls);
  EXPECT_TRUE(router.idle());
  EXPECT_EQ(router.pool().outstanding(), 0u);
}

TEST(MailboxStress, CrashReviveSendRecvOnOneReceiverRing) {
  hammer_one_receiver(MailboxStrategy::kLockFreeRing);
}

TEST(MailboxStress, CrashReviveSendRecvOnOneReceiverMutex) {
  hammer_one_receiver(MailboxStrategy::kMutexDeque);
}

}  // namespace
