// Asynchronous LightSecAgg: exact weighted aggregation across masks
// generated in different rounds (the commutativity property of App. F.3.3),
// buffer mechanics, and failure modes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "protocol/async_lightsecagg.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;
using Async = lsa::protocol::AsyncLightSecAgg<Fp32>;

lsa::protocol::Params make_params(std::size_t n, std::size_t t,
                                  std::size_t u, std::size_t d) {
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d;
  return p;
}

TEST(AsyncLightSecAgg, WeightedAggregateAcrossMixedRounds) {
  const std::size_t n = 8, t = 2, u = 6, d = 20, k = 4;
  lsa::quant::StalenessPolicy poly{lsa::quant::StalenessKind::kPolynomial,
                                   1.0};
  const std::uint64_t c_g = 64;
  Async async(make_params(n, t, u, d), k, poly, c_g, /*seed=*/7);
  lsa::common::Xoshiro256ss rng(8);

  // Four users with updates born at different rounds (staleness 0..3 at
  // aggregation round 5).
  struct Entry {
    std::size_t user;
    std::uint64_t born;
    std::vector<rep> update;
  };
  std::vector<Entry> entries = {{0, 5, {}}, {2, 4, {}}, {5, 3, {}}, {7, 2, {}}};
  std::vector<rep> expected(d, Fp32::zero);
  const std::uint64_t now = 5;

  for (auto& e : entries) {
    e.update = lsa::field::uniform_vector<Fp32>(d, rng);
    // Keep updates small so weighted sums stay interpretable in the field.
    for (auto& v : e.update) v %= 1000;
    auto mask = async.generate_and_share_mask(e.user, e.born);
    Async::BufferedUpdate upd;
    upd.user = e.user;
    upd.born_round = e.born;
    upd.masked = async.mask_update(e.update, mask);
    const bool full = async.buffer_update(std::move(upd));
    EXPECT_EQ(full, &e == &entries.back());

    const std::uint64_t w =
        lsa::quant::quantized_staleness_weight(poly, now - e.born, c_g);
    for (std::size_t i = 0; i < d; ++i) {
      expected[i] =
          Fp32::add(expected[i], Fp32::mul(Fp32::from_u64(w), e.update[i]));
    }
  }

  std::vector<bool> active(n, true);
  const auto out = async.aggregate(now, active);
  EXPECT_EQ(out.weighted_sum, expected);
  // weight_sum = 64 + 32 + 21 + 16 (poly(1) staleness 0,1,2,3 with c_g=64;
  // 64/3 rounds to 21).
  EXPECT_EQ(out.weight_sum, 64u + 32u + 21u + 16u);
  EXPECT_EQ(async.buffered(), 0u);  // buffer consumed
}

TEST(AsyncLightSecAgg, SameUserTwiceInDifferentRounds) {
  const std::size_t n = 6, t = 1, u = 4, d = 8;
  lsa::quant::StalenessPolicy constant{lsa::quant::StalenessKind::kConstant,
                                       1.0};
  Async async(make_params(n, t, u, d), /*K=*/2, constant, /*c_g=*/8, 3);
  lsa::common::Xoshiro256ss rng(4);

  auto u1 = lsa::field::uniform_vector<Fp32>(d, rng);
  auto u2 = lsa::field::uniform_vector<Fp32>(d, rng);
  auto m1 = async.generate_and_share_mask(1, 10);
  auto m2 = async.generate_and_share_mask(1, 11);  // same user, new round
  (void)async.buffer_update({1, 10, async.mask_update(u1, m1)});
  (void)async.buffer_update({1, 11, async.mask_update(u2, m2)});

  std::vector<bool> active(n, true);
  const auto out = async.aggregate(12, active);
  // Constant staleness: w = 8 for both.
  std::vector<rep> expected(d);
  for (std::size_t i = 0; i < d; ++i) {
    expected[i] = Fp32::mul(8u, Fp32::add(u1[i], u2[i]));
  }
  EXPECT_EQ(out.weighted_sum, expected);
}

TEST(AsyncLightSecAgg, InactiveUsersBeyondUMakeItFail) {
  const std::size_t n = 6, t = 1, u = 5, d = 4;
  lsa::quant::StalenessPolicy constant{lsa::quant::StalenessKind::kConstant,
                                       1.0};
  Async async(make_params(n, t, u, d), 1, constant, 4, 5);
  auto m = async.generate_and_share_mask(0, 0);
  std::vector<rep> upd(d, 1);
  (void)async.buffer_update({0, 0, async.mask_update(upd, m)});
  std::vector<bool> active(n, true);
  active[0] = active[1] = false;  // only 4 < U=5 active
  EXPECT_THROW((void)async.aggregate(0, active), lsa::ProtocolError);
}

TEST(AsyncLightSecAgg, MissingShareForUnknownRoundThrows) {
  const std::size_t n = 5, t = 1, u = 4, d = 4;
  lsa::quant::StalenessPolicy constant{lsa::quant::StalenessKind::kConstant,
                                       1.0};
  Async async(make_params(n, t, u, d), 1, constant, 4, 6);
  // Mask shared for round 3, update claims round 4.
  auto m = async.generate_and_share_mask(2, 3);
  std::vector<rep> upd(d, 7);
  (void)async.buffer_update({2, 4, async.mask_update(upd, m)});
  std::vector<bool> active(n, true);
  EXPECT_THROW((void)async.aggregate(4, active), lsa::ProtocolError);
}

TEST(AsyncLightSecAgg, SharesAreGarbageCollectedAfterAggregation) {
  const std::size_t n = 5, t = 1, u = 4, d = 4;
  lsa::quant::StalenessPolicy constant{lsa::quant::StalenessKind::kConstant,
                                       1.0};
  Async async(make_params(n, t, u, d), 1, constant, 4, 7);
  std::vector<bool> active(n, true);

  auto m = async.generate_and_share_mask(0, 0);
  std::vector<rep> upd(d, 3);
  (void)async.buffer_update({0, 0, async.mask_update(upd, m)});
  (void)async.aggregate(0, active);

  // Re-buffering the same (user, round) without re-sharing must fail: the
  // shares were consumed.
  (void)async.buffer_update({0, 0, async.mask_update(upd, m)});
  EXPECT_THROW((void)async.aggregate(0, active), lsa::ProtocolError);
}

TEST(AsyncLightSecAgg, ZeroWeightsRejected) {
  // Staleness so extreme that all weights round to zero must be surfaced,
  // not silently divide by zero.
  const std::size_t n = 5, t = 1, u = 4, d = 4;
  lsa::quant::StalenessPolicy poly{lsa::quant::StalenessKind::kPolynomial,
                                   4.0};
  Async async(make_params(n, t, u, d), 1, poly, /*c_g=*/2, 8);
  auto m = async.generate_and_share_mask(1, 0);
  std::vector<rep> upd(d, 1);
  (void)async.buffer_update({1, 0, async.mask_update(upd, m)});
  std::vector<bool> active(n, true);
  // tau = 100: s(tau) = (1+100)^-4 ~ 1e-8; c_g * s rounds to 0.
  EXPECT_THROW((void)async.aggregate(100, active), lsa::ProtocolError);
}

}  // namespace
