// Every SIMD dispatch-table kernel must be bit-identical to the scalar
// reference on every available ISA level — exhaustively at the reduction
// boundaries (values next to the modulus, the Goldilocks epsilon region,
// products near 2^61 - 1), under all-lane carry patterns in the lazy-192
// limbs, and at every tail remainder shorter than one vector register.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"
#include "field/simd/dispatch.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;
namespace simd = lsa::field::simd;
using simd::Level;

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Non-scalar levels this host can actually execute (scalar needs no table).
std::vector<Level> vector_levels() {
  std::vector<Level> out;
  for (Level l : {Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (simd::level_available(l)) out.push_back(l);
  }
  return out;
}

/// Lengths that cover empty, sub-vector tails, exact multiples and odd
/// remainders for every lane width up to AVX-512's 16 u32 lanes.
std::vector<std::size_t> tail_lengths() {
  std::vector<std::size_t> n;
  for (std::size_t i = 0; i <= 35; ++i) n.push_back(i);
  n.push_back(100);
  n.push_back(257);
  return n;
}

/// The scalar lazy-192 accumulation step (field_vec.h semantics).
void lazy192_ref(u64& lo, u64& mi, u64& hi, u64 a, u64 b) {
  const u128 pr = static_cast<u128>(a) * b;
  const u64 plo = static_cast<u64>(pr);
  const u64 phi = static_cast<u64>(pr >> 64);
  const u64 c1 = __builtin_add_overflow(lo, plo, &lo) ? 1u : 0u;
  hi += __builtin_add_overflow(mi, phi + c1, &mi) ? 1u : 0u;
}

template <class F>
std::vector<typename F::rep> boundary_elements() {
  using rep = typename F::rep;
  const u64 p = F::modulus;
  std::vector<u64> raw = {0, 1, 2, 3, p - 1, p - 2, p - 3,
                          p / 2, p / 2 + 1, p / 3};
  for (unsigned k = 1; k < 64; ++k) {
    const u64 b = 1ull << k;
    for (const u64 v : {b - 1, b, b + 1}) {
      if (v < p) raw.push_back(v);
    }
  }
  std::vector<rep> out;
  for (const u64 v : raw) out.push_back(static_cast<rep>(v));
  return out;
}

/// A length-n vector cycling through boundary elements, shifted so paired
/// operands cross every (a near-edge, b near-edge) combination over n.
template <class F>
std::vector<typename F::rep> boundary_vec(std::size_t n, std::size_t phase) {
  const auto b = boundary_elements<F>();
  std::vector<typename F::rep> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = b[(i * 7 + phase) % b.size()];
  return out;
}

// --------------------------------------------------------------- u32 table

TEST(SimdKernel, U32AddSubModBoundaries) {
  for (Level level : vector_levels()) {
    const auto* k = simd::u32_kernels(level);
    ASSERT_NE(k, nullptr) << simd::level_name(level);
    for (std::size_t n : tail_lengths()) {
      for (std::size_t phase = 0; phase < 5; ++phase) {
        const auto a0 = boundary_vec<Fp32>(n, phase);
        const auto x = boundary_vec<Fp32>(n, phase + 11);
        auto got = a0;
        k->add_mod(got.data(), x.data(), n, Fp32::modulus);
        auto want = a0;
        for (std::size_t i = 0; i < n; ++i) want[i] = Fp32::add(want[i], x[i]);
        ASSERT_EQ(got, want) << simd::level_name(level) << " add n=" << n;

        got = a0;
        k->sub_mod(got.data(), x.data(), n, Fp32::modulus);
        want = a0;
        for (std::size_t i = 0; i < n; ++i) want[i] = Fp32::sub(want[i], x[i]);
        ASSERT_EQ(got, want) << simd::level_name(level) << " sub n=" << n;
      }
    }
  }
}

TEST(SimdKernel, U32AccumWidenAndAxpySplit) {
  lsa::common::Xoshiro256ss rng(42);
  for (Level level : vector_levels()) {
    const auto* k = simd::u32_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t n : tail_lengths()) {
      const auto src = boundary_vec<Fp32>(n, 3);
      // accum_widen: start sums near u64 range the real kernel reaches
      // (at most 2^15 summands of values < 2^32 — no wrap by contract).
      std::vector<u64> sums(n);
      for (auto& s : sums) s = rng.next_u64() >> 17;
      auto got = sums;
      k->accum_widen(got.data(), src.data(), n);
      auto want = sums;
      for (std::size_t i = 0; i < n; ++i) want[i] += src[i];
      ASSERT_EQ(got, want) << simd::level_name(level) << " widen n=" << n;

      // axpy_split: wlo/whi < 2^16 per the split-word contract.
      const u32 wlo = 0xFFFFu, whi = 0xFFFEu;
      std::vector<u64> lo(n), hi(n);
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] = rng.next_u64() >> 17;
        hi[i] = rng.next_u64() >> 17;
      }
      auto glo = lo, ghi = hi;
      k->axpy_split(glo.data(), ghi.data(), src.data(), wlo, whi, n);
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] += static_cast<u64>(wlo) * src[i];
        hi[i] += static_cast<u64>(whi) * src[i];
      }
      ASSERT_EQ(glo, lo) << simd::level_name(level) << " split-lo n=" << n;
      ASSERT_EQ(ghi, hi) << simd::level_name(level) << " split-hi n=" << n;
    }
  }
}

// --------------------------------------------------------------- u64 table

TEST(SimdKernel, U64AddSubModBoundaries) {
  for (Level level : vector_levels()) {
    const auto* k = simd::u64_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t n : tail_lengths()) {
      for (std::size_t phase = 0; phase < 5; ++phase) {
        const auto a0 = boundary_vec<Fp61>(n, phase);
        const auto x = boundary_vec<Fp61>(n, phase + 13);
        auto got = a0;
        k->add_mod(got.data(), x.data(), n, Fp61::modulus);
        auto want = a0;
        for (std::size_t i = 0; i < n; ++i) want[i] = Fp61::add(want[i], x[i]);
        ASSERT_EQ(got, want) << simd::level_name(level) << " add n=" << n;

        got = a0;
        k->sub_mod(got.data(), x.data(), n, Fp61::modulus);
        want = a0;
        for (std::size_t i = 0; i < n; ++i) want[i] = Fp61::sub(want[i], x[i]);
        ASSERT_EQ(got, want) << simd::level_name(level) << " sub n=" << n;
      }
    }
  }
}

TEST(SimdKernel, U64ShoupAxpyBoundaries) {
  const auto weights = boundary_elements<Fp61>();
  for (Level level : vector_levels()) {
    const auto* k = simd::u64_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t wi = 0; wi < weights.size(); wi += 3) {
      const u64 w = weights[wi];
      const u64 wp = Fp61::shoup_precompute(w);
      for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{19},
                            std::size_t{64}}) {
        const auto a0 = boundary_vec<Fp61>(n, wi);
        const auto x = boundary_vec<Fp61>(n, wi + 5);
        auto got = a0;
        k->shoup_axpy(got.data(), x.data(), w, wp, n, Fp61::modulus);
        auto want = a0;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = Fp61::add(want[i], Fp61::mul_shoup(x[i], w, wp));
        }
        ASSERT_EQ(got, want)
            << simd::level_name(level) << " w=" << w << " n=" << n;
      }
    }
  }
}

TEST(SimdKernel, U64Lazy192AxpyAllLaneCarry) {
  lsa::common::Xoshiro256ss rng(7);
  for (Level level : vector_levels()) {
    const auto* k = simd::u64_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t n : tail_lengths()) {
      // Limbs are raw integers; force the carry chain in every lane at once
      // (lo = mi = ~0), then a mixed random pattern.
      for (int pattern = 0; pattern < 2; ++pattern) {
        std::vector<u64> lo(n), mi(n), hi(n), src(n);
        for (std::size_t i = 0; i < n; ++i) {
          lo[i] = pattern == 0 ? ~0ull : rng.next_u64();
          mi[i] = pattern == 0 ? ~0ull : rng.next_u64();
          hi[i] = pattern == 0 ? 1ull : (rng.next_u64() >> 2);
          src[i] = pattern == 0 ? ~0ull : rng.next_u64();
        }
        const u64 w = pattern == 0 ? ~0ull : rng.next_u64();
        auto glo = lo, gmi = mi, ghi = hi;
        k->lazy192_axpy(glo.data(), gmi.data(), ghi.data(), w, src.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          lazy192_ref(lo[i], mi[i], hi[i], w, src[i]);
        }
        ASSERT_EQ(glo, lo) << simd::level_name(level) << " lo n=" << n;
        ASSERT_EQ(gmi, mi) << simd::level_name(level) << " mi n=" << n;
        ASSERT_EQ(ghi, hi) << simd::level_name(level) << " hi n=" << n;
      }
    }
  }
}

TEST(SimdKernel, U64Lazy192DotStridedMatvec) {
  lsa::common::Xoshiro256ss rng(11);
  for (Level level : vector_levels()) {
    const auto* k = simd::u64_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t lanes : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                              std::size_t{13}, std::size_t{16},
                              std::size_t{19}}) {
      for (std::size_t terms : {std::size_t{1}, std::size_t{3},
                                std::size_t{32}}) {
        for (std::size_t stride : {std::size_t{1}, std::size_t{4}}) {
          std::vector<u64> coeffs(terms * stride), x(terms * lanes);
          for (auto& c : coeffs) c = rng.next_u64();
          for (auto& v : x) v = rng.next_u64();
          std::vector<u64> glo(lanes, 0xAA), gmi(lanes, 0xBB),
              ghi(lanes, 0xCC);  // dot overwrites — garbage must vanish
          k->lazy192_dot(glo.data(), gmi.data(), ghi.data(), coeffs.data(),
                         stride, x.data(), terms, lanes);
          for (std::size_t l = 0; l < lanes; ++l) {
            u64 lo = 0, mi = 0, hi = 0;
            for (std::size_t c = 0; c < terms; ++c) {
              lazy192_ref(lo, mi, hi, coeffs[c * stride], x[c * lanes + l]);
            }
            ASSERT_EQ(glo[l], lo) << simd::level_name(level) << " l=" << l;
            ASSERT_EQ(gmi[l], mi) << simd::level_name(level) << " l=" << l;
            ASSERT_EQ(ghi[l], hi) << simd::level_name(level) << " l=" << l;
          }
        }
      }
    }
  }
}

// -------------------------------------------------------- Goldilocks table

TEST(SimdKernel, GoldilocksAddSubEpsilonRegion) {
  for (Level level : vector_levels()) {
    const auto* k = simd::goldilocks_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t n : tail_lengths()) {
      for (std::size_t phase = 0; phase < 5; ++phase) {
        const auto a0 = boundary_vec<Goldilocks>(n, phase);
        const auto x = boundary_vec<Goldilocks>(n, phase + 17);
        auto got = a0;
        k->add_mod(got.data(), x.data(), n);
        auto want = a0;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = Goldilocks::add(want[i], x[i]);
        }
        ASSERT_EQ(got, want) << simd::level_name(level) << " add n=" << n;

        got = a0;
        k->sub_mod(got.data(), x.data(), n);
        want = a0;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = Goldilocks::sub(want[i], x[i]);
        }
        ASSERT_EQ(got, want) << simd::level_name(level) << " sub n=" << n;
      }
    }
  }
}

TEST(SimdKernel, GoldilocksShoupKernelsBoundaries) {
  const auto weights = boundary_elements<Goldilocks>();
  for (Level level : vector_levels()) {
    const auto* k = simd::goldilocks_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t wi = 0; wi < weights.size(); wi += 3) {
      const u64 w = weights[wi];
      const u64 wp = Goldilocks::shoup_precompute(w);
      for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{19},
                            std::size_t{64}}) {
        const auto a0 = boundary_vec<Goldilocks>(n, wi);
        const auto x = boundary_vec<Goldilocks>(n, wi + 5);

        auto got = a0;
        k->shoup_axpy(got.data(), x.data(), w, wp, n);
        auto want = a0;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = Goldilocks::add(want[i],
                                    Goldilocks::mul_shoup(x[i], w, wp));
        }
        ASSERT_EQ(got, want)
            << simd::level_name(level) << " axpy w=" << w << " n=" << n;

        got = x;
        k->mul_shoup_inplace(got.data(), w, wp, n);
        want = x;
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = Goldilocks::mul_shoup(want[i], w, wp);
        }
        ASSERT_EQ(got, want)
            << simd::level_name(level) << " mul w=" << w << " n=" << n;
      }
    }
  }
}

TEST(SimdKernel, GoldilocksMulShoupRows) {
  lsa::common::Xoshiro256ss rng(23);
  for (Level level : vector_levels()) {
    const auto* k = simd::goldilocks_kernels(level);
    ASSERT_NE(k, nullptr);
    const std::size_t rows = 9, lanes = 11;
    std::vector<u64> s(rows), sp(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      s[r] = lsa::field::uniform<Goldilocks>(rng);
      sp[r] = Goldilocks::shoup_precompute(s[r]);
    }
    auto a = lsa::field::uniform_vector<Goldilocks>(rows * lanes, rng);
    auto got = a;
    k->mul_shoup_rows(got.data(), s.data(), sp.data(), rows, lanes);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t l = 0; l < lanes; ++l) {
        a[r * lanes + l] = Goldilocks::mul_shoup(a[r * lanes + l], s[r], sp[r]);
      }
    }
    ASSERT_EQ(got, a) << simd::level_name(level);
  }
}

TEST(SimdKernel, GoldilocksFold192RawLimbs) {
  constexpr u64 kR64 = 0xFFFFFFFFull;  // 2^64 mod p
  const u64 kR128 = Goldilocks::mul(kR64, kR64);
  lsa::common::Xoshiro256ss rng(31);
  for (Level level : vector_levels()) {
    const auto* k = simd::goldilocks_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t n : tail_lengths()) {
      // Raw limbs take any u64 value, including >= p and all-ones.
      std::vector<u64> lo(n), mi(n), hi(n);
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] = i % 3 == 0 ? ~0ull : rng.next_u64();
        mi[i] = i % 3 == 1 ? ~0ull : rng.next_u64();
        hi[i] = i % 3 == 2 ? ~0ull : rng.next_u64();
      }
      std::vector<u64> got(n, 0xDD);
      k->fold192(got.data(), lo.data(), mi.data(), hi.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const u64 want = Goldilocks::add(
            Goldilocks::mul(Goldilocks::from_u64(hi[i]), kR128),
            Goldilocks::add(Goldilocks::mul(Goldilocks::from_u64(mi[i]), kR64),
                            Goldilocks::from_u64(lo[i])));
        ASSERT_EQ(got[i], want)
            << simd::level_name(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernel, GoldilocksButterflies) {
  lsa::common::Xoshiro256ss rng(47);
  for (Level level : vector_levels()) {
    const auto* k = simd::goldilocks_kernels(level);
    ASSERT_NE(k, nullptr);
    for (std::size_t n : tail_lengths()) {
      std::vector<u64> tw(n), twp(n);
      for (std::size_t j = 0; j < n; ++j) {
        tw[j] = lsa::field::uniform<Goldilocks>(rng);
        twp[j] = Goldilocks::shoup_precompute(tw[j]);
      }
      const auto a0 = lsa::field::uniform_vector<Goldilocks>(n, rng);
      const auto b0 = lsa::field::uniform_vector<Goldilocks>(n, rng);

      auto ga = a0, gb = b0;
      k->butterfly_tw(ga.data(), gb.data(), tw.data(), twp.data(), n);
      auto wa = a0, wb = b0;
      for (std::size_t j = 0; j < n; ++j) {
        const u64 t = Goldilocks::mul_shoup(wb[j], tw[j], twp[j]);
        const u64 u = wa[j];
        wa[j] = Goldilocks::add(u, t);
        wb[j] = Goldilocks::sub(u, t);
      }
      ASSERT_EQ(ga, wa) << simd::level_name(level) << " tw-a n=" << n;
      ASSERT_EQ(gb, wb) << simd::level_name(level) << " tw-b n=" << n;
    }

    // SoA form: scalar twiddle per lane block, odd lane counts included.
    for (std::size_t lanes : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                              std::size_t{11}, std::size_t{16}}) {
      const std::size_t nj = 6;
      std::vector<u64> tw(nj), twp(nj);
      for (std::size_t j = 0; j < nj; ++j) {
        tw[j] = lsa::field::uniform<Goldilocks>(rng);
        twp[j] = Goldilocks::shoup_precompute(tw[j]);
      }
      const auto a0 = lsa::field::uniform_vector<Goldilocks>(nj * lanes, rng);
      const auto b0 = lsa::field::uniform_vector<Goldilocks>(nj * lanes, rng);
      auto ga = a0, gb = b0;
      k->butterfly_soa(ga.data(), gb.data(), tw.data(), twp.data(), nj, lanes);
      auto wa = a0, wb = b0;
      for (std::size_t j = 0; j < nj; ++j) {
        for (std::size_t l = 0; l < lanes; ++l) {
          const u64 t =
              Goldilocks::mul_shoup(wb[j * lanes + l], tw[j], twp[j]);
          const u64 u = wa[j * lanes + l];
          wa[j * lanes + l] = Goldilocks::add(u, t);
          wb[j * lanes + l] = Goldilocks::sub(u, t);
        }
      }
      ASSERT_EQ(ga, wa) << simd::level_name(level) << " soa lanes=" << lanes;
      ASSERT_EQ(gb, wb) << simd::level_name(level) << " soa lanes=" << lanes;
    }
  }
}

// ------------------------------------------------------------- dispatch

TEST(SimdKernel, PolicyForcesScalarLevel) {
  const Level base = simd::active_level();
  {
    simd::ScopedSimdPolicy forced(simd::SimdPolicy::kForceScalar);
    EXPECT_EQ(simd::active_level(), Level::kScalar);
    EXPECT_EQ(simd::goldilocks_active(), nullptr);
    EXPECT_EQ(simd::u32_active(), nullptr);
    EXPECT_EQ(simd::u64_active(), nullptr);
    {
      simd::ScopedSimdPolicy nested(simd::SimdPolicy::kAuto);
      EXPECT_EQ(simd::active_level(), base);
    }
    EXPECT_EQ(simd::active_level(), Level::kScalar);
  }
  EXPECT_EQ(simd::active_level(), base);
}

TEST(SimdKernel, DispatchTablesConsistent) {
  // Scalar never has a table; unavailable levels never return one.
  EXPECT_EQ(simd::u32_kernels(Level::kScalar), nullptr);
  EXPECT_EQ(simd::u64_kernels(Level::kScalar), nullptr);
  EXPECT_EQ(simd::goldilocks_kernels(Level::kScalar), nullptr);
  for (Level l : {Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (!simd::level_available(l)) {
      EXPECT_EQ(simd::u32_kernels(l), nullptr) << simd::level_name(l);
      EXPECT_EQ(simd::u64_kernels(l), nullptr) << simd::level_name(l);
      EXPECT_EQ(simd::goldilocks_kernels(l), nullptr) << simd::level_name(l);
    } else {
      // An available level exposes fully-populated tables.
      const auto* k = simd::goldilocks_kernels(l);
      ASSERT_NE(k, nullptr) << simd::level_name(l);
      EXPECT_NE(k->butterfly_soa, nullptr);
      EXPECT_NE(simd::u32_kernels(l), nullptr);
      EXPECT_NE(simd::u64_kernels(l), nullptr);
    }
  }
  EXPECT_LE(simd::vector_bytes(simd::detected_level()),
            simd::vector_bytes(Level::kAvx512));
}

}  // namespace
