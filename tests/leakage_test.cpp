// Multi-round leakage tracker and the batch-partitioning mitigation
// (So et al. 2021a): rank algebra, the classic difference attack, and the
// unconditional safety of batch-aligned participation.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "analysis/leakage.h"
#include "common/rng.h"

namespace {

using lsa::analysis::BatchPartition;
using lsa::analysis::LeakageTracker;

std::vector<bool> set_of(std::size_t n,
                         std::initializer_list<std::size_t> members) {
  std::vector<bool> v(n, false);
  for (const auto i : members) v[i] = true;
  return v;
}

TEST(Leakage, SingleRoundLeaksNothingIndividual) {
  LeakageTracker t(5);
  t.record_round(set_of(5, {0, 1, 2, 3, 4}));
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_TRUE(t.isolated_users().empty());
}

TEST(Leakage, RepeatedIdenticalRoundsAddNoRank) {
  LeakageTracker t(6);
  for (int r = 0; r < 10; ++r) t.record_round(set_of(6, {1, 2, 4}));
  EXPECT_EQ(t.rounds_recorded(), 10u);
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_TRUE(t.isolated_users().empty());
}

TEST(Leakage, ClassicDifferenceAttackIsolatesTheDropout) {
  // Paper-cited scenario: rounds {0,1,2} then {1,2} — the difference is
  // exactly user 0's model.
  LeakageTracker t(3);
  t.record_round(set_of(3, {0, 1, 2}));
  EXPECT_FALSE(t.user_isolated(0));
  t.record_round(set_of(3, {1, 2}));
  EXPECT_TRUE(t.user_isolated(0));
  EXPECT_FALSE(t.user_isolated(1));
  EXPECT_FALSE(t.user_isolated(2));
  EXPECT_EQ(t.isolated_users(), std::vector<std::size_t>{0});
}

TEST(Leakage, ChainedDifferencesIsolateEveryone) {
  // {0,1}, {1,2}, {2,3}, {0,3} has rank 3; adding the singleton-revealing
  // combination requires one more independent equation: {0,1,2} completes
  // the isolation of every user.
  LeakageTracker t(4);
  t.record_round(set_of(4, {0, 1}));
  t.record_round(set_of(4, {1, 2}));
  t.record_round(set_of(4, {2, 3}));
  t.record_round(set_of(4, {0, 3}));
  EXPECT_EQ(t.rank(), 3u);  // the 4th is dependent (sum of 1st+3rd-2nd)
  EXPECT_TRUE(t.isolated_users().empty());

  t.record_round(set_of(4, {0, 1, 2}));
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.isolated_users().size(), 4u);  // full basis: everyone leaked
}

TEST(Leakage, IsolationThroughNontrivialCombination) {
  // No round difference isolates anyone directly, but the combination
  // {0,1,2} + {3,4} - {1,2,3,4} = e_0 does. The tracker must find it.
  LeakageTracker t(5);
  t.record_round(set_of(5, {0, 1, 2}));
  t.record_round(set_of(5, {3, 4}));
  EXPECT_TRUE(t.isolated_users().empty());
  t.record_round(set_of(5, {1, 2, 3, 4}));
  EXPECT_TRUE(t.user_isolated(0));
  EXPECT_FALSE(t.user_isolated(1));
  EXPECT_FALSE(t.user_isolated(4));
}

TEST(Leakage, DisjointPairsNeverIsolate) {
  LeakageTracker t(8);
  t.record_round(set_of(8, {0, 1}));
  t.record_round(set_of(8, {2, 3}));
  t.record_round(set_of(8, {4, 5}));
  t.record_round(set_of(8, {6, 7}));
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_TRUE(t.isolated_users().empty());
}

TEST(Leakage, RankIsBoundedByRoundsAndUsers) {
  LeakageTracker t(5);
  lsa::common::Xoshiro256ss rng(7);
  std::size_t prev_rank = 0;
  for (int r = 0; r < 20; ++r) {
    std::vector<bool> s(5, false);
    std::size_t members = 0;
    while (members == 0) {  // non-empty random subsets
      for (std::size_t i = 0; i < 5; ++i) {
        s[i] = (rng.next_u64() & 1) != 0;
        if (s[i]) ++members;
      }
    }
    t.record_round(s);
    EXPECT_GE(t.rank(), prev_rank);  // monotone
    EXPECT_LE(t.rank(), std::min<std::size_t>(t.rounds_recorded(), 5));
    prev_rank = t.rank();
  }
  EXPECT_EQ(t.rank(), 5u);  // 20 random subsets of 5 users: full rank whp
}

TEST(Leakage, RejectsBadInputs) {
  EXPECT_THROW(LeakageTracker t0(0), lsa::ConfigError);
  LeakageTracker t(3);
  EXPECT_THROW(t.record_round(std::vector<bool>(2, true)),
               lsa::ConfigError);
  EXPECT_THROW((void)t.user_isolated(3), lsa::ConfigError);
}

// ---------------------------------------------------------------------------
// Batch partitioning mitigation.
// ---------------------------------------------------------------------------

TEST(BatchPartition, AlignSnapsToWholeBatches) {
  BatchPartition bp(9, 3);  // batches {0,1,2}, {3,4,5}, {6,7,8}
  EXPECT_EQ(bp.num_batches(), 3u);
  EXPECT_EQ(bp.batch_of(5), 1u);

  // Batch 0 fully available, batch 1 partially, batch 2 fully.
  std::vector<bool> avail = {true, true, true, true, false, true,
                             true, true, true};
  const auto aligned = bp.align(avail);
  const std::vector<bool> expect = {true,  true,  true,  false, false,
                                    false, true,  true,  true};
  EXPECT_EQ(aligned, expect);
}

TEST(BatchPartition, BatchAlignedRoundsNeverIsolateAnyone) {
  // The mitigation's guarantee, checked against the tracker itself: any
  // sequence of batch-aligned participation sets keeps every user safe.
  const std::size_t n = 12, b = 3;
  BatchPartition bp(n, b);
  LeakageTracker t(n);
  lsa::common::Xoshiro256ss rng(11);
  for (int r = 0; r < 40; ++r) {
    std::vector<bool> avail(n);
    for (std::size_t i = 0; i < n; ++i) avail[i] = (rng.next_u64() & 1) != 0;
    t.record_round(bp.align(avail));
  }
  EXPECT_TRUE(t.isolated_users().empty());
  EXPECT_LE(t.rank(), bp.num_batches());
}

TEST(BatchPartition, BatchSizeOneOffersNoProtection) {
  // Degenerate b = 1 is exactly unrestricted participation: the difference
  // attack works again — the guarantee really does come from b >= 2.
  BatchPartition bp(3, 1);
  LeakageTracker t(3);
  t.record_round(bp.align({true, true, true}));
  t.record_round(bp.align({false, true, true}));
  EXPECT_TRUE(t.user_isolated(0));
}

TEST(BatchPartition, UnevenTailBatchStillProtected) {
  // 7 users, batch size 3: batches {0,1,2}, {3,4,5}, {6}. The tail batch
  // has size 1 — its member IS isolatable; the full-size batches are safe.
  BatchPartition bp(7, 3);
  LeakageTracker t(7);
  t.record_round(bp.align(std::vector<bool>(7, true)));
  std::vector<bool> no_tail(7, true);
  no_tail[6] = false;
  t.record_round(bp.align(no_tail));
  EXPECT_TRUE(t.user_isolated(6));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FALSE(t.user_isolated(i));
}

}  // namespace
