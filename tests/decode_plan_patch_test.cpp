// Incremental decode-plan maintenance must be invisible in the output:
// BatchedDecodePlan::patched_from applied to survivor churn up to the
// codec bound (MaskCodec::kMaxPatchChurn = 8) has to land on the SAME
// BITS as a from-scratch plan over the same points, for both the
// barycentric GEMM and the batched-NTT streaming path — swept
// exhaustively at churn 1/2 at small U, randomized at U = 257 (carry
// nodes) and at churn 3..8. The MaskCodec layer on top must route churn
// <= 8 survivor sets through the patch, rebuild above the bound, keep
// its plan cache LRU-bounded, and keep the telemetry counters
// (full_builds / incremental_patches / evictions) honest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "coding/decode_plan.h"
#include "coding/mask_codec.h"
#include "common/error.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using lsa::coding::DecodeStrategy;
using lsa::field::Fp32;
using lsa::field::Goldilocks;

template <class F>
using Plan = lsa::coding::BatchedDecodePlan<F>;
template <class F>
using Rep = typename F::rep;

// ---------------------------------------------------------------------------
// Plan-level bit-identity: patched_from vs a fresh plan over the same points.
// ---------------------------------------------------------------------------

template <class F>
struct PatchFixture {
  using rep = Rep<F>;
  std::vector<rep> xs, betas;
  std::vector<std::vector<rep>> shares;
  std::vector<const rep*> rows;
  std::size_t seg_len;

  PatchFixture(std::size_t u, std::size_t nb, std::size_t seg,
               std::uint64_t seed)
      : seg_len(seg) {
    lsa::common::Xoshiro256ss rng(seed);
    xs.resize(u);
    betas.resize(nb);
    for (std::size_t j = 0; j < u; ++j) xs[j] = F::from_u64(100 + 7 * j);
    for (std::size_t k = 0; k < nb; ++k) betas[k] = F::from_u64(1 + k);
    shares.resize(u);
    rows.resize(u);
    for (std::size_t j = 0; j < u; ++j) {
      shares[j] = lsa::field::uniform_vector<F>(seg, rng);
      rows[j] = shares[j].data();
    }
  }

  /// A replacement value outside both the xs lattice and the betas.
  [[nodiscard]] rep fresh_value(std::size_t i) const {
    return F::from_u64(100000 + 13 * i);
  }
};

/// Builds a base plan with BOTH components materialized, patches it with
/// `reps`, and demands byte-equality against a from-scratch plan over the
/// patched point set on both strategies.
template <class F>
void expect_patch_bit_identical(
    PatchFixture<F>& fx,
    const std::vector<typename Plan<F>::PointReplacement>& reps) {
  Plan<F> base{std::span<const Rep<F>>(fx.xs),
               std::span<const Rep<F>>(fx.betas)};
  // Force both lazy components so patched_from patches both.
  (void)base.run(DecodeStrategy::kBarycentric,
                 std::span<const Rep<F>* const>(fx.rows), fx.seg_len, {});
  (void)base.run(DecodeStrategy::kBatchedNtt,
                 std::span<const Rep<F>* const>(fx.rows), fx.seg_len, {});

  auto patched = Plan<F>::patched_from(
      base, std::span<const typename Plan<F>::PointReplacement>(reps));
  EXPECT_TRUE(patched->patched());
  EXPECT_GE(patched->patched_nodes(), reps.size());

  std::vector<Rep<F>> new_xs = fx.xs;
  for (const auto& r : reps) new_xs[r.pos] = r.value;
  Plan<F> fresh{std::span<const Rep<F>>(new_xs),
                std::span<const Rep<F>>(fx.betas)};
  for (const auto s :
       {DecodeStrategy::kBarycentric, DecodeStrategy::kBatchedNtt}) {
    const auto got = patched->run(
        s, std::span<const Rep<F>* const>(fx.rows), fx.seg_len, {});
    const auto want = fresh.run(
        s, std::span<const Rep<F>* const>(fx.rows), fx.seg_len, {});
    ASSERT_EQ(got, want) << "u=" << fx.xs.size() << " churn=" << reps.size()
                         << " first_pos=" << reps.front().pos
                         << " strategy=" << lsa::coding::to_string(s);
  }
}

template <class F>
void exhaustive_plus_minus_one(std::size_t u, std::size_t nb,
                               std::size_t seg) {
  PatchFixture<F> fx(u, nb, seg, /*seed=*/u);
  for (std::size_t p = 0; p < u; ++p) {
    expect_patch_bit_identical(fx, {{p, fx.fresh_value(p)}});
  }
}

template <class F>
void exhaustive_plus_minus_two(std::size_t u, std::size_t nb,
                               std::size_t seg) {
  PatchFixture<F> fx(u, nb, seg, /*seed=*/u + 1);
  for (std::size_t a = 0; a < u; ++a) {
    for (std::size_t b = a + 1; b < u; ++b) {
      expect_patch_bit_identical(
          fx, {{a, fx.fresh_value(a)}, {b, fx.fresh_value(u + b)}});
    }
  }
}

TEST(DecodePlanPatch, ExhaustiveSingleChurnU8) {
  exhaustive_plus_minus_one<Goldilocks>(8, 4, 16);
}

TEST(DecodePlanPatch, ExhaustiveSingleChurnU64) {
  exhaustive_plus_minus_one<Goldilocks>(64, 16, 16);
}

TEST(DecodePlanPatch, ExhaustiveSingleChurnU257) {
  // Non-power-of-two: the ancestor walk crosses carry (odd-node) levels.
  exhaustive_plus_minus_one<Goldilocks>(257, 8, 8);
}

TEST(DecodePlanPatch, ExhaustiveDoubleChurnU8) {
  exhaustive_plus_minus_two<Goldilocks>(8, 4, 16);
}

TEST(DecodePlanPatch, ExhaustiveDoubleChurnU64) {
  exhaustive_plus_minus_two<Goldilocks>(64, 8, 8);
}

TEST(DecodePlanPatch, RandomizedDoubleChurnU257) {
  PatchFixture<Goldilocks> fx(257, 8, 8, /*seed=*/99);
  lsa::common::Xoshiro256ss rng(1234);
  for (std::size_t trial = 0; trial < 100; ++trial) {
    const std::size_t a = rng.next_u64() % 257;
    std::size_t b = rng.next_u64() % 257;
    while (b == a) b = rng.next_u64() % 257;
    expect_patch_bit_identical(
        fx, {{a, fx.fresh_value(2 * trial)}, {b, fx.fresh_value(2 * trial + 1)}});
  }
}

TEST(DecodePlanPatch, RandomizedChurnUpToBoundU64) {
  // Churn 3..8 (kMaxPatchChurn) at U = 64: random distinct positions,
  // patched plan must stay bit-identical to a fresh build on both paths.
  PatchFixture<Goldilocks> fx(64, 16, 8, /*seed=*/64);
  lsa::common::Xoshiro256ss rng(4242);
  std::size_t next_val = 0;
  for (std::size_t churn = 3;
       churn <= lsa::coding::MaskCodec<Goldilocks>::kMaxPatchChurn; ++churn) {
    for (std::size_t trial = 0; trial < 20; ++trial) {
      std::vector<std::size_t> pos;
      while (pos.size() < churn) {
        const std::size_t p = rng.next_u64() % 64;
        if (std::find(pos.begin(), pos.end(), p) == pos.end()) {
          pos.push_back(p);
        }
      }
      std::vector<Plan<Goldilocks>::PointReplacement> reps;
      reps.reserve(churn);
      for (const std::size_t p : pos) {
        reps.push_back({p, fx.fresh_value(next_val++)});
      }
      expect_patch_bit_identical(fx, reps);
    }
  }
}

TEST(DecodePlanPatch, NonNttFieldPatchesBarycentric) {
  // Fp32 has no NTT plane; the patched plan must still match fresh on the
  // GEMM path (patched_from only patches what the base built).
  PatchFixture<Fp32> fx(16, 8, 16, 7);
  Plan<Fp32> base{std::span<const Rep<Fp32>>(fx.xs),
                  std::span<const Rep<Fp32>>(fx.betas)};
  (void)base.run(DecodeStrategy::kBarycentric,
                 std::span<const Rep<Fp32>* const>(fx.rows), fx.seg_len, {});
  std::vector<Plan<Fp32>::PointReplacement> reps{{3, fx.fresh_value(0)},
                                                 {11, fx.fresh_value(1)}};
  auto patched = Plan<Fp32>::patched_from(
      base, std::span<const Plan<Fp32>::PointReplacement>(reps));
  std::vector<Rep<Fp32>> new_xs = fx.xs;
  for (const auto& r : reps) new_xs[r.pos] = r.value;
  Plan<Fp32> fresh{std::span<const Rep<Fp32>>(new_xs),
                   std::span<const Rep<Fp32>>(fx.betas)};
  EXPECT_EQ(patched->run(DecodeStrategy::kBarycentric,
                         std::span<const Rep<Fp32>* const>(fx.rows),
                         fx.seg_len, {}),
            fresh.run(DecodeStrategy::kBarycentric,
                      std::span<const Rep<Fp32>* const>(fx.rows), fx.seg_len,
                      {}));
}

TEST(DecodePlanPatch, RejectsInvalidReplacements) {
  PatchFixture<Goldilocks> fx(8, 4, 8, 3);
  Plan<Goldilocks> base{std::span<const Rep<Goldilocks>>(fx.xs),
                        std::span<const Rep<Goldilocks>>(fx.betas)};
  using PR = Plan<Goldilocks>::PointReplacement;
  const auto patch = [&](std::vector<PR> reps) {
    return Plan<Goldilocks>::patched_from(base,
                                          std::span<const PR>(reps));
  };
  EXPECT_THROW((void)patch({{8, fx.fresh_value(0)}}), lsa::CodingError);
  EXPECT_THROW((void)patch({{0, fx.xs[3]}}), lsa::CodingError);   // dup point
  EXPECT_THROW((void)patch({{0, fx.betas[1]}}), lsa::CodingError);  // beta
  // Sequential application: the second replacement colliding with the
  // FIRST replacement's new value is a duplicate too.
  EXPECT_THROW(
      (void)patch({{0, fx.fresh_value(0)}, {1, fx.fresh_value(0)}}),
      lsa::CodingError);
}

// ---------------------------------------------------------------------------
// MaskCodec layer: churn routing, telemetry, LRU bound.
// ---------------------------------------------------------------------------

using Codec = lsa::coding::MaskCodec<Goldilocks>;
using GRep = Goldilocks::rep;

/// Random aggregated-share rows for a given owner set; decode output is
/// checked against the never-cached kLagrange reference on the same rows.
struct CodecRows {
  std::vector<std::vector<GRep>> store;
  std::vector<const GRep*> rows;

  CodecRows(std::size_t u, std::size_t seg, lsa::common::Xoshiro256ss& rng) {
    store.resize(u);
    rows.resize(u);
    for (std::size_t j = 0; j < u; ++j) {
      store[j] = lsa::field::uniform_vector<Goldilocks>(seg, rng);
      rows[j] = store[j].data();
    }
  }
};

TEST(MaskCodecPatch, SmallChurnRoutesThroughPatch) {
  constexpr std::size_t kN = 40, kU = 8, kT = 2, kD = 64;
  Codec codec(kN, kU, kT, kD);
  lsa::common::Xoshiro256ss rng(42);
  CodecRows data(kU, codec.segment_len(), rng);

  std::vector<std::size_t> owners(kU);
  std::iota(owners.begin(), owners.end(), 0);  // {0..7}
  // Force the fast component too so the patch re-multiplies tree nodes.
  const auto first = codec.decode_aggregate_rows(
      owners, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  (void)codec.decode_aggregate_rows(owners,
                                    std::span<const GRep* const>(data.rows),
                                    {}, DecodeStrategy::kBarycentric);
  auto st = codec.last_decode_stats();
  EXPECT_FALSE(st.plan_patched);
  EXPECT_TRUE(st.plan_reused);  // second decode, same owners
  EXPECT_EQ(st.full_builds, 1u);
  EXPECT_EQ(st.incremental_patches, 0u);
  EXPECT_EQ(first,
            codec.decode_aggregate_rows(
                owners, std::span<const GRep* const>(data.rows), {},
                DecodeStrategy::kLagrange));

  // ±1 churn: owner 3 leaves, owner 20 joins.
  owners[3] = 20;
  const auto patched_out = codec.decode_aggregate_rows(
      owners, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  st = codec.last_decode_stats();
  EXPECT_TRUE(st.plan_patched);
  EXPECT_FALSE(st.plan_reused);
  EXPECT_GE(st.patched_nodes, 1u);
  EXPECT_EQ(st.full_builds, 1u);
  EXPECT_EQ(st.incremental_patches, 1u);
  EXPECT_EQ(patched_out,
            codec.decode_aggregate_rows(
                owners, std::span<const GRep* const>(data.rows), {},
                DecodeStrategy::kLagrange));

  // ±2 churn off the ORIGINAL set (still cached, churn 2 <= bound).
  std::vector<std::size_t> owners2(kU);
  std::iota(owners2.begin(), owners2.end(), 0);
  owners2[0] = 21;
  owners2[5] = 22;
  const auto patched2 = codec.decode_aggregate_rows(
      owners2, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  st = codec.last_decode_stats();
  EXPECT_TRUE(st.plan_patched);
  EXPECT_EQ(st.incremental_patches, 2u);
  EXPECT_EQ(patched2,
            codec.decode_aggregate_rows(
                owners2, std::span<const GRep* const>(data.rows), {},
                DecodeStrategy::kLagrange));

  // Churn 3 is still within kMaxPatchChurn (= 8): patched too.
  std::vector<std::size_t> owners3(kU);
  std::iota(owners3.begin(), owners3.end(), 0);
  owners3[0] = 30;
  owners3[1] = 31;
  owners3[2] = 32;
  const auto patched3 = codec.decode_aggregate_rows(
      owners3, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  st = codec.last_decode_stats();
  EXPECT_TRUE(st.plan_patched);
  EXPECT_FALSE(st.plan_reused);
  EXPECT_EQ(st.full_builds, 1u);
  EXPECT_EQ(st.incremental_patches, 3u);
  EXPECT_EQ(patched3,
            codec.decode_aggregate_rows(
                owners3, std::span<const GRep* const>(data.rows), {},
                DecodeStrategy::kLagrange));
}

TEST(MaskCodecPatch, ChurnBoundaryPatchesAtEightRebuildsAtNine) {
  // kU = 16 so churn can exceed the bound. A set differing from the
  // cached base by exactly kMaxPatchChurn (8) members is patched and
  // bit-identical to the kLagrange reference; one more leaver (churn 9
  // against every cached set) forces a full rebuild.
  constexpr std::size_t kN = 256, kU = 16, kT = 4, kD = 64;
  static_assert(Codec::kMaxPatchChurn == 8,
                "boundary sets below assume the churn bound is 8");
  Codec codec(kN, kU, kT, kD);
  lsa::common::Xoshiro256ss rng(17);
  CodecRows data(kU, codec.segment_len(), rng);

  std::vector<std::size_t> base(kU);
  std::iota(base.begin(), base.end(), 0);  // {0..15}
  (void)codec.decode_aggregate_rows(
      base, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  auto st = codec.last_decode_stats();
  EXPECT_EQ(st.full_builds, 1u);

  // Replace members 0..7 -> {100..107}: churn 8 == bound, patched.
  std::vector<std::size_t> at_bound(kU);
  std::iota(at_bound.begin(), at_bound.end(), 0);
  for (std::size_t i = 0; i < 8; ++i) at_bound[i] = 100 + i;
  const auto got8 = codec.decode_aggregate_rows(
      at_bound, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  st = codec.last_decode_stats();
  EXPECT_TRUE(st.plan_patched);
  EXPECT_EQ(st.full_builds, 1u);
  EXPECT_EQ(st.incremental_patches, 1u);
  EXPECT_EQ(got8,
            codec.decode_aggregate_rows(
                at_bound, std::span<const GRep* const>(data.rows), {},
                DecodeStrategy::kLagrange));

  // Replace members 0..8 -> {200..208}: churn 9 against the base AND
  // churn 9 against the churn-8 set (they share only {9..15}) — rebuild.
  std::vector<std::size_t> over_bound(kU);
  std::iota(over_bound.begin(), over_bound.end(), 0);
  for (std::size_t i = 0; i < 9; ++i) over_bound[i] = 200 + i;
  const auto got9 = codec.decode_aggregate_rows(
      over_bound, std::span<const GRep* const>(data.rows), {},
      DecodeStrategy::kBatchedNtt);
  st = codec.last_decode_stats();
  EXPECT_FALSE(st.plan_patched);
  EXPECT_FALSE(st.plan_reused);
  EXPECT_EQ(st.full_builds, 2u);
  EXPECT_EQ(st.incremental_patches, 1u);
  EXPECT_EQ(got9,
            codec.decode_aggregate_rows(
                over_bound, std::span<const GRep* const>(data.rows), {},
                DecodeStrategy::kLagrange));
}

TEST(MaskCodecPatch, DecodeOrderIndependentAcrossPatchedPlans) {
  // The same survivor set presented in a different owner order must reuse
  // the cached (patched) plan and return identical bits.
  constexpr std::size_t kN = 40, kU = 8, kT = 2, kD = 32;
  Codec codec(kN, kU, kT, kD);
  lsa::common::Xoshiro256ss rng(7);
  CodecRows data(kU, codec.segment_len(), rng);

  std::vector<std::size_t> owners{0, 1, 2, 3, 4, 5, 6, 7};
  (void)codec.decode_aggregate_rows(
      owners, std::span<const GRep* const>(data.rows), {});
  owners[2] = 15;  // ±1 churn -> patched plan in cache
  const auto a = codec.decode_aggregate_rows(
      owners, std::span<const GRep* const>(data.rows), {});
  EXPECT_TRUE(codec.last_decode_stats().plan_patched);

  // Same set, reversed presentation; rows permuted to match their owners.
  std::vector<std::size_t> rev_owners(owners.rbegin(), owners.rend());
  std::vector<const GRep*> rev_rows(data.rows.rbegin(), data.rows.rend());
  const auto b = codec.decode_aggregate_rows(
      rev_owners, std::span<const GRep* const>(rev_rows), {});
  EXPECT_TRUE(codec.last_decode_stats().plan_reused);
  EXPECT_EQ(a, b);
}

TEST(MaskCodecPatch, LruBoundAndEvictionCounter) {
  // Pairwise-DISJOINT survivor sets (sliding by a whole kU = 16) have
  // churn 16 > kMaxPatchChurn vs every other set, so every lookup is a
  // full build; the cache must stay bounded at kMaxCachedPlans and count
  // each eviction.
  constexpr std::size_t kN = 680, kU = 16, kT = 4, kD = 16;
  constexpr std::size_t kSets = Codec::kMaxCachedPlans + 8;
  Codec codec(kN, kU, kT, kD);
  lsa::common::Xoshiro256ss rng(11);
  CodecRows data(kU, codec.segment_len(), rng);

  for (std::size_t s = 0; s < kSets; ++s) {
    std::vector<std::size_t> owners(kU);
    std::iota(owners.begin(), owners.end(), kU * s);
    (void)codec.decode_aggregate_rows(
        owners, std::span<const GRep* const>(data.rows), {});
  }
  auto st = codec.last_decode_stats();
  EXPECT_EQ(st.full_builds, kSets);
  EXPECT_EQ(st.incremental_patches, 0u);
  EXPECT_EQ(st.evictions, kSets - Codec::kMaxCachedPlans);

  // The oldest set was evicted: decoding it again is another full build.
  std::vector<std::size_t> first(kU);
  std::iota(first.begin(), first.end(), 0);
  (void)codec.decode_aggregate_rows(
      first, std::span<const GRep* const>(data.rows), {});
  st = codec.last_decode_stats();
  EXPECT_FALSE(st.plan_reused);
  EXPECT_EQ(st.full_builds, kSets + 1);

  // The most recent set is still resident: exact hit, no build.
  std::vector<std::size_t> last(kU);
  std::iota(last.begin(), last.end(), kU * (kSets - 1));
  (void)codec.decode_aggregate_rows(
      last, std::span<const GRep* const>(data.rows), {});
  st = codec.last_decode_stats();
  EXPECT_TRUE(st.plan_reused);
  EXPECT_EQ(st.full_builds, kSets + 1);
}

TEST(MaskCodecPatch, RandomizedChurnSoak) {
  // 100 rounds of ≤ 2-swap survivor churn: every decode must match the
  // kLagrange reference bit for bit and the counters must account for
  // every round exactly (build + patch + reuse == rounds).
  constexpr std::size_t kN = 64, kU = 16, kT = 4, kD = 48;
  constexpr std::size_t kRounds = 100;
  Codec codec(kN, kU, kT, kD);
  lsa::common::Xoshiro256ss rng(2024);
  CodecRows data(kU, codec.segment_len(), rng);

  std::vector<std::size_t> owners(kU);
  std::iota(owners.begin(), owners.end(), 0);
  std::uint64_t reuses = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Swap up to 2 members for users outside the current set.
    const std::size_t swaps = rng.next_u64() % 3;
    for (std::size_t s = 0; s < swaps; ++s) {
      std::size_t candidate = rng.next_u64() % kN;
      while (std::find(owners.begin(), owners.end(), candidate) !=
             owners.end()) {
        candidate = rng.next_u64() % kN;
      }
      owners[rng.next_u64() % kU] = candidate;
    }
    const auto got = codec.decode_aggregate_rows(
        owners, std::span<const GRep* const>(data.rows), {},
        DecodeStrategy::kBatchedNtt);
    // Snapshot BEFORE the reference decode (it overwrites last_stats).
    if (codec.last_decode_stats().plan_reused) ++reuses;
    const auto want = codec.decode_aggregate_rows(
        owners, std::span<const GRep* const>(data.rows), {},
        DecodeStrategy::kLagrange);
    ASSERT_EQ(got, want) << "round " << round;
  }
  const auto st = codec.last_decode_stats();
  EXPECT_EQ(st.full_builds + st.incremental_patches + reuses, kRounds);
  EXPECT_GE(st.incremental_patches, 1u);
}

}  // namespace
