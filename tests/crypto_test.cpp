// ChaCha20 (against RFC 8439 vectors), PRG, Diffie–Hellman key agreement
// and the primality checker validating the hard-coded group.
#include <gtest/gtest.h>

#include <cstring>

#include "crypto/chacha20.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/primality.h"

namespace {

using namespace lsa::crypto;

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2 test vector.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::array<std::uint8_t, 64> out;
  chacha20_block(key, 1, nonce, out);
  const std::uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(0, std::memcmp(out.data(), expected, 64));
}

TEST(ChaCha20, StreamMatchesBlockConcatenation) {
  ChaChaKey key{};
  key[0] = 0xab;
  ChaChaNonce nonce{};
  std::vector<std::uint8_t> stream(200);
  chacha20_stream(key, nonce, 0, stream);
  std::array<std::uint8_t, 64> block;
  for (std::size_t b = 0; b * 64 < stream.size(); ++b) {
    chacha20_block(key, static_cast<std::uint32_t>(b), nonce, block);
    const std::size_t n = std::min<std::size_t>(64, stream.size() - b * 64);
    EXPECT_EQ(0, std::memcmp(stream.data() + b * 64, block.data(), n));
  }
}

TEST(Prg, DeterministicAndSeedSensitive) {
  Prg a(seed_from_u64(1)), b(seed_from_u64(1)), c(seed_from_u64(2));
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Prg, StreamIdGivesIndependentStreams) {
  Prg a(seed_from_u64(5), 0), b(seed_from_u64(5), 1);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Prg, FillBytesMatchesNextU64Stream) {
  Prg a(seed_from_u64(7));
  Prg b(seed_from_u64(7));
  std::vector<std::uint8_t> bytes(40);
  a.fill_bytes(bytes);
  for (int i = 0; i < 5; ++i) {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + 8 * i, 8);
    EXPECT_EQ(v, b.next_u64());
  }
}

TEST(Prg, DeriveSubseedSeparatesDomains) {
  const auto parent = seed_from_u64(99);
  const auto s1 = derive_subseed(parent, 1);
  const auto s2 = derive_subseed(parent, 2);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1, derive_subseed(parent, 1));  // deterministic
}

TEST(Primality, KnownPrimesAndComposites) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(4294967291ull));            // 2^32 - 5 (Fp32)
  EXPECT_TRUE(is_prime_u64(2305843009213693951ull));   // 2^61 - 1 (Fp61)
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(4294967291ull * 3));
  EXPECT_FALSE(is_prime_u64((1ull << 61) - 3));
}

TEST(KeyAgreement, GroupParametersAreValid) {
  // The hard-coded group must be a safe prime with g generating the
  // order-q subgroup (g^q = 1, g^2 != 1).
  EXPECT_TRUE(is_safe_prime_u64(DhGroup::p));
  EXPECT_EQ(group_pow(DhGroup::g, DhGroup::q), 1ull);
  EXPECT_NE(group_pow(DhGroup::g, 2), 1ull);
}

TEST(KeyAgreement, SharedSecretIsSymmetric) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto a = generate_keypair(seed_from_u64(100 + i));
    const auto b = generate_keypair(seed_from_u64(200 + i));
    EXPECT_EQ(shared_secret(a.secret, b.public_key),
              shared_secret(b.secret, a.public_key));
    EXPECT_EQ(agreed_seed(a.secret, b.public_key),
              agreed_seed(b.secret, a.public_key));
  }
}

TEST(KeyAgreement, DistinctPairsGetDistinctSeeds) {
  const auto a = generate_keypair(seed_from_u64(1));
  const auto b = generate_keypair(seed_from_u64(2));
  const auto c = generate_keypair(seed_from_u64(3));
  EXPECT_NE(agreed_seed(a.secret, b.public_key),
            agreed_seed(a.secret, c.public_key));
  EXPECT_NE(agreed_seed(b.secret, c.public_key),
            agreed_seed(a.secret, c.public_key));
}

TEST(KeyAgreement, PublicKeyMatchesSecret) {
  const auto kp = generate_keypair(seed_from_u64(42));
  EXPECT_EQ(kp.public_key, group_pow(DhGroup::g, kp.secret));
  EXPECT_GE(kp.secret, 1ull);
  EXPECT_LT(kp.secret, DhGroup::q);
}

}  // namespace
