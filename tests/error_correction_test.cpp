// Berlekamp-Welch Reed-Solomon correction and the codec's error-correcting
// aggregate decode: exact recovery up to the floor((n-U)/2) budget, loud
// refusal beyond it, and correct identification of the corrupted responders.
#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "coding/error_correction.h"
#include "coding/mask_codec.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using F = lsa::field::Fp32;
using rep = F::rep;

std::vector<rep> random_poly(std::size_t n, std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  return lsa::field::uniform_vector<F>(n, rng);
}

// ---------------------------------------------------------------------------
// Berlekamp-Welch on raw evaluations.
// ---------------------------------------------------------------------------

class BwSweep : public ::testing::TestWithParam<
                    std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(BwSweep, RecoversPolynomialAndLocatesErrors) {
  const auto [k, e, extra] = GetParam();
  const std::size_t n = k + 2 * e + extra;
  auto g = random_poly(k, 11 * k + e);
  lsa::coding::poly_trim<F>(g);

  std::vector<rep> xs(n), ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    xs[j] = F::from_u64(5 + 3 * j);
    ys[j] = lsa::coding::poly_eval<F>(std::span<const rep>(g), xs[j]);
  }
  // Corrupt exactly e positions (spread across the range).
  std::vector<std::size_t> bad;
  for (std::size_t t = 0; t < e; ++t) {
    const std::size_t pos = (t * 7 + 1) % n;
    if (std::find(bad.begin(), bad.end(), pos) == bad.end()) {
      bad.push_back(pos);
      ys[pos] = F::add(ys[pos], F::from_u64(1 + t));
    }
  }
  std::sort(bad.begin(), bad.end());

  const auto got = lsa::coding::berlekamp_welch<F>(
      std::span<const rep>(xs), std::span<const rep>(ys), k, e);
  ASSERT_TRUE(got.has_value()) << "k=" << k << " e=" << e;
  EXPECT_EQ(got->poly, g);
  EXPECT_EQ(got->error_positions, bad);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BwSweep,
    ::testing::Values(std::make_tuple(1, 1, 0),   // constant poly
                      std::make_tuple(4, 0, 0),   // no error budget
                      std::make_tuple(4, 1, 0), std::make_tuple(4, 2, 1),
                      std::make_tuple(8, 3, 0), std::make_tuple(8, 1, 5),
                      std::make_tuple(16, 4, 2),
                      std::make_tuple(12, 0, 4)));  // redundancy, e = 0

TEST(BerlekampWelch, FewerErrorsThanBudgetStillWorks) {
  // Budget e = 3, only 1 actual corruption: the spurious locator roots must
  // not break the decode.
  const std::size_t k = 6, e = 3, n = k + 2 * e;
  auto g = random_poly(k, 77);
  lsa::coding::poly_trim<F>(g);
  std::vector<rep> xs(n), ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    xs[j] = F::from_u64(2 + j);
    ys[j] = lsa::coding::poly_eval<F>(std::span<const rep>(g), xs[j]);
  }
  ys[4] = F::add(ys[4], 99);
  const auto got = lsa::coding::berlekamp_welch<F>(
      std::span<const rep>(xs), std::span<const rep>(ys), k, e);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->poly, g);
  EXPECT_EQ(got->error_positions, std::vector<std::size_t>{4});
}

TEST(BerlekampWelch, RefusesBeyondBudget) {
  // e+1 corruptions with budget e: must return nullopt, never a wrong poly.
  const std::size_t k = 5, e = 2, n = k + 2 * e;
  auto g = random_poly(k, 13);
  lsa::coding::poly_trim<F>(g);
  std::vector<rep> xs(n), ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    xs[j] = F::from_u64(1 + 2 * j);
    ys[j] = lsa::coding::poly_eval<F>(std::span<const rep>(g), xs[j]);
  }
  for (const std::size_t pos : {0u, 3u, 6u}) {
    ys[pos] = F::add(ys[pos], F::from_u64(7 + pos));
  }
  const auto got = lsa::coding::berlekamp_welch<F>(
      std::span<const rep>(xs), std::span<const rep>(ys), k, e);
  EXPECT_FALSE(got.has_value());
}

TEST(BerlekampWelch, RejectsInsufficientEvaluations) {
  std::vector<rep> xs{1, 2, 3}, ys{4, 5, 6};
  EXPECT_THROW((void)lsa::coding::berlekamp_welch<F>(
                   std::span<const rep>(xs), std::span<const rep>(ys),
                   /*k=*/2, /*max_errors=*/1),
               lsa::CodingError);
}

TEST(BerlekampWelch, WorksOnGoldilocks) {
  using G = lsa::field::Goldilocks;
  using grep = G::rep;
  lsa::common::Xoshiro256ss rng(31);
  const auto g = lsa::field::uniform_vector<G>(5, rng);
  const std::size_t n = 9;  // k=5, e=2
  std::vector<grep> xs(n), ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    xs[j] = G::from_u64(10 + j);
    ys[j] = lsa::coding::poly_eval<G>(std::span<const grep>(g), xs[j]);
  }
  ys[2] = G::add(ys[2], 1);
  ys[7] = G::add(ys[7], 123456789);
  const auto got = lsa::coding::berlekamp_welch<G>(
      std::span<const grep>(xs), std::span<const grep>(ys), 5, 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->error_positions, (std::vector<std::size_t>{2, 7}));
}

// ---------------------------------------------------------------------------
// Codec-level corrected aggregate decode.
// ---------------------------------------------------------------------------

struct CodecFixture {
  static constexpr std::size_t n = 14, u = 8, t = 3, d = 60;
  lsa::coding::MaskCodec<F> codec{n, u, t, d};
  std::vector<rep> mask;
  std::vector<std::size_t> owners;              // all n respond
  std::vector<std::vector<rep>> shares;         // single-user aggregate

  CodecFixture() {
    lsa::common::Xoshiro256ss rng(91);
    mask = lsa::field::uniform_vector<F>(d, rng);
    auto sh = codec.encode(std::span<const rep>(mask), rng);
    for (std::size_t j = 0; j < n; ++j) {
      owners.push_back(j);
      shares.push_back(std::move(sh[j]));
    }
  }
};

TEST(CorrectedDecode, CleanSharesDecodeWithEmptyCorruptionSet) {
  CodecFixture fx;
  const auto out =
      fx.codec.decode_aggregate_corrected(fx.owners, fx.shares);
  EXPECT_EQ(out.aggregate, fx.mask);
  EXPECT_TRUE(out.corrupted_owners.empty());
}

TEST(CorrectedDecode, CorrectsUpToTheRedundancyBudget) {
  CodecFixture fx;
  // 14 responses, U = 8: budget = 3 corrupted shares.
  lsa::common::Xoshiro256ss rng(92);
  for (const std::size_t j : {1u, 6u, 11u}) {
    for (auto& v : fx.shares[j]) v = lsa::field::uniform<F>(rng);
  }
  const auto out =
      fx.codec.decode_aggregate_corrected(fx.owners, fx.shares);
  EXPECT_EQ(out.aggregate, fx.mask);
  EXPECT_EQ(out.corrupted_owners, (std::vector<std::size_t>{1, 6, 11}));
}

TEST(CorrectedDecode, SingleElementTamperingIsStillLocated) {
  CodecFixture fx;
  // seg_len = ceil(60 / (8-3)) = 12; flip one in-range element.
  ASSERT_EQ(fx.codec.segment_len(), 12u);
  fx.shares[4][7] = F::add(fx.shares[4][7], 1);  // one flipped element
  const auto out =
      fx.codec.decode_aggregate_corrected(fx.owners, fx.shares);
  EXPECT_EQ(out.aggregate, fx.mask);
  EXPECT_EQ(out.corrupted_owners, std::vector<std::size_t>{4});
}

TEST(CorrectedDecode, ThrowsLoudlyBeyondBudget) {
  CodecFixture fx;
  lsa::common::Xoshiro256ss rng(93);
  for (const std::size_t j : {0u, 3u, 7u, 10u}) {  // 4 > budget of 3
    for (auto& v : fx.shares[j]) v = lsa::field::uniform<F>(rng);
  }
  EXPECT_THROW(
      (void)fx.codec.decode_aggregate_corrected(fx.owners, fx.shares),
      lsa::CodingError);
}

TEST(CorrectedDecode, ExactlyUResponsesMeansZeroBudgetAndZeroDetection) {
  // With exactly U responses the code has distance 0: a degree-<U
  // polynomial fits ANY U evaluations, so corruption is information-
  // theoretically undetectable. The corrected decode degrades to the plain
  // decode — correct on clean shares, silently wrong on tampered ones.
  // Detection needs U + 1 responses, correction of one share needs U + 2.
  CodecFixture fx;
  std::vector<std::size_t> owners(fx.owners.begin(), fx.owners.begin() + 8);
  std::vector<std::vector<rep>> shares(fx.shares.begin(),
                                       fx.shares.begin() + 8);
  const auto clean = fx.codec.decode_aggregate_corrected(owners, shares);
  EXPECT_EQ(clean.aggregate, fx.mask);
  EXPECT_TRUE(clean.corrupted_owners.empty());

  shares[2][0] = F::add(shares[2][0], 5);
  const auto tampered =
      fx.codec.decode_aggregate_corrected(owners, shares);
  EXPECT_NE(tampered.aggregate, fx.mask);  // wrong, and undetectably so
  EXPECT_TRUE(tampered.corrupted_owners.empty());

  // One extra response restores detection (but not yet correction).
  std::vector<std::size_t> owners9(fx.owners.begin(),
                                   fx.owners.begin() + 9);
  std::vector<std::vector<rep>> shares9(fx.shares.begin(),
                                        fx.shares.begin() + 9);
  shares9[2][0] = F::add(shares9[2][0], 5);
  EXPECT_THROW(
      (void)fx.codec.decode_aggregate_corrected(owners9, shares9),
      lsa::CodingError);
}

}  // namespace
