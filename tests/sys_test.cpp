// System layer: thread pool, chunked duplex channel, overlap executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/timer.h"
#include "sys/duplex_channel.h"
#include "sys/overlap.h"
#include "sys/thread_pool.h"

namespace {

using namespace lsa::sys;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForActuallyParallel) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int c = concurrent.fetch_add(1) + 1;
    int p = peak.load();
    while (c > p && !peak.compare_exchange_weak(p, c)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(DuplexChannel, PayloadIntegrity) {
  DuplexChannel ch(16, 0);
  std::vector<std::uint8_t> payload(1000);
  std::iota(payload.begin(), payload.end(), 0);
  std::thread sender([&] {
    ch.send(payload);
    ch.close();
  });
  auto got = ch.receive_all();
  sender.join();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(ch.chunks_moved(), (1000 + 15) / 16);
}

TEST(DuplexChannel, ConcurrentSendReceiveBeatsSequential) {
  // Two peers exchanging 64 chunks each with 200us service time.
  // Sequential: send-all then receive-all ~ 2 * 64 * 200us ~ 25.6ms of
  // service per peer. Duplex: both directions pump concurrently ~ half.
  constexpr std::size_t kChunk = 64;
  constexpr std::size_t kBytes = 64 * kChunk;
  constexpr std::uint64_t kServiceNs = 200000;
  std::vector<std::uint8_t> payload(kBytes, 0x5a);

  // Sequential baseline.
  lsa::common::Stopwatch sw_seq;
  {
    DuplexChannel a_to_b(kChunk, kServiceNs);
    DuplexChannel b_to_a(kChunk, kServiceNs);
    a_to_b.send(payload);
    a_to_b.close();
    (void)a_to_b.receive_all();
    b_to_a.send(payload);
    b_to_a.close();
    (void)b_to_a.receive_all();
  }
  const double seq = sw_seq.elapsed_sec();

  // Duplex: pump both directions concurrently.
  lsa::common::Stopwatch sw_dup;
  {
    DuplexChannel a_to_b(kChunk, kServiceNs);
    DuplexChannel b_to_a(kChunk, kServiceNs);
    std::thread t1([&] {
      a_to_b.send(payload);
      a_to_b.close();
    });
    std::thread t2([&] {
      b_to_a.send(payload);
      b_to_a.close();
    });
    auto r1 = a_to_b.receive_all();
    auto r2 = b_to_a.receive_all();
    t1.join();
    t2.join();
    EXPECT_EQ(r1.size(), kBytes);
    EXPECT_EQ(r2.size(), kBytes);
  }
  const double dup = sw_dup.elapsed_sec();
  EXPECT_LT(dup, seq * 0.85);  // comfortably faster, typically ~2x
}

TEST(Overlap, ConcurrentTrainingAndOfflineSavesTime) {
  auto busy = [](int ms) {
    return [ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  };
  const auto t = run_overlapped(busy(60), busy(50));
  EXPECT_GE(t.training_s, 0.055);
  EXPECT_GE(t.offline_s, 0.045);
  // Overlapped wall time ~ max(60, 50) ms, well below the 110 ms sum.
  EXPECT_LT(t.overlapped_total_s, 0.095);
  EXPECT_GT(t.speedup(), 1.3);
}

TEST(Overlap, PooledPolicyOverlapsOnTheSessionPool) {
  // With an ExecPolicy pool the offline task is a pool stage (no detached
  // thread); the overlap timing contract is the same as the poolless path.
  ThreadPool pool(2);
  ExecPolicy pol;
  pol.pool = &pool;
  auto busy = [](int ms) {
    return [ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  };
  const auto t = run_overlapped(busy(60), busy(50), pol);
  EXPECT_GE(t.training_s, 0.055);
  EXPECT_GE(t.offline_s, 0.045);
  EXPECT_LT(t.overlapped_total_s, 0.095);
  EXPECT_GT(t.speedup(), 1.3);
}

TEST(Overlap, OfflineStageInheritsCallerSimdPolicy) {
  // A caller that pinned forced-scalar dispatch must see it inside the
  // offline task on BOTH schedules — the pool worker's own thread policy
  // must not leak through.
  namespace simd = lsa::field::simd;
  ThreadPool pool(2);
  for (const bool use_pool : {false, true}) {
    ExecPolicy pol;
    if (use_pool) pol.pool = &pool;
    const simd::ScopedSimdPolicy guard(simd::SimdPolicy::kForceScalar);
    simd::SimdPolicy seen = simd::SimdPolicy::kAuto;
    run_overlapped([] {}, [&seen] { seen = simd::thread_policy(); }, pol);
    EXPECT_EQ(seen, simd::SimdPolicy::kForceScalar) << "use_pool="
                                                    << use_pool;
  }
}

}  // namespace
