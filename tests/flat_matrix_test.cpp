// field::FlatMatrix arena semantics and the fused blocked accumulation
// kernels (add_accumulate_blocked / axpy_accumulate_blocked), including the
// split-word lazy path of 32-bit fields: parity against naive per-term
// kernels at sizes straddling every chunk boundary, and the overflow-flush
// path with tens of thousands of accumulated rows.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using lsa::field::FlatMatrix;
using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;

TEST(FlatMatrix, ShapeRowsAndReset) {
  FlatMatrix<Fp32> m(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.size(), 15u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (auto v : m.row(r)) EXPECT_EQ(v, Fp32::zero);
  }
  m(1, 2) = 42;
  EXPECT_EQ(m.row(1)[2], 42u);
  EXPECT_EQ(m.row_copy(1), (std::vector<Fp32::rep>{0, 0, 42, 0, 0}));
  // Rows are contiguous and adjacent in one allocation.
  EXPECT_EQ(m.row_ptr(1), m.row_ptr(0) + 5);
  EXPECT_EQ(m.flat().size(), 15u);

  m.reset(2, 4);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 4u);
  for (auto v : m.flat()) EXPECT_EQ(v, Fp32::zero);  // reset zero-fills

  EXPECT_THROW((void)m.row(2), lsa::Error);
}

TEST(FlatMatrix, Equality) {
  FlatMatrix<Fp32> a(2, 2), b(2, 2), c(1, 4);
  a(0, 1) = 7;
  EXPECT_FALSE(a == b);
  b(0, 1) = 7;
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);  // same element count, different shape
}

template <class F>
class FusedKernels : public ::testing::Test {};

using Fields = ::testing::Types<Fp32, Fp61, Goldilocks>;
TYPED_TEST_SUITE(FusedKernels, Fields);

template <class F>
std::vector<typename F::rep> naive_axpy_accumulate(
    std::vector<typename F::rep> acc,
    const std::vector<typename F::rep>& coeffs,
    const std::vector<std::vector<typename F::rep>>& rows) {
  for (std::size_t k = 0; k < rows.size(); ++k) {
    for (std::size_t l = 0; l < acc.size(); ++l) {
      acc[l] = F::add(acc[l], F::mul(coeffs[k], rows[k][l]));
    }
  }
  return acc;
}

TYPED_TEST(FusedKernels, AxpyAccumulateMatchesNaiveAcrossChunkBoundaries) {
  using F = TypeParam;
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(77);
  // Lengths straddling the lazy-buffer width (2048) and the default chunk.
  for (const std::size_t len : {1ul, 3ul, 2047ul, 2048ul, 2049ul, 5000ul}) {
    for (const std::size_t nrows : {1ul, 2ul, 7ul, 33ul}) {
      std::vector<std::vector<rep>> rows(nrows);
      std::vector<const rep*> ptrs(nrows);
      for (std::size_t k = 0; k < nrows; ++k) {
        rows[k] = lsa::field::uniform_vector<F>(len, rng);
        ptrs[k] = rows[k].data();
      }
      const auto coeffs = lsa::field::uniform_vector<F>(nrows, rng);
      auto acc = lsa::field::uniform_vector<F>(len, rng);  // nonzero start
      const auto expect = naive_axpy_accumulate<F>(acc, coeffs, rows);
      // Odd chunk sizes stress the partial-block logic.
      for (const std::size_t chunk : {0ul, 7ul, 2048ul}) {
        auto got = acc;
        lsa::field::axpy_accumulate_blocked<F>(
            std::span<rep>(got), std::span<const rep>(coeffs),
            std::span<const rep* const>(ptrs), chunk);
        ASSERT_EQ(got, expect) << "len=" << len << " rows=" << nrows
                               << " chunk=" << chunk;
      }
    }
  }
}

TYPED_TEST(FusedKernels, AddAccumulateMatchesNaive) {
  using F = TypeParam;
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(78);
  for (const std::size_t len : {1ul, 2048ul, 2049ul, 4100ul}) {
    for (const std::size_t nrows : {1ul, 3ul, 21ul}) {
      std::vector<std::vector<rep>> rows(nrows);
      std::vector<const rep*> ptrs(nrows);
      for (std::size_t k = 0; k < nrows; ++k) {
        rows[k] = lsa::field::uniform_vector<F>(len, rng);
        ptrs[k] = rows[k].data();
      }
      auto acc = lsa::field::uniform_vector<F>(len, rng);
      auto expect = acc;
      for (std::size_t k = 0; k < nrows; ++k) {
        lsa::field::add_inplace<F>(std::span<rep>(expect),
                                   std::span<const rep>(rows[k]));
      }
      auto got = acc;
      lsa::field::add_accumulate_blocked<F>(
          std::span<rep>(got), std::span<const rep* const>(ptrs), 7);
      ASSERT_EQ(got, expect) << "len=" << len << " rows=" << nrows;
    }
  }
}

TEST(FusedKernels, LazyOverflowFlushAtManyTerms) {
  // > 2^15 accumulated terms forces the mid-stream fold of the split-word
  // path. Reusing one source row pointer keeps memory small; worst-case
  // coefficients/values stress the accumulator bound analysis.
  using F = Fp32;
  using rep = F::rep;
  const std::size_t len = 9;
  const std::size_t nrows = (1u << 15) + 123;
  const std::vector<rep> row(len, static_cast<rep>(F::modulus - 1));
  const std::vector<rep> coeffs(nrows, static_cast<rep>(F::modulus - 1));
  std::vector<const rep*> ptrs(nrows, row.data());

  std::vector<rep> got(len, F::zero);
  lsa::field::axpy_accumulate_blocked<F>(
      std::span<rep>(got), std::span<const rep>(coeffs),
      std::span<const rep* const>(ptrs));

  // Expected: nrows * (Q-1)^2 mod Q, elementwise.
  rep term = F::mul(F::modulus - 1, F::modulus - 1);
  rep expect = F::mul(F::from_u64(nrows), term);
  for (auto v : got) ASSERT_EQ(v, expect);
}

TYPED_TEST(FusedKernels, ChunkedWrappersMatchPlainKernels) {
  using F = TypeParam;
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(79);
  const std::size_t len = 4099;
  const auto x = lsa::field::uniform_vector<F>(len, rng);
  const auto base = lsa::field::uniform_vector<F>(len, rng);
  const auto s = lsa::field::uniform<F>(rng);

  auto a = base, b = base;
  lsa::field::add_inplace<F>(std::span<rep>(a), std::span<const rep>(x));
  lsa::field::add_inplace_chunked<F>(std::span<rep>(b),
                                     std::span<const rep>(x), 100);
  EXPECT_EQ(a, b);

  auto c = base, d = base;
  lsa::field::axpy_inplace<F>(std::span<rep>(c), s, std::span<const rep>(x));
  lsa::field::axpy_inplace_chunked<F>(std::span<rep>(d), s,
                                      std::span<const rep>(x), 100);
  EXPECT_EQ(c, d);
}

}  // namespace
