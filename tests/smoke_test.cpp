// Build smoke test: every substrate header compiles and basic ops work.
#include <gtest/gtest.h>

#include "coding/mask_codec.h"
#include "common/rng.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/shamir.h"
#include "field/fp.h"
#include "quant/quantizer.h"
#include "quant/staleness.h"

namespace {

using lsa::field::Fp32;

TEST(Smoke, FieldRoundTrip) {
  EXPECT_EQ(Fp32::add(Fp32::modulus - 1, 1), 0u);
  EXPECT_EQ(Fp32::mul(Fp32::inv(7), 7), 1u);
}

TEST(Smoke, MaskCodecRoundTrip) {
  lsa::common::Xoshiro256ss rng(42);
  lsa::coding::MaskCodec<Fp32> codec(/*N=*/5, /*U=*/4, /*T=*/2, /*d=*/10);
  auto mask = lsa::field::uniform_vector<Fp32>(10, rng);
  auto shares = codec.encode(std::span<const Fp32::rep>(mask), rng);
  ASSERT_EQ(shares.size(), 5u);
  // Single-user "aggregate": decoding the shares must return the mask.
  std::vector<std::size_t> owners = {0, 1, 2, 3};
  std::vector<std::vector<Fp32::rep>> agg = {shares[0], shares[1], shares[2],
                                             shares[3]};
  auto decoded = codec.decode_aggregate(owners, agg);
  EXPECT_EQ(decoded, mask);
}

}  // namespace
