// Zhao-Sun TTP one-shot scheme (paper Appendix C): functional correctness
// against the plaintext sum and against LightSecAgg on identical inputs,
// plus the Table 6 storage/randomness counters against their closed forms.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "protocol/lightsecagg.h"
#include "protocol/zhao_sun.h"

namespace {

using F = lsa::field::Fp32;
using rep = F::rep;
using ZhaoSun = lsa::protocol::ZhaoSunOneShot<F>;

std::vector<std::vector<rep>> random_inputs(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> inputs(n);
  for (auto& v : inputs) v = lsa::field::uniform_vector<F>(d, rng);
  return inputs;
}

std::vector<rep> plaintext_sum(const std::vector<std::vector<rep>>& inputs,
                               const std::vector<bool>& dropped) {
  std::vector<rep> out(inputs[0].size(), F::zero);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<rep>(out),
                               std::span<const rep>(inputs[i]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Correctness over a parameter grid and dropout patterns.
// ---------------------------------------------------------------------------

class ZhaoSunRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {
};

TEST_P(ZhaoSunRoundTrip, RecoversExactAggregate) {
  const auto [n, t, u, num_drop] = GetParam();
  lsa::protocol::Params params;
  params.num_users = n;
  params.privacy = t;
  params.dropout = n - u;
  params.target_survivors = u;
  params.model_dim = 40;
  ZhaoSun proto(params, /*ttp_seed=*/7);

  const auto inputs = random_inputs(n, 40, 100 + n);
  std::vector<bool> dropped(n, false);
  for (std::size_t k = 0; k < num_drop; ++k) dropped[2 * k + 1] = true;

  const auto got = proto.run_round(inputs, dropped);
  EXPECT_EQ(got, plaintext_sum(inputs, dropped));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZhaoSunRoundTrip,
    ::testing::Values(std::make_tuple(4, 1, 3, 0),
                      std::make_tuple(4, 1, 3, 1),
                      std::make_tuple(6, 2, 4, 2),
                      std::make_tuple(8, 3, 5, 3),
                      std::make_tuple(8, 2, 6, 1),
                      std::make_tuple(10, 4, 6, 4),
                      std::make_tuple(12, 5, 7, 5)));

TEST(ZhaoSun, MatchesLightSecAggOnIdenticalInputs) {
  lsa::protocol::Params params;
  params.num_users = 8;
  params.privacy = 2;
  params.dropout = 3;
  params.target_survivors = 5;
  params.model_dim = 64;
  ZhaoSun zs(params, 11);
  lsa::protocol::LightSecAgg<F> lsa_proto(params, 12);

  const auto inputs = random_inputs(8, 64, 5);
  std::vector<bool> dropped(8, false);
  dropped[0] = dropped[6] = true;

  const auto a = zs.run_round(inputs, dropped);
  const auto b = lsa_proto.run_round(inputs, dropped);
  EXPECT_EQ(a, b);  // both equal the plaintext aggregate
  EXPECT_EQ(a, plaintext_sum(inputs, dropped));
}

TEST(ZhaoSun, EveryDropoutPatternOfToleratedSizeWorks) {
  // N = 6, U = 4: all C(6,0)+C(6,1)+C(6,2) = 22 patterns must succeed.
  lsa::protocol::Params params;
  params.num_users = 6;
  params.privacy = 1;
  params.dropout = 2;
  params.target_survivors = 4;
  params.model_dim = 16;
  ZhaoSun proto(params, 3);
  const auto inputs = random_inputs(6, 16, 9);

  for (std::uint32_t pattern = 0; pattern < (1u << 6); ++pattern) {
    if (std::popcount(pattern) > 2) continue;
    std::vector<bool> dropped(6);
    for (std::size_t i = 0; i < 6; ++i) dropped[i] = (pattern >> i) & 1;
    const auto got = proto.run_round(inputs, dropped);
    EXPECT_EQ(got, plaintext_sum(inputs, dropped)) << "pattern=" << pattern;
  }
}

TEST(ZhaoSun, ThrowsWhenTooManyUsersDrop) {
  lsa::protocol::Params params;
  params.num_users = 6;
  params.privacy = 1;
  params.dropout = 2;
  params.target_survivors = 4;
  params.model_dim = 8;
  ZhaoSun proto(params, 3);
  const auto inputs = random_inputs(6, 8, 2);
  std::vector<bool> dropped(6, false);
  dropped[0] = dropped[1] = dropped[2] = true;  // only 3 < U = 4 survive
  EXPECT_THROW((void)proto.run_round(inputs, dropped), lsa::ProtocolError);
}

TEST(ZhaoSun, RejectsLargeCohorts) {
  lsa::protocol::Params params;
  params.num_users = 32;
  params.privacy = 8;
  params.dropout = 8;
  params.model_dim = 8;
  EXPECT_THROW(ZhaoSun(params, 1), lsa::ConfigError);
}

// ---------------------------------------------------------------------------
// Table 6 counters: measured == closed form.
// ---------------------------------------------------------------------------

class ZhaoSunCounters
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ZhaoSunCounters, MatchClosedForms) {
  const auto [n, t, u] = GetParam();
  lsa::protocol::Params params;
  params.num_users = n;
  params.privacy = t;
  params.dropout = n - u;
  params.target_survivors = u;
  params.model_dim = 8;
  ZhaoSun proto(params, 21);

  EXPECT_EQ(proto.num_subsets(), ZhaoSun::predicted_num_subsets(n, u));
  EXPECT_EQ(proto.total_randomness_symbols(),
            static_cast<std::uint64_t>(n) * (u - t) +
                static_cast<std::uint64_t>(t) * proto.num_subsets());
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(proto.storage_symbols(j),
              ZhaoSun::predicted_storage_symbols(n, u, t))
        << "user " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ZhaoSunCounters,
                         ::testing::Values(std::make_tuple(4, 1, 3),
                                           std::make_tuple(6, 2, 4),
                                           std::make_tuple(8, 3, 5),
                                           std::make_tuple(10, 4, 7),
                                           std::make_tuple(12, 5, 9)));

TEST(ZhaoSunCountersExplicit, SmallCaseByHand) {
  // N = 4, U = 3, T = 1: subsets of size >= 3: C(4,3)+C(4,4) = 5.
  // Randomness: 4*(3-1) + 1*5 = 13. Storage/user: (3-1) + C(3,2)+C(3,3)
  // = 2 + 4 = 6.
  lsa::protocol::Params params;
  params.num_users = 4;
  params.privacy = 1;
  params.dropout = 1;
  params.target_survivors = 3;
  params.model_dim = 8;
  ZhaoSun proto(params, 2);
  EXPECT_EQ(proto.num_subsets(), 5u);
  EXPECT_EQ(proto.total_randomness_symbols(), 13u);
  EXPECT_EQ(proto.storage_symbols(0), 6u);
}

TEST(ZhaoSunCountersExplicit, StorageGrowsExponentiallyVsLightSecAggLinear) {
  // The point of Table 6: Zhao-Sun per-user storage explodes with N while
  // LightSecAgg's is (U-T) + N.
  std::uint64_t prev = 0;
  for (const std::size_t n : {8, 10, 12, 14}) {
    const std::size_t t = n / 4, u = n / 2 + 1;
    const auto zs = ZhaoSun::predicted_storage_symbols(n, u, t);
    const auto lsa_sym = static_cast<std::uint64_t>(u - t + n);
    EXPECT_GT(zs, 4 * lsa_sym) << "n=" << n;
    if (prev != 0) EXPECT_GT(zs, 3 * prev) << "n=" << n;  // super-linear
    prev = zs;
  }
}

}  // namespace
