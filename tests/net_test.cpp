// Ledger accounting, cost model arithmetic, and round-time simulation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "net/bandwidth.h"
#include "net/cost_model.h"
#include "net/ledger.h"
#include "net/round_sim.h"
#include "protocol/lightsecagg.h"
#include "sys/thread_pool.h"

namespace {

using namespace lsa::net;

TEST(Ledger, MessageAndComputeAccounting) {
  Ledger ledger(3);
  ledger.add_message(Phase::kOffline, 0, 1, 100, true);
  ledger.add_message(Phase::kOffline, 0, 2, 50, false);
  ledger.add_message(Phase::kUpload, 1, ledger.server_id(), 7, true);
  ledger.add_compute(Phase::kRecovery, ledger.server_id(),
                     CompKind::kMaskDecode, 1234, true);

  EXPECT_EQ(ledger.sent_elems(Phase::kOffline, 0, true), 100u);
  EXPECT_EQ(ledger.sent_elems(Phase::kOffline, 0, false), 50u);
  EXPECT_EQ(ledger.recv_elems_of(Phase::kOffline, 1, true), 100u);
  EXPECT_EQ(ledger.recv_elems_of(Phase::kOffline, 2, false), 50u);
  EXPECT_EQ(ledger.messages_sent(Phase::kOffline, 0), 2u);
  EXPECT_EQ(ledger.recv_elems_of(Phase::kUpload, ledger.server_id(), true),
            7u);
  EXPECT_EQ(ledger.compute_elems(Phase::kRecovery, ledger.server_id(),
                                 CompKind::kMaskDecode, true),
            1234u);
  EXPECT_EQ(ledger.max_user_sent_elems(Phase::kOffline, true), 100u);
  EXPECT_EQ(ledger.total_user_sent_elems(Phase::kOffline, false), 50u);

  ledger.reset();
  EXPECT_EQ(ledger.sent_elems(Phase::kOffline, 0, true), 0u);
  EXPECT_EQ(ledger.messages_sent(Phase::kOffline, 0), 0u);
}

TEST(Ledger, ConcurrentLoggingMatchesSerialTotalsExactly) {
  // The sharded atomic counters must make logging from inside parallel
  // regions exact: hammer one ledger from many lanes (including colliding
  // entities) and compare every slot against a serially built reference.
  constexpr std::size_t kUsers = 8;
  constexpr std::size_t kIters = 2000;
  Ledger concurrent(kUsers);
  Ledger serial(kUsers);

  auto log_one = [](Ledger& ledger, std::size_t i) {
    const auto phase = static_cast<Phase>(i % kNumPhases);
    const std::size_t from = i % kUsers;
    const std::size_t to = (i * 7 + 3) % (kUsers + 1);
    ledger.add_message(phase, from, to, 10 + i % 13, i % 2 == 0);
    ledger.add_compute(phase, to,
                       static_cast<CompKind>(i % kNumCompKinds), 1 + i % 5,
                       i % 3 == 0);
  };
  for (std::size_t i = 0; i < kIters; ++i) log_one(serial, i);
  {
    lsa::sys::ThreadPool pool(4);
    pool.parallel_for(kIters,
                      [&](std::size_t i) { log_one(concurrent, i); });
  }

  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    for (std::size_t e = 0; e <= kUsers; ++e) {
      for (const bool scaled : {false, true}) {
        EXPECT_EQ(concurrent.sent_elems(phase, e, scaled),
                  serial.sent_elems(phase, e, scaled));
        EXPECT_EQ(concurrent.recv_elems_of(phase, e, scaled),
                  serial.recv_elems_of(phase, e, scaled));
        for (std::size_t k = 0; k < kNumCompKinds; ++k) {
          EXPECT_EQ(concurrent.compute_elems(phase, e,
                                             static_cast<CompKind>(k),
                                             scaled),
                    serial.compute_elems(phase, e, static_cast<CompKind>(k),
                                         scaled));
        }
      }
      EXPECT_EQ(concurrent.messages_sent(phase, e),
                serial.messages_sent(phase, e));
    }
  }
}

TEST(Ledger, RejectsUnknownEntities) {
  Ledger ledger(2);
  EXPECT_THROW(ledger.add_message(Phase::kOffline, 5, 0, 1, false),
               lsa::Error);
}

TEST(CostModel, CalibrationProducesPositiveCosts) {
  const auto cm = CostModel::calibrate();
  for (std::size_t k = 0; k < kNumCompKinds; ++k) {
    EXPECT_GT(cm.per_elem(static_cast<CompKind>(k)), 0.0) << k;
    EXPECT_LT(cm.per_elem(static_cast<CompKind>(k)), 1.0) << k;
  }
}

TEST(CostModel, ComputeSecondsScalesWithD) {
  CostModel::Profile p{};
  p[static_cast<std::size_t>(CompKind::kPrgExpand)] = 1e-6;
  p[static_cast<std::size_t>(CompKind::kKeyAgree)] = 1e-3;
  CostModel cm(p);
  Ledger ledger(2);
  ledger.add_compute(Phase::kOffline, 0, CompKind::kPrgExpand, 1000, true);
  ledger.add_compute(Phase::kOffline, 0, CompKind::kKeyAgree, 10, false);
  // d_scale multiplies only the scaled entry.
  EXPECT_DOUBLE_EQ(cm.compute_seconds(ledger, Phase::kOffline, 0, 1.0),
                   1e-3 + 1e-2);
  EXPECT_DOUBLE_EQ(cm.compute_seconds(ledger, Phase::kOffline, 0, 10.0),
                   1e-2 + 1e-2);
}

TEST(RoundSim, BreakdownRespectsBandwidthAndOverlap) {
  CostModel::Profile p{};
  CostModel cm(p);  // zero compute: isolate communication
  Ledger ledger(2);
  // Upload: both users send 1e6 elements (4 MB) to the server.
  ledger.add_message(Phase::kUpload, 0, ledger.server_id(), 1000000, true);
  ledger.add_message(Phase::kUpload, 1, ledger.server_id(), 1000000, true);

  BandwidthProfile slow{.user_uplink_bps = 8e6,
                        .user_downlink_bps = 8e6,
                        .server_bps = 1e9,
                        .rtt_s = 0.0};
  BandwidthProfile fast = slow;
  fast.user_uplink_bps = 80e6;

  RoundSimulator sim_slow(cm, slow, {});
  RoundSimulator sim_fast(cm, fast, {});
  const auto rb_slow = sim_slow.simulate(ledger, 1.0, 0.0);
  const auto rb_fast = sim_fast.simulate(ledger, 1.0, 0.0);
  // 4 MB at 1 MB/s = 4 s per user (parallel) vs 0.4 s.
  EXPECT_NEAR(rb_slow.upload, 4.0, 0.2);
  EXPECT_NEAR(rb_fast.upload, 0.4, 0.05);

  // Overlapped total hides the smaller of offline/training.
  RoundBreakdown rb{.offline = 10.0, .training = 6.0, .upload = 1.0,
                    .recovery = 2.0};
  EXPECT_DOUBLE_EQ(rb.total_nonoverlapped(), 19.0);
  EXPECT_DOUBLE_EQ(rb.total_overlapped(), 13.0);
}

TEST(RoundSim, DuplexOverlapHalvesSymmetricExchange) {
  CostModel::Profile p{};
  CostModel cm(p);
  Ledger ledger(2);
  // Offline: users exchange 1e6 elements in both directions.
  ledger.add_message(Phase::kOffline, 0, 1, 1000000, true);
  ledger.add_message(Phase::kOffline, 1, 0, 1000000, true);

  BandwidthProfile bw{.user_uplink_bps = 8e6,
                      .user_downlink_bps = 8e6,
                      .server_bps = 1e12,
                      .rtt_s = 0.0};
  RoundSimulator duplex(cm, bw, {.duplex_overlap = true});
  RoundSimulator sequential(cm, bw, {.duplex_overlap = false});
  const double t_dup = duplex.simulate(ledger, 1.0, 0.0).offline;
  const double t_seq = sequential.simulate(ledger, 1.0, 0.0).offline;
  EXPECT_NEAR(t_seq / t_dup, 2.0, 0.01);
}

TEST(RoundSim, DScaleExtrapolatesScaledTrafficOnly) {
  CostModel::Profile p{};
  CostModel cm(p);
  Ledger ledger(1);
  ledger.add_message(Phase::kUpload, 0, ledger.server_id(), 1000, true);
  ledger.add_message(Phase::kUpload, 0, ledger.server_id(), 500, false);
  BandwidthProfile bw{.user_uplink_bps = 8.0,  // 1 byte/s
                      .user_downlink_bps = 8.0,
                      .server_bps = 1e12,
                      .rtt_s = 0.0};
  RoundSimulator sim(cm, bw, {.element_bytes = 1.0});
  // scale 1: (1000 + 500) bytes at 1 B/s.
  EXPECT_NEAR(sim.simulate(ledger, 1.0, 0.0).upload, 1500.0, 1.0);
  // scale 3: 3*1000 + 500.
  EXPECT_NEAR(sim.simulate(ledger, 3.0, 0.0).upload, 3500.0, 1.0);
}

TEST(Bandwidth, PresetsMatchPaperSettings) {
  EXPECT_DOUBLE_EQ(BandwidthProfile::lte_4g().user_uplink_bps, 98e6);
  EXPECT_DOUBLE_EQ(BandwidthProfile::measured_320mbps().user_uplink_bps,
                   320e6);
  EXPECT_DOUBLE_EQ(BandwidthProfile::nr_5g().user_uplink_bps, 802e6);
}

// LightSecAgg logs per-user ledger entries from INSIDE its parallel encode
// and responder loops; the sharded atomic ledger must produce totals that
// are exact and identical to a serial run at large N — pinned against the
// closed-form per-phase counts.
TEST(Ledger, ParallelProtocolLoggingExactTotalsAtLargeN) {
  using F = lsa::field::Fp32;
  using rep = F::rep;
  const std::size_t n = 128, t = 40, drop = 20, d = 96;

  lsa::protocol::Params base;
  base.num_users = n;
  base.privacy = t;
  base.dropout = drop;
  base.model_dim = d;

  lsa::common::Xoshiro256ss rng(4242);
  std::vector<std::vector<rep>> inputs(n);
  for (auto& v : inputs) v = lsa::field::uniform_vector<F>(d, rng);
  std::vector<bool> dropped(n, false);
  for (std::size_t i = 0; i < drop; ++i) dropped[3 * i] = true;

  Ledger serial_ledger(n);
  {
    lsa::protocol::LightSecAgg<F> proto(base, 9, &serial_ledger);
    (void)proto.run_round(inputs, dropped);
  }

  lsa::sys::ThreadPool pool(4);
  lsa::protocol::Params par = base;
  par.exec = lsa::sys::ExecPolicy{&pool, 0};
  Ledger par_ledger(n);
  {
    lsa::protocol::LightSecAgg<F> proto(par, 9, &par_ledger);
    (void)proto.run_round(inputs, dropped);
  }

  const std::size_t u = n - drop;  // resolved U = N - D
  const std::size_t seg = (d + (u - t) - 1) / (u - t);
  for (std::size_t e = 0; e <= n; ++e) {
    for (const auto ph : {Phase::kOffline, Phase::kUpload, Phase::kRecovery}) {
      for (const bool scaled : {false, true}) {
        EXPECT_EQ(par_ledger.sent_elems(ph, e, scaled),
                  serial_ledger.sent_elems(ph, e, scaled))
            << "entity " << e;
        EXPECT_EQ(par_ledger.recv_elems_of(ph, e, scaled),
                  serial_ledger.recv_elems_of(ph, e, scaled));
        for (std::size_t k = 0; k < kNumCompKinds; ++k) {
          EXPECT_EQ(par_ledger.compute_elems(ph, e, static_cast<CompKind>(k),
                                             scaled),
                    serial_ledger.compute_elems(ph, e,
                                                static_cast<CompKind>(k),
                                                scaled));
        }
      }
    }
    if (e < n) {
      // Closed-form offline traffic: every user ships N-1 shares of seg
      // elements, logged from the parallel encode loop.
      EXPECT_EQ(par_ledger.sent_elems(Phase::kOffline, e, true),
                (n - 1) * seg);
      EXPECT_EQ(par_ledger.messages_sent(Phase::kOffline, e), n - 1);
      // Closed-form offline compute: PRG d + T*seg, encode N*U*seg.
      EXPECT_EQ(par_ledger.compute_elems(Phase::kOffline, e,
                                         CompKind::kPrgExpand, true),
                d + t * seg);
      EXPECT_EQ(par_ledger.compute_elems(Phase::kOffline, e,
                                         CompKind::kMaskEncode, true),
                n * u * seg);
    }
  }
  // Recovery: exactly U responders, one seg-length message each.
  std::uint64_t recovery_msgs = 0;
  for (std::size_t e = 0; e < n; ++e) {
    recovery_msgs += par_ledger.messages_sent(Phase::kRecovery, e);
  }
  EXPECT_EQ(recovery_msgs, u);
}

}  // namespace
