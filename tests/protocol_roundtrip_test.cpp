// Cross-protocol correctness: every protocol must recover the exact field
// sum of the surviving users' inputs for every tolerated dropout pattern.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/fastsecagg.h"
#include "protocol/lightsecagg.h"
#include "protocol/secagg.h"
#include "protocol/secagg_plus.h"

namespace {

using lsa::field::Fp32;
using lsa::protocol::Params;
using rep = Fp32::rep;

std::vector<std::vector<rep>> random_inputs(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> inputs(n);
  for (auto& x : inputs) x = lsa::field::uniform_vector<Fp32>(d, rng);
  return inputs;
}

std::vector<rep> plain_sum(const std::vector<std::vector<rep>>& inputs,
                           const std::vector<bool>& dropped) {
  std::vector<rep> sum(inputs[0].size(), Fp32::zero);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<Fp32>(std::span<rep>(sum),
                                  std::span<const rep>(inputs[i]));
  }
  return sum;
}

struct Case {
  std::size_t n, t, d_drop, dim;
  std::uint64_t seed;
};

class ProtocolRoundtrip : public ::testing::TestWithParam<Case> {};

TEST_P(ProtocolRoundtrip, SecAggMatchesPlainSum) {
  const auto c = GetParam();
  Params p{.num_users = c.n, .privacy = c.t, .dropout = c.d_drop,
           .target_survivors = 0, .model_dim = c.dim};
  lsa::protocol::SecAgg<Fp32> agg(p, c.seed);
  auto inputs = random_inputs(c.n, c.dim, c.seed + 1);
  lsa::common::Xoshiro256ss rng(c.seed + 2);
  std::vector<bool> dropped(c.n, false);
  for (std::size_t k = 0; k < c.d_drop; ++k) {
    std::size_t pick;
    do {
      pick = static_cast<std::size_t>(rng.next_below(c.n));
    } while (dropped[pick]);
    dropped[pick] = true;
  }
  EXPECT_EQ(agg.run_round(inputs, dropped), plain_sum(inputs, dropped));
}

TEST_P(ProtocolRoundtrip, LightSecAggMatchesPlainSum) {
  const auto c = GetParam();
  Params p{.num_users = c.n, .privacy = c.t, .dropout = c.d_drop,
           .target_survivors = 0, .model_dim = c.dim};
  lsa::protocol::LightSecAgg<Fp32> agg(p, c.seed);
  auto inputs = random_inputs(c.n, c.dim, c.seed + 1);
  lsa::common::Xoshiro256ss rng(c.seed + 2);
  std::vector<bool> dropped(c.n, false);
  for (std::size_t k = 0; k < c.d_drop; ++k) {
    std::size_t pick;
    do {
      pick = static_cast<std::size_t>(rng.next_below(c.n));
    } while (dropped[pick]);
    dropped[pick] = true;
  }
  EXPECT_EQ(agg.run_round(inputs, dropped), plain_sum(inputs, dropped));
}

TEST_P(ProtocolRoundtrip, FastSecAggMatchesPlainSum) {
  const auto c = GetParam();
  Params p{.num_users = c.n, .privacy = c.t, .dropout = c.d_drop,
           .target_survivors = 0, .model_dim = c.dim};
  lsa::protocol::FastSecAgg<Fp32> agg(p, c.seed);
  auto inputs = random_inputs(c.n, c.dim, c.seed + 1);
  lsa::common::Xoshiro256ss rng(c.seed + 2);
  std::vector<bool> dropped(c.n, false);
  for (std::size_t k = 0; k < c.d_drop; ++k) {
    std::size_t pick;
    do {
      pick = static_cast<std::size_t>(rng.next_below(c.n));
    } while (dropped[pick]);
    dropped[pick] = true;
  }
  EXPECT_EQ(agg.run_round(inputs, dropped), plain_sum(inputs, dropped));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolRoundtrip,
    ::testing::Values(
        Case{3, 1, 1, 8, 101},       // the paper's running example
        Case{4, 1, 2, 16, 202},
        Case{8, 3, 4, 32, 303},
        Case{10, 5, 4, 64, 404},
        Case{16, 8, 7, 10, 505},
        Case{20, 10, 9, 24, 606},
        Case{12, 0, 5, 16, 707},     // T = 0 edge case
        Case{9, 4, 0, 16, 808},      // no dropouts
        Case{25, 12, 12, 8, 909}));  // T + D = N - 1 (boundary)

TEST(SecAggPlusRoundtrip, SparseGraphRandomDropouts) {
  // Degree and threshold chosen so random dropouts keep every neighborhood
  // recoverable with overwhelming probability at p ~ 0.25.
  const std::size_t n = 24, dim = 32;
  Params p{.num_users = n, .privacy = 3, .dropout = 6,
           .target_survivors = 0, .model_dim = dim};
  lsa::protocol::SecAggPlus<Fp32> agg(p, 42, nullptr, /*degree=*/10,
                                      /*share_threshold=*/3);
  auto inputs = random_inputs(n, dim, 43);
  lsa::common::Xoshiro256ss rng(44);
  std::vector<bool> dropped(n, false);
  for (std::size_t k = 0; k < 6; ++k) {
    std::size_t pick;
    do {
      pick = static_cast<std::size_t>(rng.next_below(n));
    } while (dropped[pick]);
    dropped[pick] = true;
  }
  EXPECT_EQ(agg.run_round(inputs, dropped), plain_sum(inputs, dropped));
}

TEST(SecAggPlusRoundtrip, ThrowsWhenNeighborhoodUnrecoverable) {
  // Drop an entire neighborhood: the dropped user's sk becomes
  // unrecoverable and the protocol must fail loudly, not return garbage.
  const std::size_t n = 12, dim = 8;
  Params p{.num_users = n, .privacy = 2, .dropout = 7,
           .target_survivors = 0, .model_dim = dim};
  lsa::protocol::SecAggPlus<Fp32> agg(p, 7, nullptr, /*degree=*/4,
                                      /*share_threshold=*/2);
  auto inputs = random_inputs(n, dim, 8);
  std::vector<bool> dropped(n, false);
  dropped[0] = true;
  for (std::size_t j : agg.graph().neighbors(0)) dropped[j] = true;
  EXPECT_THROW((void)agg.run_round(inputs, dropped), lsa::ProtocolError);
}

TEST(LightSecAggRoundtrip, ThrowsWithTooManyDropouts) {
  Params p{.num_users = 8, .privacy = 2, .dropout = 2,
           .target_survivors = 6, .model_dim = 16};
  lsa::protocol::LightSecAgg<Fp32> agg(p, 1);
  auto inputs = random_inputs(8, 16, 2);
  std::vector<bool> dropped(8, false);
  dropped[0] = dropped[1] = dropped[2] = true;  // 5 survivors < U = 6
  EXPECT_THROW((void)agg.run_round(inputs, dropped), lsa::ProtocolError);
}

TEST(LightSecAggRoundtrip, WorksAtExactlyUSurvivors) {
  Params p{.num_users = 8, .privacy = 2, .dropout = 2,
           .target_survivors = 6, .model_dim = 16};
  lsa::protocol::LightSecAgg<Fp32> agg(p, 1);
  auto inputs = random_inputs(8, 16, 2);
  std::vector<bool> dropped(8, false);
  dropped[3] = dropped[7] = true;
  EXPECT_EQ(agg.run_round(inputs, dropped), plain_sum(inputs, dropped));
}

TEST(ParamsValidation, RejectsBadCombinations) {
  Params p{.num_users = 10, .privacy = 5, .dropout = 5,
           .target_survivors = 0, .model_dim = 4};
  EXPECT_THROW(p.validate_and_resolve(), lsa::ProtocolError);  // T + D = N
  Params p2{.num_users = 10, .privacy = 6, .dropout = 3,
            .target_survivors = 6, .model_dim = 4};
  EXPECT_THROW(p2.validate_and_resolve(), lsa::ProtocolError);  // U <= T
  Params p3{.num_users = 10, .privacy = 2, .dropout = 3,
            .target_survivors = 8, .model_dim = 4};
  EXPECT_THROW(p3.validate_and_resolve(), lsa::ProtocolError);  // U > N - D
}

TEST(LedgerAccounting, LightSecAggRecoveryTrafficMatchesFormula) {
  // Each of the U responders sends one length-seg share: U * ceil(d/(U-T))
  // elements — the paper's U/(U-T) * d server recovery traffic.
  const std::size_t n = 10, t = 3, drop = 2, dim = 60;
  Params p{.num_users = n, .privacy = t, .dropout = drop,
           .target_survivors = 0, .model_dim = dim};
  lsa::net::Ledger ledger(n);
  lsa::protocol::LightSecAgg<Fp32> agg(p, 5, &ledger);
  auto inputs = random_inputs(n, dim, 6);
  std::vector<bool> dropped(n, false);
  dropped[1] = dropped[4] = true;
  (void)agg.run_round(inputs, dropped);

  const std::size_t u = agg.params().target_survivors;  // N - D = 8
  const std::size_t seg = (dim + (u - t) - 1) / (u - t);
  std::uint64_t recovery_elems = 0;
  for (std::size_t i = 0; i < n; ++i) {
    recovery_elems += ledger.sent_elems(lsa::net::Phase::kRecovery, i, true);
  }
  EXPECT_EQ(recovery_elems, u * seg);
}

}  // namespace
