// Field axioms and vector kernels, checked for both instantiations
// (Fp32 = 2^32-5 used by the protocols, Fp61 = 2^61-1 Mersenne).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;

template <class F>
class FieldAxioms : public ::testing::Test {};

using Fields = ::testing::Types<Fp32, Fp61, Goldilocks>;
TYPED_TEST_SUITE(FieldAxioms, Fields);

TYPED_TEST(FieldAxioms, AdditionGroup) {
  using F = TypeParam;
  lsa::common::Xoshiro256ss rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto a = lsa::field::uniform<F>(rng);
    const auto b = lsa::field::uniform<F>(rng);
    const auto c = lsa::field::uniform<F>(rng);
    EXPECT_EQ(F::add(a, b), F::add(b, a));
    EXPECT_EQ(F::add(F::add(a, b), c), F::add(a, F::add(b, c)));
    EXPECT_EQ(F::add(a, F::zero), a);
    EXPECT_EQ(F::add(a, F::neg(a)), F::zero);
    EXPECT_EQ(F::sub(a, b), F::add(a, F::neg(b)));
  }
}

TYPED_TEST(FieldAxioms, MultiplicationFieldStructure) {
  using F = TypeParam;
  lsa::common::Xoshiro256ss rng(12);
  for (int i = 0; i < 2000; ++i) {
    const auto a = lsa::field::uniform<F>(rng);
    const auto b = lsa::field::uniform<F>(rng);
    const auto c = lsa::field::uniform<F>(rng);
    EXPECT_EQ(F::mul(a, b), F::mul(b, a));
    EXPECT_EQ(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
    EXPECT_EQ(F::mul(a, F::one), a);
    // Distributivity.
    EXPECT_EQ(F::mul(a, F::add(b, c)),
              F::add(F::mul(a, b), F::mul(a, c)));
    if (a != F::zero) {
      EXPECT_EQ(F::mul(a, F::inv(a)), F::one);
    }
  }
}

TYPED_TEST(FieldAxioms, PowMatchesRepeatedMul) {
  using F = TypeParam;
  lsa::common::Xoshiro256ss rng(13);
  for (int i = 0; i < 100; ++i) {
    const auto a = lsa::field::uniform<F>(rng);
    typename F::rep acc = F::one;
    for (std::uint64_t e = 0; e < 16; ++e) {
      EXPECT_EQ(F::pow(a, e), acc);
      acc = F::mul(acc, a);
    }
  }
  // Fermat: a^(q-1) = 1 for a != 0.
  for (int i = 0; i < 50; ++i) {
    auto a = lsa::field::uniform<F>(rng);
    if (a == F::zero) a = F::one;
    EXPECT_EQ(F::pow(a, F::modulus - 1), F::one);
  }
}

TYPED_TEST(FieldAxioms, SignedEmbeddingRoundTrip) {
  using F = TypeParam;
  lsa::common::Xoshiro256ss rng(14);
  for (int i = 0; i < 2000; ++i) {
    const auto mag = static_cast<std::int64_t>(
        rng.next_below(std::min<std::uint64_t>(F::modulus / 4, 1ull << 40)));
    const std::int64_t v = (i % 2 == 0) ? mag : -mag;
    EXPECT_EQ(F::to_i64(F::from_i64(v)), v);
  }
  EXPECT_EQ(F::to_i64(F::from_i64(0)), 0);
  EXPECT_EQ(F::to_i64(F::from_i64(-1)), -1);
  // Sums of embedded values demap correctly while within range.
  const auto s = F::add(F::from_i64(-1000), F::from_i64(250));
  EXPECT_EQ(F::to_i64(s), -750);
}

TYPED_TEST(FieldAxioms, InvZeroThrows) {
  using F = TypeParam;
  EXPECT_THROW((void)F::inv(F::zero), lsa::Error);
}

TEST(FieldVec, AddSubScaleAxpy) {
  using F = Fp32;
  lsa::common::Xoshiro256ss rng(20);
  auto a = lsa::field::uniform_vector<F>(257, rng);
  auto b = lsa::field::uniform_vector<F>(257, rng);
  const auto orig = a;

  lsa::field::add_inplace<F>(std::span<F::rep>(a), std::span<const F::rep>(b));
  lsa::field::sub_inplace<F>(std::span<F::rep>(a), std::span<const F::rep>(b));
  EXPECT_EQ(a, orig);

  auto c = lsa::field::add<F>(std::span<const F::rep>(a),
                              std::span<const F::rep>(b));
  auto d = lsa::field::sub<F>(std::span<const F::rep>(c),
                              std::span<const F::rep>(a));
  EXPECT_EQ(d, b);

  // axpy(acc, s, x) == acc + scale(x, s)
  auto e = a;
  lsa::field::axpy_inplace<F>(std::span<F::rep>(e), 777u,
                              std::span<const F::rep>(b));
  auto f = b;
  lsa::field::scale_inplace<F>(std::span<F::rep>(f), 777u);
  lsa::field::add_inplace<F>(std::span<F::rep>(f), std::span<const F::rep>(a));
  EXPECT_EQ(e, f);
}

TEST(FieldVec, SizeMismatchThrows) {
  using F = Fp32;
  std::vector<F::rep> a(4), b(5);
  EXPECT_THROW(lsa::field::add_inplace<F>(std::span<F::rep>(a),
                                          std::span<const F::rep>(b)),
               lsa::Error);
}

TEST(FieldVec, BatchInvMatchesScalarInv) {
  using F = Fp32;
  lsa::common::Xoshiro256ss rng(21);
  std::vector<F::rep> xs(100);
  for (auto& x : xs) {
    do {
      x = lsa::field::uniform<F>(rng);
    } while (x == F::zero);
  }
  auto ys = xs;
  lsa::field::batch_inv_inplace<F>(std::span<F::rep>(ys));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(ys[i], F::inv(xs[i]));
  }
}

TEST(FieldVec, DotAndSum) {
  using F = Fp32;
  std::vector<F::rep> a = {1, 2, 3};
  std::vector<F::rep> b = {4, 5, 6};
  EXPECT_EQ(lsa::field::dot<F>(std::span<const F::rep>(a),
                               std::span<const F::rep>(b)),
            4u + 10u + 18u);
  EXPECT_EQ(lsa::field::sum<F>(std::span<const F::rep>(a)), 6u);
}

TEST(RandomField, UniformityChiSquare) {
  // 16 equiprobable bins over Fp32; chi2(15 dof) < 40 is ~p > 0.999.
  using F = Fp32;
  lsa::common::Xoshiro256ss rng(22);
  std::vector<std::size_t> bins(16, 0);
  const std::uint64_t bin_width = F::modulus / 16 + 1;
  constexpr int kSamples = 160000;
  for (int i = 0; i < kSamples; ++i) {
    bins[lsa::field::uniform<F>(rng) / bin_width]++;
  }
  EXPECT_LT(lsa::common::chi_square_uniform(bins), 40.0);
}

TEST(RandomField, PrgIsBitSourceToo) {
  using F = Fp32;
  lsa::crypto::Prg prg(lsa::crypto::seed_from_u64(9));
  auto v = lsa::field::uniform_vector<F>(1000, prg);
  for (auto x : v) EXPECT_LT(static_cast<std::uint64_t>(x), F::modulus);
}

}  // namespace
