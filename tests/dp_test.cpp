// Differential-privacy substrate: zCDP accounting arithmetic, the Gaussian
// mechanism's clipping and noise statistics, and the FedBuff integration
// through the update_transform hook.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "dp/mechanism.h"
#include "fl/dataset.h"
#include "fl/fedbuff.h"
#include "fl/model.h"

namespace {

namespace dp = lsa::dp;

TEST(ZcdpAccountant, SingleReleaseKnownValue) {
  dp::ZcdpAccountant acct;
  acct.add_release(/*noise_multiplier=*/1.0);
  EXPECT_DOUBLE_EQ(acct.rho(), 0.5);
  EXPECT_EQ(acct.releases(), 1u);
  // eps(1e-5) = 0.5 + 2*sqrt(0.5 * ln(1e5)).
  const double expect = 0.5 + 2.0 * std::sqrt(0.5 * std::log(1e5));
  EXPECT_NEAR(acct.epsilon(1e-5), expect, 1e-12);
}

TEST(ZcdpAccountant, CompositionIsAdditiveInRho) {
  dp::ZcdpAccountant acct;
  for (int i = 0; i < 10; ++i) acct.add_release(2.0);
  EXPECT_NEAR(acct.rho(), 10.0 / 8.0, 1e-12);  // 10 * 1/(2*4)
  EXPECT_DOUBLE_EQ(acct.rho(),
                   10 * [] {
                     dp::ZcdpAccountant one;
                     one.add_release(2.0);
                     return one.rho();
                   }());
}

TEST(ZcdpAccountant, EpsilonMonotonicity) {
  // More releases -> more epsilon; more noise -> less epsilon;
  // smaller delta -> more epsilon.
  EXPECT_LT(dp::ZcdpAccountant::epsilon_for(1.0, 1, 1e-5),
            dp::ZcdpAccountant::epsilon_for(1.0, 5, 1e-5));
  EXPECT_GT(dp::ZcdpAccountant::epsilon_for(0.5, 3, 1e-5),
            dp::ZcdpAccountant::epsilon_for(2.0, 3, 1e-5));
  EXPECT_GT(dp::ZcdpAccountant::epsilon_for(1.0, 3, 1e-8),
            dp::ZcdpAccountant::epsilon_for(1.0, 3, 1e-3));
}

TEST(ZcdpAccountant, RejectsBadParameters) {
  dp::ZcdpAccountant acct;
  EXPECT_THROW(acct.add_release(0.0), lsa::ConfigError);
  EXPECT_THROW((void)acct.epsilon(0.0), lsa::ConfigError);
  EXPECT_THROW((void)acct.epsilon(1.0), lsa::ConfigError);
  EXPECT_DOUBLE_EQ(acct.epsilon(0.5), 0.0);  // nothing released yet
}

TEST(GaussianMechanism, ClippingBoundsTheNorm) {
  std::vector<double> v{3.0, 4.0};  // norm 5
  const double pre = dp::clip_to_norm(v, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::sqrt(v[0] * v[0] + v[1] * v[1]), 1.0, 1e-12);

  std::vector<double> small{0.1, 0.1};
  (void)dp::clip_to_norm(small, 1.0);
  EXPECT_DOUBLE_EQ(small[0], 0.1);  // under the bound: untouched
}

TEST(GaussianMechanism, NoiseStatisticsMatchSigma) {
  dp::GaussianDpConfig cfg;
  cfg.clip = 2.0;
  cfg.noise_multiplier = 1.5;  // noise std = 3.0
  lsa::common::Xoshiro256ss rng(21);

  const std::size_t d = 20000;
  std::vector<double> zeros(d, 0.0);
  dp::gaussian_mechanism(zeros, cfg, rng);
  double mean = 0;
  for (const double x : zeros) mean += x;
  mean /= static_cast<double>(d);
  double var = 0;
  for (const double x : zeros) var += (x - mean) * (x - mean);
  var /= static_cast<double>(d - 1);

  EXPECT_NEAR(mean, 0.0, 0.1);           // ~3/sqrt(20000) = 0.02, 5 sigma
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);  // sigma * clip
}

TEST(GaussianMechanism, TransformChargesAccountantPerUpdate) {
  dp::GaussianDpConfig cfg;
  cfg.noise_multiplier = 1.0;
  dp::ZcdpAccountant acct;
  auto transform = dp::make_local_dp_transform(cfg, &acct);
  std::vector<double> u{1.0, 2.0};
  transform(u, 0);
  transform(u, 3);
  transform(u, 0);
  EXPECT_EQ(acct.releases(), 3u);
  EXPECT_NEAR(acct.rho(), 1.5, 1e-12);
}

TEST(GaussianMechanism, TransformNoiseDiffersAcrossCallsAndUsers) {
  dp::GaussianDpConfig cfg;
  cfg.noise_multiplier = 1.0;
  cfg.clip = 100.0;  // effectively no clipping of the small test vectors
  auto transform = dp::make_local_dp_transform(cfg);
  std::vector<double> a{0.0, 0.0, 0.0};
  std::vector<double> b{0.0, 0.0, 0.0};
  std::vector<double> a2{0.0, 0.0, 0.0};
  transform(a, 0);
  transform(b, 1);
  transform(a2, 0);  // same user, later call: fresh noise
  EXPECT_NE(a, b);
  EXPECT_NE(a, a2);
}

// End-to-end: local DP degrades FedBuff accuracy monotonically in noise.
TEST(DpFedBuff, AccuracyDegradesWithNoise) {
  auto data = lsa::fl::SyntheticDataset::mnist_like(600, 200, 31);
  auto partitions = data.partition_iid(20, 32);

  auto run_with_sigma = [&](double sigma) {
    lsa::fl::LogisticRegression model(784, 10, 33);
    lsa::fl::FedBuffConfig cfg;
    cfg.rounds = 12;
    cfg.buffer_k = 5;
    cfg.tau_max = 4;
    cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.1};
    cfg.seed = 34;
    if (sigma > 0) {
      dp::GaussianDpConfig dpc;
      dpc.clip = 1.0;
      dpc.noise_multiplier = sigma;
      dpc.seed = 35;
      cfg.update_transform = dp::make_local_dp_transform(dpc);
    }
    const auto curve = lsa::fl::run_fedbuff(model, data, partitions, cfg);
    return curve.back().test_accuracy;
  };

  const double clean = run_with_sigma(0.0);
  const double noisy = run_with_sigma(4.0);
  EXPECT_GT(clean, 0.85);        // the task is learnable
  EXPECT_LT(noisy, clean - 0.1);  // heavy DP noise hurts
}

}  // namespace
