// FastSecAgg-specific behaviour: the K + T + D <= N guarantee budget, the
// online (non-precomputable) share traffic, multi-round reuse, and the
// statistical privacy of any T shares of a shared model.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/fastsecagg.h"
#include "protocol/lightsecagg.h"

namespace {

using F = lsa::field::Fp32;
using rep = F::rep;
using lsa::protocol::Params;

std::vector<std::vector<rep>> random_inputs(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> inputs(n);
  for (auto& x : inputs) x = lsa::field::uniform_vector<F>(d, rng);
  return inputs;
}

TEST(FastSecAgg, PackingRateIsTheGuaranteeBudgetRemainder) {
  // N = 12, T = 3, D = 4 -> U = 8, K = U - T = 5: exactly N - T - D... with
  // the default U = N - D. Raising T or D shrinks K one-for-one.
  Params p{.num_users = 12, .privacy = 3, .dropout = 4,
           .target_survivors = 0, .model_dim = 100};
  lsa::protocol::FastSecAgg<F> agg(p, 1);
  EXPECT_EQ(agg.packing_rate(), 5u);

  Params p2{.num_users = 12, .privacy = 6, .dropout = 4,
            .target_survivors = 0, .model_dim = 100};
  lsa::protocol::FastSecAgg<F> agg2(p2, 1);
  EXPECT_EQ(agg2.packing_rate(), 2u);  // privacy +3 => rate -3
}

TEST(FastSecAgg, ShareTrafficIsOnlineNotOffline) {
  // The defining system property vs LightSecAgg: FastSecAgg's N^2 share
  // exchange carries the *model*, so it cannot be precomputed — the ledger
  // must show zero offline bytes and all share traffic in upload/recovery.
  Params p{.num_users = 8, .privacy = 2, .dropout = 2,
           .target_survivors = 0, .model_dim = 60};
  lsa::net::Ledger fast_ledger(8);
  lsa::protocol::FastSecAgg<F> fast(p, 3, &fast_ledger);
  auto inputs = random_inputs(8, 60, 4);
  std::vector<bool> dropped(8, false);
  dropped[1] = true;
  (void)fast.run_round(inputs, dropped);

  const auto fast_offline =
      fast_ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true);
  const auto fast_upload =
      fast_ledger.total_user_sent_elems(lsa::net::Phase::kUpload, true);
  EXPECT_EQ(fast_offline, 0u);
  EXPECT_GT(fast_upload, 0u);

  // LightSecAgg on the same round: share exchange in the offline phase.
  lsa::net::Ledger lsa_ledger(8);
  lsa::protocol::LightSecAgg<F> light(p, 3, &lsa_ledger);
  (void)light.run_round(inputs, dropped);
  EXPECT_GT(lsa_ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true), 0u);
}

TEST(FastSecAgg, MultipleRoundsFreshRandomness) {
  Params p{.num_users = 6, .privacy = 2, .dropout = 1,
           .target_survivors = 0, .model_dim = 24};
  lsa::protocol::FastSecAgg<F> agg(p, 5);
  for (int round = 0; round < 5; ++round) {
    auto inputs = random_inputs(6, 24, 100 + round);
    std::vector<bool> dropped(6, false);
    dropped[static_cast<std::size_t>(round) % 6] = true;
    std::vector<rep> expect(24, F::zero);
    for (std::size_t i = 0; i < 6; ++i) {
      if (!dropped[i]) {
        lsa::field::add_inplace<F>(std::span<rep>(expect),
                                   std::span<const rep>(inputs[i]));
      }
    }
    EXPECT_EQ(agg.run_round(inputs, dropped), expect) << "round " << round;
  }
}

TEST(FastSecAgg, ThrowsBelowSurvivorThreshold) {
  Params p{.num_users = 6, .privacy = 2, .dropout = 2,
           .target_survivors = 0, .model_dim = 8};
  lsa::protocol::FastSecAgg<F> agg(p, 7);
  auto inputs = random_inputs(6, 8, 8);
  std::vector<bool> dropped(6, false);
  dropped[0] = dropped[1] = dropped[2] = true;  // 3 > D = 2
  EXPECT_THROW((void)agg.run_round(inputs, dropped), lsa::ProtocolError);
}

TEST(FastSecAgg, AnyTSharesOfAModelLookUniform) {
  // T-privacy of the ramp sharing when the shared vector is the *model*:
  // the marginal of any T shares must be indistinguishable from uniform.
  // chi^2 over byte buckets of share elements across many fresh sharings.
  const std::size_t n = 8, u = 5, t = 2, d = 20;
  lsa::coding::MaskCodec<F> codec(n, u, t, d);
  lsa::common::Xoshiro256ss rng(99);

  // A pathological, highly structured "model": all zeros.
  const std::vector<rep> model(d, F::zero);
  constexpr int kBuckets = 16;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  std::uint64_t total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto shares = codec.encode(std::span<const rep>(model), rng);
    // Inspect shares of users 2 and 6 (an arbitrary T-subset).
    for (const std::size_t j : {std::size_t{2}, std::size_t{6}}) {
      for (const rep v : shares[j]) {
        counts[static_cast<std::size_t>(v) % kBuckets]++;
        ++total;
      }
    }
  }
  const double expected =
      static_cast<double>(total) / static_cast<double>(kBuckets);
  double chi2 = 0;
  for (const auto c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  // 15 dof; 99.9th percentile ~ 37.7. Generous bound to avoid flakes.
  EXPECT_LT(chi2, 45.0);
}

}  // namespace
