// Public API (core/session.h): end-to-end secure averaging through every
// protocol, ledger exposure, and round-time estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/session.h"
#include "field/random_field.h"

namespace {

std::vector<std::vector<double>> random_locals(std::size_t n, std::size_t d,
                                               std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<double>> locals(n);
  for (auto& v : locals) {
    v.resize(d);
    for (auto& x : v) x = rng.next_gaussian();
  }
  return locals;
}

std::vector<double> plain_average(
    const std::vector<std::vector<double>>& locals,
    const std::vector<bool>& dropped) {
  std::vector<double> avg(locals[0].size(), 0.0);
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < locals.size(); ++i) {
    if (dropped[i]) continue;
    ++survivors;
    for (std::size_t k = 0; k < avg.size(); ++k) avg[k] += locals[i][k];
  }
  for (auto& v : avg) v /= static_cast<double>(survivors);
  return avg;
}

class SessionAllProtocols
    : public ::testing::TestWithParam<lsa::ProtocolKind> {};

TEST_P(SessionAllProtocols, AverageMatchesPlaintext) {
  lsa::SessionConfig cfg;
  cfg.protocol = GetParam();
  cfg.num_users = 10;
  cfg.privacy = 3;
  cfg.dropout = 2;
  cfg.model_dim = 64;
  cfg.seed = 5;
  if (cfg.protocol == lsa::ProtocolKind::kSecAggPlus) {
    cfg.graph_degree = 6;
    cfg.graph_threshold = 2;
  }
  lsa::Session session(cfg);

  auto locals = random_locals(10, 64, 6);
  std::vector<bool> dropped(10, false);
  dropped[2] = dropped[7] = true;

  const auto secure = session.aggregate_average(locals, dropped);
  const auto plain = plain_average(locals, dropped);
  ASSERT_EQ(secure.size(), plain.size());
  for (std::size_t k = 0; k < plain.size(); ++k) {
    EXPECT_NEAR(secure[k], plain[k], 1e-4) << "coord " << k;
  }
  EXPECT_EQ(session.rounds_completed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SessionAllProtocols,
                         ::testing::Values(lsa::ProtocolKind::kSecAgg,
                                           lsa::ProtocolKind::kSecAggPlus,
                                           lsa::ProtocolKind::kLightSecAgg,
                                           lsa::ProtocolKind::kFastSecAgg,
                                           lsa::ProtocolKind::kZhaoSun));

TEST(Session, LedgerAccumulatesAndEstimatesTime) {
  lsa::SessionConfig cfg;
  cfg.protocol = lsa::ProtocolKind::kLightSecAgg;
  cfg.num_users = 8;
  cfg.privacy = 2;
  cfg.dropout = 2;
  cfg.model_dim = 40;
  lsa::Session session(cfg);

  auto locals = random_locals(8, 40, 7);
  std::vector<bool> dropped(8, false);
  (void)session.aggregate_average(locals, dropped);

  // Upload traffic: 8 users x 40 elements (d-scaled).
  std::uint64_t upload = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    upload += session.ledger().sent_elems(lsa::net::Phase::kUpload, i, true);
  }
  EXPECT_EQ(upload, 8u * 40u);

  // Timing estimate at full model scale: slower links -> slower rounds.
  const auto cost = lsa::net::CostModel::paper_stack();
  const auto t_4g = session.estimate_round_time(
      cost, lsa::net::BandwidthProfile::lte_4g(), 1.2e6, 22.8);
  const auto t_5g = session.estimate_round_time(
      cost, lsa::net::BandwidthProfile::nr_5g(), 1.2e6, 22.8);
  EXPECT_GT(t_4g.total_nonoverlapped(), t_5g.total_nonoverlapped());
  EXPECT_GT(t_4g.offline, 0.0);
  EXPECT_GT(t_4g.recovery, 0.0);
  EXPECT_DOUBLE_EQ(t_4g.training, 22.8);

  session.reset_ledger();
  EXPECT_EQ(session.rounds_completed(), 0u);
  EXPECT_THROW((void)session.estimate_round_time(
                   cost, lsa::net::BandwidthProfile::nr_5g(), 1e6, 1.0),
               lsa::ConfigError);
}

TEST(Session, FieldAggregationBypassesQuantization) {
  lsa::SessionConfig cfg;
  cfg.protocol = lsa::ProtocolKind::kLightSecAgg;
  cfg.num_users = 6;
  cfg.privacy = 2;
  cfg.dropout = 1;
  cfg.model_dim = 16;
  lsa::Session session(cfg);

  lsa::common::Xoshiro256ss rng(9);
  std::vector<std::vector<lsa::Session::Field::rep>> inputs(6);
  std::vector<lsa::Session::Field::rep> expected(16, 0);
  std::vector<bool> dropped(6, false);
  dropped[4] = true;
  for (std::size_t i = 0; i < 6; ++i) {
    inputs[i] = lsa::field::uniform_vector<lsa::Session::Field>(16, rng);
    if (dropped[i]) continue;
    for (std::size_t k = 0; k < 16; ++k) {
      expected[k] = lsa::Session::Field::add(expected[k], inputs[i][k]);
    }
  }
  EXPECT_EQ(session.aggregate_field(inputs, dropped), expected);
}

TEST(Session, InvalidConfigThrows) {
  lsa::SessionConfig cfg;
  cfg.num_users = 4;
  cfg.privacy = 2;
  cfg.dropout = 2;  // T + D = N
  cfg.model_dim = 8;
  EXPECT_THROW(lsa::Session s(cfg), lsa::ProtocolError);
}

TEST(Session, ProtocolNames) {
  EXPECT_STREQ(lsa::protocol_name(lsa::ProtocolKind::kSecAgg), "SecAgg");
  EXPECT_STREQ(lsa::protocol_name(lsa::ProtocolKind::kSecAggPlus), "SecAgg+");
  EXPECT_STREQ(lsa::protocol_name(lsa::ProtocolKind::kFastSecAgg),
               "FastSecAgg");
  EXPECT_STREQ(lsa::protocol_name(lsa::ProtocolKind::kZhaoSun),
               "ZhaoSun-TTP");
  EXPECT_STREQ(lsa::protocol_name(lsa::ProtocolKind::kLightSecAgg),
               "LightSecAgg");
}

}  // namespace
