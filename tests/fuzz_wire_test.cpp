// Fuzz-style robustness tests: random and mutated byte streams thrown at the
// wire deserializer and mutated frames at a live network round. The
// deserializer must reject garbage with a typed error, never crash or
// accept silently-corrupted payloads.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/random_field.h"
#include "protocol/lightsecagg.h"
#include "quant/staleness.h"
#include "runtime/machines.h"
#include "runtime/wire.h"
#include "server/aggregation_server.h"
#include "transport/buffer_pool.h"
#include "transport/frame.h"
#include "transport/socket/frame_decoder.h"

namespace {

using namespace lsa::runtime;
using lsa::field::Fp32;
using rep = Fp32::rep;

TEST(Crc32, SliceBy8MatchesBitwiseReferenceOnBoundaryInputs) {
  // Known answer: CRC32("123456789") = 0xCBF43926.
  const char* check = "123456789";
  const std::span<const std::uint8_t> check_span(
      reinterpret_cast<const std::uint8_t*>(check), 9);
  EXPECT_EQ(crc32(check_span), 0xCBF43926u);
  EXPECT_EQ(crc32_reference(check_span), 0xCBF43926u);

  // Boundary shapes: empty, every length straddling the 8-byte slicing
  // granularity, constant fills.
  for (std::size_t len = 0; len <= 40; ++len) {
    for (const std::uint8_t fill : {0x00, 0xFF, 0x5A}) {
      std::vector<std::uint8_t> buf(len, fill);
      EXPECT_EQ(crc32(buf), crc32_reference(buf)) << "len " << len;
    }
  }
}

TEST(Crc32, SliceBy8MatchesBitwiseReferenceOnRandomInputs) {
  lsa::common::Xoshiro256ss rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t len = rng.next_below(513);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    ASSERT_EQ(crc32(buf), crc32_reference(buf)) << "trial " << trial;
  }
}

TEST(FuzzWire, RandomBytesNeverCrash) {
  lsa::common::Xoshiro256ss rng(1);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.next_below(200);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      const auto m = deserialize(buf);
      // Acceptance requires a valid CRC over a consistent length — possible
      // but astronomically unlikely for random bytes (zero-length payloads
      // with crc 0... those are legitimately consistent frames).
      if (!m.payload.empty()) ++accepted;
    } catch (const lsa::Error&) {
      // expected
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzWire, SingleByteMutationsAreDetectedOrHarmless) {
  // Mutate each byte position of a valid frame; the result must either
  // throw or decode to a *different header* (header bytes are not integrity
  // protected — transport-level corruption of the payload is).
  Message m;
  m.type = MsgType::kMaskedModel;
  m.sender = 3;
  m.receiver = 9;
  m.round = 77;
  m.payload = {10, 20, 30, 40, 50};
  const auto frame = serialize(m);

  for (std::size_t pos = kHeaderBytes; pos < frame.size(); ++pos) {
    for (std::uint8_t bit : {0x01, 0x80}) {
      auto mutated = frame;
      mutated[pos] ^= bit;
      EXPECT_THROW((void)deserialize(mutated), lsa::ProtocolError)
          << "payload byte " << pos << " bit " << int(bit);
    }
  }
}

TEST(FuzzWire, LengthFieldMutationsRejected) {
  Message m;
  m.payload = {1, 2, 3};
  auto frame = serialize(m);
  // The payload-length field lives at offset 20 (after type/flags/sender/
  // receiver/round).
  for (int delta : {1, 2, 255}) {
    auto mutated = frame;
    mutated[20] = static_cast<std::uint8_t>(mutated[20] + delta);
    EXPECT_THROW((void)deserialize(mutated), lsa::ProtocolError);
  }
}

TEST(FuzzPooledFrames, RandomBytesNeverAccepted) {
  lsa::transport::BufferPool pool;
  lsa::common::Xoshiro256ss rng(5);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.next_below(200);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto frame = lsa::transport::frame_from_bytes(pool, buf);
    try {
      const auto view = lsa::transport::parse_frame(frame);
      if (!view.payload.empty()) ++accepted;
    } catch (const lsa::Error&) {
      // expected
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzPooledFrames, TruncationBitFlipsAndBadLengthsRejected) {
  lsa::transport::BufferPool pool;
  const std::vector<rep> payload = {10, 20, 30, 40, 50};
  const auto frame =
      lsa::transport::build_frame(pool, MsgType::kMaskedModel, 3, 9, 77,
                                  std::span<const rep>(payload));
  const auto bytes = frame.bytes();
  const std::vector<std::uint8_t> good(bytes.begin(), bytes.end());

  // Sanity: the untampered frame parses.
  EXPECT_NO_THROW((void)lsa::transport::parse_frame(frame));

  // Truncation at every boundary.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, kHeaderBytes - 1, kHeaderBytes,
        good.size() - 4, good.size() - 1}) {
    const auto cut = lsa::transport::frame_from_bytes(
        pool, std::span<const std::uint8_t>(good.data(), keep));
    EXPECT_THROW((void)lsa::transport::parse_frame(cut), lsa::ProtocolError)
        << "kept " << keep;
  }

  // Payload bit flips (CRC) — every byte, two bit positions.
  for (std::size_t pos = kHeaderBytes; pos < good.size(); ++pos) {
    for (const std::uint8_t bit : {0x01, 0x80}) {
      auto mutated = good;
      mutated[pos] ^= bit;
      const auto f = lsa::transport::frame_from_bytes(pool, mutated);
      EXPECT_THROW((void)lsa::transport::parse_frame(f), lsa::ProtocolError)
          << "payload byte " << pos << " bit " << int(bit);
    }
  }

  // Length-field tampering (offset 20).
  for (const int delta : {1, 2, 255}) {
    auto mutated = good;
    mutated[20] = static_cast<std::uint8_t>(mutated[20] + delta);
    const auto f = lsa::transport::frame_from_bytes(pool, mutated);
    EXPECT_THROW((void)lsa::transport::parse_frame(f), lsa::ProtocolError);
  }

  // CRC-field tampering.
  auto mutated = good;
  mutated[24] ^= 0x01;
  const auto f = lsa::transport::frame_from_bytes(pool, mutated);
  EXPECT_THROW((void)lsa::transport::parse_frame(f), lsa::ProtocolError);

  // Non-canonical payload element, CRC fixed up to match: the canonicality
  // scan must still reject it.
  auto noncanon = good;
  const std::uint32_t bad = 0xFFFFFFFFu;  // >= q = 2^32 - 5
  std::memcpy(noncanon.data() + kHeaderBytes, &bad, 4);
  const std::uint32_t fixed_crc = crc32(std::span<const std::uint8_t>(
      noncanon.data() + kHeaderBytes, noncanon.size() - kHeaderBytes));
  std::memcpy(noncanon.data() + 24, &fixed_crc, 4);
  const auto f2 = lsa::transport::frame_from_bytes(pool, noncanon);
  EXPECT_THROW((void)lsa::transport::parse_frame(f2), lsa::ProtocolError);
}

TEST(FuzzPooledFrames, AsyncFrameTypesRoundTripAndRejectCorruption) {
  // The async protocol's frame types through the pooled zero-copy framing
  // path: a timestamped encoded mask share (the round field carries the
  // BORN round — exercise the full 64-bit range), a buffer manifest of
  // (user, born_round, weight) triples, and a weighted-share response.
  // Each must round-trip byte-exactly and reject truncation, payload bit
  // flips and length tampering, like the sync types.
  lsa::transport::BufferPool pool;
  struct Case {
    MsgType type;
    std::uint64_t round;
    std::vector<rep> payload;
  };
  const std::vector<Case> cases = {
      // [~z_i]_j at born round 2^40 + 3 (async rounds are true u64s).
      {MsgType::kEncodedMaskShare, (1ull << 40) + 3, {7, 11, 4294967290u, 0}},
      // Manifest triples: (user, born_round, quantized staleness weight).
      {MsgType::kBufferManifest, 9, {0, 7, 64, 3, 8, 32, 5, 9, 64}},
      // sum_b w_b [~z_{u_b}^{(t_b)}]_j — an ordinary share-length row.
      {MsgType::kWeightedShares, 9, {1, 2, 3, 4, 5}},
  };
  for (const auto& c : cases) {
    const auto frame = lsa::transport::build_frame(
        pool, c.type, 3, 9, c.round, std::span<const rep>(c.payload));
    const auto view = lsa::transport::parse_frame(frame);
    EXPECT_EQ(view.type, c.type);
    EXPECT_EQ(view.round, c.round);
    ASSERT_EQ(view.payload.size(), c.payload.size());
    EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                           c.payload.begin()));

    const auto bytes = frame.bytes();
    const std::vector<std::uint8_t> good(bytes.begin(), bytes.end());
    // Truncation at every interesting boundary.
    for (const std::size_t keep :
         {std::size_t{0}, kHeaderBytes - 1, kHeaderBytes, good.size() - 4,
          good.size() - 1}) {
      const auto cut = lsa::transport::frame_from_bytes(
          pool, std::span<const std::uint8_t>(good.data(), keep));
      EXPECT_THROW((void)lsa::transport::parse_frame(cut),
                   lsa::ProtocolError)
          << "type " << int(c.type) << " kept " << keep;
    }
    // Payload bit flips (CRC must catch every one).
    for (std::size_t pos = kHeaderBytes; pos < good.size(); ++pos) {
      for (const std::uint8_t bit : {0x01, 0x80}) {
        auto mutated = good;
        mutated[pos] ^= bit;
        const auto f = lsa::transport::frame_from_bytes(pool, mutated);
        EXPECT_THROW((void)lsa::transport::parse_frame(f),
                     lsa::ProtocolError)
            << "type " << int(c.type) << " byte " << pos;
      }
    }
    // Length-field tampering (offset 20).
    for (const int delta : {1, 255}) {
      auto mutated = good;
      mutated[20] = static_cast<std::uint8_t>(mutated[20] + delta);
      const auto f = lsa::transport::frame_from_bytes(pool, mutated);
      EXPECT_THROW((void)lsa::transport::parse_frame(f), lsa::ProtocolError);
    }
  }
}

TEST(FuzzAsyncSession, CorruptedAsyncFramesFailLoudlyNotWrongly) {
  // Flip a payload bit in every 5th frame of an async buffer cycle driven
  // through the zero-copy transport: the cycle must either complete with
  // the EXACT staleness-weighted aggregate or throw — never return a wrong
  // one. Covers the async types in flight (timestamped shares, manifest,
  // weighted shares, result).
  lsa::server::AsyncSessionConfig cfg;
  cfg.params.num_users = 6;
  cfg.params.privacy = 1;
  cfg.params.dropout = 2;
  cfg.params.target_survivors = 4;
  cfg.params.model_dim = 16;
  cfg.buffer_k = 3;
  cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  cfg.c_g = 1u << 6;

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    cfg.seed = 100 + seed;
    lsa::server::AsyncSession session(cfg);
    lsa::common::Xoshiro256ss rng(seed);
    std::vector<lsa::runtime::Arrival> arrivals;
    for (std::size_t b = 0; b < 3; ++b) {
      arrivals.push_back(
          {b + seed % 3, 5 + b,
           lsa::field::uniform_vector<Fp32>(16, rng)});
    }
    std::vector<rep> expected(16, Fp32::zero);
    for (const auto& a : arrivals) {
      const auto w = lsa::quant::quantized_staleness_weight(
          cfg.staleness, 8 - a.born_round, cfg.c_g);
      lsa::field::axpy_inplace<Fp32>(std::span<rep>(expected),
                                     Fp32::from_u64(w),
                                     std::span<const rep>(a.update));
    }
    int count = 0;
    session.router().set_fault_hook(
        [&count](std::span<std::uint8_t> frame) {
          if (++count % 5 == 0 &&
              frame.size() > lsa::runtime::kHeaderBytes) {
            frame[lsa::runtime::kHeaderBytes] ^= 0x10;
          }
          return true;
        });
    try {
      const auto out = session.run_cycle(8, arrivals);
      EXPECT_EQ(out.weighted_sum, expected) << "seed " << seed;
    } catch (const lsa::Error&) {
      // Loud failure is acceptable; silent corruption is not.
    }
  }
}

TEST(FuzzNetwork, CorruptingRouterFramesFailsLoudlyNotWrongly) {
  // Flip a payload bit in every 7th frame mid-round: the run must either
  // complete with the EXACT aggregate (corruption hit a frame that was
  // retransmittable/unused) or throw — never return a wrong aggregate.
  lsa::protocol::Params p;
  p.num_users = 5;
  p.privacy = 1;
  p.dropout = 1;
  p.target_survivors = 4;
  p.model_dim = 16;

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Network net(p, seed);
    lsa::common::Xoshiro256ss rng(seed + 100);
    std::vector<std::vector<rep>> models(5);
    std::vector<rep> expected(16, Fp32::zero);
    for (auto& mdl : models) {
      mdl = lsa::field::uniform_vector<Fp32>(16, rng);
      lsa::field::add_inplace<Fp32>(std::span<rep>(expected),
                                    std::span<const rep>(mdl));
    }
    int count = 0;
    net.router().set_fault_hook([&count](std::vector<std::uint8_t>& frame) {
      if (++count % 7 == 0 && frame.size() > kHeaderBytes) {
        frame[kHeaderBytes] ^= 0x10;
      }
      return true;
    });
    try {
      const auto result = net.run_round(0, models, {});
      EXPECT_EQ(result, expected) << "seed " << seed;
    } catch (const lsa::Error&) {
      // Loud failure is acceptable; silent corruption is not.
    }
  }
}

TEST(VerifiedProtocol, RedundantDecodePassesOnHonestRound) {
  lsa::protocol::Params p{.num_users = 8, .privacy = 2, .dropout = 2,
                          .target_survivors = 5, .model_dim = 24};
  lsa::protocol::LightSecAgg<Fp32> proto(p, 3, nullptr,
                                         /*verify_redundant=*/true);
  lsa::common::Xoshiro256ss rng(4);
  std::vector<std::vector<rep>> inputs(8);
  std::vector<rep> expected(24, Fp32::zero);
  std::vector<bool> dropped(8, false);
  dropped[6] = true;
  for (std::size_t i = 0; i < 8; ++i) {
    inputs[i] = lsa::field::uniform_vector<Fp32>(24, rng);
    if (dropped[i]) continue;
    lsa::field::add_inplace<Fp32>(std::span<rep>(expected),
                                  std::span<const rep>(inputs[i]));
  }
  EXPECT_EQ(proto.run_round(inputs, dropped), expected);
}

// ------------------------------------------------ stream frame reassembly

// The socket backend's FrameDecoder must reconstruct byte-identical frames
// from a TCP byte stream no matter how the kernel tears it: split headers,
// split CRC words, frames coalesced into one read, trailing partials. It
// must emit frames in order, never hang waiting for bytes it already has,
// never over-read past a frame boundary, and reject garbage lengths loudly.

std::vector<std::uint8_t> frame_bytes(lsa::transport::BufferPool& pool,
                                      std::uint32_t sender,
                                      std::size_t payload_len) {
  lsa::common::Xoshiro256ss rng(900 + sender * 131 + payload_len);
  std::vector<rep> payload(payload_len);
  for (auto& w : payload) {
    w = static_cast<rep>(rng.next_below(Fp32::modulus));
  }
  const auto buf = lsa::transport::build_frame(
      pool, MsgType::kEncodedMaskShare, sender, sender + 1, 5,
      std::span<const rep>(payload));
  return {buf.bytes().begin(), buf.bytes().end()};
}

// Feeds `stream` split into [0, cut) / [cut, end) and checks the decoder
// reproduces exactly `want` (byte-identical, in order).
void check_split(lsa::transport::BufferPool& pool,
                 const std::vector<std::uint8_t>& stream, std::size_t cut,
                 const std::vector<std::vector<std::uint8_t>>& want) {
  lsa::transport::socket::FrameDecoder dec(pool, /*max_payload_elems=*/4096);
  std::vector<std::vector<std::uint8_t>> got;
  auto sink = [&](lsa::transport::BufferRef&& f) {
    got.emplace_back(f.bytes().begin(), f.bytes().end());
  };
  dec.feed(std::span<const std::uint8_t>(stream.data(), cut), sink);
  dec.feed(std::span<const std::uint8_t>(stream.data() + cut,
                                         stream.size() - cut),
           sink);
  ASSERT_EQ(got.size(), want.size()) << "cut " << cut;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "cut " << cut << " frame " << i;
  }
  EXPECT_EQ(dec.buffered_bytes(), 0u) << "cut " << cut;
}

TEST(FrameReassembly, EverySplitOffsetReproducesFramesExactly) {
  lsa::transport::BufferPool pool(16);
  // Three frames including a zero-payload one (header-only boundary) —
  // every 2-way split crosses a torn header, a split CRC word, a torn
  // payload, or a coalesced pair at some offset.
  std::vector<std::vector<std::uint8_t>> want = {
      frame_bytes(pool, 0, 13), frame_bytes(pool, 1, 0),
      frame_bytes(pool, 2, 7)};
  std::vector<std::uint8_t> stream;
  for (const auto& f : want) stream.insert(stream.end(), f.begin(), f.end());
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    check_split(pool, stream, cut, want);
  }
}

TEST(FrameReassembly, ByteAtATimeAndCoalescedDeliverIdentically) {
  lsa::transport::BufferPool pool(16);
  std::vector<std::vector<std::uint8_t>> want = {
      frame_bytes(pool, 3, 1), frame_bytes(pool, 4, 31),
      frame_bytes(pool, 5, 0), frame_bytes(pool, 6, 8)};
  std::vector<std::uint8_t> stream;
  for (const auto& f : want) stream.insert(stream.end(), f.begin(), f.end());

  // One byte per feed: maximal tearing.
  lsa::transport::socket::FrameDecoder dec(pool, 4096);
  std::vector<std::vector<std::uint8_t>> got;
  auto sink = [&](lsa::transport::BufferRef&& f) {
    got.emplace_back(f.bytes().begin(), f.bytes().end());
  };
  for (const std::uint8_t b : stream) {
    dec.feed(std::span<const std::uint8_t>(&b, 1), sink);
  }
  ASSERT_EQ(got, want);
  EXPECT_EQ(dec.buffered_bytes(), 0u);

  // Entire stream in one chunk: maximal coalescing.
  got.clear();
  dec.feed(stream, sink);
  ASSERT_EQ(got, want);
  EXPECT_EQ(dec.frames_out(), 8u);
}

TEST(FrameReassembly, TrailingPartialStaysBufferedNeverOverReads) {
  lsa::transport::BufferPool pool(16);
  const auto f0 = frame_bytes(pool, 7, 9);
  std::vector<std::uint8_t> stream = f0;
  // Trailing garbage shorter than a header: must stay staged, no frame.
  const std::vector<std::uint8_t> tail = {0xde, 0xad, 0xbe, 0xef, 0x01};
  stream.insert(stream.end(), tail.begin(), tail.end());

  lsa::transport::socket::FrameDecoder dec(pool, 4096);
  std::size_t frames = 0;
  dec.feed(stream, [&](lsa::transport::BufferRef&& f) {
    ++frames;
    EXPECT_EQ((std::vector<std::uint8_t>(f.bytes().begin(),
                                         f.bytes().end())),
              f0);
  });
  EXPECT_EQ(frames, 1u);
  EXPECT_EQ(dec.buffered_bytes(), tail.size());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(FrameReassembly, OversizedLengthThrowsAtHeaderCompletionAndResets) {
  lsa::transport::BufferPool pool(16);
  std::vector<std::uint8_t> header(lsa::runtime::kHeaderBytes, 0);
  const std::uint32_t huge = 1u << 30;
  std::memcpy(header.data() + 20, &huge, 4);

  lsa::transport::socket::FrameDecoder dec(pool, /*max_payload_elems=*/4096);
  auto sink = [](lsa::transport::BufferRef&&) { FAIL() << "no frame"; };
  // Feed all but the last header byte: no exception yet (length unknown).
  dec.feed(std::span<const std::uint8_t>(header.data(),
                                         lsa::runtime::kHeaderBytes - 1),
           sink);
  EXPECT_EQ(dec.buffered_bytes(), lsa::runtime::kHeaderBytes - 1);
  const std::uint8_t last = header.back();
  EXPECT_THROW(dec.feed(std::span<const std::uint8_t>(&last, 1), sink),
               lsa::ProtocolError);
  // reset() restores a usable decoder.
  dec.reset();
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  const auto good = frame_bytes(pool, 8, 3);
  std::size_t frames = 0;
  dec.feed(good, [&](lsa::transport::BufferRef&&) { ++frames; });
  EXPECT_EQ(frames, 1u);
}

TEST(FrameReassembly, RandomChunkingsAlwaysReconstructExactly) {
  lsa::transport::BufferPool pool(16);
  lsa::common::Xoshiro256ss rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t nframes = 1 + rng.next_below(5);
    std::vector<std::vector<std::uint8_t>> want;
    std::vector<std::uint8_t> stream;
    for (std::size_t i = 0; i < nframes; ++i) {
      want.push_back(frame_bytes(
          pool, static_cast<std::uint32_t>(trial * 8 + i),
          rng.next_below(64)));
      stream.insert(stream.end(), want.back().begin(), want.back().end());
    }
    lsa::transport::socket::FrameDecoder dec(pool, 4096);
    std::vector<std::vector<std::uint8_t>> got;
    auto sink = [&](lsa::transport::BufferRef&& f) {
      got.emplace_back(f.bytes().begin(), f.bytes().end());
    };
    std::size_t off = 0;
    std::size_t fed = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_below(97),
                                stream.size() - off);
      dec.feed(std::span<const std::uint8_t>(stream.data() + off, n), sink);
      off += n;
      fed += n;
      // Progress accounting: everything fed is either emitted or staged —
      // the decoder can neither hang onto emitted bytes nor over-read.
      std::size_t emitted = 0;
      for (const auto& g : got) emitted += g.size();
      ASSERT_EQ(emitted + dec.buffered_bytes(), fed) << "trial " << trial;
    }
    ASSERT_EQ(got, want) << "trial " << trial;
    ASSERT_EQ(dec.buffered_bytes(), 0u) << "trial " << trial;
  }
}

}  // namespace
