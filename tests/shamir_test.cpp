// Shamir secret sharing: reconstruction from any qualified subset, failure
// below threshold, byte packing, and statistical privacy of t shares.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "crypto/shamir.h"
#include "field/fp.h"
#include "field/random_field.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;

struct ShamirCase {
  std::size_t t, n;
};

class ShamirSweep : public ::testing::TestWithParam<ShamirCase> {};

TEST_P(ShamirSweep, ReconstructFromEveryContiguousSubset) {
  const auto [t, n] = GetParam();
  lsa::common::Xoshiro256ss rng(t * 1000 + n);
  lsa::crypto::ShamirScheme<Fp32> scheme(t, n);
  auto secret = lsa::field::uniform_vector<Fp32>(7, rng);
  auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  ASSERT_EQ(shares.size(), n);

  for (std::size_t start = 0; start + t + 1 <= n; ++start) {
    std::vector<lsa::crypto::ShamirShare<Fp32>> subset(
        shares.begin() + start, shares.begin() + start + t + 1);
    EXPECT_EQ(scheme.reconstruct(subset), secret);
  }
}

TEST_P(ShamirSweep, ReconstructFromRandomSubsets) {
  const auto [t, n] = GetParam();
  lsa::common::Xoshiro256ss rng(t * 77 + n);
  lsa::crypto::ShamirScheme<Fp61> scheme(t, n);
  auto secret = lsa::field::uniform_vector<Fp61>(3, rng);
  auto shares = scheme.share(std::span<const Fp61::rep>(secret), rng);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      std::swap(order[i],
                order[i + static_cast<std::size_t>(
                              rng.next_below(order.size() - i))]);
    }
    std::vector<lsa::crypto::ShamirShare<Fp61>> subset;
    for (std::size_t k = 0; k < t + 1; ++k) subset.push_back(shares[order[k]]);
    EXPECT_EQ(scheme.reconstruct(subset), secret);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShamirSweep,
    ::testing::Values(ShamirCase{1, 2}, ShamirCase{1, 3}, ShamirCase{2, 5},
                      ShamirCase{3, 7}, ShamirCase{5, 11}, ShamirCase{7, 8},
                      ShamirCase{10, 30}, ShamirCase{0, 4}));

TEST(Shamir, TooFewSharesThrows) {
  lsa::common::Xoshiro256ss rng(1);
  lsa::crypto::ShamirScheme<Fp32> scheme(3, 6);
  std::vector<Fp32::rep> secret = {42};
  auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  shares.resize(3);  // t shares only
  EXPECT_THROW((void)scheme.reconstruct(shares), lsa::ProtocolError);
}

TEST(Shamir, BadParametersThrow) {
  EXPECT_THROW(lsa::crypto::ShamirScheme<Fp32>(3, 3), lsa::Error);  // t >= n
  EXPECT_THROW(lsa::crypto::ShamirScheme<Fp32>(0, 0), lsa::Error);
}

TEST(Shamir, ByteSecretsRoundTripBothFields) {
  lsa::common::Xoshiro256ss rng(2);
  std::vector<std::uint8_t> secret(32);
  for (auto& b : secret) b = static_cast<std::uint8_t>(rng.next_u64());
  {
    lsa::crypto::ShamirScheme<Fp32> scheme(2, 5);
    auto shares = scheme.share_bytes(secret, rng);
    shares.erase(shares.begin());  // any 3 of 5
    shares.resize(3);
    EXPECT_EQ(scheme.reconstruct_bytes(shares, 32), secret);
  }
  {
    lsa::crypto::ShamirScheme<Fp61> scheme(2, 5);
    auto shares = scheme.share_bytes(secret, rng);
    EXPECT_EQ(scheme.reconstruct_bytes(shares, 32), secret);
  }
}

TEST(Shamir, TSharesAreStatisticallyIndependentOfSecret) {
  // Share two very different secrets many times; the marginal distribution
  // of any fixed share must look identical (here: mean over trials of the
  // share value as a fraction of q stays near 1/2 for both, chi2 light).
  lsa::common::Xoshiro256ss rng(3);
  lsa::crypto::ShamirScheme<Fp32> scheme(2, 4);
  constexpr int kTrials = 4000;
  lsa::common::RunningStat share_of_zero, share_of_big;
  std::vector<Fp32::rep> zero = {0};
  std::vector<Fp32::rep> big = {Fp32::modulus - 1};
  for (int i = 0; i < kTrials; ++i) {
    auto s0 = scheme.share(std::span<const Fp32::rep>(zero), rng);
    auto s1 = scheme.share(std::span<const Fp32::rep>(big), rng);
    share_of_zero.add(static_cast<double>(s0[1].values[0]) /
                      static_cast<double>(Fp32::modulus));
    share_of_big.add(static_cast<double>(s1[1].values[0]) /
                     static_cast<double>(Fp32::modulus));
  }
  // Uniform on [0,1): mean 0.5, stderr ~ 0.289/sqrt(4000) ~ 0.0046.
  EXPECT_NEAR(share_of_zero.mean(), 0.5, 0.025);
  EXPECT_NEAR(share_of_big.mean(), 0.5, 0.025);
  EXPECT_NEAR(share_of_zero.mean(), share_of_big.mean(), 0.035);
}

TEST(SecretPack, RoundTripVariousLengths) {
  lsa::common::Xoshiro256ss rng(4);
  for (std::size_t len : {1u, 2u, 3u, 7u, 8u, 31u, 32u, 33u, 100u}) {
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto packed32 = lsa::crypto::pack_bytes<Fp32>(bytes);
    EXPECT_EQ(lsa::crypto::unpack_bytes<Fp32>(
                  std::span<const Fp32::rep>(packed32), len),
              bytes);
    const auto packed61 = lsa::crypto::pack_bytes<Fp61>(bytes);
    EXPECT_EQ(lsa::crypto::unpack_bytes<Fp61>(
                  std::span<const Fp61::rep>(packed61), len),
              bytes);
  }
}

TEST(SecretPack, ElementsStayCanonical) {
  // 3 bytes per Fp32 element: max value 2^24 - 1 < q, never wraps.
  EXPECT_EQ(lsa::crypto::bytes_per_element<Fp32>(), 3u);
  EXPECT_EQ(lsa::crypto::bytes_per_element<Fp61>(), 7u);
  std::vector<std::uint8_t> all_ff(30, 0xff);
  for (auto e : lsa::crypto::pack_bytes<Fp32>(all_ff)) {
    EXPECT_LT(static_cast<std::uint64_t>(e), Fp32::modulus);
  }
}

// ---------------------------------------------------------------------------
// Error-correcting reconstruction (Berlekamp-Welch over the share points).
// ---------------------------------------------------------------------------

TEST(ShamirCorrected, CleanSharesReconstructWithEmptyCorruptionSet) {
  lsa::common::Xoshiro256ss rng(41);
  lsa::crypto::ShamirScheme<Fp32> scheme(/*t=*/3, /*n=*/12);
  const auto secret = lsa::field::uniform_vector<Fp32>(9, rng);
  const auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  const auto out = scheme.reconstruct_corrected(shares);
  EXPECT_EQ(out.secret, secret);
  EXPECT_TRUE(out.corrupted_indices.empty());
}

TEST(ShamirCorrected, LocatesAndDiscardsFalsifiedShares) {
  // t = 3, 12 shares: budget floor((12-4)/2) = 4 falsified shares.
  lsa::common::Xoshiro256ss rng(43);
  lsa::crypto::ShamirScheme<Fp32> scheme(3, 12);
  const auto secret = lsa::field::uniform_vector<Fp32>(9, rng);
  auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  for (const std::size_t j : {1u, 5u, 8u, 10u}) {
    for (auto& v : shares[j].values) v = lsa::field::uniform<Fp32>(rng);
  }
  const auto out = scheme.reconstruct_corrected(shares);
  EXPECT_EQ(out.secret, secret);
  EXPECT_EQ(out.corrupted_indices,
            (std::vector<std::uint32_t>{2, 6, 9, 11}));  // 1-based indices
}

TEST(ShamirCorrected, SingleElementFalsificationIsLocated) {
  lsa::common::Xoshiro256ss rng(47);
  lsa::crypto::ShamirScheme<Fp32> scheme(2, 9);
  const auto secret = lsa::field::uniform_vector<Fp32>(5, rng);
  auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  shares[4].values[3] = Fp32::add(shares[4].values[3], 1);
  const auto out = scheme.reconstruct_corrected(shares);
  EXPECT_EQ(out.secret, secret);
  EXPECT_EQ(out.corrupted_indices, std::vector<std::uint32_t>{5});
}

TEST(ShamirCorrected, RefusesBeyondBudget) {
  lsa::common::Xoshiro256ss rng(53);
  lsa::crypto::ShamirScheme<Fp32> scheme(3, 10);  // budget = 3
  const auto secret = lsa::field::uniform_vector<Fp32>(4, rng);
  auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  for (const std::size_t j : {0u, 2u, 4u, 6u}) {  // 4 > 3
    for (auto& v : shares[j].values) v = lsa::field::uniform<Fp32>(rng);
  }
  EXPECT_THROW((void)scheme.reconstruct_corrected(shares),
               lsa::CodingError);
}

TEST(ShamirCorrected, ExactThresholdSharesDegradeToPlainReconstruct) {
  // m == t+1: zero redundancy, zero detection — same contract as the
  // codec's corrected decode at exactly U responses.
  lsa::common::Xoshiro256ss rng(59);
  lsa::crypto::ShamirScheme<Fp32> scheme(3, 8);
  const auto secret = lsa::field::uniform_vector<Fp32>(4, rng);
  auto shares = scheme.share(std::span<const Fp32::rep>(secret), rng);
  shares.resize(4);
  const auto out = scheme.reconstruct_corrected(shares);
  EXPECT_EQ(out.secret, secret);
  EXPECT_TRUE(out.corrupted_indices.empty());
}

}  // namespace
