// Byzantine-robust aggregation (§8 future work): rule-level properties
// (permutation invariance, bounded influence, breakdown behaviour), the
// grouped-secure construction's exactness without attackers, and its
// resistance with them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "robust/aggregators.h"
#include "robust/attacks.h"
#include "robust/grouped_secure.h"

namespace {

namespace rb = lsa::robust;

std::vector<std::vector<double>> make_cluster(std::size_t m, std::size_t d,
                                              double center, double spread,
                                              std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<double>> xs(m, std::vector<double>(d));
  for (auto& x : xs) {
    for (auto& v : x) v = center + spread * rng.next_gaussian();
  }
  return xs;
}

double linf_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    m = std::max(m, std::abs(a[k] - b[k]));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Rule-level properties.
// ---------------------------------------------------------------------------

TEST(RobustRules, AllRulesReturnTheCommonValueOnIdenticalInputs) {
  const std::vector<std::vector<double>> xs(7, {1.5, -2.0, 0.25});
  rb::CombineOptions opts;
  opts.trim = 2;
  opts.byzantine = 2;
  for (const auto rule :
       {rb::Rule::kMean, rb::Rule::kCoordinateMedian, rb::Rule::kTrimmedMean,
        rb::Rule::kGeometricMedian, rb::Rule::kKrum, rb::Rule::kMultiKrum}) {
    const auto out = rb::combine(rule, xs, opts);
    ASSERT_EQ(out.size(), 3u) << rb::to_string(rule);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_NEAR(out[k], xs[0][k], 1e-9) << rb::to_string(rule);
    }
  }
}

TEST(RobustRules, PermutationInvariance) {
  auto xs = make_cluster(9, 5, 0.0, 1.0, 42);
  rb::CombineOptions opts;
  opts.trim = 2;
  opts.byzantine = 2;
  for (const auto rule :
       {rb::Rule::kMean, rb::Rule::kCoordinateMedian, rb::Rule::kTrimmedMean,
        rb::Rule::kGeometricMedian, rb::Rule::kKrum, rb::Rule::kMultiKrum}) {
    const auto before = rb::combine(rule, xs, opts);
    auto shuffled = xs;
    std::rotate(shuffled.begin(), shuffled.begin() + 4, shuffled.end());
    std::swap(shuffled[0], shuffled[3]);
    const auto after = rb::combine(rule, shuffled, opts);
    for (std::size_t k = 0; k < before.size(); ++k) {
      EXPECT_NEAR(before[k], after[k], 1e-9) << rb::to_string(rule);
    }
  }
}

TEST(RobustRules, MedianIgnoresMinorityOutliersMeanDoesNot) {
  auto xs = make_cluster(9, 4, 1.0, 0.05, 7);
  // 3 of 9 are wildly corrupted.
  for (std::size_t i = 0; i < 3; ++i) {
    xs[i] = std::vector<double>(4, 1e6);
  }
  const auto med = rb::coordinate_median(xs);
  const auto avg = rb::mean(xs);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(med[k], 1.0, 0.5) << k;
    EXPECT_GT(avg[k], 1e5) << k;  // mean is destroyed
  }
}

TEST(RobustRules, TrimmedMeanDropsExactlyTheTails) {
  // Column values 1..7 with trim 2: average of {3,4,5} = 4.
  std::vector<std::vector<double>> xs;
  for (int v = 1; v <= 7; ++v) xs.push_back({static_cast<double>(v)});
  const auto out = rb::trimmed_mean(xs, 2);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_THROW((void)rb::trimmed_mean(xs, 4), lsa::ConfigError);
}

TEST(RobustRules, CoordinateMedianEvenCountAveragesMiddlePair) {
  std::vector<std::vector<double>> xs{{1.0}, {9.0}, {3.0}, {5.0}};
  EXPECT_DOUBLE_EQ(rb::coordinate_median(xs)[0], 4.0);  // (3+5)/2
}

TEST(RobustRules, GeometricMedianResistsHalfMinusOneOutliers) {
  auto xs = make_cluster(11, 3, 0.0, 0.1, 9);
  for (std::size_t i = 0; i < 5; ++i) {
    xs[i] = std::vector<double>(3, 500.0);
  }
  const auto gm = rb::geometric_median(xs);
  for (const double v : gm) EXPECT_LT(std::abs(v), 1.0);
}

TEST(RobustRules, GeometricMedianOfTwoPointsLiesOnSegment) {
  // Any point on the segment minimizes the distance sum; Weiszfeld starts
  // from the mean, which already is a minimizer — check it stays there.
  const std::vector<std::vector<double>> xs{{0.0, 0.0}, {2.0, 2.0}};
  const auto gm = rb::geometric_median(xs);
  EXPECT_NEAR(gm[0], gm[1], 1e-9);
  EXPECT_GE(gm[0], -1e-9);
  EXPECT_LE(gm[0], 2.0 + 1e-9);
}

TEST(RobustRules, KrumSelectsAnHonestVectorUnderAttack) {
  auto xs = make_cluster(9, 6, 2.0, 0.05, 11);
  xs[1] = std::vector<double>(6, -400.0);
  xs[5] = std::vector<double>(6, 777.0);
  const auto pick = rb::krum(xs, /*f=*/2);
  for (const double v : pick) EXPECT_NEAR(v, 2.0, 0.5);
}

TEST(RobustRules, MultiKrumAveragesOnlyCentralVectors) {
  auto xs = make_cluster(9, 4, -1.0, 0.05, 13);
  xs[0] = std::vector<double>(4, 1e5);
  xs[8] = std::vector<double>(4, -1e5);
  const auto out = rb::multi_krum(xs, /*f=*/2);
  for (const double v : out) EXPECT_NEAR(v, -1.0, 0.5);
}

TEST(RobustRules, KrumRequiresEnoughVectors) {
  const auto xs = make_cluster(6, 2, 0.0, 1.0, 15);
  EXPECT_THROW((void)rb::krum(xs, 2), lsa::ConfigError);  // 6 < 2*2+3
  EXPECT_NO_THROW((void)rb::krum(xs, 1));                 // 6 >= 2*1+3
}

TEST(RobustRules, ClipByNormOnlyShrinks) {
  const std::vector<double> v{3.0, 4.0};  // norm 5
  const auto clipped = rb::clip_by_norm(v, 2.5);
  EXPECT_NEAR(clipped[0], 1.5, 1e-12);
  EXPECT_NEAR(clipped[1], 2.0, 1e-12);
  const auto untouched = rb::clip_by_norm(v, 10.0);
  EXPECT_EQ(untouched, v);
  EXPECT_THROW((void)rb::clip_by_norm(v, 0.0), lsa::ConfigError);
}

TEST(RobustRules, InconsistentLengthsRejected) {
  std::vector<std::vector<double>> xs{{1.0, 2.0}, {1.0}};
  EXPECT_THROW((void)rb::mean(xs), lsa::ConfigError);
}

// ---------------------------------------------------------------------------
// Attack harness.
// ---------------------------------------------------------------------------

TEST(Attacks, SignFlipScalesAndNegates) {
  std::vector<double> u{1.0, -2.0};
  rb::AttackConfig cfg;
  cfg.kind = rb::Attack::kSignFlip;
  cfg.scale = 3.0;
  lsa::common::Xoshiro256ss rng(1);
  rb::apply_attack(u, cfg, rng);
  EXPECT_DOUBLE_EQ(u[0], -3.0);
  EXPECT_DOUBLE_EQ(u[1], 6.0);
}

TEST(Attacks, ByzantineAssignmentConcentratedVsSpread) {
  // 12 users, 3 groups of 4, 3 attackers.
  const auto conc = rb::byzantine_assignment(12, 3, 3, /*spread=*/false);
  // Concentrated: first three users (all in group 0).
  EXPECT_TRUE(conc[0] && conc[1] && conc[2]);
  EXPECT_EQ(std::count(conc.begin(), conc.end(), true), 3);

  const auto spread = rb::byzantine_assignment(12, 3, 3, /*spread=*/true);
  EXPECT_EQ(std::count(spread.begin(), spread.end(), true), 3);
  // Spread: one per group (groups are {0..3}, {4..7}, {8..11}).
  EXPECT_TRUE(spread[0]);
  EXPECT_TRUE(spread[4]);
  EXPECT_TRUE(spread[8]);
}

// ---------------------------------------------------------------------------
// Grouped secure aggregation.
// ---------------------------------------------------------------------------

using F = lsa::field::Fp32;

rb::GroupedConfig base_config(std::size_t n, std::size_t g, std::size_t d) {
  rb::GroupedConfig cfg;
  cfg.num_users = n;
  cfg.num_groups = g;
  cfg.model_dim = d;
  cfg.seed = 5;
  return cfg;
}

TEST(GroupedSecure, MeanRuleMatchesPlaintextAverage) {
  auto cfg = base_config(12, 3, 20);
  cfg.rule = rb::Rule::kMean;
  rb::GroupedSecureAggregator<F> agg(cfg);

  lsa::common::Xoshiro256ss rng(3);
  std::vector<std::vector<double>> locals(12, std::vector<double>(20));
  for (auto& l : locals) {
    for (auto& v : l) v = rng.next_gaussian();
  }
  std::vector<bool> dropped(12, false);
  dropped[7] = true;

  const auto secure = agg.aggregate(locals, dropped);
  std::vector<double> plain(20, 0.0);
  for (std::size_t i = 0; i < 12; ++i) {
    if (dropped[i]) continue;
    for (std::size_t k = 0; k < 20; ++k) plain[k] += locals[i][k];
  }
  for (auto& v : plain) v /= 11.0;
  EXPECT_LT(linf_dist(secure, plain), 1e-3);  // within quantization noise
}

TEST(GroupedSecure, MedianRuleNeutralizesAPoisonedGroup) {
  auto cfg = base_config(12, 3, 8);
  cfg.rule = rb::Rule::kCoordinateMedian;
  rb::GroupedSecureAggregator<F> agg(cfg);

  // Honest updates cluster near 1.0; group 0 is fully Byzantine.
  std::vector<std::vector<double>> locals(12, std::vector<double>(8, 1.0));
  for (std::size_t i = 0; i < 4; ++i) {
    locals[i] = std::vector<double>(8, 300.0);
  }
  const std::vector<bool> dropped(12, false);

  const auto robust_out = agg.aggregate(locals, dropped);
  for (const double v : robust_out) EXPECT_NEAR(v, 1.0, 0.1);

  cfg.rule = rb::Rule::kMean;
  rb::GroupedSecureAggregator<F> plain(cfg);
  const auto mean_out = plain.aggregate(locals, dropped);
  for (const double v : mean_out) EXPECT_GT(v, 50.0);  // poisoned
}

TEST(GroupedSecure, SkipsGroupsThatCannotRecover) {
  auto cfg = base_config(12, 3, 8);
  cfg.rule = rb::Rule::kMean;
  rb::GroupedSecureAggregator<F> agg(cfg);

  std::vector<std::vector<double>> locals(12, std::vector<double>(8, 2.0));
  std::vector<bool> dropped(12, false);
  // Kill all of group 1 (users 4..7): unrecoverable, must be skipped.
  for (std::size_t i = 4; i < 8; ++i) dropped[i] = true;

  const auto out = agg.aggregate(locals, dropped);
  for (const double v : out) EXPECT_NEAR(v, 2.0, 1e-3);
}

TEST(GroupedSecure, ThrowsWhenEveryGroupFails) {
  auto cfg = base_config(8, 2, 4);
  rb::GroupedSecureAggregator<F> agg(cfg);
  const std::vector<std::vector<double>> locals(8,
                                                std::vector<double>(4, 1.0));
  const std::vector<bool> dropped(8, true);
  EXPECT_THROW((void)agg.aggregate(locals, dropped), lsa::ProtocolError);
}

TEST(GroupedSecure, GroupAssignmentCoversAllUsersContiguously) {
  auto cfg = base_config(13, 3, 4);  // uneven split: 4 + 4 + 5
  rb::GroupedSecureAggregator<F> agg(cfg);
  EXPECT_EQ(agg.group_of(0), 0u);
  EXPECT_EQ(agg.group_of(3), 0u);
  EXPECT_EQ(agg.group_of(4), 1u);
  EXPECT_EQ(agg.group_of(8), 2u);
  EXPECT_EQ(agg.group_of(12), 2u);
  EXPECT_EQ(agg.group_params(2).num_users, 5u);
  EXPECT_THROW((void)agg.group_of(13), lsa::ConfigError);
}

TEST(GroupedSecure, ConfigValidation) {
  EXPECT_THROW(rb::GroupedSecureAggregator<F>(base_config(4, 3, 4)),
               lsa::ConfigError);  // < 2 users per group
  EXPECT_THROW(rb::GroupedSecureAggregator<F>(base_config(8, 0, 4)),
               lsa::ConfigError);
  auto cfg = base_config(8, 2, 0);
  EXPECT_THROW((void)rb::GroupedSecureAggregator<F>{cfg}, lsa::ConfigError);
}

// Sign-flip attack across attacker budgets: grouped median keeps the
// aggregate near honest; grouped mean degrades once any group is poisoned.
class GroupedAttackSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupedAttackSweep, MedianStaysNearHonestMean) {
  const std::size_t num_byz = GetParam();
  const std::size_t n = 20, g = 5, d = 10;

  auto cfg = base_config(n, g, d);
  cfg.rule = rb::Rule::kCoordinateMedian;
  rb::GroupedSecureAggregator<F> agg(cfg);

  lsa::common::Xoshiro256ss rng(17);
  std::vector<std::vector<double>> locals(n, std::vector<double>(d));
  for (auto& l : locals) {
    for (auto& v : l) v = 1.0 + 0.05 * rng.next_gaussian();
  }
  // Concentrated attackers (fill whole groups first) — the favourable case
  // group-wise robustness is designed for.
  const auto byz = rb::byzantine_assignment(n, num_byz, g, false);
  rb::AttackConfig atk;
  atk.kind = rb::Attack::kConstant;
  atk.scale = 1000.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (byz[i]) rb::apply_attack(locals[i], atk, rng);
  }

  const std::vector<bool> dropped(n, false);
  const auto out = agg.aggregate(locals, dropped);
  // Up to 2 fully-poisoned groups out of 5: median holds.
  for (const double v : out) EXPECT_NEAR(v, 1.0, 0.2) << "B=" << num_byz;
}

INSTANTIATE_TEST_SUITE_P(Budgets, GroupedAttackSweep,
                         ::testing::Values(0, 2, 4, 8));

TEST(GroupedSecure, SurvivesSimultaneousDropoutAndAttack) {
  // The full adversarial mix: one group fully Byzantine, another group
  // losing members to dropouts, the rest honest — the median of the
  // surviving group averages must stay near the honest value.
  const std::size_t n = 24, g = 4, d = 12;
  auto cfg = base_config(n, g, d);
  cfg.rule = rb::Rule::kCoordinateMedian;
  rb::GroupedSecureAggregator<F> agg(cfg);

  lsa::common::Xoshiro256ss rng(29);
  std::vector<std::vector<double>> locals(n, std::vector<double>(d));
  for (auto& l : locals) {
    for (auto& v : l) v = -2.0 + 0.05 * rng.next_gaussian();
  }
  rb::AttackConfig atk;
  atk.kind = rb::Attack::kSignFlip;
  atk.scale = 100.0;
  for (std::size_t i = 0; i < 6; ++i) {
    rb::apply_attack(locals[i], atk, rng);  // group 0 fully Byzantine
  }
  std::vector<bool> dropped(n, false);
  dropped[6] = true;  // one dropout in group 1 (within its tolerance)

  const auto out = agg.aggregate(locals, dropped);
  for (const double v : out) EXPECT_NEAR(v, -2.0, 0.2);
}

}  // namespace
