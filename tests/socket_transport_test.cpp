// Real-socket transport backend: epoll loop, framed TCP/UDS connections,
// session handshake, and the RemoteSession phase machine. The load-bearing
// claim is bit-identity: N client PROCESSES (here: threads with their own
// SocketTransport instances, which is the same code path minus fork) must
// produce byte-for-byte the aggregates of the serial runtime::Network at
// the same seed and dropout pattern — including dropout at the U boundary
// and a mid-round disconnect -> reconnect — with ZERO send-side payload
// copies on the socket plane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "crypto/prg.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "server/remote_session.h"
#include "transport/frame.h"
#include "transport/socket/socket_addr.h"
#include "transport/socket/socket_transport.h"
#include "transport/stats.h"

namespace {

using namespace lsa::transport::socket;
using lsa::field::Fp32;
using lsa::runtime::MsgType;
using lsa::runtime::Network;
using lsa::runtime::UserDevice;
using lsa::server::RemoteSession;
using lsa::server::RemoteSessionConfig;
using rep = Fp32::rep;

std::vector<rep> model_for(std::uint64_t seed, std::uint32_t user,
                           std::uint64_t round, std::size_t dim) {
  auto sub = lsa::crypto::derive_subseed(
      lsa::crypto::seed_from_u64(seed ^ (0x5eedull +
                                         user * 0x9e3779b97f4a7c15ull)),
      round);
  lsa::crypto::Prg prg(sub);
  return lsa::field::uniform_vector<Fp32>(dim, prg);
}

std::string fresh_uds_path(int tag) {
  return "/tmp/lsa_stt_" + std::to_string(::getpid()) + "_" +
         std::to_string(tag) + ".sock";
}

// Pumps hub and a set of clients until `pred` holds (single-threaded
// interleaving — every endpoint polled non-blocking, bounded).
template <class Pred>
void settle(SocketTransport* hub, std::vector<SocketTransport*> clients,
            Pred&& pred, int max_iters = 2000) {
  for (int i = 0; i < max_iters; ++i) {
    if (pred()) return;
    if (hub != nullptr) hub->poll(1);
    for (auto* c : clients) {
      if (c != nullptr) c->poll(0);
    }
  }
  FAIL() << "settle: condition not reached";
}

// ------------------------------------------------- full-round bit-identity

// N client threads run 3 full rounds against a daemon-shaped hub; round 1
// drops users {4,5} AFTER upload (delayed-not-dropped at the U boundary:
// the four stayers — exactly U of them — carry the recovery). Aggregates
// must be bit-identical to the serial Network reference, and the socket
// phase must not copy a single payload byte on the send side.
void run_full_rounds(const std::string& listen_url, int uds_tag) {
  lsa::protocol::Params params;
  params.num_users = 6;
  params.privacy = 1;
  params.dropout = 2;
  params.model_dim = 120;
  params.validate_and_resolve();
  ASSERT_EQ(params.target_survivors, 4u);

  const std::uint64_t kSeed = 2024;
  const std::uint64_t kRounds = 3;
  const std::uint64_t kDropRound = 1;

  std::vector<std::vector<std::vector<rep>>> models(kRounds);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::uint32_t u = 0; u < params.num_users; ++u) {
      models[r].push_back(model_for(kSeed, u, r, params.model_dim));
    }
  }

  const auto before = lsa::transport::snapshot();

  const SocketAddr listen_addr = SocketAddr::parse(listen_url);
  auto hub = SocketTransport::listen(listen_addr);
  SocketAddr client_addr = listen_addr;
  if (listen_addr.kind == SocketAddr::Kind::kTcp) {
    client_addr.port = hub->tcp_port();
  }
  (void)uds_tag;

  RemoteSessionConfig cfg;
  cfg.params = params;
  cfg.rounds = kRounds;
  RemoteSession sess(*hub, /*session_id=*/0, cfg);

  std::vector<std::thread> threads;
  std::vector<std::atomic<bool>> ok(params.num_users);
  for (auto& o : ok) o.store(false);

  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    threads.emplace_back([&, u] {
      auto t = SocketTransport::connect(client_addr, 0, u,
                                        static_cast<std::uint32_t>(
                                            params.num_users));
      UserDevice dev(u, params, kSeed, *t);
      const bool dropper = (u == 4 || u == 5);
      std::int64_t result_round = -1;
      t->set_sink([&](const Inbound& in) {
        // The hub parks the drop round's survivor bitmap while a dropper
        // is down and flushes it on reconnect — a round this client
        // abandoned (and whose shares its dead connection may have
        // eaten). Skip it; the session does not wait on droppers.
        if (dropper && in.view.type == MsgType::kSurvivorSet &&
            in.view.round == kDropRound) {
          return;
        }
        if (in.view.type == MsgType::kSurvivorSet) {
          // Decline a recovery request we cannot satisfy: shares can
          // only be missing when our link broke mid-round (a TCP close
          // eats frames in flight), and the session never waits on a
          // user whose link broke mid-round — crash semantics, not an
          // error.
          try {
            dev.handle_view(in.view);
          } catch (const lsa::ProtocolError&) {
          }
          return;
        }
        dev.handle_view(in.view);
        if (in.view.type == MsgType::kAggregateResult) {
          result_round = static_cast<std::int64_t>(in.view.round);
        }
      });
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        if (!t->connected()) t->reconnect();
        dev.start_round(r, models[r][u]);
        if (dropper && r == kDropRound) {
          t->flush_pending(10'000);
          t->disconnect();
          continue;
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        while (result_round < static_cast<std::int64_t>(r)) {
          t->poll(5);
          if (result_round >= static_cast<std::int64_t>(r)) break;
          if (!t->connected() ||
              std::chrono::steady_clock::now() >= deadline) {
            return;  // ok stays false
          }
        }
      }
      ok[u].store(true);
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!sess.done() && std::chrono::steady_clock::now() < deadline) {
    hub->poll(20);
  }
  EXPECT_TRUE(sess.done());
  // Keep pumping the hub while the clients drain their result frames —
  // the last broadcast may still sit in write queues when done() flips.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  auto all_ok = [&] {
    for (auto& o : ok) {
      if (!o.load()) return false;
    }
    return true;
  };
  while (!all_ok() && std::chrono::steady_clock::now() < drain_deadline) {
    hub->poll(10);
  }
  for (auto& th : threads) th.join();
  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    EXPECT_TRUE(ok[u].load()) << "client " << u << " failed";
  }
  ASSERT_EQ(sess.aggregates().size(), kRounds);

  // Counter-enforced zero-copy: the whole socket phase (hub + 6 clients)
  // built frames straight from arena rows and relayed by refcount. Taken
  // BEFORE the reference drive (the legacy Router path copies by design).
  const auto mid = lsa::transport::snapshot();
  EXPECT_EQ(mid.payload_copies - before.payload_copies, 0u);

  Network net(params, kSeed);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    std::vector<std::size_t> crashed;
    for (std::uint32_t u = 0; u < params.num_users; ++u) {
      net.router().revive(u);
      if (sess.responders(r)[u] == 0) crashed.push_back(u);
    }
    if (r == kDropRound) {
      // Deterministic regardless of reconnect timing: a user whose link
      // broke mid-round is never waited on again while that round's
      // traffic may have died with the link (unsafe_until_), so exactly
      // the four stayers — U of them — answer the drop round's recovery.
      EXPECT_EQ(sess.responders(r),
                (std::vector<std::uint8_t>{1, 1, 1, 1, 0, 0}));
    } else if (r == 0) {
      EXPECT_TRUE(crashed.empty()) << "round " << r;
    } else {
      // Post-drop rounds: the stayers always answer, but a dropper may
      // legitimately sit this one out too — fast stayers bank round-r
      // traffic ahead, so the dropper's old link can have eaten round-r
      // shares and the unsafe_until_ fence then covers round r as well.
      // Either way the aggregate is crash-set-independent (checked below
      // bit-exactly against the reference with the same crashed set).
      for (std::uint32_t u = 0; u < 4; ++u) {
        EXPECT_EQ(sess.responders(r)[u], 1) << "stayer " << u << " round "
                                            << r;
      }
    }
    const auto want = net.run_round(r, models[r], crashed);
    EXPECT_EQ(want, sess.aggregates()[r]) << "round " << r;
  }
}

TEST(SocketTransport, FullRoundsBitIdenticalOverUds) {
  run_full_rounds("uds://" + fresh_uds_path(1), 1);
}

TEST(SocketTransport, FullRoundsBitIdenticalOverTcp) {
  run_full_rounds("tcp://127.0.0.1:0", 2);
}

// ------------------------------------- mid-round disconnect -> reconnect

// Single-threaded interleaved drive: user 3 uploads, then drops while the
// round is in flight (its model stays in the aggregate — delayed, not
// dropped), reconnects before the round finishes (a revive: it still gets
// the result broadcast), and participates fully in the next round.
TEST(SocketTransport, MidRoundDisconnectReconnectMapsToCrashRevive) {
  lsa::protocol::Params params;
  params.num_users = 4;
  params.privacy = 1;
  params.dropout = 1;
  params.model_dim = 60;
  params.validate_and_resolve();
  ASSERT_EQ(params.target_survivors, 3u);

  const std::uint64_t kSeed = 777;
  std::vector<std::vector<std::vector<rep>>> models(2);
  for (std::uint64_t r = 0; r < 2; ++r) {
    for (std::uint32_t u = 0; u < params.num_users; ++u) {
      models[r].push_back(model_for(kSeed, u, r, params.model_dim));
    }
  }

  const SocketAddr addr = SocketAddr::parse("uds://" + fresh_uds_path(3));
  auto hub = SocketTransport::listen(addr);
  RemoteSessionConfig cfg;
  cfg.params = params;
  cfg.rounds = 2;
  RemoteSession sess(*hub, 0, cfg);

  std::vector<std::unique_ptr<SocketTransport>> cts;
  std::vector<std::unique_ptr<UserDevice>> devs;
  std::vector<std::int64_t> result_round(params.num_users, -1);
  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    cts.push_back(SocketTransport::connect(
        addr, 0, u, static_cast<std::uint32_t>(params.num_users)));
    devs.push_back(std::make_unique<UserDevice>(u, params, kSeed, *cts[u]));
    cts[u]->set_sink([&, u](const Inbound& in) {
      devs[u]->handle_view(in.view);
      if (in.view.type == MsgType::kAggregateResult) {
        result_round[u] = static_cast<std::int64_t>(in.view.round);
      }
    });
  }
  auto all = [&] {
    std::vector<SocketTransport*> v;
    for (auto& c : cts) v.push_back(c.get());
    return v;
  };

  // Round 0: everyone uploads; user 3 drops right after its upload is on
  // the wire, without ever polling (it must not see the survivor bitmap).
  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    devs[u]->start_round(0, models[0][u]);
  }
  cts[3]->flush_pending(5'000);
  cts[3]->disconnect();
  // Hub collects 4 models, sees the EOF, begins recovery with the three
  // live users waiting; frames aimed at user 3 while it is down are
  // parked for its rebind (store-and-forward), and whatever sat on the
  // dead connection's write queue drains like crash(). Only the hub is
  // pumped here — the survivors must not respond yet, so the round is
  // still in flight when user 3 comes back.
  settle(hub.get(), {}, [&] {
    return sess.phase() == RemoteSession::Phase::kRecover;
  });
  // Reconnect BEFORE the round finishes: a revive. Not re-added to the
  // in-flight wait set — even though the parked bitmap reaches it on
  // rebind, its answer is ignored — but live again, so the result
  // broadcast reaches it.
  cts[3]->reconnect();
  settle(hub.get(), {cts[3].get()}, [&] { return hub->is_up(0, 3); });
  EXPECT_EQ(hub->stats().revives, 1u);
  EXPECT_EQ(sess.phase(), RemoteSession::Phase::kRecover);
  settle(hub.get(), all(), [&] { return sess.current_round() > 0; });
  ASSERT_EQ(sess.aggregates().size(), 1u);
  // The join/down windows forced the hub to park at least one frame, and
  // exactly one connection (user 3's first) was torn down.
  EXPECT_GE(hub->stats().frames_parked, 1u);
  EXPECT_EQ(hub->stats().disconnects, 1u);
  // Delayed, not dropped: responders were {0,1,2} but the aggregate
  // includes user 3's model.
  EXPECT_EQ(sess.responders(0),
            (std::vector<std::uint8_t>{1, 1, 1, 0}));
  settle(hub.get(), all(), [&] {
    return result_round[0] == 0 && result_round[3] == 0;
  });

  // Round 1: the revived user participates fully.
  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    devs[u]->start_round(1, models[1][u]);
  }
  settle(hub.get(), all(), [&] { return sess.done(); });
  ASSERT_EQ(sess.aggregates().size(), 2u);
  EXPECT_EQ(sess.responders(1),
            (std::vector<std::uint8_t>{1, 1, 1, 1}));

  Network net(params, kSeed);
  const auto want0 = net.run_round(0, models[0], {3});
  EXPECT_EQ(want0, sess.aggregates()[0]);
  net.router().revive(3);
  const auto want1 = net.run_round(1, models[1], {});
  EXPECT_EQ(want1, sess.aggregates()[1]);
}

// ----------------------------------------- broadcast buffer ownership

// A hub broadcast to K live connections builds exactly ONE frame; every
// write queue holds a reference to the same pooled block, and the last
// queue to drain recycles it.
TEST(SocketTransport, BroadcastSharesOneBufferAcrossQueues) {
  const SocketAddr addr = SocketAddr::parse("uds://" + fresh_uds_path(4));
  auto hub = SocketTransport::listen(addr);
  SessionHooks hooks;  // pure frame plumbing, no session machine
  hooks.on_frame = [](const Inbound&) {};
  hooks.on_bind = [](std::uint32_t, bool) {};
  hooks.on_disconnect = [](std::uint32_t) {};
  lsa::runtime::Transport& out =
      hub->register_session(7, 3, std::move(hooks));

  std::vector<std::unique_ptr<SocketTransport>> cts;
  std::vector<std::vector<rep>> got(3);
  for (std::uint32_t u = 0; u < 3; ++u) {
    cts.push_back(SocketTransport::connect(addr, 7, u, 3));
    cts[u]->set_sink([&, u](const Inbound& in) {
      got[u].assign(in.view.payload.begin(), in.view.payload.end());
    });
  }
  settle(hub.get(), {cts[0].get(), cts[1].get(), cts[2].get()}, [&] {
    return hub->is_up(7, 0) && hub->is_up(7, 1) && hub->is_up(7, 2);
  });

  hub->pause_writes(true);
  const std::vector<rep> payload = {1, 2, 3, 4, 5};
  const auto before = lsa::transport::snapshot();
  out.broadcast_row(MsgType::kAggregateResult, 3, /*round=*/0,
                    std::span<const rep>(payload), 3);
  const auto after = lsa::transport::snapshot();

  EXPECT_EQ(after.frames_built - before.frames_built, 1u);
  EXPECT_EQ(after.payload_copies - before.payload_copies, 0u);
  EXPECT_EQ(hub->queued_frames(7), 3u);
  // One block, three queue references.
  EXPECT_EQ(hub->pool().outstanding(), 1u);
  EXPECT_EQ(hub->queued_front_ref_count(7, 0), 3u);
  EXPECT_EQ(hub->queued_front_ref_count(7, 1), 3u);
  EXPECT_EQ(hub->queued_front_ref_count(7, 2), 3u);

  hub->pause_writes(false);
  settle(hub.get(), {cts[0].get(), cts[1].get(), cts[2].get()}, [&] {
    return got[0].size() == 5 && got[1].size() == 5 && got[2].size() == 5;
  });
  for (std::uint32_t u = 0; u < 3; ++u) EXPECT_EQ(got[u], payload);
  // All queues drained: the last release recycled the block.
  EXPECT_EQ(hub->pool().outstanding(), 0u);
}

// -------------------------------------------------- handshake rejection

TEST(SocketTransport, RejectsBadHandshakes) {
  const SocketAddr addr = SocketAddr::parse("uds://" + fresh_uds_path(5));
  auto hub = SocketTransport::listen(addr);
  SessionHooks hooks;
  hooks.on_frame = [](const Inbound&) {};
  hooks.on_bind = [](std::uint32_t, bool) {};
  hooks.on_disconnect = [](std::uint32_t) {};
  (void)hub->register_session(1, 2, std::move(hooks));

  // Unknown session.
  {
    auto c = SocketTransport::connect(addr, /*session=*/99, 0, 2);
    settle(hub.get(), {c.get()}, [&] { return !c->connected(); });
    EXPECT_FALSE(c->handshaken());
  }
  // User id out of range for the session.
  {
    auto c = SocketTransport::connect(addr, 1, /*user=*/5, 2);
    settle(hub.get(), {c.get()}, [&] { return !c->connected(); });
    EXPECT_FALSE(c->handshaken());
  }
  EXPECT_GE(hub->stats().protocol_errors, 2u);
  // A well-formed handshake still works afterwards.
  {
    auto c = SocketTransport::connect(addr, 1, 0, 2);
    settle(hub.get(), {c.get()}, [&] { return c->handshaken(); });
    EXPECT_TRUE(hub->is_up(1, 0));
  }
}

// ------------------------------------------------- persistent cohorts

TEST(SocketTransport, PersistentCohortTenRoundsOverUds) {
  // A stable 10-round persistent cohort over real sockets: every client
  // device runs its offline encode + share distribution exactly once
  // (counter-enforced per device), the hub-side decode builds its plan
  // exactly once, and every aggregate is bit-identical to the serial
  // Network reference running the same persistent protocol.
  lsa::protocol::Params params;
  params.num_users = 5;
  params.privacy = 1;
  params.dropout = 1;
  params.model_dim = 48;
  params.persistent_cohort = true;
  params.validate_and_resolve();

  const std::uint64_t kSeed = 4242;
  const std::uint64_t kRounds = 10;

  std::vector<std::vector<std::vector<rep>>> models(kRounds);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::uint32_t u = 0; u < params.num_users; ++u) {
      models[r].push_back(model_for(kSeed, u, r, params.model_dim));
    }
  }

  const SocketAddr addr = SocketAddr::parse("uds://" + fresh_uds_path(6));
  auto hub = SocketTransport::listen(addr);
  RemoteSessionConfig cfg;
  cfg.params = params;
  cfg.rounds = kRounds;
  RemoteSession sess(*hub, /*session_id=*/0, cfg);

  std::vector<std::thread> threads;
  std::vector<std::atomic<std::uint64_t>> encodes(params.num_users);
  std::vector<std::atomic<bool>> ok(params.num_users);
  for (auto& o : ok) o.store(false);

  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    threads.emplace_back([&, u] {
      auto t = SocketTransport::connect(
          addr, 0, u, static_cast<std::uint32_t>(params.num_users));
      UserDevice dev(u, params, kSeed, *t);
      std::int64_t result_round = -1;
      t->set_sink([&](const Inbound& in) {
        dev.handle_view(in.view);
        if (in.view.type == MsgType::kAggregateResult) {
          result_round = static_cast<std::int64_t>(in.view.round);
        }
      });
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        dev.start_round(r, models[r][u]);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        while (result_round < static_cast<std::int64_t>(r)) {
          t->poll(5);
          if (result_round >= static_cast<std::int64_t>(r)) break;
          if (!t->connected() ||
              std::chrono::steady_clock::now() >= deadline) {
            return;  // ok stays false
          }
        }
      }
      encodes[u].store(dev.offline_encodes());
      ok[u].store(true);
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!sess.done() && std::chrono::steady_clock::now() < deadline) {
    hub->poll(20);
  }
  EXPECT_TRUE(sess.done());
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  auto all_ok = [&] {
    for (auto& o : ok) {
      if (!o.load()) return false;
    }
    return true;
  };
  while (!all_ok() && std::chrono::steady_clock::now() < drain_deadline) {
    hub->poll(10);
  }
  for (auto& th : threads) th.join();

  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    ASSERT_TRUE(ok[u].load()) << "client " << u << " failed";
    // THE steady-state invariant: one offline setup per device for the
    // whole 10-round run, not one per round.
    EXPECT_EQ(encodes[u].load(), 1u) << "client " << u;
  }
  // Zero plan rebuilds after round 1 on the hub side.
  const auto st = sess.machine().codec().last_decode_stats();
  EXPECT_EQ(st.full_builds, 1u);
  EXPECT_EQ(st.incremental_patches, 0u);
  EXPECT_TRUE(st.plan_reused);

  ASSERT_EQ(sess.aggregates().size(), kRounds);
  Network net(params, kSeed);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(net.run_round(r, models[r], {}), sess.aggregates()[r])
        << "round " << r;
  }
}

}  // namespace
