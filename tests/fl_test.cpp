// FL harness: datasets, gradient correctness (finite differences), local
// SGD, synchronous FedAvg (plaintext == secure within quantization noise),
// and asynchronous FedBuff / secure-async convergence.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "field/fp.h"
#include "fl/cnn.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/fedbuff.h"
#include "fl/model.h"
#include "fl/sgd.h"
#include "protocol/lightsecagg.h"

namespace {

using namespace lsa::fl;

TEST(Dataset, SizesAndLabels) {
  auto ds = SyntheticDataset::mnist_like(500, 100, 1);
  EXPECT_EQ(ds.train().size(), 500u);
  EXPECT_EQ(ds.test().size(), 100u);
  EXPECT_EQ(ds.input_dim(), 784u);
  for (const auto& ex : ds.train()) {
    EXPECT_EQ(ex.x.size(), 784u);
    EXPECT_GE(ex.label, 0);
    EXPECT_LT(ex.label, 10);
  }
}

TEST(Dataset, IidPartitionCoversDisjointly) {
  auto ds = SyntheticDataset::mnist_like(103, 10, 2);
  auto parts = ds.partition_iid(7, 3);
  ASSERT_EQ(parts.size(), 7u);
  std::set<std::size_t> seen;
  for (const auto& p : parts) {
    for (auto idx : p) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, 103u);
    }
  }
  EXPECT_EQ(seen.size(), 103u);
}

TEST(Dataset, ShardPartitionIsLabelConcentrated) {
  auto ds = SyntheticDataset::mnist_like(1000, 10, 4);
  auto parts = ds.partition_shards(10, 2, 5);
  // With 2 shards per user each user should see at most ~4 distinct labels
  // (2 shards, each mostly single-label) versus ~10 for IID.
  double avg_labels = 0.0;
  for (const auto& p : parts) {
    std::set<int> labels;
    for (auto idx : p) labels.insert(ds.train()[idx].label);
    avg_labels += static_cast<double>(labels.size());
  }
  avg_labels /= 10.0;
  EXPECT_LE(avg_labels, 5.0);
}

// ------------------------------------------------------- gradient checks

void check_gradient(Model& model, const std::vector<Example>& batch,
                    double tol) {
  const std::size_t d = model.dim();
  std::vector<double> grad(d, 0.0);
  (void)model.loss_and_grad(batch, grad);

  lsa::common::Xoshiro256ss rng(77);
  const double eps = 1e-5;
  for (int probe = 0; probe < 25; ++probe) {
    const auto k = static_cast<std::size_t>(rng.next_below(d));
    auto& p = model.params();
    const double orig = p[k];
    std::vector<double> scratch(d);
    p[k] = orig + eps;
    std::fill(scratch.begin(), scratch.end(), 0.0);
    const double lp = model.loss_and_grad(batch, scratch);
    p[k] = orig - eps;
    std::fill(scratch.begin(), scratch.end(), 0.0);
    const double lm = model.loss_and_grad(batch, scratch);
    p[k] = orig;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad[k], fd, tol) << "param " << k;
  }
}

std::vector<Example> tiny_batch(std::size_t dim, std::size_t classes,
                                std::size_t n, std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<Example> batch(n);
  for (auto& ex : batch) {
    ex.x.resize(dim);
    for (auto& v : ex.x) v = static_cast<float>(rng.next_gaussian());
    ex.label = static_cast<int>(rng.next_below(classes));
  }
  return batch;
}

TEST(GradCheck, LogisticRegression) {
  LogisticRegression m(12, 4, 1);
  check_gradient(m, tiny_batch(12, 4, 6, 2), 1e-5);
}

TEST(GradCheck, Mlp) {
  Mlp m(10, 8, 3, 3);
  check_gradient(m, tiny_batch(10, 3, 5, 4), 1e-5);
}

TEST(GradCheck, SmallCnn) {
  SmallCnn::Shape shape{.channels = 1,
                        .height = 16,
                        .width = 16,
                        .conv1 = 2,
                        .conv2 = 3,
                        .hidden = 5,
                        .classes = 3};
  SmallCnn m(shape, 5);
  check_gradient(m, tiny_batch(16 * 16, 3, 3, 6), 1e-4);
}

TEST(GradCheck, SmallCnnMultiChannel) {
  SmallCnn::Shape shape{.channels = 2,
                        .height = 16,
                        .width = 16,
                        .conv1 = 3,
                        .conv2 = 2,
                        .hidden = 4,
                        .classes = 2};
  SmallCnn m(shape, 7);
  check_gradient(m, tiny_batch(2 * 16 * 16, 2, 3, 8), 1e-4);
}

TEST(Model, CnnDimsMatchKnownArchitectures) {
  // MNIST-shaped LeNet variant: 28x28x1.
  SmallCnn m({.channels = 1, .height = 28, .width = 28, .conv1 = 6,
              .conv2 = 16, .hidden = 64, .classes = 10}, 1);
  // conv1: 6*25+6; conv2: 16*6*25+16; fc1: 64*(16*16)+64; fc2: 10*64+10.
  EXPECT_EQ(m.dim(), 156u + 2416u + (64 * 256 + 64) + 650u);
  // LR on MNIST: the paper's d = 7,850 (Table 2 row 1).
  LogisticRegression lr(784, 10, 1);
  EXPECT_EQ(lr.dim(), 7850u);
}

TEST(LocalSgd, ReducesLoss) {
  auto ds = SyntheticDataset::mnist_like(200, 50, 9);
  LogisticRegression m(784, 10, 2);
  std::vector<std::size_t> idx(ds.train().size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<double> grad(m.dim(), 0.0);
  const double loss_before = m.loss_and_grad(ds.train(), grad);
  lsa::common::Xoshiro256ss rng(10);
  (void)local_sgd(m, ds.train(), idx, {.epochs = 3, .batch_size = 16, .lr = 0.1},
                  rng);
  std::fill(grad.begin(), grad.end(), 0.0);
  const double loss_after = m.loss_and_grad(ds.train(), grad);
  EXPECT_LT(loss_after, loss_before * 0.8);
}

// ----------------------------------------------------------- FL loops

TEST(FedAvg, PlaintextLearnsAboveChance) {
  auto ds = SyntheticDataset::mnist_like(600, 200, 20);
  auto parts = ds.partition_iid(6, 21);
  LogisticRegression global(784, 10, 22);
  FedAvgConfig cfg;
  cfg.rounds = 5;
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.1};
  cfg.seed = 23;
  auto records = run_fedavg(global, ds, parts, cfg, plaintext_average());
  ASSERT_EQ(records.size(), 5u);
  EXPECT_GT(records.back().test_accuracy, 0.5);  // chance = 0.1
}

TEST(FedAvg, SecureMatchesPlaintextWithinQuantizationNoise) {
  auto ds = SyntheticDataset::mnist_like(300, 100, 30);
  auto parts = ds.partition_iid(8, 31);

  LogisticRegression plain(784, 10, 33);
  LogisticRegression secure_model(784, 10, 33);  // same init

  FedAvgConfig cfg;
  cfg.rounds = 3;
  cfg.dropout_rate = 0.25;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.1};
  cfg.seed = 34;  // identical seeds -> identical dropout patterns & batches

  auto plain_rec = run_fedavg(plain, ds, parts, cfg, plaintext_average());

  lsa::protocol::Params p{.num_users = 8, .privacy = 3, .dropout = 2,
                          .target_survivors = 0, .model_dim = 7850};
  lsa::protocol::LightSecAgg<lsa::field::Fp32> proto(p, 35);
  auto secure_rec = run_fedavg(secure_model, ds, parts, cfg,
                               secure_aggregate(proto, 1u << 16, 36));

  ASSERT_EQ(plain_rec.size(), secure_rec.size());
  // Same trajectory up to quantization noise: final parameters close.
  double max_diff = 0.0;
  for (std::size_t k = 0; k < plain.params().size(); ++k) {
    max_diff = std::max(
        max_diff, std::abs(plain.params()[k] - secure_model.params()[k]));
  }
  EXPECT_LT(max_diff, 1e-3);
  EXPECT_NEAR(plain_rec.back().test_accuracy,
              secure_rec.back().test_accuracy, 0.05);
}

TEST(FedBuff, PlaintextLearnsWithStaleness) {
  auto ds = SyntheticDataset::mnist_like(400, 150, 40);
  auto parts = ds.partition_iid(20, 41);
  LogisticRegression global(784, 10, 42);
  FedBuffConfig cfg;
  cfg.rounds = 12;
  cfg.buffer_k = 5;
  cfg.tau_max = 4;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.05};
  cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  cfg.seed = 43;
  auto rec = run_fedbuff(global, ds, parts, cfg);
  EXPECT_GT(rec.back().test_accuracy, 0.5);
}

TEST(FedBuff, SecureTracksPlaintext) {
  auto ds = SyntheticDataset::mnist_like(300, 120, 50);
  auto parts = ds.partition_iid(12, 51);

  FedBuffConfig cfg;
  cfg.rounds = 8;
  cfg.buffer_k = 4;
  cfg.tau_max = 3;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.05};
  cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  cfg.seed = 52;

  LogisticRegression plain(784, 10, 53);
  auto plain_rec = run_fedbuff(plain, ds, parts, cfg);

  cfg.secure = true;
  cfg.c_l = 1u << 16;
  cfg.c_g = 1u << 6;
  cfg.privacy_t = 2;
  cfg.target_u = 10;
  LogisticRegression secure_model(784, 10, 53);
  auto secure_rec = run_fedbuff(secure_model, ds, parts, cfg);

  // Same seed -> same arrivals/staleness; trajectories differ only by
  // quantization (update + staleness weights).
  EXPECT_NEAR(plain_rec.back().test_accuracy,
              secure_rec.back().test_accuracy, 0.08);
}

}  // namespace
