// NTT properties over Goldilocks: transform/inverse round trip, agreement
// with the naive DFT, convolution theorem, and the polymul dispatcher's
// equality between schoolbook and NTT paths on every operand-size mix.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "coding/ntt.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using F = lsa::field::Goldilocks;
using rep = F::rep;

std::vector<rep> random_poly(std::size_t n, std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  return lsa::field::uniform_vector<F>(n, rng);
}

/// Naive O(n^2) DFT: out[k] = sum_j a[j] * w^(jk).
std::vector<rep> dft_naive(const std::vector<rep>& a) {
  const std::size_t n = a.size();
  const unsigned log_n =
      static_cast<unsigned>(std::countr_zero(a.size()));
  const rep w = F::omega(log_n);
  std::vector<rep> out(n, F::zero);
  for (std::size_t k = 0; k < n; ++k) {
    rep wk = F::pow(w, k);
    rep x = F::one;
    for (std::size_t j = 0; j < n; ++j) {
      out[k] = F::add(out[k], F::mul(a[j], x));
      x = F::mul(x, wk);
    }
  }
  return out;
}

TEST(Ntt, MatchesNaiveDftOnSmallSizes) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}, std::size_t{16},
                              std::size_t{64}}) {
    auto a = random_poly(n, 1000 + n);
    const auto expected = dft_naive(a);
    lsa::coding::ntt_inplace<F>(std::span<rep>(a));
    EXPECT_EQ(a, expected) << "n=" << n;
  }
}

TEST(Ntt, ForwardInverseRoundTrip) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{16}, std::size_t{256},
        std::size_t{1024}, std::size_t{4096}}) {
    const auto original = random_poly(n, 2000 + n);
    auto a = original;
    lsa::coding::ntt_inplace<F>(std::span<rep>(a));
    if (n > 1) {
      EXPECT_NE(a, original);  // transform actually does something
    }
    lsa::coding::intt_inplace<F>(std::span<rep>(a));
    EXPECT_EQ(a, original) << "n=" << n;
  }
}

TEST(Ntt, TransformOfDeltaIsAllOnes) {
  // NTT(delta_0) = (1, 1, ..., 1); NTT(all-ones) = n * delta_0.
  std::vector<rep> delta(64, F::zero);
  delta[0] = F::one;
  lsa::coding::ntt_inplace<F>(std::span<rep>(delta));
  EXPECT_EQ(delta, std::vector<rep>(64, F::one));

  std::vector<rep> ones(64, F::one);
  lsa::coding::ntt_inplace<F>(std::span<rep>(ones));
  EXPECT_EQ(ones[0], F::from_u64(64));
  for (std::size_t k = 1; k < 64; ++k) EXPECT_EQ(ones[k], F::zero);
}

TEST(Ntt, LinearityOfTransform) {
  lsa::common::Xoshiro256ss rng(77);
  auto a = random_poly(128, 3);
  auto b = random_poly(128, 4);
  const rep s = lsa::field::uniform<F>(rng);

  std::vector<rep> combo(128);
  for (std::size_t i = 0; i < 128; ++i) {
    combo[i] = F::add(a[i], F::mul(s, b[i]));
  }
  lsa::coding::ntt_inplace<F>(std::span<rep>(a));
  lsa::coding::ntt_inplace<F>(std::span<rep>(b));
  lsa::coding::ntt_inplace<F>(std::span<rep>(combo));
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(combo[i], F::add(a[i], F::mul(s, b[i])));
  }
}

TEST(Ntt, RejectsNonPowerOfTwoSizes) {
  std::vector<rep> a(3, F::one);
  EXPECT_THROW(lsa::coding::ntt_inplace<F>(std::span<rep>(a)),
               lsa::CodingError);
}

TEST(Ntt, PolymulNttMatchesSchoolbook) {
  for (const auto& [na, nb] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {1, 100},
        {100, 1},
        {63, 65},
        {64, 64},
        {128, 333},
        {1000, 1000}}) {
    const auto a = random_poly(na, 5000 + na);
    const auto b = random_poly(nb, 6000 + nb);
    const auto slow = lsa::coding::polymul_schoolbook<F>(
        std::span<const rep>(a), std::span<const rep>(b));
    const auto fast = lsa::coding::polymul_ntt<F>(std::span<const rep>(a),
                                                  std::span<const rep>(b));
    EXPECT_EQ(slow, fast) << na << "x" << nb;
  }
}

TEST(Ntt, PolymulDispatcherHandlesEmptyAndConstant) {
  const std::vector<rep> empty;
  const std::vector<rep> c{5};
  const auto a = random_poly(200, 9);
  EXPECT_TRUE(lsa::coding::polymul<F>(std::span<const rep>(empty),
                                      std::span<const rep>(a))
                  .empty());
  const auto scaled = lsa::coding::polymul<F>(std::span<const rep>(c),
                                              std::span<const rep>(a));
  ASSERT_EQ(scaled.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(scaled[i], F::mul(5, a[i]));
  }
}

TEST(Ntt, ConvolutionTheoremViaEvaluations) {
  // Products of evaluations == evaluation of the product (padding to the
  // full convolution size so no wrap-around occurs).
  const auto a = random_poly(40, 21);
  const auto b = random_poly(25, 22);
  const auto prod = lsa::coding::polymul_schoolbook<F>(
      std::span<const rep>(a), std::span<const rep>(b));
  const std::size_t n = std::bit_ceil(prod.size());
  std::vector<rep> fa(a), fb(b), fp(prod);
  fa.resize(n, F::zero);
  fb.resize(n, F::zero);
  fp.resize(n, F::zero);
  lsa::coding::ntt_inplace<F>(std::span<rep>(fa));
  lsa::coding::ntt_inplace<F>(std::span<rep>(fb));
  lsa::coding::ntt_inplace<F>(std::span<rep>(fp));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fp[i], F::mul(fa[i], fb[i]));
  }
}

TEST(Ntt, OmegaZeroIsOneAndSizeOneTransformsAreIdentity) {
  EXPECT_EQ(F::omega(0), F::one);
  std::vector<rep> one_elem{12345};
  lsa::coding::ntt_inplace<F>(std::span<rep>(one_elem));
  EXPECT_EQ(one_elem[0], 12345u);
  lsa::coding::intt_inplace<F>(std::span<rep>(one_elem));
  EXPECT_EQ(one_elem[0], 12345u);
}

TEST(Ntt, MaxPracticalSizeRoundTrips) {
  // 2^16 is far beyond any decode this library performs but well inside the
  // field's 2-adicity of 32; the transform must stay exact.
  auto a = random_poly(1u << 16, 999);
  const auto original = a;
  lsa::coding::ntt_inplace<F>(std::span<rep>(a));
  lsa::coding::intt_inplace<F>(std::span<rep>(a));
  EXPECT_EQ(a, original);
}

// Schoolbook multiplication must work for non-NTT fields too (the dispatcher
// falls back silently); run the identity (a*b)*c == a*(b*c) over Fp61.
TEST(Ntt, SchoolbookAssociativityOverNonNttField) {
  using F61 = lsa::field::Fp61;
  using rep61 = F61::rep;
  lsa::common::Xoshiro256ss rng(31);
  const auto a = lsa::field::uniform_vector<F61>(17, rng);
  const auto b = lsa::field::uniform_vector<F61>(23, rng);
  const auto c = lsa::field::uniform_vector<F61>(9, rng);
  const auto ab_c = lsa::coding::polymul<F61>(
      std::span<const rep61>(lsa::coding::polymul<F61>(
          std::span<const rep61>(a), std::span<const rep61>(b))),
      std::span<const rep61>(c));
  const auto a_bc = lsa::coding::polymul<F61>(
      std::span<const rep61>(a),
      std::span<const rep61>(lsa::coding::polymul<F61>(
          std::span<const rep61>(b), std::span<const rep61>(c))));
  EXPECT_EQ(ab_c, a_bc);
}

}  // namespace
