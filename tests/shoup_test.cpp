// Shoup precomputed-operand multiplication must be bit-identical to the
// reference product on both 64-bit fields (Goldilocks, Fp61) at every
// boundary of the reduction algebra, and the Shoup-threaded axpy kernels
// must reproduce the plain-mul kernels exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "field/field_vec.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;

// Values that stress every conditional in mul_shoup: the quotient-estimate
// off-by-one (qhat = floor(s*a/p) - 1), the [p, 2p) canonicalization, and —
// for Goldilocks — the 65-bit remainder carry that selects the 2^64 == eps
// folding.
template <class F>
std::vector<typename F::rep> boundary_values() {
  using rep = typename F::rep;
  const std::uint64_t p = F::modulus;
  std::vector<std::uint64_t> raw = {
      0,      1,      2,      3,          5,          7,
      p - 1,  p - 2,  p - 3,  p / 2,      p / 2 + 1,  p / 2 - 1,
      p / 3,  2 * (p / 3)};
  for (unsigned k = 1; k < 64; ++k) {
    const std::uint64_t b = 1ull << k;
    for (const std::uint64_t v : {b - 1, b, b + 1}) {
      if (v < p) raw.push_back(v);
    }
  }
  std::vector<rep> out;
  for (const std::uint64_t v : raw) out.push_back(static_cast<rep>(v));
  return out;
}

template <class F>
void exhaustive_boundary_cross() {
  const auto vals = boundary_values<F>();
  for (const auto s : vals) {
    const auto s_pre = F::shoup_precompute(s);
    for (const auto a : vals) {
      ASSERT_EQ(F::mul_shoup(a, s, s_pre), F::mul_reference(a, s))
          << "a=" << +a << " s=" << +s;
    }
  }
}

TEST(Shoup, GoldilocksBoundaryExhaustive) {
  exhaustive_boundary_cross<Goldilocks>();
}

TEST(Shoup, Fp61BoundaryExhaustive) { exhaustive_boundary_cross<Fp61>(); }

TEST(Shoup, Fp32BoundaryExhaustive) { exhaustive_boundary_cross<Fp32>(); }

template <class F>
void randomized_parity(std::uint64_t seed, int iters) {
  lsa::common::Xoshiro256ss rng(seed);
  for (int i = 0; i < iters; ++i) {
    const auto a = lsa::field::uniform<F>(rng);
    const auto s = lsa::field::uniform<F>(rng);
    const auto s_pre = F::shoup_precompute(s);
    ASSERT_EQ(F::mul_shoup(a, s, s_pre), F::mul(a, s)) << "a=" << +a
                                                       << " s=" << +s;
  }
}

TEST(Shoup, GoldilocksRandomizedParity) {
  randomized_parity<Goldilocks>(101, 500000);
}

TEST(Shoup, Fp61RandomizedParity) { randomized_parity<Fp61>(102, 500000); }

// The Shoup-threaded axpy kernels must match a plain F::mul/F::add loop
// bit-for-bit, across the kShoupMinReps threshold and for zero weights.
template <class F>
void axpy_kernel_parity(std::uint64_t seed) {
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(seed);
  for (const std::size_t n : {1ul, 8ul, 16ul, 17ul, 100ul, 5000ul}) {
    for (const std::size_t u : {1ul, 3ul, 9ul}) {
      std::vector<std::vector<rep>> rows_store(u);
      std::vector<const rep*> rows(u);
      std::vector<rep> coeffs(u);
      for (std::size_t k = 0; k < u; ++k) {
        rows_store[k] = lsa::field::uniform_vector<F>(n, rng);
        rows[k] = rows_store[k].data();
        coeffs[k] = (k % 3 == 2) ? F::zero
                                 : lsa::field::uniform<F>(rng);
      }
      const auto init = lsa::field::uniform_vector<F>(n, rng);

      std::vector<rep> ref(init);
      for (std::size_t k = 0; k < u; ++k) {
        for (std::size_t l = 0; l < n; ++l) {
          ref[l] = F::add(ref[l], F::mul(coeffs[k], rows_store[k][l]));
        }
      }

      std::vector<rep> got(init);
      lsa::field::axpy_accumulate_blocked<F>(
          std::span<rep>(got), std::span<const rep>(coeffs),
          std::span<const rep* const>(rows));
      EXPECT_EQ(got, ref) << "accumulate n=" << n << " u=" << u;

      const auto shoup = lsa::field::shoup_precompute_vec<F>(
          std::span<const rep>(coeffs));
      std::vector<rep> got_pre(init);
      lsa::field::axpy_accumulate_blocked_pre<F>(
          std::span<rep>(got_pre), std::span<const rep>(coeffs),
          std::span<const rep>(shoup), std::span<const rep* const>(rows));
      EXPECT_EQ(got_pre, ref) << "accumulate_pre n=" << n << " u=" << u;

      std::vector<rep> got_axpy(init);
      for (std::size_t k = 0; k < u; ++k) {
        lsa::field::axpy_inplace<F>(std::span<rep>(got_axpy), coeffs[k],
                                    std::span<const rep>(rows_store[k]));
      }
      EXPECT_EQ(got_axpy, ref) << "axpy_inplace n=" << n << " u=" << u;
    }
  }
}

TEST(Shoup, GoldilocksAxpyKernelsBitIdentical) {
  axpy_kernel_parity<Goldilocks>(201);
}

TEST(Shoup, Fp61AxpyKernelsBitIdentical) { axpy_kernel_parity<Fp61>(202); }

TEST(Shoup, Fp32AxpyKernelsBitIdentical) { axpy_kernel_parity<Fp32>(203); }

}  // namespace
