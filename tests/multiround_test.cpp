// Multi-round behavior of the orchestrated protocols: fresh randomness per
// round, correctness under varying dropout patterns, ledger accumulation,
// and field-genericity (the full LightSecAgg round over Fp61).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/lightsecagg.h"
#include "protocol/secagg.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;

template <class F>
std::vector<std::vector<typename F::rep>> random_inputs(std::size_t n,
                                                        std::size_t d,
                                                        std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<typename F::rep>> inputs(n);
  for (auto& x : inputs) x = lsa::field::uniform_vector<F>(d, rng);
  return inputs;
}

template <class F>
std::vector<typename F::rep> plain_sum(
    const std::vector<std::vector<typename F::rep>>& inputs,
    const std::vector<bool>& dropped) {
  std::vector<typename F::rep> sum(inputs[0].size(), F::zero);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<typename F::rep>(sum),
                               std::span<const typename F::rep>(inputs[i]));
  }
  return sum;
}

TEST(MultiRound, LightSecAggTenRoundsVaryingDropouts) {
  const std::size_t n = 9, d = 30;
  lsa::protocol::Params p{.num_users = n, .privacy = 3, .dropout = 3,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::LightSecAgg<Fp32> proto(p, 77);
  lsa::common::Xoshiro256ss rng(78);
  for (int round = 0; round < 10; ++round) {
    auto inputs = random_inputs<Fp32>(n, d, 100 + round);
    std::vector<bool> dropped(n, false);
    const auto drops = rng.next_below(4);  // 0..3
    for (std::uint64_t k = 0; k < drops; ++k) {
      std::size_t pick;
      do {
        pick = static_cast<std::size_t>(rng.next_below(n));
      } while (dropped[pick]);
      dropped[pick] = true;
    }
    EXPECT_EQ(proto.run_round(inputs, dropped),
              plain_sum<Fp32>(inputs, dropped))
        << "round " << round;
  }
}

TEST(MultiRound, MasksAreFreshEachRound) {
  // Same inputs, two consecutive rounds: identical aggregates (sums are
  // deterministic) but the protocol must not reuse masks. We detect mask
  // reuse through the SecAgg pairwise-seed derivation: running the same
  // round index twice on a *fresh instance* reproduces bit-identical
  // behaviour, while consecutive rounds of one instance must differ
  // internally. Observable proxy: a fresh instance equals the first round
  // of another fresh instance.
  const std::size_t n = 5, d = 12;
  lsa::protocol::Params p{.num_users = n, .privacy = 2, .dropout = 1,
                          .target_survivors = 0, .model_dim = d};
  auto inputs = random_inputs<Fp32>(n, d, 9);
  std::vector<bool> dropped(n, false);
  dropped[1] = true;

  lsa::protocol::SecAgg<Fp32> a(p, 123);
  lsa::protocol::SecAgg<Fp32> b(p, 123);
  const auto r1 = a.run_round(inputs, dropped);
  const auto r2 = a.run_round(inputs, dropped);  // round counter advanced
  const auto r1_again = b.run_round(inputs, dropped);
  EXPECT_EQ(r1, r1_again);  // deterministic given (seed, round)
  EXPECT_EQ(r1, r2);        // same correct aggregate both rounds
}

TEST(MultiRound, LedgerAccumulatesLinearly) {
  const std::size_t n = 6, d = 18;
  lsa::protocol::Params p{.num_users = n, .privacy = 2, .dropout = 1,
                          .target_survivors = 0, .model_dim = d};
  lsa::net::Ledger ledger(n);
  lsa::protocol::LightSecAgg<Fp32> proto(p, 5, &ledger);
  auto inputs = random_inputs<Fp32>(n, d, 6);
  std::vector<bool> dropped(n, false);

  (void)proto.run_round(inputs, dropped);
  const auto one_round =
      ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true);
  (void)proto.run_round(inputs, dropped);
  (void)proto.run_round(inputs, dropped);
  EXPECT_EQ(ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true),
            3 * one_round);
}

TEST(MultiRound, LightSecAggWorksOverFp61) {
  // The whole stack is field-generic; run the full protocol over the
  // 61-bit Mersenne field.
  const std::size_t n = 7, d = 26;
  lsa::protocol::Params p{.num_users = n, .privacy = 2, .dropout = 2,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::LightSecAgg<Fp61> proto(p, 11);
  auto inputs = random_inputs<Fp61>(n, d, 12);
  std::vector<bool> dropped(n, false);
  dropped[0] = dropped[6] = true;
  EXPECT_EQ(proto.run_round(inputs, dropped),
            plain_sum<Fp61>(inputs, dropped));
}

TEST(MultiRound, SecAggWorksOverFp61) {
  const std::size_t n = 5, d = 14;
  lsa::protocol::Params p{.num_users = n, .privacy = 1, .dropout = 2,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::SecAgg<Fp61> proto(p, 13);
  auto inputs = random_inputs<Fp61>(n, d, 14);
  std::vector<bool> dropped(n, false);
  dropped[2] = true;
  EXPECT_EQ(proto.run_round(inputs, dropped),
            plain_sum<Fp61>(inputs, dropped));
}

}  // namespace
