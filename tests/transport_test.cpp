// Concurrent transport subsystem: pooled ref-counted buffers, zero-copy
// framing, the MPSC ConcurrentRouter (per-link FIFO, backpressure,
// crash/revive, fault hooks), and the session-sharded multi-session
// AggregationServer — whose concurrent rounds must be bit-identical to the
// single-threaded runtime::Network, including dropout at the U boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "field/random_field.h"
#include "runtime/machines.h"
#include "server/aggregation_server.h"
#include "sys/thread_pool.h"
#include "transport/buffer_pool.h"
#include "transport/concurrent_router.h"
#include "transport/frame.h"

namespace {

using namespace lsa::transport;
using lsa::field::Fp32;
using lsa::runtime::Message;
using lsa::runtime::MsgType;
using rep = Fp32::rep;

// ---------------------------------------------------------------- buffers

TEST(BufferPool, RecyclesBlocksAndCountsRefs) {
  BufferPool pool(/*max_retained=*/4);
  const auto before = snapshot();
  BufferRef a = pool.acquire(100);
  EXPECT_EQ(a.size_bytes(), 100u);
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_EQ(pool.outstanding(), 1u);
  {
    BufferRef b = a;  // shared, not copied
    EXPECT_EQ(a.ref_count(), 2u);
    EXPECT_EQ(pool.outstanding(), 1u);
  }
  EXPECT_EQ(a.ref_count(), 1u);
  a.reset();
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.retained(), 1u);

  // Re-acquiring must reuse the retained block, even at a larger size.
  BufferRef c = pool.acquire(200);
  EXPECT_EQ(c.size_bytes(), 200u);
  const auto after = snapshot();
  EXPECT_EQ(after.pool_allocs - before.pool_allocs, 1u);
  EXPECT_EQ(after.pool_reuses - before.pool_reuses, 1u);
}

TEST(BufferPool, RefsMayOutliveThePool) {
  BufferRef survivor;
  {
    BufferPool pool(2);
    survivor = pool.acquire(64);
    survivor.bytes()[0] = 0xAB;
  }
  // The pool object is gone; the block (and its core) must still be alive.
  EXPECT_EQ(survivor.bytes()[0], 0xAB);
  survivor.reset();  // releases into the orphaned core, which frees it
}

TEST(BufferPool, FreelistIsBounded) {
  BufferPool pool(/*max_retained=*/2);
  std::vector<BufferRef> refs;
  for (int i = 0; i < 5; ++i) refs.push_back(pool.acquire(32));
  refs.clear();
  EXPECT_LE(pool.retained(), 2u);
}

// ----------------------------------------------------------------- frames

TEST(Frame, ByteCompatibleWithLegacyWireFormat) {
  Message m;
  m.type = MsgType::kAggregatedShares;
  m.sender = 7;
  m.receiver = 12;
  m.round = 0xdeadbeefULL;
  m.payload = {0, 1, 4294967290u, 42};
  const auto legacy = lsa::runtime::serialize(m);

  BufferPool pool;
  const auto frame = build_frame(pool, m.type, m.sender, m.receiver, m.round,
                                 std::span<const rep>(m.payload));
  ASSERT_EQ(frame.size_bytes(), legacy.size());
  const auto bytes = frame.bytes();
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), legacy.begin()));

  const auto view = parse_frame(frame);
  EXPECT_EQ(view.type, m.type);
  EXPECT_EQ(view.sender, m.sender);
  EXPECT_EQ(view.receiver, m.receiver);
  EXPECT_EQ(view.round, m.round);
  EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                         m.payload.begin()));
}

TEST(Frame, PayloadViewAliasesTheBuffer) {
  BufferPool pool;
  const std::vector<rep> payload = {1, 2, 3};
  const auto frame = build_frame(pool, MsgType::kMaskedModel, 0, 1, 0,
                                 std::span<const rep>(payload));
  const auto view = parse_frame(frame);
  const auto* words =
      reinterpret_cast<const std::uint32_t*>(frame.bytes().data());
  EXPECT_EQ(view.payload.data(), words + kHeaderWords);
}

TEST(Frame, BuildCountsZeroPayloadCopies) {
  BufferPool pool;
  const std::vector<rep> payload(256, 5);
  const auto before = snapshot();
  const auto frame = build_frame(pool, MsgType::kMaskedModel, 0, 1, 0,
                                 std::span<const rep>(payload));
  const auto view = parse_frame(frame);
  (void)view;
  const auto after = snapshot();
  EXPECT_EQ(after.payload_copies - before.payload_copies, 0u);
  EXPECT_EQ(after.frames_built - before.frames_built, 1u);
  EXPECT_EQ(after.payload_bytes_framed - before.payload_bytes_framed,
            4 * payload.size());
}

// ----------------------------------------------------------------- router

TEST(ConcurrentRouter, PerLinkFifoUnderConcurrentSenders) {
  constexpr std::size_t kSenders = 4;
  constexpr std::size_t kFrames = 200;
  ConcurrentRouter router(kSenders + 1, /*queue_capacity=*/64);
  const std::uint32_t receiver = kSenders;

  std::vector<std::thread> senders;
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (std::uint32_t k = 0; k < kFrames; ++k) {
        const std::vector<rep> payload = {s, k};
        router.send_row(MsgType::kMaskedModel, s, receiver, 0,
                        std::span<const rep>(payload));
      }
    });
  }
  std::vector<std::uint32_t> next_expected(kSenders, 0);
  std::size_t got = 0;
  Inbound in;
  while (got < kSenders * kFrames) {
    if (!router.recv_wait(receiver, in, std::chrono::milliseconds(2000))) {
      break;
    }
    ASSERT_EQ(in.view.payload.size(), 2u);
    const std::uint32_t s = in.view.payload[0];
    const std::uint32_t k = in.view.payload[1];
    EXPECT_EQ(k, next_expected[s]) << "per-link FIFO violated for sender "
                                   << s;
    next_expected[s] = k + 1;
    ++got;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(got, kSenders * kFrames);
  EXPECT_TRUE(router.idle());
  EXPECT_LE(router.max_queue_depth(), 64u);
}

TEST(ConcurrentRouter, BackpressureBoundsQueueDepthAndBlocksSenders) {
  ConcurrentRouter router(2, /*queue_capacity=*/4);
  std::atomic<int> sent{0};
  std::thread producer([&] {
    const std::vector<rep> payload = {9};
    for (int k = 0; k < 64; ++k) {
      router.send_row(MsgType::kMaskedModel, 0, 1, 0,
                      std::span<const rep>(payload));
      sent.fetch_add(1);
    }
  });
  // Give the producer time to fill the bounded mailbox and block.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(sent.load(), 5);  // capacity 4 in flight + 1 in the send call
  int drained = 0;
  Inbound in;
  while (drained < 64) {
    if (!router.recv_wait(1, in, std::chrono::milliseconds(2000))) break;
    ++drained;
  }
  producer.join();
  EXPECT_EQ(drained, 64);
  EXPECT_EQ(sent.load(), 64);
  EXPECT_LE(router.max_queue_depth(), 4u);
}

TEST(ConcurrentRouter, CrashDropsAndReviveReadmits) {
  ConcurrentRouter router(3);
  const std::vector<rep> payload = {1};
  auto send01 = [&] {
    router.send_row(MsgType::kMaskedModel, 0, 1, 0,
                    std::span<const rep>(payload));
  };
  send01();
  router.crash(1);  // discards the undelivered frame
  EXPECT_TRUE(router.idle());
  send01();  // dropped: receiver down
  EXPECT_TRUE(router.idle());
  router.crash(0);
  router.revive(1);
  send01();  // dropped: sender down
  EXPECT_TRUE(router.idle());
  router.revive(0);
  send01();
  Inbound in;
  ASSERT_TRUE(router.try_recv(1, in));
  EXPECT_EQ(in.view.payload[0], 1u);
  EXPECT_EQ(router.frames_dropped(), 2u);
}

TEST(ConcurrentRouter, CrashUnblocksBackpressuredSenders) {
  ConcurrentRouter router(2, /*queue_capacity=*/2);
  std::thread producer([&] {
    const std::vector<rep> payload = {7};
    for (int k = 0; k < 32; ++k) {
      router.send_row(MsgType::kMaskedModel, 0, 1, 0,
                      std::span<const rep>(payload));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  router.crash(1);  // the producer must not stay wedged
  producer.join();
  EXPECT_TRUE(router.idle());
}

TEST(ConcurrentRouter, BroadcastSharesOneRefCountedFrame) {
  constexpr std::size_t kReceivers = 5;
  ConcurrentRouter router(kReceivers + 1);
  const std::uint32_t server = kReceivers;
  const std::vector<rep> payload(128, 3);
  const auto before = snapshot();
  router.broadcast_row(MsgType::kSurvivorSet, server, 4,
                       std::span<const rep>(payload), kReceivers);
  const auto after = snapshot();
  // ONE frame built (one payload write + one CRC), shared by all mailboxes.
  EXPECT_EQ(after.frames_built - before.frames_built, 1u);
  EXPECT_EQ(after.payload_bytes_framed - before.payload_bytes_framed,
            4 * payload.size());
  EXPECT_EQ(router.frames_sent(), kReceivers);

  Inbound first;
  ASSERT_TRUE(router.try_recv(0, first));
  // The other receivers' queue entries share the same block.
  EXPECT_EQ(first.buf.ref_count(), kReceivers);
  for (std::size_t r = 1; r < kReceivers; ++r) {
    Inbound in;
    ASSERT_TRUE(router.try_recv(r, in));
    EXPECT_EQ(in.view.payload.data(), first.view.payload.data());
    EXPECT_EQ(in.view.receiver, ConcurrentRouter::kBroadcastReceiver);
    EXPECT_TRUE(std::equal(in.view.payload.begin(), in.view.payload.end(),
                           payload.begin()));
  }
  EXPECT_EQ(first.buf.ref_count(), 1u);  // only `first` still holds it
}

TEST(ConcurrentRouter, CrashWakesBlockedReceiver) {
  ConcurrentRouter router(2);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread crasher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    router.crash(1);
  });
  Inbound in;
  EXPECT_FALSE(router.recv_wait(1, in, std::chrono::milliseconds(5000)));
  const auto waited = std::chrono::steady_clock::now() - t0;
  crasher.join();
  // Must return on the crash notification, not at timeout granularity.
  EXPECT_LT(waited, std::chrono::milliseconds(2000));
}

TEST(ConcurrentRouter, FaultHookCorruptionSurfacesAtDelivery) {
  ConcurrentRouter router(2);
  router.set_fault_hook([](std::span<std::uint8_t> bytes) {
    if (bytes.size() > lsa::runtime::kHeaderBytes) {
      bytes[lsa::runtime::kHeaderBytes] ^= 0x10;
    }
    return true;
  });
  const std::vector<rep> payload = {1, 2, 3};
  router.send_row(MsgType::kMaskedModel, 0, 1, 0,
                  std::span<const rep>(payload));
  Inbound in;
  EXPECT_THROW((void)router.try_recv(1, in), lsa::ProtocolError);
  EXPECT_TRUE(router.idle());  // the corrupted frame was consumed
}

constexpr MailboxStrategy kBothStrategies[] = {
    MailboxStrategy::kLockFreeRing, MailboxStrategy::kMutexDeque};

TEST(ConcurrentRouter, FifoAndBackpressureHoldUnderBothStrategies) {
  for (const auto strategy : kBothStrategies) {
    SCOPED_TRACE(to_string(strategy));
    constexpr std::size_t kSenders = 4;
    constexpr std::size_t kFrames = 100;
    ConcurrentRouter router(kSenders + 1, /*queue_capacity=*/8, strategy);
    const std::uint32_t receiver = kSenders;
    std::vector<std::thread> senders;
    for (std::uint32_t s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        for (std::uint32_t k = 0; k < kFrames; ++k) {
          const std::vector<rep> payload = {s, k};
          router.send_row(MsgType::kMaskedModel, s, receiver, 0,
                          std::span<const rep>(payload));
        }
      });
    }
    std::vector<std::uint32_t> next_expected(kSenders, 0);
    std::size_t got = 0;
    Inbound in;
    while (got < kSenders * kFrames &&
           router.recv_wait(receiver, in, std::chrono::milliseconds(2000))) {
      const std::uint32_t s = in.view.payload[0];
      EXPECT_EQ(in.view.payload[1], next_expected[s]);
      next_expected[s] = in.view.payload[1] + 1;
      ++got;
    }
    for (auto& t : senders) t.join();
    EXPECT_EQ(got, kSenders * kFrames);
    EXPECT_TRUE(router.idle());
    EXPECT_LE(router.max_queue_depth(), 8u);
  }
}

TEST(ConcurrentRouter, DefaultCapacityAgreesWithSyncSessionRule) {
  // Satellite regression: the old fallback (max(64, 4 * num_parties))
  // disagreed with SessionBase::resolve_queue_capacity. A bare router and
  // a server-owned sync session router must now resolve identically.
  for (const std::size_t n : {4u, 6u, 32u, 100u}) {
    ConcurrentRouter bare(n + 1);
    EXPECT_EQ(bare.queue_capacity(),
              lsa::server::Session::fanin_bound(n) +
                  ConcurrentRouter::kCapacityHeadroom)
        << "n=" << n;
  }
  lsa::protocol::Params p;
  p.num_users = 6;
  p.privacy = 1;
  p.dropout = 2;
  p.target_survivors = 4;
  p.model_dim = 8;
  lsa::server::Session session(
      lsa::server::SessionConfig{.params = p, .seed = 1});
  ConcurrentRouter bare(6 + 1);
  EXPECT_EQ(session.router().queue_capacity(), bare.queue_capacity());
}

TEST(ConcurrentRouter, CrashFencesParkedSenderOutOfRevivedMailbox) {
  // Satellite regression (crash/revive enqueue race): a sender that passed
  // its liveness check and is parked on backpressure when crash() runs
  // must NOT slip its pre-crash frame into the mailbox after revive().
  // crash() fences: it returns only when the enqueue gate is idle, so by
  // the time revive() can run the late frame has been dropped and counted.
  for (const auto strategy : kBothStrategies) {
    SCOPED_TRACE(to_string(strategy));
    ConcurrentRouter router(2, /*queue_capacity=*/2, strategy);
    const std::vector<rep> payload = {5};
    auto send01 = [&] {
      router.send_row(MsgType::kMaskedModel, 0, 1, 0,
                      std::span<const rep>(payload));
    };
    send01();
    send01();  // mailbox now at capacity
    std::thread late(send01);
    // Wait until the late sender is provably parked on backpressure.
    while (router.parked_senders(1) == 0) std::this_thread::yield();
    router.crash(1);
    router.revive(1);  // immediately — the historical race window
    late.join();
    // The revived mailbox must start empty: 2 drained + 1 late = 3 drops.
    EXPECT_TRUE(router.idle());
    Inbound in;
    EXPECT_FALSE(router.try_recv(1, in));
    EXPECT_EQ(router.frames_dropped(), 3u);
    // Post-revive traffic flows normally.
    send01();
    ASSERT_TRUE(router.try_recv(1, in));
    EXPECT_EQ(in.view.payload[0], 5u);
  }
}

TEST(ConcurrentRouter, CrashAtExactCapacityUnblocksAllAndDrainsPool) {
  // Satellite: queue full with blocked senders, then receiver crash —
  // every sender unblocks, nothing is delivered post-crash, and every
  // pooled frame buffer is returned (outstanding back to zero).
  for (const auto strategy : kBothStrategies) {
    SCOPED_TRACE(to_string(strategy));
    constexpr std::size_t kCap = 3;
    constexpr std::size_t kBlocked = 4;
    ConcurrentRouter router(2, kCap, strategy);
    const std::vector<rep> payload(16, 7);
    auto send01 = [&] {
      router.send_row(MsgType::kMaskedModel, 0, 1, 0,
                      std::span<const rep>(payload));
    };
    for (std::size_t k = 0; k < kCap; ++k) send01();  // exactly full
    EXPECT_EQ(router.pool().outstanding(), kCap);
    std::vector<std::thread> blocked;
    for (std::size_t k = 0; k < kBlocked; ++k) blocked.emplace_back(send01);
    while (router.parked_senders(1) < kBlocked) std::this_thread::yield();
    router.crash(1);
    for (auto& t : blocked) t.join();
    EXPECT_TRUE(router.idle());
    EXPECT_EQ(router.frames_dropped(), kCap + kBlocked);
    // No frame leaked from the pool: queued ones were drained by crash,
    // parked ones were dropped by their own senders.
    EXPECT_EQ(router.pool().outstanding(), 0u);
  }
}

// --------------------------------------------------------------- sessions

lsa::protocol::Params session_params(std::size_t n, std::size_t t,
                                     std::size_t u, std::size_t d) {
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d;
  return p;
}

std::vector<std::vector<rep>> random_models(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> models(n);
  for (auto& m : models) m = lsa::field::uniform_vector<Fp32>(d, rng);
  return models;
}

TEST(Session, BitIdenticalToSingleThreadedNetworkWithDropouts) {
  // 7 users, U = 5, two crash after upload — dropout at the U boundary
  // (exactly U responders). The concurrent session must reproduce the
  // Network aggregate bit for bit, including the delayed-user semantics.
  const auto p = session_params(7, 2, 5, 33);
  const auto models = random_models(7, 33, 42);

  lsa::runtime::Network net(p, /*seed=*/9);
  const auto expected = net.run_round(0, models, {1, 4});

  lsa::sys::ThreadPool pool(4);
  auto pp = p;
  pp.exec.pool = &pool;
  lsa::server::Session session(lsa::server::SessionConfig{.params = pp,
                                                          .seed = 9});
  const auto got = session.run_round(0, models, {1, 4});
  EXPECT_EQ(got, expected);
  // Crashed users never saw the result; live users did.
  EXPECT_FALSE(session.user(1).last_result().has_value());
  ASSERT_TRUE(session.user(0).last_result().has_value());
  EXPECT_EQ(*session.user(0).last_result(), expected);
}

TEST(Session, BothMailboxStrategiesBitIdenticalToNetwork) {
  // The ring engine and the mutex reference must produce byte-for-byte the
  // same aggregates as the serial runtime::Network — serial == parallel ==
  // mutex-reference, including dropout at the U boundary.
  const auto p = session_params(7, 2, 5, 40);
  const auto models = random_models(7, 40, 77);
  lsa::runtime::Network net(p, /*seed=*/13);
  const auto expected = net.run_round(0, models, {2, 5});

  lsa::sys::ThreadPool pool(4);
  for (const auto strategy : kBothStrategies) {
    SCOPED_TRACE(to_string(strategy));
    auto pp = p;
    pp.exec.pool = &pool;
    lsa::server::Session session(lsa::server::SessionConfig{
        .params = pp, .seed = 13, .mailbox = strategy});
    EXPECT_EQ(session.router().strategy(), strategy);
    EXPECT_EQ(session.run_round(0, models, {2, 5}), expected);
  }
}

TEST(Session, SendSideIsZeroCopy) {
  const auto p = session_params(6, 1, 4, 24);
  const auto models = random_models(6, 24, 3);
  lsa::server::Session session(
      lsa::server::SessionConfig{.params = p, .seed = 5});
  const auto before = snapshot();
  (void)session.run_round(0, models, {});
  const auto after = snapshot();
  EXPECT_EQ(after.payload_copies - before.payload_copies, 0u)
      << "a send-side intermediate payload copy sneaked in";
  EXPECT_GT(after.frames_built - before.frames_built, 0u);
}

TEST(Session, RejectsDeadlockProneQueueCapacity) {
  // A mailbox bound below the phase fan-in would wedge the driving thread
  // on backpressure with nobody left to drain; the session must refuse it.
  auto p = session_params(6, 1, 4, 8);
  EXPECT_THROW(lsa::server::Session(lsa::server::SessionConfig{
                   .params = p, .seed = 1, .queue_capacity = 4}),
               lsa::ProtocolError);
  // The documented floor (2N + 2) is accepted and works.
  lsa::server::Session ok(lsa::server::SessionConfig{
      .params = p, .seed = 1, .queue_capacity = 14});
  const auto models = random_models(6, 8, 2);
  EXPECT_EQ(ok.run_round(0, models, {}),
            lsa::runtime::Network(p, 1).run_round(0, models, {}));
}

TEST(Session, TooManyCrashesFailLoudly) {
  const auto p = session_params(6, 1, 5, 8);
  const auto models = random_models(6, 8, 10);
  lsa::server::Session session(
      lsa::server::SessionConfig{.params = p, .seed = 9});
  EXPECT_THROW((void)session.run_round(0, models, {0, 1}),
               lsa::ProtocolError);
}

TEST(AggregationServer, MultiSessionRoundsMatchSerialReference) {
  // 6 sessions with different parameters/seeds run concurrently across
  // shards; every aggregate must equal its single-threaded Network
  // reference, including sessions with dropouts at the U boundary.
  lsa::sys::ThreadPool pool(4);
  lsa::server::AggregationServer server(&pool, /*num_shards=*/4);

  struct Spec {
    lsa::protocol::Params params;
    std::uint64_t seed;
    std::vector<std::size_t> crash;
  };
  std::vector<Spec> specs;
  for (std::uint64_t k = 0; k < 6; ++k) {
    const std::size_t n = 5 + k;
    const std::size_t u = n - 2;
    Spec s{session_params(n, 1 + k % 2, u, 16 + 8 * k), 100 + k, {}};
    if (k % 2 == 0) s.crash = {k % n, (k + 2) % n};  // exactly U respond
    specs.push_back(std::move(s));
  }

  std::vector<std::vector<std::vector<rep>>> model_sets;
  std::vector<std::vector<rep>> expected;
  for (const auto& s : specs) {
    model_sets.push_back(
        random_models(s.params.num_users, s.params.model_dim, s.seed * 7));
  }
  for (std::size_t k = 0; k < specs.size(); ++k) {
    lsa::runtime::Network net(specs[k].params, specs[k].seed);
    expected.push_back(net.run_round(0, model_sets[k], specs[k].crash));
  }

  std::vector<lsa::server::AggregationServer::RoundWork> works;
  for (std::size_t k = 0; k < specs.size(); ++k) {
    auto pp = specs[k].params;
    pp.exec.pool = &pool;  // intra-session fan-out shares the shard pool
    const auto id = server.open_session(
        lsa::server::SessionConfig{.params = pp, .seed = specs[k].seed});
    works.push_back({id, 0, &model_sets[k], specs[k].crash});
  }
  const auto results = server.run_rounds(works);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    EXPECT_EQ(results[k], expected[k]) << "session " << k;
  }
  EXPECT_EQ(server.rounds_completed(), specs.size());
}

TEST(AggregationServer, MultiRoundMultiSessionWithRejoins) {
  lsa::sys::ThreadPool pool(3);
  lsa::server::AggregationServer server(&pool, 2);
  const auto p = session_params(5, 1, 4, 12);
  const auto id0 = server.open_session(
      lsa::server::SessionConfig{.params = p, .seed = 21});
  const auto id1 = server.open_session(
      lsa::server::SessionConfig{.params = p, .seed = 22});

  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::size_t u = 0; u < 5; ++u) {
      server.session(id0).router().revive(u);
      server.session(id1).router().revive(u);
    }
    const auto models0 = random_models(5, 12, 500 + round);
    const auto models1 = random_models(5, 12, 600 + round);
    lsa::runtime::Network ref0(p, 21);
    lsa::runtime::Network ref1(p, 22);
    // References replay all prior rounds so per-round PRG states line up.
    std::vector<std::vector<rep>> exp0, exp1;
    for (std::uint64_t r = 0; r <= round; ++r) {
      for (std::size_t u = 0; u < 5; ++u) ref0.router().revive(u);
      for (std::size_t u = 0; u < 5; ++u) ref1.router().revive(u);
      exp0.push_back(ref0.run_round(r, random_models(5, 12, 500 + r),
                                    {r % 5}));
      exp1.push_back(ref1.run_round(r, random_models(5, 12, 600 + r), {}));
    }
    const auto results = server.run_rounds(
        {{id0, round, &models0, {round % 5}}, {id1, round, &models1, {}}});
    EXPECT_EQ(results[0], exp0.back()) << "round " << round;
    EXPECT_EQ(results[1], exp1.back()) << "round " << round;
  }
}

// ---------------------------------------------------- persistent cohorts

/// Elementwise Fp32 sum of all models — the ground-truth aggregate when
/// every user uploads (crash-after-upload users are delayed, not dropped).
std::vector<rep> model_sum(const std::vector<std::vector<rep>>& models) {
  std::vector<rep> acc(models[0].size(), Fp32::zero);
  for (const auto& m : models) {
    lsa::field::add_inplace<Fp32>(std::span<rep>(acc),
                                  std::span<const rep>(m));
  }
  return acc;
}

TEST(Session, PersistentCohortTenStableRoundsSetUpOnce) {
  // A stable 10-round persistent cohort: exactly one offline encode +
  // share distribution per user, one plan build, nine exact-plan reuses —
  // and every aggregate bit-identical to the per-round (non-persistent)
  // session over the same models.
  constexpr std::size_t kN = 7, kRounds = 10;
  auto p = session_params(kN, 2, 5, 33);
  auto pp = p;
  pp.persistent_cohort = true;
  lsa::server::Session persistent(
      lsa::server::SessionConfig{.params = pp, .seed = 9});
  lsa::server::Session legacy(
      lsa::server::SessionConfig{.params = p, .seed = 9});

  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const auto models = random_models(kN, 33, 1000 + r);
    const auto got = persistent.run_round(r, models, {});
    EXPECT_EQ(got, legacy.run_round(r, models, {})) << "round " << r;
    EXPECT_EQ(got, model_sum(models)) << "round " << r;
  }

  const auto st = persistent.stats();
  EXPECT_EQ(st.offline_encodes, kN);  // once per user, NOT per round
  EXPECT_EQ(st.decode_plan_builds, 1u);
  EXPECT_EQ(st.decode_plan_reuses, kRounds - 1);
  EXPECT_EQ(st.decode_plan_patches, 0u);
  // The per-round session paid the setup every round.
  EXPECT_EQ(legacy.stats().offline_encodes, kN * kRounds);
}

TEST(Session, PersistentCohortEpochAdvanceRetriggersSetup) {
  constexpr std::size_t kN = 6, kD = 16;
  auto p = session_params(kN, 1, 4, kD);
  p.persistent_cohort = true;
  lsa::server::Session session(
      lsa::server::SessionConfig{.params = p, .seed = 4});

  for (std::uint64_t r = 0; r < 3; ++r) {
    const auto models = random_models(kN, kD, 30 + r);
    EXPECT_EQ(session.run_round(r, models, {}), model_sum(models));
  }
  EXPECT_EQ(session.stats().offline_encodes, kN);
  EXPECT_EQ(session.user(0).epoch(), 0u);

  // Membership change: epoch advances, devices re-run offline setup once.
  session.advance_epoch();
  EXPECT_EQ(session.user(0).epoch(), 1u);
  for (std::uint64_t r = 3; r < 6; ++r) {
    const auto models = random_models(kN, kD, 30 + r);
    EXPECT_EQ(session.run_round(r, models, {}), model_sum(models));
  }
  const auto st = session.stats();
  EXPECT_EQ(st.offline_encodes, 2 * kN);  // one setup per epoch per user
  EXPECT_EQ(st.decode_plan_builds, 1u);   // survivor set never changed
}

TEST(Session, PersistentCohortChurnSoakHundredRounds) {
  // 100 rounds with a randomized crash-after-upload pattern: survivor-set
  // churn exercises exact reuse, incremental patching AND full rebuilds.
  // Every aggregate must equal the ground-truth model sum (delayed, not
  // dropped), the offline setup must never re-run, and the plan counters
  // must account for every round exactly.
  constexpr std::size_t kN = 10, kU = 7, kD = 24, kRounds = 100;
  auto p = session_params(kN, 2, kU, kD);
  p.persistent_cohort = true;
  lsa::server::Session session(
      lsa::server::SessionConfig{.params = p, .seed = 77});
  lsa::common::Xoshiro256ss rng(555);

  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::size_t u = 0; u < kN; ++u) session.router().revive(u);
    // 0-3 distinct users crash after uploading (D = N - U = 3).
    std::vector<std::size_t> crash;
    const std::size_t k = rng.next_u64() % 4;
    while (crash.size() < k) {
      const std::size_t c = rng.next_u64() % kN;
      if (std::find(crash.begin(), crash.end(), c) == crash.end()) {
        crash.push_back(c);
      }
    }
    const auto models = random_models(kN, kD, 9000 + r);
    ASSERT_EQ(session.run_round(r, models, crash), model_sum(models))
        << "round " << r;
  }

  const auto st = session.stats();
  EXPECT_EQ(st.offline_encodes, kN);  // setup never re-ran
  EXPECT_EQ(st.decode_plan_builds + st.decode_plan_patches +
                st.decode_plan_reuses,
            kRounds);
  EXPECT_GE(st.decode_plan_patches, 1u);  // ±1/±2 churn occurred
  EXPECT_GE(st.decode_plan_reuses, 1u);
}

// ------------------------------------------------------- pipelined rounds
//
// Params::pipeline == 2 splits a sync round into an offline stage (mask
// gen + encode + share distribution) and an online stage (upload fan-in,
// recovery, decode); the shard driver overlaps round r's online stage
// with round r+1's offline stage. The contract under test: aggregates are
// BIT-IDENTICAL to the depth-1 serial reference (and to runtime::Network)
// under every dropout pattern, and the pipeline telemetry is honest.

/// Queues `rounds.size()` rounds of one sync session on a 1-shard server
/// and drives them in a single batch (the pipelined path when
/// params.pipeline == 2, the legacy serial loop otherwise).
std::vector<std::vector<rep>> drive_batched_rounds(
    lsa::sys::ThreadPool& pool, const lsa::protocol::Params& p,
    std::uint64_t seed,
    const std::vector<std::vector<std::vector<rep>>>& model_sets,
    const std::vector<std::vector<std::size_t>>& crashes,
    lsa::server::SessionStats* stats_out = nullptr, bool persistent = false) {
  lsa::server::AggregationServer server(&pool, /*num_shards=*/1);
  auto pp = p;
  pp.exec.pool = &pool;
  pp.persistent_cohort = persistent;
  const auto id = server.open_session(
      lsa::server::SessionConfig{.params = pp, .seed = seed});
  std::vector<lsa::server::AggregationServer::RoundWork> works;
  for (std::size_t r = 0; r < model_sets.size(); ++r) {
    works.push_back({id, r, &model_sets[r], crashes[r]});
  }
  auto results = server.run_rounds(works);
  if (stats_out != nullptr) *stats_out = server.session(id).stats();
  return results;
}

TEST(PipelinedSession, DepthTwoBitIdenticalAcrossDropoutsNoRevive) {
  // Four queued rounds with crashes accumulating to D = 2 and no revive:
  // round 1 kills user 1 mid-pipeline (its round-2 offline stage races
  // the crash), round 2 kills user 4, round 3 runs at the U boundary with
  // exactly U = 5 live users. Depth 2 must match depth 1 must match the
  // serial Network, bit for bit, every round.
  const auto p = session_params(7, 2, 5, 33);
  constexpr std::size_t kRounds = 4;
  const std::vector<std::vector<std::size_t>> crashes = {{}, {1}, {4}, {}};
  std::vector<std::vector<std::vector<rep>>> model_sets;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    model_sets.push_back(random_models(7, 33, 7000 + r));
  }

  lsa::runtime::Network net(p, /*seed=*/31);
  std::vector<std::vector<rep>> expected;
  for (std::size_t r = 0; r < kRounds; ++r) {
    expected.push_back(net.run_round(r, model_sets[r], crashes[r]));
  }

  lsa::sys::ThreadPool pool(4);
  for (const std::size_t depth : {1u, 2u}) {
    SCOPED_TRACE("pipeline depth " + std::to_string(depth));
    auto pp = p;
    pp.pipeline = depth;
    lsa::server::SessionStats st;
    const auto results =
        drive_batched_rounds(pool, pp, /*seed=*/31, model_sets, crashes, &st);
    ASSERT_EQ(results.size(), kRounds);
    for (std::size_t r = 0; r < kRounds; ++r) {
      EXPECT_EQ(results[r], expected[r]) << "round " << r;
    }
    EXPECT_EQ(st.steps, kRounds);
    if (depth == 2) {
      EXPECT_EQ(st.rounds_in_flight, 2u);
      // Exactly one online-only wave: the drained-queue tail.
      EXPECT_EQ(st.pipeline_stalls, 1u);
      EXPECT_GT(st.offline_hidden_s, 0.0);
    } else {
      EXPECT_EQ(st.rounds_in_flight, 1u);
      EXPECT_EQ(st.pipeline_stalls, 0u);
      EXPECT_EQ(st.offline_hidden_s, 0.0);
    }
  }
}

TEST(PipelinedSession, BothMailboxStrategiesBitIdenticalAtDepthTwo) {
  const auto p = session_params(6, 1, 4, 24);
  constexpr std::size_t kRounds = 3;
  const std::vector<std::vector<std::size_t>> crashes = {{2}, {}, {5}};
  std::vector<std::vector<std::vector<rep>>> model_sets;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    model_sets.push_back(random_models(6, 24, 8100 + r));
  }
  lsa::runtime::Network net(p, /*seed=*/8);
  std::vector<std::vector<rep>> expected;
  for (std::size_t r = 0; r < kRounds; ++r) {
    expected.push_back(net.run_round(r, model_sets[r], crashes[r]));
  }

  lsa::sys::ThreadPool pool(4);
  for (const auto strategy : kBothStrategies) {
    SCOPED_TRACE(to_string(strategy));
    lsa::server::AggregationServer server(&pool, /*num_shards=*/1);
    auto pp = p;
    pp.pipeline = 2;
    pp.exec.pool = &pool;
    const auto id = server.open_session(lsa::server::SessionConfig{
        .params = pp, .seed = 8, .mailbox = strategy});
    std::vector<lsa::server::AggregationServer::RoundWork> works;
    for (std::size_t r = 0; r < kRounds; ++r) {
      works.push_back({id, r, &model_sets[r], crashes[r]});
    }
    const auto results = server.run_rounds(works);
    for (std::size_t r = 0; r < kRounds; ++r) {
      EXPECT_EQ(results[r], expected[r]) << "round " << r;
    }
  }
}

TEST(PipelinedSession, ReviveBetweenDrivesRejoinsTheCohort) {
  // Crash mid-pipeline in the first batch, revive between drives, run a
  // second batch: the revived user is back in every aggregate, matching a
  // Network reference replaying the same crash/revive schedule.
  const auto p = session_params(6, 1, 4, 16);
  std::vector<std::vector<std::vector<rep>>> model_sets;
  for (std::uint64_t r = 0; r < 4; ++r) {
    model_sets.push_back(random_models(6, 16, 8200 + r));
  }

  lsa::runtime::Network net(p, /*seed=*/55);
  std::vector<std::vector<rep>> expected;
  expected.push_back(net.run_round(0, model_sets[0], {}));
  expected.push_back(net.run_round(1, model_sets[1], {2}));
  for (std::size_t u = 0; u < 6; ++u) net.router().revive(u);
  expected.push_back(net.run_round(2, model_sets[2], {}));
  expected.push_back(net.run_round(3, model_sets[3], {}));

  lsa::sys::ThreadPool pool(4);
  lsa::server::AggregationServer server(&pool, /*num_shards=*/1);
  auto pp = p;
  pp.pipeline = 2;
  pp.exec.pool = &pool;
  const auto id = server.open_session(
      lsa::server::SessionConfig{.params = pp, .seed = 55});
  const auto first = server.run_rounds(
      {{id, 0, &model_sets[0], {}}, {id, 1, &model_sets[1], {2}}});
  EXPECT_EQ(first[0], expected[0]);
  EXPECT_EQ(first[1], expected[1]);
  // Rounds 2/3 exclude the dead user until it revives.
  for (std::size_t u = 0; u < 6; ++u) server.session(id).router().revive(u);
  const auto second = server.run_rounds(
      {{id, 2, &model_sets[2], {}}, {id, 3, &model_sets[3], {}}});
  EXPECT_EQ(second[0], expected[2]);
  EXPECT_EQ(second[1], expected[3]);
  EXPECT_EQ(second[0], model_sum(model_sets[2]));  // all 6 back in
}

TEST(PipelinedSession, StageDelaysOverlapAndTelemetryIsHonest) {
  // With symmetric per-stage delays the steady-state waves must hide
  // offline time behind online time: hidden >= (rounds - 1) * delay.
  const auto p = session_params(6, 1, 4, 16);
  constexpr std::size_t kRounds = 4;
  constexpr double kDelay = 0.003;
  std::vector<std::vector<std::vector<rep>>> model_sets;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    model_sets.push_back(random_models(6, 16, 8300 + r));
  }

  lsa::sys::ThreadPool pool(4);
  lsa::server::AggregationServer server(&pool, /*num_shards=*/1);
  auto pp = p;
  pp.pipeline = 2;
  pp.exec.pool = &pool;
  const auto id = server.open_session(lsa::server::SessionConfig{
      .params = pp,
      .seed = 2,
      .offline_stage_delay_s = kDelay,
      .online_stage_delay_s = kDelay});
  std::vector<lsa::server::AggregationServer::RoundWork> works;
  for (std::size_t r = 0; r < kRounds; ++r) {
    works.push_back({id, r, &model_sets[r], {}});
  }
  const auto results = server.run_rounds(works);
  for (std::size_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(results[r], model_sum(model_sets[r])) << "round " << r;
  }
  const auto st = server.session(id).stats();
  EXPECT_EQ(st.rounds_in_flight, 2u);
  EXPECT_EQ(st.pipeline_stalls, 1u);  // the tail wave
  EXPECT_GE(st.offline_hidden_s, (kRounds - 1) * kDelay);
  // Process rollup carries the same telemetry.
  const auto ps = server.stats();
  EXPECT_EQ(ps.max_rounds_in_flight, 2u);
  EXPECT_EQ(ps.pipeline_stalls, 1u);
  EXPECT_GE(ps.offline_hidden_s, (kRounds - 1) * kDelay);
}

TEST(PipelinedSession, PersistentCohortEpochsKeepExactCounters) {
  // Pipelining composes with the persistent-cohort fast path: a stable
  // 6-round depth-2 cohort still pays exactly one offline encode per user
  // and one plan build, and stays bit-identical to the depth-1 persistent
  // session over the same models.
  const auto p = session_params(7, 2, 5, 33);
  constexpr std::size_t kRounds = 6;
  std::vector<std::vector<std::vector<rep>>> model_sets;
  std::vector<std::vector<std::size_t>> crashes(kRounds);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    model_sets.push_back(random_models(7, 33, 8400 + r));
  }

  lsa::sys::ThreadPool pool(4);
  lsa::server::SessionStats st1, st2;
  const auto depth1 = drive_batched_rounds(pool, p, /*seed=*/6, model_sets,
                                           crashes, &st1,
                                           /*persistent=*/true);
  auto pp = p;
  pp.pipeline = 2;
  const auto depth2 = drive_batched_rounds(pool, pp, /*seed=*/6, model_sets,
                                           crashes, &st2,
                                           /*persistent=*/true);
  for (std::size_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(depth2[r], depth1[r]) << "round " << r;
    EXPECT_EQ(depth2[r], model_sum(model_sets[r])) << "round " << r;
  }
  for (const auto* st : {&st1, &st2}) {
    EXPECT_EQ(st->steps, kRounds);
    EXPECT_EQ(st->offline_encodes, 7u);  // once per user, NOT per round
    EXPECT_EQ(st->decode_plan_builds, 1u);
    EXPECT_EQ(st->decode_plan_reuses, kRounds - 1);
    EXPECT_EQ(st->decode_plan_patches, 0u);
  }
  EXPECT_EQ(st2.rounds_in_flight, 2u);
}

TEST(AggregationServer, MixedShardPipelinedLegacyAndAsyncInOneDrive) {
  // One shard holding a depth-2 session, a depth-1 session and an async
  // buffered session: the wave driver must interleave all three — the
  // pipelined session stage-granularly, the others one whole step per
  // wave — with every sync aggregate matching its Network reference.
  lsa::sys::ThreadPool pool(4);
  lsa::server::AggregationServer server(&pool, /*num_shards=*/1);

  const auto pa = session_params(7, 2, 5, 20);
  const auto pb = session_params(5, 1, 4, 12);
  constexpr std::size_t kRounds = 3;
  std::vector<std::vector<std::vector<rep>>> models_a, models_b;
  const std::vector<std::vector<std::size_t>> crashes_a = {{0, 2}, {}, {}};
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    models_a.push_back(random_models(7, 20, 8500 + r));
    models_b.push_back(random_models(5, 12, 8600 + r));
  }
  lsa::runtime::Network ref_a(pa, /*seed=*/71);
  lsa::runtime::Network ref_b(pb, /*seed=*/72);
  std::vector<std::vector<rep>> exp_a, exp_b;
  for (std::size_t r = 0; r < kRounds; ++r) {
    exp_a.push_back(ref_a.run_round(r, models_a[r], crashes_a[r]));
    exp_b.push_back(ref_b.run_round(r, models_b[r], {}));
  }

  auto ppa = pa;
  ppa.pipeline = 2;
  ppa.exec.pool = &pool;
  auto ppb = pb;
  ppb.exec.pool = &pool;
  const auto id_a = server.open_session(
      lsa::server::SessionConfig{.params = ppa, .seed = 71});
  const auto id_b = server.open_session(
      lsa::server::SessionConfig{.params = ppb, .seed = 72});
  lsa::server::AsyncSessionConfig ca;
  ca.params = session_params(6, 1, 4, 12);
  ca.params.exec.pool = &pool;
  ca.seed = 73;
  ca.buffer_k = 2;
  ca.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  ca.schedule = {.seed = 3, .tau_max = 3};
  const auto id_c = server.open_async_session(ca);
  server.async_session(id_c).enqueue_scheduled_cycles(2);

  std::vector<lsa::server::AggregationServer::RoundWork> works;
  for (std::size_t r = 0; r < kRounds; ++r) {
    works.push_back({id_a, r, &models_a[r], crashes_a[r]});
    works.push_back({id_b, r, &models_b[r], {}});
  }
  const auto results = server.run_rounds(works);
  for (std::size_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(results[2 * r], exp_a[r]) << "session A round " << r;
    EXPECT_EQ(results[2 * r + 1], exp_b[r]) << "session B round " << r;
  }
  EXPECT_EQ(server.async_session(id_c).outputs().size(), 2u);
  EXPECT_EQ(server.rounds_completed(), 2 * kRounds);
  EXPECT_EQ(server.cycles_completed(), 2u);
}

TEST(PipelinedSession, UnrecoverableRoundAbandonsQueueOthersProceed) {
  // Round 1 of the pipelined session loses too many responders (crash 2
  // of 6 with U = 5): the drive rethrows, the failing session abandons
  // its remaining queue INCLUDING its staged offline work, and a healthy
  // depth-2 session in the same shard still completes every round.
  const auto p = session_params(6, 1, 5, 12);
  std::vector<std::vector<std::vector<rep>>> models_bad, models_ok;
  for (std::uint64_t r = 0; r < 3; ++r) {
    models_bad.push_back(random_models(6, 12, 8700 + r));
    models_ok.push_back(random_models(6, 12, 8800 + r));
  }

  lsa::sys::ThreadPool pool(4);
  lsa::server::AggregationServer server(&pool, /*num_shards=*/1);
  auto pp = p;
  pp.pipeline = 2;
  pp.exec.pool = &pool;
  const auto id_bad = server.open_session(
      lsa::server::SessionConfig{.params = pp, .seed = 91});
  const auto id_ok = server.open_session(
      lsa::server::SessionConfig{.params = pp, .seed = 92});
  std::vector<lsa::server::AggregationServer::RoundWork> works;
  for (std::size_t r = 0; r < 3; ++r) {
    works.push_back(
        {id_bad, r, &models_bad[r],
         r == 1 ? std::vector<std::size_t>{0, 3} : std::vector<std::size_t>{}});
    works.push_back({id_ok, r, &models_ok[r], {}});
  }
  EXPECT_THROW((void)server.run_rounds(works), lsa::ProtocolError);
  EXPECT_EQ(server.session(id_bad).pending(), 0u);  // queue abandoned
  EXPECT_EQ(server.session(id_ok).pending(), 0u);   // ran to completion
  // The healthy session's rounds all completed and are correct: replay
  // the same workload standalone for the expected bits.
  lsa::runtime::Network ref(p, /*seed=*/92);
  std::vector<std::vector<rep>> exp_ok;
  for (std::size_t r = 0; r < 3; ++r) {
    exp_ok.push_back(ref.run_round(r, models_ok[r], {}));
  }
  lsa::server::SessionStats st;
  const auto again = drive_batched_rounds(
      pool, pp, /*seed=*/92, models_ok,
      std::vector<std::vector<std::size_t>>(3), &st);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(again[r], exp_ok[r]) << "round " << r;
  }
}

}  // namespace
