// Async buffered-cycle sessions in the sharded server: bit-identity with
// the legacy single-threaded AsyncNetwork drive at equal seed, U-boundary
// dropout under staleness, buffered rounds spanning many born-rounds,
// per-type queue-capacity bounds, survivor-set plan-cache reuse across
// cycles, and mixed sync+async multi-session drives deterministic across
// pool sizes with zero send-side payload copies.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "field/random_field.h"
#include "quant/staleness.h"
#include "runtime/arrival_scheduler.h"
#include "runtime/async_machines.h"
#include "runtime/machines.h"
#include "server/aggregation_server.h"
#include "sys/thread_pool.h"
#include "transport/stats.h"

namespace {

using Fp = lsa::field::Fp32;
using rep = Fp::rep;
using Arrival = lsa::runtime::Arrival;

constexpr std::size_t kN = 10, kT = 2, kU = 7, kD = 32;
constexpr std::size_t kBufferK = 4;
constexpr std::uint64_t kCg = 1u << 6;

lsa::protocol::Params make_params(std::size_t n = kN, std::size_t t = kT,
                                  std::size_t u = kU, std::size_t d = kD) {
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d;
  return p;
}

std::vector<rep> random_update(std::uint64_t seed, std::size_t d = kD) {
  lsa::common::Xoshiro256ss rng(seed);
  return lsa::field::uniform_vector<Fp>(d, rng);
}

/// Plaintext reference: sum_b w_b * update_b with the protocol's quantized
/// staleness weights.
std::vector<rep> expected_weighted_sum(
    const std::vector<Arrival>& arrivals, std::uint64_t now,
    const lsa::quant::StalenessPolicy& policy, std::size_t d = kD) {
  std::vector<rep> out(d, Fp::zero);
  for (const auto& a : arrivals) {
    const auto w = lsa::quant::quantized_staleness_weight(
        policy, now - a.born_round, kCg);
    lsa::field::axpy_inplace<Fp>(std::span<rep>(out), Fp::from_u64(w),
                                 std::span<const rep>(a.update));
  }
  return out;
}

lsa::server::AsyncSessionConfig async_config(std::uint64_t seed,
                                             std::uint64_t sched_seed) {
  lsa::server::AsyncSessionConfig cfg;
  cfg.params = make_params();
  cfg.seed = seed;
  cfg.buffer_k = kBufferK;
  cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  cfg.c_g = kCg;
  cfg.schedule = {.seed = sched_seed, .tau_max = 3};
  return cfg;
}

TEST(AsyncSession, ScheduledCyclesBitIdenticalToLegacyDrive) {
  // The seeded arrival schedule feeds both drives; every cycle's weighted
  // aggregate (and weight sum) must match the single-threaded legacy
  // AsyncNetwork bit for bit.
  const auto cfg = async_config(/*seed=*/21, /*sched_seed=*/5);
  lsa::runtime::ArrivalScheduler sched(cfg.schedule, kN, kD, kBufferK);
  lsa::runtime::AsyncNetwork legacy(cfg.params, kBufferK, cfg.staleness, kCg,
                                    /*seed=*/21);

  lsa::server::AsyncSession session(cfg);
  session.enqueue_scheduled_cycles(3);
  EXPECT_EQ(session.pending(), 3u);
  while (!session.done()) session.step();

  ASSERT_EQ(session.outputs().size(), 3u);
  for (std::uint64_t c = 0; c < 3; ++c) {
    const auto arrivals = sched.arrivals_for_cycle(c);
    const auto expect = legacy.run_cycle(sched.now_for_cycle(c), arrivals);
    EXPECT_EQ(session.outputs()[c].weighted_sum, expect.weighted_sum)
        << "cycle " << c;
    EXPECT_EQ(session.outputs()[c].weight_sum, expect.weight_sum)
        << "cycle " << c;
    EXPECT_EQ(session.outputs()[c].weighted_sum,
              expected_weighted_sum(arrivals, sched.now_for_cycle(c),
                                    cfg.staleness))
        << "cycle " << c;
  }
  EXPECT_EQ(session.stats().steps, 3u);
}

TEST(AsyncSession, BothMailboxStrategiesBitIdenticalToLegacyDrive) {
  // The lock-free ring mailbox and the mutex-deque reference must drive
  // async buffer cycles to byte-for-byte the same weighted aggregates as
  // the legacy single-threaded AsyncNetwork.
  const auto base = async_config(/*seed=*/44, /*sched_seed=*/9);
  lsa::runtime::ArrivalScheduler sched(base.schedule, kN, kD, kBufferK);
  lsa::runtime::AsyncNetwork legacy(base.params, kBufferK, base.staleness,
                                    kCg, /*seed=*/44);
  std::vector<lsa::runtime::AsyncAggregationServer::Output> expected;
  for (std::uint64_t c = 0; c < 3; ++c) {
    expected.push_back(
        legacy.run_cycle(sched.now_for_cycle(c), sched.arrivals_for_cycle(c)));
  }
  for (const auto strategy : {lsa::transport::MailboxStrategy::kLockFreeRing,
                              lsa::transport::MailboxStrategy::kMutexDeque}) {
    SCOPED_TRACE(lsa::transport::to_string(strategy));
    auto cfg = base;
    cfg.mailbox = strategy;
    lsa::server::AsyncSession session(cfg);
    EXPECT_EQ(session.router().strategy(), strategy);
    session.enqueue_scheduled_cycles(3);
    while (!session.done()) session.step();
    ASSERT_EQ(session.outputs().size(), 3u);
    for (std::uint64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(session.outputs()[c].weighted_sum, expected[c].weighted_sum)
          << "cycle " << c;
      EXPECT_EQ(session.outputs()[c].weight_sum, expected[c].weight_sum)
          << "cycle " << c;
    }
  }
}

TEST(AsyncSession, UBoundaryDropoutWithManyBornRounds) {
  // Exactly U weighted-share responders (3 of 10 users crash before
  // recovery) while the buffered rounds span FOUR distinct born-rounds —
  // the App. F.3.3 combination of shares generated in different rounds,
  // at the recovery boundary.
  const lsa::quant::StalenessPolicy poly{
      lsa::quant::StalenessKind::kPolynomial, 1.0};
  auto cfg = async_config(/*seed=*/33, /*sched_seed=*/1);
  lsa::server::AsyncSession session(cfg);
  lsa::runtime::AsyncNetwork legacy(cfg.params, kBufferK, poly, kCg, 33);

  const std::vector<Arrival> arrivals{{1, 2, random_update(201)},
                                      {3, 4, random_update(202)},
                                      {5, 7, random_update(203)},
                                      {6, 8, random_update(204)}};
  const std::vector<std::size_t> crash{7, 8, 9};  // 7 = U responders remain
  session.enqueue_cycle({/*now=*/8, arrivals, crash});
  session.step();
  const auto expect = legacy.run_cycle(8, arrivals, crash);

  ASSERT_EQ(session.outputs().size(), 1u);
  EXPECT_EQ(session.outputs()[0].weighted_sum, expect.weighted_sum);
  EXPECT_EQ(session.outputs()[0].weighted_sum,
            expected_weighted_sum(arrivals, 8, poly));
  // All manifested timestamped shares were consumed on the live users.
  for (std::size_t j = 0; j < kN; ++j) {
    if (j >= 7) continue;  // crashed
    EXPECT_EQ(session.user(j).stored_shares(), 0u) << "user " << j;
  }

  // One crash more (U - 1 responders) must fail loudly.
  lsa::server::AsyncSession too_few(async_config(34, 2));
  too_few.enqueue_cycle({8, arrivals, {4, 7, 8, 9}});
  EXPECT_THROW(too_few.step(), lsa::ProtocolError);
}

TEST(AsyncSession, RepeatedCyclesHitTheSurvivorSetPlanCache) {
  // No dropouts: every cycle's survivor set is the same first-U responder
  // set, so the decode plan is built once and reused on every later cycle.
  auto cfg = async_config(/*seed=*/44, /*sched_seed=*/9);
  lsa::server::AsyncSession session(cfg);
  session.enqueue_scheduled_cycles(4);
  while (!session.done()) session.step();

  const auto st = session.stats();
  EXPECT_EQ(st.kind, lsa::server::SessionKind::kAsync);
  EXPECT_EQ(st.steps, 4u);
  EXPECT_EQ(st.decode_plan_builds, 1u);
  EXPECT_EQ(st.decode_plan_reuses, 3u);
  EXPECT_TRUE(session.server().codec().last_decode_stats().plan_reused);
}

TEST(AsyncSession, QueueCapacityBoundIsAsyncSpecific) {
  // The async fan-in bound is max(N, max_arrivals) + 2, NOT the sync 2N+2:
  // N + 2 = 12 must be accepted (a sync session of the same N requires 22),
  // anything below must be rejected at construction.
  auto cfg = async_config(1, 1);
  cfg.queue_capacity = kN + 1;
  EXPECT_THROW(lsa::server::AsyncSession{cfg}, lsa::ProtocolError);
  cfg.queue_capacity = kN + 2;
  lsa::server::AsyncSession ok(cfg);
  ok.enqueue_scheduled_cycles(1);
  ok.step();
  EXPECT_EQ(ok.outputs().size(), 1u);

  // A queued cycle may not exceed the arrival cap the bound was derived
  // from.
  std::vector<Arrival> too_many;
  for (std::size_t u = 0; u < kBufferK + 1; ++u) {
    too_many.push_back({u, 3, random_update(300 + u)});
  }
  EXPECT_THROW(ok.enqueue_cycle({3, too_many, {}}), lsa::ProtocolError);

  // Sync sessions keep their 2N + 2 floor.
  lsa::server::SessionConfig sync_cfg{.params = make_params(),
                                      .seed = 1,
                                      .queue_capacity = 2 * kN + 1};
  EXPECT_THROW(lsa::server::Session{sync_cfg}, lsa::ProtocolError);
}

TEST(MixedServer, OneDriveRunsSyncAndAsyncCohortsDeterministically) {
  // 2 sync + 2 async sessions through ONE run_rounds() invocation, for two
  // pool sizes. Every aggregate must equal its single-threaded reference
  // (runtime::Network / runtime::AsyncNetwork) bit for bit, the send side
  // must perform zero intermediate payload copies, and repeated async
  // cycles must hit the survivor-set plan cache.
  const auto sync_p = make_params(7, 2, 5, 24);
  const std::vector<std::size_t> sync_crash{1, 4};  // exactly U respond
  std::vector<std::vector<std::vector<rep>>> sync_models(2);
  for (std::size_t s = 0; s < 2; ++s) {
    sync_models[s].resize(7);
    for (std::size_t i = 0; i < 7; ++i) {
      sync_models[s][i] = random_update(1000 + 50 * s + i, 24);
    }
  }
  std::vector<std::vector<rep>> sync_expected(2);
  for (std::size_t s = 0; s < 2; ++s) {
    lsa::runtime::Network net(sync_p, /*seed=*/500 + s);
    sync_expected[s] =
        net.run_round(0, sync_models[s], s == 0 ? sync_crash
                                                : std::vector<std::size_t>{});
  }

  // Async cohorts: A runs 3 scheduled cycles, B runs 2 explicit cycles
  // whose second crashes two users before recovery (8 > U responders).
  const auto cfg_a = async_config(/*seed=*/71, /*sched_seed=*/13);
  const auto cfg_b = async_config(/*seed=*/72, /*sched_seed=*/14);
  lsa::runtime::ArrivalScheduler sched_a(cfg_a.schedule, kN, kD, kBufferK);
  const std::vector<Arrival> b0{{0, 2, random_update(801)},
                                {2, 3, random_update(802)},
                                {4, 4, random_update(803)},
                                {5, 4, random_update(804)}};
  const std::vector<Arrival> b1{{1, 5, random_update(805)},
                                {3, 5, random_update(806)},
                                {6, 3, random_update(807)},
                                {7, 6, random_update(808)}};

  std::vector<lsa::runtime::AsyncAggregationServer::Output> a_expected;
  {
    lsa::runtime::AsyncNetwork legacy(cfg_a.params, kBufferK, cfg_a.staleness,
                                      kCg, 71);
    for (std::uint64_t c = 0; c < 3; ++c) {
      a_expected.push_back(legacy.run_cycle(sched_a.now_for_cycle(c),
                                            sched_a.arrivals_for_cycle(c)));
    }
  }
  std::vector<lsa::runtime::AsyncAggregationServer::Output> b_expected;
  {
    lsa::runtime::AsyncNetwork legacy(cfg_b.params, kBufferK, cfg_b.staleness,
                                      kCg, 72);
    b_expected.push_back(legacy.run_cycle(4, b0));
    b_expected.push_back(legacy.run_cycle(6, b1, {8, 9}));
  }

  for (const std::size_t pool_size : {2u, 4u}) {
    lsa::sys::ThreadPool pool(pool_size);
    lsa::server::AggregationServer server(&pool, /*num_shards=*/pool_size);

    std::vector<lsa::server::AggregationServer::RoundWork> works;
    for (std::size_t s = 0; s < 2; ++s) {
      auto pp = sync_p;
      pp.exec.pool = &pool;
      const auto id = server.open_session(
          lsa::server::SessionConfig{.params = pp, .seed = 500 + s});
      works.push_back({id, 0, &sync_models[s],
                       s == 0 ? sync_crash : std::vector<std::size_t>{}});
    }
    auto ca = cfg_a;
    ca.params.exec.pool = &pool;
    const auto id_a = server.open_async_session(ca);
    server.async_session(id_a).enqueue_scheduled_cycles(3);
    auto cb = cfg_b;
    cb.params.exec.pool = &pool;
    const auto id_b = server.open_async_session(cb);
    server.async_session(id_b).enqueue_cycle({4, b0, {}});
    server.async_session(id_b).enqueue_cycle({6, b1, {8, 9}});

    const auto before = lsa::transport::snapshot();
    const auto results = server.run_rounds(works);
    const auto after = lsa::transport::snapshot();
    EXPECT_EQ(after.payload_copies - before.payload_copies, 0u)
        << "send-side intermediate payload copy at pool size " << pool_size;

    ASSERT_EQ(results.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(results[s], sync_expected[s])
          << "sync session " << s << " pool " << pool_size;
    }
    const auto& out_a = server.async_session(id_a).outputs();
    ASSERT_EQ(out_a.size(), 3u);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(out_a[c].weighted_sum, a_expected[c].weighted_sum)
          << "async A cycle " << c << " pool " << pool_size;
      EXPECT_EQ(out_a[c].weight_sum, a_expected[c].weight_sum);
    }
    const auto& out_b = server.async_session(id_b).outputs();
    ASSERT_EQ(out_b.size(), 2u);
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(out_b[c].weighted_sum, b_expected[c].weighted_sum)
          << "async B cycle " << c << " pool " << pool_size;
    }

    EXPECT_EQ(server.rounds_completed(), 2u);
    EXPECT_EQ(server.cycles_completed(), 5u);
    // Repeated cycles with the same survivor set reuse the cached plan.
    EXPECT_GE(server.async_session(id_a).stats().decode_plan_reuses, 2u);
    const auto ps = server.stats();
    EXPECT_EQ(ps.per_session.size(), 4u);
    EXPECT_EQ(ps.rounds_completed, 2u);
    EXPECT_EQ(ps.cycles_completed, 5u);
    EXPECT_GT(ps.frames_sent, 0u);
  }
}

// ---------------------------------------------------- persistent cohorts

TEST(AsyncSession, PersistentCohortStableCyclesSetUpOncePerArriver) {
  // 10 buffer cycles with the same four arrivers: each device runs its
  // offline encode + timestamped share distribution exactly once (epoch
  // 0), the decode plan is built once, and every cycle's weighted
  // aggregate is bit-identical to the per-update (non-persistent) session
  // AND to the plaintext weighted-sum reference.
  constexpr std::size_t kCycles = 10;
  const auto base = async_config(/*seed=*/91, /*sched_seed=*/3);
  auto pcfg = base;
  pcfg.params.persistent_cohort = true;
  lsa::server::AsyncSession persistent(pcfg);
  lsa::server::AsyncSession legacy(base);

  for (std::uint64_t c = 0; c < kCycles; ++c) {
    const std::uint64_t now = c + 2;
    const std::vector<Arrival> arrivals{
        {0, now - 2, random_update(4000 + 10 * c)},
        {1, now - 1, random_update(4001 + 10 * c)},
        {2, now, random_update(4002 + 10 * c)},
        {3, now - 1, random_update(4003 + 10 * c)}};
    persistent.enqueue_cycle({now, arrivals, {}});
    persistent.step();
    legacy.enqueue_cycle({now, arrivals, {}});
    legacy.step();
    const auto& got = persistent.outputs().back();
    EXPECT_EQ(got.weighted_sum, legacy.outputs().back().weighted_sum)
        << "cycle " << c;
    EXPECT_EQ(got.weighted_sum,
              expected_weighted_sum(arrivals, now, base.staleness))
        << "cycle " << c;
  }

  const auto st = persistent.stats();
  EXPECT_EQ(st.offline_encodes, 4u);  // once per arriving device, NOT 40
  EXPECT_EQ(st.decode_plan_builds, 1u);
  EXPECT_EQ(st.decode_plan_reuses, kCycles - 1);
  EXPECT_EQ(legacy.stats().offline_encodes, 4u * kCycles);
  // Epoch shares are retained, not consumed per manifest.
  EXPECT_GT(persistent.user(5).stored_shares(), 0u);

  // Membership change: the next arrival of each device re-runs setup once.
  persistent.advance_epoch();
  const std::uint64_t now = kCycles + 2;
  const std::vector<Arrival> arrivals{{0, now, random_update(5000)},
                                      {1, now, random_update(5001)},
                                      {2, now, random_update(5002)},
                                      {3, now, random_update(5003)}};
  persistent.enqueue_cycle({now, arrivals, {}});
  persistent.step();
  EXPECT_EQ(persistent.outputs().back().weighted_sum,
            expected_weighted_sum(arrivals, now, base.staleness));
  EXPECT_EQ(persistent.stats().offline_encodes, 8u);
}

}  // namespace
