// Fast modular-reduction paths of PrimeField::mul (Barrett for the 32-bit
// moduli, Mersenne shift-and-fold for 2^61 - 1) and Goldilocks::mul
// (branch-light 2^64-2^32+1 reduction), checked against the reference `%`
// implementation at every boundary the reduction analysis cares about,
// plus exhaustive small-modulus sweeps and bulk random sampling.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/prime_field.h"
#include "field/random_field.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;
using lsa::field::PrimeField;

template <class F>
class FastMul : public ::testing::Test {};

using FastMulFields = ::testing::Types<Fp32, Fp61, Goldilocks>;
TYPED_TEST_SUITE(FastMul, FastMulFields);

/// Representative boundary values for a modulus Q: the edges of the rep
/// range, the 16/32-bit split points of the lazy-accumulation kernels, and
/// values around sqrt(Q) (largest products just below/above Q).
template <class F>
std::vector<typename F::rep> boundary_values() {
  using rep = typename F::rep;
  const std::uint64_t q = F::modulus;
  std::vector<std::uint64_t> raw = {
      0, 1, 2, 3, q - 1, q - 2, q - 3, q / 2, q / 2 + 1, q / 2 - 1,
      (1ull << 16) - 1, 1ull << 16, (1ull << 16) + 1,
      (1ull << 31) - 1, 1ull << 31, (1ull << 32) - 1,
  };
  // isqrt(q) neighborhood: products a*b near q itself.
  std::uint64_t r = 1;
  while ((r + 1) * (r + 1) <= q && (r + 1) < (1ull << 32)) ++r;
  for (std::uint64_t dlt = 0; dlt <= 2; ++dlt) {
    raw.push_back(r - dlt);
    raw.push_back(r + dlt);
  }
  std::vector<rep> out;
  for (const auto v : raw) {
    if (v < q) out.push_back(static_cast<rep>(v));
  }
  return out;
}

TYPED_TEST(FastMul, BoundaryCrossProductMatchesReference) {
  using F = TypeParam;
  const auto vals = boundary_values<F>();
  for (const auto a : vals) {
    for (const auto b : vals) {
      ASSERT_EQ(F::mul(a, b), F::mul_reference(a, b))
          << "a=" << static_cast<std::uint64_t>(a)
          << " b=" << static_cast<std::uint64_t>(b);
    }
  }
}

TYPED_TEST(FastMul, RandomPairsMatchReference) {
  using F = TypeParam;
  lsa::common::Xoshiro256ss rng(0xba44e77);
  for (int i = 0; i < 200000; ++i) {
    const auto a = lsa::field::uniform<F>(rng);
    const auto b = lsa::field::uniform<F>(rng);
    ASSERT_EQ(F::mul(a, b), F::mul_reference(a, b))
        << "a=" << static_cast<std::uint64_t>(a)
        << " b=" << static_cast<std::uint64_t>(b);
  }
}

TYPED_TEST(FastMul, RandomTimesBoundaryMatchesReference) {
  using F = TypeParam;
  lsa::common::Xoshiro256ss rng(0x5eed);
  const auto vals = boundary_values<F>();
  for (int i = 0; i < 20000; ++i) {
    const auto a = lsa::field::uniform<F>(rng);
    for (const auto b : vals) {
      ASSERT_EQ(F::mul(a, b), F::mul_reference(a, b));
    }
  }
}

// The Barrett path is generic over Q <= 2^32; sweep ALL pairs for small
// moduli (the full multiplication table) so every qhat rounding case is hit.
template <std::uint64_t Q>
void exhaustive_sweep() {
  using F = PrimeField<Q>;
  for (std::uint64_t a = 0; a < Q; ++a) {
    for (std::uint64_t b = a; b < Q; ++b) {
      const auto fast = F::mul(static_cast<typename F::rep>(a),
                               static_cast<typename F::rep>(b));
      const auto ref = F::mul_reference(static_cast<typename F::rep>(a),
                                        static_cast<typename F::rep>(b));
      ASSERT_EQ(fast, ref) << "Q=" << Q << " a=" << a << " b=" << b;
    }
  }
}

TEST(BarrettExhaustive, SmallModuli) {
  exhaustive_sweep<3>();
  exhaustive_sweep<5>();
  exhaustive_sweep<7>();
  exhaustive_sweep<251>();
  exhaustive_sweep<257>();
  exhaustive_sweep<751>();
}

TEST(BarrettExhaustive, MediumMersennePrime) {
  // 2^13 - 1 = 8191: full table still feasible, exercises a Q where
  // products span the whole 26-bit range.
  exhaustive_sweep<8191>();
}

TEST(BarrettBoundary, LargestProductsAtFp32) {
  // (Q-1)^2 is the largest 64-bit product the Barrett path ever reduces;
  // walk the extreme corner densely.
  using F = Fp32;
  const std::uint64_t q = F::modulus;
  for (std::uint64_t da = 0; da < 64; ++da) {
    for (std::uint64_t db = 0; db < 64; ++db) {
      const auto a = static_cast<F::rep>(q - 1 - da);
      const auto b = static_cast<F::rep>(q - 1 - db);
      ASSERT_EQ(F::mul(a, b), F::mul_reference(a, b));
    }
  }
}

TEST(MersenneBoundary, LargestProductsAtFp61) {
  using F = Fp61;
  const std::uint64_t q = F::modulus;
  for (std::uint64_t da = 0; da < 64; ++da) {
    for (std::uint64_t db = 0; db < 64; ++db) {
      const auto a = static_cast<F::rep>(q - 1 - da);
      const auto b = static_cast<F::rep>(q - 1 - db);
      ASSERT_EQ(F::mul(a, b), F::mul_reference(a, b));
    }
  }
}

TEST(FastMulStatic, PathSelection) {
  // Fp32 must take Barrett (not Mersenne), Fp61 must take Mersenne.
  static_assert(!Fp32::is_mersenne);
  static_assert(Fp61::is_mersenne);
  // Barrett magic is floor(2^64 / Q) exactly (Q odd -> never divides 2^64).
  static_assert(Fp32::barrett_magic == ~0ull / Fp32::modulus);
  SUCCEED();
}

TEST(FastMulConstexpr, CompileTimeEvaluation) {
  // The fast paths must stay constexpr-usable (NTT twiddle tables, static
  // asserts elsewhere depend on it).
  static_assert(Fp32::mul(Fp32::modulus - 1, Fp32::modulus - 1) ==
                Fp32::mul_reference(Fp32::modulus - 1, Fp32::modulus - 1));
  static_assert(Fp61::mul(Fp61::modulus - 2, Fp61::modulus - 3) ==
                Fp61::mul_reference(Fp61::modulus - 2, Fp61::modulus - 3));
  static_assert(Goldilocks::mul(Goldilocks::modulus - 1, 12345u) ==
                Goldilocks::mul_reference(Goldilocks::modulus - 1, 12345u));
  SUCCEED();
}

}  // namespace
