// Statistical privacy checks on what the server observes.
//
// Information-theoretic privacy (Theorem 1) is proven by the structure
// (uniform masks + T-private MDS); these tests probe the *implementation*
// for gross leaks: masked uploads must be marginally uniform regardless of
// the input, and the server's recovery view must not depend on which user
// contributed what beyond the aggregate.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "protocol/lightsecagg.h"
#include "protocol/secagg.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;

/// Chi-square over 16 bins of [0, q); 40 ~ p > 0.999 at 15 dof.
double uniformity_stat(const std::vector<rep>& values) {
  std::vector<std::size_t> bins(16, 0);
  const std::uint64_t w = Fp32::modulus / 16 + 1;
  for (auto v : values) bins[v / w]++;
  return lsa::common::chi_square_uniform(bins);
}

TEST(Privacy, LightSecAggMaskedUploadLooksUniform) {
  // Mask an adversarially structured input (all zeros / all max) with the
  // protocol's mask; the masked vector must pass a uniformity test.
  const std::size_t d = 40000;
  lsa::protocol::Params p{.num_users = 4, .privacy = 1, .dropout = 1,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::LightSecAgg<Fp32> proto(p, 99);

  // Run a round and capture what user 0 uploads by reconstructing it:
  // upload = input + z. We can't tap the wire directly, so emulate the
  // masking exactly as the protocol does (same seed derivation).
  auto seed = lsa::crypto::derive_subseed(
      lsa::crypto::seed_from_u64(99ull ^ (0x115aull + 0 * 0x9e3779b97f4a7c15ull)),
      0);
  lsa::crypto::Prg prg(seed);
  auto mask = lsa::field::uniform_vector<Fp32>(d, prg);

  std::vector<rep> zeros(d, 0);
  std::vector<rep> maxed(d, static_cast<rep>(Fp32::modulus - 1));
  auto masked_zeros = lsa::field::add<Fp32>(std::span<const rep>(zeros),
                                            std::span<const rep>(mask));
  auto masked_maxed = lsa::field::add<Fp32>(std::span<const rep>(maxed),
                                            std::span<const rep>(mask));
  EXPECT_LT(uniformity_stat(masked_zeros), 40.0);
  EXPECT_LT(uniformity_stat(masked_maxed), 40.0);
}

TEST(Privacy, AggregateRevealsOnlyTheSum) {
  // Two input sets with identical sums but different per-user values must
  // produce identical aggregates (what the protocol outputs) — a sanity
  // check that per-user structure does not leak into the result.
  const std::size_t n = 5, d = 16;
  lsa::protocol::Params p{.num_users = n, .privacy = 2, .dropout = 0,
                          .target_survivors = 0, .model_dim = d};
  lsa::common::Xoshiro256ss rng(123);

  std::vector<std::vector<rep>> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = lsa::field::uniform_vector<Fp32>(d, rng);
    b[i] = a[i];
  }
  // Move mass between users 0 and 1 in b: sums unchanged.
  for (std::size_t k = 0; k < d; ++k) {
    const rep delta = 12345;
    b[0][k] = Fp32::add(b[0][k], delta);
    b[1][k] = Fp32::sub(b[1][k], delta);
  }
  std::vector<bool> dropped(n, false);

  lsa::protocol::LightSecAgg<Fp32> proto_a(p, 7);
  lsa::protocol::LightSecAgg<Fp32> proto_b(p, 7);
  EXPECT_EQ(proto_a.run_round(a, dropped), proto_b.run_round(b, dropped));
}

TEST(Privacy, SecAggPairwiseMasksCancelOnlyInAggregate) {
  // The per-user SecAgg masks are structured (pairwise ±PRG streams); verify
  // they are non-zero and distinct per user, while summing to the private
  // masks' sum — i.e., privacy comes from masking, correctness from
  // cancellation.
  const std::size_t n = 4, d = 1000;
  lsa::protocol::Params p{.num_users = n, .privacy = 1, .dropout = 0,
                          .target_survivors = 0, .model_dim = d};
  lsa::protocol::SecAgg<Fp32> proto(p, 31);

  std::vector<std::vector<rep>> zeros(n, std::vector<rep>(d, 0));
  std::vector<bool> dropped(n, false);
  // With all-zero inputs the aggregate must be exactly zero: pairwise masks
  // cancel and private masks are removed.
  const auto agg = proto.run_round(zeros, dropped);
  EXPECT_EQ(agg, std::vector<rep>(d, 0));
}

TEST(Privacy, EncodedMaskSharesAtTColludersAreUniform) {
  // Direct statistical test of the T-privacy property on the wire format:
  // fix the mask, re-encode with fresh noise, observe T shares.
  const std::size_t n = 6, u = 5, t = 2, d = 9;
  lsa::common::Xoshiro256ss rng(77);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  std::vector<rep> mask(d);
  for (std::size_t i = 0; i < d; ++i) mask[i] = static_cast<rep>(i * 1000);

  std::vector<rep> observed;
  observed.reserve(6000);
  for (int trial = 0; trial < 3000; ++trial) {
    auto shares = codec.encode(std::span<const rep>(mask), rng);
    observed.push_back(shares[0][0]);  // colluder 1's view
    observed.push_back(shares[3][0]);  // colluder 2's view
  }
  EXPECT_LT(uniformity_stat(observed), 45.0);
}

}  // namespace
