// Parity of the flat-arena chunked/parallel encode-decode engine with the
// legacy per-user serial path: encode_all / decode_aggregate must be
// bit-identical across {legacy nested, flat serial, flat parallel} x
// {Fp32, Fp61, Goldilocks} x decode strategies, including dropout patterns
// at the U boundary (exactly U survivors / responders). Also pins down the
// protocol level: LightSecAgg rounds with and without a thread pool return
// identical aggregates.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "coding/mask_codec.h"
#include "common/rng.h"
#include "crypto/prg.h"
#include "field/flat_matrix.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"
#include "protocol/lightsecagg.h"
#include "protocol/secagg.h"
#include "protocol/secagg_plus.h"
#include "sys/exec_policy.h"
#include "sys/thread_pool.h"

namespace {

using lsa::field::FlatMatrix;
using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;

template <class F>
class CodecParity : public ::testing::Test {};

using Fields = ::testing::Types<Fp32, Fp61, Goldilocks>;
TYPED_TEST_SUITE(CodecParity, Fields);

constexpr std::size_t kN = 12, kU = 8, kT = 3, kD = 50;

template <class F>
lsa::crypto::Prg user_prg(std::size_t i) {
  return lsa::crypto::Prg(lsa::crypto::seed_from_u64(0xc0dec + i));
}

TYPED_TEST(CodecParity, EncodeAllMatchesLegacyPerUserEncode) {
  using F = TypeParam;
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(11);
  lsa::coding::MaskCodec<F> codec(kN, kU, kT, kD);

  FlatMatrix<F> masks(kN, kD);
  for (std::size_t i = 0; i < kN; ++i) {
    lsa::field::fill_uniform<F>(masks.row(i), rng);
  }

  // Legacy: nested per-user encode, fresh PRG per user.
  std::vector<std::vector<std::vector<rep>>> legacy(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    auto prg = user_prg<F>(i);
    legacy[i] = codec.encode(masks.row(i), prg);
  }

  // Flat serial and flat parallel, same per-user PRGs.
  const auto factory = [](std::size_t i) { return user_prg<F>(i); };
  const auto serial = codec.encode_all(masks, factory);

  lsa::sys::ThreadPool pool(4);
  lsa::sys::ExecPolicy par{&pool, 256};
  const auto parallel = codec.encode_all(masks, factory, par);

  ASSERT_EQ(serial.rows(), kN * kN);
  ASSERT_EQ(serial.cols(), codec.segment_len());
  EXPECT_TRUE(serial == parallel);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      const auto row = serial.row(j * kN + i);
      ASSERT_EQ(std::vector<rep>(row.begin(), row.end()), legacy[i][j])
          << "owner=" << i << " holder=" << j;
    }
  }
}

template <class F>
struct RoundFixture {
  using rep = typename F::rep;
  lsa::coding::MaskCodec<F> codec{kN, kU, kT, kD};
  FlatMatrix<F> masks{kN, kD};
  FlatMatrix<F> arena;
  std::vector<std::size_t> survivors;
  std::vector<rep> expected;  // sum of surviving masks

  explicit RoundFixture(std::uint64_t seed, std::size_t num_survivors) {
    lsa::common::Xoshiro256ss rng(seed);
    for (std::size_t i = 0; i < kN; ++i) {
      lsa::field::fill_uniform<F>(masks.row(i), rng);
    }
    arena = codec.encode_all(masks,
                             [](std::size_t i) { return user_prg<F>(i); });
    // Dropout at the tail: the first `num_survivors` users survive.
    survivors.resize(num_survivors);
    std::iota(survivors.begin(), survivors.end(), 0);
    expected.assign(kD, F::zero);
    for (std::size_t i : survivors) {
      lsa::field::add_inplace<F>(std::span<rep>(expected), masks.row(i));
    }
  }

  /// Aggregated share of holder j over the survivors.
  [[nodiscard]] std::vector<rep> agg_share(std::size_t j) const {
    std::vector<rep> acc(codec.segment_len(), F::zero);
    for (std::size_t i : survivors) {
      lsa::field::add_inplace<F>(std::span<rep>(acc),
                                 arena.row(j * kN + i));
    }
    return acc;
  }
};

TYPED_TEST(CodecParity, DecodeParityAtExactlyUBoundary) {
  using F = TypeParam;
  using rep = typename F::rep;
  // Exactly U survivors — the hardest legal dropout pattern (N - U drop).
  RoundFixture<F> fx(21, kU);

  std::vector<std::size_t> responders(fx.survivors.begin(),
                                      fx.survivors.begin() + kU);
  FlatMatrix<F> flat(kU, fx.codec.segment_len());
  std::vector<std::vector<rep>> nested;
  for (std::size_t r = 0; r < kU; ++r) {
    auto share = fx.agg_share(responders[r]);
    std::copy(share.begin(), share.end(), flat.row(r).begin());
    nested.push_back(std::move(share));
  }

  const auto legacy = fx.codec.decode_aggregate(responders, nested);
  EXPECT_EQ(legacy, fx.expected);

  const auto flat_serial = fx.codec.decode_aggregate(responders, flat);
  EXPECT_EQ(flat_serial, fx.expected);

  lsa::sys::ThreadPool pool(4);
  for (const std::size_t chunk : {3ul, 4096ul}) {
    lsa::sys::ExecPolicy par{&pool, chunk};
    EXPECT_EQ(fx.codec.decode_aggregate(responders, flat, par), fx.expected)
        << "chunk=" << chunk;
  }
}

TYPED_TEST(CodecParity, AllStrategiesAgreeUnderParallelPolicy) {
  using F = TypeParam;
  using rep = typename F::rep;
  RoundFixture<F> fx(31, kU + 2);  // a little redundancy, scattered owners

  // Use the *last* U survivors as responders (non-contiguous alphas).
  std::vector<std::size_t> responders(fx.survivors.end() - kU,
                                      fx.survivors.end());
  FlatMatrix<F> flat(kU, fx.codec.segment_len());
  for (std::size_t r = 0; r < kU; ++r) {
    const auto share = fx.agg_share(responders[r]);
    std::copy(share.begin(), share.end(), flat.row(r).begin());
  }

  lsa::sys::ThreadPool pool(3);
  lsa::sys::ExecPolicy par{&pool, 16};
  using DS = lsa::coding::DecodeStrategy;
  for (const auto strategy : {DS::kLagrange, DS::kBarycentric, DS::kNtt}) {
    const auto serial =
        fx.codec.decode_aggregate(responders, flat, {}, strategy);
    const auto parallel =
        fx.codec.decode_aggregate(responders, flat, par, strategy);
    EXPECT_EQ(serial, fx.expected) << to_string(strategy);
    EXPECT_EQ(parallel, fx.expected) << to_string(strategy);
  }
}

TYPED_TEST(CodecParity, VerifiedDecodeParityWithRedundantResponder) {
  using F = TypeParam;
  using rep = typename F::rep;
  RoundFixture<F> fx(41, kU + 1);  // U + 1 survivors: minimum redundancy

  const auto& responders = fx.survivors;  // all U+1 respond
  FlatMatrix<F> flat(kU + 1, fx.codec.segment_len());
  std::vector<std::vector<rep>> nested;
  for (std::size_t r = 0; r < kU + 1; ++r) {
    auto share = fx.agg_share(responders[r]);
    std::copy(share.begin(), share.end(), flat.row(r).begin());
    nested.push_back(std::move(share));
  }

  lsa::sys::ThreadPool pool(4);
  lsa::sys::ExecPolicy par{&pool, 64};
  const auto legacy = fx.codec.decode_aggregate_verified(responders, nested);
  EXPECT_EQ(legacy, fx.expected);
  EXPECT_EQ(fx.codec.decode_aggregate_verified(responders, flat), fx.expected);
  EXPECT_EQ(fx.codec.decode_aggregate_verified(responders, flat, par),
            fx.expected);

  // Tampering is still detected through the flat path.
  flat(0, 0) = F::add(flat(0, 0), F::one);
  EXPECT_THROW((void)fx.codec.decode_aggregate_verified(responders, flat),
               lsa::CodingError);
}

TYPED_TEST(CodecParity, LightSecAggRoundIdenticalWithAndWithoutPool) {
  using F = TypeParam;
  using rep = typename F::rep;
  lsa::protocol::Params params;
  params.num_users = 10;
  params.privacy = 2;
  params.dropout = 3;  // U resolves to N - D = 7
  params.model_dim = 33;

  lsa::common::Xoshiro256ss rng(5);
  std::vector<std::vector<rep>> inputs(params.num_users);
  for (auto& v : inputs) {
    v = lsa::field::uniform_vector<F>(params.model_dim, rng);
  }
  // Dropout at the U boundary: exactly D = 3 users drop.
  std::vector<bool> dropped(params.num_users, false);
  dropped[1] = dropped[4] = dropped[9] = true;

  lsa::protocol::LightSecAgg<F> serial(params, /*master_seed=*/97);
  const auto serial_out = serial.run_round(inputs, dropped);

  lsa::sys::ThreadPool pool(4);
  auto par_params = params;
  par_params.exec = lsa::sys::ExecPolicy{&pool, 128};
  lsa::protocol::LightSecAgg<F> parallel(par_params, /*master_seed=*/97);
  const auto parallel_out = parallel.run_round(inputs, dropped);

  EXPECT_EQ(serial_out, parallel_out);

  // And both equal the plain sum of surviving inputs.
  std::vector<rep> expect(params.model_dim, F::zero);
  for (std::size_t i = 0; i < params.num_users; ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<rep>(expect),
                               std::span<const rep>(inputs[i]));
  }
  EXPECT_EQ(serial_out, expect);
}

TEST(RecoveryBatchParity, SecAggRoundIdenticalWithAndWithoutPool) {
  // The recovery phase batches its PRG re-expansions (survivor private
  // masks + dropped users' residual pairwise masks) through the pool; the
  // result must be bit-identical to the serial expand-one-apply-one loop.
  using F = Fp32;
  using rep = F::rep;
  lsa::protocol::Params params;
  params.num_users = 9;
  params.privacy = 2;
  params.dropout = 3;
  params.model_dim = 41;

  lsa::common::Xoshiro256ss rng(13);
  std::vector<std::vector<rep>> inputs(params.num_users);
  for (auto& v : inputs) {
    v = lsa::field::uniform_vector<F>(params.model_dim, rng);
  }
  std::vector<bool> dropped(params.num_users, false);
  dropped[0] = dropped[5] = dropped[8] = true;  // full D dropouts

  lsa::protocol::SecAgg<F> serial(params, /*master_seed=*/31);
  const auto serial_out = serial.run_round(inputs, dropped);

  lsa::sys::ThreadPool pool(4);
  auto par_params = params;
  par_params.exec = lsa::sys::ExecPolicy{&pool, 128};
  lsa::protocol::SecAgg<F> parallel(par_params, /*master_seed=*/31);
  const auto parallel_out = parallel.run_round(inputs, dropped);

  EXPECT_EQ(serial_out, parallel_out);

  std::vector<rep> expect(params.model_dim, F::zero);
  for (std::size_t i = 0; i < params.num_users; ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<rep>(expect),
                               std::span<const rep>(inputs[i]));
  }
  EXPECT_EQ(serial_out, expect);
}

TEST(RecoveryBatchParity, SecAggPlusRoundIdenticalWithAndWithoutPool) {
  using F = Fp32;
  using rep = F::rep;
  lsa::protocol::Params params;
  params.num_users = 16;
  params.privacy = 1;
  params.dropout = 2;
  params.model_dim = 29;

  lsa::common::Xoshiro256ss rng(17);
  std::vector<std::vector<rep>> inputs(params.num_users);
  for (auto& v : inputs) {
    v = lsa::field::uniform_vector<F>(params.model_dim, rng);
  }
  std::vector<bool> dropped(params.num_users, false);
  dropped[3] = dropped[11] = true;

  lsa::protocol::SecAggPlus<F> serial(params, /*master_seed=*/53);
  const auto serial_out = serial.run_round(inputs, dropped);

  lsa::sys::ThreadPool pool(3);
  auto par_params = params;
  par_params.exec = lsa::sys::ExecPolicy{&pool, 64};
  lsa::protocol::SecAggPlus<F> parallel(par_params, /*master_seed=*/53);
  const auto parallel_out = parallel.run_round(inputs, dropped);

  EXPECT_EQ(serial_out, parallel_out);

  std::vector<rep> expect(params.model_dim, F::zero);
  for (std::size_t i = 0; i < params.num_users; ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<rep>(expect),
                               std::span<const rep>(inputs[i]));
  }
  EXPECT_EQ(serial_out, expect);
}

TEST(RecoveryBatchParity, MultiRoundParityWithChurn) {
  // Several rounds with different dropout patterns: the reused batch
  // scratch arena must not leak state between rounds.
  using F = Fp32;
  using rep = F::rep;
  lsa::protocol::Params params;
  params.num_users = 7;
  params.privacy = 1;
  params.dropout = 2;
  params.model_dim = 23;

  lsa::sys::ThreadPool pool(4);
  auto par_params = params;
  par_params.exec = lsa::sys::ExecPolicy{&pool, 32};
  lsa::protocol::SecAgg<F> serial(params, /*master_seed=*/71);
  lsa::protocol::SecAgg<F> parallel(par_params, /*master_seed=*/71);

  lsa::common::Xoshiro256ss rng(23);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<rep>> inputs(params.num_users);
    for (auto& v : inputs) {
      v = lsa::field::uniform_vector<F>(params.model_dim, rng);
    }
    std::vector<bool> dropped(params.num_users, false);
    if (round > 0) dropped[round % params.num_users] = true;
    if (round > 2) dropped[(round * 3) % params.num_users] = true;
    EXPECT_EQ(serial.run_round(inputs, dropped),
              parallel.run_round(inputs, dropped))
        << "round " << round;
  }
}

}  // namespace
