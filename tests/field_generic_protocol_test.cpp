// Field-genericity: the LightSecAgg protocol, codec and FastSecAgg must be
// bit-exact over every field the library ships (Fp32 — the paper's modulus,
// Fp61, Goldilocks), including dropout handling and multi-round reuse.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"
#include "protocol/fastsecagg.h"
#include "protocol/lightsecagg.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;

template <class F>
class FieldGenericProtocol : public ::testing::Test {};

using AllFields = ::testing::Types<Fp32, Fp61, Goldilocks>;
TYPED_TEST_SUITE(FieldGenericProtocol, AllFields);

template <class F>
std::vector<std::vector<typename F::rep>> random_inputs(std::size_t n,
                                                        std::size_t d,
                                                        std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<typename F::rep>> inputs(n);
  for (auto& x : inputs) x = lsa::field::uniform_vector<F>(d, rng);
  return inputs;
}

template <class F>
std::vector<typename F::rep> plain_sum(
    const std::vector<std::vector<typename F::rep>>& inputs,
    const std::vector<bool>& dropped) {
  std::vector<typename F::rep> sum(inputs[0].size(), F::zero);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<typename F::rep>(sum),
                               std::span<const typename F::rep>(inputs[i]));
  }
  return sum;
}

TYPED_TEST(FieldGenericProtocol, LightSecAggRoundTripWithDropouts) {
  using F = TypeParam;
  lsa::protocol::Params p{.num_users = 11, .privacy = 4, .dropout = 3,
                          .target_survivors = 0, .model_dim = 48};
  lsa::protocol::LightSecAgg<F> proto(p, 21);
  const auto inputs = random_inputs<F>(11, 48, 22);
  std::vector<bool> dropped(11, false);
  dropped[1] = dropped[4] = dropped[9] = true;
  EXPECT_EQ(proto.run_round(inputs, dropped), plain_sum<F>(inputs, dropped));
}

TYPED_TEST(FieldGenericProtocol, LightSecAggMultiRoundFreshMasks) {
  using F = TypeParam;
  lsa::protocol::Params p{.num_users = 7, .privacy = 2, .dropout = 2,
                          .target_survivors = 0, .model_dim = 20};
  lsa::protocol::LightSecAgg<F> proto(p, 23);
  for (int round = 0; round < 4; ++round) {
    const auto inputs = random_inputs<F>(7, 20, 30 + round);
    std::vector<bool> dropped(7, false);
    dropped[static_cast<std::size_t>(round) % 7] = true;
    EXPECT_EQ(proto.run_round(inputs, dropped),
              plain_sum<F>(inputs, dropped))
        << "round " << round;
  }
}

TYPED_TEST(FieldGenericProtocol, FastSecAggRoundTrip) {
  using F = TypeParam;
  lsa::protocol::Params p{.num_users = 9, .privacy = 3, .dropout = 2,
                          .target_survivors = 0, .model_dim = 36};
  lsa::protocol::FastSecAgg<F> proto(p, 25);
  const auto inputs = random_inputs<F>(9, 36, 26);
  std::vector<bool> dropped(9, false);
  dropped[0] = dropped[8] = true;
  EXPECT_EQ(proto.run_round(inputs, dropped), plain_sum<F>(inputs, dropped));
}

TYPED_TEST(FieldGenericProtocol, VerifiedDecodeDetectsTamperingEverywhere) {
  using F = TypeParam;
  using rep = typename F::rep;
  lsa::coding::MaskCodec<F> codec(10, 6, 2, 32);
  lsa::common::Xoshiro256ss rng(27);
  const auto mask = lsa::field::uniform_vector<F>(32, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);

  std::vector<std::size_t> owners{0, 1, 2, 3, 4, 5, 6};  // U + 1 responses
  std::vector<std::vector<rep>> agg;
  for (const auto j : owners) agg.push_back(shares[j]);
  EXPECT_EQ(codec.decode_aggregate_verified(owners, agg), mask);

  agg[3][0] = F::add(agg[3][0], F::one);
  EXPECT_THROW((void)codec.decode_aggregate_verified(owners, agg),
               lsa::CodingError);
}

}  // namespace
