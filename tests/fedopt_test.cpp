// FedProx local objective and the FedOpt server-optimizer family — the
// paper's composability claims ("can be applied to any aggregation-based FL
// approach, e.g. FedNova, FedProx, FedOpt"), plus an empirical check of
// Lemma 2's quantized-gradient moments (the basis of Theorem 2).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "field/fp.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/model.h"
#include "fl/server_opt.h"
#include "fl/sgd.h"
#include "protocol/lightsecagg.h"
#include "quant/quantizer.h"

namespace {

using namespace lsa::fl;

TEST(FedProx, ProximalTermLimitsClientDrift) {
  // Train the same user shard with and without the proximal term; the
  // proximal run must end closer to the starting (global) model.
  auto ds = SyntheticDataset::mnist_like(300, 50, 1);
  std::vector<std::size_t> idx(ds.train().size());
  std::iota(idx.begin(), idx.end(), 0);

  LogisticRegression base(784, 10, 2);
  const auto start = base.params();

  auto plain = base.clone();
  auto prox = base.clone();
  lsa::common::Xoshiro256ss rng_a(3), rng_b(3);
  (void)local_sgd(*plain, ds.train(), idx,
                  {.epochs = 3, .batch_size = 16, .lr = 0.1, .prox_mu = 0.0},
                  rng_a);
  (void)local_sgd(*prox, ds.train(), idx,
                  {.epochs = 3, .batch_size = 16, .lr = 0.1, .prox_mu = 1.0},
                  rng_b);

  auto dist = [&](const Model& m) {
    double s = 0.0;
    for (std::size_t k = 0; k < start.size(); ++k) {
      const double dlt = m.params()[k] - start[k];
      s += dlt * dlt;
    }
    return std::sqrt(s);
  };
  EXPECT_LT(dist(*prox), dist(*plain) * 0.9);
  // And it still learns (loss decreased => accuracy above chance).
  EXPECT_GT(accuracy(*prox, ds.test()), 0.3);
}

TEST(FedProx, SecureAggregationUnchanged) {
  // FedProx only alters the local objective; secure aggregation of the
  // resulting models is identical machinery. End-to-end: FedProx + secure
  // LightSecAgg trains.
  auto ds = SyntheticDataset::mnist_like(300, 100, 4);
  auto parts = ds.partition_shards(6, 2, 5);  // non-IID: where FedProx helps
  LogisticRegression model(784, 10, 6);
  lsa::protocol::Params p{.num_users = 6, .privacy = 2, .dropout = 1,
                          .target_survivors = 0, .model_dim = 7850};
  lsa::protocol::LightSecAgg<lsa::field::Fp32> proto(p, 7);
  FedAvgConfig cfg;
  cfg.rounds = 5;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.08, .prox_mu = 0.1};
  cfg.seed = 8;
  auto rec = run_fedavg(model, ds, parts, cfg,
                        secure_aggregate(proto, 1u << 16, 9));
  EXPECT_GT(rec.back().test_accuracy, 0.4);
}

TEST(ServerOpt, FedAvgServerReplaces) {
  FedAvgServer opt;
  std::vector<double> global = {1.0, 2.0};
  std::vector<double> avg = {0.5, -1.0};
  opt.apply(global, avg);
  EXPECT_EQ(global, avg);
}

TEST(ServerOpt, FedAvgMAcceleratesConsistentDirections) {
  FedAvgMServer opt(/*lr=*/1.0, /*momentum=*/0.9);
  std::vector<double> global = {10.0};
  // The aggregate keeps pointing one unit downhill; momentum accumulates.
  double prev_step = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double before = global[0];
    std::vector<double> avg = {before - 1.0};
    opt.apply(global, avg);
    const double step = before - global[0];
    EXPECT_GT(step, prev_step);  // strictly accelerating
    prev_step = step;
  }
}

TEST(ServerOpt, FedAdamTrainsEndToEnd) {
  auto ds = SyntheticDataset::mnist_like(400, 150, 10);
  auto parts = ds.partition_iid(6, 11);
  LogisticRegression model(784, 10, 12);
  FedAvgConfig cfg;
  cfg.rounds = 6;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.1};
  cfg.seed = 13;
  FedAdamServer adam(/*lr=*/0.05);
  auto rec = run_fedavg(model, ds, parts, cfg, plaintext_average(), &adam);
  EXPECT_GT(rec.back().test_accuracy, 0.5);
}

TEST(ServerOpt, DimensionMismatchThrows) {
  FedAdamServer adam;
  std::vector<double> global = {1.0, 2.0};
  std::vector<double> avg = {0.5};
  EXPECT_THROW(adam.apply(global, avg), lsa::ConfigError);
}

TEST(Lemma2, QuantizedGradientUnbiasedWithBoundedVariance) {
  // E[Q_c(g)] = g and E||Q_c(g) - g||^2 <= d / (4 c^2) (eq. 44-46).
  using Fp32 = lsa::field::Fp32;
  lsa::common::Xoshiro256ss rng(14);
  constexpr std::size_t d = 64;
  constexpr std::uint64_t c = 256;
  lsa::quant::Quantizer<Fp32> q(c);

  std::vector<double> g(d);
  for (auto& v : g) v = rng.next_gaussian();

  std::vector<double> mean(d, 0.0);
  double sq_err = 0.0;
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto quantized = q.quantize_vector(std::span<const double>(g), rng);
    for (std::size_t k = 0; k < d; ++k) {
      const double back = q.dequantize(quantized[k]);
      mean[k] += back;
      sq_err += (back - g[k]) * (back - g[k]);
    }
  }
  for (std::size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(mean[k] / kTrials, g[k], 0.01) << "coord " << k;  // unbiased
  }
  const double var = sq_err / kTrials;
  const double bound = static_cast<double>(d) / (4.0 * c * c);
  EXPECT_LE(var, bound * 1.05);  // Lemma 2's d/(4c^2), small slack
}

}  // namespace
