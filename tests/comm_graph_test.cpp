// SecAgg+ communication graph: regularity, symmetry, connectivity and the
// default-degree policy.
#include <gtest/gtest.h>

#include <queue>

#include "protocol/comm_graph.h"

namespace {

using lsa::protocol::CommGraph;

struct GraphCase {
  std::size_t n, degree;
};

class CommGraphSweep : public ::testing::TestWithParam<GraphCase> {};

TEST_P(CommGraphSweep, RegularSymmetricSelfLoopFree) {
  const auto [n, degree] = GetParam();
  CommGraph g(n, degree, /*seed=*/42);
  for (std::size_t i = 0; i < n; ++i) {
    const auto nbrs = g.neighbors(i);
    EXPECT_EQ(nbrs.size(), g.degree());
    for (auto j : nbrs) {
      EXPECT_NE(j, i);
      EXPECT_TRUE(g.adjacent(i, j));
      EXPECT_TRUE(g.adjacent(j, i));  // symmetry
      // j lists i back.
      const auto back = g.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST_P(CommGraphSweep, Connected) {
  const auto [n, degree] = GetParam();
  CommGraph g(n, degree, 42);
  std::vector<bool> seen(n, false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const auto v = frontier.front();
    frontier.pop();
    for (auto w : g.neighbors(v)) {
      if (seen[w]) continue;
      seen[w] = true;
      ++visited;
      frontier.push(w);
    }
  }
  // Circulant graphs with offset 1 present are always connected; with
  // random offsets connectivity holds for every case in this sweep.
  EXPECT_EQ(visited, n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CommGraphSweep,
    ::testing::Values(GraphCase{4, 2}, GraphCase{10, 4}, GraphCase{16, 6},
                      GraphCase{25, 8}, GraphCase{50, 12},
                      GraphCase{200, 22}));

TEST(CommGraph, CompleteWhenDegreeCoversAll) {
  CommGraph g(6, 5, 1);
  EXPECT_TRUE(g.is_complete());
  EXPECT_EQ(g.degree(), 5u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(g.neighbors(i).size(), 5u);
  }
}

TEST(CommGraph, OddDegreeRoundsUp) {
  CommGraph g(20, 5, 1);
  EXPECT_EQ(g.degree() % 2, 0u);
  EXPECT_GE(g.degree(), 5u);
}

TEST(CommGraph, DefaultDegreeGrowsLogarithmically) {
  const auto d10 = CommGraph::default_degree(10);
  const auto d100 = CommGraph::default_degree(100);
  const auto d1000 = CommGraph::default_degree(1000);
  EXPECT_LT(d10, d100);
  EXPECT_LT(d100, d1000);
  // O(log N): the increment per decade is roughly constant (~3 log2 10).
  EXPECT_NEAR(static_cast<double>(d1000 - d100),
              static_cast<double>(d100 - d10), 3.0);
  EXPECT_GE(CommGraph::default_degree(2), 4u);
}

TEST(CommGraph, RejectsDegenerateInputs) {
  EXPECT_THROW(CommGraph(1, 2, 0), lsa::Error);
  CommGraph g(5, 2, 0);
  EXPECT_THROW((void)g.neighbors(9), lsa::Error);
}

}  // namespace
