// The aggregate-decode kernels (lagrange / barycentric / ntt / batched-ntt)
// must be bit-identical on every parameter combination — serial and
// parallel, with and without plan reuse — and the codec must recover exact
// aggregates through each of them, including on the NTT-friendly Goldilocks
// field, where a full LightSecAgg round is also exercised.
#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "coding/aggregate_decode.h"
#include "coding/mask_codec.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"
#include "field/simd/dispatch.h"
#include "field/simd/simd_policy.h"
#include "protocol/lightsecagg.h"
#include "sys/thread_pool.h"

namespace {

using lsa::coding::DecodeStrategy;
using lsa::field::Fp32;
using lsa::field::Goldilocks;

constexpr DecodeStrategy kAll[] = {DecodeStrategy::kLagrange,
                                   DecodeStrategy::kBarycentric,
                                   DecodeStrategy::kNtt,
                                   DecodeStrategy::kBatchedNtt,
                                   DecodeStrategy::kAuto};

// ---------------------------------------------------------------------------
// Kernel-level equality on raw share matrices.
// ---------------------------------------------------------------------------

template <class F>
void expect_kernels_agree(std::size_t u, std::size_t num_betas,
                          std::size_t seg_len, std::uint64_t seed) {
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<rep> xs(u), betas(num_betas);
  for (std::size_t j = 0; j < u; ++j) xs[j] = F::from_u64(100 + 7 * j);
  for (std::size_t k = 0; k < num_betas; ++k) betas[k] = F::from_u64(1 + k);
  std::vector<std::vector<rep>> shares(u);
  for (auto& s : shares) s = lsa::field::uniform_vector<F>(seg_len, rng);

  const auto ref = lsa::coding::decode_eval<F>(
      DecodeStrategy::kLagrange, xs, betas, shares, seg_len);
  for (const auto strategy :
       {DecodeStrategy::kBarycentric, DecodeStrategy::kNtt,
        DecodeStrategy::kBatchedNtt, DecodeStrategy::kAuto}) {
    const auto out =
        lsa::coding::decode_eval<F>(strategy, xs, betas, shares, seg_len);
    EXPECT_EQ(out, ref) << "strategy=" << lsa::coding::to_string(strategy)
                        << " u=" << u << " betas=" << num_betas
                        << " seg=" << seg_len;
  }
}

TEST(DecodeStrategy, KernelsAgreeOnGoldilocks) {
  expect_kernels_agree<Goldilocks>(4, 2, 16, 1);
  expect_kernels_agree<Goldilocks>(7, 3, 33, 2);    // odd U: carry-through
  expect_kernels_agree<Goldilocks>(16, 8, 128, 3);
  expect_kernels_agree<Goldilocks>(33, 5, 64, 4);
  expect_kernels_agree<Goldilocks>(64, 32, 17, 5);
  expect_kernels_agree<Goldilocks>(100, 30, 8, 6);  // U > NTT threshold
}

TEST(DecodeStrategy, KernelsAgreeOnFp32) {
  // kNtt degrades to schoolbook products on Fp32 but must stay exact.
  expect_kernels_agree<Fp32>(4, 2, 16, 11);
  expect_kernels_agree<Fp32>(13, 6, 50, 12);
  expect_kernels_agree<Fp32>(32, 16, 20, 13);
}

TEST(DecodeStrategy, SingleShareSingleBeta) {
  expect_kernels_agree<Goldilocks>(1, 1, 5, 21);
}

// ---------------------------------------------------------------------------
// BatchedDecodePlan: bit-parity against the per-coordinate kernels across
// execution policies, plan reuse, and awkward tree shapes.
// ---------------------------------------------------------------------------

template <class F>
void expect_plan_parity(std::size_t u, std::size_t num_betas,
                        std::size_t seg_len, std::uint64_t seed) {
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<rep> xs(u), betas(num_betas);
  for (std::size_t j = 0; j < u; ++j) xs[j] = F::from_u64(1000 + 11 * j);
  for (std::size_t k = 0; k < num_betas; ++k) betas[k] = F::from_u64(1 + k);
  std::vector<std::vector<rep>> store(u);
  std::vector<const rep*> rows(u);
  for (std::size_t j = 0; j < u; ++j) {
    store[j] = lsa::field::uniform_vector<F>(seg_len, rng);
    rows[j] = store[j].data();
  }
  std::span<const rep* const> shares(rows);

  const auto ref = lsa::coding::decode_eval_fast<F>(
      std::span<const rep>(xs), std::span<const rep>(betas), shares,
      seg_len);
  const auto bary = lsa::coding::decode_eval_barycentric<F>(
      std::span<const rep>(xs), std::span<const rep>(betas), shares,
      seg_len);
  ASSERT_EQ(bary, ref);

  lsa::coding::BatchedDecodePlan<F> plan{std::span<const rep>(xs),
                                         std::span<const rep>(betas)};
  // Serial, first stream (pays setup).
  EXPECT_EQ(plan.run(DecodeStrategy::kBatchedNtt, shares, seg_len, {}), ref)
      << "u=" << u << " betas=" << num_betas << " seg=" << seg_len;
  // Reused plan (cached trees/tables) must stream the same bits.
  EXPECT_EQ(plan.run(DecodeStrategy::kBatchedNtt, shares, seg_len, {}), ref);
  EXPECT_EQ(plan.run(DecodeStrategy::kBarycentric, shares, seg_len, {}),
            ref);
  // Parallel policies, including chunk sizes that split the gather blocks.
  for (const std::size_t workers : {2ul, 4ul}) {
    lsa::sys::ThreadPool pool(workers);
    for (const std::size_t chunk : {0ul, 64ul, 1000ul}) {
      lsa::sys::ExecPolicy pol{&pool, chunk};
      EXPECT_EQ(plan.run(DecodeStrategy::kBatchedNtt, shares, seg_len, pol),
                ref)
          << "workers=" << workers << " chunk=" << chunk;
      EXPECT_EQ(plan.run(DecodeStrategy::kBarycentric, shares, seg_len,
                         pol),
                ref);
    }
  }
}

TEST(BatchedDecodePlan, ParityOnGoldilocks) {
  expect_plan_parity<Goldilocks>(4, 2, 16, 31);
  expect_plan_parity<Goldilocks>(7, 3, 33, 32);    // odd U: carry-through
  expect_plan_parity<Goldilocks>(16, 8, 128, 33);
  expect_plan_parity<Goldilocks>(33, 5, 64, 34);   // odd tree both sides
  expect_plan_parity<Goldilocks>(64, 32, 100, 35);
  expect_plan_parity<Goldilocks>(100, 30, 64, 36);  // above NTT threshold
  expect_plan_parity<Goldilocks>(96, 95, 40, 37);   // T = 1: tiny qlen
  expect_plan_parity<Goldilocks>(80, 1, 40, 38);    // single beta
  expect_plan_parity<Goldilocks>(1, 1, 9, 39);
}

TEST(BatchedDecodePlan, ParityOnNonNttFields) {
  // Schoolbook products everywhere — still exact, still plan-cached.
  expect_plan_parity<Fp32>(13, 6, 50, 41);
  expect_plan_parity<Fp32>(32, 16, 33, 42);
  expect_plan_parity<lsa::field::Fp61>(17, 7, 29, 43);
}

TEST(BatchedDecodePlan, AutoResolvesAndMatches) {
  using F = Goldilocks;
  using rep = F::rep;
  lsa::common::Xoshiro256ss rng(51);
  const std::size_t u = 40, nb = 16, seg = 64;
  std::vector<rep> xs(u), betas(nb);
  for (std::size_t j = 0; j < u; ++j) xs[j] = F::from_u64(500 + j);
  for (std::size_t k = 0; k < nb; ++k) betas[k] = F::from_u64(1 + k);
  std::vector<std::vector<rep>> store(u);
  std::vector<const rep*> rows(u);
  for (std::size_t j = 0; j < u; ++j) {
    store[j] = lsa::field::uniform_vector<F>(seg, rng);
    rows[j] = store[j].data();
  }
  lsa::coding::BatchedDecodePlan<F> plan{std::span<const rep>(xs),
                                         std::span<const rep>(betas)};
  const auto resolved = plan.resolve(DecodeStrategy::kAuto, seg);
  EXPECT_TRUE(resolved == DecodeStrategy::kBarycentric ||
              resolved == DecodeStrategy::kBatchedNtt);
  EXPECT_EQ(plan.resolve(DecodeStrategy::kNtt, seg), DecodeStrategy::kNtt);
  const auto got =
      plan.run(DecodeStrategy::kAuto, std::span<const rep* const>(rows),
               seg, {});
  const auto ref = lsa::coding::decode_eval_lagrange<F>(
      std::span<const rep>(xs), std::span<const rep>(betas),
      std::span<const rep* const>(rows), seg);
  EXPECT_EQ(got, ref);
}

// ---------------------------------------------------------------------------
// SIMD dispatch: the auto-dispatched vector kernels and the forced-scalar
// reference must stream bit-identical results under every strategy, field
// and execution policy (the substrate's core contract).
// ---------------------------------------------------------------------------

template <class F>
void expect_simd_scalar_parity(std::size_t u, std::size_t num_betas,
                               std::size_t seg_len, std::uint64_t seed) {
  namespace simd = lsa::field::simd;
  using rep = typename F::rep;
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<rep> xs(u), betas(num_betas);
  for (std::size_t j = 0; j < u; ++j) xs[j] = F::from_u64(2000 + 13 * j);
  for (std::size_t k = 0; k < num_betas; ++k) betas[k] = F::from_u64(1 + k);
  std::vector<std::vector<rep>> store(u);
  std::vector<const rep*> rows(u);
  for (std::size_t j = 0; j < u; ++j) {
    store[j] = lsa::field::uniform_vector<F>(seg_len, rng);
    rows[j] = store[j].data();
  }
  std::span<const rep* const> shares(rows);
  lsa::coding::BatchedDecodePlan<F> plan{std::span<const rep>(xs),
                                         std::span<const rep>(betas)};
  for (const auto strategy :
       {DecodeStrategy::kBarycentric, DecodeStrategy::kBatchedNtt}) {
    std::vector<rep> scalar_out;
    {
      simd::ScopedSimdPolicy guard(simd::SimdPolicy::kForceScalar);
      EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
      scalar_out = plan.run(strategy, shares, seg_len, {});
    }
    std::vector<rep> auto_out;
    {
      simd::ScopedSimdPolicy guard(simd::SimdPolicy::kAuto);
      auto_out = plan.run(strategy, shares, seg_len, {});
    }
    EXPECT_EQ(auto_out, scalar_out)
        << "strategy=" << lsa::coding::to_string(strategy) << " u=" << u
        << " betas=" << num_betas << " seg=" << seg_len << " isa="
        << simd::level_name(simd::detected_level());
    // A pool fan-out must inherit the caller's forced-scalar policy.
    lsa::sys::ThreadPool pool(3);
    lsa::sys::ExecPolicy pol{&pool, 64};
    {
      simd::ScopedSimdPolicy guard(simd::SimdPolicy::kForceScalar);
      EXPECT_EQ(plan.run(strategy, shares, seg_len, pol), scalar_out);
    }
    {
      simd::ScopedSimdPolicy guard(simd::SimdPolicy::kAuto);
      EXPECT_EQ(plan.run(strategy, shares, seg_len, pol), scalar_out);
    }
  }
}

TEST(SimdDispatchParity, PlanStreamsOnGoldilocks) {
  expect_simd_scalar_parity<Goldilocks>(4, 2, 16, 61);
  expect_simd_scalar_parity<Goldilocks>(7, 3, 33, 62);
  expect_simd_scalar_parity<Goldilocks>(33, 5, 61, 63);   // odd tail lanes
  expect_simd_scalar_parity<Goldilocks>(64, 32, 100, 64);
  expect_simd_scalar_parity<Goldilocks>(100, 30, 24, 65);
}

TEST(SimdDispatchParity, PlanStreamsOnOtherFields) {
  expect_simd_scalar_parity<Fp32>(13, 6, 50, 71);
  expect_simd_scalar_parity<Fp32>(32, 16, 33, 72);
  expect_simd_scalar_parity<lsa::field::Fp61>(17, 7, 29, 73);
  expect_simd_scalar_parity<lsa::field::Fp61>(48, 24, 70, 74);
}

// Protocol-level: a full round with Params::simd forced scalar equals the
// auto-dispatched round bit-for-bit across dropout patterns.
TEST(SimdDispatchParity, LightSecAggRoundMatchesForcedScalar) {
  using F = Goldilocks;
  using rep = F::rep;
  for (const std::uint64_t seed : {201ull, 202ull, 203ull}) {
    lsa::common::Xoshiro256ss rng(seed);
    lsa::protocol::Params params;
    params.num_users = 10;
    params.privacy = 2;
    params.dropout = 3;
    params.model_dim = 48;
    std::vector<std::vector<rep>> inputs(params.num_users);
    for (auto& x : inputs) {
      x = lsa::field::uniform_vector<F>(params.model_dim, rng);
    }
    std::vector<bool> dropped(params.num_users, false);
    for (std::size_t i = 0; i < params.dropout; ++i) {
      dropped[rng.next_below(params.num_users)] = true;
    }

    params.simd = lsa::field::simd::SimdPolicy::kForceScalar;
    lsa::protocol::LightSecAgg<F> scalar_proto(params, /*master_seed=*/7);
    const auto scalar_agg = scalar_proto.run_round(inputs, dropped);

    params.simd = lsa::field::simd::SimdPolicy::kAuto;
    lsa::protocol::LightSecAgg<F> auto_proto(params, /*master_seed=*/7);
    EXPECT_EQ(auto_proto.run_round(inputs, dropped), scalar_agg)
        << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Codec-level: every strategy recovers the exact aggregate mask.
// ---------------------------------------------------------------------------

template <class F>
class CodecStrategy : public ::testing::Test {};

using CodecFields = ::testing::Types<Fp32, Goldilocks>;
TYPED_TEST_SUITE(CodecStrategy, CodecFields);

TYPED_TEST(CodecStrategy, AllStrategiesRecoverAggregate) {
  using F = TypeParam;
  using rep = typename F::rep;
  const std::size_t n = 12, u = 8, t = 3, d = 100;
  lsa::coding::MaskCodec<F> codec(n, u, t, d);
  lsa::common::Xoshiro256ss rng(33);

  // Users 0..n-1 make masks; users {1,4,5} drop before recovery.
  std::vector<std::vector<rep>> masks(n);
  std::vector<std::vector<std::vector<rep>>> shares(n);  // [owner][user]
  for (std::size_t j = 0; j < n; ++j) shares[j].resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    masks[i] = lsa::field::uniform_vector<F>(d, rng);
    auto sh = codec.encode(std::span<const rep>(masks[i]), rng);
    for (std::size_t j = 0; j < n; ++j) shares[j][i] = std::move(sh[j]);
  }
  std::vector<std::size_t> survivors{0, 2, 3, 6, 7, 8, 9, 10, 11};
  std::vector<rep> expected(d, F::zero);
  for (const std::size_t i : survivors) {
    lsa::field::add_inplace<F>(std::span<rep>(expected),
                               std::span<const rep>(masks[i]));
  }

  std::vector<std::vector<rep>> agg(survivors.size());
  for (std::size_t j = 0; j < survivors.size(); ++j) {
    agg[j].assign(codec.segment_len(), F::zero);
    for (const std::size_t i : survivors) {
      lsa::field::add_inplace<F>(
          std::span<rep>(agg[j]),
          std::span<const rep>(shares[survivors[j]][i]));
    }
  }

  for (const auto strategy : kAll) {
    const auto got = codec.decode_aggregate(survivors, agg, strategy);
    EXPECT_EQ(got, expected) << lsa::coding::to_string(strategy);
  }
}

TYPED_TEST(CodecStrategy, StrategiesAgreeOnUnevenSegmentPadding) {
  using F = TypeParam;
  using rep = typename F::rep;
  // d not divisible by U-T: the padded tail must decode identically.
  const std::size_t n = 9, u = 6, t = 2, d = 37;  // seg_len = ceil(37/4) = 10
  lsa::coding::MaskCodec<F> codec(n, u, t, d);
  ASSERT_EQ(codec.segment_len(), 10u);
  lsa::common::Xoshiro256ss rng(55);
  const auto mask = lsa::field::uniform_vector<F>(d, rng);
  auto sh = codec.encode(std::span<const rep>(mask), rng);

  std::vector<std::size_t> owners{0, 1, 2, 3, 4, 5};
  std::vector<std::vector<rep>> agg;
  for (const auto j : owners) agg.push_back(sh[j]);

  const auto ref =
      codec.decode_aggregate(owners, agg, DecodeStrategy::kLagrange);
  EXPECT_EQ(ref, mask);  // single-user "aggregate" is the mask itself
  for (const auto strategy : kAll) {
    EXPECT_EQ(codec.decode_aggregate(owners, agg, strategy), ref);
  }
}

// ---------------------------------------------------------------------------
// Protocol-level: a full LightSecAgg round runs on the Goldilocks field.
// ---------------------------------------------------------------------------

// Randomized sweep: for many random (dropout pattern, parameter) draws the
// three kernels must agree bit-for-bit on the protocol's real decode inputs
// (aggregated shares of surviving users), not just on synthetic matrices.
class StrategyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyFuzz, RandomDropoutPatternsAllStrategiesAgree) {
  using F = Goldilocks;
  using rep = F::rep;
  lsa::common::Xoshiro256ss rng(GetParam());
  const std::size_t n = 8 + rng.next_below(10);        // 8..17
  const std::size_t t = 1 + rng.next_below(n / 3);     // 1..n/3
  const std::size_t u = t + 1 + rng.next_below(n - t - 1);  // t+1..n-1
  const std::size_t d = 16 + rng.next_below(100);
  lsa::coding::MaskCodec<F> codec(n, u, t, d);

  // Random masks for all users; a random surviving set of size >= u.
  std::vector<std::vector<rep>> masks(n);
  std::vector<std::vector<std::vector<rep>>> held(n);
  for (auto& h : held) h.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    masks[i] = lsa::field::uniform_vector<F>(d, rng);
    auto sh = codec.encode(std::span<const rep>(masks[i]), rng);
    for (std::size_t j = 0; j < n; ++j) held[j][i] = std::move(sh[j]);
  }
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < n; ++i) survivors.push_back(i);
  // Drop a random subset, keeping at least u.
  while (survivors.size() > u && (rng.next_u64() & 1)) {
    survivors.erase(survivors.begin() +
                    static_cast<std::ptrdiff_t>(
                        rng.next_below(survivors.size())));
  }

  std::vector<rep> expected(d, F::zero);
  for (const auto i : survivors) {
    lsa::field::add_inplace<F>(std::span<rep>(expected),
                               std::span<const rep>(masks[i]));
  }
  std::vector<std::vector<rep>> agg(survivors.size());
  for (std::size_t j = 0; j < survivors.size(); ++j) {
    agg[j].assign(codec.segment_len(), F::zero);
    for (const auto i : survivors) {
      lsa::field::add_inplace<F>(
          std::span<rep>(agg[j]),
          std::span<const rep>(held[survivors[j]][i]));
    }
  }
  for (const auto strategy : kAll) {
    ASSERT_EQ(codec.decode_aggregate(survivors, agg, strategy), expected)
        << "seed=" << GetParam() << " n=" << n << " t=" << t << " u=" << u
        << " strategy=" << lsa::coding::to_string(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyFuzz,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

TEST(DecodeStrategy, FullLightSecAggRoundOnGoldilocks) {
  using F = Goldilocks;
  using rep = F::rep;
  lsa::protocol::Params params;
  params.num_users = 10;
  params.privacy = 3;
  params.dropout = 3;
  params.model_dim = 64;
  lsa::protocol::LightSecAgg<F> proto(params, /*master_seed=*/99);

  lsa::common::Xoshiro256ss rng(77);
  std::vector<std::vector<rep>> inputs(params.num_users);
  for (auto& x : inputs) x = lsa::field::uniform_vector<F>(64, rng);
  std::vector<bool> dropped(params.num_users, false);
  dropped[2] = dropped[5] = true;

  const auto agg = proto.run_round(inputs, dropped);
  std::vector<rep> expected(64, F::zero);
  for (std::size_t i = 0; i < params.num_users; ++i) {
    if (dropped[i]) continue;
    lsa::field::add_inplace<F>(std::span<rep>(expected),
                               std::span<const rep>(inputs[i]));
  }
  EXPECT_EQ(agg, expected);
}

}  // namespace
