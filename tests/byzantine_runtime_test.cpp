// End-to-end Byzantine recovery in the distributed runtime: devices with
// valid framing but falsified aggregated shares, a server that locates and
// discards them via the error-correcting decode, and the failure modes at
// and beyond the redundancy budget.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "field/random_field.h"
#include "runtime/machines.h"

namespace {

using Fp = lsa::runtime::Network::Fp;
using rep = Fp::rep;

lsa::protocol::Params make_params(std::size_t n, std::size_t t,
                                  std::size_t u, std::size_t d) {
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d;
  return p;
}

std::vector<std::vector<rep>> random_models(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> models(n);
  for (auto& m : models) m = lsa::field::uniform_vector<Fp>(d, rng);
  return models;
}

std::vector<rep> expected_sum(const std::vector<std::vector<rep>>& models) {
  std::vector<rep> out(models[0].size(), Fp::zero);
  for (const auto& m : models) {
    lsa::field::add_inplace<Fp>(std::span<rep>(out),
                                std::span<const rep>(m));
  }
  return out;
}

// N = 12, U = 8: 12 responders give budget floor((12-8)/2) = 2 Byzantine.
constexpr std::size_t kN = 12, kT = 3, kU = 8, kD = 24;

TEST(ByzantineRuntime, HonestRoundUnaffectedByTolerantMode) {
  lsa::runtime::Network net(make_params(kN, kT, kU, kD), 7,
                            /*byzantine_tolerant=*/true);
  const auto models = random_models(kN, kD, 8);
  const auto result = net.run_round(0, models, {});
  EXPECT_EQ(result, expected_sum(models));
  EXPECT_TRUE(net.server().last_corrupted().empty());
}

TEST(ByzantineRuntime, LocatesAndDiscardsFalsifiedShares) {
  lsa::runtime::Network net(make_params(kN, kT, kU, kD), 9,
                            /*byzantine_tolerant=*/true);
  net.user(2).set_byzantine(true);
  net.user(9).set_byzantine(true);  // exactly the budget of 2

  const auto models = random_models(kN, kD, 10);
  const auto result = net.run_round(0, models, {});
  EXPECT_EQ(result, expected_sum(models));
  EXPECT_EQ(net.server().last_corrupted(),
            (std::vector<std::size_t>{2, 9}));
}

TEST(ByzantineRuntime, ByzantineResponderPlusCrashedUser) {
  // One user crashes after upload (consuming redundancy: 11 responses,
  // budget floor(3/2) = 1) and another falsifies: still exactly decodable,
  // with the crashed user's model INCLUDED (delayed-user semantics).
  lsa::runtime::Network net(make_params(kN, kT, kU, kD), 11,
                            /*byzantine_tolerant=*/true);
  net.user(5).set_byzantine(true);
  const auto models = random_models(kN, kD, 12);
  const auto result = net.run_round(0, models, {/*crash=*/3});
  EXPECT_EQ(result, expected_sum(models));
  EXPECT_EQ(net.server().last_corrupted(), std::vector<std::size_t>{5});
}

TEST(ByzantineRuntime, BeyondBudgetAbortsLoudly) {
  lsa::runtime::Network net(make_params(kN, kT, kU, kD), 13,
                            /*byzantine_tolerant=*/true);
  net.user(0).set_byzantine(true);
  net.user(4).set_byzantine(true);
  net.user(8).set_byzantine(true);  // 3 > budget of 2
  const auto models = random_models(kN, kD, 14);
  EXPECT_THROW((void)net.run_round(0, models, {}), lsa::CodingError);
}

TEST(ByzantineRuntime, WithoutToleranceAFalsifiedShareCanPoisonSilently) {
  // The motivation test: the plain server takes the first U responses; if
  // the Byzantine user is among them the aggregate is silently wrong.
  lsa::runtime::Network net(make_params(kN, kT, kU, kD), 15,
                            /*byzantine_tolerant=*/false);
  net.user(1).set_byzantine(true);  // user 1 is in the first U = 8
  const auto models = random_models(kN, kD, 16);
  const auto result = net.run_round(0, models, {});
  EXPECT_NE(result, expected_sum(models));
}

TEST(ByzantineRuntime, MultiRoundRecoveryAfterAttack) {
  // The Byzantine device is caught in round 0 and (say) expelled; rounds
  // with fresh masks keep working.
  lsa::runtime::Network net(make_params(kN, kT, kU, kD), 17,
                            /*byzantine_tolerant=*/true);
  net.user(6).set_byzantine(true);
  const auto models0 = random_models(kN, kD, 18);
  EXPECT_EQ(net.run_round(0, models0, {}), expected_sum(models0));
  EXPECT_EQ(net.server().last_corrupted(), std::vector<std::size_t>{6});

  net.user(6).set_byzantine(false);  // operator expelled / device reset
  const auto models1 = random_models(kN, kD, 19);
  EXPECT_EQ(net.run_round(1, models1, {}), expected_sum(models1));
  EXPECT_TRUE(net.server().last_corrupted().empty());
}

}  // namespace
