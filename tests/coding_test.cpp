// Lagrange interpolation, matrix reference utilities, and the MaskCodec's
// MDS / T-privacy / one-shot-linearity properties.
#include <gtest/gtest.h>

#include <numeric>

#include "coding/lagrange.h"
#include "coding/mask_codec.h"
#include "coding/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "field/fp.h"
#include "field/random_field.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;

TEST(Lagrange, RecoversPolynomialEvaluations) {
  // f(x) = 3 + 2x + 5x^2 over 4 points; interpolate at fresh points.
  auto f = [](rep x) {
    return Fp32::add(Fp32::add(3, Fp32::mul(2, x)),
                     Fp32::mul(5, Fp32::mul(x, x)));
  };
  std::vector<rep> xs = {1, 2, 3, 4};
  std::vector<rep> ys;
  for (auto x : xs) ys.push_back(f(x));
  for (rep x0 : {0u, 5u, 100u, 12345u}) {
    EXPECT_EQ(lsa::coding::interpolate_at<Fp32>(
                  std::span<const rep>(xs), std::span<const rep>(ys), x0),
              f(x0));
  }
}

TEST(Lagrange, WeightsSumToOne) {
  // Interpolating the constant-1 polynomial: weights must sum to 1.
  std::vector<rep> xs = {2, 7, 11, 20, 29};
  for (rep x0 : {0u, 1u, 99u}) {
    auto w = lsa::coding::lagrange_weights_at<Fp32>(
        std::span<const rep>(xs), x0);
    rep sum = Fp32::zero;
    for (auto v : w) sum = Fp32::add(sum, v);
    EXPECT_EQ(sum, Fp32::one);
  }
}

TEST(Lagrange, DuplicatePointsThrow) {
  std::vector<rep> xs = {1, 2, 2};
  EXPECT_THROW((void)lsa::coding::lagrange_weights_at<Fp32>(
                   std::span<const rep>(xs), 0),
               lsa::CodingError);
}

TEST(Matrix, RankAndInverse) {
  lsa::coding::Matrix<Fp32> m(3, 3);
  // Identity has rank 3.
  for (std::size_t i = 0; i < 3; ++i) m.at(i, i) = 1;
  EXPECT_TRUE(m.is_invertible());
  // Duplicate a row: rank drops.
  lsa::coding::Matrix<Fp32> s(3, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    s.at(0, j) = static_cast<rep>(j + 1);
    s.at(1, j) = static_cast<rep>(j + 1);
    s.at(2, j) = static_cast<rep>(j * j + 1);
  }
  EXPECT_EQ(s.rank(), 2u);
  EXPECT_FALSE(s.is_invertible());
}

TEST(Matrix, VandermondeIsMds) {
  std::vector<rep> alphas = {1, 2, 3, 4, 5, 6};
  auto v = lsa::coding::vandermonde<Fp32>(std::span<const rep>(alphas), 3);
  // Every 3x3 submatrix of the 3x6 Vandermonde must be invertible.
  std::vector<std::size_t> rows = {0, 1, 2};
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      for (std::size_t c = b + 1; c < 6; ++c) {
        std::vector<std::size_t> cols = {a, b, c};
        EXPECT_TRUE(v.submatrix(rows, cols).is_invertible());
      }
    }
  }
}

// ---------------------------------------------------------------- codec

struct CodecCase {
  std::size_t n, u, t, d;
};

class MaskCodecSweep : public ::testing::TestWithParam<CodecCase> {};

TEST_P(MaskCodecSweep, SingleMaskDecodesFromAnyUSubset) {
  const auto [n, u, t, d] = GetParam();
  lsa::common::Xoshiro256ss rng(n * 31 + u * 7 + t);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  auto mask = lsa::field::uniform_vector<Fp32>(d, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);
  ASSERT_EQ(shares.size(), n);

  // Decode from several U-subsets (contiguous windows + a scattered one).
  for (std::size_t start = 0; start + u <= n; start += std::max<std::size_t>(1, n / 3)) {
    std::vector<std::size_t> owners(u);
    std::iota(owners.begin(), owners.end(), start);
    std::vector<std::vector<rep>> sub;
    for (auto o : owners) sub.push_back(shares[o]);
    EXPECT_EQ(codec.decode_aggregate(owners, sub), mask);
  }
  std::vector<std::size_t> scattered;
  for (std::size_t j = 0; j < n && scattered.size() < u; j += 2) {
    scattered.push_back(j);  // evens first ...
  }
  for (std::size_t j = 1; j < n && scattered.size() < u; j += 2) {
    scattered.push_back(j);  // ... then odds: a non-contiguous U-subset
  }
  std::vector<std::vector<rep>> sub;
  for (auto o : scattered) sub.push_back(shares[o]);
  EXPECT_EQ(codec.decode_aggregate(scattered, sub), mask);
}

TEST_P(MaskCodecSweep, AggregateOfEncodedSharesDecodesToAggregateMask) {
  // The one-shot property: sum user shares first, decode once.
  const auto [n, u, t, d] = GetParam();
  lsa::common::Xoshiro256ss rng(n * 131 + u * 17 + t);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);

  std::vector<std::vector<rep>> masks(n);
  std::vector<std::vector<std::vector<rep>>> all_shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    masks[i] = lsa::field::uniform_vector<Fp32>(d, rng);
    all_shares[i] = codec.encode(std::span<const rep>(masks[i]), rng);
  }
  // Simulate a surviving set: drop the last n-u users... keep first u+?
  std::vector<std::size_t> survivors(u);
  std::iota(survivors.begin(), survivors.end(), 0);

  std::vector<rep> expected(d, Fp32::zero);
  for (auto i : survivors) {
    lsa::field::add_inplace<Fp32>(std::span<rep>(expected),
                                  std::span<const rep>(masks[i]));
  }
  std::vector<std::vector<rep>> agg_shares;
  for (auto j : survivors) {
    std::vector<rep> acc(codec.segment_len(), Fp32::zero);
    for (auto i : survivors) {
      lsa::field::add_inplace<Fp32>(std::span<rep>(acc),
                                    std::span<const rep>(all_shares[i][j]));
    }
    agg_shares.push_back(std::move(acc));
  }
  EXPECT_EQ(codec.decode_aggregate(survivors, agg_shares), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaskCodecSweep,
    ::testing::Values(CodecCase{3, 2, 1, 6}, CodecCase{5, 4, 2, 10},
                      CodecCase{8, 5, 2, 33},   // d not divisible by U-T
                      CodecCase{10, 7, 3, 100}, CodecCase{6, 6, 5, 12},
                      CodecCase{12, 8, 0, 24},  // T = 0
                      CodecCase{16, 9, 4, 1},   // d = 1 (heavy padding)
                      CodecCase{20, 14, 7, 64}));

TEST(MaskCodec, EncodingMatrixIsMdsAndTPrivate) {
  // Exhaustive structural check at small parameters:
  //  (a) any U columns of W (the U x N encoding matrix) are invertible;
  //  (b) any T columns of W's bottom-T rows are invertible (T-privacy).
  const std::size_t n = 7, u = 4, t = 2;
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, /*d=*/u - t);

  lsa::coding::Matrix<Fp32> w(u, n);
  for (std::size_t j = 0; j < n; ++j) {
    auto col = codec.encoding_column(j);
    for (std::size_t k = 0; k < u; ++k) w.at(k, j) = col[k];
  }
  // (a) MDS.
  std::vector<std::size_t> all_rows(u);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<std::size_t> cols(u);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      for (std::size_t c = b + 1; c < n; ++c)
        for (std::size_t e = c + 1; e < n; ++e) {
          cols = {a, b, c, e};
          EXPECT_TRUE(w.submatrix(all_rows, cols).is_invertible())
              << a << "," << b << "," << c << "," << e;
        }
  // (b) T-privacy.
  std::vector<std::size_t> noise_rows = {u - t, u - t + 1};
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) {
      std::vector<std::size_t> two_cols = {a, b};
      EXPECT_TRUE(w.submatrix(noise_rows, two_cols).is_invertible())
          << a << "," << b;
    }
}

TEST(MaskCodec, TSharesLookUniform) {
  // Encode a fixed mask many times with fresh noise; any T shares must be
  // (marginally) uniform — mean of each share element near q/2.
  const std::size_t n = 5, u = 4, t = 2, d = 4;
  lsa::common::Xoshiro256ss rng(55);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  std::vector<rep> mask(d, 0);  // all-zero mask: worst case for leakage
  lsa::common::RunningStat stat;
  for (int trial = 0; trial < 3000; ++trial) {
    auto shares = codec.encode(std::span<const rep>(mask), rng);
    stat.add(static_cast<double>(shares[0][0]) /
             static_cast<double>(Fp32::modulus));
    stat.add(static_cast<double>(shares[1][0]) /
             static_cast<double>(Fp32::modulus));
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.02);
  EXPECT_NEAR(stat.stddev(), 0.2887, 0.02);  // sqrt(1/12)
}

TEST(MaskCodec, RejectsBadParameters) {
  EXPECT_THROW(lsa::coding::MaskCodec<Fp32>(4, 3, 3, 8), lsa::CodingError);
  EXPECT_THROW(lsa::coding::MaskCodec<Fp32>(4, 5, 1, 8), lsa::CodingError);
  EXPECT_THROW(lsa::coding::MaskCodec<Fp32>(4, 3, 1, 0), lsa::CodingError);
}

TEST(MaskCodec, DecodeErrorsAreTyped) {
  lsa::common::Xoshiro256ss rng(66);
  lsa::coding::MaskCodec<Fp32> codec(5, 4, 1, 9);
  auto mask = lsa::field::uniform_vector<Fp32>(9, rng);
  auto shares = codec.encode(std::span<const rep>(mask), rng);

  // Too few shares.
  std::vector<std::size_t> owners = {0, 1, 2};
  std::vector<std::vector<rep>> sub = {shares[0], shares[1], shares[2]};
  EXPECT_THROW((void)codec.decode_aggregate(owners, sub),
               lsa::ProtocolError);
  // Duplicate owners.
  owners = {0, 1, 2, 2};
  sub = {shares[0], shares[1], shares[2], shares[2]};
  EXPECT_THROW((void)codec.decode_aggregate(owners, sub),
               lsa::ProtocolError);
  // Wrong share length.
  owners = {0, 1, 2, 3};
  sub = {shares[0], shares[1], shares[2], {1, 2}};
  EXPECT_THROW((void)codec.decode_aggregate(owners, sub),
               lsa::ProtocolError);
}

}  // namespace
