#!/usr/bin/env bash
# Tier-1 smoke of the standalone service pair: lsa_serverd + N lsa_client
# PROCESSES over a Unix-domain socket, 2 full rounds, one client dropping
# after its round-0 upload (delayed-not-dropped). The daemon's --verify
# replays the cohort through the serial runtime::Network reference and
# exits nonzero unless every aggregate is bit-identical — so this script
# only has to orchestrate processes and collect exit codes.
#
# Usage: service_smoke.sh <path-to-lsa_serverd> <path-to-lsa_client>
set -u

SERVERD="$1"
CLIENT="$2"

USERS=4
PRIVACY=1
DROPOUT=1
DIM=256
ROUNDS=2
SEED=42

WORK="$(mktemp -d)"
SOCK="$WORK/lsa.sock"
cleanup() {
  [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVERD" --listen "uds://$SOCK" \
  --users $USERS --privacy $PRIVACY --dropout $DROPOUT \
  --dim $DIM --rounds $ROUNDS --seed $SEED \
  --verify 1 --timeout-s 120 > "$WORK/serverd.log" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear (the daemon prints after binding).
for _ in $(seq 1 200); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
if [ ! -S "$SOCK" ]; then
  echo "FAIL: daemon never bound $SOCK" >&2
  cat "$WORK/serverd.log" >&2
  exit 1
fi

CLIENT_PIDS=()
for u in $(seq 0 $((USERS - 1))); do
  DROP_ARGS=()
  # Client 3 drops right after its round-0 upload and reconnects for
  # round 1 — the crash/revive mapping exercised end-to-end.
  [ "$u" -eq 3 ] && DROP_ARGS=(--drop-round 0)
  "$CLIENT" --connect "uds://$SOCK" --session 0 --user "$u" \
    --users $USERS --privacy $PRIVACY --dropout $DROPOUT \
    --dim $DIM --rounds $ROUNDS --seed $SEED --timeout-s 120 \
    "${DROP_ARGS[@]}" > "$WORK/client$u.log" 2>&1 &
  CLIENT_PIDS+=($!)
done

RC=0
for i in $(seq 0 $((USERS - 1))); do
  if ! wait "${CLIENT_PIDS[$i]}"; then
    echo "FAIL: client $i exited nonzero" >&2
    RC=1
  fi
done
if ! wait "$SERVER_PID"; then
  echo "FAIL: lsa_serverd exited nonzero (mismatch/timeout/copies)" >&2
  RC=1
fi
SERVER_PID=""

if [ "$RC" -ne 0 ]; then
  echo "---- serverd.log ----" >&2
  cat "$WORK/serverd.log" >&2
  for u in $(seq 0 $((USERS - 1))); do
    echo "---- client$u.log ----" >&2
    cat "$WORK/client$u.log" >&2
  done
  exit 1
fi

grep -q "verified bit-identical" "$WORK/serverd.log" || {
  echo "FAIL: daemon log missing verification line" >&2
  cat "$WORK/serverd.log" >&2
  exit 1
}
echo "service_smoke: $USERS clients x $ROUNDS rounds over UDS verified"
exit 0
