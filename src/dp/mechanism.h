// Differential privacy substrate: the Gaussian mechanism with zCDP
// accounting.
//
// Why it is in this repository: the paper positions asynchronous
// LightSecAgg as "the first work to protect the privacy of the individual
// updates [in asynchronous FL] without relying on differential privacy ...
// or trusted execution environments" (§1). Making that comparison concrete
// requires the alternative to exist: this module implements the standard
// local-DP baseline — every user clips its update to L2 norm C and adds
// N(0, (sigma*C)^2) noise per coordinate before upload — plus the zero-
// concentrated-DP (zCDP) accountant that prices the noise in (epsilon,
// delta). bench/ablation_dp_async.cpp then puts the accuracy cost of DP
// noise next to LightSecAgg's (noise-free, exact-within-quantization)
// aggregation on the same FedBuff schedule.
//
// Accounting model. One release of a C-clipped vector with per-coordinate
// noise sigma*C is (1/(2 sigma^2))-zCDP. zCDP composes additively:
// rho_total = k * rho after k releases, and converts to approximate DP via
//   epsilon(delta) = rho + 2 sqrt(rho * ln(1/delta))     (Bun–Steinke).
// The accountant tracks whatever releases it is told about; callers decide
// the adversary model (per-user worst case in the bench).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace lsa::dp {

struct GaussianDpConfig {
  double clip = 1.0;              ///< L2 sensitivity bound C
  double noise_multiplier = 1.0;  ///< sigma: noise std = sigma * C
  std::uint64_t seed = 1;
};

/// Zero-concentrated DP accountant with additive composition.
class ZcdpAccountant {
 public:
  /// Records one Gaussian release with the given noise multiplier.
  void add_release(double noise_multiplier) {
    lsa::require<lsa::ConfigError>(noise_multiplier > 0,
                                   "zcdp: noise multiplier must be > 0");
    rho_ += 1.0 / (2.0 * noise_multiplier * noise_multiplier);
    ++releases_;
  }

  [[nodiscard]] double rho() const { return rho_; }
  [[nodiscard]] std::size_t releases() const { return releases_; }

  /// Approximate-DP conversion: the standard rho-zCDP => (eps, delta) bound.
  [[nodiscard]] double epsilon(double delta) const {
    lsa::require<lsa::ConfigError>(delta > 0 && delta < 1,
                                   "zcdp: delta must be in (0, 1)");
    if (rho_ == 0.0) return 0.0;
    return rho_ + 2.0 * std::sqrt(rho_ * std::log(1.0 / delta));
  }

  /// Static helper: epsilon for k composed releases at a given multiplier.
  [[nodiscard]] static double epsilon_for(double noise_multiplier,
                                          std::size_t k, double delta) {
    ZcdpAccountant a;
    for (std::size_t i = 0; i < k; ++i) a.add_release(noise_multiplier);
    return a.epsilon(delta);
  }

 private:
  double rho_ = 0.0;
  std::size_t releases_ = 0;
};

/// Clips v to L2 norm <= clip, in place. Returns the pre-clip norm.
inline double clip_to_norm(std::vector<double>& v, double clip) {
  lsa::require<lsa::ConfigError>(clip > 0, "dp: clip must be > 0");
  double sq = 0;
  for (const double x : v) sq += x * x;
  const double norm = std::sqrt(sq);
  if (norm > clip) {
    const double scale = clip / norm;
    for (auto& x : v) x *= scale;
  }
  return norm;
}

/// The Gaussian mechanism: clip + N(0, (sigma*C)^2) per coordinate.
inline void gaussian_mechanism(std::vector<double>& v,
                               const GaussianDpConfig& cfg,
                               lsa::common::Xoshiro256ss& rng) {
  (void)clip_to_norm(v, cfg.clip);
  const double std_dev = cfg.noise_multiplier * cfg.clip;
  for (auto& x : v) x += std_dev * rng.next_gaussian();
}

/// Builds the per-update transform that plugs into
/// fl::FedBuffConfig::update_transform (the local-DP FedBuff baseline).
/// The accountant, when provided, is charged one release per update; it
/// must outlive the returned callback. Noise is derived per (user, call)
/// so repeated invocations never reuse a noise stream.
[[nodiscard]] inline std::function<void(std::vector<double>&, std::size_t)>
make_local_dp_transform(const GaussianDpConfig& cfg,
                        ZcdpAccountant* accountant = nullptr) {
  auto call_counter = std::make_shared<std::uint64_t>(0);
  return [cfg, accountant, call_counter](std::vector<double>& update,
                                         std::size_t user) {
    lsa::common::Xoshiro256ss rng(cfg.seed ^
                                  (0xd9ull + user * 0x9e3779b97f4a7c15ull) ^
                                  ((*call_counter)++ << 32));
    gaussian_mechanism(update, cfg, rng);
    if (accountant != nullptr) accountant->add_release(cfg.noise_multiplier);
  };
}

}  // namespace lsa::dp
