// Computation cost model for the timing simulation.
//
// Maps the Ledger's (CompKind, element-count) records to seconds using
// per-element costs from one of two profiles:
//
//   * calibrate(): measures the *real kernels in this repository* (ChaCha20
//     PRG expansion, field axpy, Shamir arithmetic, DH exponentiation) on
//     the current machine. Use for self-consistent C++ numbers.
//
//   * paper_stack(): per-element constants representative of the paper's
//     Python/PyTorch/AES-PRG implementation on AWS EC2 m3.medium, anchored
//     so that SecAgg's mask reconstruction at (N=200, d=1.2M, p=0.1)
//     reproduces the ~900 s of Table 4. All other numbers are then
//     *predictions* of the model — EXPERIMENTS.md compares their shape
//     against the paper.
//
// The `d_scale` mechanism: protocols are executed functionally at a reduced
// model dimension d_sim (so a 200-user round stays tractable); Ledger
// entries flagged scales_with_d are multiplied by d_real / d_sim. Entries
// not flagged (per-seed Shamir work, DH agreements) are used as-is.
#pragma once

#include <array>
#include <cstdint>

#include "net/ledger.h"

namespace lsa::net {

class CostModel {
 public:
  /// seconds per element/operation for each CompKind.
  using Profile = std::array<double, kNumCompKinds>;

  explicit CostModel(Profile per_elem_sec) : cost_(per_elem_sec) {}

  /// Measures the repository's real kernels on this machine.
  [[nodiscard]] static CostModel calibrate();

  /// Representative per-element costs of the paper's software stack
  /// (see header comment; constants documented in EXPERIMENTS.md).
  [[nodiscard]] static CostModel paper_stack();

  [[nodiscard]] double per_elem(CompKind kind) const {
    return cost_[static_cast<std::size_t>(kind)];
  }

  /// Seconds of computation entity `e` performs in `phase`, with d-scaled
  /// entries multiplied by d_scale.
  [[nodiscard]] double compute_seconds(const Ledger& ledger, Phase phase,
                                       std::size_t entity,
                                       double d_scale) const {
    double s = 0.0;
    for (std::size_t k = 0; k < kNumCompKinds; ++k) {
      const auto kind = static_cast<CompKind>(k);
      s += cost_[k] *
           (static_cast<double>(ledger.compute_elems(phase, entity, kind,
                                                     false)) +
            d_scale * static_cast<double>(
                          ledger.compute_elems(phase, entity, kind, true)));
    }
    return s;
  }

  /// Max over users of compute_seconds (the straggler's load; users compute
  /// in parallel).
  [[nodiscard]] double max_user_compute_seconds(const Ledger& ledger,
                                                Phase phase,
                                                double d_scale) const {
    double m = 0.0;
    for (std::size_t i = 0; i < ledger.num_users(); ++i) {
      m = std::max(m, compute_seconds(ledger, phase, i, d_scale));
    }
    return m;
  }

 private:
  Profile cost_;
};

}  // namespace lsa::net
