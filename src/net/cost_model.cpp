#include "net/cost_model.h"

#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/shamir.h"
#include "field/field_vec.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "quant/quantizer.h"

namespace lsa::net {

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;

double time_prg_per_elem() {
  constexpr std::size_t n = 1u << 20;
  lsa::crypto::Prg prg(lsa::crypto::seed_from_u64(1));
  lsa::common::Stopwatch sw;
  auto v = lsa::field::uniform_vector<Fp32>(n, prg);
  const double t = sw.elapsed_sec();
  // Prevent the whole expansion from being optimized out.
  volatile rep sink = v[n - 1];
  (void)sink;
  return t / static_cast<double>(n);
}

double time_axpy_per_elem() {
  constexpr std::size_t n = 1u << 20;
  lsa::common::Xoshiro256ss rng(2);
  auto a = lsa::field::uniform_vector<Fp32>(n, rng);
  auto b = lsa::field::uniform_vector<Fp32>(n, rng);
  lsa::common::Stopwatch sw;
  constexpr int reps = 8;
  for (int r = 0; r < reps; ++r) {
    lsa::field::axpy_inplace<Fp32>(std::span<rep>(a), 12345u,
                                   std::span<const rep>(b));
  }
  volatile rep sink = a[0];
  (void)sink;
  return sw.elapsed_sec() / static_cast<double>(n) / reps;
}

double time_add_per_elem() {
  constexpr std::size_t n = 1u << 20;
  lsa::common::Xoshiro256ss rng(3);
  auto a = lsa::field::uniform_vector<Fp32>(n, rng);
  auto b = lsa::field::uniform_vector<Fp32>(n, rng);
  lsa::common::Stopwatch sw;
  constexpr int reps = 8;
  for (int r = 0; r < reps; ++r) {
    lsa::field::add_inplace<Fp32>(std::span<rep>(a),
                                  std::span<const rep>(b));
  }
  volatile rep sink = a[0];
  (void)sink;
  return sw.elapsed_sec() / static_cast<double>(n) / reps;
}

double time_shamir_per_unit() {
  // Per produced share element at a paper-scale threshold.
  constexpr std::size_t t = 64, n = 128, elems = 11;
  lsa::common::Xoshiro256ss rng(4);
  std::vector<rep> secret = lsa::field::uniform_vector<Fp32>(elems, rng);
  lsa::crypto::ShamirScheme<Fp32> scheme(t, n);
  lsa::common::Stopwatch sw;
  auto shares = scheme.share(std::span<const rep>(secret), rng);
  const double tt = sw.elapsed_sec();
  volatile rep sink = shares[0].values[0];
  (void)sink;
  return tt / static_cast<double>(n * elems);
}

double time_keyagree() {
  lsa::common::Stopwatch sw;
  constexpr int reps = 200;
  std::uint64_t acc = 0;
  for (int r = 0; r < reps; ++r) {
    acc ^= lsa::crypto::group_pow(lsa::crypto::DhGroup::g,
                                  0x123456789abcull + r);
  }
  volatile std::uint64_t sink = acc;
  (void)sink;
  return sw.elapsed_sec() / reps;
}

double time_quantize_per_elem() {
  constexpr std::size_t n = 1u << 18;
  lsa::common::Xoshiro256ss rng(5);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.next_gaussian();
  lsa::quant::Quantizer<Fp32> q(1u << 16);
  lsa::common::Stopwatch sw;
  auto out = q.quantize_vector(std::span<const double>(xs), rng);
  const double t = sw.elapsed_sec();
  volatile rep sink = out[0];
  (void)sink;
  return t / static_cast<double>(n);
}

}  // namespace

CostModel CostModel::calibrate() {
  Profile p{};
  p[static_cast<std::size_t>(CompKind::kPrgExpand)] = time_prg_per_elem();
  const double axpy = time_axpy_per_elem();
  p[static_cast<std::size_t>(CompKind::kMaskEncode)] = axpy;
  p[static_cast<std::size_t>(CompKind::kMaskDecode)] = axpy;
  p[static_cast<std::size_t>(CompKind::kFieldAddVec)] = time_add_per_elem();
  const double shamir = time_shamir_per_unit();
  p[static_cast<std::size_t>(CompKind::kShamirShare)] = shamir;
  p[static_cast<std::size_t>(CompKind::kShamirRecon)] = shamir;
  p[static_cast<std::size_t>(CompKind::kKeyAgree)] = time_keyagree();
  p[static_cast<std::size_t>(CompKind::kQuantize)] = time_quantize_per_elem();
  return CostModel(p);
}

CostModel CostModel::paper_stack() {
  // Representative per-element costs of the paper's Python/PyTorch stack on
  // EC2 m3.medium. Two anchors (see EXPERIMENTS.md): SecAgg mask
  // reconstruction at (N=200, d=1.2M, p=0.1) ~ 911 s, and LightSecAgg
  // one-shot decoding at the same point ~ 41 s (paper Table 4). Everything
  // else the simulator produces is a prediction of this profile.
  // kMaskEncode is BLAS-backed in the paper's implementation (a numpy
  // matrix product), hence ~2 orders faster per element than the
  // interpreter-bound PRG expansion.
  Profile p{};
  p[static_cast<std::size_t>(CompKind::kPrgExpand)] = 1.55e-7;
  p[static_cast<std::size_t>(CompKind::kMaskEncode)] = 2.0e-9;
  p[static_cast<std::size_t>(CompKind::kMaskDecode)] = 2.3e-7;
  p[static_cast<std::size_t>(CompKind::kFieldAddVec)] = 4.5e-8;
  p[static_cast<std::size_t>(CompKind::kShamirShare)] = 1.0e-6;
  p[static_cast<std::size_t>(CompKind::kShamirRecon)] = 1.0e-6;
  p[static_cast<std::size_t>(CompKind::kKeyAgree)] = 1.0e-4;
  p[static_cast<std::size_t>(CompKind::kQuantize)] = 3.0e-8;
  return CostModel(p);
}

}  // namespace lsa::net
