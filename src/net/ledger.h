// Traffic and computation ledger.
//
// Every protocol implementation in src/protocol logs each message it sends
// (who → whom, how many field elements) and each unit of computation it
// performs (which entity, what kind, how many elements). The ledger is the
// bridge between the *functional* protocol execution (real masks, real
// decoding — what the tests verify) and the *timing* simulation (src/net/
// cost_model.h) that reproduces the paper's running-time experiments without
// an EC2 fleet.
//
// Entries carry a `scales_with_d` flag: masking a model costs d elements and
// scales linearly with model size, while Shamir-sharing a 32-byte seed does
// not. This lets benches execute the protocols at a reduced model dimension
// and extrapolate exactly the d-linear parts (see CostModel::scaled_time).
//
// Thread safety: the ledger is sharded per (phase, entity) into independent
// relaxed-atomic counters, so protocols may log from INSIDE parallel
// regions (one lane per user is the natural sharding — each lane touches
// only its own entity's slots, and even colliding entities are safe).
// Increments are exact integer adds, so totals are bit-identical to a
// serial run regardless of interleaving (tests/net_test.cpp hammers this).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace lsa::net {

/// Phases of one secure-aggregation round (paper Fig. 5 / Table 4 rows).
enum class Phase : std::uint8_t {
  kOffline = 0,   ///< mask generation, encoding, sharing / key agreement
  kUpload = 1,    ///< masked model upload
  kRecovery = 2,  ///< aggregate-mask reconstruction
};
inline constexpr std::size_t kNumPhases = 3;

/// Kinds of computation the protocols perform.
enum class CompKind : std::uint8_t {
  kPrgExpand = 0,      ///< PRG keystream expansion into field elements
  kMaskEncode = 1,     ///< MDS encode (per output element, x U slots)
  kMaskDecode = 2,     ///< MDS one-shot decode at the server
  kShamirShare = 3,    ///< Shamir share evaluation
  kShamirRecon = 4,    ///< Shamir Lagrange reconstruction
  kFieldAddVec = 5,    ///< elementwise add/sub of field vectors
  kKeyAgree = 6,       ///< one Diffie-Hellman exponentiation
  kQuantize = 7,       ///< model quantization / dequantization
};
inline constexpr std::size_t kNumCompKinds = 8;

/// Entity ids: users are 0..N-1; the server is entity N.
class Ledger {
 public:
  explicit Ledger(std::size_t num_users) : n_(num_users) {
    const std::size_t entities = num_users + 1;
    msg_elems_.reserve(kNumPhases);
    msg_count_.reserve(kNumPhases);
    recv_elems_.reserve(kNumPhases);
    comp_elems_.reserve(kNumPhases);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      // Atomics are neither copyable nor movable: size every per-phase
      // shard in place (value-initialized atomics are zero).
      msg_elems_.emplace_back(entities);
      msg_count_.emplace_back(entities);
      recv_elems_.emplace_back(entities);
      comp_elems_.emplace_back(entities);
    }
  }

  [[nodiscard]] std::size_t num_users() const { return n_; }
  [[nodiscard]] std::size_t server_id() const { return n_; }

  /// Records a message of n_elems field elements from -> to. Safe to call
  /// concurrently from any thread.
  void add_message(Phase phase, std::size_t from, std::size_t to,
                   std::uint64_t n_elems, bool scales_with_d) {
    const auto p = static_cast<std::size_t>(phase);
    check_entity(from);
    check_entity(to);
    const std::size_t s = scales_with_d ? 1 : 0;
    // relaxed: exact integer adds on sharded slots — totals are
    // interleaving-independent, and readers sample at quiescence.
    msg_elems_[p][from][s].fetch_add(n_elems, std::memory_order_relaxed);
    msg_count_[p][from].fetch_add(1, std::memory_order_relaxed);
    recv_elems_[p][to][s].fetch_add(n_elems, std::memory_order_relaxed);
  }

  /// Records n_elems units of computation of `kind` at `entity`. Safe to
  /// call concurrently from any thread.
  void add_compute(Phase phase, std::size_t entity, CompKind kind,
                   std::uint64_t n_elems, bool scales_with_d) {
    const auto p = static_cast<std::size_t>(phase);
    check_entity(entity);
    const std::size_t slot =
        static_cast<std::size_t>(kind) * 2 + (scales_with_d ? 1 : 0);
    // relaxed: exact integer add on a sharded slot (see add_message).
    comp_elems_[p][entity][slot].fetch_add(n_elems,
                                           std::memory_order_relaxed);
  }

  /// Elements sent by `entity` in `phase`; index 0 = fixed, 1 = d-scaled.
  [[nodiscard]] std::uint64_t sent_elems(Phase phase, std::size_t entity,
                                         bool scaled) const {
    // relaxed: the reader getters here and below sample at quiescence
    // (after the parallel region joins — the join publishes the adds).
    return msg_elems_[static_cast<std::size_t>(phase)][entity][scaled ? 1 : 0]
        .load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t recv_elems_of(Phase phase, std::size_t entity,
                                            bool scaled) const {
    // relaxed: quiescent sample (see sent_elems).
    return recv_elems_[static_cast<std::size_t>(phase)][entity]
                      [scaled ? 1 : 0]
        .load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t messages_sent(Phase phase,
                                            std::size_t entity) const {
    // relaxed: quiescent sample (see sent_elems).
    return msg_count_[static_cast<std::size_t>(phase)][entity].load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t compute_elems(Phase phase, std::size_t entity,
                                            CompKind kind,
                                            bool scaled) const {
    const std::size_t slot =
        static_cast<std::size_t>(kind) * 2 + (scaled ? 1 : 0);
    // relaxed: quiescent sample (see sent_elems).
    return comp_elems_[static_cast<std::size_t>(phase)][entity][slot].load(
        std::memory_order_relaxed);
  }

  /// Max over users of elements sent in a phase (the slowest user's load).
  [[nodiscard]] std::uint64_t max_user_sent_elems(Phase phase,
                                                  bool scaled) const {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      m = std::max(m, sent_elems(phase, i, scaled));
    }
    return m;
  }

  /// Total elements sent by all users in a phase.
  [[nodiscard]] std::uint64_t total_user_sent_elems(Phase phase,
                                                    bool scaled) const {
    std::uint64_t s = 0;
    for (std::size_t i = 0; i < n_; ++i) s += sent_elems(phase, i, scaled);
    return s;
  }

  void reset() {
    // relaxed: reset runs between rounds with no concurrent loggers; the
    // caller's synchronization (join/quiesce) publishes the zeroes.
    for (auto& per_phase : msg_elems_)
      for (auto& e : per_phase)
        for (auto& a : e) a.store(0, std::memory_order_relaxed);
    for (auto& per_phase : recv_elems_)
      for (auto& e : per_phase)
        for (auto& a : e) a.store(0, std::memory_order_relaxed);
    for (auto& per_phase : msg_count_)
      for (auto& e : per_phase) e.store(0, std::memory_order_relaxed);
    for (auto& per_phase : comp_elems_)
      for (auto& e : per_phase)
        for (auto& a : e) a.store(0, std::memory_order_relaxed);
  }

 private:
  void check_entity(std::size_t e) const {
    lsa::require(e <= n_, "ledger: entity id out of range");
  }

  using Pair = std::array<std::atomic<std::uint64_t>, 2>;
  using CompSlots = std::array<std::atomic<std::uint64_t>, 2 * kNumCompKinds>;

  std::size_t n_;
  // [phase][entity][fixed/scaled]
  std::vector<std::vector<Pair>> msg_elems_;
  std::vector<std::vector<std::atomic<std::uint64_t>>> msg_count_;
  std::vector<std::vector<Pair>> recv_elems_;
  // [phase][entity][kind*2 + fixed/scaled]
  std::vector<std::vector<CompSlots>> comp_elems_;
};

}  // namespace lsa::net
