// Round-time simulator: composes Ledger traffic, CostModel computation and a
// BandwidthProfile into the per-phase breakdown the paper reports (Table 4)
// and the total running time curves (Fig. 6/8/9/10).
//
// Timing rules (matching the paper's system, §6):
//   * Users run in parallel — a phase's user time is the straggler's
//     (max over users of compute + link time). The server is one machine.
//   * A user link carries send and receive; with the chunked duplex
//     optimization (§6, "tensor-aware RPC"), send and receive overlap and
//     the link time is max(send, recv) instead of send + recv.
//   * Server bandwidth is shared: total bytes through the server divide its
//     aggregate capacity.
//   * Non-overlapped total = offline + training + upload + recovery.
//     Overlapped total (Fig. 5b) = max(offline, training) + upload +
//     recovery: mask generation/exchange is independent of training, so the
//     two proceed concurrently (§6 "parallelization of offline phase").
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

#include "net/bandwidth.h"
#include "net/cost_model.h"
#include "net/ledger.h"

namespace lsa::net {

struct RoundBreakdown {
  double offline = 0.0;
  double training = 0.0;
  double upload = 0.0;
  double recovery = 0.0;

  [[nodiscard]] double total_nonoverlapped() const {
    return offline + training + upload + recovery;
  }
  /// Offline phase runs concurrently with local training (Fig. 5b).
  [[nodiscard]] double total_overlapped() const {
    return std::max(offline, training) + upload + recovery;
  }
};

class RoundSimulator {
 public:
  struct Options {
    double element_bytes = 4.0;     ///< bytes per field element (Fp32)
    bool duplex_overlap = true;     ///< §6 concurrent chunked send/recv
    double per_msg_overhead_s = 0.0;  ///< fixed per-message RPC overhead
  };

  RoundSimulator(const CostModel& cost, BandwidthProfile bw, Options opt)
      : cost_(cost), bw_(bw), opt_(opt) {}

  /// d_scale: ratio d_real / d_simulated for ledger entries that scale with
  /// the model dimension. train_seconds: the local-training workload.
  [[nodiscard]] RoundBreakdown simulate(const Ledger& ledger, double d_scale,
                                        double train_seconds) const {
    RoundBreakdown rb;
    rb.training = train_seconds;
    rb.offline = phase_seconds(ledger, Phase::kOffline, d_scale);
    rb.upload = phase_seconds(ledger, Phase::kUpload, d_scale);
    rb.recovery = phase_seconds(ledger, Phase::kRecovery, d_scale);
    return rb;
  }

  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  [[nodiscard]] double link_seconds(double send_bytes, double recv_bytes,
                                    double up_bps, double down_bps) const {
    const double s = send_bytes * 8.0 / up_bps;
    const double r = recv_bytes * 8.0 / down_bps;
    return opt_.duplex_overlap ? std::max(s, r) : s + r;
  }

  [[nodiscard]] double phase_seconds(const Ledger& ledger, Phase phase,
                                     double d_scale) const {
    const std::size_t n = ledger.num_users();
    const std::size_t server = ledger.server_id();

    // User side: compute + link, stragglers dominate.
    double user_time = 0.0;
    std::uint64_t max_msgs = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double comp = cost_.compute_seconds(ledger, phase, i, d_scale);
      const double send_bytes =
          bytes_of(ledger.sent_elems(phase, i, false),
                   ledger.sent_elems(phase, i, true), d_scale);
      const double recv_bytes =
          bytes_of(ledger.recv_elems_of(phase, i, false),
                   ledger.recv_elems_of(phase, i, true), d_scale);
      const double link = link_seconds(send_bytes, recv_bytes,
                                       bw_.user_uplink_bps,
                                       bw_.user_downlink_bps);
      user_time = std::max(user_time, comp + link);
      max_msgs = std::max(max_msgs, ledger.messages_sent(phase, i));
    }

    // Server side: compute + shared-capacity transfer.
    const double server_comp =
        cost_.compute_seconds(ledger, phase, server, d_scale);
    const double server_recv_bytes =
        bytes_of(ledger.recv_elems_of(phase, server, false),
                 ledger.recv_elems_of(phase, server, true), d_scale);
    const double server_send_bytes =
        bytes_of(ledger.sent_elems(phase, server, false),
                 ledger.sent_elems(phase, server, true), d_scale);
    const double server_link =
        (server_recv_bytes + server_send_bytes) * 8.0 / bw_.server_bps;

    const double overhead =
        static_cast<double>(max_msgs) * opt_.per_msg_overhead_s +
        (max_msgs > 0 ? bw_.rtt_s : 0.0);

    // Transfers and computation at different entities pipeline; the phase
    // ends when the slowest of (users, server transfer, server compute)
    // finishes. Server compute follows its receive within the phase.
    return std::max(user_time, server_link + server_comp) + overhead;
  }

  [[nodiscard]] double bytes_of(std::uint64_t fixed_elems,
                                std::uint64_t scaled_elems,
                                double d_scale) const {
    return (static_cast<double>(fixed_elems) +
            d_scale * static_cast<double>(scaled_elems)) *
           opt_.element_bytes;
  }

  CostModel cost_;
  BandwidthProfile bw_;
  Options opt_;
};

}  // namespace lsa::net
