// Bandwidth / latency profiles for the cross-device timing simulation.
//
// The paper evaluates three settings (§7.2, Table 3): the measured testbed
// bandwidth of 320 Mb/s, 4G/LTE-A at 98 Mb/s, and 5G at 802 Mb/s
// (Minovski et al. 2021; Scheuner & Leitner 2018).
#pragma once

namespace lsa::net {

struct BandwidthProfile {
  double user_uplink_bps = 0.0;    ///< per-user uplink (bits/second)
  double user_downlink_bps = 0.0;  ///< per-user downlink
  double server_bps = 0.0;         ///< server aggregate up/down capacity
  double rtt_s = 0.0;              ///< per-message round-trip latency

  /// The paper's measured testbed: 320 Mb/s symmetric at users; the server
  /// (an EC2 instance) has an order of magnitude more aggregate capacity.
  [[nodiscard]] static BandwidthProfile measured_320mbps() {
    return {320e6, 320e6, 4e9, 0.02};
  }

  /// 4G / LTE-A cellular (98 Mb/s).
  [[nodiscard]] static BandwidthProfile lte_4g() {
    return {98e6, 98e6, 4e9, 0.05};
  }

  /// 5G cellular (802 Mb/s).
  [[nodiscard]] static BandwidthProfile nr_5g() {
    return {802e6, 802e6, 4e9, 0.02};
  }
};

}  // namespace lsa::net
