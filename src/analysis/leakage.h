// Multi-round privacy leakage analysis (So et al. 2021a, "Securing Secure
// Aggregation", cited by the paper's convergence analysis in App. F.4).
//
// A secure-aggregation protocol hides individual models *within one round*:
// the server learns only sum_{i in U1(t)} x_i. Across rounds, however, the
// participation sets change, and if the local models are (approximately)
// static the server can linearly combine round aggregates. Writing the
// participation matrix A in {0,1}^{R x N} (one row per round), the server
// can isolate user i exactly when the indicator e_i lies in the row space
// of A — e.g. rounds {1,2,3} and {2,3} differ by exactly user 1.
//
// LeakageTracker maintains a row-reduced basis of the observed row space
// (Gaussian elimination over F_p with p = 2^61 - 1; ranks of 0/1 matrices
// match their rational ranks except on a measure-zero set of pathological
// minors divisible by p — astronomically unlikely and irrelevant at FL
// cohort sizes, noted here for exactness). It reports the leaked-subspace
// dimension and the set of individually isolated users.
//
// BatchPartition implements the mitigation from So et al. 2021a: fix a
// partition of users into batches of size >= b and only ever let *whole
// batches* participate. Every observable combination then groups batch
// members together, so no individual can be isolated for b >= 2 — a
// property tests/leakage_test.cpp checks against the tracker itself.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "field/fp.h"

namespace lsa::analysis {

class LeakageTracker {
 public:
  using F = lsa::field::Fp61;
  using rep = F::rep;

  explicit LeakageTracker(std::size_t num_users) : n_(num_users) {
    lsa::require<lsa::ConfigError>(num_users >= 1,
                                   "leakage: need at least one user");
  }

  [[nodiscard]] std::size_t num_users() const { return n_; }
  [[nodiscard]] std::size_t rounds_recorded() const { return rounds_; }

  /// Records one aggregation round: participated[i] == true iff user i's
  /// model was included in the aggregate the server saw.
  void record_round(const std::vector<bool>& participated) {
    lsa::require<lsa::ConfigError>(participated.size() == n_,
                                   "leakage: wrong participation size");
    std::vector<rep> row(n_, F::zero);
    for (std::size_t i = 0; i < n_; ++i) {
      if (participated[i]) row[i] = F::one;
    }
    ++rounds_;
    insert_row(std::move(row));
  }

  /// Dimension of the subspace of user-model combinations the server has
  /// observed. rank == 1 after any number of identical rounds; rank can
  /// never exceed min(rounds, N).
  [[nodiscard]] std::size_t rank() const { return basis_.size(); }

  /// True when the server can exactly isolate user i's model by linearly
  /// combining observed aggregates (e_i lies in the observed row space).
  [[nodiscard]] bool user_isolated(std::size_t user) const {
    lsa::require<lsa::ConfigError>(user < n_, "leakage: user out of range");
    std::vector<rep> e(n_, F::zero);
    e[user] = F::one;
    reduce(e);
    for (const rep v : e) {
      if (v != F::zero) return false;
    }
    return true;
  }

  /// All users currently isolated (the multi-round privacy breach set).
  [[nodiscard]] std::vector<std::size_t> isolated_users() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n_; ++i) {
      if (user_isolated(i)) out.push_back(i);
    }
    return out;
  }

 private:
  /// Reduces v against the basis in place (v becomes the remainder).
  void reduce(std::vector<rep>& v) const {
    for (std::size_t b = 0; b < basis_.size(); ++b) {
      const rep coef = v[pivot_[b]];
      if (coef == F::zero) continue;
      // v -= coef * basis_[b] (basis rows are normalized to pivot == 1).
      for (std::size_t k = 0; k < n_; ++k) {
        v[k] = F::sub(v[k], F::mul(coef, basis_[b][k]));
      }
    }
  }

  void insert_row(std::vector<rep> row) {
    reduce(row);
    for (std::size_t k = 0; k < n_; ++k) {
      if (row[k] == F::zero) continue;
      // Normalize pivot to 1 and store.
      const rep inv = F::inv(row[k]);
      for (std::size_t m = 0; m < n_; ++m) row[m] = F::mul(row[m], inv);
      basis_.push_back(std::move(row));
      pivot_.push_back(k);
      return;  // dependent rows vanish in reduce()
    }
  }

  std::size_t n_;
  std::size_t rounds_ = 0;
  std::vector<std::vector<rep>> basis_;  ///< row-reduced, pivot-normalized
  std::vector<std::size_t> pivot_;       ///< pivot column of each basis row
};

/// The batch-partitioning mitigation: users are grouped into fixed batches;
/// a round's participant set is snapped to the union of the batches whose
/// members are *all* willing. With batch size >= 2 no individual indicator
/// can ever enter the observed row space.
class BatchPartition {
 public:
  BatchPartition(std::size_t num_users, std::size_t batch_size)
      : n_(num_users), b_(batch_size) {
    lsa::require<lsa::ConfigError>(batch_size >= 1 && batch_size <= num_users,
                                   "batch partition: bad batch size");
  }

  [[nodiscard]] std::size_t num_batches() const {
    return (n_ + b_ - 1) / b_;
  }
  [[nodiscard]] std::size_t batch_of(std::size_t user) const {
    lsa::require<lsa::ConfigError>(user < n_, "batch: user out of range");
    return user / b_;
  }

  /// Snaps a desired participant set to batch boundaries: a batch joins
  /// only if every member is available (the conservative rule that keeps
  /// the leakage guarantee unconditionally).
  [[nodiscard]] std::vector<bool> align(
      const std::vector<bool>& available) const {
    lsa::require<lsa::ConfigError>(available.size() == n_,
                                   "batch: wrong availability size");
    std::vector<bool> out(n_, false);
    for (std::size_t g = 0; g < num_batches(); ++g) {
      const std::size_t lo = g * b_;
      const std::size_t hi = std::min(lo + b_, n_);
      bool all = true;
      for (std::size_t i = lo; i < hi; ++i) all = all && available[i];
      if (all) {
        for (std::size_t i = lo; i < hi; ++i) out[i] = true;
      }
    }
    return out;
  }

 private:
  std::size_t n_;
  std::size_t b_;
};

}  // namespace lsa::analysis
