// Event-driven LightSecAgg session over a socket hub.
//
// The in-process drivers (runtime::Network, server::AggregationServer's
// sharded sessions) know when a phase ends because they orchestrate both
// sides. A daemon serving real client processes does not: progress must be
// inferred purely from what arrives on the wire and from connection
// lifecycle events. RemoteSession is that inference layer — it owns one
// runtime::AggregationServer machine, registers hooks with the socket hub,
// and advances the round phase machine deterministically:
//
//   collect -> recover   when all N masked models for the round have
//                        arrived. Strict all-N collect is what keeps the
//                        aggregate bit-identical to runtime::Network: the
//                        reference always sums every user's masked model
//                        (its dropout model is crash-AFTER-upload, the
//                        paper's U-boundary scenario), so the wire side
//                        must seal U1 = all N too. Uploads survive the
//                        uploader's disconnect ("delayed, not dropped"),
//                        and the hub parks traffic for users who have not
//                        joined yet, so late joiners and post-upload
//                        droppers both converge; a user that dies
//                        PRE-upload and never returns is a liveness
//                        failure the daemon's --timeout-s surfaces —
//                        deterministic inference deliberately has no
//                        round timer to guess with.
//
//   recover -> done      when every user in the wait set has responded
//                        and at least U responses arrived. Fewer than U
//                        once the wait set drains is a loud ProtocolError
//                        — the round is unrecoverable, exactly like the
//                        reference's finish_round contract.
//
// The wait set is the users live at the moment the survivor bitmap went
// out MINUS anyone whose link broke during any round that already had
// traffic in flight at detection time (unsafe_until_): a dropper's
// flushed-but-unread inbound frames died with its old socket, so even a
// fast rebinder may be missing shares and must not be waited on until
// those rounds are over, when every frame addressed to it was either
// parked or delivered on the new link. Fast peers bank ahead — their
// next-round shares can be relayed into a dying socket before the death
// is detected — which is why the fence covers the highest banked round,
// not just the current one. The set only ever shrinks after the
// snapshot, so round completion never depends on reconnect timing.
//
// Connection lifecycle maps onto crash/revive (ROADMAP Decisions): a
// disconnect is a crash — the user leaves the live set and, during
// recovery, the wait set. A re-handshake is a revive — the user is live
// again for future traffic but is NOT re-added to an in-flight recovery
// wait, and a response it produces anyway (the parked survivor bitmap
// reaches it on rebind) is ignored.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "field/simd/simd_policy.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "transport/socket/socket_transport.h"

namespace lsa::server {

struct RemoteSessionConfig {
  lsa::protocol::Params params;
  std::uint64_t rounds = 1;
  bool byzantine_tolerant = false;
};

class RemoteSession {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  enum class Phase { kCollect, kRecover, kDone };

  RemoteSession(lsa::transport::socket::SocketTransport& hub,
                std::uint64_t session_id, RemoteSessionConfig cfg)
      : cfg_(std::move(cfg)) {
    cfg_.params.validate_and_resolve();
    const std::uint32_t n = cfg_.params.num_users;
    live_.assign(n, 0);
    wait_.assign(n, 0);
    responded_.assign(n, 0);
    unsafe_until_.assign(n, 0);
    lsa::transport::socket::SessionHooks hooks;
    hooks.on_frame = [this](const lsa::transport::socket::Inbound& in) {
      on_frame(in);
    };
    hooks.on_bind = [this](std::uint32_t user, bool revived) {
      on_bind(user, revived);
    };
    hooks.on_disconnect = [this](std::uint32_t user) { on_disconnect(user); };
    lsa::runtime::Transport& t =
        hub.register_session(session_id, n, std::move(hooks));
    server_ = std::make_unique<lsa::runtime::AggregationServer>(
        cfg_.params, t, cfg_.byzantine_tolerant);
  }

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] std::uint64_t current_round() const { return round_; }
  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }
  [[nodiscard]] const std::vector<std::vector<rep>>& aggregates() const {
    return aggregates_;
  }
  /// Per-completed-round bitmap of who answered the recovery request.
  [[nodiscard]] const std::vector<std::uint8_t>& responders(
      std::size_t round) const {
    return responders_.at(round);
  }
  [[nodiscard]] const lsa::runtime::AggregationServer& machine() const {
    return *server_;
  }

 private:
  void on_frame(const lsa::transport::socket::Inbound& in) {
    if (phase_ == Phase::kDone) return;
    switch (in.view.type) {
      case lsa::runtime::MsgType::kMaskedModel:
        // Bank uploads for the current collect phase and for future
        // rounds (fast clients bank ahead). A current-round model landing
        // AFTER the survivor bitmap is out is late — U1 is sealed, and
        // banking it would desynchronize the masked-model sum from the
        // recovered mask. Dropped, like every late frame.
        if (in.view.round > round_ ||
            (in.view.round == round_ && phase_ == Phase::kCollect)) {
          server_->handle_view(in.view);
          if (in.view.round > max_round_seen_) {
            max_round_seen_ = in.view.round;
          }
          if (phase_ == Phase::kCollect) maybe_advance();
        }
        break;
      case lsa::runtime::MsgType::kAggregatedShares:
        // Only the in-flight recovery consumes responses, and only from
        // users in the wait snapshot — a revived user answering a parked
        // bitmap, or any late answer to a sealed round, is ignored.
        if (phase_ == Phase::kRecover && in.view.round == round_ &&
            in.view.sender < wait_.size() && wait_[in.view.sender] != 0) {
          server_->handle_view(in.view);
          if (in.view.sender < responded_.size()) {
            responded_[in.view.sender] = 1;
          }
          maybe_advance();
        }
        break;
      default:
        throw lsa::ProtocolError("session: unexpected message type");
    }
  }

  void on_bind(std::uint32_t user, bool /*revived*/) {
    live_[user] = 1;
    // A revived user is NOT added to an in-flight wait set: it never saw
    // the survivor bitmap (wait_ only ever shrinks after the snapshot).
    maybe_advance();
  }

  void on_disconnect(std::uint32_t user) {
    live_[user] = 0;
    if (phase_ == Phase::kRecover) wait_[user] = 0;
    // The broken link may have eaten frames addressed to this user: do
    // not wait on it again until every round that had traffic in flight
    // at detection time is over, even if it rebinds fast (see the
    // header). Traffic for a round can only exist once some upload for
    // it has been banked (peers send their shares and masked model
    // back-to-back, and the hub processes a connection's frames in
    // order), so max_round_seen_ bounds the rounds whose frames the dead
    // link can have eaten. A waited-on responder crashing shrinks the
    // wait set, which can be what completes the recovery phase.
    unsafe_until_[user] = std::max(round_, max_round_seen_) + 1;
    maybe_advance();
  }

  void maybe_advance() {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(cfg_.params.simd);
    const std::uint32_t n = cfg_.params.num_users;
    const std::size_t u_target = cfg_.params.target_survivors;
    while (phase_ != Phase::kDone) {
      if (phase_ == Phase::kCollect) {
        // Strict all-N collect (see the header): the reference sum is
        // over every user's masked model, so U1 must seal at all N.
        if (server_->arrived(round_).size() < n) return;
        server_->begin_recovery(round_);
        // Snapshot: who the bitmap reaches AND who is safe to wait on —
        // a user whose link broke this round may be missing shares.
        for (std::uint32_t i = 0; i < n; ++i) {
          wait_[i] = (live_[i] != 0 && unsafe_until_[i] <= round_) ? 1 : 0;
        }
        responded_.assign(n, 0);
        phase_ = Phase::kRecover;
        continue;  // responses cannot have arrived yet, but keep the shape
      }
      // Phase::kRecover
      std::size_t pending = 0;
      std::size_t responses = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (responded_[i] != 0) {
          ++responses;
        } else if (wait_[i] != 0) {
          ++pending;
        }
      }
      if (pending > 0) return;
      lsa::require<lsa::ProtocolError>(
          responses >= u_target,
          "session: fewer than U aggregated-share responses — "
          "unrecoverable round");
      aggregates_.push_back(server_->finish_round(round_));
      responders_.push_back(responded_);
      ++round_;
      phase_ = round_ < cfg_.rounds ? Phase::kCollect : Phase::kDone;
      // Loop: banked-ahead uploads may already complete the next collect.
    }
  }

  RemoteSessionConfig cfg_;
  std::unique_ptr<lsa::runtime::AggregationServer> server_;
  Phase phase_ = Phase::kCollect;
  std::uint64_t round_ = 0;
  std::uint64_t max_round_seen_ = 0;  ///< highest round with a banked upload
  std::vector<std::uint8_t> live_;       ///< bound & connected, by user
  std::vector<std::uint8_t> wait_;       ///< recovery wait set (snapshot)
  std::vector<std::uint64_t> unsafe_until_;  ///< no waits before this round
  std::vector<std::uint8_t> responded_;  ///< current-round responders
  std::vector<std::vector<rep>> aggregates_;
  std::vector<std::vector<std::uint8_t>> responders_;
};

}  // namespace lsa::server
