// Session-sharded aggregation server over the concurrent transport.
//
// The paper's system (Fig. 4) is one server terminating N user connections
// for one cohort. A production deployment multiplexes MANY cohorts —
// independent rounds at different parameters, different tenants — through
// one process. This server owns that multiplexing:
//
//   * a Session is one cohort: N UserDevice state machines + one
//     runtime::AggregationServer wired over a transport::ConcurrentRouter
//     (per-receiver MPSC mailboxes, pooled zero-copy frames). The session
//     owns its arenas; nothing is shared between sessions but the thread
//     pool and the instrumentation counters;
//   * sessions are sharded session_id % num_shards; run_rounds() executes
//     one task per shard on the sys::ThreadPool, each shard driving its
//     sessions' rounds to completion serially while the shards proceed
//     concurrently;
//   * within a session, the round phases fan out over the session's
//     ExecPolicy: user start_round (encode + zero-copy share fan-out) runs
//     one user per lane — genuinely concurrent MPSC sends — and delivery
//     pumps one receiver mailbox per lane. ThreadPool::parallel_for is
//     nested-safe (the caller participates in block claiming), so shard
//     tasks and intra-session fan-out may share one pool.
//
// Determinism: every reduction in the state machines is ordered by user
// *index*, never by arrival order, and field arithmetic is exact — so a
// session's aggregate is bit-identical to the single-threaded
// runtime::Network run at the same seed, whatever the interleaving
// (asserted in tests/transport_test.cpp and bench/bench_transport.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "sys/exec_policy.h"
#include "sys/thread_pool.h"
#include "transport/concurrent_router.h"

namespace lsa::server {

struct SessionConfig {
  lsa::protocol::Params params;  ///< exec drives intra-session fan-out too
  std::uint64_t seed = 1;
  /// Per-receiver mailbox bound; 0 = deep enough for a full phase fan-in
  /// (2N + slack) so a single-threaded drive never blocks on backpressure.
  std::size_t queue_capacity = 0;
  bool byzantine_tolerant = false;
};

/// One cohort: the state machines, their router, and the round driver.
class Session {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  explicit Session(SessionConfig cfg)
      : cfg_(std::move(cfg)),
        router_(cfg_.params.num_users + 1,
                cfg_.queue_capacity == 0 ? 2 * cfg_.params.num_users + 16
                                         : cfg_.queue_capacity) {
    cfg_.params.validate_and_resolve();
    // A phase fan-in can enqueue up to 2N frames into one mailbox before
    // any pump runs; a smaller bound would deadlock the (possibly only)
    // driving thread on backpressure with nobody left to drain.
    lsa::require<lsa::ProtocolError>(
        cfg_.queue_capacity == 0 ||
            cfg_.queue_capacity >= 2 * cfg_.params.num_users + 2,
        "session: queue_capacity below the phase fan-in bound (2N + 2)");
    server_ = std::make_unique<lsa::runtime::AggregationServer>(
        cfg_.params, router_, cfg_.byzantine_tolerant);
    for (std::uint32_t i = 0; i < cfg_.params.num_users; ++i) {
      users_.push_back(std::make_unique<lsa::runtime::UserDevice>(
          i, cfg_.params, cfg_.seed, router_));
    }
  }

  [[nodiscard]] const lsa::protocol::Params& params() const {
    return cfg_.params;
  }
  [[nodiscard]] lsa::transport::ConcurrentRouter& router() { return router_; }
  [[nodiscard]] lsa::runtime::UserDevice& user(std::size_t i) {
    return *users_.at(i);
  }
  [[nodiscard]] lsa::runtime::AggregationServer& server() { return *server_; }

  /// One full round, same phase structure and same failure semantics as
  /// runtime::Network::run_round (crash-after-upload users are "delayed,
  /// not dropped"). Bit-identical to the Network result at equal seed.
  [[nodiscard]] std::vector<rep> run_round(
      std::uint64_t round, const std::vector<std::vector<rep>>& models,
      const std::vector<std::size_t>& crash_after_upload) {
    const std::size_t n = cfg_.params.num_users;
    lsa::require<lsa::ProtocolError>(models.size() == n,
                                     "session: wrong number of models");
    const auto& pol = cfg_.params.exec;
    // Offline + upload: one user per lane; their share fan-outs are
    // concurrent zero-copy sends into the per-receiver mailboxes.
    pol.run(n, [&](std::size_t i) {
      users_[i]->start_round(round,
                             std::span<const rep>(models[i]));
    });
    pump();
    for (const auto i : crash_after_upload) router_.crash(i);
    server_->begin_recovery(round);
    pump();  // survivor set out, aggregated shares back
    auto result = server_->finish_round(round);
    pump();  // result broadcast
    return result;
  }

  /// Delivers until every mailbox is quiet. Each receiver's mailbox drains
  /// on one lane (a Party handles its own messages serially; distinct
  /// parties are independent). Re-pumps until messages sent by handlers
  /// (e.g. survivor-set replies) are delivered too.
  void pump() {
    const auto& pol = cfg_.params.exec;
    const std::size_t endpoints = cfg_.params.num_users + 1;
    do {
      pol.run(endpoints, [&](std::size_t r) {
        lsa::transport::Inbound in;
        while (router_.try_recv(r, in)) {
          party(r).handle_view(in.view);
          in.buf.reset();  // recycle before the next pop
        }
      });
    } while (!router_.idle());
  }

 private:
  [[nodiscard]] lsa::runtime::Party& party(std::size_t r) {
    return r == cfg_.params.num_users
               ? static_cast<lsa::runtime::Party&>(*server_)
               : *users_[r];
  }

  SessionConfig cfg_;
  lsa::transport::ConcurrentRouter router_;
  std::unique_ptr<lsa::runtime::AggregationServer> server_;
  std::vector<std::unique_ptr<lsa::runtime::UserDevice>> users_;
};

/// The multi-session front end: owns sessions, shards them across the
/// pool, and runs batches of rounds concurrently.
class AggregationServer {
 public:
  using Fp = Session::Fp;
  using rep = Session::rep;

  /// pool == nullptr runs everything inline (serial reference behavior).
  /// num_shards == 0 picks the pool width (or 1 when inline).
  explicit AggregationServer(lsa::sys::ThreadPool* pool = nullptr,
                             std::size_t num_shards = 0)
      : pool_(pool),
        num_shards_(num_shards != 0 ? num_shards
                    : pool != nullptr ? pool->size()
                                      : 1) {}

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }

  /// Registers a cohort; returns its session id (shard = id % num_shards).
  std::uint64_t open_session(SessionConfig cfg) {
    const std::uint64_t id = next_id_++;
    sessions_.emplace(id, std::make_unique<Session>(std::move(cfg)));
    return id;
  }

  [[nodiscard]] Session& session(std::uint64_t id) {
    const auto it = sessions_.find(id);
    lsa::require(it != sessions_.end(), "server: unknown session id");
    return *it->second;
  }

  void close_session(std::uint64_t id) {
    lsa::require(sessions_.erase(id) == 1, "server: unknown session id");
  }

  /// One round of one session. Models are referenced, not copied — they
  /// must outlive the run_rounds() call that executes the work.
  struct RoundWork {
    std::uint64_t session_id = 0;
    std::uint64_t round = 0;
    const std::vector<std::vector<rep>>* models = nullptr;
    std::vector<std::size_t> crash_after_upload;
  };

  /// Executes a batch of rounds, sessions sharded across the pool. Results
  /// come back in work order. The first failure (e.g. an unrecoverable
  /// round) is rethrown after every shard has finished its batch.
  [[nodiscard]] std::vector<std::vector<rep>> run_rounds(
      const std::vector<RoundWork>& works) {
    std::vector<std::vector<rep>> results(works.size());
    std::vector<std::exception_ptr> errors(works.size());
    // Work items grouped by shard, preserving relative order per shard.
    std::vector<std::vector<std::size_t>> by_shard(num_shards_);
    for (std::size_t w = 0; w < works.size(); ++w) {
      by_shard[works[w].session_id % num_shards_].push_back(w);
    }
    auto run_shard = [&](std::size_t s) {
      for (const std::size_t w : by_shard[s]) {
        const RoundWork& work = works[w];
        try {
          lsa::require(work.models != nullptr, "server: null model batch");
          results[w] = session(work.session_id)
                           .run_round(work.round, *work.models,
                                      work.crash_after_upload);
          rounds_completed_.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      }
    };
    if (pool_ == nullptr || num_shards_ <= 1) {
      for (std::size_t s = 0; s < num_shards_; ++s) run_shard(s);
    } else {
      // One block per shard; the pool's nested-safe parallel_for lets the
      // sessions' own ExecPolicy fan out on the same pool underneath.
      pool_->parallel_for(num_shards_, run_shard, /*grain=*/1);
    }
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return results;
  }

 private:
  lsa::sys::ThreadPool* pool_;
  std::size_t num_shards_;
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> rounds_completed_{0};
};

}  // namespace lsa::server
