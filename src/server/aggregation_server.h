// Session-sharded aggregation server over the concurrent transport — the
// unified runtime for heterogeneous cohorts.
//
// The paper's system (Fig. 4) is one server terminating N user connections
// for one cohort. A production deployment multiplexes MANY cohorts —
// independent rounds at different parameters, different tenants, and, in
// LightSecAgg's case, different *protocol modes*: the one-shot mask
// reconstruction commutes with weighted sums, so the same process can also
// serve asynchronous, FedBuff-style buffered cohorts (paper §4.2, App. F)
// that SecAgg-style pairwise masking cannot (Remark 1). This server owns
// that multiplexing:
//
//   * a session is one cohort behind the `SessionBase` interface (id, shard
//     affinity, step()/done(), stats snapshot). Two concrete kinds exist:
//       - `Session` (sync): N UserDevice machines + one
//         runtime::AggregationServer; step() = one whole round;
//       - `AsyncSession`: N AsyncUserDevice machines + one
//         runtime::AsyncAggregationServer; step() = one *buffer cycle*
//         (arrivals at staleness → K-buffered manifest → weighted-share
//         fan-in → one-shot decode of the weighted aggregate mask).
//     Each session owns its arenas and its transport::ConcurrentRouter
//     (per-receiver MPSC mailboxes, pooled zero-copy frames); nothing is
//     shared between sessions but the thread pool and the instrumentation
//     counters;
//   * sessions are sharded session_id % num_shards; run_rounds()/drive()
//     executes one task per shard on the sys::ThreadPool, each shard
//     pumping its sessions' queued steps to completion serially while the
//     shards proceed concurrently — sync and async cohorts interleave in
//     one process, one drive;
//   * with protocol::Params::pipeline == 2 a sync session's round splits
//     into an OFFLINE stage (mask generation + flat-arena encode +
//     encoded-share distribution — model-independent, paper §6 Fig. 5)
//     and an ONLINE stage (masked upload fan-in, recovery, one-shot
//     decode), and the shard driver pumps stage-granular waves: round r's
//     online stage runs concurrently with round r+1's offline stage (and
//     with other sessions' stages), so steady-state round latency drops
//     from T_offline + T_online toward max(T_offline, T_online). Share
//     stores are double-buffered by round parity (runtime::BankRing);
//     each wave's slot re-keying happens serially before the stages
//     launch, which is what keeps the concurrent stages race-free (README
//     "Pipelined rounds"). Depth 1 keeps today's whole-round steps and is
//     byte-for-byte the tested reference path;
//   * within a session, the phases fan out over the session's ExecPolicy:
//     user start_round / arrival submit_update (encode + zero-copy share
//     fan-out) runs one user per lane — genuinely concurrent MPSC sends —
//     and delivery pumps one receiver mailbox per lane.
//     ThreadPool::parallel_for is nested-safe (the caller participates in
//     block claiming), so shard tasks and intra-session fan-out may share
//     one pool.
//
// Determinism: every reduction in the state machines is ordered by user
// *index* (never by arrival order), async decode survivor sets are the
// sorted responder ids, and field arithmetic is exact — so a session's
// aggregate is bit-identical to its single-threaded reference
// (runtime::Network / runtime::AsyncNetwork) at the same seed, whatever
// the interleaving (asserted in tests/transport_test.cpp,
// tests/async_session_test.cpp and the benches). Async arrival patterns
// come from the seeded runtime::ArrivalScheduler so both sides consume
// identical cycles.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "protocol/params.h"
#include "quant/staleness.h"
#include "runtime/arrival_scheduler.h"
#include "runtime/async_machines.h"
#include "runtime/machines.h"
#include "sys/exec_policy.h"
#include "sys/thread_pool.h"
#include "transport/concurrent_router.h"

namespace lsa::server {

enum class SessionKind { kSync, kAsync };

[[nodiscard]] constexpr const char* to_string(SessionKind k) {
  return k == SessionKind::kSync ? "sync" : "async";
}

/// Point-in-time snapshot of one session's progress and decode telemetry.
struct SessionStats {
  std::uint64_t id = 0;
  SessionKind kind = SessionKind::kSync;
  /// Rounds (sync) or buffer cycles (async) completed by this session.
  std::uint64_t steps = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  /// One-shot decode telemetry accumulated over the session's steps: how
  /// often the survivor-set plan cache hit exactly, hit a small-churn
  /// (≤ MaskCodec::kMaxPatchChurn) neighbor
  /// (incremental patch), or built from scratch — plus the LRU eviction
  /// count and the setup-vs-stream split.
  std::uint64_t decode_plan_builds = 0;
  std::uint64_t decode_plan_reuses = 0;
  std::uint64_t decode_plan_patches = 0;
  std::uint64_t decode_evictions = 0;
  double decode_setup_s = 0.0;
  double decode_stream_s = 0.0;
  lsa::coding::DecodeStrategy last_decode_used =
      lsa::coding::DecodeStrategy::kAuto;
  /// Offline encode + share-distribution passes summed over the cohort's
  /// devices. In persistent-cohort mode a stable cohort shows exactly N
  /// (one per device per epoch); in per-round mode it grows every round.
  std::uint64_t offline_encodes = 0;
  /// Pipeline telemetry (Params::pipeline == 2; depth-1 sessions report
  /// 1/0/0). Max rounds simultaneously in flight (2 in steady state),
  /// offline-stage wall time hidden behind a concurrent online stage, and
  /// waves where an online stage ran with no offline work to overlap
  /// (pipeline bubbles: the prologue-less tail and drained queues).
  std::uint64_t rounds_in_flight = 0;
  double offline_hidden_s = 0.0;
  /// Total offline-stage wall time (pipelined stages only; the depth-1
  /// round path does not time its offline phase separately). The hidden/
  /// total quotient is the overlap ratio bench_pipeline gates on.
  double offline_stage_s = 0.0;
  std::uint64_t pipeline_stalls = 0;
};

/// One cohort as seen by the shard driver: queued steps (whole rounds for
/// sync sessions, buffer cycles for async ones) executed in FIFO order.
class SessionBase {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  virtual ~SessionBase() = default;

  /// Server-assigned id; shard affinity is id % num_shards.
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::size_t shard_of(std::size_t num_shards) const {
    return static_cast<std::size_t>(id_ % num_shards);
  }

  [[nodiscard]] virtual SessionKind kind() const = 0;
  /// Queued steps not yet executed.
  [[nodiscard]] virtual std::size_t pending() const = 0;
  [[nodiscard]] bool done() const { return pending() == 0; }
  /// Executes the oldest queued step. Throws on an unrecoverable step
  /// (e.g. fewer than U responders); the session's remaining queue is
  /// abandoned by the driver in that case.
  virtual void step() = 0;
  virtual void clear_pending() = 0;
  [[nodiscard]] virtual SessionStats stats() const = 0;

 protected:
  /// THE queue-capacity rule, asserted here for every session type: each
  /// type derives the largest single-phase fan-in any one mailbox can see
  /// (its `fanin_bound`), and a configured bound below that would wedge
  /// the (possibly only) driving thread on backpressure with nobody left
  /// to drain. 0 picks bound + headroom — the SAME headroom the transport's
  /// own fallback (ConcurrentRouter::default_capacity) adds, so a bare
  /// router and a server-owned one resolve identically for a sync cohort
  /// (static_assert below; every server-owned router is constructed
  /// through this function).
  [[nodiscard]] static std::size_t resolve_queue_capacity(
      std::size_t configured, std::size_t fanin_bound) {
    if (configured == 0) {
      return fanin_bound + lsa::transport::ConcurrentRouter::kCapacityHeadroom;
    }
    lsa::require<lsa::ProtocolError>(
        configured >= fanin_bound,
        "session: queue_capacity below this session type's phase fan-in "
        "bound");
    return configured;
  }

  /// Delivers until every mailbox is quiet. Each receiver's mailbox drains
  /// on one lane (a Party handles its own messages serially; distinct
  /// parties are independent). Re-pumps until messages sent by handlers
  /// (survivor-set / manifest replies) are delivered too.
  template <class PartyFn>
  static void pump_router(lsa::transport::ConcurrentRouter& router,
                          const lsa::sys::ExecPolicy& pol,
                          std::size_t endpoints, PartyFn&& party) {
    do {
      pol.run(endpoints, [&](std::size_t r) {
        lsa::transport::Inbound in;
        while (router.try_recv(r, in)) {
          party(r).handle_view(in.view);
          in.buf.reset();  // recycle before the next pop
        }
      });
    } while (!router.idle());
  }

  /// Folds one decode's stats into the session telemetry.
  void note_step(const lsa::coding::MaskCodec<Fp>::DecodeStats& st) {
    ++steps_;
    if (st.plan_patched) {
      ++plan_patches_;
    } else if (st.plan_reused) {
      ++plan_reuses_;
    } else {
      ++plan_builds_;
    }
    evictions_ = st.evictions;  // cumulative over the codec's lifetime
    setup_s_ += st.setup_s;
    stream_s_ += st.stream_s;
    last_used_ = st.used;
  }

  void fill_common_stats(SessionStats& out,
                         const lsa::transport::ConcurrentRouter& r) const {
    out.id = id_;
    out.kind = kind();
    out.steps = steps_;
    out.frames_sent = r.frames_sent();
    out.frames_delivered = r.frames_delivered();
    out.frames_dropped = r.frames_dropped();
    out.decode_plan_builds = plan_builds_;
    out.decode_plan_reuses = plan_reuses_;
    out.decode_plan_patches = plan_patches_;
    out.decode_evictions = evictions_;
    out.decode_setup_s = setup_s_;
    out.decode_stream_s = stream_s_;
    out.last_decode_used = last_used_;
  }

 private:
  friend class AggregationServer;
  std::uint64_t id_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t plan_builds_ = 0;
  std::uint64_t plan_reuses_ = 0;
  std::uint64_t plan_patches_ = 0;
  std::uint64_t evictions_ = 0;
  double setup_s_ = 0.0;
  double stream_s_ = 0.0;
  lsa::coding::DecodeStrategy last_used_ = lsa::coding::DecodeStrategy::kAuto;
};

struct SessionConfig {
  lsa::protocol::Params params;  ///< exec drives intra-session fan-out too
  std::uint64_t seed = 1;
  /// Per-receiver mailbox bound; 0 = the session type's fan-in bound plus
  /// headroom, so a single-threaded drive never blocks on backpressure.
  std::size_t queue_capacity = 0;
  /// Mailbox engine for the session's router (lock-free ring by default;
  /// the mutex deque is the tested reference — results are bit-identical).
  lsa::transport::MailboxStrategy mailbox =
      lsa::transport::default_mailbox_strategy();
  bool byzantine_tolerant = false;
  /// Bench/test instrumentation: simulated wide-area latency injected once
  /// per stage execution (a sleep at stage start), modeling the share-
  /// distribution and fan-in round-trips a single-host harness never
  /// exhibits. Depth-1 rounds pay offline + online sequentially; depth-2
  /// overlaps them — the mechanism bench_pipeline measures. 0 = off (the
  /// default; tests and production paths never sleep).
  double offline_stage_delay_s = 0.0;
  double online_stage_delay_s = 0.0;
};

/// One synchronous cohort: the state machines, their router, and the
/// round driver. step() executes one queued whole round.
class Session final : public SessionBase {
 public:
  using Fp = SessionBase::Fp;
  using rep = SessionBase::rep;

  /// Largest single-phase fan-in any one mailbox sees in a sync round: up
  /// to 2N frames can land in one mailbox before any pump runs (N-1 offline
  /// shares + survivor traffic on a user box, N masked models + N
  /// aggregated shares on the server box across an unpumped phase pair).
  [[nodiscard]] static constexpr std::size_t fanin_bound(std::size_t n) {
    return 2 * n + 2;
  }

  explicit Session(SessionConfig cfg)
      : cfg_(std::move(cfg)),
        router_(cfg_.params.num_users + 1,
                resolve_queue_capacity(cfg_.queue_capacity,
                                       fanin_bound(cfg_.params.num_users)),
                cfg_.mailbox) {
    cfg_.params.validate_and_resolve();
    server_ = std::make_unique<lsa::runtime::AggregationServer>(
        cfg_.params, router_, cfg_.byzantine_tolerant);
    for (std::uint32_t i = 0; i < cfg_.params.num_users; ++i) {
      users_.push_back(std::make_unique<lsa::runtime::UserDevice>(
          i, cfg_.params, cfg_.seed, router_));
    }
  }

  [[nodiscard]] const lsa::protocol::Params& params() const {
    return cfg_.params;
  }
  [[nodiscard]] lsa::transport::ConcurrentRouter& router() { return router_; }
  [[nodiscard]] lsa::runtime::UserDevice& user(std::size_t i) {
    return *users_.at(i);
  }
  [[nodiscard]] lsa::runtime::AggregationServer& server() { return *server_; }

  /// Persistent-cohort membership change: every device advances its epoch
  /// and re-runs offline setup on its next round. No-op per device when
  /// the session is not in persistent mode (the flag gates the fast path).
  void advance_epoch() {
    for (auto& u : users_) u->advance_epoch();
  }

  /// One full round, same phase structure and same failure semantics as
  /// runtime::Network::run_round (crash-after-upload users are "delayed,
  /// not dropped"). Bit-identical to the Network result at equal seed.
  /// This is the depth-1 reference path; the pipelined driver runs the
  /// same protocol as two stages (run_offline_stage / run_online_stage).
  [[nodiscard]] std::vector<rep> run_round(
      std::uint64_t round, const std::vector<std::vector<rep>>& models,
      const std::vector<std::size_t>& crash_after_upload) {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(cfg_.params.simd);
    const std::size_t n = cfg_.params.num_users;
    lsa::require<lsa::ProtocolError>(models.size() == n,
                                     "session: wrong number of models");
    const auto& pol = cfg_.params.exec;
    max_in_flight_ = std::max<std::uint64_t>(max_in_flight_, 1);
    // Offline + upload: one user per lane; their share fan-outs are
    // concurrent zero-copy sends into the per-receiver mailboxes.
    stage_delay(cfg_.offline_stage_delay_s);
    pol.run(n, [&](std::size_t i) {
      users_[i]->start_round(round,
                             std::span<const rep>(models[i]));
    });
    stage_delay(cfg_.online_stage_delay_s);
    return online_tail(round, crash_after_upload);
  }

  void pump() {
    pump_router(router_, cfg_.params.exec, cfg_.params.num_users + 1,
                [&](std::size_t r) -> lsa::runtime::Party& {
                  return party(r);
                });
  }

  // --------------------------------------- pipelined stage interface
  //
  // Driver protocol (AggregationServer::drive, Params::pipeline == 2),
  // per wave and per session, with everything outside the two run_*_stage
  // calls executed serially by the shard task:
  //
  //   1. serial:     if has_offline_work(): prepare_offline()
  //   2. concurrent: run_online_stage() for the queue front (if staged)
  //                  ∥ run_offline_stage() for the prepared round
  //   3. serial:     retire_online(); note_wave(online_ran, offline_ran)
  //
  // The serial prepare step re-keys every device's parity share-store
  // slot (runtime::BankRing) for the prepared round BEFORE concurrency
  // starts; inside the wave all parties only read slot keys and write
  // disjoint rows, so the stage pair is data-race-free. The queue itself
  // is only mutated in the serial steps — run_online_stage works on the
  // front *in place* and run_offline_stage reads nothing but its
  // pre-latched round.

  /// Depth 2 requested: the driver pumps this session stage-granularly.
  [[nodiscard]] bool pipelined() const { return cfg_.params.pipeline >= 2; }

  /// A queued round whose offline stage hasn't launched, with a free
  /// parity slot to stage it in (at most two rounds in flight).
  [[nodiscard]] bool has_offline_work() const {
    return staged_ < queue_.size() &&
           staged_ < lsa::runtime::BankRing<Fp>::kDepth;
  }
  /// The queue front's offline stage has run; its online stage may go.
  [[nodiscard]] bool has_online_work() const { return staged_ > 0; }

  /// Serial pre-wave step: latches the next unstaged round and keys every
  /// device's share-store slot for it. After this, concurrently pumped
  /// deliveries of that round's shares and the offline stage's own-row
  /// banking are rekey-free lookups.
  void prepare_offline() {
    pending_offline_round_ = queue_.at(staged_).round;
    for (auto& u : users_) u->prepare_round(pending_offline_round_);
    ++staged_;
    max_in_flight_ = std::max<std::uint64_t>(max_in_flight_, staged_);
  }

  /// OfflineStage of the round latched by prepare_offline(): mask
  /// generation + flat-arena encode + encoded-share distribution. Sends
  /// only — never pumps — so it overlaps a concurrent online stage's
  /// mailbox drains.
  void run_offline_stage() {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(cfg_.params.simd);
    lsa::common::Stopwatch sw;
    stage_delay(cfg_.offline_stage_delay_s);
    const std::uint64_t round = pending_offline_round_;
    cfg_.params.exec.run(cfg_.params.num_users, [&](std::size_t i) {
      users_[i]->start_round_offline(round);
    });
    last_offline_s_ = sw.elapsed_sec();
    offline_stage_s_ += last_offline_s_;
  }

  /// OnlineStage of the queue front: masked-upload fan-out, fan-in,
  /// recovery, one-shot decode, result broadcast. Owns every router pump
  /// in the wave; a crashed-in-this-round user's concurrent next-round
  /// offline sends are dropped at the source once the crash lands, and any
  /// that slipped through are discarded by the round r+1 membership
  /// snapshot (its upload can no longer arrive), so aggregates stay
  /// bit-identical to the depth-1 order either way.
  void run_online_stage() {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(cfg_.params.simd);
    lsa::common::Stopwatch sw;
    QueuedRound& work = queue_.front();
    const std::size_t n = cfg_.params.num_users;
    lsa::require<lsa::ProtocolError>(work.models->size() == n,
                                     "session: wrong number of models");
    stage_delay(cfg_.online_stage_delay_s);
    cfg_.params.exec.run(n, [&](std::size_t i) {
      users_[i]->upload_masked(work.round,
                               std::span<const rep>((*work.models)[i]));
    });
    auto result = online_tail(work.round, work.crash_after_upload);
    if (work.result != nullptr) *work.result = std::move(result);
    last_online_s_ = sw.elapsed_sec();
  }

  /// Serial post-wave step: pops the round run_online_stage completed.
  void retire_online() {
    queue_.pop_front();
    --staged_;
  }

  /// Serial post-wave telemetry: overlapped waves hide min(T_off, T_on)
  /// of offline wall time; online-only waves are pipeline bubbles.
  void note_wave(bool online_ran, bool offline_ran) {
    if (online_ran && offline_ran) {
      offline_hidden_s_ += std::min(last_offline_s_, last_online_s_);
    } else if (online_ran) {
      ++pipeline_stalls_;
    }
  }

  // ------------------------------------------------- SessionBase interface

  /// One queued round. Models are referenced, not copied — they must
  /// outlive the drive that executes the step. `result` (optional) receives
  /// the aggregate.
  struct QueuedRound {
    std::uint64_t round = 0;
    const std::vector<std::vector<rep>>* models = nullptr;
    std::vector<std::size_t> crash_after_upload;
    std::vector<rep>* result = nullptr;
  };

  void enqueue_round(QueuedRound work) {
    lsa::require<lsa::ProtocolError>(work.models != nullptr,
                                     "session: null model batch");
    queue_.push_back(std::move(work));
  }

  [[nodiscard]] SessionKind kind() const override {
    return SessionKind::kSync;
  }
  [[nodiscard]] std::size_t pending() const override { return queue_.size(); }
  void clear_pending() override {
    queue_.clear();
    staged_ = 0;  // staged offline work dies with its abandoned rounds
  }

  void step() override {
    QueuedRound work = std::move(queue_.front());
    queue_.pop_front();
    auto result =
        run_round(work.round, *work.models, work.crash_after_upload);
    if (work.result != nullptr) *work.result = std::move(result);
  }

  [[nodiscard]] SessionStats stats() const override {
    SessionStats out;
    fill_common_stats(out, router_);
    for (const auto& u : users_) out.offline_encodes += u->offline_encodes();
    out.rounds_in_flight = max_in_flight_;
    out.offline_hidden_s = offline_hidden_s_;
    out.offline_stage_s = offline_stage_s_;
    out.pipeline_stalls = pipeline_stalls_;
    return out;
  }

 private:
  [[nodiscard]] lsa::runtime::Party& party(std::size_t r) {
    return r == cfg_.params.num_users
               ? static_cast<lsa::runtime::Party&>(*server_)
               : *users_[r];
  }

  /// Fan-in + recovery + decode + broadcast: the phase tail shared by the
  /// depth-1 reference round and the pipelined online stage. Crash lands
  /// after the first pump — "crash after upload"; frames the crashed user
  /// already enqueued still deliver (delayed, not dropped).
  [[nodiscard]] std::vector<rep> online_tail(
      std::uint64_t round, const std::vector<std::size_t>& crash_after_upload) {
    pump();
    for (const auto i : crash_after_upload) router_.crash(i);
    server_->begin_recovery(round);
    pump();  // survivor set out, aggregated shares back
    auto result = server_->finish_round(round);
    pump();  // result broadcast
    note_step(server_->codec().last_decode_stats());
    return result;
  }

  static void stage_delay(double seconds) {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  SessionConfig cfg_;
  lsa::transport::ConcurrentRouter router_;
  std::unique_ptr<lsa::runtime::AggregationServer> server_;
  std::vector<std::unique_ptr<lsa::runtime::UserDevice>> users_;
  std::deque<QueuedRound> queue_;
  /// Queue-front rounds whose offline stage ran (0..2); mutated only in
  /// the driver's serial pre/post-wave steps.
  std::size_t staged_ = 0;
  std::uint64_t pending_offline_round_ = 0;
  double last_offline_s_ = 0.0;   ///< written by the offline stage task
  double last_online_s_ = 0.0;    ///< written by the online stage task
  double offline_stage_s_ = 0.0;  ///< total offline-stage wall time
  double offline_hidden_s_ = 0.0;
  std::uint64_t pipeline_stalls_ = 0;
  std::uint64_t max_in_flight_ = 0;
};

// THE capacity agreement, checked in one place: the transport's fallback
// (ConcurrentRouter::default_capacity, used when a bare router is built
// with queue_capacity = 0) must equal what a sync session derives for the
// same endpoint count — fanin_bound(N) + kCapacityHeadroom for N users +
// 1 server. The old fallback (max(64, 4 * num_parties)) silently disagreed
// with the session rule; any future drift fails this assert at compile
// time. (Async sessions derive a DIFFERENT bound, max(N, arrivals) + 2 —
// they always construct their router through resolve_queue_capacity, never
// through the fallback.)
static_assert(
    lsa::transport::ConcurrentRouter::default_capacity(5 + 1) ==
            Session::fanin_bound(5) +
                lsa::transport::ConcurrentRouter::kCapacityHeadroom &&
        lsa::transport::ConcurrentRouter::default_capacity(100 + 1) ==
            Session::fanin_bound(100) +
                lsa::transport::ConcurrentRouter::kCapacityHeadroom &&
        lsa::transport::ConcurrentRouter::default_capacity(1000 + 1) ==
            Session::fanin_bound(1000) +
                lsa::transport::ConcurrentRouter::kCapacityHeadroom,
    "transport default queue capacity diverged from the sync session's "
    "resolve_queue_capacity rule");

struct AsyncSessionConfig {
  lsa::protocol::Params params;  ///< exec drives intra-session fan-out too
  std::uint64_t seed = 1;
  /// Per-receiver mailbox bound; 0 = the async fan-in bound plus headroom.
  std::size_t queue_capacity = 0;
  /// Mailbox engine for the session's router (see SessionConfig::mailbox).
  lsa::transport::MailboxStrategy mailbox =
      lsa::transport::default_mailbox_strategy();
  std::size_t buffer_k = 1;  ///< K: updates buffered before aggregating
  lsa::quant::StalenessPolicy staleness{};
  std::uint64_t c_g = 1u << 6;  ///< staleness-weight quantization (eq. 34)
  /// Cap on arrivals a single queued cycle may carry (drives the mailbox
  /// fan-in bound); 0 = buffer_k.
  std::size_t max_arrivals_per_cycle = 0;
  /// Seeded deterministic arrival pattern for enqueue_scheduled_cycles();
  /// schedule.arrivals_per_cycle == 0 resolves to buffer_k.
  lsa::runtime::ArrivalSchedule schedule{};
};

/// One asynchronous buffered cohort: AsyncUserDevice machines and the
/// AsyncAggregationServer over the same zero-copy transport. step()
/// executes one queued buffer cycle — timestamped share frames are built
/// once straight from the encode arenas (zero send-side payload copies),
/// and the one-shot weighted-mask recovery runs through the codec's
/// survivor-set-keyed decode-plan cache, so repeated cycles with the same
/// responder set pay plan setup once.
class AsyncSession final : public SessionBase {
 public:
  using Fp = SessionBase::Fp;
  using rep = SessionBase::rep;
  using Arrival = lsa::runtime::Arrival;
  using Output = lsa::runtime::AsyncAggregationServer::Output;

  /// Largest single-phase fan-in any one async mailbox sees: the server
  /// box takes up to max(N, A) frames between pumps (A masked uploads in
  /// the submission phase, up to N weighted-share responses after the
  /// manifest broadcast); a user box takes at most A timestamped shares.
  [[nodiscard]] static constexpr std::size_t fanin_bound(
      std::size_t n, std::size_t max_arrivals) {
    return std::max(n, max_arrivals) + 2;
  }

  explicit AsyncSession(AsyncSessionConfig cfg)
      : cfg_(std::move(cfg)),
        max_arrivals_(cfg_.max_arrivals_per_cycle != 0
                          ? cfg_.max_arrivals_per_cycle
                          : cfg_.buffer_k),
        router_(cfg_.params.num_users + 1,
                resolve_queue_capacity(
                    cfg_.queue_capacity,
                    fanin_bound(cfg_.params.num_users, max_arrivals_)),
                cfg_.mailbox) {
    cfg_.params.validate_and_resolve();
    server_ = std::make_unique<lsa::runtime::AsyncAggregationServer>(
        cfg_.params, cfg_.buffer_k, cfg_.staleness, cfg_.c_g, router_);
    for (std::uint32_t i = 0; i < cfg_.params.num_users; ++i) {
      users_.push_back(std::make_unique<lsa::runtime::AsyncUserDevice>(
          i, cfg_.params, cfg_.seed, router_));
    }
    scheduler_.emplace(cfg_.schedule, cfg_.params.num_users,
                       cfg_.params.model_dim,
                       /*default_arrivals=*/cfg_.buffer_k);
  }

  [[nodiscard]] const lsa::protocol::Params& params() const {
    return cfg_.params;
  }
  [[nodiscard]] lsa::transport::ConcurrentRouter& router() { return router_; }
  [[nodiscard]] lsa::runtime::AsyncUserDevice& user(std::size_t i) {
    return *users_.at(i);
  }
  [[nodiscard]] lsa::runtime::AsyncAggregationServer& server() {
    return *server_;
  }
  [[nodiscard]] const lsa::runtime::ArrivalScheduler& scheduler() const {
    return *scheduler_;
  }

  /// Persistent-cohort membership change (see Session::advance_epoch).
  void advance_epoch() {
    for (auto& u : users_) u->advance_epoch();
  }

  /// One buffer cycle at aggregation round `now`: the arrivals submit
  /// their (stale) updates, `crash_before_recovery` users go silent, and
  /// the server manifests/aggregates once the buffer is full. Same phase
  /// structure and failure semantics as AsyncNetwork::run_cycle;
  /// bit-identical to it at equal seed and arrivals.
  [[nodiscard]] Output run_cycle(
      std::uint64_t now, const std::vector<Arrival>& arrivals,
      const std::vector<std::size_t>& crash_before_recovery = {}) {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(cfg_.params.simd);
    const auto& pol = cfg_.params.exec;
    // One arrival per lane when the users are distinct (each lane owns its
    // user's machine); repeated users share state and must stay serial.
    auto submit = [&](std::size_t a) {
      users_.at(arrivals[a].user)
          ->submit_update(arrivals[a].born_round,
                          std::span<const rep>(arrivals[a].update));
    };
    if (distinct_users(arrivals)) {
      pol.run(arrivals.size(), submit);
    } else {
      for (std::size_t a = 0; a < arrivals.size(); ++a) submit(a);
    }
    pump();  // timestamped shares + masked updates delivered
    for (const auto i : crash_before_recovery) router_.crash(i);
    server_->begin_recovery(now);
    pump();  // manifest out, weighted shares back
    auto out = server_->finish_cycle(now);
    pump();  // result broadcast
    note_step(server_->codec().last_decode_stats());
    return out;
  }

  void pump() {
    pump_router(router_, cfg_.params.exec, cfg_.params.num_users + 1,
                [&](std::size_t r) -> lsa::runtime::Party& {
                  return party(r);
                });
  }

  // ------------------------------------------------- SessionBase interface

  struct QueuedCycle {
    std::uint64_t now = 0;
    std::vector<Arrival> arrivals;
    std::vector<std::size_t> crash_before_recovery;
  };

  void enqueue_cycle(QueuedCycle cycle) {
    lsa::require<lsa::ProtocolError>(
        cycle.arrivals.size() <= max_arrivals_,
        "async session: cycle exceeds max_arrivals_per_cycle (the mailbox "
        "fan-in bound was derived from it)");
    queue_.push_back(std::move(cycle));
  }

  /// Enqueues the next `count` cycles of the session's deterministic
  /// arrival schedule (reproducible: the same seed yields the same cycles
  /// in the legacy single-threaded AsyncNetwork drive).
  void enqueue_scheduled_cycles(std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      enqueue_cycle(QueuedCycle{
          scheduler_->now_for_cycle(next_scheduled_cycle_),
          scheduler_->arrivals_for_cycle(next_scheduled_cycle_),
          {}});
      ++next_scheduled_cycle_;
    }
  }

  /// Outputs of completed cycles, in execution order.
  [[nodiscard]] const std::vector<Output>& outputs() const {
    return outputs_;
  }

  [[nodiscard]] SessionKind kind() const override {
    return SessionKind::kAsync;
  }
  [[nodiscard]] std::size_t pending() const override { return queue_.size(); }
  void clear_pending() override { queue_.clear(); }

  void step() override {
    QueuedCycle cycle = std::move(queue_.front());
    queue_.pop_front();
    outputs_.push_back(
        run_cycle(cycle.now, cycle.arrivals, cycle.crash_before_recovery));
  }

  [[nodiscard]] SessionStats stats() const override {
    SessionStats out;
    fill_common_stats(out, router_);
    for (const auto& u : users_) out.offline_encodes += u->offline_encodes();
    return out;
  }

 private:
  [[nodiscard]] static bool distinct_users(
      const std::vector<Arrival>& arrivals) {
    for (std::size_t a = 0; a < arrivals.size(); ++a) {
      for (std::size_t b = a + 1; b < arrivals.size(); ++b) {
        if (arrivals[a].user == arrivals[b].user) return false;
      }
    }
    return true;
  }

  [[nodiscard]] lsa::runtime::Party& party(std::size_t r) {
    return r == cfg_.params.num_users
               ? static_cast<lsa::runtime::Party&>(*server_)
               : *users_[r];
  }

  AsyncSessionConfig cfg_;
  std::size_t max_arrivals_;
  lsa::transport::ConcurrentRouter router_;
  std::unique_ptr<lsa::runtime::AsyncAggregationServer> server_;
  std::vector<std::unique_ptr<lsa::runtime::AsyncUserDevice>> users_;
  std::optional<lsa::runtime::ArrivalScheduler> scheduler_;
  std::uint64_t next_scheduled_cycle_ = 0;
  std::deque<QueuedCycle> queue_;
  std::vector<Output> outputs_;
};

/// The multi-session front end: owns heterogeneous sessions (sync and
/// async cohorts side by side), shards them across the pool, and pumps
/// their queued steps concurrently.
class AggregationServer {
 public:
  using Fp = SessionBase::Fp;
  using rep = SessionBase::rep;

  /// pool == nullptr runs everything inline (serial reference behavior).
  /// num_shards == 0 picks the pool width (or 1 when inline).
  explicit AggregationServer(lsa::sys::ThreadPool* pool = nullptr,
                             std::size_t num_shards = 0)
      : pool_(pool),
        num_shards_(num_shards != 0 ? num_shards
                    : pool != nullptr ? pool->size()
                                      : 1) {}

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }
  // relaxed: monotonic progress gauges — readers want a recent count, not
  // an ordering edge (the drive's join publishes results).
  [[nodiscard]] std::uint64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cycles_completed() const {
    return cycles_completed_.load(std::memory_order_relaxed);
  }

  /// Registers a sync cohort; returns its session id (shard = id % shards).
  std::uint64_t open_session(SessionConfig cfg) {
    return adopt(std::make_unique<Session>(std::move(cfg)));
  }

  /// Registers an async buffered cohort side by side with the sync ones.
  std::uint64_t open_async_session(AsyncSessionConfig cfg) {
    return adopt(std::make_unique<AsyncSession>(std::move(cfg)));
  }

  [[nodiscard]] SessionBase& session_base(std::uint64_t id) {
    const auto it = sessions_.find(id);
    lsa::require(it != sessions_.end(), "server: unknown session id");
    return *it->second;
  }

  [[nodiscard]] Session& session(std::uint64_t id) {
    auto* s = dynamic_cast<Session*>(&session_base(id));
    lsa::require<lsa::ProtocolError>(s != nullptr,
                                     "server: session is not a sync session");
    return *s;
  }

  [[nodiscard]] AsyncSession& async_session(std::uint64_t id) {
    auto* s = dynamic_cast<AsyncSession*>(&session_base(id));
    lsa::require<lsa::ProtocolError>(
        s != nullptr, "server: session is not an async session");
    return *s;
  }

  void close_session(std::uint64_t id) {
    lsa::require(sessions_.erase(id) == 1, "server: unknown session id");
  }

  /// One round of one sync session. Models are referenced, not copied —
  /// they must outlive the run_rounds() call that executes the work.
  struct RoundWork {
    std::uint64_t session_id = 0;
    std::uint64_t round = 0;
    const std::vector<std::vector<rep>>* models = nullptr;
    std::vector<std::size_t> crash_after_upload;
  };

  /// Executes a batch of sync rounds AND any cycles already queued on
  /// async sessions (enqueue_cycle / enqueue_scheduled_cycles): one drive
  /// pumps every session's queue, sharded across the pool, so sync and
  /// async cohorts proceed concurrently in one process. Sync results come
  /// back in work order; async outputs accumulate on their sessions
  /// (AsyncSession::outputs()). The first failure (e.g. an unrecoverable
  /// round) is rethrown after every shard has finished its batch.
  [[nodiscard]] std::vector<std::vector<rep>> run_rounds(
      const std::vector<RoundWork>& works) {
    // Validate the whole batch before enqueuing anything: a bad work item
    // mid-loop must not leave earlier items queued with pointers into the
    // `results` vector this call is about to unwind.
    std::vector<Session*> targets;
    targets.reserve(works.size());
    for (const auto& work : works) {
      lsa::require<lsa::ProtocolError>(work.models != nullptr,
                                       "server: null model batch");
      targets.push_back(&session(work.session_id));
    }
    std::vector<std::vector<rep>> results(works.size());
    for (std::size_t w = 0; w < works.size(); ++w) {
      targets[w]->enqueue_round({works[w].round, works[w].models,
                                 works[w].crash_after_upload, &results[w]});
    }
    drive();
    return results;
  }

  /// Pumps every session's queued steps to completion, one shard per pool
  /// task: sync sessions step whole rounds, async sessions step buffer
  /// cycles. A shard whose sessions include a pipelined one (Params::
  /// pipeline == 2) switches to the stage-granular wave loop below; a
  /// shard without any runs the exact legacy serial loop — the tested
  /// depth-1 reference. A failing session abandons its remaining queue;
  /// the first failure is rethrown after every shard has drained.
  void drive() {
    std::vector<std::exception_ptr> errors(num_shards_);
    auto run_shard = [&](std::size_t s) {
      std::vector<SessionBase*> shard;
      bool pipelined = false;
      for (auto& [id, sess] : sessions_) {
        if (sess->shard_of(num_shards_) != s) continue;
        shard.push_back(sess.get());
        auto* sync = dynamic_cast<Session*>(sess.get());
        if (sync != nullptr && sync->pipelined()) pipelined = true;
      }
      if (pipelined) {
        drive_shard_waves(shard, errors[s]);
        return;
      }
      for (auto* sess : shard) {
        while (!sess->done()) {
          try {
            sess->step();
            auto& counter = sess->kind() == SessionKind::kAsync
                                ? cycles_completed_
                                : rounds_completed_;
            // relaxed: progress gauge; results are published by the join.
            counter.fetch_add(1, std::memory_order_relaxed);
          } catch (...) {
            if (!errors[s]) errors[s] = std::current_exception();
            sess->clear_pending();
          }
        }
      }
    };
    if (pool_ == nullptr || num_shards_ <= 1) {
      for (std::size_t s = 0; s < num_shards_; ++s) run_shard(s);
    } else {
      // One block per shard; the pool's nested-safe parallel_for lets the
      // sessions' own ExecPolicy fan out on the same pool underneath.
      pool_->parallel_for(num_shards_, run_shard, /*grain=*/1);
    }
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  /// Process-level report: per-session snapshots plus process totals
  /// (examples/protocol_comparison.cpp prints it). Snapshot between
  /// drives: the per-session counters are written unsynchronized by the
  /// owning shard task, so stats() must not race an in-flight drive().
  struct ProcessStats {
    std::uint64_t rounds_completed = 0;  ///< sync rounds, process-wide
    std::uint64_t cycles_completed = 0;  ///< async buffer cycles
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t decode_plan_builds = 0;
    std::uint64_t decode_plan_reuses = 0;
    std::uint64_t decode_plan_patches = 0;
    std::uint64_t offline_encodes = 0;
    double decode_setup_s = 0.0;
    double decode_stream_s = 0.0;
    /// Pipeline telemetry across sessions: the deepest in-flight round
    /// count any session reached, total offline wall time hidden behind
    /// concurrent online stages, and total online-only (bubble) waves.
    std::uint64_t max_rounds_in_flight = 0;
    double offline_hidden_s = 0.0;
    double offline_stage_s = 0.0;
    std::uint64_t pipeline_stalls = 0;
    std::vector<SessionStats> per_session;  ///< ordered by session id
  };

  [[nodiscard]] ProcessStats stats() const {
    ProcessStats out;
    out.rounds_completed = rounds_completed();
    out.cycles_completed = cycles_completed();
    for (const auto& [id, sess] : sessions_) {
      out.per_session.push_back(sess->stats());
      const auto& s = out.per_session.back();
      out.frames_sent += s.frames_sent;
      out.frames_delivered += s.frames_delivered;
      out.decode_plan_builds += s.decode_plan_builds;
      out.decode_plan_reuses += s.decode_plan_reuses;
      out.decode_plan_patches += s.decode_plan_patches;
      out.offline_encodes += s.offline_encodes;
      out.decode_setup_s += s.decode_setup_s;
      out.decode_stream_s += s.decode_stream_s;
      out.max_rounds_in_flight =
          std::max(out.max_rounds_in_flight, s.rounds_in_flight);
      out.offline_hidden_s += s.offline_hidden_s;
      out.offline_stage_s += s.offline_stage_s;
      out.pipeline_stalls += s.pipeline_stalls;
    }
    return out;
  }

 private:
  /// The stage-granular shard loop: each wave gathers one ready stage per
  /// session — a pipelined sync session contributes its queue front's
  /// ONLINE stage and/or the next round's OFFLINE stage, every other
  /// session contributes one whole step — and runs them concurrently on
  /// the pool (nested-safe: the sessions' own ExecPolicy fans out
  /// underneath). All queue mutation, slot re-keying (prepare_offline) and
  /// telemetry run serially between waves, which is the pipelined
  /// ownership rule that keeps the concurrent stages race-free. So one
  /// shard interleaves session A's decode with session B's — or A's own
  /// next-round — encode, and the steady-state wave of a single session is
  /// [online(r) ∥ offline(r+1)]: latency max(T_on, T_off) + ε instead of
  /// T_on + T_off.
  void drive_shard_waves(const std::vector<SessionBase*>& shard,
                         std::exception_ptr& error) {
    struct WaveEntry {
      SessionBase* sess = nullptr;
      Session* sync = nullptr;  ///< non-null for pipelined stage entries
      bool online = false;      ///< pipelined: online stage in this wave
      bool offline = false;     ///< pipelined: offline stage in this wave
    };
    std::vector<WaveEntry> entries;
    std::vector<std::function<void()>> tasks;
    std::vector<std::exception_ptr> task_errors;
    for (;;) {
      entries.clear();
      tasks.clear();
      // Serial pre-wave: collect ready work and key next-round slots.
      for (auto* sess : shard) {
        auto* sync = dynamic_cast<Session*>(sess);
        if (sync != nullptr && sync->pipelined()) {
          WaveEntry e{sess, sync, sync->has_online_work(), false};
          if (sync->has_offline_work()) {
            sync->prepare_offline();
            e.offline = true;
          }
          if (!e.online && !e.offline) continue;
          if (e.online) tasks.push_back([sync] { sync->run_online_stage(); });
          if (e.offline) {
            tasks.push_back([sync] { sync->run_offline_stage(); });
          }
          entries.push_back(e);
          continue;
        }
        if (sess->done()) continue;
        entries.push_back(WaveEntry{sess, nullptr, false, false});
        tasks.push_back([sess] { sess->step(); });
      }
      if (tasks.empty()) return;
      task_errors.assign(tasks.size(), nullptr);
      auto run_task = [&](std::size_t t) {
        try {
          tasks[t]();
        } catch (...) {
          task_errors[t] = std::current_exception();
        }
      };
      if (pool_ != nullptr && tasks.size() > 1) {
        pool_->parallel_for(tasks.size(), run_task, /*grain=*/1);
      } else {
        for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
      }
      // Serial post-wave: retire completed rounds, count steps, fold
      // failures (a failed session abandons its queue and its staged
      // offline work — the legacy error contract).
      std::size_t t = 0;
      for (const auto& e : entries) {
        std::exception_ptr first;
        const std::size_t n_tasks =
            e.sync != nullptr
                ? static_cast<std::size_t>(e.online) +
                      static_cast<std::size_t>(e.offline)
                : 1;
        for (std::size_t k = 0; k < n_tasks; ++k) {
          if (task_errors[t + k] && !first) first = task_errors[t + k];
        }
        const bool online_ok =
            e.sync == nullptr || !e.online || !task_errors[t];
        t += n_tasks;
        if (e.sync != nullptr) {
          if (e.online && online_ok) {
            e.sync->retire_online();
            // relaxed: progress gauge; results are published by the join.
            rounds_completed_.fetch_add(1, std::memory_order_relaxed);
          }
          e.sync->note_wave(e.online && online_ok, e.offline);
        } else if (!first) {
          auto& counter = e.sess->kind() == SessionKind::kAsync
                              ? cycles_completed_
                              : rounds_completed_;
          // relaxed: progress gauge; results are published by the join.
          counter.fetch_add(1, std::memory_order_relaxed);
        }
        if (first) {
          if (!error) error = first;
          e.sess->clear_pending();
        }
      }
    }
  }

  std::uint64_t adopt(std::unique_ptr<SessionBase> sess) {
    const std::uint64_t id = next_id_++;
    sess->id_ = id;
    sessions_.emplace(id, std::move(sess));
    return id;
  }

  lsa::sys::ThreadPool* pool_;
  std::size_t num_shards_;
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, std::unique_ptr<SessionBase>> sessions_;
  std::atomic<std::uint64_t> rounds_completed_{0};
  std::atomic<std::uint64_t> cycles_completed_{0};
};

}  // namespace lsa::server
