// Chunked duplex channel — the §6 "optimized communication API" mechanism.
//
// During LightSecAgg's offline phase every user is simultaneously a sender
// (its own N-1 encoded mask shares) and a receiver (N-1 shares from peers).
// The paper's system splits payloads into chunks and services send and
// receive queues concurrently, roughly halving the phase's wall time versus
// a sequential send-then-receive loop.
//
// This class is a functional in-process model of that mechanism: two
// bounded chunk queues moved by independent pump threads. Tests verify
// payload integrity and the concurrency benefit; the RoundSimulator's
// `duplex_overlap` option applies the same effect analytically at scale.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "common/thread_annotations.h"

namespace lsa::sys {

class DuplexChannel {
 public:
  /// chunk_bytes: payloads are split into chunks of this size;
  /// chunk_service_ns: simulated per-chunk service latency of the link.
  DuplexChannel(std::size_t chunk_bytes, std::uint64_t chunk_service_ns)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes),
        service_ns_(chunk_service_ns) {}

  /// Splits `payload` into chunks and enqueues them for the peer.
  void send(std::span<const std::uint8_t> payload);

  /// Marks the sending side complete; receive_all unblocks when drained.
  void close();

  /// Blocks until the channel closes; returns the reassembled payload(s).
  [[nodiscard]] std::vector<std::uint8_t> receive_all();

  [[nodiscard]] std::size_t chunk_bytes() const { return chunk_bytes_; }
  [[nodiscard]] std::uint64_t chunks_moved() const;

 private:
  void service_delay() const;

  std::size_t chunk_bytes_;
  std::uint64_t service_ns_;
  mutable lsa::sync::Mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<std::uint8_t>> queue_ LSA_GUARDED_BY(mu_);
  std::uint64_t chunks_ LSA_GUARDED_BY(mu_) = 0;
  bool closed_ LSA_GUARDED_BY(mu_) = false;
};

}  // namespace lsa::sys
