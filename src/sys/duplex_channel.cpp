#include "sys/duplex_channel.h"

#include <chrono>
#include <thread>

namespace lsa::sys {

void DuplexChannel::send(std::span<const std::uint8_t> payload) {
  for (std::size_t off = 0; off < payload.size(); off += chunk_bytes_) {
    const std::size_t n = std::min(chunk_bytes_, payload.size() - off);
    std::vector<std::uint8_t> chunk(payload.begin() + off,
                                    payload.begin() + off + n);
    service_delay();
    {
      lsa::sync::MutexLock lk(mu_);
      queue_.push_back(std::move(chunk));
      ++chunks_;
    }
    cv_.notify_one();
  }
}

void DuplexChannel::close() {
  {
    lsa::sync::MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> DuplexChannel::receive_all() {
  std::vector<std::uint8_t> out;
  for (;;) {
    std::vector<std::uint8_t> chunk;
    {
      lsa::sync::MutexLock lk(mu_);
      // Explicit predicate loop (not a wait lambda): the guarded closed_ /
      // queue_ reads stay inside this analyzed critical section.
      while (!closed_ && queue_.empty()) cv_.wait(lk.native_lock());
      if (queue_.empty() && closed_) return out;
      chunk = std::move(queue_.front());
      queue_.pop_front();
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
}

std::uint64_t DuplexChannel::chunks_moved() const {
  lsa::sync::MutexLock lk(mu_);
  return chunks_;
}

void DuplexChannel::service_delay() const {
  if (service_ns_ == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(service_ns_));
}

}  // namespace lsa::sys
