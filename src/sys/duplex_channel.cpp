#include "sys/duplex_channel.h"

#include <chrono>
#include <thread>

namespace lsa::sys {

void DuplexChannel::send(std::span<const std::uint8_t> payload) {
  for (std::size_t off = 0; off < payload.size(); off += chunk_bytes_) {
    const std::size_t n = std::min(chunk_bytes_, payload.size() - off);
    std::vector<std::uint8_t> chunk(payload.begin() + off,
                                    payload.begin() + off + n);
    service_delay();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(chunk));
      ++chunks_;
    }
    cv_.notify_one();
  }
}

void DuplexChannel::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> DuplexChannel::receive_all() {
  std::vector<std::uint8_t> out;
  for (;;) {
    std::vector<std::uint8_t> chunk;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty() && closed_) return out;
      chunk = std::move(queue_.front());
      queue_.pop_front();
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
}

std::uint64_t DuplexChannel::chunks_moved() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chunks_;
}

void DuplexChannel::service_delay() const {
  if (service_ns_ == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(service_ns_));
}

}  // namespace lsa::sys
