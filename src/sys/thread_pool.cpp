#include "sys/thread_pool.h"

#include <atomic>

namespace lsa::sys {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futs;
  const std::size_t lanes = std::min(n, workers_.size());
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace lsa::sys
