#include "sys/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace lsa::sys {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    lsa::sync::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      lsa::sync::MutexLock lk(mu_);
      // Explicit predicate loop (not a wait lambda): the guarded stop_ /
      // queue_ reads stay inside this analyzed critical section.
      while (!stop_ && queue_.empty()) cv_.wait(lk.native_lock());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for_blocked region. Heap-held via
/// shared_ptr so helper tasks that get scheduled AFTER the region already
/// finished (the caller drained every block itself) can still safely look
/// at the cursor and exit.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t nblocks = 0;
  std::size_t grain = 0;
  std::size_t n = 0;
  /// Only dereferenced for a successfully claimed block, which can only
  /// happen while the caller is still waiting — the referent outlives every
  /// use (see claim loop).
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  lsa::sync::Mutex mu;
  std::condition_variable all_done;
  std::exception_ptr error LSA_GUARDED_BY(mu);

  /// Claims blocks until the cursor runs dry. Returns true if this call
  /// completed the final block.
  bool claim_loop() {
    bool finished_last = false;
    for (;;) {
      // relaxed: the cursor is a pure ticket dispenser — block inputs were
      // published before the workers were handed the state pointer.
      const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= nblocks) return finished_last;
      const std::size_t begin = b * grain;
      try {
        (*fn)(begin, std::min(begin + grain, n));
      } catch (...) {
        lsa::sync::MutexLock lk(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == nblocks) {
        finished_last = true;
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for_blocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (8 * workers_.size()));
  const std::size_t nblocks = (n + grain - 1) / grain;
  if (nblocks <= 1) {
    // One block of work: run inline, no queue round-trip.
    fn(0, n);
    return;
  }

  // The calling thread participates in block claiming, so this is safe to
  // invoke from INSIDE a pool worker: even if every helper task starves
  // behind other queued work (e.g. nested parallel regions saturating the
  // pool), the caller drains all blocks itself and the region terminates.
  // Straggler helpers that run later find the cursor exhausted and exit.
  auto state = std::make_shared<ForState>();
  state->nblocks = nblocks;
  state->grain = grain;
  state->n = n;
  state->fn = &fn;

  const std::size_t helpers =
      std::min(nblocks - 1, workers_.size());
  {
    lsa::sync::MutexLock lk(mu_);
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state] {
        if (state->claim_loop()) {
          lsa::sync::MutexLock lk2(state->mu);
          state->all_done.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  (void)state->claim_loop();
  if (state->done.load(std::memory_order_acquire) < nblocks) {
    lsa::sync::MutexLock lk(state->mu);
    // Explicit predicate loop; `done` is atomic, re-read each wakeup.
    while (state->done.load(std::memory_order_acquire) < nblocks) {
      state->all_done.wait(lk.native_lock());
    }
  }
  std::exception_ptr err;
  {
    lsa::sync::MutexLock lk(state->mu);
    err = state->error;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_blocked(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

}  // namespace lsa::sys
