#include "sys/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace lsa::sys {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_blocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (8 * workers_.size()));
  const std::size_t nblocks = (n + grain - 1) / grain;
  const std::size_t lanes = std::min(nblocks, workers_.size());
  if (lanes <= 1) {
    // One lane of work: run inline, no queue round-trip.
    fn(0, n);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t b = next.fetch_add(1);
        if (b >= nblocks) return;
        const std::size_t begin = b * grain;
        fn(begin, std::min(begin + grain, n));
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_blocked(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

}  // namespace lsa::sys
