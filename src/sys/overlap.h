// Overlapped execution of local training and the offline mask phase (§6,
// Fig. 5). The two workloads are independent — mask generation does not read
// the model — so the paper runs them in separate processes. Here the offline
// task is scheduled as a stage on the session's ExecPolicy pool (the same
// pool the round's data-parallel phases fan out on) while training runs on
// the calling thread; run_overlapped returns real measured wall times for
// both schedules. The caller's SIMD dispatch policy is captured and
// re-established inside the offline stage, exactly like ExecPolicy::run
// does for its pool lanes — a caller that pinned forced-scalar dispatch
// keeps it across the overlap.
#pragma once

#include <functional>
#include <thread>

#include "common/timer.h"
#include "field/simd/simd_policy.h"
#include "sys/exec_policy.h"

namespace lsa::sys {

struct OverlapTiming {
  double training_s = 0.0;       ///< wall time of the training task alone
  double offline_s = 0.0;        ///< wall time of the offline task alone
  double overlapped_total_s = 0.0;  ///< wall time running both concurrently
  [[nodiscard]] double sequential_total_s() const {
    return training_s + offline_s;
  }
  [[nodiscard]] double speedup() const {
    return overlapped_total_s > 0.0
               ? sequential_total_s() / overlapped_total_s
               : 0.0;
  }
};

/// Runs `training` and `offline` once each, concurrently, measuring both the
/// individual task times and the combined wall time. With a pooled policy
/// the offline stage is submitted to `pol.pool` (one worker slot, no
/// detached thread); a poolless policy falls back to one dedicated joined
/// thread so the overlap survives serial configurations. Either way the
/// offline stage re-establishes the caller's SIMD policy.
inline OverlapTiming run_overlapped(const std::function<void()>& training,
                                    const std::function<void()>& offline,
                                    const ExecPolicy& pol = {}) {
  OverlapTiming t;
  const lsa::field::simd::SimdPolicy sp = lsa::field::simd::thread_policy();
  auto offline_stage = [&t, &offline, sp] {
    const lsa::field::simd::ScopedSimdPolicy guard(sp);
    lsa::common::Stopwatch sw;
    offline();
    t.offline_s = sw.elapsed_sec();
  };
  lsa::common::Stopwatch total;
  if (pol.pool != nullptr) {
    auto fut = pol.pool->submit(offline_stage);
    {
      lsa::common::Stopwatch sw;
      training();
      t.training_s = sw.elapsed_sec();
    }
    fut.get();
  } else {
    std::thread offline_thread(offline_stage);
    {
      lsa::common::Stopwatch sw;
      training();
      t.training_s = sw.elapsed_sec();
    }
    offline_thread.join();
  }
  t.overlapped_total_s = total.elapsed_sec();
  return t;
}

}  // namespace lsa::sys
