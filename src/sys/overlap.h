// Overlapped execution of local training and the offline mask phase (§6,
// Fig. 5). The two workloads are independent — mask generation does not read
// the model — so the paper runs them in separate processes. Here they run in
// separate threads (no Python GIL to dodge in C++); run_overlapped returns
// real measured wall times for both schedules.
#pragma once

#include <functional>
#include <future>
#include <thread>

#include "common/timer.h"

namespace lsa::sys {

struct OverlapTiming {
  double training_s = 0.0;       ///< wall time of the training task alone
  double offline_s = 0.0;        ///< wall time of the offline task alone
  double overlapped_total_s = 0.0;  ///< wall time running both concurrently
  [[nodiscard]] double sequential_total_s() const {
    return training_s + offline_s;
  }
  [[nodiscard]] double speedup() const {
    return overlapped_total_s > 0.0
               ? sequential_total_s() / overlapped_total_s
               : 0.0;
  }
};

/// Runs `training` and `offline` once each, concurrently, measuring both the
/// individual task times and the combined wall time.
inline OverlapTiming run_overlapped(const std::function<void()>& training,
                                    const std::function<void()>& offline) {
  OverlapTiming t;
  lsa::common::Stopwatch total;
  auto fut = std::async(std::launch::async, [&] {
    lsa::common::Stopwatch sw;
    offline();
    t.offline_s = sw.elapsed_sec();
  });
  {
    lsa::common::Stopwatch sw;
    training();
    t.training_s = sw.elapsed_sec();
  }
  fut.get();
  t.overlapped_total_s = total.elapsed_sec();
  return t;
}

}  // namespace lsa::sys
