// Fixed-size thread pool.
//
// Backs the system-level optimizations of paper §6: running the offline
// mask-encoding phase concurrently with local training (sys/overlap.h) and
// parallel per-user work in the examples and benches.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace lsa::sys {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes.
  template <class F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      lsa::sync::MutexLock lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  ///
  /// Work is dispatched in grain-sized index blocks claimed from a shared
  /// atomic cursor — one enqueue per lane, not one per index — so
  /// fine-grained per-chunk kernels don't drown in queue/future overhead.
  /// grain == 0 picks max(1, n / (8 * threads)): enough blocks for load
  /// balancing, few enough that claiming is negligible.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Block form of parallel_for: fn(begin, end) per claimed block. Use this
  /// when the body is itself a vector kernel — it avoids the per-index
  /// std::function call entirely.
  void parallel_for_blocked(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 0);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  lsa::sync::Mutex mu_;
  std::deque<std::function<void()>> queue_ LSA_GUARDED_BY(mu_);
  std::condition_variable cv_;
  bool stop_ LSA_GUARDED_BY(mu_) = false;
};

}  // namespace lsa::sys
