// Execution policy threaded through the coding/protocol layers.
//
// An ExecPolicy bundles the (optional, non-owning) thread pool that
// data-parallel loops run on and the cache-block size the fused kernels in
// field/field_vec.h traverse with. Default-constructed it means "serial,
// default chunking" — every API that accepts one behaves exactly like the
// legacy single-threaded path (the parity tests in
// tests/parallel_codec_test.cpp pin this down bit-for-bit).
#pragma once

#include <cstddef>
#include <functional>

#include "sys/thread_pool.h"

namespace lsa::sys {

struct ExecPolicy {
  /// Pool to fan work out on; nullptr = run inline on the calling thread.
  ThreadPool* pool = nullptr;
  /// Reps per cache block for the blocked field kernels (0 = kernel
  /// default). 4096 u32 reps = 16 KiB: destination block + lazy
  /// accumulators stay L1-resident.
  std::size_t chunk_reps = 4096;

  [[nodiscard]] bool parallel() const {
    return pool != nullptr && pool->size() > 1;
  }
  [[nodiscard]] std::size_t lanes() const {
    return pool == nullptr ? 1 : pool->size();
  }

  /// Runs fn(i) for i in [0, n): on the pool when present, inline otherwise.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           std::size_t grain = 0) const {
    if (pool == nullptr || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    pool->parallel_for(n, fn, grain);
  }

  /// Runs fn(begin, end) over [0, n) in blocks: grain-sized on the pool,
  /// one inline call otherwise (callers chunk internally via chunk_reps).
  void run_blocked(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t grain = 0) const {
    if (n == 0) return;
    if (pool == nullptr) {
      fn(0, n);
      return;
    }
    pool->parallel_for_blocked(n, fn, grain);
  }
};

}  // namespace lsa::sys
