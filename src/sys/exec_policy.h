// Execution policy threaded through the coding/protocol layers.
//
// An ExecPolicy bundles the (optional, non-owning) thread pool that
// data-parallel loops run on and the cache-block size the fused kernels in
// field/field_vec.h traverse with. Default-constructed it means "serial,
// default chunking" — every API that accepts one behaves exactly like the
// legacy single-threaded path (the parity tests in
// tests/parallel_codec_test.cpp pin this down bit-for-bit).
#pragma once

#include <cstddef>
#include <functional>

#include "field/simd/simd_policy.h"
#include "sys/thread_pool.h"

namespace lsa::sys {

struct ExecPolicy {
  /// Pool to fan work out on; nullptr = run inline on the calling thread.
  ThreadPool* pool = nullptr;
  /// Reps per cache block for the blocked field kernels (0 = kernel
  /// default). 4096 u32 reps = 16 KiB: destination block + lazy
  /// accumulators stay L1-resident.
  std::size_t chunk_reps = 4096;

  [[nodiscard]] bool parallel() const {
    return pool != nullptr && pool->size() > 1;
  }
  [[nodiscard]] std::size_t lanes() const {
    return pool == nullptr ? 1 : pool->size();
  }

  /// Runs fn(i) for i in [0, n): on the pool when present, inline otherwise.
  /// The calling thread's SIMD dispatch policy (field/simd/simd_policy.h)
  /// is captured and re-established inside every pool worker, so a caller
  /// that pinned forced-scalar dispatch keeps it across the fan-out — the
  /// pool's threads otherwise run whatever policy they last saw.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           std::size_t grain = 0) const {
    if (pool == nullptr || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const lsa::field::simd::SimdPolicy sp = lsa::field::simd::thread_policy();
    pool->parallel_for(
        n,
        [&fn, sp](std::size_t i) {
          lsa::field::simd::ScopedSimdPolicy guard(sp);
          fn(i);
        },
        grain);
  }

  /// Runs fn(begin, end) over [0, n) in blocks: grain-sized on the pool,
  /// one inline call otherwise (callers chunk internally via chunk_reps).
  /// Same SIMD-policy capture as run().
  void run_blocked(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t grain = 0) const {
    if (n == 0) return;
    if (pool == nullptr) {
      fn(0, n);
      return;
    }
    const lsa::field::simd::SimdPolicy sp = lsa::field::simd::thread_policy();
    pool->parallel_for_blocked(
        n,
        [&fn, sp](std::size_t begin, std::size_t end) {
          lsa::field::simd::ScopedSimdPolicy guard(sp);
          fn(begin, end);
        },
        grain);
  }
};

}  // namespace lsa::sys
