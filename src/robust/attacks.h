// Byzantine attack models for evaluation (tests, examples, ablation bench).
//
// A Byzantine user ignores the training protocol and submits an arbitrary
// vector. These are the standard model-poisoning attacks used to evaluate
// robust aggregation rules; each transforms the honest update the attacker
// *would* have sent, so attack strength is relative to real signal.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace lsa::robust {

enum class Attack {
  kNone,
  kSignFlip,    ///< send -scale * honest update (gradient reversal)
  kGaussian,    ///< send noise ~ N(0, sigma^2) per coordinate
  kConstant,    ///< send a large constant vector (naive but visible)
};

[[nodiscard]] constexpr std::string_view to_string(Attack a) {
  switch (a) {
    case Attack::kNone: return "none";
    case Attack::kSignFlip: return "sign-flip";
    case Attack::kGaussian: return "gaussian";
    case Attack::kConstant: return "constant";
  }
  return "?";
}

struct AttackConfig {
  Attack kind = Attack::kNone;
  double scale = 10.0;   ///< sign-flip multiplier / constant value
  double sigma = 10.0;   ///< gaussian noise std
  std::uint64_t seed = 99;
};

/// Applies the attack to the honest update in place.
inline void apply_attack(std::vector<double>& update,
                         const AttackConfig& cfg,
                         lsa::common::Xoshiro256ss& rng) {
  switch (cfg.kind) {
    case Attack::kNone:
      return;
    case Attack::kSignFlip:
      for (auto& v : update) v *= -cfg.scale;
      return;
    case Attack::kGaussian:
      for (auto& v : update) v = cfg.sigma * rng.next_gaussian();
      return;
    case Attack::kConstant:
      for (auto& v : update) v = cfg.scale;
      return;
  }
  throw lsa::ConfigError("apply_attack: unknown attack kind");
}

/// Marks the first `num_byzantine` users of every group as Byzantine when
/// `spread` is false (concentrated: few groups poisoned, the favourable
/// case for group-wise robustness), or stripes them across groups when true
/// (worst case: many groups poisoned).
[[nodiscard]] inline std::vector<bool> byzantine_assignment(
    std::size_t num_users, std::size_t num_byzantine, std::size_t num_groups,
    bool spread) {
  lsa::require<lsa::ConfigError>(num_byzantine <= num_users,
                                 "byzantine_assignment: too many attackers");
  std::vector<bool> byz(num_users, false);
  if (num_groups == 0) num_groups = 1;
  if (!spread) {
    for (std::size_t i = 0; i < num_byzantine; ++i) byz[i] = true;
    return byz;
  }
  // Stripe: one attacker into each group round-robin.
  const std::size_t group_size = (num_users + num_groups - 1) / num_groups;
  std::size_t placed = 0;
  for (std::size_t pos = 0; placed < num_byzantine; ++pos) {
    const std::size_t g = pos % num_groups;
    const std::size_t slot = pos / num_groups;
    const std::size_t idx = g * group_size + slot;
    if (idx >= num_users) continue;
    if (!byz[idx]) {
      byz[idx] = true;
      ++placed;
    }
  }
  return byz;
}

}  // namespace lsa::robust
