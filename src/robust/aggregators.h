// Byzantine-robust aggregation rules (the paper's §8 future-work direction:
// "combine LightSecAgg with state-of-the-art Byzantine robust aggregation
// protocols").
//
// These rules operate on a small set of real-valued vectors — in this
// library, the *group aggregates* produced by robust::GroupedSecureAggregator
// (grouped_secure.h), which is the standard construction for composing
// secure aggregation with robustness: individual updates stay hidden inside
// their group's secure aggregate, and the robust rule only sees one vector
// per group, rejecting groups poisoned by Byzantine members.
//
// Implemented rules:
//   mean             — plain average (no robustness; the baseline)
//   coordinate median— per-coordinate median; breakdown point 1/2
//   trimmed mean     — per-coordinate, discarding the k largest and k
//                      smallest values; tolerates k outliers per coordinate
//   geometric median — Weiszfeld iteration; breakdown point 1/2 in L2
//   krum / multi-krum— Blanchard et al.'s nearest-neighbour scoring;
//                      tolerates f Byzantine vectors out of m when
//                      m >= 2f + 3
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace lsa::robust {

enum class Rule {
  kMean,
  kCoordinateMedian,
  kTrimmedMean,
  kGeometricMedian,
  kKrum,
  kMultiKrum,
};

[[nodiscard]] constexpr std::string_view to_string(Rule r) {
  switch (r) {
    case Rule::kMean: return "mean";
    case Rule::kCoordinateMedian: return "coordinate-median";
    case Rule::kTrimmedMean: return "trimmed-mean";
    case Rule::kGeometricMedian: return "geometric-median";
    case Rule::kKrum: return "krum";
    case Rule::kMultiKrum: return "multi-krum";
  }
  return "?";
}

namespace detail {

inline void check_inputs(const std::vector<std::vector<double>>& xs) {
  lsa::require<lsa::ConfigError>(!xs.empty(), "robust: no input vectors");
  for (const auto& x : xs) {
    lsa::require<lsa::ConfigError>(x.size() == xs[0].size(),
                                   "robust: inconsistent vector lengths");
  }
}

[[nodiscard]] inline double sq_dist(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  double s = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double diff = a[k] - b[k];
    s += diff * diff;
  }
  return s;
}

}  // namespace detail

/// Plain (weighted) average; weights default to uniform.
[[nodiscard]] inline std::vector<double> mean(
    const std::vector<std::vector<double>>& xs,
    const std::vector<double>& weights = {}) {
  detail::check_inputs(xs);
  lsa::require<lsa::ConfigError>(weights.empty() ||
                                     weights.size() == xs.size(),
                                 "mean: wrong number of weights");
  std::vector<double> out(xs[0].size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    total += w;
    for (std::size_t k = 0; k < out.size(); ++k) out[k] += w * xs[i][k];
  }
  lsa::require<lsa::ConfigError>(total > 0, "mean: zero total weight");
  for (auto& v : out) v /= total;
  return out;
}

/// Per-coordinate median. For an even count, the average of the two middle
/// values (so the result is permutation-invariant and deterministic).
[[nodiscard]] inline std::vector<double> coordinate_median(
    const std::vector<std::vector<double>>& xs) {
  detail::check_inputs(xs);
  const std::size_t m = xs.size();
  std::vector<double> out(xs[0].size());
  std::vector<double> column(m);
  for (std::size_t k = 0; k < out.size(); ++k) {
    for (std::size_t i = 0; i < m; ++i) column[i] = xs[i][k];
    const std::size_t mid = m / 2;
    std::nth_element(column.begin(), column.begin() + mid, column.end());
    if (m % 2 == 1) {
      out[k] = column[mid];
    } else {
      const double hi = column[mid];
      const double lo =
          *std::max_element(column.begin(), column.begin() + mid);
      out[k] = (lo + hi) / 2.0;
    }
  }
  return out;
}

/// Per-coordinate trimmed mean discarding the `trim` largest and `trim`
/// smallest values. Requires 2*trim < m.
[[nodiscard]] inline std::vector<double> trimmed_mean(
    const std::vector<std::vector<double>>& xs, std::size_t trim) {
  detail::check_inputs(xs);
  const std::size_t m = xs.size();
  lsa::require<lsa::ConfigError>(2 * trim < m,
                                 "trimmed_mean: trim too large (2k >= m)");
  std::vector<double> out(xs[0].size());
  std::vector<double> column(m);
  for (std::size_t k = 0; k < out.size(); ++k) {
    for (std::size_t i = 0; i < m; ++i) column[i] = xs[i][k];
    std::sort(column.begin(), column.end());
    double s = 0;
    for (std::size_t i = trim; i < m - trim; ++i) s += column[i];
    out[k] = s / static_cast<double>(m - 2 * trim);
  }
  return out;
}

/// Geometric median via Weiszfeld's algorithm: the point minimizing the sum
/// of L2 distances to the inputs. Robust to up to half the vectors being
/// arbitrary. Converges linearly; `max_iters` and `tol` bound the loop.
[[nodiscard]] inline std::vector<double> geometric_median(
    const std::vector<std::vector<double>>& xs, std::size_t max_iters = 100,
    double tol = 1e-10) {
  detail::check_inputs(xs);
  std::vector<double> y = mean(xs);
  constexpr double kEps = 1e-12;  // guard when y lands on an input point
  for (std::size_t it = 0; it < max_iters; ++it) {
    std::vector<double> next(y.size(), 0.0);
    double wsum = 0.0;
    for (const auto& x : xs) {
      const double dist = std::sqrt(detail::sq_dist(x, y));
      const double w = 1.0 / std::max(dist, kEps);
      wsum += w;
      for (std::size_t k = 0; k < y.size(); ++k) next[k] += w * x[k];
    }
    for (auto& v : next) v /= wsum;
    const double moved = detail::sq_dist(next, y);
    y = std::move(next);
    if (moved < tol * tol) break;
  }
  return y;
}

/// Krum scores: score(i) = sum of squared distances from xs[i] to its
/// m - f - 2 nearest other vectors. Lower is more central.
[[nodiscard]] inline std::vector<double> krum_scores(
    const std::vector<std::vector<double>>& xs, std::size_t f) {
  detail::check_inputs(xs);
  const std::size_t m = xs.size();
  lsa::require<lsa::ConfigError>(
      m >= 2 * f + 3, "krum: need m >= 2f + 3 vectors for f Byzantine");
  const std::size_t keep = m - f - 2;
  std::vector<double> scores(m, 0.0);
  std::vector<double> dists(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t cnt = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      dists[cnt++] = detail::sq_dist(xs[i], xs[j]);
    }
    std::nth_element(dists.begin(), dists.begin() + (keep - 1),
                     dists.begin() + static_cast<std::ptrdiff_t>(cnt));
    scores[i] =
        std::accumulate(dists.begin(), dists.begin() + keep, 0.0);
  }
  return scores;
}

/// Krum selection: the single most central vector.
[[nodiscard]] inline std::vector<double> krum(
    const std::vector<std::vector<double>>& xs, std::size_t f) {
  const auto scores = krum_scores(xs, f);
  const auto best = static_cast<std::size_t>(std::distance(
      scores.begin(), std::min_element(scores.begin(), scores.end())));
  return xs[best];
}

/// Multi-Krum: average of the `select` lowest-scoring vectors
/// (select = m - f by default, the usual choice).
[[nodiscard]] inline std::vector<double> multi_krum(
    const std::vector<std::vector<double>>& xs, std::size_t f,
    std::size_t select = 0) {
  const auto scores = krum_scores(xs, f);
  const std::size_t m = xs.size();
  if (select == 0) select = m - f;
  lsa::require<lsa::ConfigError>(select >= 1 && select <= m,
                                 "multi_krum: bad selection count");
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<std::vector<double>> chosen;
  chosen.reserve(select);
  for (std::size_t r = 0; r < select; ++r) chosen.push_back(xs[order[r]]);
  return mean(chosen);
}

/// L2 norm clipping: returns v scaled so that ||v|| <= max_norm (a common
/// pre-step limiting each contribution's influence).
[[nodiscard]] inline std::vector<double> clip_by_norm(
    const std::vector<double>& v, double max_norm) {
  lsa::require<lsa::ConfigError>(max_norm > 0, "clip: max_norm must be > 0");
  double sq = 0;
  for (const double x : v) sq += x * x;
  const double norm = std::sqrt(sq);
  if (norm <= max_norm) return v;
  std::vector<double> out(v);
  const double scale = max_norm / norm;
  for (auto& x : out) x *= scale;
  return out;
}

/// Options for the rule dispatcher.
struct CombineOptions {
  std::size_t trim = 1;          ///< trimmed mean: k per side
  std::size_t byzantine = 1;     ///< krum/multi-krum: assumed f
  std::size_t krum_select = 0;   ///< multi-krum: 0 = m - f
};

/// Applies the selected rule to the group vectors.
[[nodiscard]] inline std::vector<double> combine(
    Rule rule, const std::vector<std::vector<double>>& xs,
    const CombineOptions& opts = {}) {
  switch (rule) {
    case Rule::kMean: return mean(xs);
    case Rule::kCoordinateMedian: return coordinate_median(xs);
    case Rule::kTrimmedMean: return trimmed_mean(xs, opts.trim);
    case Rule::kGeometricMedian: return geometric_median(xs);
    case Rule::kKrum: return krum(xs, opts.byzantine);
    case Rule::kMultiKrum:
      return multi_krum(xs, opts.byzantine, opts.krum_select);
  }
  throw lsa::ConfigError("combine: unknown rule");
}

}  // namespace lsa::robust
