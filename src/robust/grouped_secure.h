// Grouped secure aggregation with a robust combiner — the composition of
// LightSecAgg with Byzantine-robust aggregation that the paper lists as
// future work (§8).
//
// Construction. The N users are partitioned into G groups. Each group runs
// an *independent* LightSecAgg instance, so the server learns only the G
// group averages — each individual update remains hidden among its group
// peers with the group's T_g-privacy guarantee. The robust rule
// (robust/aggregators.h) then combines the G group averages, discarding
// outliers. A Byzantine user can corrupt at most its own group's average, so
// with B Byzantine users at most B groups are corrupted and any rule
// tolerating B-of-G outliers bounds the damage.
//
// Trade-off surfaced by this design (measured in bench/ablation_byzantine):
// more groups => finer outlier rejection but weaker in-group privacy
// (T_g < group size) and less dropout slack per group; fewer groups => the
// opposite. This is inherent to composing the two goals, not an artifact.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "fl/fedavg.h"          // fl::Aggregate callback shape
#include "fl/secure_adapter.h"  // fl::secure_average
#include "protocol/lightsecagg.h"
#include "robust/aggregators.h"

namespace lsa::robust {

struct GroupedConfig {
  std::size_t num_users = 0;     ///< N
  std::size_t num_groups = 0;    ///< G (must divide reasonably into N)
  std::size_t model_dim = 0;     ///< d
  /// In-group privacy as a fraction of the group size (T_g = floor(frac*n_g),
  /// at least 1 when the group allows it).
  double privacy_fraction = 0.3;
  /// In-group dropout tolerance as a fraction of the group size.
  double dropout_fraction = 0.3;
  std::uint64_t c_l = 1u << 16;  ///< quantization levels (paper's best)
  Rule rule = Rule::kCoordinateMedian;
  CombineOptions rule_opts;
  std::uint64_t seed = 1;
};

/// One LightSecAgg instance per group + a robust combiner across group
/// averages. The object owns the per-group protocol state; aggregate() runs
/// one full round.
template <class F>
class GroupedSecureAggregator {
 public:
  using rep = typename F::rep;

  explicit GroupedSecureAggregator(const GroupedConfig& cfg) : cfg_(cfg) {
    lsa::require<lsa::ConfigError>(cfg_.num_groups >= 1,
                                   "grouped: need at least one group");
    lsa::require<lsa::ConfigError>(
        cfg_.num_users >= 2 * cfg_.num_groups,
        "grouped: need at least 2 users per group");
    lsa::require<lsa::ConfigError>(cfg_.model_dim >= 1,
                                   "grouped: empty model");

    // Contiguous partition; the trailing group absorbs the remainder.
    const std::size_t base = cfg_.num_users / cfg_.num_groups;
    std::size_t start = 0;
    for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
      const std::size_t size =
          (g + 1 == cfg_.num_groups) ? cfg_.num_users - start : base;
      group_start_.push_back(start);
      group_size_.push_back(size);
      start += size;

      lsa::protocol::Params p;
      p.num_users = size;
      p.model_dim = cfg_.model_dim;
      p.privacy = std::min<std::size_t>(
          size - 1,
          std::max<std::size_t>(
              1, static_cast<std::size_t>(cfg_.privacy_fraction *
                                          static_cast<double>(size))));
      const auto want_drop = static_cast<std::size_t>(
          cfg_.dropout_fraction * static_cast<double>(size));
      p.dropout = std::min(want_drop, size - p.privacy - 1);
      protos_.push_back(std::make_unique<lsa::protocol::LightSecAgg<F>>(
          p, cfg_.seed + 0x9e37 * (g + 1)));
    }
  }

  [[nodiscard]] std::size_t num_groups() const { return cfg_.num_groups; }
  [[nodiscard]] std::size_t group_of(std::size_t user) const {
    lsa::require<lsa::ConfigError>(user < cfg_.num_users,
                                   "grouped: user out of range");
    for (std::size_t g = cfg_.num_groups; g-- > 0;) {
      if (user >= group_start_[g]) return g;
    }
    return 0;
  }
  [[nodiscard]] const lsa::protocol::Params& group_params(
      std::size_t g) const {
    return protos_.at(g)->params();
  }

  /// Runs one grouped secure round: per-group secure averages (quantized,
  /// masked, one-shot recovered), then the robust rule across groups.
  /// Groups that lose too many members to recover are *excluded* (their
  /// members' updates are lost for the round, as in a real deployment);
  /// throws ProtocolError when no group survives.
  [[nodiscard]] std::vector<double> aggregate(
      const std::vector<std::vector<double>>& locals,
      const std::vector<bool>& dropped) {
    lsa::require<lsa::ProtocolError>(locals.size() == cfg_.num_users,
                                     "grouped: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == cfg_.num_users,
                                     "grouped: wrong dropout vector");

    std::vector<std::vector<double>> group_avgs;
    std::vector<double> group_weights;
    lsa::common::Xoshiro256ss qrng(cfg_.seed ^ 0xa5a5a5a5ull);
    for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
      const std::size_t s = group_start_[g];
      const std::size_t m = group_size_[g];
      std::vector<std::vector<double>> sub_locals(
          locals.begin() + static_cast<std::ptrdiff_t>(s),
          locals.begin() + static_cast<std::ptrdiff_t>(s + m));
      std::vector<bool> sub_dropped(
          dropped.begin() + static_cast<std::ptrdiff_t>(s),
          dropped.begin() + static_cast<std::ptrdiff_t>(s + m));
      std::size_t survivors = 0;
      for (const bool dr : sub_dropped) {
        if (!dr) ++survivors;
      }
      try {
        auto avg = lsa::fl::secure_average<F>(*protos_[g], sub_locals,
                                              sub_dropped, cfg_.c_l, qrng);
        group_avgs.push_back(std::move(avg));
        group_weights.push_back(static_cast<double>(survivors));
      } catch (const lsa::ProtocolError&) {
        // Group unrecoverable this round (too many dropouts): skip it.
      }
    }
    lsa::require<lsa::ProtocolError>(
        !group_avgs.empty(), "grouped: every group failed to recover");

    if (cfg_.rule == Rule::kMean) {
      // Weighted by survivor count: equals the plain global average.
      return mean(group_avgs, group_weights);
    }
    return combine(cfg_.rule, group_avgs, cfg_.rule_opts);
  }

  /// Adapter to the fl::Aggregate callback shape (fl/fedavg.h).
  [[nodiscard]] lsa::fl::Aggregate as_callback() {
    return [this](const std::vector<std::vector<double>>& locals,
                  const std::vector<bool>& dropped) {
      return aggregate(locals, dropped);
    };
  }

 private:
  GroupedConfig cfg_;
  std::vector<std::size_t> group_start_;
  std::vector<std::size_t> group_size_;
  std::vector<std::unique_ptr<lsa::protocol::LightSecAgg<F>>> protos_;
};

}  // namespace lsa::robust
