// Real-socket transport backend: an epoll event loop speaking the CRC-framed
// wire format over TCP or Unix-domain sockets, behind runtime::Transport.
//
// One class, two roles:
//
//   * hub (SocketTransport::listen) — the server side. Owns the listener
//     and every accepted connection. Sessions register with
//     register_session(sid, num_users, hooks) and get back a Transport&
//     whose send_row/broadcast_row frame ONCE into the shared BufferPool
//     and enqueue the BufferRef on the receiver connections (broadcast =
//     one buffer, refcount per queue — the one-buffer-many-queues rule the
//     in-process router already follows). Inbound frames addressed to
//     receiver == num_users are parsed/validated and delivered to the
//     session's on_frame hook; frames addressed to another user are
//     RELAYED zero-copy (the same pooled buffer moves from the decoder to
//     the target's write queue — the paper's system model routes all
//     user-to-user traffic through the server).
//
//   * client (SocketTransport::connect) — one connection to a hub, bound to
//     (session, user) by a kSessionHello / kSessionWelcome handshake. The
//     handshake is pipelined: data frames may be enqueued immediately after
//     connect() returns, FIFO order guarantees the hub binds first.
//     Inbound frames go to the sink callback.
//
// Connection lifecycle maps onto the crash/revive fencing the in-process
// transports established (ROADMAP Decisions, PR 5):
//
//   * a dropped connection is a crash: the user leaves the live set (and
//     an in-flight recovery wait). Its INBOUND side still drains first —
//     frames the peer flushed before closing are valid protocol input
//     ("delayed, not dropped"), which is how a post-upload dropper's
//     masked model stays in the aggregate;
//   * a reconnect with a session handshake revives: the new connection is
//     re-admitted and the hub hands it whatever was PARKED for the user.
//
// Parking is the piece real processes need that in-process crash() does
// not: clients join and reconnect at their own pace, so frames ADDRESSED
// to a user with no bound connection (not yet joined, or between dial and
// re-handshake) land in a bounded per-user store-and-forward bin and are
// flushed, in order, right after the welcome when the user (re)binds.
// A dead link's undelivered write queue re-parks the same way — down
// users are store-and-forward targets, not black holes. What IS lost is
// anything the dead peer's kernel buffer swallowed, which is why the
// session layer never waits on a user whose link broke mid-round. Bins
// are bounded by the same queue cap; overflow drops-and-counts like a
// full mailbox.
//
// Backpressure: per-connection write queues are bounded. A sender hitting
// a full queue blocks (flush + POLLOUT waits) like a sender on a full
// mailbox, bounded by write_stall_timeout_ms — a peer that stalls past the
// timeout is declared crashed and torn down.
//
// Threading: a SocketTransport is single-threaded — exactly one thread may
// call poll()/send paths. Cross-endpoint concurrency comes from each
// endpoint (hub, every client) owning its own instance, usually on its own
// thread; the global transport counters are atomics and stay coherent.
#pragma once

#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "runtime/transport.h"
#include "runtime/wire.h"
#include "transport/buffer_pool.h"
#include "transport/frame.h"
#include "transport/socket/connection.h"
#include "transport/socket/epoll_loop.h"
#include "transport/socket/socket_addr.h"
#include "transport/stats.h"

namespace lsa::transport::socket {

/// Handshake framing constants (payload words of kSessionHello/kWelcome:
/// [magic, version, user, num_users], all canonical field reps).
inline constexpr std::uint32_t kHelloMagic = 0x15a0c0deu;
inline constexpr std::uint32_t kProtoVersion = 1;

struct SocketOptions {
  /// Decoder bound: a length field above this tears the connection down
  /// (ProtocolError) instead of waiting for bytes that will never come.
  std::size_t max_payload_elems = 1u << 24;
  /// Per-connection write-queue bound; 0 = the session-capacity rule the
  /// in-process mailboxes use (2N + 2 + headroom).
  std::size_t write_queue_cap = 0;
  std::size_t pool_retain = 256;
  /// A sender blocked on a full queue past this is talking to a crashed
  /// peer: tear down, drain, count.
  int write_stall_timeout_ms = 10'000;
  /// Client connect() retries dial failures (daemon startup races) up to
  /// this long before throwing.
  int connect_retry_ms = 5'000;
};

struct SocketStats {
  std::uint64_t frames_sent = 0;      ///< enqueued outbound (per receiver)
  std::uint64_t frames_delivered = 0; ///< inbound handed to hooks/sink
  std::uint64_t frames_relayed = 0;   ///< hub user->user forwards
  std::uint64_t frames_dropped = 0;   ///< late/unroutable/drained frames
  std::uint64_t frames_parked = 0;    ///< held for a user with no live conn
  std::uint64_t protocol_errors = 0;  ///< corrupt/spoofed/oversized frames
  std::uint64_t accepts = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t revives = 0;          ///< re-handshakes of a seen user
};

/// A validated inbound frame: the view aliases the pooled buffer.
struct Inbound {
  BufferRef buf;
  FrameView view;
};

/// Per-session delivery hooks (hub role). All hooks run on the hub's
/// polling thread; exceptions they throw resurface from poll().
struct SessionHooks {
  std::function<void(const Inbound&)> on_frame;
  std::function<void(std::uint32_t user, bool revived)> on_bind;
  std::function<void(std::uint32_t user)> on_disconnect;
};

class SocketTransport final : public lsa::runtime::Transport {
 public:
  /// Hub: bind + listen. For tcp://host:0 the kernel picks the port —
  /// read it back with tcp_port().
  [[nodiscard]] static std::unique_ptr<SocketTransport> listen(
      const SocketAddr& addr, SocketOptions opts = {}) {
    return std::unique_ptr<SocketTransport>(
        new SocketTransport(Role::kHub, addr, opts, 0, 0, 0));
  }

  /// Client: dial the hub and send the session-binding hello. Returns as
  /// soon as the hello is queued; the welcome is consumed by poll() (or
  /// wait_handshake() when the caller wants confirmation).
  [[nodiscard]] static std::unique_ptr<SocketTransport> connect(
      const SocketAddr& addr, std::uint64_t session, std::uint32_t user,
      std::uint32_t num_users, SocketOptions opts = {}) {
    return std::unique_ptr<SocketTransport>(new SocketTransport(
        Role::kClient, addr, opts, session, user, num_users));
  }

  ~SocketTransport() override {
    conns_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      if (addr_.kind == SocketAddr::Kind::kUds) {
        ::unlink(addr_.path.c_str());
      }
    }
  }

  // ------------------------------------------------------------- hub API

  /// Registers a session and returns the Transport the session's server
  /// machine sends through. Hub role only.
  lsa::runtime::Transport& register_session(std::uint64_t sid,
                                            std::uint32_t num_users,
                                            SessionHooks hooks) {
    lsa::require(role_ == Role::kHub,
                 "socket: register_session is hub-only");
    auto [it, fresh] = sessions_.try_emplace(sid);
    lsa::require(fresh, "socket: session already registered");
    SessionState& ss = it->second;
    ss.num_users = num_users;
    ss.hooks = std::move(hooks);
    ss.conn_of.assign(num_users, nullptr);
    ss.ever_bound.assign(num_users, 0);
    ss.parked.resize(num_users);
    ss.park_cap = conn_opts(num_users).write_queue_cap;
    ss.adapter = std::make_unique<HubTransport>(this, sid);
    return *ss.adapter;
  }

  [[nodiscard]] std::uint16_t tcp_port() const {
    return local_tcp_port(listen_fd_);
  }

  [[nodiscard]] bool is_up(std::uint64_t sid, std::uint32_t user) const {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end() || user >= it->second.num_users) return false;
    const Connection* c = it->second.conn_of[user];
    return c != nullptr && !c->failed && !c->tx_dead;
  }

  // --------------------------------------------------------- event pump

  /// Processes ready I/O: accepts, reads (frames to hooks/sink), writes.
  /// Returns the number of epoll events handled. Exceptions thrown by
  /// session hooks / the client sink resurface here after I/O settles.
  std::size_t poll(int timeout_ms = 0) {
    epoll_event evs[64];
    const int n = loop_.wait(std::span<epoll_event>(evs, 64), timeout_ms);
    for (int i = 0; i < n; ++i) {
      const int fd = static_cast<int>(evs[i].data.u64);
      if (role_ == Role::kHub && fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Connection* c = it->second.get();
      if (c->failed) continue;
      if ((evs[i].events & EPOLLOUT) != 0 && !c->tx_dead) {
        if (!c->flush()) {
          tx_fail(c);
        } else {
          update_interest(c);
        }
      }
      if (!c->failed && (evs[i].events & EPOLLIN) != 0) {
        // A peer that closed reports EPOLLIN|EPOLLHUP with its final bytes
        // still readable — pump drains them to the sink first and reports
        // the EOF afterwards, so a result frame racing a close still
        // lands. Frames keep flowing even after the write side dies
        // (tx_dead) or the connection hard-fails mid-pump; only a protocol
        // violation (poisoned) stops delivery.
        bool alive = true;
        ++pump_depth_;  // defer reap(): hooks may tear down THIS conn
        try {
          alive = c->pump_reads([&](BufferRef&& f) {
            if (!c->poisoned) on_frame(c, std::move(f));
          });
        } catch (const lsa::Error&) {
          // Transport-level corruption (oversized length): loud teardown.
          ++stats_.protocol_errors;
          alive = false;
        }
        --pump_depth_;
        if (!alive) fail_conn(c);
      } else if (!c->failed &&
                 (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        fail_conn(c);
      }
      reap();
    }
    reap();
    rethrow_pending();
    return static_cast<std::size_t>(n);
  }

  /// Client inbound delivery (validated protocol frames; the handshake
  /// welcome is consumed internally).
  void set_sink(std::function<void(const Inbound&)> sink) {
    sink_ = std::move(sink);
  }

  // --------------------------------------------- Transport (client role)

  void send_row(lsa::runtime::MsgType type, std::uint32_t sender,
                std::uint32_t receiver, std::uint64_t round,
                std::span<const lsa::field::Fp32::rep> payload) override {
    lsa::require(role_ == Role::kClient,
                 "socket: hub sends go through register_session's transport");
    if (conn_ == nullptr) {
      // Crashed-sender parity: a disconnected endpoint's sends vanish.
      ++stats_.frames_dropped;
      return;
    }
    enqueue_out(conn_,
                build_frame(pool_, type, sender, receiver, round, payload));
    reap();
    rethrow_pending();
  }

  void send(const lsa::runtime::Message& m) override {
    counters().note_copy(4 * m.payload.size());
    send_row(m.type, m.sender, m.receiver, m.round,
             std::span<const lsa::field::Fp32::rep>(m.payload));
  }

  // ------------------------------------------------- client lifecycle

  [[nodiscard]] bool connected() const { return conn_ != nullptr; }
  [[nodiscard]] bool handshaken() const { return handshaken_; }

  /// Pumps until the hub's welcome lands (handshake confirmed) or the
  /// deadline passes / the connection dies — both throw.
  void wait_handshake(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!handshaken_) {
      lsa::require(conn_ != nullptr,
                   "socket: connection closed during handshake");
      lsa::require(std::chrono::steady_clock::now() < deadline,
                   "socket: handshake timed out");
      poll(10);
    }
  }

  /// Drains the write queue (blocking, bounded). Used before an orderly
  /// disconnect so uploaded frames actually reach the hub.
  void flush_pending(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (conn_ != nullptr && conn_->wants_write()) {
      if (!conn_->flush()) {
        tx_fail(conn_);  // hub gone; keep the read side for a last result
        break;
      }
      if (conn_ == nullptr || !conn_->wants_write()) break;
      if (std::chrono::steady_clock::now() >= deadline) break;
      pollfd p{conn_->fd(), POLLOUT, 0};
      ::poll(&p, 1, 10);
    }
    reap();
  }

  /// Orderly close. The hub observes EOF and maps it to crash().
  void disconnect() {
    lsa::require(role_ == Role::kClient, "socket: disconnect is client-only");
    if (conn_ == nullptr) return;
    flush_pending(opts_.write_stall_timeout_ms);
    if (conn_ != nullptr) fail_conn(conn_);
    reap();
  }

  /// Fresh dial + session hello. The hub maps the re-handshake to
  /// revive(): future traffic flows, frames lost while down stay lost.
  void reconnect() {
    lsa::require(role_ == Role::kClient && conn_ == nullptr,
                 "socket: reconnect needs a disconnected client");
    dial_and_hello();
  }

  // ------------------------------------------------------ introspection

  [[nodiscard]] const SocketStats& stats() const { return stats_; }
  [[nodiscard]] BufferPool& pool() { return pool_; }

  /// Total queued outbound frames across a session's connections.
  [[nodiscard]] std::size_t queued_frames(std::uint64_t sid) const {
    std::size_t total = 0;
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) return 0;
    for (const Connection* c : it->second.conn_of) {
      if (c != nullptr) total += c->queue_depth();
    }
    return total;
  }

  /// Refcount of the frame at the head of one user's write queue (tests
  /// pin the one-buffer-many-queues broadcast ownership through this).
  [[nodiscard]] std::uint32_t queued_front_ref_count(std::uint64_t sid,
                                                     std::uint32_t user)
      const {
    const Connection* c = sessions_.at(sid).conn_of.at(user);
    lsa::require(c != nullptr && c->queue_depth() > 0,
                 "socket: no queued frame");
    return c->queued_front().ref_count();
  }

  /// Test hook: suspend the opportunistic flush after enqueue so queued
  /// frames stay observable (poll() still flushes on EPOLLOUT).
  void pause_writes(bool on) { pause_writes_ = on; }

 private:
  enum class Role { kHub, kClient };

  class HubTransport final : public lsa::runtime::Transport {
   public:
    HubTransport(SocketTransport* t, std::uint64_t sid) : t_(t), sid_(sid) {}
    void send_row(lsa::runtime::MsgType type, std::uint32_t sender,
                  std::uint32_t receiver, std::uint64_t round,
                  std::span<const lsa::field::Fp32::rep> payload) override {
      t_->hub_send_row(sid_, type, sender, receiver, round, payload);
    }
    void send(const lsa::runtime::Message& m) override {
      counters().note_copy(4 * m.payload.size());
      send_row(m.type, m.sender, m.receiver, m.round,
               std::span<const lsa::field::Fp32::rep>(m.payload));
    }
    void broadcast_row(lsa::runtime::MsgType type, std::uint32_t sender,
                       std::uint64_t round,
                       std::span<const lsa::field::Fp32::rep> payload,
                       std::uint32_t num_receivers) override {
      t_->hub_broadcast(sid_, type, sender, round, payload, num_receivers);
    }

   private:
    SocketTransport* t_;
    std::uint64_t sid_;
  };

  struct SessionState {
    std::uint32_t num_users = 0;
    SessionHooks hooks;
    std::vector<Connection*> conn_of;
    std::vector<std::uint8_t> ever_bound;
    /// Store-and-forward bins for users with no bound connection, flushed
    /// at (re)bind; bounded by park_cap, overflow drops-and-counts.
    std::vector<std::vector<BufferRef>> parked;
    std::size_t park_cap = 0;
    std::unique_ptr<HubTransport> adapter;
  };

  SocketTransport(Role role, const SocketAddr& addr,
                  const SocketOptions& opts, std::uint64_t session,
                  std::uint32_t user, std::uint32_t num_users)
      : role_(role),
        addr_(addr),
        opts_(opts),
        pool_(opts.pool_retain),
        session_(session),
        user_(user),
        num_users_(num_users) {
    if (role_ == Role::kHub) {
      listen_fd_ = bind_listen(addr_);
      loop_.add(listen_fd_, EPOLLIN, static_cast<std::uint64_t>(listen_fd_));
    } else {
      dial_and_hello();
    }
  }

  [[nodiscard]] ConnOptions conn_opts(std::uint32_t num_users) const {
    ConnOptions co;
    co.max_payload_elems = opts_.max_payload_elems;
    // The in-process session-capacity rule (ROADMAP Decisions): a sync
    // round needs at most 2N + 2 frames in flight per link, plus headroom.
    co.write_queue_cap = opts_.write_queue_cap != 0
                             ? opts_.write_queue_cap
                             : 2 * static_cast<std::size_t>(num_users) + 16;
    return co;
  }

  // -------------------------------------------------------- client dial

  void dial_and_hello() {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opts_.connect_retry_ms);
    int fd = -1;
    while ((fd = dial_once(addr_)) < 0) {
      lsa::require(std::chrono::steady_clock::now() < deadline,
                   "socket: connect timed out: " + addr_.to_string());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    set_nonblocking(fd);
    set_nodelay(fd, addr_);
    auto conn = std::make_unique<Connection>(fd, pool_,
                                             conn_opts(num_users_));
    conn->session = session_;
    conn->user = user_;
    conn_ = conn.get();
    handshaken_ = false;
    loop_.add(fd, EPOLLIN, static_cast<std::uint64_t>(fd));
    conns_.emplace(fd, std::move(conn));
    const lsa::field::Fp32::rep hello[4] = {kHelloMagic, kProtoVersion,
                                            user_, num_users_};
    enqueue_out(conn_, build_frame(pool_, lsa::runtime::MsgType::kSessionHello,
                                   user_, num_users_, session_,
                                   std::span<const lsa::field::Fp32::rep>(
                                       hello, 4)));
    reap();
  }

  // ------------------------------------------------------------- accept

  void accept_ready() {
    while (true) {
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient accept error: nothing more to take
      }
      set_nodelay(cfd, addr_);
      // Queue cap before binding only needs to hold the welcome; the real
      // cap is resolved at handshake when num_users is known.
      auto conn = std::make_unique<Connection>(cfd, pool_, conn_opts(8));
      loop_.add(cfd, EPOLLIN, static_cast<std::uint64_t>(cfd));
      conns_.emplace(cfd, std::move(conn));
      ++stats_.accepts;
    }
  }

  // ---------------------------------------------------- inbound routing

  void on_frame(Connection* c, BufferRef f) {
    if (role_ == Role::kClient) {
      on_client_frame(c, std::move(f));
      return;
    }
    if (!c->bound()) {
      handle_hello(c, std::move(f));
      return;
    }
    std::uint32_t sender = 0;
    std::uint32_t receiver = 0;
    std::memcpy(&sender, f.bytes().data() + 4, 4);
    std::memcpy(&receiver, f.bytes().data() + 8, 4);
    SessionState& ss = sessions_.at(c->session);
    if (sender != c->user) {
      proto_fail(c);  // spoofed sender
      return;
    }
    if (receiver == ss.num_users) {
      // For the server machine: validate end-to-end, deliver the view.
      Inbound in;
      in.buf = std::move(f);
      try {
        in.view = parse_frame(in.buf);
      } catch (const lsa::Error&) {
        proto_fail(c);
        return;
      }
      ++stats_.frames_delivered;
      invoke_hook([&] { ss.hooks.on_frame(in); });
      return;
    }
    if (receiver < ss.num_users) {
      // Relay: the pooled buffer moves straight from this connection's
      // decoder to the target's write queue (or parked bin) — zero-copy
      // forwarding. CRC stays end-to-end (the destination validates).
      ++stats_.frames_relayed;
      deliver_or_park(ss, receiver, std::move(f));
      return;
    }
    proto_fail(c);  // nonsense receiver
  }

  void handle_hello(Connection* c, BufferRef f) {
    FrameView v;
    try {
      v = parse_frame(f);
    } catch (const lsa::Error&) {
      proto_fail(c);
      return;
    }
    if (v.type != lsa::runtime::MsgType::kSessionHello ||
        v.payload.size() != 4 || v.payload[0] != kHelloMagic ||
        v.payload[1] != kProtoVersion) {
      proto_fail(c);
      return;
    }
    const std::uint64_t sid = v.round;
    const std::uint32_t user = v.sender;
    const auto sit = sessions_.find(sid);
    if (sit == sessions_.end()) {
      proto_fail(c);
      return;
    }
    SessionState& ss = sit->second;
    if (user >= ss.num_users || v.payload[2] != user ||
        v.payload[3] != ss.num_users) {
      proto_fail(c);
      return;
    }
    if (Connection* old = ss.conn_of[user]; old != nullptr && old != c) {
      // Latest-wins rebind: the stale connection's write queue drains like
      // a crash (tx_fail) and the link break surfaces as a real
      // disconnect+bind pair — the session must see the discontinuity
      // (frames flushed to the old link may be lost) even though the EOF
      // has not drained yet. The old conn stays bound so its read side
      // keeps draining: frames it flushed before closing are this same
      // user's valid earlier traffic. reap() compares conn_of by pointer,
      // so it will not fire a second on_disconnect.
      tx_fail(old);
      ss.conn_of[user] = nullptr;
      invoke_hook([&] { ss.hooks.on_disconnect(user); });
    }
    const bool revived = ss.ever_bound[user] != 0;
    ss.ever_bound[user] = 1;
    ss.conn_of[user] = c;
    c->session = sid;
    c->user = user;
    c->set_queue_cap(conn_opts(ss.num_users).write_queue_cap);
    if (revived) ++stats_.revives;
    const lsa::field::Fp32::rep ack[4] = {kHelloMagic, kProtoVersion, user,
                                          ss.num_users};
    enqueue_out(c, build_frame(pool_, lsa::runtime::MsgType::kSessionWelcome,
                               ss.num_users, user, sid,
                               std::span<const lsa::field::Fp32::rep>(ack,
                                                                      4)));
    // Hand over everything parked while the user was down, in arrival
    // order, right behind the welcome (FIFO: the client handshakes first).
    std::vector<BufferRef> backlog = std::move(ss.parked[user]);
    ss.parked[user].clear();
    for (std::size_t i = 0; i < backlog.size(); ++i) {
      if (c->failed || c->tx_dead) {
        // The rebind died before the handover completed (the peer can
        // close again immediately): re-park the remainder for the next
        // rebind instead of dropping valid store-and-forward traffic.
        for (std::size_t j = i; j < backlog.size(); ++j) {
          ss.parked[user].push_back(std::move(backlog[j]));
        }
        break;
      }
      enqueue_out(c, std::move(backlog[i]));
    }
    invoke_hook([&] { ss.hooks.on_bind(user, revived); });
  }

  void on_client_frame(Connection* c, BufferRef f) {
    Inbound in;
    in.buf = std::move(f);
    try {
      in.view = parse_frame(in.buf);
    } catch (const lsa::Error&) {
      proto_fail(c);
      return;
    }
    if (in.view.type == lsa::runtime::MsgType::kSessionWelcome) {
      if (in.view.payload.size() != 4 || in.view.payload[0] != kHelloMagic ||
          in.view.payload[2] != user_ || in.view.payload[3] != num_users_) {
        proto_fail(c);
        return;
      }
      handshaken_ = true;
      return;
    }
    ++stats_.frames_delivered;
    if (sink_) {
      invoke_hook([&] { sink_(in); });
    }
  }

  // --------------------------------------------------------- hub sends

  void hub_send_row(std::uint64_t sid, lsa::runtime::MsgType type,
                    std::uint32_t sender, std::uint32_t receiver,
                    std::uint64_t round,
                    std::span<const lsa::field::Fp32::rep> payload) {
    SessionState& ss = sessions_.at(sid);
    lsa::require(receiver < ss.num_users,
                 "socket: hub send to unknown receiver");
    deliver_or_park(ss, receiver,
                    build_frame(pool_, type, sender, receiver, round,
                                payload));
    reap();
  }

  void hub_broadcast(std::uint64_t sid, lsa::runtime::MsgType type,
                     std::uint32_t sender, std::uint64_t round,
                     std::span<const lsa::field::Fp32::rep> payload,
                     std::uint32_t num_receivers) {
    SessionState& ss = sessions_.at(sid);
    lsa::require(num_receivers <= ss.num_users,
                 "socket: broadcast fan-out out of range");
    // Frame ONCE; every live connection queues the same ref-counted
    // buffer (receiver field = broadcast marker, matching the in-process
    // router's shared-frame convention).
    BufferRef frame = build_frame(pool_, type, sender, 0xFFFFFFFFu, round,
                                  payload);
    for (std::uint32_t j = 0; j < num_receivers; ++j) {
      deliver_or_park(ss, j, frame);  // refcount bump, same block
    }
    reap();
  }

  /// Queues a frame on the user's live connection, or parks it (bounded)
  /// until the user (re)binds. Down users are store-and-forward targets,
  /// not black holes — see the lifecycle notes at the top of this file.
  void deliver_or_park(SessionState& ss, std::uint32_t user, BufferRef f) {
    Connection* c = ss.conn_of[user];
    if (c != nullptr && !c->failed && !c->tx_dead) {
      enqueue_out(c, std::move(f));
      return;
    }
    auto& bin = ss.parked[user];
    if (bin.size() >= ss.park_cap) {
      ++stats_.frames_dropped;  // parked bin full: same as a full mailbox
      return;
    }
    bin.push_back(std::move(f));
    ++stats_.frames_parked;
  }

  // ------------------------------------------------------ queue plumbing

  void enqueue_out(Connection* c, BufferRef frame) {
    if (c == nullptr || c->failed || c->tx_dead) {
      ++stats_.frames_dropped;
      return;
    }
    if (!c->try_enqueue(frame)) {
      // Bounded-queue backpressure: block like a sender on a full mailbox,
      // up to the stall timeout; a peer that cannot drain is crashed.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(opts_.write_stall_timeout_ms);
      while (true) {
        if (!c->flush()) {
          tx_fail(c);
          ++stats_.frames_dropped;
          return;
        }
        if (c->try_enqueue(frame)) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          fail_conn(c);
          ++stats_.frames_dropped;
          return;
        }
        pollfd p{c->fd(), POLLOUT, 0};
        ::poll(&p, 1, 10);
      }
    }
    ++stats_.frames_sent;
    if (!pause_writes_) {
      if (!c->flush()) {
        tx_fail(c);  // the frame just queued is counted by the drop
        return;
      }
    }
    update_interest(c);
  }

  void update_interest(Connection* c) {
    const bool want = c->wants_write();
    if (want == c->epollout_armed) return;
    c->epollout_armed = want;
    loop_.mod(c->fd(), EPOLLIN | (want ? EPOLLOUT : 0u),
              static_cast<std::uint64_t>(c->fd()));
  }

  // ----------------------------------------------------------- teardown

  void proto_fail(Connection* c) {
    ++stats_.protocol_errors;
    c->poisoned = true;  // stop delivering its frames
    fail_conn(c);
  }

  /// Write side died (peer closed first, or the kernel buffer stalled
  /// mid-flush). The queue drains like crash() — counted — but the read
  /// side keeps pumping: the peer's final flushed frames are valid
  /// protocol input ("delayed, not dropped"). The connection hard-fails
  /// when its EOF is drained.
  void tx_fail(Connection* c) {
    if (c->tx_dead || c->failed) return;
    c->tx_dead = true;
    retire_queue(c);
    update_interest(c);  // queue is empty now: disarm EPOLLOUT
  }

  /// A dead link's undelivered outbound frames re-park for the user's
  /// rebind (down users are store-and-forward targets, not black holes);
  /// frames the peer's kernel already swallowed are gone — that loss is
  /// what the session's unsafe-until-next-round wait rule absorbs.
  /// Unbound/client-side queues just drop-and-count, and a stale welcome
  /// is dropped too (the rebind mints a fresh one).
  void retire_queue(Connection* c) {
    std::deque<BufferRef> q = c->take_queue();
    if (role_ == Role::kHub && c->bound()) {
      if (const auto sit = sessions_.find(c->session);
          sit != sessions_.end() && c->user < sit->second.num_users) {
        SessionState& ss = sit->second;
        auto& bin = ss.parked[c->user];
        for (BufferRef& f : q) {
          std::uint16_t type = 0;
          std::memcpy(&type, f.bytes().data(), 2);
          if (type ==
                  static_cast<std::uint16_t>(
                      lsa::runtime::MsgType::kSessionWelcome) ||
              bin.size() >= ss.park_cap) {
            ++stats_.frames_dropped;
            continue;
          }
          bin.push_back(std::move(f));
          ++stats_.frames_parked;
        }
        return;
      }
    }
    stats_.frames_dropped += q.size();
  }

  /// Marks a connection dead. Destruction is deferred to reap() so a
  /// teardown triggered mid-pump (or mid-broadcast) never frees an object
  /// still on the stack.
  void fail_conn(Connection* c) {
    if (c->failed) return;
    c->failed = true;
    reap_.push_back(c->fd());
  }

  void reap() {
    if (pump_depth_ > 0) return;  // a hook may have failed the pumped conn
    while (!reap_.empty()) {
      const int fd = reap_.back();
      reap_.pop_back();
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Connection* c = it->second.get();
      retire_queue(c);  // undelivered frames re-park for the rebind
      ++stats_.disconnects;
      std::uint32_t user = Connection::kUnbound;
      std::uint64_t sid = 0;
      if (role_ == Role::kHub && c->bound()) {
        const auto sit = sessions_.find(c->session);
        if (sit != sessions_.end() &&
            sit->second.conn_of[c->user] == c) {
          sit->second.conn_of[c->user] = nullptr;
          user = c->user;
          sid = c->session;
        }
      }
      if (role_ == Role::kClient && c == conn_) {
        conn_ = nullptr;
        handshaken_ = false;
      }
      loop_.del(fd);
      conns_.erase(it);  // closes the fd
      if (user != Connection::kUnbound) {
        SessionState& ss = sessions_.at(sid);
        invoke_hook([&] { ss.hooks.on_disconnect(user); });
      }
    }
  }

  // -------------------------------------------------------- error defer

  /// Hook/sink exceptions must not unwind through the I/O machinery (a
  /// half-processed pump would corrupt connection state); they are parked
  /// and rethrown once the event settles.
  template <class F>
  void invoke_hook(F&& f) {
    try {
      f();
    } catch (...) {
      if (!pending_error_) pending_error_ = std::current_exception();
    }
  }

  void rethrow_pending() {
    if (pending_error_) {
      std::exception_ptr e = std::exchange(pending_error_, nullptr);
      std::rethrow_exception(e);
    }
  }

  Role role_;
  SocketAddr addr_;
  SocketOptions opts_;
  BufferPool pool_;
  EpollLoop loop_;
  int listen_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::vector<int> reap_;
  int pump_depth_ = 0;  ///< >0 while inside pump_reads: reap() defers
  std::map<std::uint64_t, SessionState> sessions_;  // hub role
  SocketStats stats_;
  bool pause_writes_ = false;
  std::exception_ptr pending_error_;

  // Client role.
  std::uint64_t session_ = 0;
  std::uint32_t user_ = 0;
  std::uint32_t num_users_ = 0;
  Connection* conn_ = nullptr;
  bool handshaken_ = false;
  std::function<void(const Inbound&)> sink_;
};

}  // namespace lsa::transport::socket
