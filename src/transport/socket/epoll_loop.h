// Thin RAII wrapper over a Linux epoll instance.
//
// The socket backend is a single-threaded event loop: one epoll fd watches
// the listener plus every connection, and the owning thread alternates
// between epoll_wait and frame processing. Interest is level-triggered —
// correctness over syscall count: a connection that still has readable
// bytes or queued writes simply shows up again on the next wait, so the
// processing code never needs the drain-to-EAGAIN discipline edge-triggered
// mode would force on every path.
#pragma once

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/error.h"

namespace lsa::transport::socket {

class EpollLoop {
 public:
  EpollLoop() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    lsa::require<lsa::Error>(epfd_ >= 0, "socket: epoll_create1 failed");
  }
  ~EpollLoop() {
    if (epfd_ >= 0) ::close(epfd_);
  }
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// `tag` comes back in epoll_event::data.u64 (we tag with the fd).
  void add(int fd, std::uint32_t events, std::uint64_t tag) {
    ctl(EPOLL_CTL_ADD, fd, events, tag);
  }
  void mod(int fd, std::uint32_t events, std::uint64_t tag) {
    ctl(EPOLL_CTL_MOD, fd, events, tag);
  }
  void del(int fd) {
    epoll_event ev{};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev) < 0 && errno != ENOENT &&
        errno != EBADF) {
      throw lsa::Error(std::string("socket: epoll_ctl(DEL): ") +
                       std::strerror(errno));
    }
  }

  /// Fills `out` with ready events; returns how many (0 on timeout).
  [[nodiscard]] int wait(std::span<epoll_event> out, int timeout_ms) {
    while (true) {
      const int n = ::epoll_wait(epfd_, out.data(),
                                 static_cast<int>(out.size()), timeout_ms);
      if (n >= 0) return n;
      if (errno == EINTR) continue;
      throw lsa::Error(std::string("socket: epoll_wait: ") +
                       std::strerror(errno));
    }
  }

 private:
  void ctl(int op, int fd, std::uint32_t events, std::uint64_t tag) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epfd_, op, fd, &ev) < 0) {
      throw lsa::Error(std::string("socket: epoll_ctl: ") +
                       std::strerror(errno));
    }
  }

  int epfd_ = -1;
};

}  // namespace lsa::transport::socket
