// Socket endpoint addressing for the real-socket transport backend.
//
// Two address families, one URL-ish syntax:
//
//   tcp://host:port    TCP over loopback or a real NIC (host resolved via
//                      getaddrinfo; port 0 binds an ephemeral port, which
//                      listeners report back via local_tcp_port)
//   uds://path         Unix-domain stream socket at `path` (the scheme's
//                      "//" is followed by an absolute or relative path, so
//                      uds:///tmp/x.sock names /tmp/x.sock)
//
// This header owns every raw socket syscall the backend needs — parse,
// listen, dial, accept, O_NONBLOCK / TCP_NODELAY fiddling — so the event
// loop and connection state machines above it never see errno directly:
// failures surface as lsa::Error with the syscall and strerror text.
#pragma once

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/error.h"

namespace lsa::transport::socket {

struct SocketAddr {
  enum class Kind { kTcp, kUds };

  Kind kind = Kind::kTcp;
  std::string host;         ///< TCP only
  std::uint16_t port = 0;   ///< TCP only
  std::string path;         ///< UDS only

  /// Parses "tcp://host:port" or "uds://path". Throws ConfigError on any
  /// malformed input (unknown scheme, missing port, empty path).
  [[nodiscard]] static SocketAddr parse(const std::string& url) {
    SocketAddr a;
    if (url.rfind("tcp://", 0) == 0) {
      a.kind = Kind::kTcp;
      const std::string rest = url.substr(6);
      const auto colon = rest.rfind(':');
      lsa::require<lsa::ConfigError>(colon != std::string::npos && colon > 0,
                                     "socket: tcp address needs host:port");
      a.host = rest.substr(0, colon);
      const std::string port_str = rest.substr(colon + 1);
      char* end = nullptr;
      const unsigned long p = std::strtoul(port_str.c_str(), &end, 10);
      lsa::require<lsa::ConfigError>(
          end != nullptr && *end == '\0' && !port_str.empty() && p <= 65535,
          "socket: bad tcp port '" + port_str + "'");
      a.port = static_cast<std::uint16_t>(p);
      return a;
    }
    if (url.rfind("uds://", 0) == 0) {
      a.kind = Kind::kUds;
      a.path = url.substr(6);
      lsa::require<lsa::ConfigError>(!a.path.empty(),
                                     "socket: empty uds path");
      lsa::require<lsa::ConfigError>(
          a.path.size() < sizeof(sockaddr_un{}.sun_path),
          "socket: uds path too long");
      return a;
    }
    throw lsa::ConfigError("socket: address must start with tcp:// or uds://"
                           " (got '" + url + "')");
  }

  [[nodiscard]] std::string to_string() const {
    if (kind == Kind::kUds) return "uds://" + path;
    return "tcp://" + host + ":" + std::to_string(port);
  }
};

namespace detail {

[[noreturn]] inline void throw_errno(const std::string& what, int err) {
  throw lsa::Error("socket: " + what + ": " + std::strerror(err));
}

}  // namespace detail

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    detail::throw_errno("fcntl(O_NONBLOCK)", errno);
  }
}

/// Disables Nagle on TCP sockets (frame latency matters more than tinygram
/// coalescing: one protocol frame is one logical message). No-op for UDS.
inline void set_nodelay(int fd, const SocketAddr& addr) {
  if (addr.kind != SocketAddr::Kind::kTcp) return;
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    detail::throw_errno("setsockopt(TCP_NODELAY)", errno);
  }
}

/// Creates a non-blocking listening socket bound to `addr`. For UDS, any
/// stale socket file at the path is unlinked first (daemon restarts).
[[nodiscard]] inline int bind_listen(const SocketAddr& addr,
                                     int backlog = 128) {
  int fd = -1;
  if (addr.kind == SocketAddr::Kind::kUds) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) detail::throw_errno("socket(AF_UNIX)", errno);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(addr.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const int err = errno;
      ::close(fd);
      detail::throw_errno("bind(" + addr.path + ")", err);
    }
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(addr.port);
    const int rc =
        ::getaddrinfo(addr.host.c_str(), port_str.c_str(), &hints, &res);
    lsa::require<lsa::Error>(rc == 0 && res != nullptr,
                            "socket: getaddrinfo(" + addr.host +
                                "): " + std::string(::gai_strerror(rc)));
    fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                  res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      detail::throw_errno("socket(AF_INET)", errno);
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, res->ai_addr, res->ai_addrlen) < 0) {
      const int err = errno;
      ::freeaddrinfo(res);
      ::close(fd);
      detail::throw_errno("bind(" + addr.to_string() + ")", err);
    }
    ::freeaddrinfo(res);
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    detail::throw_errno("listen(" + addr.to_string() + ")", err);
  }
  set_nonblocking(fd);
  return fd;
}

/// The port a TCP listener actually bound (resolves port 0 to the kernel's
/// ephemeral pick — how tests avoid fixed-port collisions).
[[nodiscard]] inline std::uint16_t local_tcp_port(int listen_fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&ss), &len) < 0) {
    detail::throw_errno("getsockname", errno);
  }
  if (ss.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&ss)->sin_port);
  }
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&ss)->sin6_port);
  }
  throw lsa::Error("socket: getsockname: not a TCP socket");
}

/// One blocking connect attempt. Returns the connected fd (still blocking;
/// the caller flips it non-blocking once adopted by the event loop), or -1
/// when the listener is not there yet (ECONNREFUSED / ENOENT — the caller's
/// retry loop handles daemon startup races). Any other failure throws.
[[nodiscard]] inline int dial_once(const SocketAddr& addr) {
  int fd = -1;
  int rc = -1;
  if (addr.kind == SocketAddr::Kind::kUds) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) detail::throw_errno("socket(AF_UNIX)", errno);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(addr.port);
    const int gai =
        ::getaddrinfo(addr.host.c_str(), port_str.c_str(), &hints, &res);
    lsa::require<lsa::Error>(gai == 0 && res != nullptr,
                            "socket: getaddrinfo(" + addr.host +
                                "): " + std::string(::gai_strerror(gai)));
    fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                  res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      detail::throw_errno("socket(AF_INET)", errno);
    }
    rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
  }
  if (rc == 0) return fd;
  const int err = errno;
  ::close(fd);
  if (err == ECONNREFUSED || err == ENOENT || err == EAGAIN) return -1;
  detail::throw_errno("connect(" + addr.to_string() + ")", err);
}

}  // namespace lsa::transport::socket
