// Incremental wire-frame reassembly from a TCP/UDS byte stream.
//
// A stream socket tears frames arbitrarily: a read may end mid-header,
// mid-CRC, mid-payload, or deliver several coalesced frames at once. The
// decoder turns that byte soup back into pooled frame buffers:
//
//   * the 28-byte header is staged in a fixed array until complete — a torn
//     header costs no pool traffic;
//   * the header's payload_elems field then sizes ONE BufferPool acquire
//     for the whole frame, and payload bytes stream straight into it (the
//     receive-side single copy: kernel -> pooled frame);
//   * a bounded max_payload_elems rejects garbage lengths loudly
//     (ProtocolError) instead of waiting forever for gigabytes that will
//     never arrive — the "never hangs or over-reads" contract fuzzed by
//     tests/fuzz_wire_test.cpp.
//
// The decoder validates LENGTH only. CRC and field-canonicality checks stay
// where they already live (parse_frame / read_header_checked), applied by
// whoever consumes the reassembled frame — end-to-end, not per hop.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>

#include "common/error.h"
#include "runtime/wire.h"
#include "transport/buffer_pool.h"

namespace lsa::transport::socket {

class FrameDecoder {
 public:
  FrameDecoder(BufferPool& pool, std::size_t max_payload_elems)
      : pool_(&pool), max_payload_elems_(max_payload_elems) {}

  /// Feeds a chunk of stream bytes; calls sink(BufferRef&&) once per
  /// completed frame, in stream order. Throws ProtocolError on an oversized
  /// length field (the connection is beyond repair — tear it down).
  template <class Sink>
  void feed(std::span<const std::uint8_t> chunk, Sink&& sink) {
    while (true) {
      if (!frame_) {
        if (chunk.empty()) return;
        const std::size_t take =
            std::min(lsa::runtime::kHeaderBytes - header_have_, chunk.size());
        std::memcpy(header_.data() + header_have_, chunk.data(), take);
        header_have_ += take;
        chunk = chunk.subspan(take);
        if (header_have_ < lsa::runtime::kHeaderBytes) return;
        begin_frame();
      }
      const std::size_t take =
          std::min(frame_need_ - frame_have_, chunk.size());
      if (take != 0) {
        // copy-ok: THE single inbound wire->buffer copy (socket bytes land
        // directly in the pooled frame; no staging vector exists).
        std::memcpy(frame_.bytes().data() + frame_have_, chunk.data(), take);
        frame_have_ += take;
        chunk = chunk.subspan(take);
      }
      if (frame_have_ < frame_need_) return;  // chunk exhausted mid-payload
      emit(sink);
    }
  }

  /// Remaining bytes of the in-flight frame, as a writable target for
  /// direct reads (kernel -> pooled buffer without an intermediate chunk
  /// buffer). Empty when between frames; pair with commit_direct.
  [[nodiscard]] std::span<std::uint8_t> direct_target() {
    if (!frame_) return {};
    return frame_.bytes().subspan(frame_have_, frame_need_ - frame_have_);
  }

  /// Accounts `n` bytes read straight into direct_target().
  template <class Sink>
  void commit_direct(std::size_t n, Sink&& sink) {
    frame_have_ += n;
    if (frame_have_ == frame_need_) emit(sink);
  }

  /// Bytes staged but not yet emitted (torn header + partial frame).
  [[nodiscard]] std::size_t buffered_bytes() const {
    return frame_ ? frame_have_ : header_have_;
  }
  [[nodiscard]] bool mid_frame() const { return static_cast<bool>(frame_); }
  [[nodiscard]] std::uint64_t frames_out() const { return frames_out_; }

  /// Discards any partial state (reconnect reuses the decoder fresh).
  void reset() {
    header_have_ = 0;
    frame_.reset();
    frame_have_ = frame_need_ = 0;
  }

 private:
  void begin_frame() {
    std::uint32_t payload_elems = 0;
    std::memcpy(&payload_elems, header_.data() + 20, 4);
    lsa::require<lsa::ProtocolError>(
        payload_elems <= max_payload_elems_,
        "socket: oversized frame (" + std::to_string(payload_elems) +
            " elems > max " + std::to_string(max_payload_elems_) + ")");
    frame_need_ = lsa::runtime::kHeaderBytes + 4ull * payload_elems;
    frame_ = pool_->acquire(frame_need_);
    // copy-ok: 28-byte header replay into the just-acquired frame (the
    // header was necessarily staged to learn the frame length).
    std::memcpy(frame_.bytes().data(), header_.data(),
                lsa::runtime::kHeaderBytes);
    frame_have_ = lsa::runtime::kHeaderBytes;
    header_have_ = 0;
  }

  template <class Sink>
  void emit(Sink&& sink) {
    ++frames_out_;
    sink(std::move(frame_));
    frame_.reset();
    frame_have_ = frame_need_ = 0;
  }

  BufferPool* pool_;
  std::size_t max_payload_elems_;
  std::array<std::uint8_t, lsa::runtime::kHeaderBytes> header_{};
  std::size_t header_have_ = 0;
  BufferRef frame_;
  std::size_t frame_have_ = 0;
  std::size_t frame_need_ = 0;
  std::uint64_t frames_out_ = 0;
};

}  // namespace lsa::transport::socket
