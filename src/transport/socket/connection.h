// Per-connection state machine: one non-blocking stream socket, a frame
// decoder on the read side, and a bounded queue of pooled frames on the
// write side.
//
// Send path is zero-copy: callers enqueue the frame's BufferRef and flush()
// gathers queued frames into one writev straight from the pooled buffers —
// no staging buffer, no payload memcpy, so the global payload-copy counter
// stays untouched (the counter-enforced claim bench_socket gates on).
// Broadcasts enqueue the SAME BufferRef on many connections; the refcount
// is the only per-receiver cost and the last queue to drain recycles the
// block.
//
// Read path streams into the FrameDecoder; when a frame is mid-flight and
// large, reads land directly in its pooled buffer (direct_target) instead
// of bouncing through the chunk buffer.
//
// The queue is bounded (write_queue_cap). Enqueueing past the bound is the
// transport's backpressure signal — SocketTransport maps it onto the same
// blocking-sender contract the in-process mailboxes use, with a stall
// timeout that declares the peer crashed.
#pragma once

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "transport/buffer_pool.h"
#include "transport/socket/frame_decoder.h"

namespace lsa::transport::socket {

struct ConnOptions {
  std::size_t max_payload_elems = 1u << 24;
  std::size_t write_queue_cap = 256;
  std::size_t read_chunk_bytes = 16 * 1024;
  /// Reads bypass the chunk buffer once a frame's remaining payload is at
  /// least this large (big frames stream straight into their pooled buffer).
  std::size_t direct_read_threshold = 4 * 1024;
};

class Connection {
 public:
  static constexpr std::uint32_t kUnbound = 0xFFFFFFFFu;

  Connection(int fd, BufferPool& pool, const ConnOptions& opts)
      : fd_(fd),
        opts_(opts),
        decoder_(pool, opts.max_payload_elems),
        rbuf_(opts.read_chunk_bytes) {}
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

  /// Reads until EAGAIN, feeding completed frames to sink(BufferRef&&).
  /// Returns false when the peer is gone (EOF or a fatal socket error);
  /// may throw ProtocolError from the decoder (oversized frame).
  template <class Sink>
  [[nodiscard]] bool pump_reads(Sink&& sink) {
    while (true) {
      ssize_t n = 0;
      const auto direct = decoder_.direct_target();
      if (direct.size() >= opts_.direct_read_threshold) {
        n = ::read(fd_, direct.data(), direct.size());
        if (n > 0) {
          bytes_in_ += static_cast<std::uint64_t>(n);
          decoder_.commit_direct(static_cast<std::size_t>(n), sink);
          continue;
        }
      } else {
        n = ::read(fd_, rbuf_.data(), rbuf_.size());
        if (n > 0) {
          bytes_in_ += static_cast<std::uint64_t>(n);
          decoder_.feed({rbuf_.data(), static_cast<std::size_t>(n)}, sink);
          continue;
        }
      }
      if (n == 0) return false;  // orderly EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Appends a frame to the bounded write queue. False = queue full (the
  /// caller applies the backpressure contract).
  [[nodiscard]] bool try_enqueue(BufferRef frame) {
    if (outq_.size() >= opts_.write_queue_cap) return false;
    outq_.push_back(std::move(frame));
    if (outq_.size() > max_queue_depth_) max_queue_depth_ = outq_.size();
    return true;
  }

  /// writev-gathers queued frames until the queue drains or the kernel
  /// buffer fills. Returns false on a fatal error (peer gone).
  [[nodiscard]] bool flush() {
    while (!outq_.empty()) {
      iovec iov[kMaxIov];
      int niov = 0;
      std::size_t off = write_off_;
      for (auto it = outq_.begin(); it != outq_.end() && niov < kMaxIov;
           ++it) {
        const auto bytes = it->bytes();
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(bytes.data()) + off;
        iov[niov].iov_len = bytes.size() - off;
        ++niov;
        off = 0;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(niov);
      // MSG_NOSIGNAL: a peer that closed mid-round must surface as EPIPE
      // (mapped to crash()), not kill the process with SIGPIPE.
      const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      bytes_out_ += static_cast<std::uint64_t>(w);
      std::size_t left = static_cast<std::size_t>(w);
      while (left > 0) {
        const std::size_t front_rest =
            outq_.front().size_bytes() - write_off_;
        if (left >= front_rest) {
          left -= front_rest;
          outq_.pop_front();  // last ref may recycle the block here
          write_off_ = 0;
          ++frames_out_;
        } else {
          write_off_ += left;
          left = 0;
        }
      }
    }
    return true;
  }

  [[nodiscard]] bool wants_write() const { return !outq_.empty(); }
  [[nodiscard]] std::size_t queue_depth() const { return outq_.size(); }

  /// Drops every queued frame; returns how many were discarded.
  std::size_t drop_queue() {
    const std::size_t n = outq_.size();
    outq_.clear();
    write_off_ = 0;
    return n;
  }

  /// Surrenders the queued frames (connection teardown re-parks them for
  /// the user's rebind). A partially-written front frame restarts from
  /// byte 0 — the peer that saw the partial bytes is gone.
  [[nodiscard]] std::deque<BufferRef> take_queue() {
    write_off_ = 0;
    return std::move(outq_);
  }

  [[nodiscard]] std::uint64_t bytes_in() const { return bytes_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const { return bytes_out_; }
  [[nodiscard]] std::uint64_t frames_out() const { return frames_out_; }
  [[nodiscard]] std::uint64_t frames_in() const {
    return decoder_.frames_out();
  }
  [[nodiscard]] std::size_t max_queue_depth() const {
    return max_queue_depth_;
  }
  void set_queue_cap(std::size_t cap) { opts_.write_queue_cap = cap; }

  /// Peek at a queued frame (tests pin the one-buffer-many-queues refcount
  /// through this).
  [[nodiscard]] const BufferRef& queued_front() const {
    return outq_.front();
  }

  // Session binding (hub side) and teardown bookkeeping, managed by
  // SocketTransport. The two sides of a stream die independently: a write
  // failure (peer closed first) makes the connection unroutable for NEW
  // outbound traffic (tx_dead) but its read side keeps draining — the
  // peer's final flushed frames (an upload before an orderly disconnect)
  // are valid protocol input ("delayed, not dropped"). `failed` is the
  // hard end: EOF drained or protocol violation, queued for reap.
  std::uint64_t session = 0;
  std::uint32_t user = kUnbound;
  bool failed = false;
  bool tx_dead = false;         ///< write side dead; reads still drain
  bool poisoned = false;        ///< protocol violation: drop its frames
  bool epollout_armed = false;  ///< current EPOLLOUT interest (dedups mod)
  [[nodiscard]] bool bound() const { return user != kUnbound; }

 private:
  static constexpr int kMaxIov = 8;

  int fd_;
  ConnOptions opts_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> rbuf_;
  std::deque<BufferRef> outq_;
  std::size_t write_off_ = 0;  ///< bytes of outq_.front() already written
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::uint64_t frames_out_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace lsa::transport::socket
