// Thread-safe MPSC message plane: sharded per-receiver mailboxes over
// pooled zero-copy frames.
//
// Design (the concurrent counterpart of runtime::Router):
//
//   * one bounded mailbox per receiver — senders are many (MPSC), the
//     receiver's consumer is one at a time, and the per-mailbox mutex gives
//     per-(sender, receiver) FIFO for free because each sender enqueues its
//     own frames in program order;
//   * backpressure: send blocks on a not-full condition when a mailbox is
//     at capacity (a crashed receiver unblocks its senders — frames to the
//     dead are dropped, not queued);
//   * zero-copy: send_row frames straight from the caller's row view into
//     a pooled ref-counted buffer (transport/frame.h); try_recv validates
//     in place and hands back a payload span aliasing that buffer;
//   * fault semantics match the legacy Router: sends from crashed parties
//     are dropped silently, frames addressed to a party that crashes are
//     discarded undelivered, revive() re-admits, and an optional fault
//     hook may mutate or drop any frame before it is enqueued
//     (fuzz/corruption testing — parse_frame throws on delivery).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.h"
#include "runtime/transport.h"
#include "runtime/wire.h"
#include "transport/buffer_pool.h"
#include "transport/frame.h"

namespace lsa::transport {

/// A delivered frame: the validated view plus the buffer keeping it alive.
struct Inbound {
  BufferRef buf;
  FrameView view;
};

class ConcurrentRouter final : public lsa::runtime::Transport {
 public:
  /// num_parties includes the server; party ids are 0..num_parties-1.
  /// queue_capacity bounds each receiver's mailbox (backpressure); 0 picks
  /// a default deep enough for a full offline fan-in from every peer.
  explicit ConcurrentRouter(std::size_t num_parties,
                            std::size_t queue_capacity = 0)
      : capacity_(queue_capacity == 0
                      ? std::max<std::size_t>(64, 4 * num_parties)
                      : queue_capacity),
        down_(num_parties) {
    boxes_.reserve(num_parties);
    for (std::size_t i = 0; i < num_parties; ++i) {
      boxes_.push_back(std::make_unique<Mailbox>());
    }
  }

  [[nodiscard]] std::size_t num_parties() const { return boxes_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }
  [[nodiscard]] BufferPool& pool() { return pool_; }

  // ------------------------------------------------------------- liveness

  /// Marks a party crashed: its future sends are dropped, its undelivered
  /// mailbox is discarded, and senders blocked on its mailbox unblock.
  void crash(std::size_t party) {
    check_party(party);
    down_[party].store(1, std::memory_order_relaxed);
    Mailbox& box = *boxes_[party];
    std::deque<Entry> discarded;
    {
      std::lock_guard<std::mutex> lk(box.mu);
      discarded.swap(box.q);
    }
    dropped_.fetch_add(discarded.size(), std::memory_order_relaxed);
    box.not_full.notify_all();
    // Consumers blocked in recv_wait on this receiver must observe the
    // crash immediately, not at timeout granularity.
    box.not_empty.notify_all();
  }

  void revive(std::size_t party) {
    check_party(party);
    down_[party].store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_down(std::size_t party) const {
    check_party(party);
    return down_[party].load(std::memory_order_relaxed) != 0;
  }

  // ---------------------------------------------------------------- faults

  /// Called on every frame's bytes before enqueue (the buffer is exclusive
  /// at that point); may mutate them (corruption testing) or return false
  /// to drop the frame (lossy-link testing). Set before traffic starts.
  using FaultHook = std::function<bool(std::span<std::uint8_t>)>;
  void set_fault_hook(FaultHook hook) { hook_ = std::move(hook); }

  // ----------------------------------------------------------------- send

  /// Zero-copy send: frames the row view straight into a pooled buffer.
  void send_row(lsa::runtime::MsgType type, std::uint32_t sender,
                std::uint32_t receiver, std::uint64_t round,
                std::span<const lsa::field::Fp32::rep> payload) override {
    check_party(sender);
    check_party(receiver);
    if (is_down(sender)) return;
    BufferRef frame =
        build_frame(pool_, type, sender, receiver, round, payload);
    enqueue(receiver, std::move(frame));
  }

  /// Legacy adapter: frames a materialized Message (one counted copy out
  /// of the intermediate payload vector).
  void send(const lsa::runtime::Message& m) override {
    counters().note_copy(4 * m.payload.size());
    send_row(m.type, m.sender, m.receiver, m.round,
             std::span<const lsa::field::Fp32::rep>(m.payload));
  }

  /// Receiver field of shared broadcast frames (handlers dispatch on their
  /// own mailbox, never on the header's receiver).
  static constexpr std::uint32_t kBroadcastReceiver = 0xFFFFFFFFu;

  /// Broadcast: the payload is framed ONCE into one ref-counted buffer
  /// (receiver field = kBroadcastReceiver) shared across every live
  /// mailbox — no per-receiver payload writes or CRC passes.
  void broadcast_row(lsa::runtime::MsgType type, std::uint32_t sender,
                     std::uint64_t round,
                     std::span<const lsa::field::Fp32::rep> payload,
                     std::uint32_t num_receivers) override {
    check_party(sender);
    lsa::require(num_receivers <= boxes_.size(),
                 "router: broadcast fan-out out of range");
    if (is_down(sender)) return;
    BufferRef frame = build_frame(pool_, type, sender, kBroadcastReceiver,
                                  round, payload);
    if (hook_ && !hook_(frame.bytes())) {
      dropped_.fetch_add(num_receivers, std::memory_order_relaxed);
      return;
    }
    for (std::uint32_t j = 0; j < num_receivers; ++j) {
      enqueue_built(j, frame);  // shared ref, one buffer
    }
  }

  /// Re-injects a prebuilt frame (receiver read from its header bytes).
  /// No sender-liveness check — the caller owns that policy.
  void send_frame(BufferRef frame) {
    lsa::require<lsa::ProtocolError>(
        frame && frame.size_bytes() >= lsa::runtime::kHeaderBytes,
        "router: undersized frame");
    std::uint32_t receiver = 0;
    std::memcpy(&receiver, frame.bytes().data() + 8, 4);
    check_party(receiver);
    enqueue(receiver, std::move(frame));
  }

  // ----------------------------------------------------------------- recv

  /// Pops and validates the receiver's next frame. Returns false when the
  /// mailbox is empty (or the receiver is down). Throws ProtocolError on a
  /// corrupted frame — the frame is consumed either way.
  [[nodiscard]] bool try_recv(std::size_t receiver, Inbound& out) {
    check_party(receiver);
    if (is_down(receiver)) return false;
    Mailbox& box = *boxes_[receiver];
    Entry e;
    {
      std::lock_guard<std::mutex> lk(box.mu);
      if (box.q.empty()) return false;
      e = std::move(box.q.front());
      box.q.pop_front();
    }
    box.not_full.notify_one();
    out.buf = std::move(e.buf);
    out.view = parse_frame(out.buf);  // throws on corruption
    delivered_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Blocking variant: waits up to `timeout` for a frame. Returns false on
  /// timeout or when the receiver is down.
  [[nodiscard]] bool recv_wait(std::size_t receiver, Inbound& out,
                               std::chrono::milliseconds timeout) {
    check_party(receiver);
    Mailbox& box = *boxes_[receiver];
    {
      std::unique_lock<std::mutex> lk(box.mu);
      if (!box.not_empty.wait_for(lk, timeout, [&] {
            return !box.q.empty() || is_down(receiver);
          })) {
        return false;
      }
    }
    return try_recv(receiver, out);
  }

  /// True when every mailbox is empty.
  [[nodiscard]] bool idle() const {
    for (const auto& box : boxes_) {
      std::lock_guard<std::mutex> lk(box->mu);
      if (!box->q.empty()) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t frames_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// High-water mark of any mailbox depth (bounded by queue_capacity).
  [[nodiscard]] std::size_t max_queue_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    BufferRef buf;
  };
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Entry> q;
  };

  void check_party(std::size_t p) const {
    lsa::require(p < boxes_.size(), "router: endpoint out of range");
  }

  void enqueue(std::size_t receiver, BufferRef frame) {
    if (hook_ && !hook_(frame.bytes())) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    enqueue_built(receiver, std::move(frame));
  }

  /// Post-hook enqueue; broadcast fan-out shares one frame across calls.
  void enqueue_built(std::size_t receiver, BufferRef frame) {
    Mailbox& box = *boxes_[receiver];
    {
      std::unique_lock<std::mutex> lk(box.mu);
      box.not_full.wait(lk, [&] {
        return box.q.size() < capacity_ || is_down(receiver);
      });
      if (is_down(receiver)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      box.q.push_back(Entry{std::move(frame)});
      const std::size_t depth = box.q.size();
      std::size_t seen = max_depth_.load(std::memory_order_relaxed);
      while (depth > seen &&
             !max_depth_.compare_exchange_weak(seen, depth,
                                               std::memory_order_relaxed)) {
      }
    }
    box.not_empty.notify_one();
    sent_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t capacity_;
  std::vector<std::atomic<std::uint8_t>> down_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  BufferPool pool_;
  FaultHook hook_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> max_depth_{0};
};

}  // namespace lsa::transport
