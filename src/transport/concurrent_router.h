// Thread-safe MPSC message plane: sharded per-receiver mailboxes over
// pooled zero-copy frames.
//
// Design (the concurrent counterpart of runtime::Router):
//
//   * one bounded mailbox per receiver — senders are many (MPSC), the
//     receiver's consumer is one at a time. Two interchangeable mailbox
//     strategies exist behind one contract (identical ordering, liveness,
//     and counter semantics — tests pin them bit-identical):
//       - kLockFreeRing (default): a bounded lock-free MPSC ring
//         (transport/mpsc_ring.h — Vyukov slot sequencing, exact logical
//         capacity, cached-head producers) with a futex-style parked-waiter
//         fallback, so the contended fast path never takes a lock while
//         recv_wait and backpressured send still SLEEP instead of spin;
//       - kMutexDeque: the original mutex + condition_variable + deque
//         mailbox, kept as the tested reference implementation;
//   * per-link FIFO: each sender enqueues its own frames in program order —
//     the ring's ticket claims (or the deque's lock) order them per link;
//   * backpressure: send blocks on a not-full condition when a mailbox is
//     at capacity (a crashed receiver unblocks its senders — frames to the
//     dead are dropped, not queued);
//   * zero-copy: send_row frames straight from the caller's row view into
//     a pooled ref-counted buffer (transport/frame.h); try_recv validates
//     in place and hands back a payload span aliasing that buffer;
//   * fault semantics match the legacy Router: sends from crashed parties
//     are dropped silently, frames addressed to a party that crashes are
//     discarded undelivered, revive() re-admits, and an optional fault
//     hook may mutate or drop any frame before it is enqueued
//     (fuzz/corruption testing — parse_frame throws on delivery).
//
// Crash/revive fence: crash(party) must leave the mailbox empty AND keep it
// empty until revive(), even against senders that passed their liveness
// check concurrently with the crash (the frame they carry predates the
// crash and must not survive into the revived session). Every enqueue
// therefore passes through a per-mailbox `pushers` gate: the sender enters
// the gate, re-checks down (seq_cst, Dekker-paired with crash's
// down-store / gate-load), and only then enqueues; crash() stores down,
// then drains the mailbox until it is empty and the gate is idle. At least
// one side of the pair always observes the other, so a late frame is
// either caught by the drain or dropped (and counted in frames_dropped)
// by its own sender — post-revive mailboxes provably start empty.
//
// Parked-waiter invariant (both strategies): every wait predicate reads
// state that is either mutated under the mailbox mutex (the deque) or
// re-checked with seq_cst fences (ring occupancy, the down flag, whose
// store precedes the waker's notify). Wakers that observe a nonzero
// waiting count notify while holding the mutex, so a waiter is never
// between its predicate evaluation and the wait when the notification
// fires — the lost-wakeup window of notify-outside-lock is closed by
// construction (hammered by tests/mailbox_stress_test.cpp under TSAN).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/thread_annotations.h"
#include "runtime/transport.h"
#include "runtime/wire.h"
#include "transport/buffer_pool.h"
#include "transport/frame.h"
#include "transport/mpsc_ring.h"

namespace lsa::transport {

/// A delivered frame: the validated view plus the buffer keeping it alive.
struct Inbound {
  BufferRef buf;
  FrameView view;
};

/// Which mailbox engine a ConcurrentRouter runs on. The ring is the
/// production path; the mutex deque is the reference both are tested
/// against (serial == parallel == mutex-reference, bit-identical).
enum class MailboxStrategy : std::uint8_t { kLockFreeRing, kMutexDeque };

[[nodiscard]] constexpr const char* to_string(MailboxStrategy s) {
  return s == MailboxStrategy::kLockFreeRing ? "lock-free-ring"
                                             : "mutex-deque";
}

namespace detail {
inline std::atomic<MailboxStrategy>& default_mailbox_strategy_slot() {
  static std::atomic<MailboxStrategy> s{MailboxStrategy::kLockFreeRing};
  return s;
}
}  // namespace detail

/// Process-wide default for routers constructed without an explicit
/// strategy (benches/tests flip it to drive both engines through the same
/// higher-level code).
[[nodiscard]] inline MailboxStrategy default_mailbox_strategy() {
  // relaxed: configuration knob, set before routers/traffic exist.
  return detail::default_mailbox_strategy_slot().load(
      std::memory_order_relaxed);
}
inline void set_default_mailbox_strategy(MailboxStrategy s) {
  // relaxed: configuration knob, set before routers/traffic exist.
  detail::default_mailbox_strategy_slot().store(s,
                                                std::memory_order_relaxed);
}

class ConcurrentRouter final : public lsa::runtime::Transport {
 public:
  /// Headroom resolve-time defaults add on top of a derived fan-in bound —
  /// THE shared constant: server::SessionBase::resolve_queue_capacity adds
  /// the same headroom to its per-session-type bounds, and the router's own
  /// fallback below must agree with the sync session's resolution (asserted
  /// by static_assert in server/aggregation_server.h and by
  /// tests/transport_test.cpp).
  static constexpr std::size_t kCapacityHeadroom = 14;

  /// Default mailbox bound for a router of `num_parties` endpoints (N users
  /// + 1 server): the sync session's worst-case single-phase fan-in
  /// (2N + 2) plus kCapacityHeadroom — identical to what
  /// server::SessionBase::resolve_queue_capacity(0, Session::fanin_bound(N))
  /// derives, so a bare router and a server-owned one agree.
  [[nodiscard]] static constexpr std::size_t default_capacity(
      std::size_t num_parties) {
    const std::size_t users = num_parties > 0 ? num_parties - 1 : 0;
    return 2 * users + 2 + kCapacityHeadroom;
  }

  /// Frame-buffer freelist bound when none is configured (per router).
  static constexpr std::size_t kDefaultPoolRetain = 256;

  /// num_parties includes the server; party ids are 0..num_parties-1.
  /// queue_capacity bounds each receiver's mailbox (backpressure); 0 picks
  /// the derived default_capacity(num_parties). pool_retain bounds the
  /// frame-buffer freelist (0 = kDefaultPoolRetain) — high-fan-in hosts
  /// size it to the expected in-flight frame count so steady-state sends
  /// never touch the allocator.
  explicit ConcurrentRouter(std::size_t num_parties,
                            std::size_t queue_capacity = 0,
                            MailboxStrategy strategy =
                                default_mailbox_strategy(),
                            std::size_t pool_retain = 0)
      : capacity_(queue_capacity == 0 ? default_capacity(num_parties)
                                      : queue_capacity),
        strategy_(strategy),
        down_(num_parties),
        pool_(pool_retain == 0 ? kDefaultPoolRetain : pool_retain) {
    boxes_.reserve(num_parties);
    for (std::size_t i = 0; i < num_parties; ++i) {
      boxes_.push_back(std::make_unique<Mailbox>(capacity_, strategy_));
    }
  }

  [[nodiscard]] std::size_t num_parties() const { return boxes_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }
  [[nodiscard]] MailboxStrategy strategy() const { return strategy_; }
  [[nodiscard]] BufferPool& pool() { return pool_; }

  // ------------------------------------------------------------- liveness

  /// Marks a party crashed: its future sends are dropped, its undelivered
  /// mailbox is discarded, and senders blocked on its mailbox unblock.
  /// Returns with the mailbox EMPTY and the enqueue gate idle (see the
  /// crash/revive fence comment above): no frame sent before this call
  /// completes can survive into a revived session; late racers are counted
  /// in frames_dropped.
  void crash(std::size_t party) {
    check_party(party);
    // seq_cst store: Dekker-pairs with the enqueue gate's pushers++ /
    // down-load sequence, and happens-before every parked waiter's
    // predicate re-evaluation (they lock the mailbox mutex below).
    down_[party].store(1, std::memory_order_seq_cst);
    Mailbox& box = *boxes_[party];
    std::uint64_t discarded = 0;
    if (strategy_ == MailboxStrategy::kMutexDeque) {
      {
        lsa::sync::MutexLock lk(box.mu);
        discarded += box.q.size();
        box.q.clear();
      }
    }
    // Wake every parked producer and consumer. These first notifies may
    // legally race a waiter that is between its predicate evaluation and
    // its wait (the classic notify-outside-lock window) — that is
    // HARMLESS for producers because the drain loop below cannot exit
    // while one is parked (a parked producer holds the pushers gate) and
    // re-notifies until it retires; consumers are re-notified under the
    // lock after the drain, which closes the window for them (see the
    // final notify below).
    box.not_full.notify_all();
    box.not_empty.notify_all();
    // Drain-until-fenced: keep emptying the mailbox until no enqueue is in
    // flight (gate idle) and nothing is queued. A producer inside the gate
    // either observed down (drops and retires) or its frame lands here.
    BufferRef e;
    for (;;) {
      while (pop_raw(box, e)) {
        ++discarded;
        e.reset();
      }
      if (box.pushers.load(std::memory_order_seq_cst) == 0) {
        if (!pop_raw(box, e)) break;  // gate idle AND empty: fenced
        ++discarded;
        e.reset();
        continue;
      }
      // A gated sender is mid-enqueue or parked on backpressure: wake it
      // (the drain above just made room; down makes it retire) and yield.
      box.not_full.notify_all();
      std::this_thread::yield();
    }
    // relaxed: telemetry total; the crash fence itself is the seq_cst pair.
    dropped_.fetch_add(discarded, std::memory_order_relaxed);
    // Consumers blocked in recv_wait on this receiver must observe the
    // crash immediately, not at timeout granularity. The empty critical
    // section fences against a consumer between its predicate evaluation
    // (under box.mu) and its wait: after we pass through the mutex, any
    // such consumer has either started waiting (the notify reaches it) or
    // will re-evaluate its predicate after our down-store (mutex ordering
    // makes it visible) and refuse to sleep.
    { lsa::sync::MutexLock lk(box.mu); }
    box.not_empty.notify_all();
  }

  void revive(std::size_t party) {
    check_party(party);
    down_[party].store(0, std::memory_order_seq_cst);
  }

  [[nodiscard]] bool is_down(std::size_t party) const {
    check_party(party);
    // seq_cst load: the enqueue gate relies on pushers++ ; down-load being
    // Dekker-ordered against crash's down-store ; pushers-load (a plain
    // load on x86/ARM — only the rare crash-side store pays a fence).
    return down_[party].load(std::memory_order_seq_cst) != 0;
  }

  // ---------------------------------------------------------------- faults

  /// Called on every frame's bytes before enqueue (the buffer is exclusive
  /// at that point); may mutate them (corruption testing) or return false
  /// to drop the frame (lossy-link testing). Set before traffic starts.
  using FaultHook = std::function<bool(std::span<std::uint8_t>)>;
  void set_fault_hook(FaultHook hook) { hook_ = std::move(hook); }

  // ----------------------------------------------------------------- send

  /// Zero-copy send: frames the row view straight into a pooled buffer.
  void send_row(lsa::runtime::MsgType type, std::uint32_t sender,
                std::uint32_t receiver, std::uint64_t round,
                std::span<const lsa::field::Fp32::rep> payload) override {
    check_party(sender);
    check_party(receiver);
    if (is_down(sender)) return;
    BufferRef frame =
        build_frame(pool_, type, sender, receiver, round, payload);
    enqueue(receiver, std::move(frame));
  }

  /// Legacy adapter: frames a materialized Message (one counted copy out
  /// of the intermediate payload vector).
  void send(const lsa::runtime::Message& m) override {
    counters().note_copy(4 * m.payload.size());
    send_row(m.type, m.sender, m.receiver, m.round,
             std::span<const lsa::field::Fp32::rep>(m.payload));
  }

  /// Receiver field of shared broadcast frames (handlers dispatch on their
  /// own mailbox, never on the header's receiver).
  static constexpr std::uint32_t kBroadcastReceiver = 0xFFFFFFFFu;

  /// Broadcast: the payload is framed ONCE into one ref-counted buffer
  /// (receiver field = kBroadcastReceiver) shared across every live
  /// mailbox — no per-receiver payload writes or CRC passes.
  void broadcast_row(lsa::runtime::MsgType type, std::uint32_t sender,
                     std::uint64_t round,
                     std::span<const lsa::field::Fp32::rep> payload,
                     std::uint32_t num_receivers) override {
    check_party(sender);
    lsa::require(num_receivers <= boxes_.size(),
                 "router: broadcast fan-out out of range");
    if (is_down(sender)) return;
    BufferRef frame = build_frame(pool_, type, sender, kBroadcastReceiver,
                                  round, payload);
    if (hook_ && !hook_(frame.bytes())) {
      // relaxed: monotonic telemetry total, read quiescently.
      dropped_.fetch_add(num_receivers, std::memory_order_relaxed);
      return;
    }
    for (std::uint32_t j = 0; j < num_receivers; ++j) {
      enqueue_built(j, frame);  // shared ref, one buffer
    }
  }

  /// Re-injects a prebuilt frame (receiver read from its header bytes).
  /// No sender-liveness check — the caller owns that policy.
  void send_frame(BufferRef frame) {
    lsa::require<lsa::ProtocolError>(
        frame && frame.size_bytes() >= lsa::runtime::kHeaderBytes,
        "router: undersized frame");
    std::uint32_t receiver = 0;
    std::memcpy(&receiver, frame.bytes().data() + 8, 4);
    check_party(receiver);
    enqueue(receiver, std::move(frame));
  }

  // ----------------------------------------------------------------- recv

  /// Pops and validates the receiver's next frame. Returns false when the
  /// mailbox is empty (or the receiver is down). Throws ProtocolError on a
  /// corrupted frame — the frame is consumed either way.
  [[nodiscard]] bool try_recv(std::size_t receiver, Inbound& out) {
    check_party(receiver);
    if (is_down(receiver)) return false;
    Mailbox& box = *boxes_[receiver];
    BufferRef buf;
    if (!pop_raw(box, buf)) return false;
    // Room just opened: release any producer parked on backpressure.
    wake_if_waiting(box, box.waiting_producers, box.not_full);
    out.buf = std::move(buf);
    out.view = parse_frame(out.buf);  // throws on corruption
    // relaxed: monotonic telemetry total.
    delivered_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Blocking variant: waits up to `timeout` for a frame. Returns false on
  /// timeout or when the receiver is down.
  [[nodiscard]] bool recv_wait(std::size_t receiver, Inbound& out,
                               std::chrono::milliseconds timeout) {
    check_party(receiver);
    Mailbox& box = *boxes_[receiver];
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (is_down(receiver)) return false;
      if (try_recv(receiver, out)) return true;
      lsa::sync::MutexLock lk(box.mu);
      // relaxed: the seq_cst fence below (paired with the waker's fence in
      // wake_if_waiting) orders the count against the state it watches.
      box.waiting_consumers.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // Explicit predicate loop (not a wait lambda): the guarded
      // has_frames read stays inside this analyzed critical section.
      bool timed_out = false;
      while (!box.has_frames(strategy_) && !is_down(receiver)) {
        if (box.not_empty.wait_until(lk.native_lock(), deadline) ==
            std::cv_status::timeout) {
          timed_out = !box.has_frames(strategy_) && !is_down(receiver);
          break;
        }
      }
      // relaxed: same pairing as the increment above.
      box.waiting_consumers.fetch_sub(1, std::memory_order_relaxed);
      if (timed_out) return false;  // timeout with nothing to deliver
    }
  }

  /// True when every mailbox is empty.
  [[nodiscard]] bool idle() const {
    for (const auto& box : boxes_) {
      if (strategy_ == MailboxStrategy::kLockFreeRing) {
        if (!box->ring.empty_approx()) return false;
      } else {
        lsa::sync::MutexLock lk(box->mu);
        if (!box->q.empty()) return false;
      }
    }
    return true;
  }

  // relaxed: the four getters below are advisory telemetry snapshots —
  // tests quiesce traffic before asserting exact values.
  [[nodiscard]] std::uint64_t frames_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// High-water mark of any mailbox depth (bounded by queue_capacity).
  [[nodiscard]] std::size_t max_queue_depth() const {
    // relaxed: advisory telemetry snapshot, exact only at quiescence.
    return max_depth_.load(std::memory_order_relaxed);
  }
  /// Senders currently parked on this receiver's backpressure (telemetry;
  /// tests use it to wait for a sender to be provably blocked).
  [[nodiscard]] std::uint32_t parked_senders(std::size_t party) const {
    check_party(party);
    return boxes_[party]->waiting_producers.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    BufferRef buf;
  };

  /// One receiver's inbox. The ring is the kLockFreeRing engine; the
  /// mutex/cv pair doubles as the kMutexDeque engine's lock AND the ring
  /// engine's parking lot (waiters sleep here only after the lock-free
  /// path reports would-block — the fast path never touches it).
  struct Mailbox {
    Mailbox(std::size_t capacity, MailboxStrategy strategy)
        : ring(strategy == MailboxStrategy::kLockFreeRing ? capacity : 1) {}

    MpscRing ring;
    /// Enqueue gate (both strategies): nonzero while a sender is between
    /// its down-check and enqueue completion. crash() spins this to zero.
    std::atomic<std::size_t> pushers{0};
    /// Parked-waiter counts: wakers skip the mutex entirely when zero.
    std::atomic<std::uint32_t> waiting_producers{0};
    std::atomic<std::uint32_t> waiting_consumers{0};
    mutable lsa::sync::Mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    /// kMutexDeque storage (unused by the ring).
    std::deque<Entry> q LSA_GUARDED_BY(mu);

    /// Wake predicate: frames visible right now (callers hold mu; ring
    /// occupancy is re-read with acquire loads each evaluation).
    [[nodiscard]] bool has_frames(MailboxStrategy s) const LSA_REQUIRES(mu) {
      return s == MailboxStrategy::kLockFreeRing ? ring.can_pop()
                                                 : !q.empty();
    }
  };

  void check_party(std::size_t p) const {
    lsa::require(p < boxes_.size(), "router: endpoint out of range");
  }

  /// Strategy-dispatched unvalidated pop (try_recv and the crash drain).
  [[nodiscard]] bool pop_raw(Mailbox& box, BufferRef& out) {
    if (strategy_ == MailboxStrategy::kLockFreeRing) {
      return box.ring.try_pop(out);
    }
    lsa::sync::MutexLock lk(box.mu);
    if (box.q.empty()) return false;
    out = std::move(box.q.front().buf);
    box.q.pop_front();
    return true;
  }

  /// Notify-under-lock, gated on the waiter count: the seq_cst fence pairs
  /// with the waiter's fence after its count increment, so either the
  /// waker sees the count (and takes the lock, serializing with the
  /// predicate evaluation) or the waiter's predicate sees the state change
  /// — never neither (the lost-wakeup window). notify_ONE, not all: each
  /// state change opens exactly one opportunity (one freed slot admits one
  /// parked producer; one pushed frame satisfies the one consumer), and a
  /// broadcast here is the thundering herd that flattens throughput at
  /// high fan-in — hundreds of parked senders stampeding per pop. A waiter
  /// whose opportunity is stolen by a non-parked racer just re-parks; the
  /// thief consumed the slot, so no capacity is stranded and the next
  /// state change re-notifies. Crash is the only broadcast (everyone must
  /// observe down).
  void wake_if_waiting(Mailbox& box, std::atomic<std::uint32_t>& count,
                       std::condition_variable& cv) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // relaxed: the fence above is the ordering; the load only gates cost.
    if (count.load(std::memory_order_relaxed) > 0) {
      lsa::sync::MutexLock lk(box.mu);
      cv.notify_one();
    }
  }

  void enqueue(std::size_t receiver, BufferRef frame) {
    if (hook_ && !hook_(frame.bytes())) {
      // relaxed: monotonic telemetry total.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    enqueue_built(receiver, std::move(frame));
  }

  /// Post-hook enqueue; broadcast fan-out shares one frame across calls.
  /// Blocks (parked, not spinning) while the mailbox is at capacity.
  void enqueue_built(std::size_t receiver, BufferRef frame) {
    Mailbox& box = *boxes_[receiver];
    // Enter the crash-fence gate BEFORE the liveness check (see the
    // class comment: crash() cannot complete while we are inside).
    box.pushers.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      if (is_down(receiver)) {
        box.pushers.fetch_sub(1, std::memory_order_release);
        // relaxed: monotonic telemetry total.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (push_raw(box, frame)) {
        box.pushers.fetch_sub(1, std::memory_order_release);
        wake_if_waiting(box, box.waiting_consumers, box.not_empty);
        // relaxed: monotonic telemetry total.
        sent_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Full: park until the consumer makes room or the receiver crashes.
      lsa::sync::MutexLock lk(box.mu);
      // relaxed: the seq_cst fence below (paired with the waker's fence in
      // wake_if_waiting) orders the count against the state it watches.
      box.waiting_producers.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // Explicit predicate loop (not a wait lambda): the guarded
      // box_has_room read stays inside this analyzed critical section.
      while (!box_has_room(box) && !is_down(receiver)) {
        box.not_full.wait(lk.native_lock());
      }
      // relaxed: same pairing as the increment above.
      box.waiting_producers.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Strategy-dispatched bounded push attempt; updates the depth
  /// high-water mark on success.
  [[nodiscard]] bool push_raw(Mailbox& box, BufferRef& frame) {
    std::size_t depth = 0;
    if (strategy_ == MailboxStrategy::kLockFreeRing) {
      if (!box.ring.try_push(std::move(frame))) return false;
      depth = box.ring.size_approx();
    } else {
      lsa::sync::MutexLock lk(box.mu);
      if (box.q.size() >= capacity_) return false;
      box.q.push_back(Entry{std::move(frame)});
      depth = box.q.size();
    }
    // relaxed: lossy high-water telemetry; no payload ordering rides on it.
    std::size_t seen = max_depth_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth_.compare_exchange_weak(seen, depth,
                                             std::memory_order_relaxed)) {
    }
    return true;
  }

  [[nodiscard]] bool box_has_room(const Mailbox& box) const
      LSA_REQUIRES(box.mu) {
    return strategy_ == MailboxStrategy::kLockFreeRing
               ? box.ring.can_push()
               : box.q.size() < capacity_;
  }

  std::size_t capacity_;
  MailboxStrategy strategy_;
  std::vector<std::atomic<std::uint8_t>> down_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  BufferPool pool_;
  FaultHook hook_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> max_depth_{0};
};

}  // namespace lsa::transport
