// Global transport instrumentation counters.
//
// The zero-copy claim of the transport layer ("outbound frames are built
// once, straight from arena rows") is enforced by measurement, not by
// convention: every path that materializes an intermediate payload vector
// (legacy Message construction, serialize() of a Message) bumps the
// payload-copy counters, while the frame builder only bumps the framed-byte
// counters. tests/transport_test.cpp and bench/bench_transport.cpp assert
// that a round driven through the concurrent transport performs ZERO
// intermediate payload copies on the send side.
//
// Counters are process-global relaxed atomics: cheap enough to leave on in
// release builds, and exact because every increment is a plain add.
#pragma once

#include <atomic>
#include <cstdint>

namespace lsa::transport {

struct Counters {
  /// Frames built directly from row views (the zero-copy send path).
  std::atomic<std::uint64_t> frames_built{0};
  /// Payload bytes written by the frame builder (the single framing write).
  std::atomic<std::uint64_t> payload_bytes_framed{0};
  /// Intermediate payload copies (Message vectors materialized, serialize()
  /// memcpys from Message::payload) — the copies the legacy path performs.
  std::atomic<std::uint64_t> payload_copies{0};
  std::atomic<std::uint64_t> payload_bytes_copied{0};
  /// Pool traffic: fresh heap allocations vs recycled buffers.
  std::atomic<std::uint64_t> pool_allocs{0};
  std::atomic<std::uint64_t> pool_reuses{0};

  void note_copy(std::uint64_t bytes) {
    // relaxed: exact monotonic adds; tests assert on quiesced deltas, so
    // no cross-counter ordering is needed.
    payload_copies.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_framed(std::uint64_t bytes) {
    // relaxed: same contract as note_copy above.
    frames_built.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_framed.fetch_add(bytes, std::memory_order_relaxed);
  }
};

inline Counters& counters() {
  static Counters c;
  return c;
}

/// Point-in-time snapshot for before/after deltas in tests and benches.
struct CountersSnapshot {
  std::uint64_t frames_built;
  std::uint64_t payload_bytes_framed;
  std::uint64_t payload_copies;
  std::uint64_t payload_bytes_copied;
  std::uint64_t pool_allocs;
  std::uint64_t pool_reuses;
};

inline CountersSnapshot snapshot() {
  const auto& c = counters();
  // relaxed: point-in-time sample; callers quiesce traffic before
  // asserting exact values (before/after deltas bracket a serial region).
  return {c.frames_built.load(std::memory_order_relaxed),
          c.payload_bytes_framed.load(std::memory_order_relaxed),
          c.payload_copies.load(std::memory_order_relaxed),
          c.payload_bytes_copied.load(std::memory_order_relaxed),
          c.pool_allocs.load(std::memory_order_relaxed),
          c.pool_reuses.load(std::memory_order_relaxed)};
}

}  // namespace lsa::transport
