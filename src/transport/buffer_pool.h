// Ref-counted pooled wire buffers.
//
// Every frame the concurrent transport moves lives in a Block: a word-
// aligned byte arena acquired from a BufferPool and handed around as a
// cheap ref-counted BufferRef. The contract:
//
//   * acquire() recycles a retained block when one is available (the steady
//     state: a round's frame working set is allocated once and then cycles
//     through the freelist), falling back to a fresh heap block;
//   * BufferRef copies bump an intrusive atomic refcount — broadcasting one
//     frame to N receivers shares one buffer, never N copies;
//   * the last BufferRef released returns the block to its pool's freelist
//     (bounded; overflow blocks are freed). Pool lifetime is safe even if
//     refs outlive the BufferPool object: blocks pin the pool core via
//     shared_ptr and the core frees whatever the freelist still holds.
//
// Storage is std::uint32_t words so that a frame's payload region — field
// elements at a word-aligned offset (runtime/wire.h's 28-byte header is
// exactly 7 words) — can be exposed as a std::span<const rep> view without
// alignment hazards. Byte access goes through the bytes() spans
// (unsigned-char access to any object is always defined).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/thread_annotations.h"
#include "transport/stats.h"

namespace lsa::transport {

class BufferPool;

namespace detail {

struct PoolCore;

struct Block {
  std::vector<std::uint32_t> words;  ///< capacity arena (word-aligned bytes)
  std::size_t len_bytes = 0;         ///< logical frame length
  std::atomic<std::uint32_t> refs{0};
  std::shared_ptr<PoolCore> home;  ///< keeps the freelist alive
};

struct PoolCore {
  lsa::sync::Mutex mu;
  std::vector<Block*> freelist LSA_GUARDED_BY(mu);
  std::size_t max_retained;  ///< const after construction
  std::atomic<std::uint64_t> outstanding{0};

  explicit PoolCore(std::size_t retain) : max_retained(retain) {}
  // Unlocked freelist walk: the core is destroyed when the last owner
  // (pool object or in-flight block) drops it — no concurrent access is
  // possible, and TSA exempts destructors for the same reason.
  ~PoolCore() {
    for (Block* b : freelist) delete b;
  }

  void release(Block* b) {
    // relaxed: monotonic gauge decrement; readers only sample a snapshot.
    outstanding.fetch_sub(1, std::memory_order_relaxed);
    // Drop the self-reference BEFORE requeueing; the freelist must hold
    // plain blocks or core destruction would cycle.
    std::shared_ptr<PoolCore> self = std::move(b->home);
    {
      lsa::sync::MutexLock lk(mu);
      if (freelist.size() < max_retained) {
        freelist.push_back(b);
        return;
      }
    }
    delete b;
  }
};

}  // namespace detail

/// Shared handle to a pooled frame buffer. Copy = refcount bump; the last
/// handle returns the block to the pool.
class BufferRef {
 public:
  BufferRef() = default;
  // relaxed: refcount increments need no ordering — only the final
  // decrement (acq_rel below) publishes the buffer to its recycler.
  explicit BufferRef(detail::Block* b) : b_(b) {
    if (b_ != nullptr) b_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BufferRef(const BufferRef& o) : b_(o.b_) {
    // relaxed: copy holds a live ref, so the count cannot hit zero here.
    if (b_ != nullptr) b_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BufferRef(BufferRef&& o) noexcept : b_(std::exchange(o.b_, nullptr)) {}
  BufferRef& operator=(BufferRef o) noexcept {
    std::swap(b_, o.b_);
    return *this;
  }
  ~BufferRef() { reset(); }

  void reset() {
    if (b_ == nullptr) return;
    detail::Block* b = std::exchange(b_, nullptr);
    // acq_rel: the releasing thread's writes to the buffer must be visible
    // to whichever thread performs the final release and recycles it.
    if (b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      b->home->release(b);
    }
  }

  [[nodiscard]] explicit operator bool() const { return b_ != nullptr; }
  [[nodiscard]] std::size_t size_bytes() const { return b_->len_bytes; }
  [[nodiscard]] std::uint32_t ref_count() const {
    // relaxed: advisory observability read (tests/stats); never an owner.
    return b_ == nullptr ? 0 : b_->refs.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::span<std::uint8_t> bytes() {
    return {reinterpret_cast<std::uint8_t*>(b_->words.data()), b_->len_bytes};
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {reinterpret_cast<const std::uint8_t*>(b_->words.data()),
            b_->len_bytes};
  }
  /// The arena as whole words (frame layouts are word-granular).
  [[nodiscard]] std::span<std::uint32_t> words() {
    return {b_->words.data(), (b_->len_bytes + 3) / 4};
  }
  [[nodiscard]] std::span<const std::uint32_t> words() const {
    return {b_->words.data(), (b_->len_bytes + 3) / 4};
  }

 private:
  detail::Block* b_ = nullptr;
};

/// Thread-safe freelist of frame blocks.
class BufferPool {
 public:
  /// max_retained: freelist cap; overflow releases go straight to delete.
  explicit BufferPool(std::size_t max_retained = 256)
      : core_(std::make_shared<detail::PoolCore>(max_retained)) {}

  /// A buffer of exactly `nbytes` logical length (capacity is whole words,
  /// reused across acquires). Contents are uninitialized / stale.
  [[nodiscard]] BufferRef acquire(std::size_t nbytes) {
    const std::size_t nwords = (nbytes + 3) / 4;
    detail::Block* b = nullptr;
    {
      lsa::sync::MutexLock lk(core_->mu);
      if (!core_->freelist.empty()) {
        b = core_->freelist.back();
        core_->freelist.pop_back();
      }
    }
    auto& c = counters();
    // relaxed: monotonic telemetry counters, aggregated by snapshot().
    if (b == nullptr) {
      b = new detail::Block();
      c.pool_allocs.fetch_add(1, std::memory_order_relaxed);
    } else {
      c.pool_reuses.fetch_add(1, std::memory_order_relaxed);
    }
    if (b->words.size() < nwords) b->words.resize(nwords);
    b->len_bytes = nbytes;
    b->home = core_;
    // relaxed: gauge increment; pairs with the relaxed decrement in release.
    core_->outstanding.fetch_add(1, std::memory_order_relaxed);
    return BufferRef(b);
  }

  /// Buffers currently held by live BufferRefs (not in the freelist).
  [[nodiscard]] std::uint64_t outstanding() const {
    // relaxed: advisory gauge snapshot for tests/telemetry.
    return core_->outstanding.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t retained() const {
    lsa::sync::MutexLock lk(core_->mu);
    return core_->freelist.size();
  }

 private:
  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace lsa::transport
