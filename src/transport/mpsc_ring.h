// Bounded lock-free MPSC ring buffer — the fast mailbox substrate of the
// concurrent transport plane.
//
// Design (Vyukov bounded-queue slot sequencing, MPSC-tuned):
//
//   * storage is a power-of-two array of slots, each carrying an atomic
//     sequence number that encodes whose turn the slot is: seq == pos means
//     "free for the producer claiming ticket pos", seq == pos + 1 means
//     "filled, ready for the consumer at ticket pos", seq == pos + period
//     re-arms the slot for the next lap. Producers claim tickets with a CAS
//     on tail_; the handoff to the consumer is the slot's release-store, so
//     neither side ever takes a lock and per-sender FIFO follows from each
//     sender's program-order ticket claims;
//   * the LOGICAL capacity is enforced exactly (it is a protocol-level
//     backpressure bound derived from the session's phase fan-in — see
//     server::SessionBase::resolve_queue_capacity), independent of the
//     power-of-two physical rounding. Producers check it against a shared
//     CACHED copy of head_ and reload the real head_ only when the cached
//     value says "full": in the steady state producers touch only tail_ and
//     their slot, the consumer touches only head_ and its slot, and the
//     cross-core head_/tail_ cache-line ping-pong of a naive ring never
//     happens;
//   * pop is ticket-CAS too (MPMC-safe on the consumer side) even though the
//     steady state is single-consumer: the crash/revive path of
//     ConcurrentRouter drains a mailbox from whatever thread called crash(),
//     possibly racing the receiver's last try_recv, and that race must be
//     safe without a lock;
//   * the ring stores BufferRef by value: a popped entry transfers the
//     frame's refcount to the caller, and destruction drains whatever is
//     left so no pooled block leaks.
//
// Blocking (recv_wait, backpressured send) is NOT this class's job: the
// ring only ever returns would-block, and ConcurrentRouter supplies the
// futex-style parked-waiter fallback on top (see the Mailbox comment
// there).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/error.h"
#include "transport/buffer_pool.h"

namespace lsa::transport {

class MpscRing {
 public:
  /// `capacity` is the exact logical bound on queued entries (>= 1); the
  /// physical slot array is the next power of two.
  explicit MpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(pow2_at_least(capacity) - 1) {
    lsa::require(capacity >= 1, "mpsc ring: zero capacity");
    slots_ = std::make_unique<Slot[]>(mask_ + 1);
    // relaxed: pre-publication init — the ring is handed to other threads
    // only via some later synchronizing operation.
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscRing() {
    BufferRef e;
    while (try_pop(e)) e.reset();
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Lock-free bounded push. Returns false when the ring holds `capacity()`
  /// entries (the caller parks or drops; this never blocks or spins on a
  /// full ring).
  [[nodiscard]] bool try_push(BufferRef&& v) {
    // relaxed: ticket reads/CASes carry no payload — the slot seq
    // (acquire/release below) is the only handoff edge; a stale ticket
    // just re-runs the loop.
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      // Exact logical-capacity gate against the producers' cached head;
      // reload the real head only when the cache claims full.
      // relaxed: the cache is a producer-private hint, re-validated
      // against the acquire-loaded real head before reporting full.
      if (pos - head_cache_.load(std::memory_order_relaxed) >= capacity_) {
        const std::size_t h = head_.load(std::memory_order_acquire);
        head_cache_.store(h, std::memory_order_relaxed);
        if (pos - h >= capacity_) return false;
      }
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // relaxed: the ticket claim publishes nothing; the seq
        // release-store below is the producer->consumer handoff.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.val = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with it.
      } else if (diff < 0) {
        // The slot is one lap behind: either physically full (capacity()
        // is itself a power of two), or a concurrent popper — the
        // receiver racing crash()'s drain — advanced head_ past this slot
        // but has not re-armed its sequence yet. Both read as "no room
        // right now"; the caller parks or retries.
        return false;
      } else {
        // relaxed: retry hint only (see the loop-entry comment).
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Pop the oldest entry. Safe for concurrent callers (ticket CAS), which
  /// the crash-drain path relies on; returns false when empty.
  [[nodiscard]] bool try_pop(BufferRef& out) {
    // relaxed: mirror of try_push — tickets are plain counters; the slot
    // seq acquire-load below is the edge that makes s.val visible.
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        // relaxed: ticket claim; the re-arm release-store below hands the
        // slot to the producer one lap ahead.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(s.val);
          // Re-arm the slot for the producer one lap ahead.
          s.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty (or a producer is mid-write on this slot)
      } else {
        // relaxed: retry hint only (see the loop-entry comment).
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// True when a pop would succeed right now (the parked consumer's wake
  /// predicate; exact for the single live consumer).
  [[nodiscard]] bool can_pop() const {
    // relaxed: advisory wake predicate — the popper re-checks exactly.
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    const std::size_t seq = slots_[pos & mask_].seq.load(
        std::memory_order_acquire);
    return static_cast<std::intptr_t>(seq) -
               static_cast<std::intptr_t>(pos + 1) >= 0;
  }

  /// True when a push could make progress right now: logical room AND the
  /// current tail slot re-armed (a popper preempted between its head CAS
  /// and the slot's re-arm store leaves tail - head < capacity while the
  /// slot is still one lap behind — reporting "room" then would turn the
  /// parked producer's wait into a relock/fail spin until the popper
  /// resumes; the popper's own post-pop wake re-checks this predicate).
  /// Still conservative under racing producers — a stale "room" just
  /// re-runs try_push, which re-checks exactly.
  [[nodiscard]] bool can_push() const {
    // relaxed: advisory wake predicate — try_push re-checks exactly.
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    if (pos - head_.load(std::memory_order_acquire) >= capacity_) {
      return false;
    }
    const std::size_t seq =
        slots_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<std::intptr_t>(seq) -
               static_cast<std::intptr_t>(pos) >=
           0;
  }

  /// Entries currently queued (ticket distance). Exact when quiescent,
  /// approximate mid-race; used for depth telemetry and idle checks.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t t = tail_.load(std::memory_order_acquire);
    const std::size_t h = head_.load(std::memory_order_acquire);
    return t >= h ? t - h : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    BufferRef val;
  };

  [[nodiscard]] static constexpr std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t capacity_;  ///< exact logical bound (backpressure contract)
  std::size_t mask_;      ///< physical slots - 1 (power of two)
  std::unique_ptr<Slot[]> slots_;
  // Producers and the consumer live on separate cache lines; head_cache_
  // sits with the producers (they are its only readers/writers).
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_cache_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace lsa::transport
