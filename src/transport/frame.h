// Zero-copy framing over pooled buffers.
//
// A frame is byte-identical to runtime/wire.h's serialized Message — same
// 7-word header, same CRC — but it is built ONCE, directly from a field-row
// view (a FlatMatrix arena row, a stack vector's span), into a ref-counted
// pooled buffer. On the inbound side parse_frame() validates in place and
// exposes the payload as a std::span<const rep> aliasing the buffer words:
// receivers copy at most once, straight into their arena row (ShareBank::
// put), with no intermediate Message::payload vector on either side.
//
// Layout recap ([] = one write each, little-endian):
//   words[0..6]  header: type/flags, sender, receiver, round lo/hi,
//                payload_elems, crc32(payload bytes)
//   words[7..]   payload: canonical Fp32 reps
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/error.h"
#include "field/fp.h"
#include "runtime/wire.h"
#include "transport/buffer_pool.h"
#include "transport/stats.h"

namespace lsa::transport {

inline constexpr std::size_t kHeaderWords = lsa::runtime::kHeaderBytes / 4;

/// Parsed, validated view of a frame. `payload` aliases the frame buffer —
/// it is valid only while the owning BufferRef is alive.
struct FrameView {
  lsa::runtime::MsgType type = lsa::runtime::MsgType::kEncodedMaskShare;
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  std::uint64_t round = 0;
  std::span<const lsa::field::Fp32::rep> payload;
};

/// Builds a frame straight from a row view: one header write + one payload
/// write into a pooled buffer. This is the zero-copy send path — no
/// intermediate payload vector exists, which the stats counters attest.
[[nodiscard]] inline BufferRef build_frame(
    BufferPool& pool, lsa::runtime::MsgType type, std::uint32_t sender,
    std::uint32_t receiver, std::uint64_t round,
    std::span<const lsa::field::Fp32::rep> payload) {
  const std::size_t nbytes = lsa::runtime::kHeaderBytes + 4 * payload.size();
  BufferRef buf = pool.acquire(nbytes);
  const auto words = buf.words();
  if (!payload.empty()) {
    // copy-ok: THE single sanctioned send-side write — row view straight
    // into the pooled frame; note_framed (not note_copy) counts it.
    std::memcpy(words.data() + kHeaderWords, payload.data(),
                4 * payload.size());
  }
  const std::uint32_t crc = lsa::runtime::crc32(
      buf.bytes().subspan(lsa::runtime::kHeaderBytes, 4 * payload.size()));
  lsa::runtime::write_header(buf.bytes().data(), type, sender, receiver,
                             round,
                             static_cast<std::uint32_t>(payload.size()), crc);
  counters().note_framed(4 * payload.size());
  return buf;
}

/// Copies raw frame bytes into a pooled buffer (fuzzing / re-injection of
/// externally produced frames). No validation — parse_frame does that.
[[nodiscard]] inline BufferRef frame_from_bytes(
    BufferPool& pool, std::span<const std::uint8_t> bytes) {
  BufferRef buf = pool.acquire(bytes.size());
  if (!bytes.empty()) {
    // copy-ok: ingestion of externally produced raw bytes (fuzzing /
    // re-injection); not on any round's send path.
    std::memcpy(buf.bytes().data(), bytes.data(), bytes.size());
  }
  return buf;
}

/// Validates a frame in place (length, CRC, canonical field elements) and
/// returns a view whose payload aliases the buffer words. Throws
/// ProtocolError on any corruption — the same contract as
/// runtime::deserialize, minus the payload copy.
[[nodiscard]] inline FrameView parse_frame(const BufferRef& buf) {
  const lsa::runtime::WireHeader h =
      lsa::runtime::read_header_checked(buf.bytes());
  FrameView f;
  f.type = h.type;
  f.sender = h.sender;
  f.receiver = h.receiver;
  f.round = h.round;
  f.payload = buf.words().subspan(kHeaderWords, h.payload_elems);
  lsa::runtime::check_canonical_payload(f.payload);
  return f;
}

/// Materializes a FrameView into a legacy Message (one counted payload
/// copy) — the compatibility fallback for handlers that still take
/// Message.
[[nodiscard]] inline lsa::runtime::Message to_message(const FrameView& f) {
  lsa::runtime::Message m;
  m.type = f.type;
  m.sender = f.sender;
  m.receiver = f.receiver;
  m.round = f.round;
  m.payload.assign(f.payload.begin(), f.payload.end());
  counters().note_copy(4 * f.payload.size());
  return m;
}

}  // namespace lsa::transport
