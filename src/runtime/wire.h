// Wire format for the distributed protocol runtime.
//
// The protocol classes in src/protocol are orchestrated (one function runs
// all parties), which is ideal for tests and cost accounting. The runtime
// layer instead executes LightSecAgg as *communicating state machines* —
// the shape of the paper's real system (Fig. 4) — so messages must actually
// be serialized. Layout (little-endian):
//
//   [u16 type][u16 flags][u32 sender][u32 receiver][u64 round]
//   [u32 payload_elems][u32 crc32(payload)][payload: u32 field reps]
//
// The header is exactly 7 words (28 bytes), so the payload region of a
// word-aligned frame buffer is itself word-aligned — the property the
// zero-copy span views in src/transport/frame.h rely on.
//
// The CRC lets the runtime reject corrupted frames (tested by fault
// injection in tests/runtime_test.cpp and tests/fuzz_wire_test.cpp). The
// production crc32 is table-driven slice-by-8 (~8 bytes per table round
// instead of 1 bit); crc32_reference keeps the bitwise definition as the
// tested ground truth.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.h"
#include "field/fp.h"
#include "transport/stats.h"

namespace lsa::runtime {

enum class MsgType : std::uint16_t {
  kEncodedMaskShare = 1,   ///< [~z_i]_j, offline phase (round = born round)
  kMaskedModel = 2,        ///< ~x_i = x_i + z_i, upload phase
  kSurvivorSet = 3,        ///< server -> users: U1 as a bitmap payload
  kAggregatedShares = 4,   ///< user j -> server: sum_{i in U1} [~z_i]_j
  kAggregateResult = 5,    ///< server -> users: the recovered aggregate
  // Asynchronous protocol (App. F; runtime/async_machines.h):
  kBufferManifest = 6,     ///< server -> users: (user, t_i, weight) triples
  kWeightedShares = 7,     ///< user j -> server: sum_b w_b [~z_{u_b}^(t_b)]_j
  // Socket transport session control (transport/socket/socket_transport.h).
  // These never reach the protocol state machines: the hub consumes kHello
  // to bind a connection to (session, user) and the client endpoint consumes
  // kWelcome to complete its handshake. Payloads are canonical field reps
  // like every other frame so the one wire validator covers them too.
  kSessionHello = 8,       ///< client -> hub: bind connection (round = session)
  kSessionWelcome = 9,     ///< hub -> client: binding accepted (echoed identity)
};

struct Message {
  MsgType type = MsgType::kEncodedMaskShare;
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  std::uint64_t round = 0;
  std::vector<lsa::field::Fp32::rep> payload;
};

/// CRC-32 (IEEE 802.3 polynomial, bitwise implementation). Kept as the
/// ground-truth reference the table-driven crc32 is tested against.
[[nodiscard]] inline std::uint32_t crc32_reference(
    std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

namespace detail {

/// 8 slice tables: kCrcTables[0] is the classic byte table; table k folds a
/// byte that sits k positions ahead of the CRC window.
consteval std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

inline constexpr auto kCrcTables = make_crc_tables();

}  // namespace detail

/// CRC-32, slice-by-8: consumes 8 bytes per iteration via 8 parallel table
/// lookups. Bit-identical to crc32_reference on every input
/// (tests/fuzz_wire_test.cpp fuzzes parity on random + boundary inputs).
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& t = detail::kCrcTables;
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

inline constexpr std::size_t kHeaderBytes = 2 + 2 + 4 + 4 + 8 + 4 + 4;
static_assert(kHeaderBytes % 4 == 0, "payload must stay word-aligned");

/// Writes the 28-byte header into `p` (caller guarantees capacity). The
/// CRC slot is filled by the caller once the payload bytes are in place.
inline void write_header(std::uint8_t* p, MsgType type, std::uint32_t sender,
                         std::uint32_t receiver, std::uint64_t round,
                         std::uint32_t payload_elems, std::uint32_t crc) {
  auto put16 = [&p](std::uint16_t v) { std::memcpy(p, &v, 2); p += 2; };
  auto put32 = [&p](std::uint32_t v) { std::memcpy(p, &v, 4); p += 4; };
  auto put64 = [&p](std::uint64_t v) { std::memcpy(p, &v, 8); p += 8; };
  put16(static_cast<std::uint16_t>(type));
  put16(0);  // flags (reserved)
  put32(sender);
  put32(receiver);
  put64(round);
  put32(payload_elems);
  put32(crc);
}

/// Header fields of a validated frame.
struct WireHeader {
  MsgType type = MsgType::kEncodedMaskShare;
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  std::uint64_t round = 0;
  std::uint32_t payload_elems = 0;
};

/// The one wire validator both the legacy deserializer and the zero-copy
/// frame parser go through: checks header/payload truncation and the
/// payload CRC, throws ProtocolError on any mismatch. The payload bytes
/// live at buf[kHeaderBytes ..] untouched; canonicality is checked by the
/// caller on its own representation (vector or span view).
[[nodiscard]] inline WireHeader read_header_checked(
    std::span<const std::uint8_t> buf) {
  lsa::require<lsa::ProtocolError>(buf.size() >= kHeaderBytes,
                                   "wire: truncated header");
  const std::uint8_t* p = buf.data();
  auto get16 = [&p] { std::uint16_t v; std::memcpy(&v, p, 2); p += 2; return v; };
  auto get32 = [&p] { std::uint32_t v; std::memcpy(&v, p, 4); p += 4; return v; };
  auto get64 = [&p] { std::uint64_t v; std::memcpy(&v, p, 8); p += 8; return v; };
  WireHeader h;
  h.type = static_cast<MsgType>(get16());
  (void)get16();  // flags
  h.sender = get32();
  h.receiver = get32();
  h.round = get64();
  h.payload_elems = get32();
  const std::uint32_t crc_expected = get32();
  lsa::require<lsa::ProtocolError>(
      buf.size() == kHeaderBytes + 4ull * h.payload_elems,
      "wire: truncated payload");
  const std::uint32_t crc_actual =
      crc32(std::span<const std::uint8_t>(p, 4ull * h.payload_elems));
  lsa::require<lsa::ProtocolError>(crc_actual == crc_expected,
                                   "wire: payload CRC mismatch");
  return h;
}

/// Canonicality scan shared by both payload representations: branchless
/// accumulate (auto-vectorizes), one require at the end off the throw path.
inline void check_canonical_payload(
    std::span<const lsa::field::Fp32::rep> payload) {
  bool canonical = true;
  for (const auto v : payload) {
    canonical &= lsa::field::Fp32::is_canonical(v);
  }
  lsa::require<lsa::ProtocolError>(canonical,
                                   "wire: non-canonical field element");
}

[[nodiscard]] inline std::vector<std::uint8_t> serialize(const Message& m) {
  std::vector<std::uint8_t> buf(kHeaderBytes + 4 * m.payload.size());
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(m.payload.data()),
      4 * m.payload.size()));
  write_header(buf.data(), m.type, m.sender, m.receiver, m.round,
               static_cast<std::uint32_t>(m.payload.size()), crc);
  if (!m.payload.empty()) {
    // copy-ok: legacy serialize path — the intermediate-payload copy the
    // zero-copy frame path eliminates, counted by note_copy below.
    std::memcpy(buf.data() + kHeaderBytes, m.payload.data(),
                4 * m.payload.size());
  }
  lsa::transport::counters().note_copy(4 * m.payload.size());
  return buf;
}

[[nodiscard]] inline Message deserialize(
    std::span<const std::uint8_t> buf) {
  const WireHeader h = read_header_checked(buf);
  Message m;
  m.type = h.type;
  m.sender = h.sender;
  m.receiver = h.receiver;
  m.round = h.round;
  m.payload.resize(h.payload_elems);
  if (h.payload_elems > 0) {
    // copy-ok: legacy deserialize materializes a Message::payload vector
    // (counted below); parse_frame is the zero-copy replacement.
    std::memcpy(m.payload.data(), buf.data() + kHeaderBytes,
                4ull * h.payload_elems);
  }
  lsa::transport::counters().note_copy(4ull * h.payload_elems);
  check_canonical_payload(m.payload);
  return m;
}

}  // namespace lsa::runtime
