// Wire format for the distributed protocol runtime.
//
// The protocol classes in src/protocol are orchestrated (one function runs
// all parties), which is ideal for tests and cost accounting. The runtime
// layer instead executes LightSecAgg as *communicating state machines* —
// the shape of the paper's real system (Fig. 4) — so messages must actually
// be serialized. Layout (little-endian):
//
//   [u16 type][u16 flags][u32 sender][u32 receiver][u64 round]
//   [u32 payload_elems][u32 crc32(payload)][payload: u32 field reps]
//
// The CRC lets the runtime reject corrupted frames (tested by fault
// injection in tests/runtime_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.h"
#include "field/fp.h"

namespace lsa::runtime {

enum class MsgType : std::uint16_t {
  kEncodedMaskShare = 1,   ///< [~z_i]_j, offline phase (round = born round)
  kMaskedModel = 2,        ///< ~x_i = x_i + z_i, upload phase
  kSurvivorSet = 3,        ///< server -> users: U1 as a bitmap payload
  kAggregatedShares = 4,   ///< user j -> server: sum_{i in U1} [~z_i]_j
  kAggregateResult = 5,    ///< server -> users: the recovered aggregate
  // Asynchronous protocol (App. F; runtime/async_machines.h):
  kBufferManifest = 6,     ///< server -> users: (user, t_i, weight) triples
  kWeightedShares = 7,     ///< user j -> server: sum_b w_b [~z_{u_b}^(t_b)]_j
};

struct Message {
  MsgType type = MsgType::kEncodedMaskShare;
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  std::uint64_t round = 0;
  std::vector<lsa::field::Fp32::rep> payload;
};

/// CRC-32 (IEEE 802.3 polynomial, bitwise implementation).
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

inline constexpr std::size_t kHeaderBytes = 2 + 2 + 4 + 4 + 8 + 4 + 4;

[[nodiscard]] inline std::vector<std::uint8_t> serialize(const Message& m) {
  std::vector<std::uint8_t> buf(kHeaderBytes + 4 * m.payload.size());
  std::uint8_t* p = buf.data();
  auto put16 = [&p](std::uint16_t v) { std::memcpy(p, &v, 2); p += 2; };
  auto put32 = [&p](std::uint32_t v) { std::memcpy(p, &v, 4); p += 4; };
  auto put64 = [&p](std::uint64_t v) { std::memcpy(p, &v, 8); p += 8; };
  put16(static_cast<std::uint16_t>(m.type));
  put16(0);  // flags (reserved)
  put32(m.sender);
  put32(m.receiver);
  put64(m.round);
  put32(static_cast<std::uint32_t>(m.payload.size()));
  std::uint8_t* crc_slot = p;
  put32(0);  // crc placeholder
  std::memcpy(p, m.payload.data(), 4 * m.payload.size());
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(p, 4 * m.payload.size()));
  std::memcpy(crc_slot, &crc, 4);
  return buf;
}

[[nodiscard]] inline Message deserialize(
    std::span<const std::uint8_t> buf) {
  lsa::require<lsa::ProtocolError>(buf.size() >= kHeaderBytes,
                                   "wire: truncated header");
  const std::uint8_t* p = buf.data();
  auto get16 = [&p] { std::uint16_t v; std::memcpy(&v, p, 2); p += 2; return v; };
  auto get32 = [&p] { std::uint32_t v; std::memcpy(&v, p, 4); p += 4; return v; };
  auto get64 = [&p] { std::uint64_t v; std::memcpy(&v, p, 8); p += 8; return v; };
  Message m;
  m.type = static_cast<MsgType>(get16());
  (void)get16();  // flags
  m.sender = get32();
  m.receiver = get32();
  m.round = get64();
  const std::uint32_t n = get32();
  const std::uint32_t crc_expected = get32();
  lsa::require<lsa::ProtocolError>(
      buf.size() == kHeaderBytes + 4ull * n, "wire: truncated payload");
  const std::uint32_t crc_actual =
      crc32(std::span<const std::uint8_t>(p, 4ull * n));
  lsa::require<lsa::ProtocolError>(crc_actual == crc_expected,
                                   "wire: payload CRC mismatch");
  m.payload.resize(n);
  std::memcpy(m.payload.data(), p, 4ull * n);
  for (auto v : m.payload) {
    lsa::require<lsa::ProtocolError>(
        lsa::field::Fp32::is_canonical(v),
        "wire: non-canonical field element");
  }
  return m;
}

}  // namespace lsa::runtime
