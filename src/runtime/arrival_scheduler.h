// Deterministic arrival scheduling for asynchronous buffered cycles.
//
// In buffered async FL (paper §4.2, App. F) the server aggregates whenever K
// updates sit in its buffer; which users arrive, and how stale each update
// is, are properties of the *deployment*, not the protocol. To make
// mixed-cohort runs reproducible — the sharded server's async sessions must
// be bit-identical to the single-threaded legacy drive at the same seed,
// whatever the thread interleaving — the arrival pattern is factored into
// this seeded scheduler: every consumer (server::AsyncSession, the legacy
// runtime::AsyncNetwork reference in tests/benches) derives the SAME
// arrivals for cycle c from the same ArrivalSchedule, with no shared state
// between cycles (each cycle reseeds from (seed, cycle)).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"

namespace lsa::runtime {

/// One asynchronous update arriving at the server: `user` finished a local
/// update born at global round `born_round` (staleness tau = now - born).
struct Arrival {
  std::size_t user = 0;
  std::uint64_t born_round = 0;
  std::vector<lsa::field::Fp32::rep> update;
};

/// Seeded description of an arrival pattern. Staleness is uniform in
/// [0, tau_max]; users within one cycle are distinct (concurrent
/// submissions fan out one user per pool lane).
struct ArrivalSchedule {
  std::uint64_t seed = 1;
  /// Arrivals per buffer cycle; 0 = resolved by the consumer (buffer K).
  std::size_t arrivals_per_cycle = 0;
  std::uint64_t tau_max = 3;  ///< staleness cap (uniform draw in [0, tau_max])
  /// Aggregation round of cycle 0; 0 = resolved to tau_max so every drawn
  /// born round is a valid (non-negative) global round.
  std::uint64_t first_now = 0;
  std::uint64_t now_stride = 1;  ///< global rounds between buffer cycles
};

class ArrivalScheduler {
 public:
  using Fp = lsa::field::Fp32;

  ArrivalScheduler(ArrivalSchedule schedule, std::size_t num_users,
                   std::size_t model_dim, std::size_t default_arrivals)
      : s_(schedule), n_(num_users), d_(model_dim) {
    if (s_.arrivals_per_cycle == 0) s_.arrivals_per_cycle = default_arrivals;
    if (s_.first_now == 0) s_.first_now = s_.tau_max;
    lsa::require<lsa::ConfigError>(
        s_.arrivals_per_cycle >= 1 && s_.arrivals_per_cycle <= n_,
        "arrival scheduler: need 1 <= arrivals_per_cycle <= N "
        "(users within a cycle are distinct)");
    lsa::require<lsa::ConfigError>(s_.now_stride >= 1,
                                   "arrival scheduler: now_stride must be >= 1");
  }

  [[nodiscard]] const ArrivalSchedule& schedule() const { return s_; }

  [[nodiscard]] std::uint64_t now_for_cycle(std::uint64_t cycle) const {
    return s_.first_now + cycle * s_.now_stride;
  }

  /// The arrivals of cycle `cycle`: distinct users, born rounds in
  /// [now - tau_max, now], update vectors drawn from the cycle's own RNG
  /// stream. Pure function of (schedule, cycle) — every caller sees the
  /// same pattern regardless of which cycles it asked for before.
  [[nodiscard]] std::vector<Arrival> arrivals_for_cycle(
      std::uint64_t cycle) const {
    lsa::common::Xoshiro256ss rng(s_.seed ^
                                  (0x5c4ed011u + cycle * 0x9e3779b97f4a7c15ull));
    const std::uint64_t now = now_for_cycle(cycle);
    std::vector<Arrival> out;
    out.reserve(s_.arrivals_per_cycle);
    std::vector<std::uint8_t> used(n_, 0);
    for (std::size_t k = 0; k < s_.arrivals_per_cycle; ++k) {
      std::size_t user;
      do {
        user = static_cast<std::size_t>(rng.next_below(n_));
      } while (used[user] != 0);
      used[user] = 1;
      const std::uint64_t tau =
          std::min(rng.next_below(s_.tau_max + 1), now);
      out.push_back(Arrival{user, now - tau,
                            lsa::field::uniform_vector<Fp>(d_, rng)});
    }
    return out;
  }

 private:
  ArrivalSchedule s_;
  std::size_t n_;
  std::size_t d_;
};

}  // namespace lsa::runtime
