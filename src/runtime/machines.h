// LightSecAgg as communicating state machines.
//
// Complements src/protocol/lightsecagg.h (the orchestrated implementation
// used for tests/cost accounting) with the *system* shape of the paper's
// Fig. 4: every user and the server is an isolated object that only reacts
// to serialized messages delivered by a Transport. This layer exercises
// realistic failure semantics:
//
//   * "delayed, not dropped" (paper footnote 3 / proof of Thm. 1): a user
//     whose masked model arrived but who then crashes IS included in the
//     aggregate — its mask is recovered from the shares held by others;
//   * the server decides U1 from what actually arrived, not from a script;
//   * recovery succeeds from ANY U responding users.
//
// All handlers consume *payload views* (on_payload): under the legacy
// Router they see Message::payload via a span, under the concurrent
// zero-copy transport they see a span aliasing the pooled frame buffer and
// copy exactly once — straight into their ShareBank arena row.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "runtime/router.h"
#include "runtime/transport.h"
#include "runtime/wire.h"
#include "transport/frame.h"

namespace lsa::runtime {

class Party {
 public:
  virtual ~Party() = default;
  virtual void handle(const Message& m) = 0;
  /// Zero-copy delivery entry. Default materializes a Message (one counted
  /// payload copy); the sync machines override their payload handlers to
  /// consume the view directly.
  virtual void handle_view(const lsa::transport::FrameView& f) {
    handle(lsa::transport::to_message(f));
  }
};

/// Per-round flat store of length-`cols` payload rows keyed by sender: one
/// arena allocation instead of one heap vector per (sender, round). The
/// presence bitmap distinguishes "row never arrived" from "row of zeros".
template <class F>
struct ShareBank {
  lsa::field::FlatMatrix<F> rows;
  std::vector<std::uint8_t> present;

  ShareBank() = default;
  ShareBank(std::size_t n_rows, std::size_t cols)
      : rows(n_rows, cols), present(n_rows, 0) {}

  void put(std::size_t r, std::span<const typename F::rep> payload) {
    auto dst = rows.row(r);
    std::copy(payload.begin(), payload.end(), dst.begin());
    present[r] = 1;
  }
  [[nodiscard]] bool has(std::size_t r) const { return present[r] != 0; }
  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (const auto p : present) c += p;
    return c;
  }

  /// Re-dimensions the bank for reuse: the row arena is resized without
  /// zeroing (put() overwrites whole rows) and the presence bitmap clears.
  void reset(std::size_t n_rows, std::size_t cols) {
    rows.reset_for_overwrite(n_rows, cols);
    present.assign(n_rows, 0);
  }

  /// Find-or-create the bank for `key` in a map-keyed store (the async
  /// machines bank by born-round, which is unbounded — they keep the map;
  /// the sync machines use the parity BankRing below).
  static ShareBank& get_or_create(std::map<std::uint64_t, ShareBank>& store,
                                  std::uint64_t key, std::size_t n_rows,
                                  std::size_t cols) {
    auto it = store.find(key);
    if (it == store.end()) {
      it = store.emplace(key, ShareBank(n_rows, cols)).first;
    }
    return it->second;
  }
};

/// Two-slot, parity-indexed ring of ShareBanks — the double-buffered
/// per-round share store behind pipelined round execution
/// (protocol::Params::pipeline == 2, README "Pipelined rounds"). Slot
/// `key % 2` holds the bank for `key`; keying a new round onto a slot
/// retires the slot's previous round (the old map-based store purged at
/// the same 2-round horizon). The ownership rule that makes concurrent
/// stages race-free: `prepare()` (the only operation that re-keys a slot
/// and touches its allocations) runs serially BEFORE a stage pair
/// launches, so everything inside a concurrent wave — banking arriving
/// rows, reading another round's slot, dropping a consumed round of the
/// other parity — only reads slot keys and writes disjoint rows.
template <class F>
class BankRing {
 public:
  static constexpr std::uint64_t kUnkeyed = ~std::uint64_t{0};
  /// Rounds simultaneously representable; equals the pipeline-depth cap.
  static constexpr std::uint64_t kDepth = 2;

  /// Points the parity slot at `key`, clearing its presence bitmap (the
  /// row arena is recycled). Idempotent when the slot is already keyed to
  /// `key` — a no-op read, which is what every mid-wave caller hits.
  ShareBank<F>& prepare(std::uint64_t key, std::size_t n_rows,
                        std::size_t cols) {
    Slot& s = slots_[key % kDepth];
    if (s.key != key) {
      s.key = key;
      s.bank.reset(n_rows, cols);
    }
    return s.bank;
  }

  /// The bank for `key`, or nullptr once it was dropped or its slot was
  /// re-keyed by a newer round of the same parity.
  [[nodiscard]] ShareBank<F>* find(std::uint64_t key) {
    Slot& s = slots_[key % kDepth];
    return s.key == key ? &s.bank : nullptr;
  }
  [[nodiscard]] const ShareBank<F>* find(std::uint64_t key) const {
    const Slot& s = slots_[key % kDepth];
    return s.key == key ? &s.bank : nullptr;
  }

  /// Marks `key` consumed; its slot's allocations stay for reuse. Touches
  /// only `key`'s parity slot, so it may run concurrently with accesses to
  /// the other slot.
  void drop(std::uint64_t key) {
    Slot& s = slots_[key % kDepth];
    if (s.key == key) s.key = kUnkeyed;
  }

  void clear() {
    for (auto& s : slots_) s.key = kUnkeyed;
  }

  /// Rows present across live (still-keyed) slots.
  [[nodiscard]] std::size_t live_count() const {
    std::size_t c = 0;
    for (const auto& s : slots_) {
      if (s.key != kUnkeyed) c += s.bank.count();
    }
    return c;
  }

 private:
  struct Slot {
    std::uint64_t key = kUnkeyed;
    ShareBank<F> bank;
  };
  std::array<Slot, kDepth> slots_;
};

/// One edge device running LightSecAgg.
class UserDevice final : public Party {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  UserDevice(std::uint32_t id, const lsa::protocol::Params& params,
             std::uint64_t master_seed, Transport& transport)
      : id_(id),
        params_(params),
        codec_(params.num_users, params.target_survivors, params.privacy,
               params.model_dim),
        master_seed_(master_seed),
        transport_(transport) {}

  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Rounds simultaneously representable in the parity-ring share store —
  /// shares two rounds back are retired when their ring slot re-keys, so a
  /// user that crashed mid-recovery never hoards stale shares. Equals
  /// BankRing::kDepth and caps Params::pipeline.
  static constexpr std::uint64_t kShareRetentionRounds = BankRing<Fp>::kDepth;

  /// Serial pre-stage hook for the pipelined driver: keys the share-store
  /// slot for `round` (the epoch's slot in persistent-cohort mode),
  /// retiring the slot's previous round. Idempotent — once keyed, the
  /// concurrent offline/online stages of a wave only read slot keys and
  /// write disjoint bank rows (see BankRing), so the driver calls this for
  /// round r+1 BEFORE launching offline(r+1) alongside online(r).
  void prepare_round(std::uint64_t round) {
    store_.prepare(share_key(round), params_.num_users,
                   codec_.segment_len());
  }

  /// Phase 1 + 2: generate and share the encoded mask, upload the masked
  /// model. One whole serial round-start — the depth-1 reference path. The
  /// pipelined server drives the two halves (start_round_offline /
  /// upload_masked) as separate stages instead.
  void start_round(std::uint64_t round, std::span<const rep> model) {
    start_round_offline(round);
    upload_masked(round, model);
  }

  /// OfflineStage: everything model-independent (paper §6, Fig. 5 —
  /// pipelinable with training and, here, with the previous round's
  /// fan-in/decode). Generates the round mask, encodes and distributes its
  /// shares, and stashes the mask in the round's parity slot for the
  /// matching upload_masked(). Sends only — never pumps — so it can run
  /// while the previous round's online stage drains mailboxes.
  void start_round_offline(std::uint64_t round) {
    prepare_round(round);
    if (params_.persistent_cohort) {
      // Steady-state cohort (params.persistent_cohort): one epoch mask,
      // encoded and distributed once per epoch; every later round of the
      // epoch is masked upload only. The epoch tag differs from the
      // per-round tag so the two modes never share mask streams. Reusing
      // the mask across rounds is what buys the zero-setup round — the
      // decode cancels it exactly, so aggregates stay bit-identical to
      // per-round mode (privacy trade documented in README).
      auto seed = lsa::crypto::derive_subseed(
          lsa::crypto::seed_from_u64(
              master_seed_ ^ (0xe90c4ull + id_ * 0x9e3779b97f4a7c15ull)),
          epoch_);
      lsa::crypto::Prg prg(seed);
      auto& mask = stash_mask(round);
      mask = lsa::field::uniform_vector<Fp>(params_.model_dim, prg);
      if (!epoch_setup_done_) {
        distribute_shares(epoch_, std::span<const rep>(mask), prg);
        epoch_setup_done_ = true;
      }
      return;
    }
    auto seed = lsa::crypto::derive_subseed(
        lsa::crypto::seed_from_u64(master_seed_ ^
                                   (0xde51ceull + id_ * 0x9e3779b97f4a7c15ull)),
        round);
    lsa::crypto::Prg prg(seed);
    auto& mask = stash_mask(round);
    mask = lsa::field::uniform_vector<Fp>(params_.model_dim, prg);
    distribute_shares(round, std::span<const rep>(mask), prg);
  }

  /// OnlineStage entry: masks the (model-dependent) update with the mask
  /// stashed by start_round_offline(round) and uploads it. The stash lives
  /// in the round's parity slot, so rounds r and r+1 upload/prepare
  /// concurrently without touching each other's mask.
  void upload_masked(std::uint64_t round, std::span<const rep> model) {
    lsa::require<lsa::ProtocolError>(model.size() == params_.model_dim,
                                     "user: wrong model dimension");
    const auto slot = round % kShareRetentionRounds;
    lsa::require<lsa::ProtocolError>(
        pending_mask_round_[slot] == round,
        "user: masked upload without a pending offline mask for this round");
    const auto masked = lsa::field::add<Fp>(
        model, std::span<const rep>(pending_mask_[slot]));
    transport_.send_row(MsgType::kMaskedModel, id_,
                        static_cast<std::uint32_t>(params_.num_users), round,
                        std::span<const rep>(masked));
  }

  /// Cohort membership changed: forget the old epoch's banked shares and
  /// re-trigger the offline setup on the next start_round. No-op protocol
  /// impact outside persistent-cohort mode.
  void advance_epoch() {
    ++epoch_;
    epoch_setup_done_ = false;
    store_.clear();
    pending_mask_round_.fill(BankRing<Fp>::kUnkeyed);
  }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Offline encode + share fan-outs performed: one per round normally,
  /// one per epoch in persistent-cohort mode (the steady-state invariant
  /// the session tests and bench gates enforce).
  [[nodiscard]] std::uint64_t offline_encodes() const {
    return offline_encodes_;
  }

  /// Marks this device Byzantine: it keeps the protocol's message framing
  /// but returns a corrupted aggregated share in the recovery phase — the
  /// malicious-responder model the error-correcting recovery defends
  /// against (paper §8 future work; coding/error_correction.h).
  void set_byzantine(bool on) { byzantine_ = on; }

  void handle(const Message& m) override {
    on_payload(m.type, m.sender, m.round, m.payload);
  }
  void handle_view(const lsa::transport::FrameView& f) override {
    on_payload(f.type, f.sender, f.round, f.payload);
  }

  [[nodiscard]] const std::optional<std::vector<rep>>& last_result() const {
    return last_result_;
  }
  /// Number of stored (owner, round) shares across all retained rounds.
  [[nodiscard]] std::size_t stored_shares() const {
    return store_.live_count();
  }

 private:
  /// Offline phase: encode the mask's N shares into the reused flat arena
  /// (row j = [~z]_j) and ship rows straight off the arena — no per-share
  /// heap vectors and, under a zero-copy transport, no intermediate
  /// payload copies. Our own row banks under `key`: the round normally,
  /// the epoch in persistent-cohort mode (receivers bank by the wire
  /// round field, which carries the same key).
  void distribute_shares(std::uint64_t key, std::span<const rep> mask,
                         lsa::crypto::Prg& prg) {
    enc_.reset_for_overwrite(params_.num_users, codec_.segment_len());
    codec_.encode_into(mask, prg, enc_, 0, 1, params_.exec.chunk_reps);
    ++offline_encodes_;
    for (std::uint32_t j = 0; j < params_.num_users; ++j) {
      if (j == id_) {
        bank_for(key).put(j, enc_.row(j));
        continue;
      }
      transport_.send_row(MsgType::kEncodedMaskShare, id_, j, key,
                          enc_.row(j));
    }
  }

  /// Which share bank a survivor request for `round` reads: rounds map to
  /// the current epoch's bank in persistent-cohort mode.
  [[nodiscard]] std::uint64_t share_key(std::uint64_t round) const {
    return params_.persistent_cohort ? epoch_ : round;
  }

  void on_payload(MsgType type, std::uint32_t sender, std::uint64_t round,
                  std::span<const rep> payload) {
    switch (type) {
      case MsgType::kEncodedMaskShare:
        lsa::require<lsa::ProtocolError>(
            payload.size() == codec_.segment_len(),
            "user: bad encoded share length");
        bank_for(round).put(sender, payload);
        break;
      case MsgType::kSurvivorSet: {
        // Payload: N entries of 0/1. Aggregate the stored shares of the
        // surviving set (one fused pass over the round bank's rows) and
        // return them to the server.
        lsa::require<lsa::ProtocolError>(
            payload.size() == params_.num_users,
            "user: bad survivor bitmap");
        std::vector<rep> acc(codec_.segment_len(), Fp::zero);
        {
          const auto* bank = store_.find(share_key(round));
          std::vector<const rep*> rows;
          rows.reserve(params_.num_users);
          for (std::uint32_t i = 0; i < params_.num_users; ++i) {
            if (payload[i] == 0) continue;
            lsa::require<lsa::ProtocolError>(
                bank != nullptr && bank->has(i),
                "user: missing share for survivor");
            rows.push_back(bank->rows.row_ptr(i));
          }
          lsa::field::add_accumulate_blocked<Fp>(
              std::span<rep>(acc), std::span<const rep* const>(rows),
              params_.exec.chunk_reps);
        }
        if (byzantine_) {
          // Arbitrary falsification; any nonzero offset breaks the
          // codeword, which is what the server must locate and discard.
          for (std::size_t k = 0; k < acc.size(); ++k) {
            acc[k] = Fp::add(acc[k], Fp::from_u64(0x0bad + 7 * k + id_));
          }
        }
        transport_.send_row(MsgType::kAggregatedShares, id_,
                            static_cast<std::uint32_t>(params_.num_users),
                            round, std::span<const rep>(acc));
        // Shares for this round are consumed — except in persistent
        // mode, where the epoch bank serves every round until the
        // membership changes (advance_epoch clears it). drop() touches
        // only this round's parity slot, so the next round's offline
        // stage may be banking into the other slot concurrently.
        if (!params_.persistent_cohort) store_.drop(round);
        break;
      }
      case MsgType::kAggregateResult:
        last_result_.emplace(payload.begin(), payload.end());
        break;
      default:
        throw lsa::ProtocolError("user: unexpected message type");
    }
  }

  /// The arrival-side bank for a wire `round` tag. prepare() is idempotent:
  /// in serial drives it lazily keys the slot on first touch; under the
  /// pipelined driver the slot was pre-keyed (prepare_round) so this is a
  /// read-only lookup even while stages overlap.
  ShareBank<Fp>& bank_for(std::uint64_t round) {
    return store_.prepare(round, params_.num_users, codec_.segment_len());
  }

  /// Claims the parity mask stash for `round` (overwriting the round two
  /// back, whose upload has long happened).
  std::vector<rep>& stash_mask(std::uint64_t round) {
    const auto slot = round % kShareRetentionRounds;
    pending_mask_round_[slot] = round;
    return pending_mask_[slot];
  }

  std::uint32_t id_;
  lsa::protocol::Params params_;
  lsa::coding::MaskCodec<Fp> codec_;
  std::uint64_t master_seed_;
  Transport& transport_;
  bool byzantine_ = false;
  /// store_.find(key)->rows.row(i) = [~z_i]_key held by this device (keyed
  /// by epoch instead of round in persistent-cohort mode). Parity ring:
  /// two rounds in flight max, older slots retire on re-key.
  BankRing<Fp> store_;
  lsa::field::FlatMatrix<Fp> enc_;  ///< encode arena, reused per round
  /// Mask generated by the offline stage, parity-slotted per round,
  /// consumed by the matching upload_masked.
  std::array<std::vector<rep>, kShareRetentionRounds> pending_mask_;
  std::array<std::uint64_t, kShareRetentionRounds> pending_mask_round_{
      BankRing<Fp>::kUnkeyed, BankRing<Fp>::kUnkeyed};
  std::optional<std::vector<rep>> last_result_;
  std::uint64_t epoch_ = 0;          ///< persistent-cohort epoch counter
  bool epoch_setup_done_ = false;    ///< offline setup done for epoch_
  std::uint64_t offline_encodes_ = 0;
};

/// The aggregation server state machine (one cohort). The multi-session
/// sharded server in src/server/aggregation_server.h runs many of these
/// concurrently, one per session.
class AggregationServer final : public Party {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  /// byzantine_tolerant: recovery uses ALL arrived aggregated shares and
  /// the error-correcting decode — up to floor((responses - U)/2) falsified
  /// shares are located, discarded and reported via last_corrupted().
  AggregationServer(const lsa::protocol::Params& params, Transport& transport,
                    bool byzantine_tolerant = false)
      : params_(params),
        codec_(params.num_users, params.target_survivors, params.privacy,
               params.model_dim),
        transport_(transport),
        byzantine_tolerant_(byzantine_tolerant) {}

  void handle(const Message& m) override {
    on_payload(m.type, m.sender, m.round, m.payload);
  }
  void handle_view(const lsa::transport::FrameView& f) override {
    on_payload(f.type, f.sender, f.round, f.payload);
  }

  /// Ends the upload phase: U1 = everyone whose masked model arrived.
  /// Broadcasts the survivor set so users return aggregated shares.
  void begin_recovery(std::uint64_t round) {
    const auto* models = masked_.find(round);
    lsa::require<lsa::ProtocolError>(
        models != nullptr &&
            models->count() >= params_.target_survivors,
        "server: fewer than U masked models arrived");
    std::vector<rep> bitmap(params_.num_users, Fp::zero);
    for (std::uint32_t i = 0; i < params_.num_users; ++i) {
      if (models->has(i)) bitmap[i] = Fp::one;
    }
    transport_.broadcast_row(MsgType::kSurvivorSet,
                             static_cast<std::uint32_t>(params_.num_users),
                             round, std::span<const rep>(bitmap),
                             static_cast<std::uint32_t>(params_.num_users));
  }

  /// Completes the round once at least U aggregated shares arrived:
  /// one-shot decode, subtract, broadcast the aggregate. Returns it.
  [[nodiscard]] std::vector<rep> finish_round(std::uint64_t round) {
    const auto* sbank = agg_shares_.find(round);
    lsa::require<lsa::ProtocolError>(
        sbank != nullptr &&
            sbank->count() >= params_.target_survivors,
        "server: fewer than U aggregated-share responses — "
        "unrecoverable round");
    const auto& shares = *sbank;
    std::vector<std::size_t> owners;
    std::vector<const rep*> rows;
    for (std::uint32_t user = 0; user < params_.num_users; ++user) {
      if (!shares.has(user)) continue;
      // Byzantine-tolerant mode keeps every response: the extras beyond U
      // are the redundancy the error-correcting decode spends.
      if (!byzantine_tolerant_ && owners.size() == params_.target_survivors) {
        break;
      }
      owners.push_back(user);
      rows.push_back(shares.rows.row_ptr(user));
    }
    std::vector<rep> agg_mask;
    if (byzantine_tolerant_) {
      std::vector<std::vector<rep>> payloads;
      payloads.reserve(owners.size());
      for (const std::size_t user : owners) {
        payloads.push_back(shares.rows.row_copy(user));
      }
      auto corrected = codec_.decode_aggregate_corrected(owners, payloads);
      agg_mask = std::move(corrected.aggregate);
      last_corrupted_.assign(corrected.corrupted_owners.begin(),
                             corrected.corrupted_owners.end());
    } else {
      agg_mask = codec_.decode_aggregate_rows(
          owners, std::span<const rep* const>(rows), params_.exec,
          params_.decode);
    }

    std::vector<rep> result(params_.model_dim, Fp::zero);
    {
      const auto* models = masked_.find(round);
      lsa::require<lsa::ProtocolError>(models != nullptr,
                                       "server: round state already retired");
      std::vector<const rep*> model_rows;
      for (std::uint32_t user = 0; user < params_.num_users; ++user) {
        if (models->has(user)) {
          model_rows.push_back(models->rows.row_ptr(user));
        }
      }
      lsa::field::add_accumulate_blocked<Fp>(
          std::span<rep>(result), std::span<const rep* const>(model_rows),
          params_.exec.chunk_reps);
    }
    lsa::field::sub_inplace<Fp>(std::span<rep>(result),
                                std::span<const rep>(agg_mask));

    transport_.broadcast_row(MsgType::kAggregateResult,
                             static_cast<std::uint32_t>(params_.num_users),
                             round, std::span<const rep>(result),
                             static_cast<std::uint32_t>(params_.num_users));
    masked_.drop(round);
    agg_shares_.drop(round);
    return result;
  }

  /// Users whose masked model arrived for `round` (the de-facto U1).
  [[nodiscard]] std::vector<std::uint32_t> arrived(std::uint64_t round) const {
    std::vector<std::uint32_t> out;
    const auto* models = masked_.find(round);
    if (models == nullptr) return out;
    for (std::uint32_t i = 0; i < params_.num_users; ++i) {
      if (models->has(i)) out.push_back(i);
    }
    return out;
  }

  /// Responders whose aggregated shares were falsified in the last
  /// finish_round (Byzantine-tolerant mode only; empty otherwise).
  [[nodiscard]] const std::vector<std::size_t>& last_corrupted() const {
    return last_corrupted_;
  }

  /// The session codec: exposes last_decode_stats() (which kernel ran,
  /// plan-cache hit, setup-vs-stream split) for session telemetry.
  [[nodiscard]] const lsa::coding::MaskCodec<Fp>& codec() const {
    return codec_;
  }

 private:
  void on_payload(MsgType type, std::uint32_t sender, std::uint64_t round,
                  std::span<const rep> payload) {
    switch (type) {
      case MsgType::kMaskedModel:
        lsa::require<lsa::ProtocolError>(
            payload.size() == params_.model_dim,
            "server: bad masked model length");
        bank_for(masked_, round, params_.model_dim).put(sender, payload);
        break;
      case MsgType::kAggregatedShares:
        lsa::require<lsa::ProtocolError>(
            payload.size() == codec_.segment_len(),
            "server: bad aggregated share length");
        bank_for(agg_shares_, round, codec_.segment_len())
            .put(sender, payload);
        break;
      default:
        throw lsa::ProtocolError("server: unexpected message type");
    }
  }

  ShareBank<Fp>& bank_for(BankRing<Fp>& store, std::uint64_t round,
                          std::size_t cols) {
    return store.prepare(round, params_.num_users, cols);
  }

  lsa::protocol::Params params_;
  lsa::coding::MaskCodec<Fp> codec_;
  Transport& transport_;
  bool byzantine_tolerant_ = false;
  std::vector<std::size_t> last_corrupted_;
  /// masked_.find(r)->rows.row(i) = user i's masked model for round r.
  /// Parity ring: uploads for round r+1 may bank into the other slot while
  /// round r is still mid-recovery (two rounds in flight under pipelining;
  /// the server machine itself is only ever touched by one online stage
  /// and its own mailbox lane, both serial per session).
  BankRing<Fp> masked_;
  /// agg_shares_.find(r)->rows.row(j) = responder j's aggregated share.
  BankRing<Fp> agg_shares_;
};

/// Owns a router, N user devices and the server; pumps messages to
/// completion. The unit tests drive rounds through this.
class Network {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  Network(lsa::protocol::Params params, std::uint64_t seed,
          bool byzantine_tolerant = false)
      : params_(params), router_(params.num_users + 1) {
    params_.validate_and_resolve();
    server_ = std::make_unique<AggregationServer>(params_, router_,
                                                  byzantine_tolerant);
    for (std::uint32_t i = 0; i < params_.num_users; ++i) {
      users_.push_back(
          std::make_unique<UserDevice>(i, params_, seed, router_));
    }
  }

  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] UserDevice& user(std::size_t i) { return *users_.at(i); }
  [[nodiscard]] AggregationServer& server() { return *server_; }

  /// Delivers queued messages until the network is quiet.
  void pump() {
    Message m;
    while (router_.deliver_next(m)) {
      if (m.receiver == params_.num_users) {
        server_->handle(m);
      } else {
        users_.at(m.receiver)->handle(m);
      }
    }
  }

  /// Runs one full round: all users start (offline + upload), `crash_after_
  /// upload` users then crash, the server recovers from the remaining
  /// responders. Returns the aggregate INCLUDING any user whose masked
  /// model arrived before it crashed (the "delayed user" semantics).
  [[nodiscard]] std::vector<rep> run_round(
      std::uint64_t round, const std::vector<std::vector<rep>>& models,
      const std::vector<std::size_t>& crash_after_upload) {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(params_.simd);
    lsa::require<lsa::ProtocolError>(models.size() == params_.num_users,
                                     "network: wrong number of models");
    for (std::uint32_t i = 0; i < params_.num_users; ++i) {
      users_[i]->start_round(round, models[i]);
    }
    pump();  // offline shares + masked models all delivered
    for (auto i : crash_after_upload) router_.crash(i);
    server_->begin_recovery(round);
    pump();  // survivor set out, aggregated shares back
    auto result = server_->finish_round(round);
    pump();  // result broadcast
    return result;
  }

 private:
  lsa::protocol::Params params_;
  Router router_;
  std::unique_ptr<AggregationServer> server_;
  std::vector<std::unique_ptr<UserDevice>> users_;
};

}  // namespace lsa::runtime
