// Transport seam between the state machines and the message plane.
//
// The state machines in runtime/machines.h and runtime/async_machines.h
// emit traffic through this interface and never see what carries it:
//
//   * runtime::Router — the legacy single-threaded global-FIFO queue,
//     now an adapter implementing Transport via the copying Message path;
//   * transport::ConcurrentRouter — the sharded MPSC engine whose
//     send_row override builds zero-copy frames straight from arena rows.
//
// send_row is THE hot entry point: senders pass a row view (FlatMatrix
// arena row, local vector span) and the transport decides whether a
// Message materializes. The default implementation is the legacy copying
// adapter, so every Transport is drop-in compatible; zero-copy transports
// override it.
#pragma once

#include <span>

#include "runtime/wire.h"
#include "transport/stats.h"

namespace lsa::runtime {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues a fully materialized Message (legacy path).
  virtual void send(const Message& m) = 0;

  /// Sends a payload row view. Default: materialize a Message (one counted
  /// intermediate payload copy) and forward to send(). Zero-copy
  /// transports override this to frame straight from the view.
  virtual void send_row(MsgType type, std::uint32_t sender,
                        std::uint32_t receiver, std::uint64_t round,
                        std::span<const lsa::field::Fp32::rep> payload) {
    Message m;
    m.type = type;
    m.sender = sender;
    m.receiver = receiver;
    m.round = round;
    m.payload.assign(payload.begin(), payload.end());
    lsa::transport::counters().note_copy(4 * payload.size());
    send(m);
  }

  /// Broadcasts one payload to receivers 0..num_receivers-1 (the server's
  /// survivor-set / result / manifest fan-outs). Default: one send_row per
  /// receiver. Ref-counted transports override this to frame ONCE and
  /// share the buffer across all mailboxes.
  virtual void broadcast_row(MsgType type, std::uint32_t sender,
                             std::uint64_t round,
                             std::span<const lsa::field::Fp32::rep> payload,
                             std::uint32_t num_receivers) {
    for (std::uint32_t j = 0; j < num_receivers; ++j) {
      send_row(type, sender, j, round, payload);
    }
  }
};

}  // namespace lsa::runtime
