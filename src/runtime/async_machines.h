// Asynchronous LightSecAgg as communicating state machines (paper §4.2,
// Appendix F) — the distributed-system shape of protocol/async_lightsecagg.h,
// with every byte crossing the fault-injecting Router in wire format.
//
// Message flow per buffer cycle (buffered async FL, FedBuff-style):
//   1. A user finishing local training at staleness tau_i = now - t_i sends
//      its *timestamped* encoded mask shares (kEncodedMaskShare, round = t_i)
//      to the other users and its masked update (kMaskedModel, round = t_i)
//      to the server.
//   2. When K updates are buffered the server broadcasts a *manifest*
//      (kBufferManifest): the (user, born-round, integer staleness weight)
//      triples of the buffered updates, at the aggregation round `now`.
//   3. Each reachable user returns sum_b w_b * [~z_{u_b}^{(t_b)}]_j
//      (kWeightedShares) — combining shares that were generated in
//      *different rounds*, which is exactly the commutativity property that
//      makes LightSecAgg async-capable (and SecAgg/SecAgg+ not, Remark 1).
//   4. From any U responses the server one-shot decodes the weighted
//      aggregate mask, removes it and broadcasts the result.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "quant/staleness.h"
#include "runtime/arrival_scheduler.h"
#include "runtime/machines.h"  // Party
#include "runtime/router.h"
#include "runtime/transport.h"
#include "runtime/wire.h"

namespace lsa::runtime {

/// One edge device in the asynchronous protocol.
class AsyncUserDevice final : public Party {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  AsyncUserDevice(std::uint32_t id, const lsa::protocol::Params& params,
                  std::uint64_t master_seed, Transport& transport)
      : id_(id),
        params_(params),
        codec_(params.num_users, params.target_survivors, params.privacy,
               params.model_dim),
        master_seed_(master_seed),
        transport_(transport) {}

  [[nodiscard]] std::uint32_t id() const { return id_; }
  /// Number of stored (owner, born_round) shares across retained rounds.
  [[nodiscard]] std::size_t stored_shares() const {
    std::size_t c = 0;
    for (const auto& [born, bank] : store_) c += bank.count();
    return c;
  }

  /// Finishes a local update born at global round t_i: timestamped mask
  /// sharing (offline) + masked upload. The mask is derived
  /// deterministically from (seed, id, born_round), mirroring App. F.3.1.
  /// In persistent-cohort mode the mask is instead derived from
  /// (seed, id, epoch) and its shares are distributed once per epoch under
  /// wire round = epoch; subsequent updates are masked-upload only.
  void submit_update(std::uint64_t born_round, std::span<const rep> update) {
    lsa::require<lsa::ProtocolError>(update.size() == params_.model_dim,
                                     "async user: wrong update dimension");
    if (params_.persistent_cohort) {
      auto seed = lsa::crypto::derive_subseed(
          lsa::crypto::seed_from_u64(
              master_seed_ ^ (0xae90c4ull + id_ * 0x9e3779b97f4a7c15ull)),
          epoch_);
      lsa::crypto::Prg prg(seed);
      auto mask = lsa::field::uniform_vector<Fp>(params_.model_dim, prg);
      if (!epoch_setup_done_) {
        enc_.reset_for_overwrite(params_.num_users, codec_.segment_len());
        codec_.encode_into(std::span<const rep>(mask), prg, enc_, 0, 1,
                           params_.exec.chunk_reps);
        ++offline_encodes_;
        for (std::uint32_t j = 0; j < params_.num_users; ++j) {
          if (j == id_) {
            bank_for(epoch_).put(id_, enc_.row(j));
            continue;
          }
          transport_.send_row(MsgType::kEncodedMaskShare, id_, j, epoch_,
                              enc_.row(j));
        }
        epoch_setup_done_ = true;
      }
      const auto masked =
          lsa::field::add<Fp>(update, std::span<const rep>(mask));
      transport_.send_row(MsgType::kMaskedModel, id_,
                          static_cast<std::uint32_t>(params_.num_users),
                          born_round, std::span<const rep>(masked));
      return;
    }
    auto seed = lsa::crypto::derive_subseed(
        lsa::crypto::seed_from_u64(master_seed_ ^
                                   (0xa511ull + id_ * 0x9e3779b97f4a7c15ull)),
        born_round);
    lsa::crypto::Prg prg(seed);
    auto mask = lsa::field::uniform_vector<Fp>(params_.model_dim, prg);
    // Encode all N shares into the reused flat arena, then ship rows.
    enc_.reset_for_overwrite(params_.num_users, codec_.segment_len());
    codec_.encode_into(std::span<const rep>(mask), prg, enc_, 0, 1,
                       params_.exec.chunk_reps);
    ++offline_encodes_;
    for (std::uint32_t j = 0; j < params_.num_users; ++j) {
      if (j == id_) {
        bank_for(born_round).put(id_, enc_.row(j));
        continue;
      }
      transport_.send_row(MsgType::kEncodedMaskShare, id_, j, born_round,
                          enc_.row(j));
    }
    const auto masked =
        lsa::field::add<Fp>(update, std::span<const rep>(mask));
    transport_.send_row(MsgType::kMaskedModel, id_,
                        static_cast<std::uint32_t>(params_.num_users),
                        born_round, std::span<const rep>(masked));
  }

  /// Persistent-cohort epoch advance (membership change): next
  /// submit_update re-runs offline encoding + share distribution.
  void advance_epoch() {
    ++epoch_;
    epoch_setup_done_ = false;
    store_.clear();
  }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t offline_encodes() const {
    return offline_encodes_;
  }

  void handle(const Message& m) override {
    on_payload(m.type, m.sender, m.round, m.payload);
  }
  void handle_view(const lsa::transport::FrameView& f) override {
    on_payload(f.type, f.sender, f.round, f.payload);
  }

  [[nodiscard]] const std::optional<std::vector<rep>>& last_result() const {
    return last_result_;
  }

 private:
  void on_payload(MsgType type, std::uint32_t sender, std::uint64_t round,
                  std::span<const rep> payload) {
    switch (type) {
      case MsgType::kEncodedMaskShare:
        lsa::require<lsa::ProtocolError>(
            payload.size() == codec_.segment_len(),
            "async user: bad encoded share length");
        bank_for(round).put(sender, payload);
        break;
      case MsgType::kBufferManifest: {
        // Payload: triples (user, born_round, weight), see the server.
        // One fused weighted column sum across the manifested share rows.
        lsa::require<lsa::ProtocolError>(payload.size() % 3 == 0,
                                         "async user: bad manifest shape");
        std::vector<rep> acc(codec_.segment_len(), Fp::zero);
        {
          std::vector<rep> coeffs;
          std::vector<const rep*> rows;
          coeffs.reserve(payload.size() / 3);
          rows.reserve(payload.size() / 3);
          for (std::size_t e = 0; e < payload.size(); e += 3) {
            const std::uint32_t user = payload[e];
            const std::uint64_t born = payload[e + 1];
            lsa::require<lsa::ProtocolError>(
                user < params_.num_users,
                "async user: manifest user id out of range");
            // Persistent mode: every manifested update reuses its owner's
            // epoch mask, so all shares live under the epoch key.
            const auto it =
                store_.find(params_.persistent_cohort ? epoch_ : born);
            lsa::require<lsa::ProtocolError>(
                it != store_.end() && it->second.has(user),
                "async user: missing timestamped share for manifest entry");
            coeffs.push_back(payload[e + 2]);
            rows.push_back(it->second.rows.row_ptr(user));
          }
          lsa::field::axpy_accumulate_blocked<Fp>(
              std::span<rep>(acc), std::span<const rep>(coeffs),
              std::span<const rep* const>(rows), params_.exec.chunk_reps);
        }
        transport_.send_row(MsgType::kWeightedShares, id_,
                            static_cast<std::uint32_t>(params_.num_users),
                            round,  // the aggregation round `now`
                            std::span<const rep>(acc));
        // The manifested shares are consumed — except in persistent mode,
        // where epoch shares serve every round until advance_epoch().
        if (!params_.persistent_cohort) {
          for (std::size_t e = 0; e < payload.size(); e += 3) {
            const auto it = store_.find(payload[e + 1]);
            if (it == store_.end()) continue;
            it->second.present[payload[e]] = 0;
            if (it->second.count() == 0) store_.erase(it);
          }
        }
        break;
      }
      case MsgType::kAggregateResult:
        last_result_.emplace(payload.begin(), payload.end());
        break;
      default:
        throw lsa::ProtocolError("async user: unexpected message type");
    }
  }

  ShareBank<Fp>& bank_for(std::uint64_t born_round) {
    return ShareBank<Fp>::get_or_create(store_, born_round,
                                        params_.num_users,
                                        codec_.segment_len());
  }

  std::uint32_t id_;
  lsa::protocol::Params params_;
  lsa::coding::MaskCodec<Fp> codec_;
  std::uint64_t master_seed_;
  Transport& transport_;
  /// store_[born_round].rows.row(u) = [~z_u^{(born)}]_this held here
  /// (keyed by epoch instead of born round in persistent-cohort mode).
  std::map<std::uint64_t, ShareBank<Fp>> store_;
  lsa::field::FlatMatrix<Fp> enc_;  ///< encode arena, reused per update
  std::optional<std::vector<rep>> last_result_;
  std::uint64_t epoch_ = 0;          ///< persistent-cohort epoch counter
  bool epoch_setup_done_ = false;    ///< offline setup done for epoch_
  std::uint64_t offline_encodes_ = 0;
};

/// The buffered asynchronous aggregation server.
class AsyncAggregationServer final : public Party {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  struct Output {
    std::vector<rep> weighted_sum;  ///< sum_b w_b * Delta_b, mask removed
    std::uint64_t weight_sum = 0;   ///< sum_b w_b (for normalization)
  };

  AsyncAggregationServer(const lsa::protocol::Params& params,
                         std::size_t buffer_k,
                         lsa::quant::StalenessPolicy staleness,
                         std::uint64_t c_g, Transport& transport)
      : params_(params),
        buffer_k_(buffer_k),
        staleness_(staleness),
        c_g_(c_g),
        codec_(params.num_users, params.target_survivors, params.privacy,
               params.model_dim),
        transport_(transport) {
    lsa::require<lsa::ConfigError>(buffer_k_ >= 1,
                                   "async server: buffer K must be >= 1");
  }

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] bool buffer_full() const {
    return buffer_.size() >= buffer_k_;
  }
  /// The session codec: exposes last_decode_stats() (plan-cache hit and the
  /// setup-vs-stream split of the one-shot weighted recovery).
  [[nodiscard]] const lsa::coding::MaskCodec<Fp>& codec() const {
    return codec_;
  }

  void handle(const Message& m) override {
    on_payload(m.type, m.sender, m.round, m.payload);
  }
  void handle_view(const lsa::transport::FrameView& f) override {
    on_payload(f.type, f.sender, f.round, f.payload);
  }

  /// Broadcasts the buffer manifest at aggregation round `now`: the users
  /// need (user, born_round, weight) per buffered update to form their
  /// weighted share responses. Weights are public integers (eq. 34).
  void begin_recovery(std::uint64_t now) {
    lsa::require<lsa::ProtocolError>(buffer_full(),
                                     "async server: buffer not full yet");
    std::vector<rep> manifest;
    manifest.reserve(3 * buffer_.size());
    weight_sum_ = 0;
    for (const auto& b : buffer_) {
      lsa::require<lsa::ProtocolError>(b.born_round <= now,
                                       "async server: update from future");
      lsa::require<lsa::ProtocolError>(
          b.born_round < Fp::modulus,
          "async server: round index exceeds wire range");
      const std::uint64_t w = lsa::quant::quantized_staleness_weight(
          staleness_, now - b.born_round, c_g_);
      manifest.push_back(static_cast<rep>(b.user));
      manifest.push_back(static_cast<rep>(b.born_round));
      manifest.push_back(static_cast<rep>(w));
      weight_sum_ += w;
    }
    lsa::require<lsa::ProtocolError>(
        weight_sum_ > 0, "async server: all weights rounded to zero");
    weighted_shares_.clear();
    transport_.broadcast_row(MsgType::kBufferManifest,
                             static_cast<std::uint32_t>(params_.num_users),
                             now, std::span<const rep>(manifest),
                             static_cast<std::uint32_t>(params_.num_users));
    manifest_ = std::move(manifest);
  }

  /// Completes the cycle once >= U weighted-share responses arrived:
  /// weighted masked sum, one-shot decode of the weighted aggregate mask,
  /// subtraction, result broadcast. Consumes the buffer.
  [[nodiscard]] Output finish_cycle(std::uint64_t now) {
    lsa::require<lsa::ProtocolError>(
        weighted_shares_.size() >= params_.target_survivors,
        "async server: fewer than U weighted-share responses");

    std::vector<rep> acc(params_.model_dim, Fp::zero);
    {
      // Buffer order matches manifest order by construction; one fused
      // weighted column sum across the MANIFESTED updates only (an upload
      // that arrived after begin_recovery sits in the buffer but has no
      // manifest entry and must be ignored, as in the legacy loop).
      const std::size_t k = manifest_.size() / 3;
      std::vector<rep> coeffs(k);
      std::vector<const rep*> rows(k);
      for (std::size_t e = 0; e < manifest_.size(); e += 3) {
        coeffs[e / 3] = manifest_[e + 2];
        rows[e / 3] = buffer_[e / 3].masked.data();
      }
      lsa::field::axpy_accumulate_blocked<Fp>(
          std::span<rep>(acc), std::span<const rep>(coeffs),
          std::span<const rep* const>(rows), params_.exec.chunk_reps);
    }

    std::vector<std::size_t> owners;
    std::vector<const rep*> share_rows;
    for (const auto& [user, vec] : weighted_shares_) {
      if (owners.size() == params_.target_survivors) break;
      owners.push_back(user);
      share_rows.push_back(vec.data());
    }
    auto agg_mask = codec_.decode_aggregate_rows(
        owners, std::span<const rep* const>(share_rows), params_.exec,
        params_.decode);
    lsa::field::sub_inplace<Fp>(std::span<rep>(acc),
                                std::span<const rep>(agg_mask));

    transport_.broadcast_row(MsgType::kAggregateResult,
                             static_cast<std::uint32_t>(params_.num_users),
                             now, std::span<const rep>(acc),
                             static_cast<std::uint32_t>(params_.num_users));
    buffer_.clear();
    weighted_shares_.clear();
    manifest_.clear();
    return Output{std::move(acc), weight_sum_};
  }

 private:
  void on_payload(MsgType type, std::uint32_t sender, std::uint64_t round,
                  std::span<const rep> payload) {
    switch (type) {
      case MsgType::kMaskedModel:
        lsa::require<lsa::ProtocolError>(
            payload.size() == params_.model_dim,
            "async server: bad masked update length");
        buffer_.push_back(
            {sender, round, std::vector<rep>(payload.begin(), payload.end())});
        break;
      case MsgType::kWeightedShares:
        lsa::require<lsa::ProtocolError>(
            payload.size() == codec_.segment_len(),
            "async server: bad weighted share length");
        weighted_shares_[sender].assign(payload.begin(), payload.end());
        break;
      default:
        throw lsa::ProtocolError("async server: unexpected message type");
    }
  }

  struct Buffered {
    std::uint32_t user = 0;
    std::uint64_t born_round = 0;
    std::vector<rep> masked;
  };

  lsa::protocol::Params params_;
  std::size_t buffer_k_;
  lsa::quant::StalenessPolicy staleness_;
  std::uint64_t c_g_;
  lsa::coding::MaskCodec<Fp> codec_;
  Transport& transport_;
  std::vector<Buffered> buffer_;
  std::vector<rep> manifest_;
  std::uint64_t weight_sum_ = 0;
  std::map<std::uint32_t, std::vector<rep>> weighted_shares_;
};

/// Owns the router and all async parties; pumps messages to completion.
class AsyncNetwork {
 public:
  using Fp = lsa::field::Fp32;
  using rep = Fp::rep;

  /// t_i = born_round (staleness = now - t_i); shared with the arrival
  /// scheduler so session and legacy drives consume identical patterns.
  using Arrival = lsa::runtime::Arrival;

  AsyncNetwork(lsa::protocol::Params params, std::size_t buffer_k,
               lsa::quant::StalenessPolicy staleness, std::uint64_t c_g,
               std::uint64_t seed)
      : params_(params), router_(params.num_users + 1) {
    params_.validate_and_resolve();
    server_ = std::make_unique<AsyncAggregationServer>(
        params_, buffer_k, staleness, c_g, router_);
    for (std::uint32_t i = 0; i < params_.num_users; ++i) {
      users_.push_back(
          std::make_unique<AsyncUserDevice>(i, params_, seed, router_));
    }
  }

  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] AsyncUserDevice& user(std::size_t i) { return *users_.at(i); }
  [[nodiscard]] AsyncAggregationServer& server() { return *server_; }

  void pump() {
    Message m;
    while (router_.deliver_next(m)) {
      if (m.receiver == params_.num_users) {
        server_->handle(m);
      } else {
        users_.at(m.receiver)->handle(m);
      }
    }
  }

  /// Runs one buffer cycle at aggregation round `now`: the arrivals submit
  /// their (stale) updates, users in `crash_before_recovery` go silent, and
  /// the server aggregates once the buffer is full.
  [[nodiscard]] AsyncAggregationServer::Output run_cycle(
      std::uint64_t now, const std::vector<Arrival>& arrivals,
      const std::vector<std::size_t>& crash_before_recovery = {}) {
    for (const auto& a : arrivals) {
      users_.at(a.user)->submit_update(a.born_round, a.update);
    }
    pump();  // shares + masked updates delivered
    for (const auto i : crash_before_recovery) router_.crash(i);
    server_->begin_recovery(now);
    pump();  // manifest out, weighted shares back
    auto out = server_->finish_cycle(now);
    pump();  // result broadcast
    return out;
  }

 private:
  lsa::protocol::Params params_;
  Router router_;
  std::unique_ptr<AsyncAggregationServer> server_;
  std::vector<std::unique_ptr<AsyncUserDevice>> users_;
};

}  // namespace lsa::runtime
