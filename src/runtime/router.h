// In-process message router for the distributed runtime.
//
// Parties never call each other — they emit serialized frames into the
// router, which delivers them (optionally dropping frames from "crashed"
// parties or corrupting payloads, for fault-injection tests). Delivery is
// FIFO per (sender, receiver) link, matching a TCP-like transport.
//
// Router is the legacy *adapter* face of the transport seam
// (runtime/transport.h): single-threaded, one global FIFO deque, every
// payload copied through Message vectors. The concurrent, zero-copy engine
// is transport::ConcurrentRouter; both drive the same state machines.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/error.h"
#include "runtime/transport.h"
#include "runtime/wire.h"

namespace lsa::runtime {

class Router final : public Transport {
 public:
  /// num_parties includes the server; party ids are 0..num_parties-1.
  explicit Router(std::size_t num_parties) : down_(num_parties, false) {}

  /// Marks a party as crashed: its future sends are dropped silently
  /// (messages already in flight still deliver — "drops after upload").
  void crash(std::size_t party) {
    lsa::require(party < down_.size(), "router: party id out of range");
    down_[party] = true;
  }

  [[nodiscard]] bool is_down(std::size_t party) const {
    return down_.at(party);
  }

  /// Brings a crashed party back (cross-device users rejoin later rounds).
  void revive(std::size_t party) {
    lsa::require(party < down_.size(), "router: party id out of range");
    down_[party] = false;
  }

  /// Optional fault hook: called on every frame; may mutate it (corruption
  /// testing) or return false to drop it (lossy-link testing).
  using FaultHook = std::function<bool(std::vector<std::uint8_t>&)>;
  void set_fault_hook(FaultHook hook) { hook_ = std::move(hook); }

  /// Serializes and enqueues a message (dropped if the sender is down).
  void send(const Message& m) override {
    lsa::require(m.sender < down_.size() && m.receiver < down_.size(),
                 "router: endpoint out of range");
    if (down_[m.sender]) return;
    auto frame = serialize(m);
    if (hook_ && !hook_(frame)) return;
    queue_.push_back(std::move(frame));
    ++sent_;
  }

  /// Row-view send: serializes straight from the view into the frame (ONE
  /// counted payload copy — matching the pre-Transport-seam cost, where
  /// payload vectors were moved into the Message), skipping the default
  /// adapter's intermediate Message materialization.
  void send_row(MsgType type, std::uint32_t sender, std::uint32_t receiver,
                std::uint64_t round,
                std::span<const lsa::field::Fp32::rep> payload) override {
    lsa::require(sender < down_.size() && receiver < down_.size(),
                 "router: endpoint out of range");
    if (down_[sender]) return;
    std::vector<std::uint8_t> frame(kHeaderBytes + 4 * payload.size());
    const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        4 * payload.size()));
    write_header(frame.data(), type, sender, receiver, round,
                 static_cast<std::uint32_t>(payload.size()), crc);
    if (!payload.empty()) {
      // copy-ok: the serial reference router stages frames in owned
      // vectors by design; note_copy below keeps the ledger honest.
      std::memcpy(frame.data() + kHeaderBytes, payload.data(),
                  4 * payload.size());
    }
    lsa::transport::counters().note_copy(4 * payload.size());
    if (hook_ && !hook_(frame)) return;
    queue_.push_back(std::move(frame));
    ++sent_;
  }

  /// Delivers the next frame (deserializing it) or returns false when idle.
  /// Frames addressed to crashed parties are discarded.
  [[nodiscard]] bool deliver_next(Message& out) {
    while (!queue_.empty()) {
      auto frame = std::move(queue_.front());
      queue_.pop_front();
      Message m = deserialize(frame);  // throws on corruption
      if (down_[m.receiver]) continue;
      out = std::move(m);
      ++delivered_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }

 private:
  std::vector<bool> down_;
  std::deque<std::vector<std::uint8_t>> queue_;
  FaultHook hook_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace lsa::runtime
