// Small statistics helpers used by tests, benches and the timing simulator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lsa::common {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);

/// Pearson chi-square statistic for uniformity over `bins` equiprobable bins.
/// Used by statistical privacy tests: under H0 (uniform) the statistic follows
/// chi2 with bins-1 degrees of freedom.
[[nodiscard]] double chi_square_uniform(std::span<const std::size_t> bin_counts);

/// p-quantile (linear interpolation) of an unsorted sample; copies the input.
[[nodiscard]] double quantile(std::vector<double> xs, double p);

}  // namespace lsa::common
