#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace lsa::common {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double chi_square_uniform(std::span<const std::size_t> bin_counts) {
  if (bin_counts.empty()) return 0.0;
  std::size_t total = 0;
  for (auto c : bin_counts) total += c;
  const double expected =
      static_cast<double>(total) / static_cast<double>(bin_counts.size());
  if (expected == 0.0) return 0.0;
  double stat = 0.0;
  for (auto c : bin_counts) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 1.0) return xs.back();
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace lsa::common
