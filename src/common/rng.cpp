#include "common/rng.h"

#include <cmath>

namespace lsa::common {

std::uint64_t Xoshiro256ss::next_below(std::uint64_t n) {
  // Lemire's nearly-divisionless method with a rejection step to remove bias.
  if (n == 0) return 0;
  unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256ss::next_gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace lsa::common
