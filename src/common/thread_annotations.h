// Clang Thread Safety Analysis vocabulary for the concurrent planes.
//
// Every mutex-guarded structure in src/{transport,server,sys,net,coding}
// states its locking contract with these macros; a dedicated CI leg builds
// the tier-1 target set under clang with -Wthread-safety -Werror so a
// guarded member can never be touched without its lock — statically, under
// every schedule, before TSAN ever has to produce the interleaving.
//
// Under any compiler that is not clang the macros expand to nothing, so the
// annotations are free on the gcc reference toolchain.
//
// Convention (recorded in ROADMAP.md, PR 10):
//   * Guard with lsa::sync::Mutex (annotated capability), never a bare
//     std::mutex — libstdc++'s mutex carries no annotations, so TSA cannot
//     see through it.
//   * Scope locks with lsa::sync::MutexLock; condition-variable waits go
//     through MutexLock::native_lock() with the predicate written as an
//     explicit while-loop in the scope that holds the lock (lambda
//     predicates are analyzed as separate unlocked functions).
//   * Private helpers that expect the lock already held take
//     LSA_REQUIRES(mu); public entry points that must not be called with it
//     held take LSA_EXCLUDES(mu).
//   * LSA_NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort and
//     every use carries a one-line justification at the site.
#pragma once

#include <mutex>

#if defined(__clang__)
#define LSA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LSA_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability (mutexes, locks).
#define LSA_CAPABILITY(x) LSA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define LSA_SCOPED_CAPABILITY LSA_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define LSA_GUARDED_BY(x) LSA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define LSA_PT_GUARDED_BY(x) LSA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: the listed capabilities are already held.
#define LSA_REQUIRES(...) \
  LSA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and returns holding them.
#define LSA_ACQUIRE(...) \
  LSA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define LSA_RELEASE(...) \
  LSA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define LSA_TRY_ACQUIRE(result, ...) \
  LSA_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be entered with the listed capabilities held
/// (deadlock guard for public entry points that take the lock themselves).
#define LSA_EXCLUDES(...) LSA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares the capability a getter hands back (lock accessors).
#define LSA_RETURN_CAPABILITY(x) LSA_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must carry
/// a one-line justification comment at the site.
#define LSA_NO_THREAD_SAFETY_ANALYSIS \
  LSA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lsa::sync {

/// std::mutex dressed as a TSA capability. Same cost, same semantics —
/// the wrapper exists purely so GUARDED_BY/REQUIRES can name it.
class LSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LSA_ACQUIRE() { mu_.lock(); }
  void unlock() LSA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() LSA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// The wrapped mutex, for std::condition_variable interop only (cv
  /// waits need a std::unique_lock<std::mutex>). Callers reach it through
  /// MutexLock::native_lock(), never by locking it directly — a direct
  /// native().lock() would be invisible to the analysis.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, analysis-visible. Wraps std::unique_lock so
/// condition variables can wait on it via native_lock(); TSA models the
/// capability as held across the wait, which matches the invariant that
/// matters — the lock IS held whenever the waiting scope's code runs.
class LSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LSA_ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() LSA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait/wait_until only. The predicate
  /// must be an explicit while-loop in the calling scope (see header
  /// comment) so guarded reads stay inside the analyzed critical section.
  [[nodiscard]] std::unique_lock<std::mutex>& native_lock() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace lsa::sync
