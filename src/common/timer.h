// Wall-clock stopwatch used for calibrating the timing simulator and by the
// benchmark harness.
#pragma once

#include <chrono>

namespace lsa::common {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_sec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_sec() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lsa::common
