// Non-cryptographic pseudo-random number generation.
//
// All *simulation* randomness in this repository (dropout schedules, synthetic
// datasets, SGD sampling) flows through Xoshiro256ss instances seeded
// explicitly, so every experiment is reproducible from its seed. Cryptographic
// mask expansion uses crypto/prg.h (ChaCha20) instead — do not mix them up:
// xoshiro is fast but predictable by design.
#pragma once

#include <cstdint>
#include <limits>

namespace lsa::common {

/// SplitMix64: used only to expand a single 64-bit seed into the 256-bit
/// xoshiro state (the construction recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire rejection).
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal via Box–Muller (uses two uniforms per pair; caches one).
  double next_gaussian();

  /// Returns a new generator seeded from this one's stream; use to give each
  /// simulated user an independent child stream.
  Xoshiro256ss split() { return Xoshiro256ss(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace lsa::common
