// Error types shared across the LightSecAgg library.
//
// Contract violations detected at API boundaries throw a subclass of
// lsa::Error; internal invariant violations use assert(). Following the
// C++ Core Guidelines (E.2, I.5), errors that a caller can meaningfully
// react to (e.g. "too many users dropped to recover the aggregate") are
// typed so they can be caught independently.
#pragma once

#include <stdexcept>
#include <string>

namespace lsa {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A protocol-level failure: bad parameters (T + D >= N), too many dropouts
/// to recover, messages from unknown users, duplicate uploads, etc.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// A coding-layer failure: non-MDS evaluation points, insufficient shares
/// for interpolation, mismatched segment sizes.
class CodingError : public Error {
 public:
  using Error::Error;
};

/// A quantization-layer failure: field too small for the requested range,
/// value outside the representable window.
class QuantError : public Error {
 public:
  using Error::Error;
};

/// A configuration failure in the FL / simulation harness.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Throws E(msg) when cond is false. Used for API-boundary contract checks.
template <class E = Error>
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw E(msg);
}

}  // namespace lsa
