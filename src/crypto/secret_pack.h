// Packing byte secrets into field elements (and back).
//
// SecAgg secret-shares 32-byte seeds and 8-byte Diffie–Hellman secrets via
// Shamir over F_q. A field element of modulus Q can safely carry
// floor((bit_width(Q) - 1) / 8) bytes — always strictly less than Q, so no
// wrap-around is possible regardless of byte content.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace lsa::crypto {

template <class F>
[[nodiscard]] constexpr std::size_t bytes_per_element() {
  // bit_width(Q-1) bits represent values < Q; reserve one bit of headroom.
  const int bits = std::bit_width(static_cast<std::uint64_t>(F::modulus - 1));
  return static_cast<std::size_t>((bits - 1) / 8);
}

/// Number of field elements needed to pack n bytes.
template <class F>
[[nodiscard]] constexpr std::size_t packed_size(std::size_t n_bytes) {
  const std::size_t bpe = bytes_per_element<F>();
  return (n_bytes + bpe - 1) / bpe;
}

/// Packs bytes little-endian, bytes_per_element<F>() per field element.
template <class F>
[[nodiscard]] std::vector<typename F::rep> pack_bytes(
    std::span<const std::uint8_t> bytes) {
  const std::size_t bpe = bytes_per_element<F>();
  std::vector<typename F::rep> out;
  out.reserve(packed_size<F>(bytes.size()));
  for (std::size_t off = 0; off < bytes.size(); off += bpe) {
    std::uint64_t v = 0;
    const std::size_t n = std::min(bpe, bytes.size() - off);
    for (std::size_t b = 0; b < n; ++b) {
      v |= static_cast<std::uint64_t>(bytes[off + b]) << (8 * b);
    }
    out.push_back(static_cast<typename F::rep>(v));  // v < 2^(8*bpe) < Q
  }
  return out;
}

/// Inverse of pack_bytes; the caller supplies the original byte length.
template <class F>
[[nodiscard]] std::vector<std::uint8_t> unpack_bytes(
    std::span<const typename F::rep> elems, std::size_t n_bytes) {
  const std::size_t bpe = bytes_per_element<F>();
  lsa::require(packed_size<F>(n_bytes) == elems.size(),
               "unpack_bytes: element count does not match byte length");
  std::vector<std::uint8_t> out(n_bytes);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    std::uint64_t v = elems[i];
    const std::size_t off = i * bpe;
    const std::size_t n = std::min(bpe, n_bytes - off);
    for (std::size_t b = 0; b < n; ++b) {
      out[off + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

}  // namespace lsa::crypto
