// Shamir t-out-of-n secret sharing over F_q (Shamir 1979).
//
// SecAgg and SecAgg+ secret-share each user's private PRG seed b_i and
// Diffie–Hellman secret key sk_i so the server can reconstruct exactly one of
// the two (never both) per user during dropout recovery (§3).
//
// Sharing a vector secret shares each element independently with fresh
// polynomial coefficients. Privacy threshold t: any t shares reveal nothing;
// any t+1 reconstruct.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/error_correction.h"
#include "coding/lagrange.h"
#include "common/error.h"
#include "common/rng.h"
#include "crypto/secret_pack.h"
#include "field/flat_matrix.h"
#include "field/random_field.h"

namespace lsa::crypto {

template <class F>
struct ShamirShare {
  /// 1-based evaluation index (the x-coordinate is the index itself).
  std::uint32_t index = 0;
  /// One share element per secret element.
  std::vector<typename F::rep> values;
};

template <class F>
class ShamirScheme {
 public:
  using rep = typename F::rep;

  /// threshold t: privacy against t colluders, reconstruction from t+1.
  ShamirScheme(std::size_t threshold, std::size_t num_shares)
      : t_(threshold), n_(num_shares) {
    lsa::require(n_ >= 1 && t_ < n_, "shamir: need t < n, n >= 1");
    lsa::require(static_cast<std::uint64_t>(n_) < F::modulus,
                 "shamir: n must be smaller than the field");
  }

  [[nodiscard]] std::size_t threshold() const { return t_; }
  [[nodiscard]] std::size_t num_shares() const { return n_; }

  /// Splits `secret` into n shares (degree-t polynomial per element).
  template <lsa::field::BitSource G>
  [[nodiscard]] std::vector<ShamirShare<F>> share(
      std::span<const rep> secret, G& rng) const {
    std::vector<ShamirShare<F>> shares(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      shares[j].index = static_cast<std::uint32_t>(j + 1);
      shares[j].values.assign(secret.size(), F::zero);
    }
    std::vector<rep> coeffs(t_ + 1);
    for (std::size_t e = 0; e < secret.size(); ++e) {
      coeffs[0] = secret[e];
      for (std::size_t k = 1; k <= t_; ++k) {
        coeffs[k] = lsa::field::uniform<F>(rng);
      }
      for (std::size_t j = 0; j < n_; ++j) {
        // Horner evaluation at x = j+1.
        const rep x = static_cast<rep>(j + 1);
        rep acc = coeffs[t_];
        for (std::size_t k = t_; k-- > 0;) {
          acc = F::add(F::mul(acc, x), coeffs[k]);
        }
        shares[j].values[e] = acc;
      }
    }
    return shares;
  }

  /// Reconstructs the secret from any t+1 (or more) shares with distinct
  /// indices. Throws ProtocolError with fewer shares or duplicates.
  [[nodiscard]] std::vector<rep> reconstruct(
      std::span<const ShamirShare<F>> shares) const {
    lsa::require<lsa::ProtocolError>(
        shares.size() >= t_ + 1,
        "shamir: not enough shares to reconstruct");
    const std::size_t m = t_ + 1;  // exactly t+1 suffice
    std::vector<rep> xs(m);
    for (std::size_t j = 0; j < m; ++j) {
      lsa::require<lsa::ProtocolError>(
          shares[j].index >= 1 && shares[j].index <= n_,
          "shamir: share index out of range");
      xs[j] = static_cast<rep>(shares[j].index);
    }
    const auto w = lsa::coding::lagrange_weights_at<F>(xs, F::zero);
    const std::size_t len = shares[0].values.size();
    std::vector<rep> secret(len, F::zero);
    for (std::size_t j = 0; j < m; ++j) {
      lsa::require<lsa::ProtocolError>(shares[j].values.size() == len,
                                       "shamir: ragged share lengths");
      for (std::size_t e = 0; e < len; ++e) {
        secret[e] = F::add(secret[e], F::mul(w[j], shares[j].values[e]));
      }
    }
    return secret;
  }

  struct CorrectedSecret {
    std::vector<rep> secret;
    /// Share indices (1-based) whose values were falsified and discarded.
    std::vector<std::uint32_t> corrupted_indices;
  };

  /// Error-correcting reconstruction: with m >= t + 1 + 2e shares, locates
  /// and discards up to e falsified shares (a malicious share-holder model,
  /// complementing the honest-but-curious baseline) and reconstructs from
  /// the clean remainder. Location runs Berlekamp-Welch once on a random
  /// linear combination of the secret elements — every element of a share
  /// lies on the same x-coordinate, so one locator pass covers them all.
  /// Throws CodingError when more shares are falsified than the redundancy
  /// can fix (never silently mis-reconstructs).
  [[nodiscard]] CorrectedSecret reconstruct_corrected(
      std::span<const ShamirShare<F>> shares,
      std::uint64_t probe_seed = 0x5eedu) const {
    lsa::require<lsa::ProtocolError>(
        shares.size() >= t_ + 1,
        "shamir: not enough shares to reconstruct");
    const std::size_t m = shares.size();
    const std::size_t budget = (m - (t_ + 1)) / 2;
    const std::size_t len = shares[0].values.size();

    lsa::common::Xoshiro256ss rng(probe_seed);
    std::vector<rep> probe(len);
    lsa::field::fill_uniform<F>(std::span<rep>(probe), rng);

    std::vector<rep> xs(m), ys(m);
    for (std::size_t j = 0; j < m; ++j) {
      lsa::require<lsa::ProtocolError>(
          shares[j].index >= 1 && shares[j].index <= n_,
          "shamir: share index out of range");
      lsa::require<lsa::ProtocolError>(shares[j].values.size() == len,
                                       "shamir: ragged share lengths");
      xs[j] = static_cast<rep>(shares[j].index);
      rep acc = F::zero;
      for (std::size_t e = 0; e < len; ++e) {
        acc = F::add(acc, F::mul(probe[e], shares[j].values[e]));
      }
      ys[j] = acc;
    }
    const auto bw = lsa::coding::berlekamp_welch<F>(
        std::span<const rep>(xs), std::span<const rep>(ys), t_ + 1, budget);
    lsa::require<lsa::CodingError>(
        bw.has_value(),
        "shamir: more falsified shares than the redundancy can fix");

    CorrectedSecret out;
    std::vector<ShamirShare<F>> clean;
    std::size_t next_err = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (next_err < bw->error_positions.size() &&
          bw->error_positions[next_err] == j) {
        out.corrupted_indices.push_back(shares[j].index);
        ++next_err;
        continue;
      }
      clean.push_back(shares[j]);
    }
    out.secret = reconstruct(clean);
    return out;
  }

  /// Flat-arena variant of share(): writes share j's values into
  /// out.row(base + j*stride) for j = 0..n-1. The evaluation index of that
  /// row is implicitly j + 1 (pass it to reconstruct_rows). Identical
  /// polynomial/RNG draw structure to share(); no per-share heap vectors —
  /// a round's N x N share matrix becomes one allocation.
  template <lsa::field::BitSource G>
  void share_into(std::span<const rep> secret, G& rng,
                  lsa::field::FlatMatrix<F>& out, std::size_t base,
                  std::size_t stride) const {
    lsa::require(out.cols() >= secret.size(),
                 "shamir: arena columns too narrow for secret");
    lsa::require(n_ == 0 || base + (n_ - 1) * stride < out.rows(),
                 "shamir: arena too small for n share rows");
    std::vector<rep> coeffs(t_ + 1);
    for (std::size_t e = 0; e < secret.size(); ++e) {
      coeffs[0] = secret[e];
      for (std::size_t k = 1; k <= t_; ++k) {
        coeffs[k] = lsa::field::uniform<F>(rng);
      }
      for (std::size_t j = 0; j < n_; ++j) {
        // Horner evaluation at x = j+1.
        const rep x = static_cast<rep>(j + 1);
        rep acc = coeffs[t_];
        for (std::size_t k = t_; k-- > 0;) {
          acc = F::add(F::mul(acc, x), coeffs[k]);
        }
        out(base + j * stride, e) = acc;
      }
    }
  }

  /// Precomputed reconstruction weights for one fixed responder set — the
  /// plan-based recovery path. SecAgg/SecAgg+ reconstruct one secret per
  /// user against the same survivor set, so the O(m^2) Lagrange-weight
  /// computation (plus its Shoup table on 64-bit fields) is paid once per
  /// round instead of once per secret.
  struct ReconstructionPlan {
    std::vector<rep> weights;        ///< Lagrange weights at x = 0
    std::vector<rep> weights_shoup;  ///< Shoup table (Shoup fields only)
  };

  /// Builds the weights for the first t+1 of `indices` (1-based, distinct).
  [[nodiscard]] ReconstructionPlan make_reconstruction_plan(
      std::span<const std::uint32_t> indices) const {
    lsa::require<lsa::ProtocolError>(
        indices.size() >= t_ + 1,
        "shamir: not enough shares to reconstruct");
    const std::size_t m = t_ + 1;  // exactly t+1 suffice
    std::vector<rep> xs(m);
    for (std::size_t j = 0; j < m; ++j) {
      lsa::require<lsa::ProtocolError>(
          indices[j] >= 1 && indices[j] <= n_,
          "shamir: share index out of range");
      xs[j] = static_cast<rep>(indices[j]);
    }
    ReconstructionPlan plan;
    plan.weights = lsa::coding::lagrange_weights_at<F>(
        std::span<const rep>(xs), F::zero);
    if constexpr (lsa::field::ShoupCapable<F>) {
      plan.weights_shoup = lsa::field::shoup_precompute_vec<F>(
          std::span<const rep>(plan.weights));
    }
    return plan;
  }

  /// Plan-based reconstruction: rows[j] must correspond to the j-th index
  /// the plan was built from.
  [[nodiscard]] std::vector<rep> reconstruct_rows(
      const ReconstructionPlan& plan, std::span<const rep* const> rows,
      std::size_t len) const {
    const std::size_t m = plan.weights.size();
    lsa::require<lsa::ProtocolError>(rows.size() >= m,
                                     "shamir: fewer rows than plan weights");
    std::vector<rep> secret(len, F::zero);
    if constexpr (lsa::field::ShoupCapable<F>) {
      lsa::field::axpy_accumulate_blocked_pre<F>(
          std::span<rep>(secret), std::span<const rep>(plan.weights),
          std::span<const rep>(plan.weights_shoup), rows.first(m));
    } else {
      lsa::field::axpy_accumulate_blocked<F>(
          std::span<rep>(secret), std::span<const rep>(plan.weights),
          rows.first(m));
    }
    return secret;
  }

  /// Reconstructs from share *row views*: indices[j] is the 1-based
  /// evaluation index of row rows[j]; every row holds `len` elements.
  /// One-shot adapter over the plan path (same kernels, same bits).
  [[nodiscard]] std::vector<rep> reconstruct_rows(
      std::span<const std::uint32_t> indices,
      std::span<const rep* const> rows, std::size_t len) const {
    lsa::require<lsa::ProtocolError>(
        indices.size() == rows.size(),
        "shamir: indices/rows size mismatch");
    return reconstruct_rows(make_reconstruction_plan(indices), rows, len);
  }

  /// Byte-secret variant of reconstruct_rows.
  [[nodiscard]] std::vector<std::uint8_t> reconstruct_bytes_rows(
      std::span<const std::uint32_t> indices,
      std::span<const rep* const> rows, std::size_t packed_len,
      std::size_t n_bytes) const {
    const auto packed = reconstruct_rows(indices, rows, packed_len);
    return unpack_bytes<F>(std::span<const rep>(packed), n_bytes);
  }

  /// Plan-based byte-secret reconstruction.
  [[nodiscard]] std::vector<std::uint8_t> reconstruct_bytes_rows(
      const ReconstructionPlan& plan, std::span<const rep* const> rows,
      std::size_t packed_len, std::size_t n_bytes) const {
    const auto packed = reconstruct_rows(plan, rows, packed_len);
    return unpack_bytes<F>(std::span<const rep>(packed), n_bytes);
  }

  /// Convenience: share an arbitrary byte secret (packs it first).
  template <lsa::field::BitSource G>
  [[nodiscard]] std::vector<ShamirShare<F>> share_bytes(
      std::span<const std::uint8_t> secret, G& rng) const {
    const auto packed = pack_bytes<F>(secret);
    return share(std::span<const rep>(packed), rng);
  }

  /// Flat-arena variant of share_bytes.
  template <lsa::field::BitSource G>
  void share_bytes_into(std::span<const std::uint8_t> secret, G& rng,
                        lsa::field::FlatMatrix<F>& out, std::size_t base,
                        std::size_t stride) const {
    const auto packed = pack_bytes<F>(secret);
    share_into(std::span<const rep>(packed), rng, out, base, stride);
  }

  /// Convenience: reconstruct a byte secret of known length.
  [[nodiscard]] std::vector<std::uint8_t> reconstruct_bytes(
      std::span<const ShamirShare<F>> shares, std::size_t n_bytes) const {
    const auto packed = reconstruct(shares);
    return unpack_bytes<F>(std::span<const rep>(packed), n_bytes);
  }

 private:
  std::size_t t_;
  std::size_t n_;
};

}  // namespace lsa::crypto
