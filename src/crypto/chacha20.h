// ChaCha20 stream cipher core (RFC 8439), used as the PRG that expands
// short random seeds into the long masks of SecAgg / SecAgg+ and into the
// local masks z_i of LightSecAgg.
//
// This is a from-scratch implementation of a public algorithm, built for the
// simulation substrate of this repository. It matches the RFC 8439 test
// vectors (see tests/crypto/chacha20_test.cpp) but has not been audited for
// side-channel resistance — do not lift it into a production system as-is.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace lsa::crypto {

/// 256-bit key.
using ChaChaKey = std::array<std::uint8_t, 32>;
/// 96-bit nonce (RFC 8439 layout).
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Computes one 64-byte ChaCha20 keystream block:
/// block = Serialize(ChaCha20Block(key, counter, nonce)).
void chacha20_block(const ChaChaKey& key, std::uint32_t counter,
                    const ChaChaNonce& nonce, std::span<std::uint8_t, 64> out);

/// Generates `out.size()` keystream bytes starting at block `counter`.
/// (XOR with plaintext would give encryption; we only need the keystream.)
void chacha20_stream(const ChaChaKey& key, const ChaChaNonce& nonce,
                     std::uint32_t counter, std::span<std::uint8_t> out);

}  // namespace lsa::crypto
