#include "crypto/prg.h"

#include <cstring>

namespace lsa::crypto {

Seed seed_from_u64(std::uint64_t v) {
  // SplitMix64-style expansion of the 64-bit value over the 32-byte seed.
  Seed s{};
  std::uint64_t state = v;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    std::memcpy(s.data() + 8 * i, &z, 8);
  }
  return s;
}

Seed derive_subseed(const Seed& parent, std::uint64_t label) {
  ChaChaKey key;
  std::memcpy(key.data(), parent.data(), 32);
  ChaChaNonce nonce{};
  std::memcpy(nonce.data(), &label, 8);
  std::array<std::uint8_t, 64> block;
  chacha20_block(key, /*counter=*/0xfeedu, nonce, block);
  Seed out;
  std::memcpy(out.data(), block.data(), 32);
  return out;
}

Prg::Prg(const Seed& seed, std::uint64_t stream_id) {
  std::memcpy(key_.data(), seed.data(), 32);
  std::memcpy(nonce_.data(), &stream_id, 8);
  // Remaining 4 nonce bytes stay zero; stream_id gives 2^64 parallel streams.
}

std::uint64_t Prg::next_u64() {
  if (pos_ + 8 > buf_.size()) refill();
  std::uint64_t v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

void Prg::fill_bytes(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (pos_ == buf_.size()) refill();
    const std::size_t n = std::min(buf_.size() - pos_, out.size() - off);
    std::memcpy(out.data() + off, buf_.data() + pos_, n);
    pos_ += n;
    off += n;
  }
}

void Prg::refill() {
  chacha20_block(key_, counter_++, nonce_, buf_);
  pos_ = 0;
}

}  // namespace lsa::crypto
