// Seed-expanding pseudo-random generator built on ChaCha20.
//
// In SecAgg / SecAgg+ a short agreed seed is expanded into a length-d mask
// (PRG(a_ij), PRG(b_i) in the paper's §3); in LightSecAgg each user expands
// a local seed into z_i and the padding sub-masks n_i. The Prg class exposes
// a `uint64_t next_u64()` bit source, so field/random_field.h can sample
// unbiased field elements from it.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/chacha20.h"

namespace lsa::crypto {

/// 32-byte PRG seed. SecAgg's pairwise/private seeds and LightSecAgg's local
/// mask seeds are all of this type.
using Seed = std::array<std::uint8_t, 32>;

/// Derives a Seed from a 64-bit value. This is a convenience for tests and
/// simulations; a deployment would use the raw output of the key agreement
/// (see key_agreement.h) or an OS CSPRNG.
[[nodiscard]] Seed seed_from_u64(std::uint64_t v);

/// Mixes two seeds (and a domain-separation label) into a new seed, by keying
/// ChaCha20 with the first and encrypting the second. Used to derive
/// per-round and per-purpose sub-seeds from one agreed seed.
[[nodiscard]] Seed derive_subseed(const Seed& parent, std::uint64_t label);

/// Buffered ChaCha20 keystream exposed as a 64-bit bit source.
class Prg {
 public:
  explicit Prg(const Seed& seed, std::uint64_t stream_id = 0);

  /// Next 64 keystream bits.
  [[nodiscard]] std::uint64_t next_u64();

  /// Fills `out` with keystream bytes.
  void fill_bytes(std::span<std::uint8_t> out);

 private:
  void refill();

  ChaChaKey key_{};
  ChaChaNonce nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t pos_ = 64;  // force refill on first use
};

}  // namespace lsa::crypto
