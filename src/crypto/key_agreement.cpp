#include "crypto/key_agreement.h"

#include <cstring>

namespace lsa::crypto {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % DhGroup::p);
}

}  // namespace

std::uint64_t group_pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t r = 1;
  base %= DhGroup::p;
  while (exp != 0) {
    if (exp & 1u) r = mulmod(r, base);
    base = mulmod(base, base);
    exp >>= 1;
  }
  return r;
}

KeyPair generate_keypair(const Seed& entropy) {
  // Reduce 64 bits of the entropy into [1, q). The tiny bias from the modular
  // reduction is irrelevant for the simulation substrate.
  std::uint64_t v;
  std::memcpy(&v, entropy.data(), 8);
  KeyPair kp;
  kp.secret = 1 + (v % (DhGroup::q - 1));
  kp.public_key = group_pow(DhGroup::g, kp.secret);
  return kp;
}

std::uint64_t shared_secret(std::uint64_t my_secret,
                            std::uint64_t their_public) {
  return group_pow(their_public, my_secret);
}

Seed agreed_seed(std::uint64_t my_secret, std::uint64_t their_public) {
  const std::uint64_t s = shared_secret(my_secret, their_public);
  // Key a ChaCha block with the group element to get a full 32-byte seed
  // (stands in for the HKDF step of a production key agreement).
  Seed raw{};
  std::memcpy(raw.data(), &s, 8);
  return derive_subseed(raw, /*label=*/0x4b455941475245ull);  // "KEYAGRE"
}

}  // namespace lsa::crypto
