// Pairwise key agreement (Diffie–Hellman) for SecAgg / SecAgg+.
//
// The paper's baselines agree on pairwise seeds a_{i,j} =
// Key.Agree(sk_i, pk_j) = Key.Agree(sk_j, pk_i) (§3). Production systems use
// X25519; this repository substitutes a finite-group Diffie–Hellman over a
// hard-coded 61-bit safe-prime group. The substitution preserves everything
// the experiments measure — the message sizes (s ≪ d), the commutativity
// that makes pairwise masks cancel, and the O(N) agreements per user — while
// staying dependency-free. It is NOT cryptographically strong at 61 bits;
// DESIGN.md documents this as a simulation substrate.
#pragma once

#include <cstdint>

#include "crypto/prg.h"

namespace lsa::crypto {

/// The hard-coded group: p is the largest 61-bit safe prime, g = 3 generates
/// the order-(p-1)/2 subgroup (validated in tests against primality.h).
struct DhGroup {
  static constexpr std::uint64_t p = 2305843009213691579ull;
  static constexpr std::uint64_t q = (p - 1) / 2;  // subgroup order
  static constexpr std::uint64_t g = 3;
};

struct KeyPair {
  std::uint64_t secret = 0;  ///< sk in [1, q)
  std::uint64_t public_key = 0;  ///< g^sk mod p
};

/// Derives a keypair deterministically from 32 bytes of entropy.
[[nodiscard]] KeyPair generate_keypair(const Seed& entropy);

/// g^(sk_a * sk_b) mod p — symmetric in the two parties.
[[nodiscard]] std::uint64_t shared_secret(std::uint64_t my_secret,
                                          std::uint64_t their_public);

/// Hashes the shared group element into a 32-byte PRG seed
/// (the a_{i,j} of the paper). Both parties derive the identical seed.
[[nodiscard]] Seed agreed_seed(std::uint64_t my_secret,
                               std::uint64_t their_public);

/// Modular exponentiation in the group (exposed for tests).
[[nodiscard]] std::uint64_t group_pow(std::uint64_t base, std::uint64_t exp);

}  // namespace lsa::crypto
