// Deterministic Miller–Rabin primality for 64-bit integers.
//
// Used by tests to validate the hard-coded Diffie–Hellman group parameters
// (safe prime p, subgroup order q) and by anyone instantiating PrimeField
// with a custom modulus.
#pragma once

#include <cstdint>

namespace lsa::crypto {

namespace detail {

inline std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b,
                                std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

inline std::uint64_t powmod_u64(std::uint64_t a, std::uint64_t e,
                                std::uint64_t m) {
  std::uint64_t r = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1u) r = mulmod_u64(r, a, m);
    a = mulmod_u64(a, a, m);
    e >>= 1;
  }
  return r;
}

}  // namespace detail

/// Deterministic for all n < 2^64 using the standard 12-base witness set.
[[nodiscard]] inline bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++s;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = detail::powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < s - 1; ++i) {
      x = detail::mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

/// True when p is a safe prime (p and (p-1)/2 both prime).
[[nodiscard]] inline bool is_safe_prime_u64(std::uint64_t p) {
  return p > 5 && is_prime_u64(p) && is_prime_u64((p - 1) / 2);
}

}  // namespace lsa::crypto
