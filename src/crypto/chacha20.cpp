#include "crypto/chacha20.h"

#include <cstring>

namespace lsa::crypto {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void chacha20_block(const ChaChaKey& key, std::uint32_t counter,
                    const ChaChaNonce& nonce,
                    std::span<std::uint8_t, 64> out) {
  // "expand 32-byte k" constants.
  std::uint32_t state[16] = {0x61707865u, 0x3320646eu, 0x79622d32u,
                             0x6b206574u};
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    // Diagonal rounds.
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, w[i] + state[i]);
  }
}

void chacha20_stream(const ChaChaKey& key, const ChaChaNonce& nonce,
                     std::uint32_t counter, std::span<std::uint8_t> out) {
  std::array<std::uint8_t, 64> block;
  std::size_t off = 0;
  while (off < out.size()) {
    chacha20_block(key, counter++, nonce, block);
    const std::size_t n = std::min<std::size_t>(64, out.size() - off);
    std::memcpy(out.data() + off, block.data(), n);
    off += n;
  }
}

}  // namespace lsa::crypto
