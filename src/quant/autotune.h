// Automatic quantization-level selection (paper App. F.5 points to the
// auto-tuning idea of Bonawitz et al. 2019c).
//
// Fig. 12 shows c_l trades rounding error (small c_l) against wrap-around
// error (large c_l). The safe operating point follows from the aggregation
// head-room: the weighted field sum of K updates must stay within
// (-q/2, q/2), i.e.
//     K * w_max * c_l * |Delta|_max < q/2 / margin.
// pick_levels() returns the largest power of two satisfying that bound —
// maximizing precision without risking overflow.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

#include "common/error.h"

namespace lsa::quant {

struct AutotuneConfig {
  std::size_t summands = 1;        ///< K: vectors summed before demapping
  std::uint64_t max_weight = 1;    ///< w_max: largest integer weight applied
  double safety_margin = 4.0;      ///< extra head-room factor (>= 1)
  std::uint64_t min_levels = 2;    ///< never quantize coarser than this
};

/// Largest power-of-two c such that K * w_max * c * max_abs stays a factor
/// `safety_margin` below q/2. Returns min_levels when even that overflows
/// (the caller should then clip updates or enlarge the field).
template <class F>
[[nodiscard]] std::uint64_t pick_levels(double max_abs_value,
                                        const AutotuneConfig& cfg) {
  lsa::require<lsa::QuantError>(cfg.safety_margin >= 1.0,
                                "autotune: margin must be >= 1");
  lsa::require<lsa::QuantError>(cfg.summands >= 1 && cfg.max_weight >= 1,
                                "autotune: bad aggregation shape");
  const double half_field = static_cast<double>(F::modulus) / 2.0;
  const double denom = static_cast<double>(cfg.summands) *
                       static_cast<double>(cfg.max_weight) *
                       std::max(max_abs_value, 1e-12) * cfg.safety_margin;
  const double bound = half_field / denom;
  if (bound <= static_cast<double>(cfg.min_levels)) return cfg.min_levels;
  // Round down to a power of two (Fig. 12 sweeps c_l = 2^b).
  const auto as_int = static_cast<std::uint64_t>(bound);
  return std::uint64_t{1} << (std::bit_width(as_int) - 1);
}

/// Convenience: scans a batch of update vectors for their max magnitude.
[[nodiscard]] inline double max_abs(
    std::span<const double> values) {
  double m = 0.0;
  for (double v : values) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace lsa::quant
