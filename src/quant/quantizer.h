// Stochastic quantization and finite-field embedding (paper App. F.3.2).
//
// Secure aggregation runs over F_q, but model updates live in R^d. The paper
// bridges the two with:
//   * a stochastic rounding function Q_c (eq. 29): unbiased, variance <= 1/4c^2
//     (Lemma 2), with c controlling the number of quantization levels;
//   * a two's-complement style embedding phi (eq. 31): negative integers map
//     to the top half of the field, inverted by phi^{-1} (eq. 36).
//
// A model value x becomes phi(c * Q_c(x)) — an integer scaled by c, embedded
// in the field. Sums (and small integer-weighted sums, for the asynchronous
// staleness compensation) stay exact as long as the total magnitude stays
// below q/2; the caller divides by c (and the weight sum) after demapping.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "field/random_field.h"

namespace lsa::quant {

/// Stochastic rounding to an integer: returns floor(y) + Bernoulli(frac(y)).
/// Unbiased: E[stochastic_round(y)] = y.
template <lsa::field::BitSource G>
[[nodiscard]] std::int64_t stochastic_round(double y, G& rng) {
  const double fl = std::floor(y);
  const double frac = y - fl;
  // 53-bit uniform in [0,1).
  const double u =
      static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  return static_cast<std::int64_t>(fl) + (u < frac ? 1 : 0);
}

template <class F>
class Quantizer {
 public:
  using rep = typename F::rep;

  /// c = number of quantization levels per unit interval (paper's c_l).
  /// `headroom` is the largest aggregate integer magnitude the caller will
  /// accumulate before demapping; used to validate against wrap-around.
  explicit Quantizer(std::uint64_t c) : c_(c) {
    lsa::require<lsa::QuantError>(c >= 1, "quantizer: c must be >= 1");
  }

  [[nodiscard]] std::uint64_t levels() const { return c_; }

  /// phi(c * Q_c(x)).
  template <lsa::field::BitSource G>
  [[nodiscard]] rep quantize(double x, G& rng) const {
    const double scaled = x * static_cast<double>(c_);
    lsa::require<lsa::QuantError>(
        std::abs(scaled) < static_cast<double>(F::modulus / 4),
        "quantizer: value too large for the field");
    return F::from_i64(stochastic_round(scaled, rng));
  }

  /// phi^{-1}(v) / c.
  [[nodiscard]] double dequantize(rep v) const {
    return static_cast<double>(F::to_i64(v)) / static_cast<double>(c_);
  }

  /// phi^{-1}(v) / (c * extra_divisor) — used after weighted aggregation
  /// where extra_divisor is e.g. the sum of integer staleness weights.
  [[nodiscard]] double dequantize_scaled(rep v, double extra_divisor) const {
    lsa::require<lsa::QuantError>(extra_divisor != 0.0,
                                  "dequantize: zero divisor");
    return static_cast<double>(F::to_i64(v)) /
           (static_cast<double>(c_) * extra_divisor);
  }

  template <lsa::field::BitSource G>
  void quantize_vector(std::span<const double> in, std::span<rep> out,
                       G& rng) const {
    lsa::require<lsa::QuantError>(in.size() == out.size(),
                                  "quantize_vector: size mismatch");
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = quantize(in[i], rng);
  }

  template <lsa::field::BitSource G>
  [[nodiscard]] std::vector<rep> quantize_vector(std::span<const double> in,
                                                 G& rng) const {
    std::vector<rep> out(in.size());
    quantize_vector(in, std::span<rep>(out), rng);
    return out;
  }

  void dequantize_vector(std::span<const rep> in,
                         std::span<double> out) const {
    lsa::require<lsa::QuantError>(in.size() == out.size(),
                                  "dequantize_vector: size mismatch");
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = dequantize(in[i]);
  }

  void dequantize_vector_scaled(std::span<const rep> in,
                                std::span<double> out,
                                double extra_divisor) const {
    lsa::require<lsa::QuantError>(in.size() == out.size(),
                                  "dequantize_vector: size mismatch");
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = dequantize_scaled(in[i], extra_divisor);
    }
  }

 private:
  std::uint64_t c_;
};

}  // namespace lsa::quant
