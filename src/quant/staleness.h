// Staleness-compensation functions for asynchronous FL (paper §F.1, eq. 34).
//
// The server downweights stale updates with s(tau), where tau = t - t_i is
// how many global rounds passed since user i downloaded the model. Two
// strategies from the paper's experiments (Fig. 7/11):
//   Constant:   s(tau) = 1           (no compensation)
//   Polynomial: s_a(tau) = (1+tau)^{-a}
//
// Secure aggregation applies these weights inside F_q, so they are quantized:
// s_cg(tau) = c_g * Q_{c_g}(s(tau)) is a small non-negative integer (eq. 34).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "quant/quantizer.h"

namespace lsa::quant {

enum class StalenessKind {
  kConstant,    ///< s(tau) = 1
  kPolynomial,  ///< s(tau) = (1 + tau)^{-alpha}
};

struct StalenessPolicy {
  StalenessKind kind = StalenessKind::kConstant;
  double alpha = 1.0;  ///< exponent for kPolynomial

  /// Real-valued weight s(tau); s(0) = 1, monotone non-increasing.
  [[nodiscard]] double weight(std::uint64_t tau) const {
    switch (kind) {
      case StalenessKind::kConstant:
        return 1.0;
      case StalenessKind::kPolynomial:
        return std::pow(1.0 + static_cast<double>(tau), -alpha);
    }
    return 1.0;
  }
};

/// Integer staleness weight c_g * Q_{c_g}(s(tau)) (eq. 34). Deterministic
/// rounding-to-nearest is used rather than stochastic rounding: the weight is
/// public (the server broadcasts the staleness of each buffered update), so
/// it must be identical at the server and at every user aggregating encoded
/// masks — a per-party stochastic draw would desynchronize them.
[[nodiscard]] inline std::uint64_t quantized_staleness_weight(
    const StalenessPolicy& policy, std::uint64_t tau, std::uint64_t c_g) {
  lsa::require<lsa::QuantError>(c_g >= 1, "staleness: c_g must be >= 1");
  const double w = policy.weight(tau) * static_cast<double>(c_g);
  const auto rounded = static_cast<std::uint64_t>(std::llround(w));
  return rounded;
}

}  // namespace lsa::quant
