// AVX-512 (F + DQ) implementations of the dispatch-table kernels.
//
// Same contract as the AVX2 unit (simd_kernels_avx2.cpp): compiled with its
// own -mavx512f -mavx512dq flags, reached only through the runtime-probed
// dispatch tables, all helpers internal-linkage, every kernel bit-identical
// to the scalar reference. AVX-512 buys native 64-bit low multiplies
// (_mm512_mullo_epi64, DQ) and unsigned compares into mask registers, so
// the carry chains use masked add/sub instead of the AVX2 sign-flip trick.
#if defined(__x86_64__) || defined(_M_X64)
#if defined(LSA_HAVE_AVX512)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "field/goldilocks.h"
#include "field/simd/kernels_internal.h"

namespace lsa::field::simd::detail {
namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using GL = lsa::field::Goldilocks;

// ------------------------------------------------------- scalar reference

inline u32 s_add32(u32 a, u32 b, u32 q) {
  const u64 s = static_cast<u64>(a) + b;
  return static_cast<u32>(s >= q ? s - q : s);
}
inline u32 s_sub32(u32 a, u32 b, u32 q) { return a >= b ? a - b : q - b + a; }
inline u64 s_add64(u64 a, u64 b, u64 q) {
  const u64 s = a + b;
  return s >= q ? s - q : s;
}
inline u64 s_sub64(u64 a, u64 b, u64 q) { return a >= b ? a - b : q - b + a; }
inline u64 s_mul_shoup64(u64 a, u64 w, u64 wp, u64 q) {
  const u64 qhat = static_cast<u64>((static_cast<u128>(wp) * a) >> 64);
  u64 r = w * a - qhat * q;
  if (r >= q) r -= q;
  return r;
}
inline void s_lazy192(u64& lo, u64& mi, u64& hi, u64 a, u64 b) {
  const u128 pr = static_cast<u128>(a) * b;
  const u64 plo = static_cast<u64>(pr);
  const u64 phi = static_cast<u64>(pr >> 64);
  const u64 c1 = __builtin_add_overflow(lo, plo, &lo) ? 1u : 0u;
  hi += __builtin_add_overflow(mi, phi + c1, &mi) ? 1u : 0u;
}

// ------------------------------------------------------------ vector bits

inline __m512i one64() { return _mm512_set1_epi64(1); }

/// High 64 bits of the unsigned 64x64 product per lane (32-bit cross
/// products; the low half comes from native _mm512_mullo_epi64 instead).
inline __m512i mulhi64(__m512i a, __m512i b) {
  const __m512i m32 = _mm512_set1_epi64(0xFFFFFFFFll);
  const __m512i ah = _mm512_srli_epi64(a, 32);
  const __m512i bh = _mm512_srli_epi64(b, 32);
  const __m512i p0 = _mm512_mul_epu32(a, b);
  const __m512i p1 = _mm512_mul_epu32(a, bh);
  const __m512i p2 = _mm512_mul_epu32(ah, b);
  const __m512i p3 = _mm512_mul_epu32(ah, bh);
  const __m512i mid = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_srli_epi64(p0, 32), _mm512_and_si512(p1, m32)),
      _mm512_and_si512(p2, m32));
  return _mm512_add_epi64(
      _mm512_add_epi64(p3, _mm512_srli_epi64(p1, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(p2, 32), _mm512_srli_epi64(mid, 32)));
}

// ------------------------------------------------------------ u32 kernels

void u32_add_mod(u32* acc, const u32* x, std::size_t n, u32 q) {
  const __m512i qv = _mm512_set1_epi32(static_cast<int>(q));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i va = _mm512_loadu_si512(acc + i);
    const __m512i vx = _mm512_loadu_si512(x + i);
    __m512i s = _mm512_add_epi32(va, vx);
    // wrapped 2^32 (true sum >= 2^32 > q) OR s >= q: subtract q once.
    const __mmask16 red = _mm512_cmplt_epu32_mask(s, va) |
                          _mm512_cmpge_epu32_mask(s, qv);
    s = _mm512_mask_sub_epi32(s, red, s, qv);
    _mm512_storeu_si512(acc + i, s);
  }
  for (; i < n; ++i) acc[i] = s_add32(acc[i], x[i], q);
}

void u32_sub_mod(u32* acc, const u32* x, std::size_t n, u32 q) {
  const __m512i qv = _mm512_set1_epi32(static_cast<int>(q));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i va = _mm512_loadu_si512(acc + i);
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __mmask16 borrow = _mm512_cmplt_epu32_mask(va, vx);
    __m512i d = _mm512_sub_epi32(va, vx);
    d = _mm512_mask_add_epi32(d, borrow, d, qv);
    _mm512_storeu_si512(acc + i, d);
  }
  for (; i < n; ++i) acc[i] = s_sub32(acc[i], x[i], q);
}

void u32_accum_widen(u64* sums, const u32* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm512_storeu_si512(sums + i,
                        _mm512_add_epi64(_mm512_loadu_si512(sums + i), x));
  }
  for (; i < n; ++i) sums[i] += src[i];
}

void u32_axpy_split(u64* lo, u64* hi, const u32* src, u32 wlo, u32 whi,
                    std::size_t n) {
  const __m512i vwlo = _mm512_set1_epi64(static_cast<long long>(wlo));
  const __m512i vwhi = _mm512_set1_epi64(static_cast<long long>(whi));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm512_storeu_si512(
        lo + i, _mm512_add_epi64(_mm512_loadu_si512(lo + i),
                                 _mm512_mul_epu32(x, vwlo)));
    _mm512_storeu_si512(
        hi + i, _mm512_add_epi64(_mm512_loadu_si512(hi + i),
                                 _mm512_mul_epu32(x, vwhi)));
  }
  for (; i < n; ++i) {
    const u64 x = src[i];
    lo[i] += static_cast<u64>(wlo) * x;
    hi[i] += static_cast<u64>(whi) * x;
  }
}

// ------------------------------------------------------------ u64 kernels

void u64_add_mod(u64* acc, const u64* x, std::size_t n, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i s = _mm512_add_epi64(_mm512_loadu_si512(acc + i),
                                 _mm512_loadu_si512(x + i));  // no wrap
    s = _mm512_mask_sub_epi64(s, _mm512_cmpge_epu64_mask(s, qv), s, qv);
    _mm512_storeu_si512(acc + i, s);
  }
  for (; i < n; ++i) acc[i] = s_add64(acc[i], x[i], q);
}

void u64_sub_mod(u64* acc, const u64* x, std::size_t n, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(acc + i);
    const __m512i vx = _mm512_loadu_si512(x + i);
    __m512i d = _mm512_sub_epi64(va, vx);
    d = _mm512_mask_add_epi64(d, _mm512_cmplt_epu64_mask(va, vx), d, qv);
    _mm512_storeu_si512(acc + i, d);
  }
  for (; i < n; ++i) acc[i] = s_sub64(acc[i], x[i], q);
}

void u64_shoup_axpy(u64* acc, const u64* src, u64 w, u64 wp, std::size_t n,
                    u64 q) {
  const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i vwp = _mm512_set1_epi64(static_cast<long long>(wp));
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vx = _mm512_loadu_si512(src + i);
    const __m512i qhat = mulhi64(vwp, vx);
    __m512i r = _mm512_sub_epi64(_mm512_mullo_epi64(vw, vx),
                                 _mm512_mullo_epi64(qhat, qv));
    r = _mm512_mask_sub_epi64(r, _mm512_cmpge_epu64_mask(r, qv), r, qv);
    __m512i s = _mm512_add_epi64(_mm512_loadu_si512(acc + i), r);
    s = _mm512_mask_sub_epi64(s, _mm512_cmpge_epu64_mask(s, qv), s, qv);
    _mm512_storeu_si512(acc + i, s);
  }
  for (; i < n; ++i) {
    acc[i] = s_add64(acc[i], s_mul_shoup64(src[i], w, wp, q), q);
  }
}

/// One lazy-192 accumulation step on 8 lanes held in registers.
inline void lazy192_step(__m512i plo, __m512i phi, __m512i& lo, __m512i& mi,
                         __m512i& hi) {
  lo = _mm512_add_epi64(lo, plo);
  const __mmask8 c1 = _mm512_cmplt_epu64_mask(lo, plo);
  const __m512i addend = _mm512_mask_add_epi64(phi, c1, phi, one64());
  mi = _mm512_add_epi64(mi, addend);
  const __mmask8 c2 = _mm512_cmplt_epu64_mask(mi, addend);
  hi = _mm512_mask_add_epi64(hi, c2, hi, one64());
}

void u64_lazy192_axpy(u64* lo, u64* mi, u64* hi, u64 w, const u64* src,
                      std::size_t n) {
  const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vx = _mm512_loadu_si512(src + i);
    const __m512i plo = _mm512_mullo_epi64(vw, vx);
    const __m512i phi = mulhi64(vw, vx);
    __m512i vlo = _mm512_loadu_si512(lo + i);
    __m512i vmi = _mm512_loadu_si512(mi + i);
    __m512i vhi = _mm512_loadu_si512(hi + i);
    lazy192_step(plo, phi, vlo, vmi, vhi);
    _mm512_storeu_si512(lo + i, vlo);
    _mm512_storeu_si512(mi + i, vmi);
    _mm512_storeu_si512(hi + i, vhi);
  }
  for (; i < n; ++i) s_lazy192(lo[i], mi[i], hi[i], w, src[i]);
}

void u64_lazy192_dot(u64* lo, u64* mi, u64* hi, const u64* coeffs,
                     std::size_t coeff_stride, const u64* x,
                     std::size_t terms, std::size_t lanes) {
  std::size_t l = 0;
  for (; l + 8 <= lanes; l += 8) {
    __m512i vlo = _mm512_setzero_si512();
    __m512i vmi = _mm512_setzero_si512();
    __m512i vhi = _mm512_setzero_si512();
    for (std::size_t c = 0; c < terms; ++c) {
      const __m512i vw =
          _mm512_set1_epi64(static_cast<long long>(coeffs[c * coeff_stride]));
      const __m512i vx = _mm512_loadu_si512(x + c * lanes + l);
      lazy192_step(_mm512_mullo_epi64(vw, vx), mulhi64(vw, vx), vlo, vmi,
                   vhi);
    }
    _mm512_storeu_si512(lo + l, vlo);
    _mm512_storeu_si512(mi + l, vmi);
    _mm512_storeu_si512(hi + l, vhi);
  }
  for (; l < lanes; ++l) {
    u64 slo = 0, smi = 0, shi = 0;
    for (std::size_t c = 0; c < terms; ++c) {
      s_lazy192(slo, smi, shi, coeffs[c * coeff_stride], x[c * lanes + l]);
    }
    lo[l] = slo;
    mi[l] = smi;
    hi[l] = shi;
  }
}

// ----------------------------------------------------- Goldilocks kernels

constexpr u64 kGlP = GL::modulus;
constexpr u64 kGlEps = 0xFFFFFFFFull;  // 2^32 - 1 == 2^64 mod p
constexpr u64 kGlR64 = kGlEps;
constexpr u64 kGlR128 = GL::mul(kGlR64, kGlR64);  // 2^128 mod p
constexpr u64 kGlR64Pre = GL::shoup_precompute(kGlR64);
constexpr u64 kGlR128Pre = GL::shoup_precompute(kGlR128);

inline __m512i gl_p() { return _mm512_set1_epi64(static_cast<long long>(kGlP)); }
inline __m512i gl_eps() {
  return _mm512_set1_epi64(static_cast<long long>(kGlEps));
}

inline __m512i gl_add(__m512i a, __m512i b) {
  __m512i s = _mm512_add_epi64(a, b);
  // wrapped 2^64: +2^64 == +eps (mod p); the fixup cannot wrap again.
  s = _mm512_mask_add_epi64(s, _mm512_cmplt_epu64_mask(s, a), s, gl_eps());
  return _mm512_mask_sub_epi64(s, _mm512_cmpge_epu64_mask(s, gl_p()), s,
                               gl_p());
}

inline __m512i gl_sub(__m512i a, __m512i b) {
  const __mmask8 borrow = _mm512_cmplt_epu64_mask(a, b);
  const __m512i d = _mm512_sub_epi64(a, b);
  return _mm512_mask_sub_epi64(d, borrow, d, gl_eps());
}

/// mul_shoup(a, s, sp) per lane, valid for ANY u64 a (see the AVX2 unit).
inline __m512i gl_mul_shoup(__m512i a, __m512i vs, __m512i vsp) {
  const __m512i qhat = mulhi64(vsp, a);
  const __m512i sa_lo = _mm512_mullo_epi64(vs, a);
  const __m512i sa_hi = mulhi64(vs, a);
  // qeps = qhat * eps = (qhat << 32) - qhat as a 128-bit value.
  const __m512i qsl = _mm512_slli_epi64(qhat, 32);
  const __m512i qeps_lo = _mm512_sub_epi64(qsl, qhat);
  const __mmask8 borrow = _mm512_cmplt_epu64_mask(qsl, qhat);
  __m512i qeps_hi = _mm512_srli_epi64(qhat, 32);
  qeps_hi = _mm512_mask_sub_epi64(qeps_hi, borrow, qeps_hi, one64());
  // r128 = s*a + qeps - (qhat << 64); high word provably in {0, 1}.
  __m512i r_lo = _mm512_add_epi64(sa_lo, qeps_lo);
  const __mmask8 c1 = _mm512_cmplt_epu64_mask(r_lo, qeps_lo);
  __m512i r_hi = _mm512_add_epi64(sa_hi, qeps_hi);
  r_hi = _mm512_mask_add_epi64(r_hi, c1, r_hi, one64());
  r_hi = _mm512_sub_epi64(r_hi, qhat);
  // fold the 2^64 bit as +eps (cannot wrap or reach p), then canonicalize.
  const __mmask8 fold = _mm512_test_epi64_mask(r_hi, r_hi);
  r_lo = _mm512_mask_add_epi64(r_lo, fold, r_lo, gl_eps());
  return _mm512_mask_sub_epi64(r_lo, _mm512_cmpge_epu64_mask(r_lo, gl_p()),
                               r_lo, gl_p());
}

void gl_add_mod(u64* acc, const u64* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(acc + i, gl_add(_mm512_loadu_si512(acc + i),
                                        _mm512_loadu_si512(x + i)));
  }
  for (; i < n; ++i) acc[i] = GL::add(acc[i], x[i]);
}

void gl_sub_mod(u64* acc, const u64* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(acc + i, gl_sub(_mm512_loadu_si512(acc + i),
                                        _mm512_loadu_si512(x + i)));
  }
  for (; i < n; ++i) acc[i] = GL::sub(acc[i], x[i]);
}

void gl_shoup_axpy(u64* acc, const u64* src, u64 w, u64 wp, std::size_t n) {
  const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i vwp = _mm512_set1_epi64(static_cast<long long>(wp));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i t = gl_mul_shoup(_mm512_loadu_si512(src + i), vw, vwp);
    _mm512_storeu_si512(acc + i, gl_add(_mm512_loadu_si512(acc + i), t));
  }
  for (; i < n; ++i) acc[i] = GL::add(acc[i], GL::mul_shoup(src[i], w, wp));
}

void gl_mul_shoup_inplace(u64* a, u64 s, u64 sp, std::size_t n) {
  const __m512i vs = _mm512_set1_epi64(static_cast<long long>(s));
  const __m512i vsp = _mm512_set1_epi64(static_cast<long long>(sp));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(a + i,
                        gl_mul_shoup(_mm512_loadu_si512(a + i), vs, vsp));
  }
  for (; i < n; ++i) a[i] = GL::mul_shoup(a[i], s, sp);
}

void gl_mul_shoup_rows(u64* a, const u64* s, const u64* sp, std::size_t rows,
                       std::size_t lanes) {
  for (std::size_t r = 0; r < rows; ++r) {
    gl_mul_shoup_inplace(a + r * lanes, s[r], sp[r], lanes);
  }
}

void gl_fold192(u64* out, const u64* lo, const u64* mi, const u64* hi,
                std::size_t n) {
  const __m512i r64 = _mm512_set1_epi64(static_cast<long long>(kGlR64));
  const __m512i r64p = _mm512_set1_epi64(static_cast<long long>(kGlR64Pre));
  const __m512i r128 = _mm512_set1_epi64(static_cast<long long>(kGlR128));
  const __m512i r128p = _mm512_set1_epi64(static_cast<long long>(kGlR128Pre));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vlo = _mm512_loadu_si512(lo + i);
    // from_u64(lo): one conditional subtraction (any u64 < 2p).
    const __m512i lo_c = _mm512_mask_sub_epi64(
        vlo, _mm512_cmpge_epu64_mask(vlo, gl_p()), vlo, gl_p());
    const __m512i t_mi = gl_mul_shoup(_mm512_loadu_si512(mi + i), r64, r64p);
    const __m512i t_hi =
        gl_mul_shoup(_mm512_loadu_si512(hi + i), r128, r128p);
    _mm512_storeu_si512(out + i, gl_add(t_hi, gl_add(t_mi, lo_c)));
  }
  for (; i < n; ++i) {
    out[i] = GL::add(
        GL::mul(GL::from_u64(hi[i]), kGlR128),
        GL::add(GL::mul(GL::from_u64(mi[i]), kGlR64), GL::from_u64(lo[i])));
  }
}

void gl_butterfly_tw(u64* a, u64* b, const u64* tw, const u64* twp,
                     std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i vtw = _mm512_loadu_si512(tw + j);
    const __m512i vtwp = _mm512_loadu_si512(twp + j);
    const __m512i vb = _mm512_loadu_si512(b + j);
    const __m512i vu = _mm512_loadu_si512(a + j);
    const __m512i t = gl_mul_shoup(vb, vtw, vtwp);
    _mm512_storeu_si512(a + j, gl_add(vu, t));
    _mm512_storeu_si512(b + j, gl_sub(vu, t));
  }
  for (; j < n; ++j) {
    const u64 t = GL::mul_shoup(b[j], tw[j], twp[j]);
    const u64 u = a[j];
    a[j] = GL::add(u, t);
    b[j] = GL::sub(u, t);
  }
}

void gl_butterfly_soa(u64* a, u64* b, const u64* tw, const u64* twp,
                      std::size_t nj, std::size_t lanes) {
  for (std::size_t j = 0; j < nj; ++j) {
    const __m512i vtw = _mm512_set1_epi64(static_cast<long long>(tw[j]));
    const __m512i vtwp = _mm512_set1_epi64(static_cast<long long>(twp[j]));
    u64* aj = a + j * lanes;
    u64* bj = b + j * lanes;
    std::size_t l = 0;
    for (; l + 8 <= lanes; l += 8) {
      const __m512i vb = _mm512_loadu_si512(bj + l);
      const __m512i vu = _mm512_loadu_si512(aj + l);
      const __m512i t = gl_mul_shoup(vb, vtw, vtwp);
      _mm512_storeu_si512(aj + l, gl_add(vu, t));
      _mm512_storeu_si512(bj + l, gl_sub(vu, t));
    }
    for (; l < lanes; ++l) {
      const u64 t = GL::mul_shoup(bj[l], tw[j], twp[j]);
      const u64 u = aj[l];
      aj[l] = GL::add(u, t);
      bj[l] = GL::sub(u, t);
    }
  }
}

}  // namespace

const U32Kernels kU32Avx512 = {
    &u32_add_mod,
    &u32_sub_mod,
    &u32_accum_widen,
    &u32_axpy_split,
};

const U64Kernels kU64Avx512 = {
    &u64_add_mod,
    &u64_sub_mod,
    &u64_shoup_axpy,
    &u64_lazy192_axpy,
    &u64_lazy192_dot,
};

const GoldilocksKernels kGoldilocksAvx512 = {
    &gl_add_mod,
    &gl_sub_mod,
    &gl_shoup_axpy,
    &gl_mul_shoup_inplace,
    &gl_mul_shoup_rows,
    &gl_fold192,
    &gl_butterfly_tw,
    &gl_butterfly_soa,
};

}  // namespace lsa::field::simd::detail

#endif  // LSA_HAVE_AVX512
#endif  // x86_64
