// AVX2 implementations of the dispatch-table kernels (field/simd/dispatch.h).
//
// Compiled with -mavx2 in its own translation unit; every function here is
// reached only through the dispatch tables after the runtime CPUID probe
// confirmed AVX2, so no code in this file may be called (or have its
// address-independent parts auto-vectorized into) other units. All helpers
// are internal-linkage on purpose: an inline helper shared with the AVX-512
// unit would let the linker keep whichever copy it saw last.
//
// Every kernel reproduces the scalar reference loop value-for-value: the
// modular forms compute the same canonical representative (same conditional
// subtractions on the same exact integers) and the lazy forms accumulate
// the same exact 192-bit integer sums, so outputs are bit-identical to the
// scalar templates in field/field_vec.h (tests/simd_kernel_test.cpp).
#if defined(__x86_64__) || defined(_M_X64)
#if defined(LSA_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "field/goldilocks.h"
#include "field/simd/kernels_internal.h"

namespace lsa::field::simd::detail {
namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using GL = lsa::field::Goldilocks;

// ------------------------------------------------------- scalar reference
// Tail loops run the exact scalar-kernel arithmetic at runtime modulus.

inline u32 s_add32(u32 a, u32 b, u32 q) {
  const u64 s = static_cast<u64>(a) + b;
  return static_cast<u32>(s >= q ? s - q : s);
}
inline u32 s_sub32(u32 a, u32 b, u32 q) { return a >= b ? a - b : q - b + a; }
inline u64 s_add64(u64 a, u64 b, u64 q) {
  const u64 s = a + b;
  return s >= q ? s - q : s;
}
inline u64 s_sub64(u64 a, u64 b, u64 q) { return a >= b ? a - b : q - b + a; }
inline u64 s_mul_shoup64(u64 a, u64 w, u64 wp, u64 q) {
  const u64 qhat = static_cast<u64>((static_cast<u128>(wp) * a) >> 64);
  u64 r = w * a - qhat * q;
  if (r >= q) r -= q;
  return r;
}
inline void s_lazy192(u64& lo, u64& mi, u64& hi, u64 a, u64 b) {
  const u128 pr = static_cast<u128>(a) * b;
  const u64 plo = static_cast<u64>(pr);
  const u64 phi = static_cast<u64>(pr >> 64);
  const u64 c1 = __builtin_add_overflow(lo, plo, &lo) ? 1u : 0u;
  hi += __builtin_add_overflow(mi, phi + c1, &mi) ? 1u : 0u;
}

// ------------------------------------------------------------ vector bits

inline __m256i sign64() { return _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull)); }

/// a < b (unsigned, per 64-bit lane) as an all-ones/-zero lane mask.
inline __m256i lt_epu64(__m256i a, __m256i b) {
  const __m256i s = sign64();
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, s), _mm256_xor_si256(a, s));
}

/// a >= q as a lane mask, with qm1s = (q-1) ^ sign precomputed.
inline __m256i ge_q(__m256i a, __m256i qm1s) {
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign64()), qm1s);
}

/// Full 64x64 -> 128 product per lane via 32-bit cross products.
inline void mul64wide(__m256i a, __m256i b, __m256i& hi, __m256i& lo) {
  const __m256i m32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i p0 = _mm256_mul_epu32(a, b);
  const __m256i p1 = _mm256_mul_epu32(a, bh);
  const __m256i p2 = _mm256_mul_epu32(ah, b);
  const __m256i p3 = _mm256_mul_epu32(ah, bh);
  const __m256i mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(p0, 32), _mm256_and_si256(p1, m32)),
      _mm256_and_si256(p2, m32));
  lo = _mm256_or_si256(_mm256_slli_epi64(mid, 32), _mm256_and_si256(p0, m32));
  hi = _mm256_add_epi64(
      _mm256_add_epi64(p3, _mm256_srli_epi64(p1, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(p2, 32), _mm256_srli_epi64(mid, 32)));
}

inline __m256i mulhi64(__m256i a, __m256i b) {
  __m256i hi, lo;
  mul64wide(a, b, hi, lo);
  return hi;
}

inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i p0 = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(p0, _mm256_slli_epi64(cross, 32));
}

// ------------------------------------------------------------ u32 kernels

void u32_add_mod(u32* acc, const u32* x, std::size_t n, u32 q) {
  const __m256i qv = _mm256_set1_epi32(static_cast<int>(q));
  const __m256i s32 = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i qm1s = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(q - 1)), s32);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i s = _mm256_add_epi32(va, vx);
    // wrapped 2^32 (true sum >= 2^32 > q) OR s >= q: subtract q once.
    const __m256i wrap = _mm256_cmpgt_epi32(_mm256_xor_si256(va, s32),
                                            _mm256_xor_si256(s, s32));
    const __m256i ge = _mm256_cmpgt_epi32(_mm256_xor_si256(s, s32), qm1s);
    s = _mm256_sub_epi32(
        s, _mm256_and_si256(qv, _mm256_or_si256(wrap, ge)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), s);
  }
  for (; i < n; ++i) acc[i] = s_add32(acc[i], x[i], q);
}

void u32_sub_mod(u32* acc, const u32* x, std::size_t n, u32 q) {
  const __m256i qv = _mm256_set1_epi32(static_cast<int>(q));
  const __m256i s32 = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i borrow = _mm256_cmpgt_epi32(_mm256_xor_si256(vx, s32),
                                              _mm256_xor_si256(va, s32));
    const __m256i d = _mm256_add_epi32(_mm256_sub_epi32(va, vx),
                                       _mm256_and_si256(qv, borrow));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), d);
  }
  for (; i < n; ++i) acc[i] = s_sub32(acc[i], x[i], q);
}

void u32_accum_widen(u64* sums, const u32* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sums + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sums + i),
                        _mm256_add_epi64(s, x));
  }
  for (; i < n; ++i) sums[i] += src[i];
}

void u32_axpy_split(u64* lo, u64* hi, const u32* src, u32 wlo, u32 whi,
                    std::size_t n) {
  const __m256i vwlo = _mm256_set1_epi64x(static_cast<long long>(wlo));
  const __m256i vwhi = _mm256_set1_epi64x(static_cast<long long>(whi));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    const __m256i vlo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i vhi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lo + i),
        _mm256_add_epi64(vlo, _mm256_mul_epu32(x, vwlo)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(hi + i),
        _mm256_add_epi64(vhi, _mm256_mul_epu32(x, vwhi)));
  }
  for (; i < n; ++i) {
    const u64 x = src[i];
    lo[i] += static_cast<u64>(wlo) * x;
    hi[i] += static_cast<u64>(whi) * x;
  }
}

// ------------------------------------------------------------ u64 kernels

void u64_add_mod(u64* acc, const u64* x, std::size_t n, u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i qm1s = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(q - 1)), sign64());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i s = _mm256_add_epi64(va, vx);  // q < 2^63: cannot wrap
    s = _mm256_sub_epi64(s, _mm256_and_si256(qv, ge_q(s, qm1s)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), s);
  }
  for (; i < n; ++i) acc[i] = s_add64(acc[i], x[i], q);
}

void u64_sub_mod(u64* acc, const u64* x, std::size_t n, u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i d = _mm256_add_epi64(
        _mm256_sub_epi64(va, vx), _mm256_and_si256(qv, lt_epu64(va, vx)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), d);
  }
  for (; i < n; ++i) acc[i] = s_sub64(acc[i], x[i], q);
}

void u64_shoup_axpy(u64* acc, const u64* src, u64 w, u64 wp, std::size_t n,
                    u64 q) {
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  const __m256i vwp = _mm256_set1_epi64x(static_cast<long long>(wp));
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i qm1s = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(q - 1)), sign64());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i qhat = mulhi64(vwp, vx);
    __m256i r =
        _mm256_sub_epi64(mullo64(vw, vx), mullo64(qhat, qv));
    r = _mm256_sub_epi64(r, _mm256_and_si256(qv, ge_q(r, qm1s)));
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i s = _mm256_add_epi64(va, r);
    s = _mm256_sub_epi64(s, _mm256_and_si256(qv, ge_q(s, qm1s)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), s);
  }
  for (; i < n; ++i) {
    acc[i] = s_add64(acc[i], s_mul_shoup64(src[i], w, wp, q), q);
  }
}

/// One lazy-192 accumulation step on 4 lanes held in registers.
inline void lazy192_step(__m256i plo, __m256i phi, __m256i& lo, __m256i& mi,
                         __m256i& hi) {
  lo = _mm256_add_epi64(lo, plo);
  const __m256i c1 = lt_epu64(lo, plo);            // all-ones where carry
  const __m256i addend = _mm256_sub_epi64(phi, c1);  // phi + 1 on carry
  mi = _mm256_add_epi64(mi, addend);
  const __m256i c2 = lt_epu64(mi, addend);
  hi = _mm256_sub_epi64(hi, c2);
}

void u64_lazy192_axpy(u64* lo, u64* mi, u64* hi, u64 w, const u64* src,
                      std::size_t n) {
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i phi, plo;
    mul64wide(vw, vx, phi, plo);
    __m256i vlo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    __m256i vmi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mi + i));
    __m256i vhi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    lazy192_step(plo, phi, vlo, vmi, vhi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i), vlo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mi + i), vmi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i), vhi);
  }
  for (; i < n; ++i) s_lazy192(lo[i], mi[i], hi[i], w, src[i]);
}

void u64_lazy192_dot(u64* lo, u64* mi, u64* hi, const u64* coeffs,
                     std::size_t coeff_stride, const u64* x,
                     std::size_t terms, std::size_t lanes) {
  std::size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    __m256i vlo = _mm256_setzero_si256();
    __m256i vmi = _mm256_setzero_si256();
    __m256i vhi = _mm256_setzero_si256();
    for (std::size_t c = 0; c < terms; ++c) {
      const __m256i vw = _mm256_set1_epi64x(
          static_cast<long long>(coeffs[c * coeff_stride]));
      const __m256i vx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(x + c * lanes + l));
      __m256i phi, plo;
      mul64wide(vw, vx, phi, plo);
      lazy192_step(plo, phi, vlo, vmi, vhi);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + l), vlo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mi + l), vmi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + l), vhi);
  }
  for (; l < lanes; ++l) {
    u64 slo = 0, smi = 0, shi = 0;
    for (std::size_t c = 0; c < terms; ++c) {
      s_lazy192(slo, smi, shi, coeffs[c * coeff_stride], x[c * lanes + l]);
    }
    lo[l] = slo;
    mi[l] = smi;
    hi[l] = shi;
  }
}

// ----------------------------------------------------- Goldilocks kernels

constexpr u64 kGlP = GL::modulus;
constexpr u64 kGlEps = 0xFFFFFFFFull;  // 2^32 - 1 == 2^64 mod p
constexpr u64 kGlR64 = kGlEps;         // 2^64 mod p
constexpr u64 kGlR128 = GL::mul(kGlR64, kGlR64);  // 2^128 mod p
constexpr u64 kGlR64Pre = GL::shoup_precompute(kGlR64);
constexpr u64 kGlR128Pre = GL::shoup_precompute(kGlR128);

inline __m256i gl_p() { return _mm256_set1_epi64x(static_cast<long long>(kGlP)); }
inline __m256i gl_eps() { return _mm256_set1_epi64x(static_cast<long long>(kGlEps)); }
inline __m256i gl_pm1s() {
  return _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(kGlP - 1)), sign64());
}

inline __m256i gl_add(__m256i a, __m256i b) {
  __m256i s = _mm256_add_epi64(a, b);
  // wrapped 2^64: +2^64 == +eps (mod p); the fixup cannot wrap again.
  s = _mm256_add_epi64(s, _mm256_and_si256(gl_eps(), lt_epu64(s, a)));
  return _mm256_sub_epi64(s, _mm256_and_si256(gl_p(), ge_q(s, gl_pm1s())));
}

inline __m256i gl_sub(__m256i a, __m256i b) {
  const __m256i d = _mm256_sub_epi64(a, b);
  return _mm256_sub_epi64(d, _mm256_and_si256(gl_eps(), lt_epu64(a, b)));
}

/// mul_shoup(a, s, sp) per lane, valid for ANY u64 a (the Shoup bound
/// r = s*a - qhat*p < 2p holds for arbitrary a; see Goldilocks::mul_shoup).
inline __m256i gl_mul_shoup(__m256i a, __m256i vs, __m256i vsp) {
  const __m256i qhat = mulhi64(vsp, a);
  __m256i sa_hi, sa_lo;
  mul64wide(vs, a, sa_hi, sa_lo);
  // qeps = qhat * eps = (qhat << 32) - qhat as a 128-bit value.
  const __m256i qsl = _mm256_slli_epi64(qhat, 32);
  const __m256i qeps_lo = _mm256_sub_epi64(qsl, qhat);
  const __m256i borrow = lt_epu64(qsl, qhat);
  const __m256i qeps_hi =
      _mm256_add_epi64(_mm256_srli_epi64(qhat, 32), borrow);  // -1 on borrow
  // r128 = s*a + qeps - (qhat << 64); high word provably in {0, 1}.
  __m256i r_lo = _mm256_add_epi64(sa_lo, qeps_lo);
  const __m256i c1 = lt_epu64(r_lo, qeps_lo);
  __m256i r_hi = _mm256_add_epi64(sa_hi, qeps_hi);
  r_hi = _mm256_sub_epi64(r_hi, c1);  // +1 on carry
  r_hi = _mm256_sub_epi64(r_hi, qhat);
  // fold the 2^64 bit as +eps (cannot wrap or reach p), then canonicalize.
  const __m256i fold_mask = _mm256_sub_epi64(_mm256_setzero_si256(), r_hi);
  r_lo = _mm256_add_epi64(r_lo, _mm256_and_si256(gl_eps(), fold_mask));
  return _mm256_sub_epi64(r_lo,
                          _mm256_and_si256(gl_p(), ge_q(r_lo, gl_pm1s())));
}

void gl_add_mod(u64* acc, const u64* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), gl_add(va, vx));
  }
  for (; i < n; ++i) acc[i] = GL::add(acc[i], x[i]);
}

void gl_sub_mod(u64* acc, const u64* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), gl_sub(va, vx));
  }
  for (; i < n; ++i) acc[i] = GL::sub(acc[i], x[i]);
}

void gl_shoup_axpy(u64* acc, const u64* src, u64 w, u64 wp, std::size_t n) {
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  const __m256i vwp = _mm256_set1_epi64x(static_cast<long long>(wp));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        gl_add(va, gl_mul_shoup(vx, vw, vwp)));
  }
  for (; i < n; ++i) acc[i] = GL::add(acc[i], GL::mul_shoup(src[i], w, wp));
}

void gl_mul_shoup_inplace(u64* a, u64 s, u64 sp, std::size_t n) {
  const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(s));
  const __m256i vsp = _mm256_set1_epi64x(static_cast<long long>(sp));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        gl_mul_shoup(va, vs, vsp));
  }
  for (; i < n; ++i) a[i] = GL::mul_shoup(a[i], s, sp);
}

void gl_mul_shoup_rows(u64* a, const u64* s, const u64* sp, std::size_t rows,
                       std::size_t lanes) {
  for (std::size_t r = 0; r < rows; ++r) {
    gl_mul_shoup_inplace(a + r * lanes, s[r], sp[r], lanes);
  }
}

void gl_fold192(u64* out, const u64* lo, const u64* mi, const u64* hi,
                std::size_t n) {
  const __m256i r64 = _mm256_set1_epi64x(static_cast<long long>(kGlR64));
  const __m256i r64p = _mm256_set1_epi64x(static_cast<long long>(kGlR64Pre));
  const __m256i r128 = _mm256_set1_epi64x(static_cast<long long>(kGlR128));
  const __m256i r128p =
      _mm256_set1_epi64x(static_cast<long long>(kGlR128Pre));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vlo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i vmi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mi + i));
    const __m256i vhi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    // from_u64(lo): one conditional subtraction (any u64 < 2p).
    const __m256i lo_c = _mm256_sub_epi64(
        vlo, _mm256_and_si256(gl_p(), ge_q(vlo, gl_pm1s())));
    const __m256i t_mi = gl_mul_shoup(vmi, r64, r64p);
    const __m256i t_hi = gl_mul_shoup(vhi, r128, r128p);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        gl_add(t_hi, gl_add(t_mi, lo_c)));
  }
  for (; i < n; ++i) {
    out[i] = GL::add(
        GL::mul(GL::from_u64(hi[i]), kGlR128),
        GL::add(GL::mul(GL::from_u64(mi[i]), kGlR64), GL::from_u64(lo[i])));
  }
}

void gl_butterfly_tw(u64* a, u64* b, const u64* tw, const u64* twp,
                     std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i vtw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tw + j));
    const __m256i vtwp =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twp + j));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i vu =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
    const __m256i t = gl_mul_shoup(vb, vtw, vtwp);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), gl_add(vu, t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + j), gl_sub(vu, t));
  }
  for (; j < n; ++j) {
    const u64 t = GL::mul_shoup(b[j], tw[j], twp[j]);
    const u64 u = a[j];
    a[j] = GL::add(u, t);
    b[j] = GL::sub(u, t);
  }
}

void gl_butterfly_soa(u64* a, u64* b, const u64* tw, const u64* twp,
                      std::size_t nj, std::size_t lanes) {
  for (std::size_t j = 0; j < nj; ++j) {
    const __m256i vtw = _mm256_set1_epi64x(static_cast<long long>(tw[j]));
    const __m256i vtwp = _mm256_set1_epi64x(static_cast<long long>(twp[j]));
    u64* aj = a + j * lanes;
    u64* bj = b + j * lanes;
    std::size_t l = 0;
    for (; l + 4 <= lanes; l += 4) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bj + l));
      const __m256i vu =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(aj + l));
      const __m256i t = gl_mul_shoup(vb, vtw, vtwp);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(aj + l), gl_add(vu, t));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(bj + l), gl_sub(vu, t));
    }
    for (; l < lanes; ++l) {
      const u64 t = GL::mul_shoup(bj[l], tw[j], twp[j]);
      const u64 u = aj[l];
      aj[l] = GL::add(u, t);
      bj[l] = GL::sub(u, t);
    }
  }
}

}  // namespace

const U32Kernels kU32Avx2 = {
    &u32_add_mod,
    &u32_sub_mod,
    &u32_accum_widen,
    &u32_axpy_split,
};

const U64Kernels kU64Avx2 = {
    &u64_add_mod,
    &u64_sub_mod,
    &u64_shoup_axpy,
    &u64_lazy192_axpy,
    &u64_lazy192_dot,
};

const GoldilocksKernels kGoldilocksAvx2 = {
    &gl_add_mod,
    &gl_sub_mod,
    &gl_shoup_axpy,
    &gl_mul_shoup_inplace,
    &gl_mul_shoup_rows,
    &gl_fold192,
    &gl_butterfly_tw,
    &gl_butterfly_soa,
};

}  // namespace lsa::field::simd::detail

#endif  // LSA_HAVE_AVX2
#endif  // x86_64
