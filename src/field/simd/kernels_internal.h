// Internal linkage between the per-ISA kernel translation units and the
// dispatch table resolver (field/simd/dispatch.cpp). Each ISA unit is
// compiled with its own -m flags and guarded so only probed hosts ever
// execute its code; the tables here are plain data, safe to reference from
// the always-built dispatcher.
#pragma once

#include "field/simd/dispatch.h"

namespace lsa::field::simd::detail {

#if defined(__x86_64__) || defined(_M_X64)
#if defined(LSA_HAVE_AVX2)
extern const U32Kernels kU32Avx2;
extern const U64Kernels kU64Avx2;
extern const GoldilocksKernels kGoldilocksAvx2;
#endif
#if defined(LSA_HAVE_AVX512)
extern const U32Kernels kU32Avx512;
extern const U64Kernels kU64Avx512;
extern const GoldilocksKernels kGoldilocksAvx512;
#endif
#endif  // x86_64

#if defined(__aarch64__)
extern const U32Kernels kU32Neon;
extern const U64Kernels kU64Neon;
extern const GoldilocksKernels kGoldilocksNeon;
#endif

}  // namespace lsa::field::simd::detail
