// Runtime-dispatched SIMD kernel tables for the field substrate.
//
// The hot loops of this library — Shoup / lazy-192 axpy GEMM panels,
// split-word lazy accumulation, elementwise mask add/sub, NTT butterflies —
// are generic scalar templates in field/field_vec.h and coding/ntt.h. This
// layer provides hand-vectorized implementations (AVX2, AVX-512, NEON) of
// those exact kernels, selected ONCE at startup by a CPUID/feature probe
// and reached through per-field function-pointer tables. The scalar
// templates stay as the bit-parity reference, in the same pattern as
// PrimeField::mul_reference: every vector kernel folds the same exact
// integer sums and canonical reductions, so its output is bit-identical to
// the scalar path on every input (tests/simd_kernel_test.cpp pins the
// boundary cases; the decode-strategy and protocol parity suites pin the
// end-to-end paths).
//
// Dispatch rules (see README "SIMD substrate"):
//   * compile-time: -DLSA_FORCE_SCALAR builds pin Level::kScalar;
//   * environment:  LSA_SIMD=scalar|neon|avx2|avx512 caps the probe;
//   * per-thread:   SimdPolicy::kForceScalar (field/simd/simd_policy.h),
//                   threaded through protocol::Params, wins over both.
// A null table pointer means "run the scalar template" — unknown moduli,
// unprobed ISAs and forced-scalar all take that path.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "field/simd/simd_policy.h"

namespace lsa::field::simd {

/// Instruction-set level of a kernel table. Levels are probed at runtime;
/// on x86 kAvx512 implies kAvx2, on arm64 kNeon is the baseline.
enum class Level : std::uint8_t {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Stable lowercase ISA name for bench/JSON output ("scalar", "neon",
/// "avx2", "avx512").
[[nodiscard]] const char* level_name(Level level);

/// Vector register width in bytes (8 for scalar — one u64 lane).
[[nodiscard]] std::size_t vector_bytes(Level level);

/// True when this host can execute kernels of the given level (kScalar is
/// always available; compiled-out ISAs report false).
[[nodiscard]] bool level_available(Level level);

/// Best level after the CPUID probe, the LSA_SIMD environment cap and the
/// compile-time LSA_FORCE_SCALAR switch. Probed once, then cached.
[[nodiscard]] Level detected_level();

/// detected_level(), unless the calling thread's SimdPolicy forces scalar.
[[nodiscard]] Level active_level();

// ---------------------------------------------------------------- tables
//
// Kernels take raw rep arrays plus whatever scalar parameters the generic
// templates close over; all inputs are canonical field elements unless a
// parameter is documented as a raw integer. Each table entry is
// bit-identical to the corresponding scalar loop.

/// Kernels generic over any 32-bit prime modulus q (canonical reps < q).
struct U32Kernels {
  /// acc[i] = (acc[i] + x[i]) mod q — PrimeField::add elementwise.
  void (*add_mod)(std::uint32_t* acc, const std::uint32_t* x, std::size_t n,
                  std::uint32_t q);
  /// acc[i] = (acc[i] - x[i]) mod q — PrimeField::sub elementwise.
  void (*sub_mod)(std::uint32_t* acc, const std::uint32_t* x, std::size_t n,
                  std::uint32_t q);
  /// sums[i] += src[i] (u64 += u32): the lazy column-sum inner loop of
  /// add_accumulate_blocked.
  void (*accum_widen)(std::uint64_t* sums, const std::uint32_t* src,
                      std::size_t n);
  /// lo[i] += wlo * src[i]; hi[i] += whi * src[i] (wlo, whi < 2^16): the
  /// split-word lazy accumulation row of axpy_accumulate_blocked.
  void (*axpy_split)(std::uint64_t* lo, std::uint64_t* hi,
                     const std::uint32_t* src, std::uint32_t wlo,
                     std::uint32_t whi, std::size_t n);
};

/// Kernels generic over any 64-bit modulus q < 2^63 (so sums of two
/// canonical reps never wrap u64). The lazy-192 members are modulus-free
/// exact integer accumulation, usable by every 64-bit field including
/// Goldilocks.
struct U64Kernels {
  void (*add_mod)(std::uint64_t* acc, const std::uint64_t* x, std::size_t n,
                  std::uint64_t q);
  void (*sub_mod)(std::uint64_t* acc, const std::uint64_t* x, std::size_t n,
                  std::uint64_t q);
  /// acc[i] = add(acc[i], mul_shoup(src[i], w, wp)) — the Shoup axpy GEMM
  /// row (wp = shoup_precompute(w), the generic 64-bit Shoup form).
  void (*shoup_axpy)(std::uint64_t* acc, const std::uint64_t* src,
                     std::uint64_t w, std::uint64_t wp, std::size_t n,
                     std::uint64_t q);
  /// 192-bit lazy axpy row: (lo,mi,hi)[i] += w * src[i] as an exact 3-limb
  /// integer — field_vec.h lazy192_accumulate over a contiguous run.
  void (*lazy192_axpy)(std::uint64_t* lo, std::uint64_t* mi,
                       std::uint64_t* hi, std::uint64_t w,
                       const std::uint64_t* src, std::size_t n);
  /// SoA dot row: for each lane l < lanes,
  ///   (lo,mi,hi)[l] = sum_c coeffs[c * coeff_stride] * x[c * lanes + l]
  /// accumulated in registers (the collapsed base-node matvec of the
  /// batched decode plane). Overwrites the output limbs.
  void (*lazy192_dot)(std::uint64_t* lo, std::uint64_t* mi, std::uint64_t* hi,
                      const std::uint64_t* coeffs, std::size_t coeff_stride,
                      const std::uint64_t* x, std::size_t terms,
                      std::size_t lanes);
};

/// Goldilocks-specific kernels (p = 2^64 - 2^32 + 1 > 2^63 needs its own
/// add/sub wrap fixups and the 65-bit Shoup remainder path).
struct GoldilocksKernels {
  void (*add_mod)(std::uint64_t* acc, const std::uint64_t* x, std::size_t n);
  void (*sub_mod)(std::uint64_t* acc, const std::uint64_t* x, std::size_t n);
  /// acc[i] = add(acc[i], mul_shoup(src[i], w, wp)).
  void (*shoup_axpy)(std::uint64_t* acc, const std::uint64_t* src,
                     std::uint64_t w, std::uint64_t wp, std::size_t n);
  /// a[i] = mul_shoup(a[i], s, sp) — inverse-NTT scaling, SoA leaf scale.
  void (*mul_shoup_inplace)(std::uint64_t* a, std::uint64_t s,
                            std::uint64_t sp, std::size_t n);
  /// a[r*lanes + l] = mul_shoup(a[r*lanes + l], s[r], sp[r]) — the SoA
  /// pointwise-product / leaf-scale pass (one scalar per lane row).
  void (*mul_shoup_rows)(std::uint64_t* a, const std::uint64_t* s,
                         const std::uint64_t* sp, std::size_t rows,
                         std::size_t lanes);
  /// out[i] = lazy192_fold(lo[i], mi[i], hi[i]) — canonical reduction of
  /// the exact 192-bit sums (limbs are raw integers, not reps).
  void (*fold192)(std::uint64_t* out, const std::uint64_t* lo,
                  const std::uint64_t* mi, const std::uint64_t* hi,
                  std::size_t n);
  /// Cooley-Tukey butterflies with per-j twiddles (NttPlan::forward inner
  /// loop): t = mul_shoup(b[j], tw[j], twp[j]); a[j],b[j] = u+t, u-t.
  void (*butterfly_tw)(std::uint64_t* a, std::uint64_t* b,
                       const std::uint64_t* tw, const std::uint64_t* twp,
                       std::size_t n);
  /// SoA butterflies: for j < nj the lane blocks a[j*lanes..), b[j*lanes..)
  /// get the scalar twiddle tw[j] (the lane-streaming transform of the
  /// batched decode plane).
  void (*butterfly_soa)(std::uint64_t* a, std::uint64_t* b,
                        const std::uint64_t* tw, const std::uint64_t* twp,
                        std::size_t nj, std::size_t lanes);
};

/// Table for an explicit level — null when the level has no x86/arm64
/// implementation compiled in or the host cannot run it. Tests iterate
/// available levels through these.
[[nodiscard]] const U32Kernels* u32_kernels(Level level);
[[nodiscard]] const U64Kernels* u64_kernels(Level level);
[[nodiscard]] const GoldilocksKernels* goldilocks_kernels(Level level);

/// Tables at active_level() — the one call sites use. Null means "run the
/// scalar template".
[[nodiscard]] const U32Kernels* u32_active();
[[nodiscard]] const U64Kernels* u64_active();
[[nodiscard]] const GoldilocksKernels* goldilocks_active();

// ----------------------------------------------------- field-type routing

template <class F>
concept HasModulus = requires {
  { F::modulus } -> std::convertible_to<std::uint64_t>;
};

inline constexpr std::uint64_t kGoldilocksModulus = 0xFFFFFFFF00000001ull;

/// True for field::Goldilocks (matched structurally so the field header
/// need not know about this layer).
template <class F>
inline constexpr bool kIsGoldilocksField = [] {
  if constexpr (HasModulus<F> && sizeof(typename F::rep) == 8) {
    return F::modulus == kGoldilocksModulus;
  } else {
    return false;
  }
}();

/// True for 32-bit prime fields the U32Kernels table covers.
template <class F>
inline constexpr bool kIsSimdU32Field = [] {
  if constexpr (HasModulus<F>) {
    return sizeof(typename F::rep) == 4;
  } else {
    return false;
  }
}();

/// True for 64-bit fields the generic U64Kernels table covers (q < 2^63;
/// Goldilocks routes to its own table).
template <class F>
inline constexpr bool kIsSimdU64Field = [] {
  if constexpr (HasModulus<F> && sizeof(typename F::rep) == 8) {
    return F::modulus < (std::uint64_t{1} << 63);
  } else {
    return false;
  }
}();

}  // namespace lsa::field::simd
