// NEON (arm64 baseline) implementations of the dispatch-table kernels.
//
// Same contract as the x86 units: internal-linkage helpers, bit-identical
// to the scalar reference. NEON has no 64x64 multiply, so the mul-heavy
// entries (Shoup axpy, lazy-192, butterflies) run the exact scalar loops —
// the table stays fully populated so call sites only test the table
// pointer, and the elementwise add/sub/widen paths still vectorize.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "field/goldilocks.h"
#include "field/simd/kernels_internal.h"

namespace lsa::field::simd::detail {
namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using GL = lsa::field::Goldilocks;

// ------------------------------------------------------- scalar reference

inline u32 s_add32(u32 a, u32 b, u32 q) {
  const u64 s = static_cast<u64>(a) + b;
  return static_cast<u32>(s >= q ? s - q : s);
}
inline u32 s_sub32(u32 a, u32 b, u32 q) { return a >= b ? a - b : q - b + a; }
inline u64 s_add64(u64 a, u64 b, u64 q) {
  const u64 s = a + b;
  return s >= q ? s - q : s;
}
inline u64 s_sub64(u64 a, u64 b, u64 q) { return a >= b ? a - b : q - b + a; }
inline u64 s_mul_shoup64(u64 a, u64 w, u64 wp, u64 q) {
  const u64 qhat = static_cast<u64>((static_cast<u128>(wp) * a) >> 64);
  u64 r = w * a - qhat * q;
  if (r >= q) r -= q;
  return r;
}
inline void s_lazy192(u64& lo, u64& mi, u64& hi, u64 a, u64 b) {
  const u128 pr = static_cast<u128>(a) * b;
  const u64 plo = static_cast<u64>(pr);
  const u64 phi = static_cast<u64>(pr >> 64);
  const u64 c1 = __builtin_add_overflow(lo, plo, &lo) ? 1u : 0u;
  hi += __builtin_add_overflow(mi, phi + c1, &mi) ? 1u : 0u;
}

// ------------------------------------------------------------ u32 kernels

void u32_add_mod(u32* acc, const u32* x, std::size_t n, u32 q) {
  const uint32x4_t qv = vdupq_n_u32(q);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t va = vld1q_u32(acc + i);
    const uint32x4_t vx = vld1q_u32(x + i);
    uint32x4_t s = vaddq_u32(va, vx);
    // wrapped 2^32 (true sum >= 2^32 > q) OR s >= q: subtract q once.
    const uint32x4_t red = vorrq_u32(vcltq_u32(s, va), vcgeq_u32(s, qv));
    s = vsubq_u32(s, vandq_u32(qv, red));
    vst1q_u32(acc + i, s);
  }
  for (; i < n; ++i) acc[i] = s_add32(acc[i], x[i], q);
}

void u32_sub_mod(u32* acc, const u32* x, std::size_t n, u32 q) {
  const uint32x4_t qv = vdupq_n_u32(q);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t va = vld1q_u32(acc + i);
    const uint32x4_t vx = vld1q_u32(x + i);
    const uint32x4_t d =
        vaddq_u32(vsubq_u32(va, vx), vandq_u32(qv, vcltq_u32(va, vx)));
    vst1q_u32(acc + i, d);
  }
  for (; i < n; ++i) acc[i] = s_sub32(acc[i], x[i], q);
}

void u32_accum_widen(u64* sums, const u32* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t x = vld1q_u32(src + i);
    vst1q_u64(sums + i, vaddw_u32(vld1q_u64(sums + i), vget_low_u32(x)));
    vst1q_u64(sums + i + 2,
              vaddw_u32(vld1q_u64(sums + i + 2), vget_high_u32(x)));
  }
  for (; i < n; ++i) sums[i] += src[i];
}

void u32_axpy_split(u64* lo, u64* hi, const u32* src, u32 wlo, u32 whi,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t x = vld1q_u32(src + i);
    const uint32x2_t xl = vget_low_u32(x);
    const uint32x2_t xh = vget_high_u32(x);
    vst1q_u64(lo + i, vmlal_n_u32(vld1q_u64(lo + i), xl, wlo));
    vst1q_u64(lo + i + 2, vmlal_n_u32(vld1q_u64(lo + i + 2), xh, wlo));
    vst1q_u64(hi + i, vmlal_n_u32(vld1q_u64(hi + i), xl, whi));
    vst1q_u64(hi + i + 2, vmlal_n_u32(vld1q_u64(hi + i + 2), xh, whi));
  }
  for (; i < n; ++i) {
    const u64 x = src[i];
    lo[i] += static_cast<u64>(wlo) * x;
    hi[i] += static_cast<u64>(whi) * x;
  }
}

// ------------------------------------------------------------ u64 kernels

void u64_add_mod(u64* acc, const u64* x, std::size_t n, u64 q) {
  const uint64x2_t qv = vdupq_n_u64(q);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t s = vaddq_u64(vld1q_u64(acc + i), vld1q_u64(x + i));
    s = vsubq_u64(s, vandq_u64(qv, vcgeq_u64(s, qv)));
    vst1q_u64(acc + i, s);
  }
  for (; i < n; ++i) acc[i] = s_add64(acc[i], x[i], q);
}

void u64_sub_mod(u64* acc, const u64* x, std::size_t n, u64 q) {
  const uint64x2_t qv = vdupq_n_u64(q);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(acc + i);
    const uint64x2_t vx = vld1q_u64(x + i);
    const uint64x2_t d =
        vaddq_u64(vsubq_u64(va, vx), vandq_u64(qv, vcltq_u64(va, vx)));
    vst1q_u64(acc + i, d);
  }
  for (; i < n; ++i) acc[i] = s_sub64(acc[i], x[i], q);
}

void u64_shoup_axpy(u64* acc, const u64* src, u64 w, u64 wp, std::size_t n,
                    u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = s_add64(acc[i], s_mul_shoup64(src[i], w, wp, q), q);
  }
}

void u64_lazy192_axpy(u64* lo, u64* mi, u64* hi, u64 w, const u64* src,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) s_lazy192(lo[i], mi[i], hi[i], w, src[i]);
}

void u64_lazy192_dot(u64* lo, u64* mi, u64* hi, const u64* coeffs,
                     std::size_t coeff_stride, const u64* x,
                     std::size_t terms, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    u64 slo = 0, smi = 0, shi = 0;
    for (std::size_t c = 0; c < terms; ++c) {
      s_lazy192(slo, smi, shi, coeffs[c * coeff_stride], x[c * lanes + l]);
    }
    lo[l] = slo;
    mi[l] = smi;
    hi[l] = shi;
  }
}

// ----------------------------------------------------- Goldilocks kernels

constexpr u64 kGlEps = 0xFFFFFFFFull;  // 2^32 - 1 == 2^64 mod p
constexpr u64 kGlR64 = kGlEps;
constexpr u64 kGlR128 = GL::mul(kGlR64, kGlR64);  // 2^128 mod p

void gl_add_mod(u64* acc, const u64* x, std::size_t n) {
  const uint64x2_t pv = vdupq_n_u64(GL::modulus);
  const uint64x2_t ev = vdupq_n_u64(kGlEps);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(acc + i);
    uint64x2_t s = vaddq_u64(va, vld1q_u64(x + i));
    // wrapped 2^64: +2^64 == +eps (mod p); the fixup cannot wrap again.
    s = vaddq_u64(s, vandq_u64(ev, vcltq_u64(s, va)));
    s = vsubq_u64(s, vandq_u64(pv, vcgeq_u64(s, pv)));
    vst1q_u64(acc + i, s);
  }
  for (; i < n; ++i) acc[i] = GL::add(acc[i], x[i]);
}

void gl_sub_mod(u64* acc, const u64* x, std::size_t n) {
  const uint64x2_t ev = vdupq_n_u64(kGlEps);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(acc + i);
    const uint64x2_t vx = vld1q_u64(x + i);
    const uint64x2_t d =
        vsubq_u64(vsubq_u64(va, vx), vandq_u64(ev, vcltq_u64(va, vx)));
    vst1q_u64(acc + i, d);
  }
  for (; i < n; ++i) acc[i] = GL::sub(acc[i], x[i]);
}

void gl_shoup_axpy(u64* acc, const u64* src, u64 w, u64 wp, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = GL::add(acc[i], GL::mul_shoup(src[i], w, wp));
  }
}

void gl_mul_shoup_inplace(u64* a, u64 s, u64 sp, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = GL::mul_shoup(a[i], s, sp);
}

void gl_mul_shoup_rows(u64* a, const u64* s, const u64* sp, std::size_t rows,
                       std::size_t lanes) {
  for (std::size_t r = 0; r < rows; ++r) {
    gl_mul_shoup_inplace(a + r * lanes, s[r], sp[r], lanes);
  }
}

void gl_fold192(u64* out, const u64* lo, const u64* mi, const u64* hi,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = GL::add(
        GL::mul(GL::from_u64(hi[i]), kGlR128),
        GL::add(GL::mul(GL::from_u64(mi[i]), kGlR64), GL::from_u64(lo[i])));
  }
}

void gl_butterfly_tw(u64* a, u64* b, const u64* tw, const u64* twp,
                     std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const u64 t = GL::mul_shoup(b[j], tw[j], twp[j]);
    const u64 u = a[j];
    a[j] = GL::add(u, t);
    b[j] = GL::sub(u, t);
  }
}

void gl_butterfly_soa(u64* a, u64* b, const u64* tw, const u64* twp,
                      std::size_t nj, std::size_t lanes) {
  for (std::size_t j = 0; j < nj; ++j) {
    u64* aj = a + j * lanes;
    u64* bj = b + j * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const u64 t = GL::mul_shoup(bj[l], tw[j], twp[j]);
      const u64 u = aj[l];
      aj[l] = GL::add(u, t);
      bj[l] = GL::sub(u, t);
    }
  }
}

}  // namespace

const U32Kernels kU32Neon = {
    &u32_add_mod,
    &u32_sub_mod,
    &u32_accum_widen,
    &u32_axpy_split,
};

const U64Kernels kU64Neon = {
    &u64_add_mod,
    &u64_sub_mod,
    &u64_shoup_axpy,
    &u64_lazy192_axpy,
    &u64_lazy192_dot,
};

const GoldilocksKernels kGoldilocksNeon = {
    &gl_add_mod,
    &gl_sub_mod,
    &gl_shoup_axpy,
    &gl_mul_shoup_inplace,
    &gl_mul_shoup_rows,
    &gl_fold192,
    &gl_butterfly_tw,
    &gl_butterfly_soa,
};

}  // namespace lsa::field::simd::detail

#endif  // __aarch64__
