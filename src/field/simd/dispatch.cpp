// Runtime feature probe and kernel-table resolution (field/simd/dispatch.h).
#include "field/simd/dispatch.h"

#include <cstdlib>
#include <cstring>

#include "field/simd/kernels_internal.h"

namespace lsa::field::simd {

namespace {

/// Raw hardware capability, independent of caps/overrides.
bool hardware_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on arm64
#else
      return false;
#endif
    case Level::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kAvx512:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#else
      return false;
#endif
  }
  return false;
}

/// LSA_SIMD=scalar|neon|avx2|avx512 caps the probe (an unknown or
/// unavailable value degrades to the best level at or below the cap).
Level env_cap() {
  const char* env = std::getenv("LSA_SIMD");
  if (env == nullptr) return Level::kAvx512;  // no cap
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "neon") == 0) return Level::kNeon;
  if (std::strcmp(env, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return Level::kAvx512;
  return Level::kAvx512;
}

Level probe() {
#if defined(LSA_FORCE_SCALAR)
  return Level::kScalar;
#else
  const Level cap = env_cap();
  const Level order[] = {Level::kAvx512, Level::kAvx2, Level::kNeon};
  for (Level l : order) {
    if (static_cast<int>(l) <= static_cast<int>(cap) && hardware_supports(l)) {
      return l;
    }
  }
  return Level::kScalar;
#endif
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::size_t vector_bytes(Level level) {
  switch (level) {
    case Level::kScalar:
      return 8;
    case Level::kNeon:
      return 16;
    case Level::kAvx2:
      return 32;
    case Level::kAvx512:
      return 64;
  }
  return 8;
}

bool level_available(Level level) { return hardware_supports(level); }

Level detected_level() {
  static const Level level = probe();
  return level;
}

Level active_level() {
  if (thread_policy() == SimdPolicy::kForceScalar) return Level::kScalar;
  return detected_level();
}

const U32Kernels* u32_kernels(Level level) {
  if (!hardware_supports(level)) return nullptr;
  switch (level) {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX2)
    case Level::kAvx2:
      return &detail::kU32Avx2;
#endif
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX512)
    case Level::kAvx512:
      return &detail::kU32Avx512;
#endif
#if defined(__aarch64__)
    case Level::kNeon:
      return &detail::kU32Neon;
#endif
    default:
      return nullptr;
  }
}

const U64Kernels* u64_kernels(Level level) {
  if (!hardware_supports(level)) return nullptr;
  switch (level) {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX2)
    case Level::kAvx2:
      return &detail::kU64Avx2;
#endif
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX512)
    case Level::kAvx512:
      return &detail::kU64Avx512;
#endif
#if defined(__aarch64__)
    case Level::kNeon:
      return &detail::kU64Neon;
#endif
    default:
      return nullptr;
  }
}

const GoldilocksKernels* goldilocks_kernels(Level level) {
  if (!hardware_supports(level)) return nullptr;
  switch (level) {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX2)
    case Level::kAvx2:
      return &detail::kGoldilocksAvx2;
#endif
#if (defined(__x86_64__) || defined(_M_X64)) && defined(LSA_HAVE_AVX512)
    case Level::kAvx512:
      return &detail::kGoldilocksAvx512;
#endif
#if defined(__aarch64__)
    case Level::kNeon:
      return &detail::kGoldilocksNeon;
#endif
    default:
      return nullptr;
  }
}

const U32Kernels* u32_active() { return u32_kernels(active_level()); }
const U64Kernels* u64_active() { return u64_kernels(active_level()); }
const GoldilocksKernels* goldilocks_active() {
  return goldilocks_kernels(active_level());
}

}  // namespace lsa::field::simd
