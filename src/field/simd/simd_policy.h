// SIMD execution policy threaded through the protocol layers.
//
// A SimdPolicy says whether the runtime-dispatched vector kernels
// (field/simd/dispatch.h) may be used or whether the scalar branch-free
// reference path must run instead. It rides alongside sys::ExecPolicy in
// protocol::Params: kAuto picks the best ISA the CPUID probe found, while
// kForceScalar pins the bit-parity reference — the same observable results
// (every vector kernel is bit-identical to scalar; the switch exists for
// debugging, benchmarking the substrate and the CI scalar leg).
//
// The policy is carried in a thread-local so nested library layers need no
// extra parameters; ExecPolicy::run/run_blocked re-establish the caller's
// policy inside pool workers, and ScopedSimdPolicy restores on scope exit.
// This header is dependency-free on purpose: sys/exec_policy.h includes it.
#pragma once

#include <cstdint>

namespace lsa::field::simd {

enum class SimdPolicy : std::uint8_t {
  kAuto = 0,         ///< use the best ISA found by the runtime probe
  kForceScalar = 1,  ///< pin the scalar branch-free reference kernels
};

namespace detail {
inline thread_local SimdPolicy t_thread_policy = SimdPolicy::kAuto;
}  // namespace detail

/// The calling thread's current policy (kAuto unless a scope set it).
[[nodiscard]] inline SimdPolicy thread_policy() {
  return detail::t_thread_policy;
}

inline void set_thread_policy(SimdPolicy p) { detail::t_thread_policy = p; }

/// RAII scope: installs a policy on this thread, restores the previous one
/// on exit. Protocol run_round / server session steps open one of these
/// from Params::simd; ExecPolicy opens one per pool task.
class ScopedSimdPolicy {
 public:
  explicit ScopedSimdPolicy(SimdPolicy p) : saved_(thread_policy()) {
    set_thread_policy(p);
  }
  ~ScopedSimdPolicy() { set_thread_policy(saved_); }
  ScopedSimdPolicy(const ScopedSimdPolicy&) = delete;
  ScopedSimdPolicy& operator=(const ScopedSimdPolicy&) = delete;

 private:
  SimdPolicy saved_;
};

}  // namespace lsa::field::simd
