// Canonical field instantiations used across the library.
#pragma once

#include "field/prime_field.h"

namespace lsa::field {

/// q = 2^32 - 5: the modulus used in the paper's experiments (App. F.5),
/// "the largest prime within 32 bits". Elements are stored as uint32_t.
using Fp32 = PrimeField<4294967291ull>;

/// q = 2^61 - 1 (Mersenne prime). Wider headroom for aggregation sums;
/// used by tests to keep the code field-generic and by benches to measure
/// the cost of a 64-bit field.
using Fp61 = PrimeField<2305843009213693951ull>;

}  // namespace lsa::field
