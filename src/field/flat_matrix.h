// Contiguous row-major arena of field elements.
//
// The share matrices of every protocol round used to be nested
// vector<vector<...>> structures — ~N^2 heap allocations per round, with
// rows scattered across the heap. FlatMatrix stores all rows in ONE
// allocation and hands out span views, so
//   * a round's whole share arena is a single malloc (reusable across
//     rounds via reset(), which keeps capacity),
//   * row accesses are pointer arithmetic, and adjacent rows are adjacent
//     in memory — the layout the blocked kernels in field/field_vec.h
//     stream over,
//   * disjoint rows can be written concurrently without false sharing
//     beyond at most one cache line per boundary.
//
// Layout conventions used by the coding/protocol layers are documented at
// the call sites (e.g. coding::MaskCodec::encode_all stores share [~z_i]_j
// at row j * N + i so each holder j owns one contiguous row block).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"

namespace lsa::field {

template <class F>
class FlatMatrix {
 public:
  using rep = typename F::rep;

  FlatMatrix() = default;

  /// rows x cols arena, zero-initialized.
  FlatMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, F::zero) {}

  /// Reshapes to rows x cols and zero-fills. Keeps the existing allocation
  /// when capacity suffices — the per-round reuse path of the protocols.
  void reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, F::zero);
  }

  /// Reshapes WITHOUT clearing: for arenas whose rows are fully overwritten
  /// right after (encode targets, PRG fills) — skips a whole-arena memset
  /// per round. Elements carried over from the previous shape hold stale
  /// values; only use when every row read was first written.
  void reset_for_overwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Drops all contents (shape becomes 0 x 0) but keeps capacity.
  void clear() {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<rep> row(std::size_t r) {
    lsa::require(r < rows_, "FlatMatrix::row: row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const rep> row(std::size_t r) const {
    lsa::require(r < rows_, "FlatMatrix::row: row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] rep* row_ptr(std::size_t r) {
    lsa::require(r < rows_, "FlatMatrix::row_ptr: row out of range");
    return data_.data() + r * cols_;
  }
  [[nodiscard]] const rep* row_ptr(std::size_t r) const {
    lsa::require(r < rows_, "FlatMatrix::row_ptr: row out of range");
    return data_.data() + r * cols_;
  }

  [[nodiscard]] rep& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const rep& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// The whole arena as one span (rows are contiguous, row-major).
  [[nodiscard]] std::span<rep> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const rep> flat() const {
    return {data_.data(), data_.size()};
  }

  /// Detached copy of one row — for wire payloads and legacy APIs that
  /// still traffic in std::vector.
  [[nodiscard]] std::vector<rep> row_copy(std::size_t r) const {
    const auto v = row(r);
    return {v.begin(), v.end()};
  }

  /// One pointer per row, in row order — the row-view form the fused
  /// kernels and decode entry points consume.
  [[nodiscard]] std::vector<const rep*> row_ptrs() const {
    std::vector<const rep*> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = data_.data() + r * cols_;
    return out;
  }

  friend bool operator==(const FlatMatrix& a, const FlatMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<rep> data_;
};

}  // namespace lsa::field
