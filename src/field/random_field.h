// Uniform sampling of field elements from any 64-bit entropy source.
//
// Works with both the non-cryptographic simulation RNG (common::Xoshiro256ss)
// and the cryptographic PRG (crypto::Prg) — anything exposing
// `uint64_t next_u64()`. Rejection sampling removes modulo bias entirely.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

namespace lsa::field {

template <class G>
concept BitSource = requires(G g) {
  { g.next_u64() } -> std::convertible_to<std::uint64_t>;
};

/// One uniform element of F via rejection sampling from 64-bit draws.
template <class F, BitSource G>
[[nodiscard]] typename F::rep uniform(G& gen) {
  // Largest multiple of Q that fits in 64 bits; draws above it are rejected.
  constexpr std::uint64_t q = F::modulus;
  constexpr std::uint64_t limit = (~0ull / q) * q;  // multiple of q
  std::uint64_t v = gen.next_u64();
  while (v >= limit) v = gen.next_u64();
  // mod-ok: sampling boundary, not a reduction kernel — one generic `%`
  // per draw is off every encode/decode hot path.
  return static_cast<typename F::rep>(v % q);
}

/// Fill a span with uniform field elements.
template <class F, BitSource G>
void fill_uniform(std::span<typename F::rep> out, G& gen) {
  for (auto& x : out) x = uniform<F>(gen);
}

/// Allocate and fill a uniform vector of n elements.
template <class F, BitSource G>
[[nodiscard]] std::vector<typename F::rep> uniform_vector(std::size_t n,
                                                          G& gen) {
  std::vector<typename F::rep> out(n);
  fill_uniform<F>(std::span<typename F::rep>(out), gen);
  return out;
}

}  // namespace lsa::field
