// Prime-field arithmetic F_q.
//
// PrimeField<Q> is a *static policy class*: it carries no per-element state,
// and field elements are stored as raw unsigned integers ("reps"). This keeps
// vectors of field elements as dense arrays of uint32_t/uint64_t — the layout
// the masking/encoding kernels stream over — with zero per-element overhead.
//
// Two instantiations are used throughout the library (see field/fp.h):
//   Fp32: q = 2^32 - 5, the modulus used in the paper's experiments
//         ("the largest prime within 32 bits", Appendix F.5).
//   Fp61: q = 2^61 - 1 (Mersenne), used to check field-genericity and to
//         measure sensitivity of the protocols to field width.
//
// All operations are total over valid reps (values in [0, Q)) except inv(0),
// which is a precondition violation checked with lsa::require.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "common/error.h"

namespace lsa::field {

template <std::uint64_t Q>
class PrimeField {
  static_assert(Q >= 3, "modulus must be an odd prime >= 3");

 public:
  /// Storage type for one field element: uint32_t when Q fits in 32 bits.
  using rep = std::conditional_t<(Q <= 0xFFFFFFFFull), std::uint32_t,
                                 std::uint64_t>;

  static constexpr std::uint64_t modulus = Q;
  static constexpr rep zero = 0;
  static constexpr rep one = 1;

  /// Number of bytes needed to serialize one element.
  static constexpr std::size_t element_bytes = sizeof(rep);

  [[nodiscard]] static constexpr rep add(rep a, rep b) {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return static_cast<rep>(s >= Q ? s - Q : s);
  }

  [[nodiscard]] static constexpr rep sub(rep a, rep b) {
    return a >= b ? static_cast<rep>(a - b) : static_cast<rep>(Q - b + a);
  }

  [[nodiscard]] static constexpr rep neg(rep a) {
    return a == 0 ? 0 : static_cast<rep>(Q - a);
  }

  /// True when Q = 2^k - 1 for some k in (32, 63) — e.g. Fp61's Mersenne
  /// modulus — which admits shift-and-fold reduction of 128-bit products.
  static constexpr bool is_mersenne =
      Q > 0xFFFFFFFFull && std::has_single_bit(Q + 1) &&
      std::bit_width(Q) <= 62;

  /// floor(2^64 / Q), the Barrett constant for the 32-bit moduli. Q is an
  /// odd prime, so it never divides 2^64 and floor((2^64 - 1) / Q) equals
  /// floor(2^64 / Q) exactly.
  static constexpr std::uint64_t barrett_magic = ~0ull / Q;

  [[nodiscard]] static constexpr rep mul(rep a, rep b) {
    if constexpr (Q <= 0xFFFFFFFFull) {
      // Barrett reduction of the 64-bit product x = a * b < Q^2:
      //   qhat = floor(x * floor(2^64/Q) / 2^64)  in [floor(x/Q) - 1,
      //                                               floor(x/Q)],
      // so r = x - qhat * Q lies in [0, 2Q) and one conditional subtraction
      // canonicalizes. (tests/barrett_test.cpp checks this exhaustively at
      // every boundary against mul_reference.)
      const std::uint64_t x = static_cast<std::uint64_t>(a) * b;
      const std::uint64_t qhat = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(x) * barrett_magic) >> 64);
      std::uint64_t r = x - qhat * Q;
      if (r >= Q) r -= Q;
      return static_cast<rep>(r);
    } else if constexpr (is_mersenne) {
      // Mersenne shift-and-fold: with Q = 2^k - 1, 2^k == 1 (mod Q), so the
      // 2k-bit product folds as (p >> k) + (p & Q), twice, with one final
      // conditional subtraction — no 128-bit division.
      constexpr unsigned k = std::bit_width(Q);
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
      std::uint64_t s = (static_cast<std::uint64_t>(p) & Q) +
                        static_cast<std::uint64_t>(p >> k);  // < 2^(k+1)
      s = (s & Q) + (s >> k);                                // <= Q + 1
      if (s >= Q) s -= Q;
      return static_cast<rep>(s);
    } else {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
      // mod-ok: generic-modulus fallback for fields with neither a Barrett
      // nor a Mersenne specialization; no production field takes it.
      return static_cast<rep>(p % Q);
    }
  }

  /// True when mul_shoup below is a genuine precomputed-operand fast path
  /// (moduli of at most 63 bits; wider moduli would need a two-word
  /// remainder and are not used by this library's PrimeField instances).
  static constexpr bool has_shoup = std::bit_width(Q) <= 63;

  /// Shoup precomputation for a fixed operand s: floor(s * 2^W / Q) with
  /// W the rep width. Costs one wide division — amortize it over many
  /// mul_shoup calls with the same s (a GEMM row, an NTT twiddle table).
  [[nodiscard]] static constexpr rep shoup_precompute(rep s) {
    if constexpr (Q <= 0xFFFFFFFFull) {
      return static_cast<rep>((static_cast<std::uint64_t>(s) << 32) / Q);
    } else {
      return static_cast<rep>((static_cast<unsigned __int128>(s) << 64) / Q);
    }
  }

  /// Precomputed-operand product a * s with s_pre = shoup_precompute(s):
  /// qhat = floor(s_pre * a / 2^W) is floor(s*a/Q) or one less, so
  /// r = s*a - qhat*Q lies in [0, 2Q) and one conditional subtraction
  /// canonicalizes — no per-call wide reduction. Bit-identical to mul
  /// (tests/shoup_test.cpp checks every boundary exhaustively).
  [[nodiscard]] static constexpr rep mul_shoup(rep a, rep s, rep s_pre) {
    if constexpr (Q <= 0xFFFFFFFFull) {
      const std::uint64_t qhat =
          (static_cast<std::uint64_t>(s_pre) * a) >> 32;
      // 2Q can exceed 2^32, so keep the remainder in 64 bits.
      std::uint64_t r =
          static_cast<std::uint64_t>(s) * a - qhat * Q;
      if (r >= Q) r -= Q;
      return static_cast<rep>(r);
    } else if constexpr (has_shoup) {
      const std::uint64_t qhat = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(s_pre) * a) >> 64);
      // r < 2Q < 2^64: the subtraction cannot wrap.
      std::uint64_t r = s * a - qhat * Q;
      if (r >= Q) r -= Q;
      return static_cast<rep>(r);
    } else {
      (void)s_pre;
      return mul(a, s);
    }
  }

  /// Reference product via the generic `%` reduction — the kernel the fast
  /// paths above are tested against (and the seed implementation of mul).
  [[nodiscard]] static constexpr rep mul_reference(rep a, rep b) {
    if constexpr (Q <= 0xFFFFFFFFull) {
      return static_cast<rep>((static_cast<std::uint64_t>(a) * b) % Q);
    } else {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
      return static_cast<rep>(p % Q);
    }
  }

  /// a^e via binary exponentiation. pow(0, 0) == 1 by convention.
  [[nodiscard]] static constexpr rep pow(rep a, std::uint64_t e) {
    rep base = a;
    rep result = one;
    while (e != 0) {
      if (e & 1u) result = mul(result, base);
      base = mul(base, base);
      e >>= 1;
    }
    return result;
  }

  /// Multiplicative inverse via Fermat's little theorem (Q prime).
  /// Precondition: a != 0.
  [[nodiscard]] static rep inv(rep a) {
    lsa::require(a != 0, "PrimeField::inv: zero has no inverse");
    return pow(a, Q - 2);
  }

  /// Reduce an arbitrary 64-bit value into the field.
  [[nodiscard]] static constexpr rep from_u64(std::uint64_t v) {
    // mod-ok: boundary conversion helper, not a reduction kernel.
    return static_cast<rep>(v % Q);
  }

  /// Embed a signed value: negatives map to Q + v (two's-complement style).
  /// Precondition: |v| < Q/2 so the embedding is invertible via to_i64.
  [[nodiscard]] static constexpr rep from_i64(std::int64_t v) {
    if (v >= 0) return from_u64(static_cast<std::uint64_t>(v));
    const std::uint64_t mag = static_cast<std::uint64_t>(-(v + 1)) + 1;
    // mod-ok: boundary conversion helper, not a reduction kernel.
    return static_cast<rep>(Q - (mag % Q));
  }

  /// Inverse of from_i64: reps in [0, Q/2) are non-negative, the rest negative.
  [[nodiscard]] static constexpr std::int64_t to_i64(rep a) {
    // branch-ok: boundary conversion helper, not a reduction kernel.
    if (static_cast<std::uint64_t>(a) < (Q - 1) / 2 + 1) {
      return static_cast<std::int64_t>(a);
    }
    return -static_cast<std::int64_t>(Q - a);
  }

  /// True when v is a canonical representative (in [0, Q)).
  [[nodiscard]] static constexpr bool is_canonical(std::uint64_t v) {
    return v < Q;
  }
};

}  // namespace lsa::field
