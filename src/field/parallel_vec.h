// ExecPolicy-aware wrappers over the blocked field kernels.
//
// The fused kernels in field/field_vec.h are serial building blocks; this
// header splits their coordinate range across a sys::ExecPolicy so protocol
// hot loops (masked-model summation, aggregate-share accumulation, weighted
// buffers) parallelize over disjoint column blocks. Results are bit-exact
// regardless of policy: field addition is associative and every block is
// written by exactly one task.
#pragma once

#include <cstddef>
#include <span>

#include "field/field_vec.h"
#include "sys/exec_policy.h"

namespace lsa::field {

namespace detail {
/// Column-block grain: at least one kernel chunk per task, and no more
/// than ~4 blocks per lane so claim overhead stays negligible.
inline std::size_t column_grain(std::size_t n, const lsa::sys::ExecPolicy& pol) {
  const std::size_t chunk =
      pol.chunk_reps == 0 ? kDefaultChunkReps : pol.chunk_reps;
  const std::size_t per_lane = (n + pol.lanes() - 1) / pol.lanes();
  return std::max(chunk, (per_lane + 3) / 4);
}
}  // namespace detail

/// acc[l] += sum_k rows[k][l], column blocks fanned out over pol.
template <class F>
void add_accumulate(std::span<typename F::rep> acc,
                    std::span<const typename F::rep* const> rows,
                    const lsa::sys::ExecPolicy& pol) {
  if (rows.empty() || acc.empty()) return;
  pol.run_blocked(
      acc.size(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<const typename F::rep*> shifted(rows.size());
        for (std::size_t k = 0; k < rows.size(); ++k) {
          shifted[k] = rows[k] + begin;
        }
        add_accumulate_blocked<F>(acc.subspan(begin, end - begin), shifted,
                                  pol.chunk_reps);
      },
      detail::column_grain(acc.size(), pol));
}

/// acc[l] += sum_k coeffs[k] * rows[k][l], column blocks fanned out over pol.
template <class F>
void axpy_accumulate(std::span<typename F::rep> acc,
                     std::span<const typename F::rep> coeffs,
                     std::span<const typename F::rep* const> rows,
                     const lsa::sys::ExecPolicy& pol) {
  if (rows.empty() || acc.empty()) return;
  pol.run_blocked(
      acc.size(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<const typename F::rep*> shifted(rows.size());
        for (std::size_t k = 0; k < rows.size(); ++k) {
          shifted[k] = rows[k] + begin;
        }
        axpy_accumulate_blocked<F>(acc.subspan(begin, end - begin), coeffs,
                                   shifted, pol.chunk_reps);
      },
      detail::column_grain(acc.size(), pol));
}

}  // namespace lsa::field
