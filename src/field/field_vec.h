// Dense elementwise kernels over vectors of field elements.
//
// These loops are the hot path of every protocol phase (mask generation,
// model masking, aggregate-mask accumulation), so they operate on raw rep
// spans with no abstraction overhead; the compiler auto-vectorizes them.
//
// Beyond the plain elementwise kernels, this header provides the *fused
// accumulation* kernels the flat-arena encode/decode engine is built on:
//   add_accumulate_blocked   acc += sum_k rows[k]
//   axpy_accumulate_blocked  acc += sum_k coeffs[k] * rows[k]
// Both process the coordinate range in cache-sized blocks (the destination
// block stays L1-resident while the source rows stream through), and for
// 32-bit fields they use split-word lazy accumulation: each coefficient w
// splits as w_hi * 2^16 + w_lo, the partial products w_lo * x < 2^48 and
// w_hi * x < 2^48 accumulate in plain uint64 lanes (auto-vectorizable, no
// per-term modular reduction), and ONE reduction per output element folds
// the two lanes back into the field. This turns the U-term MDS encode and
// the (U-T) x U decode GEMMs from one Barrett reduction per term into one
// per output element — exact, bit-identical results (the field is
// associative/commutative and the lazy sums never overflow; see
// tests/flat_matrix_test.cpp for the parity checks).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace lsa::field {

/// Reps per cache block for the blocked kernels: 4096 * 4 B = 16 KiB of
/// destination (u32 fields) — block plus lazy accumulators fit in L1.
inline constexpr std::size_t kDefaultChunkReps = 4096;

/// acc[i] = acc[i] + x[i] for all i.
template <class F>
void add_inplace(std::span<typename F::rep> acc,
                 std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field add: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = F::add(acc[i], x[i]);
}

/// acc[i] = acc[i] - x[i] for all i.
template <class F>
void sub_inplace(std::span<typename F::rep> acc,
                 std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field sub: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = F::sub(acc[i], x[i]);
}

/// acc[i] = acc[i] * s for all i.
template <class F>
void scale_inplace(std::span<typename F::rep> acc, typename F::rep s) {
  for (auto& a : acc) a = F::mul(a, s);
}

/// acc[i] = acc[i] + s * x[i] for all i (the MDS encode/decode inner loop).
template <class F>
void axpy_inplace(std::span<typename F::rep> acc, typename F::rep s,
                  std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field axpy: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = F::add(acc[i], F::mul(s, x[i]));
  }
}

/// acc[i] = acc[i] + x[i], traversed in chunk-sized blocks. Equivalent to
/// add_inplace; the blocked form exists so call sites that interleave
/// several kernels per block keep the destination L1-resident.
template <class F>
void add_inplace_chunked(std::span<typename F::rep> acc,
                         std::span<const typename F::rep> x,
                         std::size_t chunk = kDefaultChunkReps) {
  lsa::require(acc.size() == x.size(), "field add: size mismatch");
  if (chunk == 0) chunk = kDefaultChunkReps;
  for (std::size_t l0 = 0; l0 < acc.size(); l0 += chunk) {
    const std::size_t b = std::min(chunk, acc.size() - l0);
    add_inplace<F>(acc.subspan(l0, b), x.subspan(l0, b));
  }
}

/// acc[i] = acc[i] + s * x[i], traversed in chunk-sized blocks.
template <class F>
void axpy_inplace_chunked(std::span<typename F::rep> acc, typename F::rep s,
                          std::span<const typename F::rep> x,
                          std::size_t chunk = kDefaultChunkReps) {
  lsa::require(acc.size() == x.size(), "field axpy: size mismatch");
  if (chunk == 0) chunk = kDefaultChunkReps;
  for (std::size_t l0 = 0; l0 < acc.size(); l0 += chunk) {
    const std::size_t b = std::min(chunk, acc.size() - l0);
    axpy_inplace<F>(acc.subspan(l0, b), s, x.subspan(l0, b));
  }
}

namespace detail {
/// Width of the split-word lazy accumulators: 2048 entries * 2 lanes *
/// 8 B = 32 KiB of stack per call.
inline constexpr std::size_t kLazyWidth = 2048;
/// Terms accumulated before a fold: each partial product is < 2^48, and
/// 2^15 * 2^48 = 2^63 keeps the u64 lanes clear of overflow.
inline constexpr std::size_t kMaxLazyTerms = std::size_t{1} << 15;
}  // namespace detail

/// acc[l] += sum_k rows[k][l] for every l in [0, acc.size()); every row
/// must have at least acc.size() readable elements. For 32-bit fields the
/// column sums accumulate lazily in uint64 (a sum of up to 2^32 canonical
/// u32 values cannot overflow) with one reduction per output element.
template <class F>
void add_accumulate_blocked(std::span<typename F::rep> acc,
                            std::span<const typename F::rep* const> rows,
                            std::size_t chunk = kDefaultChunkReps) {
  using rep = typename F::rep;
  if (rows.empty()) return;
  if (chunk == 0) chunk = kDefaultChunkReps;
  const std::size_t n = acc.size();
  if constexpr (sizeof(rep) == 4) {
    const std::size_t width = std::min(chunk, detail::kLazyWidth);
    std::uint64_t sums[detail::kLazyWidth];
    for (std::size_t l0 = 0; l0 < n; l0 += width) {
      const std::size_t b = std::min(width, n - l0);
      std::fill_n(sums, b, std::uint64_t{0});
      for (const rep* const row : rows) {
        const rep* src = row + l0;
        for (std::size_t l = 0; l < b; ++l) sums[l] += src[l];
      }
      rep* dst = acc.data() + l0;
      for (std::size_t l = 0; l < b; ++l) {
        dst[l] = F::add(dst[l], F::from_u64(sums[l]));
      }
    }
  } else {
    for (std::size_t l0 = 0; l0 < n; l0 += chunk) {
      const std::size_t l1 = std::min(l0 + chunk, n);
      rep* dst = acc.data();
      for (const rep* const row : rows) {
        for (std::size_t l = l0; l < l1; ++l) dst[l] = F::add(dst[l], row[l]);
      }
    }
  }
}

/// acc[l] += sum_k coeffs[k] * rows[k][l] — the fused MDS encode / decode /
/// weighted-aggregation GEMV. 32-bit fields take the split-word lazy path
/// described in the header comment; 64-bit fields run a blocked
/// mul-and-add loop (Mersenne / Goldilocks reduction is already cheap).
template <class F>
void axpy_accumulate_blocked(std::span<typename F::rep> acc,
                             std::span<const typename F::rep> coeffs,
                             std::span<const typename F::rep* const> rows,
                             std::size_t chunk = kDefaultChunkReps) {
  using rep = typename F::rep;
  lsa::require(coeffs.size() == rows.size(),
               "axpy_accumulate: coeffs/rows size mismatch");
  if (rows.empty()) return;
  if (chunk == 0) chunk = kDefaultChunkReps;
  const std::size_t n = acc.size();
  if constexpr (sizeof(rep) == 4) {
    const std::size_t width = std::min(chunk, detail::kLazyWidth);
    std::uint64_t lo[detail::kLazyWidth];
    std::uint64_t hi[detail::kLazyWidth];
    for (std::size_t l0 = 0; l0 < n; l0 += width) {
      const std::size_t b = std::min(width, n - l0);
      std::fill_n(lo, b, std::uint64_t{0});
      std::fill_n(hi, b, std::uint64_t{0});
      rep* dst = acc.data() + l0;
      const auto fold = [&] {
        for (std::size_t l = 0; l < b; ++l) {
          const std::uint64_t h = hi[l] % F::modulus;  // < 2^32
          const std::uint64_t t = (h << 16) + lo[l];   // < 2^63 + 2^48
          dst[l] = F::add(dst[l], F::from_u64(t));
        }
      };
      std::size_t pending = 0;
      for (std::size_t k = 0; k < rows.size(); ++k) {
        if (pending == detail::kMaxLazyTerms) {
          fold();
          std::fill_n(lo, b, std::uint64_t{0});
          std::fill_n(hi, b, std::uint64_t{0});
          pending = 0;
        }
        ++pending;
        const std::uint64_t wlo = coeffs[k] & 0xFFFFu;
        const std::uint64_t whi = coeffs[k] >> 16;
        const rep* src = rows[k] + l0;
        for (std::size_t l = 0; l < b; ++l) {
          const std::uint64_t x = src[l];
          lo[l] += wlo * x;  // < 2^16 * 2^32 = 2^48 per term
          hi[l] += whi * x;
        }
      }
      fold();
    }
  } else {
    for (std::size_t l0 = 0; l0 < n; l0 += chunk) {
      const std::size_t l1 = std::min(l0 + chunk, n);
      rep* dst = acc.data();
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const rep w = coeffs[k];
        if (w == F::zero) continue;
        const rep* src = rows[k];
        for (std::size_t l = l0; l < l1; ++l) {
          dst[l] = F::add(dst[l], F::mul(w, src[l]));
        }
      }
    }
  }
}

/// Returns a + b (new vector).
template <class F>
[[nodiscard]] std::vector<typename F::rep> add(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  std::vector<typename F::rep> out(a.begin(), a.end());
  add_inplace<F>(out, b);
  return out;
}

/// Returns a - b (new vector).
template <class F>
[[nodiscard]] std::vector<typename F::rep> sub(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  std::vector<typename F::rep> out(a.begin(), a.end());
  sub_inplace<F>(out, b);
  return out;
}

/// Sum of all elements.
template <class F>
[[nodiscard]] typename F::rep sum(std::span<const typename F::rep> a) {
  typename F::rep s = F::zero;
  for (auto v : a) s = F::add(s, v);
  return s;
}

/// Inner product <a, b>.
template <class F>
[[nodiscard]] typename F::rep dot(std::span<const typename F::rep> a,
                                  std::span<const typename F::rep> b) {
  lsa::require(a.size() == b.size(), "field dot: size mismatch");
  typename F::rep s = F::zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s = F::add(s, F::mul(a[i], b[i]));
  }
  return s;
}

/// Batch inversion via Montgomery's trick: one inv() + 3(n-1) multiplications.
/// Precondition: no element is zero.
template <class F>
void batch_inv_inplace(std::span<typename F::rep> xs) {
  if (xs.empty()) return;
  std::vector<typename F::rep> prefix(xs.size());
  typename F::rep acc = F::one;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    lsa::require(xs[i] != F::zero, "batch_inv: zero element");
    prefix[i] = acc;
    acc = F::mul(acc, xs[i]);
  }
  typename F::rep inv_acc = F::inv(acc);
  for (std::size_t i = xs.size(); i-- > 0;) {
    const typename F::rep inv_i = F::mul(inv_acc, prefix[i]);
    inv_acc = F::mul(inv_acc, xs[i]);
    xs[i] = inv_i;
  }
}

}  // namespace lsa::field
