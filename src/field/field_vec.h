// Dense elementwise kernels over vectors of field elements.
//
// These loops are the hot path of every protocol phase (mask generation,
// model masking, aggregate-mask accumulation), so they operate on raw rep
// spans with no abstraction overhead; the compiler auto-vectorizes them.
//
// Beyond the plain elementwise kernels, this header provides the *fused
// accumulation* kernels the flat-arena encode/decode engine is built on:
//   add_accumulate_blocked   acc += sum_k rows[k]
//   axpy_accumulate_blocked  acc += sum_k coeffs[k] * rows[k]
// Both process the coordinate range in cache-sized blocks (the destination
// block stays L1-resident while the source rows stream through), and for
// 32-bit fields they use split-word lazy accumulation: each coefficient w
// splits as w_hi * 2^16 + w_lo, the partial products w_lo * x < 2^48 and
// w_hi * x < 2^48 accumulate in plain uint64 lanes (auto-vectorizable, no
// per-term modular reduction), and ONE reduction per output element folds
// the two lanes back into the field. This turns the U-term MDS encode and
// the (U-T) x U decode GEMMs from one Barrett reduction per term into one
// per output element — exact, bit-identical results (the field is
// associative/commutative and the lazy sums never overflow; see
// tests/flat_matrix_test.cpp for the parity checks).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "field/simd/dispatch.h"

namespace lsa::field {

/// Reps per cache block for the blocked kernels: 4096 * 4 B = 16 KiB of
/// destination (u32 fields) — block plus lazy accumulators fit in L1.
inline constexpr std::size_t kDefaultChunkReps = 4096;

/// Fields exposing Shoup precomputed-operand multiplication: a fixed
/// operand s is preprocessed once (one wide division) into s_pre, after
/// which every mul_shoup(a, s, s_pre) replaces the full Barrett/Mersenne/
/// Goldilocks reduction with one high-half product and one conditional
/// subtraction. This is the fast path of the 64-bit axpy kernels below and
/// of the precomputed-twiddle NTT (coding/ntt.h).
template <class F>
concept ShoupCapable = requires(typename F::rep a) {
  { F::has_shoup } -> std::convertible_to<bool>;
  { F::shoup_precompute(a) } -> std::convertible_to<typename F::rep>;
  { F::mul_shoup(a, a, a) } -> std::convertible_to<typename F::rep>;
};

/// Row length below which the per-coefficient shoup_precompute division is
/// not worth amortizing and the kernels keep the plain mul.
inline constexpr std::size_t kShoupMinReps = 16;

/// Whether the Shoup precomputed-operand multiply is the measured winner
/// for this field's streaming axpy kernels. On the Mersenne 64-bit rep the
/// Shoup form (one high product + one conditional subtraction) beats the
/// shift-and-fold reduction by ~1.2x; on Goldilocks the branch-free
/// reduce128 multiply and the 3-limb lazy accumulation both beat it
/// (bench/ablation_decode_complexity Part 0 keeps the comparison honest).
template <class F>
inline constexpr bool kPrefersShoupAxpy = [] {
  if constexpr (requires { F::is_mersenne; }) {
    return static_cast<bool>(F::is_mersenne);
  } else {
    return false;
  }
}();

/// Shoup precomputation of a whole coefficient vector (one table per GEMM
/// row / twiddle set; build once, reuse across every streamed element).
template <ShoupCapable F>
void shoup_precompute_into(std::span<const typename F::rep> coeffs,
                           std::span<typename F::rep> out) {
  lsa::require(coeffs.size() == out.size(), "shoup table: size mismatch");
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    out[i] = F::shoup_precompute(coeffs[i]);
  }
}

template <ShoupCapable F>
[[nodiscard]] std::vector<typename F::rep> shoup_precompute_vec(
    std::span<const typename F::rep> coeffs) {
  std::vector<typename F::rep> out(coeffs.size());
  shoup_precompute_into<F>(coeffs, std::span<typename F::rep>(out));
  return out;
}

/// acc[i] = acc[i] + x[i] for all i. Routed to the runtime-dispatched SIMD
/// kernel when the field has one (bit-identical; field/simd/dispatch.h).
template <class F>
void add_inplace(std::span<typename F::rep> acc,
                 std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field add: size mismatch");
  if constexpr (simd::kIsGoldilocksField<F>) {
    if (const auto* k = simd::goldilocks_active()) {
      k->add_mod(acc.data(), x.data(), acc.size());
      return;
    }
  } else if constexpr (simd::kIsSimdU32Field<F>) {
    if (const auto* k = simd::u32_active()) {
      k->add_mod(acc.data(), x.data(), acc.size(), F::modulus);
      return;
    }
  } else if constexpr (simd::kIsSimdU64Field<F>) {
    if (const auto* k = simd::u64_active()) {
      k->add_mod(acc.data(), x.data(), acc.size(), F::modulus);
      return;
    }
  }
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = F::add(acc[i], x[i]);
}

/// acc[i] = acc[i] - x[i] for all i.
template <class F>
void sub_inplace(std::span<typename F::rep> acc,
                 std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field sub: size mismatch");
  if constexpr (simd::kIsGoldilocksField<F>) {
    if (const auto* k = simd::goldilocks_active()) {
      k->sub_mod(acc.data(), x.data(), acc.size());
      return;
    }
  } else if constexpr (simd::kIsSimdU32Field<F>) {
    if (const auto* k = simd::u32_active()) {
      k->sub_mod(acc.data(), x.data(), acc.size(), F::modulus);
      return;
    }
  } else if constexpr (simd::kIsSimdU64Field<F>) {
    if (const auto* k = simd::u64_active()) {
      k->sub_mod(acc.data(), x.data(), acc.size(), F::modulus);
      return;
    }
  }
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = F::sub(acc[i], x[i]);
}

/// acc[i] = acc[i] * s for all i.
template <class F>
void scale_inplace(std::span<typename F::rep> acc, typename F::rep s) {
  for (auto& a : acc) a = F::mul(a, s);
}

/// acc[i] = acc[i] + s * x[i] for all i (the MDS encode/decode inner loop).
/// Fields where Shoup wins (kPrefersShoupAxpy) precompute s once and run
/// the cheap precomputed-operand multiply per element — bit-identical to
/// F::mul.
template <class F>
void axpy_inplace(std::span<typename F::rep> acc, typename F::rep s,
                  std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field axpy: size mismatch");
  if constexpr (ShoupCapable<F> && kPrefersShoupAxpy<F> &&
                simd::kIsSimdU64Field<F>) {
    if (F::has_shoup && acc.size() >= kShoupMinReps) {
      if (const auto* k = simd::u64_active()) {
        k->shoup_axpy(acc.data(), x.data(), s, F::shoup_precompute(s),
                      acc.size(), F::modulus);
        return;
      }
    }
  }
  if constexpr (simd::kIsGoldilocksField<F>) {
    // mul_shoup is bit-identical to mul, so the vector Shoup row applies
    // even though the scalar path prefers the reduce128 multiply.
    if (acc.size() >= kShoupMinReps) {
      if (const auto* k = simd::goldilocks_active()) {
        k->shoup_axpy(acc.data(), x.data(), s, F::shoup_precompute(s),
                      acc.size());
        return;
      }
    }
  }
  if constexpr (ShoupCapable<F> && kPrefersShoupAxpy<F>) {
    if (F::has_shoup && acc.size() >= kShoupMinReps) {
      const typename F::rep s_pre = F::shoup_precompute(s);
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = F::add(acc[i], F::mul_shoup(x[i], s, s_pre));
      }
      return;
    }
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = F::add(acc[i], F::mul(s, x[i]));
  }
}

/// acc[i] = acc[i] + x[i], traversed in chunk-sized blocks. Equivalent to
/// add_inplace; the blocked form exists so call sites that interleave
/// several kernels per block keep the destination L1-resident.
template <class F>
void add_inplace_chunked(std::span<typename F::rep> acc,
                         std::span<const typename F::rep> x,
                         std::size_t chunk = kDefaultChunkReps) {
  lsa::require(acc.size() == x.size(), "field add: size mismatch");
  if (chunk == 0) chunk = kDefaultChunkReps;
  for (std::size_t l0 = 0; l0 < acc.size(); l0 += chunk) {
    const std::size_t b = std::min(chunk, acc.size() - l0);
    add_inplace<F>(acc.subspan(l0, b), x.subspan(l0, b));
  }
}

/// acc[i] = acc[i] + s * x[i], traversed in chunk-sized blocks.
template <class F>
void axpy_inplace_chunked(std::span<typename F::rep> acc, typename F::rep s,
                          std::span<const typename F::rep> x,
                          std::size_t chunk = kDefaultChunkReps) {
  lsa::require(acc.size() == x.size(), "field axpy: size mismatch");
  if (chunk == 0) chunk = kDefaultChunkReps;
  for (std::size_t l0 = 0; l0 < acc.size(); l0 += chunk) {
    const std::size_t b = std::min(chunk, acc.size() - l0);
    axpy_inplace<F>(acc.subspan(l0, b), s, x.subspan(l0, b));
  }
}

namespace detail {
/// Width of the split-word lazy accumulators: 2048 entries * 2 lanes *
/// 8 B = 32 KiB of stack per call.
inline constexpr std::size_t kLazyWidth = 2048;
/// Terms accumulated before a fold: each partial product is < 2^48, and
/// 2^15 * 2^48 = 2^63 keeps the u64 lanes clear of overflow.
inline constexpr std::size_t kMaxLazyTerms = std::size_t{1} << 15;
/// Width of the 3-limb lazy accumulators for 64-bit fields: 1024 entries *
/// 3 limbs * 8 B = 24 KiB of stack per call.
inline constexpr std::size_t kLazy192Width = 1024;
}  // namespace detail

/// 2^64 mod p and 2^128 mod p — the fold constants of the 192-bit lazy
/// accumulation scheme below.
template <class F>
inline constexpr typename F::rep kResidue64 =
    F::add(F::from_u64(~0ull), F::one);
template <class F>
inline constexpr typename F::rep kResidue128 =
    F::mul(kResidue64<F>, kResidue64<F>);

/// Adds the full product a * b to a 3-limb (192-bit) lazy accumulator —
/// one widening multiply plus carry adds, branch-free (no data-dependent
/// reduction per term). The hi limb grows at most one carry per term, so
/// any term count below 2^64 is safe.
template <class F>
constexpr void lazy192_accumulate(std::uint64_t& lo, std::uint64_t& mi,
                                  std::uint64_t& hi, typename F::rep a,
                                  typename F::rep b) {
  const unsigned __int128 pr = static_cast<unsigned __int128>(a) * b;
  const std::uint64_t plo = static_cast<std::uint64_t>(pr);
  const std::uint64_t phi = static_cast<std::uint64_t>(pr >> 64);
  const std::uint64_t c1 = __builtin_add_overflow(lo, plo, &lo) ? 1u : 0u;
  // phi <= 2^64 - 2, so phi + c1 cannot wrap.
  hi += __builtin_add_overflow(mi, phi + c1, &mi) ? 1u : 0u;
}

/// Folds a 3-limb lazy accumulator back into the field: the exact value
/// hi*2^128 + mi*2^64 + lo reduced mod p — bit-identical to having
/// reduced every term.
template <class F>
[[nodiscard]] constexpr typename F::rep lazy192_fold(std::uint64_t lo,
                                                     std::uint64_t mi,
                                                     std::uint64_t hi) {
  return F::add(
      F::mul(F::from_u64(hi), kResidue128<F>),
      F::add(F::mul(F::from_u64(mi), kResidue64<F>), F::from_u64(lo)));
}

/// acc[l] += sum_k rows[k][l] for every l in [0, acc.size()); every row
/// must have at least acc.size() readable elements. For 32-bit fields the
/// column sums accumulate lazily in uint64 (a sum of up to 2^32 canonical
/// u32 values cannot overflow) with one reduction per output element.
template <class F>
void add_accumulate_blocked(std::span<typename F::rep> acc,
                            std::span<const typename F::rep* const> rows,
                            std::size_t chunk = kDefaultChunkReps) {
  using rep = typename F::rep;
  if (rows.empty()) return;
  if (chunk == 0) chunk = kDefaultChunkReps;
  const std::size_t n = acc.size();
  if constexpr (sizeof(rep) == 4) {
    const auto* vk =
        simd::kIsSimdU32Field<F> ? simd::u32_active() : nullptr;
    const std::size_t width = std::min(chunk, detail::kLazyWidth);
    std::uint64_t sums[detail::kLazyWidth];
    for (std::size_t l0 = 0; l0 < n; l0 += width) {
      const std::size_t b = std::min(width, n - l0);
      std::fill_n(sums, b, std::uint64_t{0});
      for (const rep* const row : rows) {
        const rep* src = row + l0;
        if (vk != nullptr) {
          vk->accum_widen(sums, src, b);
        } else {
          for (std::size_t l = 0; l < b; ++l) sums[l] += src[l];
        }
      }
      rep* dst = acc.data() + l0;
      for (std::size_t l = 0; l < b; ++l) {
        dst[l] = F::add(dst[l], F::from_u64(sums[l]));
      }
    }
  } else {
    for (std::size_t l0 = 0; l0 < n; l0 += chunk) {
      const std::size_t l1 = std::min(l0 + chunk, n);
      for (const rep* const row : rows) {
        add_inplace<F>(acc.subspan(l0, l1 - l0),
                       std::span<const rep>(row + l0, l1 - l0));
      }
    }
  }
}

namespace detail {
/// The 64-bit axpy-accumulate inner loops with Shoup precomputed operands:
/// shoup[k] = F::shoup_precompute(coeffs[k]), built once per GEMM row set
/// and amortized over every streamed element.
template <class F>
void axpy_accumulate_shoup(std::span<typename F::rep> acc,
                           std::span<const typename F::rep> coeffs,
                           std::span<const typename F::rep> shoup,
                           std::span<const typename F::rep* const> rows,
                           std::size_t chunk) {
  using rep = typename F::rep;
  const std::size_t n = acc.size();
  const simd::GoldilocksKernels* glk = nullptr;
  const simd::U64Kernels* u64k = nullptr;
  if constexpr (simd::kIsGoldilocksField<F>) {
    glk = simd::goldilocks_active();
  } else if constexpr (simd::kIsSimdU64Field<F>) {
    u64k = simd::u64_active();
  }
  for (std::size_t l0 = 0; l0 < n; l0 += chunk) {
    const std::size_t l1 = std::min(l0 + chunk, n);
    rep* dst = acc.data();
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const rep w = coeffs[k];
      if (w == F::zero) continue;
      const rep wp = shoup[k];
      const rep* src = rows[k];
      if (glk != nullptr) {
        glk->shoup_axpy(dst + l0, src + l0, w, wp, l1 - l0);
      } else if (u64k != nullptr) {
        u64k->shoup_axpy(dst + l0, src + l0, w, wp, l1 - l0, F::modulus);
      } else {
        for (std::size_t l = l0; l < l1; ++l) {
          dst[l] = F::add(dst[l], F::mul_shoup(src[l], w, wp));
        }
      }
    }
  }
}
}  // namespace detail

/// acc[l] += sum_k coeffs[k] * rows[k][l] — the fused MDS encode / decode /
/// weighted-aggregation GEMV. 32-bit fields take the split-word lazy path
/// described in the header comment; 64-bit Mersenne fields precompute each
/// coefficient's Shoup operand once per call (the measured winner there);
/// the remaining 64-bit fields accumulate full 128-bit products into
/// 3-limb lazy lanes (lazy192_accumulate) with ONE fold per output
/// element — no per-term reduction at all.
template <class F>
void axpy_accumulate_blocked(std::span<typename F::rep> acc,
                             std::span<const typename F::rep> coeffs,
                             std::span<const typename F::rep* const> rows,
                             std::size_t chunk = kDefaultChunkReps) {
  using rep = typename F::rep;
  lsa::require(coeffs.size() == rows.size(),
               "axpy_accumulate: coeffs/rows size mismatch");
  if (rows.empty()) return;
  if (chunk == 0) chunk = kDefaultChunkReps;
  const std::size_t n = acc.size();
  if constexpr (sizeof(rep) == 4) {
    const auto* vk =
        simd::kIsSimdU32Field<F> ? simd::u32_active() : nullptr;
    const std::size_t width = std::min(chunk, detail::kLazyWidth);
    std::uint64_t lo[detail::kLazyWidth];
    std::uint64_t hi[detail::kLazyWidth];
    for (std::size_t l0 = 0; l0 < n; l0 += width) {
      const std::size_t b = std::min(width, n - l0);
      std::fill_n(lo, b, std::uint64_t{0});
      std::fill_n(hi, b, std::uint64_t{0});
      rep* dst = acc.data() + l0;
      const auto fold = [&] {
        for (std::size_t l = 0; l < b; ++l) {
          // mod-ok: one generic reduction per kMaxLazyTerms accumulated
          // terms — amortized off the per-term path the lazy split buys.
          const std::uint64_t h = hi[l] % F::modulus;  // < 2^32
          const std::uint64_t t = (h << 16) + lo[l];   // < 2^63 + 2^48
          dst[l] = F::add(dst[l], F::from_u64(t));
        }
      };
      std::size_t pending = 0;
      for (std::size_t k = 0; k < rows.size(); ++k) {
        if (pending == detail::kMaxLazyTerms) {
          fold();
          std::fill_n(lo, b, std::uint64_t{0});
          std::fill_n(hi, b, std::uint64_t{0});
          pending = 0;
        }
        ++pending;
        const std::uint64_t wlo = coeffs[k] & 0xFFFFu;
        const std::uint64_t whi = coeffs[k] >> 16;
        const rep* src = rows[k] + l0;
        if (vk != nullptr) {
          vk->axpy_split(lo, hi, src, static_cast<std::uint32_t>(wlo),
                         static_cast<std::uint32_t>(whi), b);
        } else {
          for (std::size_t l = 0; l < b; ++l) {
            const std::uint64_t x = src[l];
            lo[l] += wlo * x;  // < 2^16 * 2^32 = 2^48 per term
            hi[l] += whi * x;
          }
        }
      }
      fold();
    }
  } else {
    if constexpr (ShoupCapable<F> && kPrefersShoupAxpy<F>) {
      if (F::has_shoup && n >= kShoupMinReps) {
        std::vector<rep> shoup(coeffs.size());
        shoup_precompute_into<F>(coeffs, std::span<rep>(shoup));
        detail::axpy_accumulate_shoup<F>(acc, coeffs,
                                         std::span<const rep>(shoup), rows,
                                         chunk);
        return;
      }
    }
    const simd::U64Kernels* u64k = nullptr;
    const simd::GoldilocksKernels* glk = nullptr;
    if constexpr (simd::kIsGoldilocksField<F>) {
      glk = simd::goldilocks_active();
      u64k = simd::u64_active();  // lazy192 rows are modulus-free
    } else if constexpr (simd::kIsSimdU64Field<F>) {
      u64k = simd::u64_active();
    }
    const std::size_t width = std::min(chunk, detail::kLazy192Width);
    std::uint64_t lo[detail::kLazy192Width];
    std::uint64_t mi[detail::kLazy192Width];
    std::uint64_t hi[detail::kLazy192Width];
    std::uint64_t folded[detail::kLazy192Width];
    for (std::size_t l0 = 0; l0 < n; l0 += width) {
      const std::size_t b = std::min(width, n - l0);
      std::fill_n(lo, b, std::uint64_t{0});
      std::fill_n(mi, b, std::uint64_t{0});
      std::fill_n(hi, b, std::uint64_t{0});
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const rep w = coeffs[k];
        if (w == F::zero) continue;
        const rep* src = rows[k] + l0;
        if (u64k != nullptr) {
          u64k->lazy192_axpy(lo, mi, hi, w, src, b);
        } else {
          for (std::size_t l = 0; l < b; ++l) {
            lazy192_accumulate<F>(lo[l], mi[l], hi[l], w, src[l]);
          }
        }
      }
      rep* dst = acc.data() + l0;
      if (glk != nullptr) {
        glk->fold192(folded, lo, mi, hi, b);
        glk->add_mod(dst, folded, b);
      } else {
        for (std::size_t l = 0; l < b; ++l) {
          dst[l] = F::add(dst[l], lazy192_fold<F>(lo[l], mi[l], hi[l]));
        }
      }
    }
  }
}

/// Precomputed-table variant for callers that reuse one coefficient set
/// across many calls with SHORT rows (the cached Shamir reconstruction
/// plan): shoup[k] must equal F::shoup_precompute(coeffs[k]). The table
/// makes the Shoup path free of its per-call division cost, so it is used
/// for every 64-bit Shoup field here; 32-bit fields keep their split-word
/// path. Bit-identical to the plain overload.
template <ShoupCapable F>
void axpy_accumulate_blocked_pre(std::span<typename F::rep> acc,
                                 std::span<const typename F::rep> coeffs,
                                 std::span<const typename F::rep> shoup,
                                 std::span<const typename F::rep* const> rows,
                                 std::size_t chunk = kDefaultChunkReps) {
  lsa::require(coeffs.size() == rows.size() && shoup.size() == rows.size(),
               "axpy_accumulate: coeffs/shoup/rows size mismatch");
  if (rows.empty()) return;
  if (chunk == 0) chunk = kDefaultChunkReps;
  if constexpr (sizeof(typename F::rep) == 8) {
    if (F::has_shoup) {
      detail::axpy_accumulate_shoup<F>(acc, coeffs, shoup, rows, chunk);
      return;
    }
  }
  axpy_accumulate_blocked<F>(acc, coeffs, rows, chunk);
}

/// Returns a + b (new vector).
template <class F>
[[nodiscard]] std::vector<typename F::rep> add(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  std::vector<typename F::rep> out(a.begin(), a.end());
  add_inplace<F>(out, b);
  return out;
}

/// Returns a - b (new vector).
template <class F>
[[nodiscard]] std::vector<typename F::rep> sub(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  std::vector<typename F::rep> out(a.begin(), a.end());
  sub_inplace<F>(out, b);
  return out;
}

/// Sum of all elements.
template <class F>
[[nodiscard]] typename F::rep sum(std::span<const typename F::rep> a) {
  typename F::rep s = F::zero;
  for (auto v : a) s = F::add(s, v);
  return s;
}

/// Inner product <a, b>.
template <class F>
[[nodiscard]] typename F::rep dot(std::span<const typename F::rep> a,
                                  std::span<const typename F::rep> b) {
  lsa::require(a.size() == b.size(), "field dot: size mismatch");
  typename F::rep s = F::zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s = F::add(s, F::mul(a[i], b[i]));
  }
  return s;
}

/// Batch inversion via Montgomery's trick: one inv() + 3(n-1) multiplications.
/// Precondition: no element is zero.
template <class F>
void batch_inv_inplace(std::span<typename F::rep> xs) {
  if (xs.empty()) return;
  std::vector<typename F::rep> prefix(xs.size());
  typename F::rep acc = F::one;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    lsa::require(xs[i] != F::zero, "batch_inv: zero element");
    prefix[i] = acc;
    acc = F::mul(acc, xs[i]);
  }
  typename F::rep inv_acc = F::inv(acc);
  for (std::size_t i = xs.size(); i-- > 0;) {
    const typename F::rep inv_i = F::mul(inv_acc, prefix[i]);
    inv_acc = F::mul(inv_acc, xs[i]);
    xs[i] = inv_i;
  }
}

}  // namespace lsa::field
