// Dense elementwise kernels over vectors of field elements.
//
// These loops are the hot path of every protocol phase (mask generation,
// model masking, aggregate-mask accumulation), so they operate on raw rep
// spans with no abstraction overhead; the compiler auto-vectorizes them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace lsa::field {

/// acc[i] = acc[i] + x[i] for all i.
template <class F>
void add_inplace(std::span<typename F::rep> acc,
                 std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field add: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = F::add(acc[i], x[i]);
}

/// acc[i] = acc[i] - x[i] for all i.
template <class F>
void sub_inplace(std::span<typename F::rep> acc,
                 std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field sub: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = F::sub(acc[i], x[i]);
}

/// acc[i] = acc[i] * s for all i.
template <class F>
void scale_inplace(std::span<typename F::rep> acc, typename F::rep s) {
  for (auto& a : acc) a = F::mul(a, s);
}

/// acc[i] = acc[i] + s * x[i] for all i (the MDS encode/decode inner loop).
template <class F>
void axpy_inplace(std::span<typename F::rep> acc, typename F::rep s,
                  std::span<const typename F::rep> x) {
  lsa::require(acc.size() == x.size(), "field axpy: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = F::add(acc[i], F::mul(s, x[i]));
  }
}

/// Returns a + b (new vector).
template <class F>
[[nodiscard]] std::vector<typename F::rep> add(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  std::vector<typename F::rep> out(a.begin(), a.end());
  add_inplace<F>(out, b);
  return out;
}

/// Returns a - b (new vector).
template <class F>
[[nodiscard]] std::vector<typename F::rep> sub(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  std::vector<typename F::rep> out(a.begin(), a.end());
  sub_inplace<F>(out, b);
  return out;
}

/// Sum of all elements.
template <class F>
[[nodiscard]] typename F::rep sum(std::span<const typename F::rep> a) {
  typename F::rep s = F::zero;
  for (auto v : a) s = F::add(s, v);
  return s;
}

/// Inner product <a, b>.
template <class F>
[[nodiscard]] typename F::rep dot(std::span<const typename F::rep> a,
                                  std::span<const typename F::rep> b) {
  lsa::require(a.size() == b.size(), "field dot: size mismatch");
  typename F::rep s = F::zero;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s = F::add(s, F::mul(a[i], b[i]));
  }
  return s;
}

/// Batch inversion via Montgomery's trick: one inv() + 3(n-1) multiplications.
/// Precondition: no element is zero.
template <class F>
void batch_inv_inplace(std::span<typename F::rep> xs) {
  if (xs.empty()) return;
  std::vector<typename F::rep> prefix(xs.size());
  typename F::rep acc = F::one;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    lsa::require(xs[i] != F::zero, "batch_inv: zero element");
    prefix[i] = acc;
    acc = F::mul(acc, xs[i]);
  }
  typename F::rep inv_acc = F::inv(acc);
  for (std::size_t i = xs.size(); i-- > 0;) {
    const typename F::rep inv_i = F::mul(inv_acc, prefix[i]);
    inv_acc = F::mul(inv_acc, xs[i]);
    xs[i] = inv_i;
  }
}

}  // namespace lsa::field
