// The Goldilocks field F_p with p = 2^64 - 2^32 + 1.
//
// Why a third field: the paper's complexity analysis (§5.2, Table 5) counts
// the server's one-shot decode as O(U log U) operations — the cost of *fast*
// polynomial interpolation. Fast interpolation needs fast polynomial
// multiplication, which needs a number-theoretic transform (NTT), which needs
// a field whose multiplicative group has large 2-adic structure. Neither of
// the paper's moduli qualifies (q - 1 has 2-adicity 1 for both 2^32 - 5 and
// 2^61 - 1), so we add the standard NTT-friendly 64-bit prime:
//
//     p - 1 = 2^32 * (2^32 - 1)   =>   2-adicity 32.
//
// The field also admits a branch-light reduction because
//     2^64 = 2^32 - 1  (mod p)    and    2^96 = -1  (mod p),
// so a 128-bit product a*2^96 + b*2^64 + c reduces as c + b*(2^32-1) - a
// with two conditional fix-ups — no 128-bit division. This class mirrors the
// static-policy interface of field::PrimeField exactly (drop-in for every
// templated kernel) and adds the NTT hooks `two_adicity` / `omega(k)`.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace lsa::field {

class Goldilocks {
 public:
  using rep = std::uint64_t;

  static constexpr std::uint64_t modulus = 0xFFFFFFFF00000001ull;
  static constexpr rep zero = 0;
  static constexpr rep one = 1;
  static constexpr std::size_t element_bytes = sizeof(rep);

  /// nu_2(p - 1): the group F_p^* contains a cyclic subgroup of order 2^32.
  static constexpr unsigned two_adicity = 32;

  // add/sub are written in mask/select form rather than with if-statements:
  // the carry tests depend on the *data*, and on random field elements a
  // branchy encoding mispredicts ~50% of the time — measurably slowing
  // every accumulation chain (the decode matvecs lost 2x to exactly this).
  // Same values, branch-free code.
  [[nodiscard]] static constexpr rep add(rep a, rep b) {
    std::uint64_t s = a + b;
    // overflowed 2^64: +2^64 == +(2^32 - 1) mod p
    s += (0ull - static_cast<std::uint64_t>(s < a)) & kEpsilon;
    const std::uint64_t t = s - modulus;
    return s >= modulus ? t : s;
  }

  [[nodiscard]] static constexpr rep sub(rep a, rep b) {
    std::uint64_t r = a - b;
    // borrowed 2^64: -2^64 == -(2^32 - 1) mod p
    r -= (0ull - static_cast<std::uint64_t>(a < b)) & kEpsilon;
    return r;
  }

  [[nodiscard]] static constexpr rep neg(rep a) {
    return a == 0 ? 0 : modulus - a;
  }

  [[nodiscard]] static constexpr rep mul(rep a, rep b) {
    const unsigned __int128 p =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    return reduce128(static_cast<std::uint64_t>(p >> 64),
                     static_cast<std::uint64_t>(p));
  }

  static constexpr bool has_shoup = true;

  /// Shoup precomputation for a fixed operand s: floor(s * 2^64 / p).
  [[nodiscard]] static constexpr rep shoup_precompute(rep s) {
    return static_cast<rep>((static_cast<unsigned __int128>(s) << 64) /
                            modulus);
  }

  /// Precomputed-operand product a * s with s_pre = shoup_precompute(s).
  /// qhat = hi64(s_pre * a) is floor(s*a/p) or one less, so the true
  /// remainder r = s*a - qhat*p lies in [0, 2p). Because p > 2^63 the
  /// remainder needs 65 bits: expand qhat*p = (qhat << 64) - qhat*eps
  /// with qhat*eps = (qhat << 32) - qhat (no extra multiply), so
  /// r = s*a + qhat*eps - (qhat << 64) computes with one 128-bit add, and
  /// the carry bit selects the 2^64 == eps (mod p) folding. When it is
  /// set, r - 2^64 < 2p - 2^64 = 2^64 - 2^33 + 2, so adding eps neither
  /// wraps 2^64 nor reaches p. Bit-identical to mul; two widening
  /// multiplies total against mul's widening multiply + reduce multiply.
  [[nodiscard]] static constexpr rep mul_shoup(rep a, rep s, rep s_pre) {
    const std::uint64_t qhat = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(s_pre) * a) >> 64);
    const unsigned __int128 qeps =
        (static_cast<unsigned __int128>(qhat) << 32) - qhat;
    const unsigned __int128 r128 =
        static_cast<unsigned __int128>(s) * a + qeps -
        (static_cast<unsigned __int128>(qhat) << 64);
    std::uint64_t lo = static_cast<std::uint64_t>(r128);
    lo += (0ull - static_cast<std::uint64_t>(r128 >> 64)) & kEpsilon;
    const std::uint64_t t = lo - modulus;
    return lo >= modulus ? t : lo;
  }

  /// Reference product via generic 128-bit `%` — what the branch-light
  /// reduce128 path is tested against (tests/barrett_test.cpp).
  [[nodiscard]] static constexpr rep mul_reference(rep a, rep b) {
    const unsigned __int128 p =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    return static_cast<rep>(p % modulus);
  }

  /// a^e via binary exponentiation. pow(0, 0) == 1 by convention.
  [[nodiscard]] static constexpr rep pow(rep a, std::uint64_t e) {
    rep base = a;
    rep result = one;
    while (e != 0) {
      if (e & 1u) result = mul(result, base);
      base = mul(base, base);
      e >>= 1;
    }
    return result;
  }

  /// Multiplicative inverse via Fermat's little theorem (p prime).
  /// Precondition: a != 0.
  [[nodiscard]] static rep inv(rep a) {
    lsa::require(a != 0, "Goldilocks::inv: zero has no inverse");
    return pow(a, modulus - 2);
  }

  /// Reduce an arbitrary 64-bit value into the field.
  [[nodiscard]] static constexpr rep from_u64(std::uint64_t v) {
    return v >= modulus ? v - modulus : v;
  }

  /// Embed a signed value: negatives map to p + v (two's-complement style).
  [[nodiscard]] static constexpr rep from_i64(std::int64_t v) {
    if (v >= 0) return static_cast<rep>(v);  // always < 2^63 < p
    const std::uint64_t mag = static_cast<std::uint64_t>(-(v + 1)) + 1;
    return modulus - mag;
  }

  /// Inverse of from_i64: reps in [0, p/2] are non-negative, the rest map
  /// to negatives.
  [[nodiscard]] static constexpr std::int64_t to_i64(rep a) {
    // branch-ok: boundary conversion helper, not a reduction kernel.
    if (a <= (modulus - 1) / 2) return static_cast<std::int64_t>(a);
    return -static_cast<std::int64_t>(modulus - a);
  }

  [[nodiscard]] static constexpr bool is_canonical(std::uint64_t v) {
    return v < modulus;
  }

  /// A generator of the full multiplicative group F_p^* (order p - 1).
  static constexpr rep multiplicative_generator = 7;

  /// A primitive 2^k-th root of unity, 0 <= k <= two_adicity.
  /// omega(k)^(2^k) == 1 and omega(k)^(2^(k-1)) == -1 for k >= 1.
  [[nodiscard]] static constexpr rep omega(unsigned k) {
    // g^((p-1)/2^32) generates the 2^32-torsion; square down to order 2^k.
    rep w = pow(multiplicative_generator, (modulus - 1) >> two_adicity);
    for (unsigned i = two_adicity; i > k; --i) w = mul(w, w);
    return w;
  }

 private:
  static constexpr std::uint64_t kEpsilon = 0xFFFFFFFFull;  // 2^32 - 1

  /// Reduces hi*2^64 + lo mod p using 2^64 == 2^32 - 1 and 2^96 == -1.
  [[nodiscard]] static constexpr rep reduce128(std::uint64_t hi,
                                               std::uint64_t lo) {
    const std::uint64_t hi_hi = hi >> 32;          // coefficient of 2^96
    const std::uint64_t hi_lo = hi & kEpsilon;     // coefficient of 2^64
    std::uint64_t r = lo - hi_hi;
    // borrow fix-up (mask form — see add/sub for why not a branch)
    r -= (0ull - static_cast<std::uint64_t>(lo < hi_hi)) & kEpsilon;
    const std::uint64_t t = hi_lo * kEpsilon;      // < 2^64, no overflow
    std::uint64_t s = r + t;
    // carry fix-up
    s += (0ull - static_cast<std::uint64_t>(s < r)) & kEpsilon;
    const std::uint64_t u = s - modulus;
    return s >= modulus ? u : s;
  }
};

static_assert(Goldilocks::modulus == (1ull << 32) * ((1ull << 32) - 1) + 1,
              "Goldilocks modulus must be 2^64 - 2^32 + 1");

}  // namespace lsa::field
