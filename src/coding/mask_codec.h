// T-private MDS mask encoding / one-shot aggregate decoding — the core
// primitive of LightSecAgg (paper §4.1, eq. (5), Appendix B).
//
// Construction. We realize the T-private MDS matrix W of eq. (5) in the
// Lagrange-coded-computing form the paper cites (Yu et al. 2019):
//
//   * Fix U distinct nonzero "slot" points beta_1..beta_U. The first U-T
//     slots carry the mask segments [z_i]_k, the last T slots carry the
//     uniformly random padding segments [n_i]_k.
//   * Fix N distinct "share" points alpha_1..alpha_N, disjoint from the betas.
//   * User i forms the unique polynomial f_i of degree < U with
//     f_i(beta_k) = segment k, and sends [~z_i]_j = f_i(alpha_j) to user j.
//
// The induced U×N matrix W[k][j] = l_k(alpha_j) (Lagrange basis over the
// betas) is MDS: any U columns correspond to U evaluations of a degree-<U
// polynomial, an invertible relation. It is T-private: the bottom T rows
// evaluated at any T share points factor as diag · Cauchy · diag with all
// factors invertible (tests/coding/mask_codec_test.cpp checks both properties
// exhaustively for small parameters).
//
// One-shot decoding. Because all users share W, aggregated shares
// sum_{i in U1} f_i(alpha_j) are evaluations of the aggregate polynomial
// g = sum_{i in U1} f_i. From any U of them the server interpolates g and
// reads the aggregate mask segments off g(beta_1..beta_{U-T}) — one shot,
// independent of how many users dropped.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "coding/aggregate_decode.h"
#include "coding/error_correction.h"
#include "coding/lagrange.h"
#include "common/error.h"
#include "common/rng.h"
#include "field/field_vec.h"
#include "field/random_field.h"

namespace lsa::coding {

template <class F>
class MaskCodec {
 public:
  using rep = typename F::rep;

  /// N users, target U surviving users, privacy T, mask length d.
  /// Requires U > T >= 0, U <= N, and N + U < q.
  MaskCodec(std::size_t num_users, std::size_t target_survivors,
            std::size_t privacy, std::size_t mask_len)
      : n_(num_users), u_(target_survivors), t_(privacy), d_(mask_len) {
    lsa::require<lsa::CodingError>(u_ > t_, "mask codec: need U > T");
    lsa::require<lsa::CodingError>(u_ <= n_, "mask codec: need U <= N");
    lsa::require<lsa::CodingError>(d_ >= 1, "mask codec: empty mask");
    lsa::require<lsa::CodingError>(
        static_cast<std::uint64_t>(n_) + u_ + 1 < F::modulus,
        "mask codec: field too small for N + U points");
    seg_len_ = (d_ + (u_ - t_) - 1) / (u_ - t_);

    beta_.resize(u_);
    for (std::size_t k = 0; k < u_; ++k) beta_[k] = static_cast<rep>(k + 1);
    alpha_.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      alpha_[j] = static_cast<rep>(u_ + 1 + j);
    }

    // Encoding matrix W[k][j] = l_k(alpha_j), stored column-major so that
    // encoding share j streams one contiguous column.
    w_cols_.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      w_cols_[j] = lagrange_weights_at<F>(std::span<const rep>(beta_),
                                          alpha_[j]);
    }
  }

  [[nodiscard]] std::size_t num_users() const { return n_; }
  [[nodiscard]] std::size_t target_survivors() const { return u_; }
  [[nodiscard]] std::size_t privacy() const { return t_; }
  [[nodiscard]] std::size_t mask_len() const { return d_; }
  /// Segment length L = ceil(d / (U - T)); every share has this length.
  [[nodiscard]] std::size_t segment_len() const { return seg_len_; }
  [[nodiscard]] std::size_t num_data_segments() const { return u_ - t_; }

  /// Column j of the encoding matrix (exposed for tests / analysis).
  [[nodiscard]] std::span<const rep> encoding_column(std::size_t j) const {
    return w_cols_.at(j);
  }

  /// Splits mask z into U-T segments (zero-padded) plus T noise segments
  /// drawn from noise_rng, and encodes all N shares.
  /// Returns shares[j] = [~z]_j of length segment_len().
  template <lsa::field::BitSource G>
  [[nodiscard]] std::vector<std::vector<rep>> encode(
      std::span<const rep> mask, G& noise_rng) const {
    auto segments = make_segments(mask, noise_rng);
    return encode_segments(segments);
  }

  /// Deterministic variant used by tests: caller supplies the noise segments.
  [[nodiscard]] std::vector<std::vector<rep>> encode_with_noise(
      std::span<const rep> mask,
      const std::vector<std::vector<rep>>& noise_segments) const {
    lsa::require<lsa::CodingError>(noise_segments.size() == t_,
                                   "encode: need exactly T noise segments");
    std::vector<std::vector<rep>> segments = split_mask(mask);
    for (const auto& ns : noise_segments) {
      lsa::require<lsa::CodingError>(ns.size() == seg_len_,
                                     "encode: bad noise segment length");
      segments.push_back(ns);
    }
    return encode_segments(segments);
  }

  /// Decodes twice from disjoint-as-possible share subsets and cross-checks
  /// — an error-*detecting* decode. With r = (#shares - U) redundant
  /// responses, any set of tampered shares that is not carefully coordinated
  /// across both subsets yields disagreeing decodes (MDS distance). This is
  /// the first step toward the Byzantine-robust extension the paper lists
  /// as future work (§8): detect, don't yet correct.
  /// Requires at least U + 1 shares; throws CodingError on mismatch.
  [[nodiscard]] std::vector<rep> decode_aggregate_verified(
      std::span<const std::size_t> share_owners,
      std::span<const std::vector<rep>> agg_shares) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() >= u_ + 1,
        "verified decode: need at least U+1 shares for redundancy");
    // Subset A: first U shares. Subset B: last U shares (maximally shifted).
    const std::size_t shift = share_owners.size() - u_;
    std::vector<std::size_t> owners_b(share_owners.begin() + shift,
                                      share_owners.end());
    std::vector<std::vector<rep>> shares_b(agg_shares.begin() + shift,
                                           agg_shares.end());
    auto a = decode_aggregate(share_owners.first(u_),
                              agg_shares.first(u_));
    auto b = decode_aggregate(owners_b, shares_b);
    lsa::require<lsa::CodingError>(
        a == b,
        "verified decode: redundant decodes disagree — share tampering or "
        "corruption detected");
    return a;
  }

  struct CorrectedAggregate {
    std::vector<rep> aggregate;
    /// User ids whose aggregated shares were corrupted and discarded.
    std::vector<std::size_t> corrupted_owners;
  };

  /// Error-*correcting* decode (the full upgrade of the §8 first step):
  /// with r = #responses - U redundant shares, locates and discards up to
  /// floor(r/2) corrupted responses and still recovers the exact aggregate.
  ///
  /// Location runs Berlekamp-Welch once on a random linear combination of
  /// the seg_len coordinates (corruption is per-responder, so one locator
  /// pass suffices; a corrupted share escaping the random probe has
  /// probability <= #responses/q, about 2^-28 at Fp32 — vanishing, and the
  /// paper's honest-but-curious baseline assumes zero corruption anyway).
  /// Throws CodingError when more shares are corrupted than the redundancy
  /// can fix (detected via the BW consistency check, never mis-decoded).
  [[nodiscard]] CorrectedAggregate decode_aggregate_corrected(
      std::span<const std::size_t> share_owners,
      std::span<const std::vector<rep>> agg_shares,
      std::uint64_t probe_seed = 0x5eedu) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() == agg_shares.size(),
        "corrected decode: owners/shares size mismatch");
    lsa::require<lsa::ProtocolError>(
        share_owners.size() >= u_,
        "corrected decode: fewer than U responses");
    const std::size_t n_resp = share_owners.size();
    const std::size_t budget = (n_resp - u_) / 2;

    std::vector<rep> xs(n_resp), ys(n_resp);
    lsa::common::Xoshiro256ss rng(probe_seed);
    const auto probe = lsa::field::uniform_vector<F>(seg_len_, rng);
    for (std::size_t j = 0; j < n_resp; ++j) {
      lsa::require<lsa::ProtocolError>(share_owners[j] < n_,
                                       "corrected decode: owner range");
      lsa::require<lsa::ProtocolError>(agg_shares[j].size() == seg_len_,
                                       "corrected decode: share length");
      xs[j] = alpha_[share_owners[j]];
      ys[j] = lsa::field::dot<F>(std::span<const rep>(probe),
                                 std::span<const rep>(agg_shares[j]));
    }

    const auto bw = berlekamp_welch<F>(std::span<const rep>(xs),
                                       std::span<const rep>(ys), u_, budget);
    lsa::require<lsa::CodingError>(
        bw.has_value(),
        "corrected decode: more corrupted shares than the redundancy can "
        "fix — aborting rather than mis-decoding");

    CorrectedAggregate out;
    std::vector<std::size_t> clean_owners;
    std::vector<std::vector<rep>> clean_shares;
    std::size_t next_err = 0;
    for (std::size_t j = 0; j < n_resp; ++j) {
      if (next_err < bw->error_positions.size() &&
          bw->error_positions[next_err] == j) {
        out.corrupted_owners.push_back(share_owners[j]);
        ++next_err;
        continue;
      }
      clean_owners.push_back(share_owners[j]);
      clean_shares.push_back(agg_shares[j]);
    }
    out.aggregate = decode_aggregate(clean_owners, clean_shares);
    return out;
  }

  /// One-shot aggregate decode. share_owners[j] is the 0-based user id whose
  /// aggregated share agg_shares[j] = sum_{i in U1} [~z_i]_{owner} is given.
  /// Needs at least U distinct owners; uses the first U. Returns the
  /// aggregate mask sum_{i in U1} z_i (length d). The decode kernel is
  /// selectable (coding/aggregate_decode.h); all strategies are bit-exact,
  /// kBarycentric is the practical default, kNtt realizes the paper's
  /// O(U log U) complexity class on NTT-capable fields.
  [[nodiscard]] std::vector<rep> decode_aggregate(
      std::span<const std::size_t> share_owners,
      std::span<const std::vector<rep>> agg_shares,
      DecodeStrategy strategy = DecodeStrategy::kBarycentric) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() == agg_shares.size(),
        "decode: owners/shares size mismatch");
    lsa::require<lsa::ProtocolError>(
        share_owners.size() >= u_,
        "decode: fewer than U aggregated shares — unrecoverable round");

    std::vector<rep> xs(u_);
    for (std::size_t j = 0; j < u_; ++j) {
      lsa::require<lsa::ProtocolError>(share_owners[j] < n_,
                                       "decode: share owner out of range");
      xs[j] = alpha_[share_owners[j]];
      lsa::require<lsa::ProtocolError>(agg_shares[j].size() == seg_len_,
                                       "decode: bad share length");
    }
    for (std::size_t a = 0; a < u_; ++a) {
      for (std::size_t b = a + 1; b < u_; ++b) {
        lsa::require<lsa::ProtocolError>(xs[a] != xs[b],
                                         "decode: duplicate share owners");
      }
    }

    // Evaluate the aggregate polynomial g at the U-T data slots.
    std::span<const rep> data_betas(beta_.data(), u_ - t_);
    auto out = decode_eval<F>(strategy, std::span<const rep>(xs), data_betas,
                              agg_shares.first(u_), seg_len_);
    out.resize(d_);  // drop zero padding
    return out;
  }

 private:
  [[nodiscard]] std::vector<std::vector<rep>> split_mask(
      std::span<const rep> mask) const {
    lsa::require<lsa::CodingError>(mask.size() == d_,
                                   "encode: mask length != d");
    std::vector<std::vector<rep>> segments;
    segments.reserve(u_);
    for (std::size_t k = 0; k < u_ - t_; ++k) {
      std::vector<rep> seg(seg_len_, F::zero);
      const std::size_t off = k * seg_len_;
      const std::size_t n = std::min(seg_len_, d_ - std::min(d_, off));
      for (std::size_t l = 0; l < n; ++l) seg[l] = mask[off + l];
      segments.push_back(std::move(seg));
    }
    return segments;
  }

  template <lsa::field::BitSource G>
  [[nodiscard]] std::vector<std::vector<rep>> make_segments(
      std::span<const rep> mask, G& noise_rng) const {
    auto segments = split_mask(mask);
    for (std::size_t k = 0; k < t_; ++k) {
      segments.push_back(
          lsa::field::uniform_vector<F>(seg_len_, noise_rng));
    }
    return segments;
  }

  [[nodiscard]] std::vector<std::vector<rep>> encode_segments(
      const std::vector<std::vector<rep>>& segments) const {
    std::vector<std::vector<rep>> shares(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      shares[j].assign(seg_len_, F::zero);
      std::span<rep> dst(shares[j]);
      const auto& col = w_cols_[j];
      for (std::size_t k = 0; k < u_; ++k) {
        lsa::field::axpy_inplace<F>(dst, col[k],
                                    std::span<const rep>(segments[k]));
      }
    }
    return shares;
  }

  std::size_t n_;
  std::size_t u_;
  std::size_t t_;
  std::size_t d_;
  std::size_t seg_len_ = 0;
  std::vector<rep> beta_;
  std::vector<rep> alpha_;
  std::vector<std::vector<rep>> w_cols_;
};

}  // namespace lsa::coding
