// T-private MDS mask encoding / one-shot aggregate decoding — the core
// primitive of LightSecAgg (paper §4.1, eq. (5), Appendix B).
//
// Construction. We realize the T-private MDS matrix W of eq. (5) in the
// Lagrange-coded-computing form the paper cites (Yu et al. 2019):
//
//   * Fix U distinct nonzero "slot" points beta_1..beta_U. The first U-T
//     slots carry the mask segments [z_i]_k, the last T slots carry the
//     uniformly random padding segments [n_i]_k.
//   * Fix N distinct "share" points alpha_1..alpha_N, disjoint from the betas.
//   * User i forms the unique polynomial f_i of degree < U with
//     f_i(beta_k) = segment k, and sends [~z_i]_j = f_i(alpha_j) to user j.
//
// The induced U×N matrix W[k][j] = l_k(alpha_j) (Lagrange basis over the
// betas) is MDS: any U columns correspond to U evaluations of a degree-<U
// polynomial, an invertible relation. It is T-private: the bottom T rows
// evaluated at any T share points factor as diag · Cauchy · diag with all
// factors invertible (tests/coding_test.cpp checks both properties
// exhaustively for small parameters).
//
// One-shot decoding. Because all users share W, aggregated shares
// sum_{i in U1} f_i(alpha_j) are evaluations of the aggregate polynomial
// g = sum_{i in U1} f_i. From any U of them the server interpolates g and
// reads the aggregate mask segments off g(beta_1..beta_{U-T}) — one shot,
// independent of how many users dropped.
//
// Execution model. All hot paths run on flat arenas (field/flat_matrix.h)
// and the fused blocked kernels of field/field_vec.h:
//
//   * encode_into writes one user's N shares into caller-chosen rows of a
//     shared arena (disjoint rows -> safe to run one user per pool lane);
//   * encode_all batches a whole round: arena row j*N + i holds [~z_i]_j,
//     so holder j's shares form one contiguous row block for the
//     aggregation pass;
//   * decode_aggregate accepts share *row views* (flat arenas, nested
//     vectors, wire buffers) and fans the coordinate range out over a
//     sys::ExecPolicy.
//
// Decoding is plan-based: the codec keeps a per-instance LRU cache of
// coding::BatchedDecodePlan keyed on the SORTED survivor point set (hash
// precomputed once per lookup), so repeated rounds with the same survivors
// pay the subproduct-tree / twiddle / weight-table setup once and stream
// at marginal cost (the codec lives for a session, making this a
// per-session cache). Under small survivor churn the cache patches instead
// of rebuilding: a requested set differing from a cached plan's by at most
// kMaxPatchChurn points goes through BatchedDecodePlan::patched_from —
// only the dirtied root-to-leaf tree paths and the barycentric weight
// updates are recomputed, bit-identical to a fresh build. The default
// strategy kAuto picks the GEMM or the batched fast path from (U, U-T,
// seg_len) via the measured crossover; last_decode_stats() reports what
// ran, the setup-vs-stream split, and the cumulative full-build / patch /
// eviction counters.
//
// The legacy nested-vector APIs remain as thin adapters over the same
// kernels, and every path is bit-identical to every other
// (tests/parallel_codec_test.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "coding/aggregate_decode.h"
#include "coding/decode_plan.h"
#include "coding/error_correction.h"
#include "coding/lagrange.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/random_field.h"
#include "sys/exec_policy.h"

namespace lsa::coding {

template <class F>
class MaskCodec {
 public:
  using rep = typename F::rep;
  using Matrix = lsa::field::FlatMatrix<F>;

  /// N users, target U surviving users, privacy T, mask length d.
  /// Requires U > T >= 0, U <= N, and N + U < q.
  MaskCodec(std::size_t num_users, std::size_t target_survivors,
            std::size_t privacy, std::size_t mask_len)
      : n_(num_users), u_(target_survivors), t_(privacy), d_(mask_len) {
    lsa::require<lsa::CodingError>(u_ > t_, "mask codec: need U > T");
    lsa::require<lsa::CodingError>(u_ <= n_, "mask codec: need U <= N");
    lsa::require<lsa::CodingError>(d_ >= 1, "mask codec: empty mask");
    lsa::require<lsa::CodingError>(
        static_cast<std::uint64_t>(n_) + u_ + 1 < F::modulus,
        "mask codec: field too small for N + U points");
    seg_len_ = (d_ + (u_ - t_) - 1) / (u_ - t_);

    beta_.resize(u_);
    for (std::size_t k = 0; k < u_; ++k) beta_[k] = static_cast<rep>(k + 1);
    alpha_.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      alpha_[j] = static_cast<rep>(u_ + 1 + j);
    }

    // Encoding matrix W[k][j] = l_k(alpha_j), stored with one row per
    // share index j (i.e. column-major in W) so encoding share j streams
    // one contiguous coefficient row.
    w_cols_.reset(n_, u_);
    for (std::size_t j = 0; j < n_; ++j) {
      const auto col = lagrange_weights_at<F>(std::span<const rep>(beta_),
                                              alpha_[j]);
      std::copy(col.begin(), col.end(), w_cols_.row(j).begin());
    }
  }

  [[nodiscard]] std::size_t num_users() const { return n_; }
  [[nodiscard]] std::size_t target_survivors() const { return u_; }
  [[nodiscard]] std::size_t privacy() const { return t_; }
  [[nodiscard]] std::size_t mask_len() const { return d_; }
  /// Segment length L = ceil(d / (U - T)); every share has this length.
  [[nodiscard]] std::size_t segment_len() const { return seg_len_; }
  [[nodiscard]] std::size_t num_data_segments() const { return u_ - t_; }

  /// Column j of the encoding matrix (exposed for tests / analysis).
  [[nodiscard]] std::span<const rep> encoding_column(std::size_t j) const {
    return w_cols_.row(j);
  }

  // ---------------------------------------------------------------- encode

  /// Encodes one user's mask into rows {base + j*stride, j = 0..N-1} of a
  /// shared arena: out.row(base + j*stride) = [~z]_j. The U-T data
  /// segments come from `mask` (zero-padded), the T noise segments are
  /// drawn from noise_rng. Rows written are disjoint per (base, stride)
  /// choice, so concurrent callers encoding different users into one
  /// arena need no synchronization.
  template <lsa::field::BitSource G>
  void encode_into(std::span<const rep> mask, G& noise_rng, Matrix& out,
                   std::size_t base = 0, std::size_t stride = 1,
                   std::size_t chunk = 0) const {
    Matrix segments(u_, seg_len_);
    fill_data_segments(mask, segments);
    for (std::size_t k = u_ - t_; k < u_; ++k) {
      lsa::field::fill_uniform<F>(segments.row(k), noise_rng);
    }
    encode_segments_into(segments, out, base, stride, chunk);
  }

  /// Deterministic variant: caller supplies the T noise segments as the
  /// rows of `noise`.
  void encode_with_noise_into(std::span<const rep> mask, const Matrix& noise,
                              Matrix& out, std::size_t base = 0,
                              std::size_t stride = 1,
                              std::size_t chunk = 0) const {
    lsa::require<lsa::CodingError>(
        noise.rows() == t_ && (t_ == 0 || noise.cols() == seg_len_),
        "encode: need exactly T noise segments of segment_len");
    Matrix segments(u_, seg_len_);
    fill_data_segments(mask, segments);
    for (std::size_t k = 0; k < t_; ++k) {
      const auto src = noise.row(k);
      std::copy(src.begin(), src.end(), segments.row(u_ - t_ + k).begin());
    }
    encode_segments_into(segments, out, base, stride, chunk);
  }

  /// Batch-encodes a whole round: masks.row(i) = z_i for all N users.
  /// Returns the share arena with row j*N + i = [~z_i]_j — holder j's
  /// shares are the contiguous row block [j*N, (j+1)*N). make_noise_rng(i)
  /// must return the (value-typed) noise bit source for user i; users fan
  /// out across pol.pool.
  template <class RngFactory>
  [[nodiscard]] Matrix encode_all(const Matrix& masks,
                                  RngFactory&& make_noise_rng,
                                  const lsa::sys::ExecPolicy& pol = {}) const {
    lsa::require<lsa::CodingError>(masks.rows() == n_ && masks.cols() == d_,
                                   "encode_all: masks must be N x d");
    Matrix arena(n_ * n_, seg_len_);
    pol.run(n_, [&](std::size_t i) {
      auto rng = make_noise_rng(i);
      encode_into(masks.row(i), rng, arena, /*base=*/i, /*stride=*/n_,
                  pol.chunk_reps);
    });
    return arena;
  }

  /// Legacy nested-vector encode (one user). Same kernels, same bits.
  template <lsa::field::BitSource G>
  [[nodiscard]] std::vector<std::vector<rep>> encode(
      std::span<const rep> mask, G& noise_rng) const {
    Matrix out(n_, seg_len_);
    encode_into(mask, noise_rng, out);
    return rows_to_nested(out);
  }

  /// Legacy deterministic variant used by tests: caller supplies the noise
  /// segments as vectors.
  [[nodiscard]] std::vector<std::vector<rep>> encode_with_noise(
      std::span<const rep> mask,
      const std::vector<std::vector<rep>>& noise_segments) const {
    lsa::require<lsa::CodingError>(noise_segments.size() == t_,
                                   "encode: need exactly T noise segments");
    Matrix noise(t_, seg_len_);
    for (std::size_t k = 0; k < t_; ++k) {
      lsa::require<lsa::CodingError>(noise_segments[k].size() == seg_len_,
                                     "encode: bad noise segment length");
      std::copy(noise_segments[k].begin(), noise_segments[k].end(),
                noise.row(k).begin());
    }
    Matrix out(n_, seg_len_);
    encode_with_noise_into(mask, noise, out);
    return rows_to_nested(out);
  }

  // ---------------------------------------------------------------- decode

  /// What the last decode on this codec actually did: the requested and
  /// resolved strategy, whether the per-session plan cache already held
  /// the survivor set's plan (or patched a small-churn neighbor), and the
  /// setup-vs-streaming time split (the amortization the cache buys). The
  /// trailing counters are cumulative over the codec's lifetime — the
  /// plan-maintenance telemetry sessions fold into their stats.
  struct DecodeStats {
    DecodeStrategy requested = DecodeStrategy::kAuto;
    DecodeStrategy used = DecodeStrategy::kAuto;
    bool plan_reused = false;
    bool plan_patched = false;      ///< this decode patched a cached plan
    std::size_t patched_nodes = 0;  ///< tree nodes the patch re-multiplied
    double setup_s = 0.0;   ///< plan setup/patch paid by this decode
    double stream_s = 0.0;  ///< coordinate streaming time
    std::uint64_t full_builds = 0;          ///< cumulative from-scratch plans
    std::uint64_t incremental_patches = 0;  ///< cumulative patched plans
    std::uint64_t evictions = 0;            ///< cumulative LRU evictions
  };

  [[nodiscard]] DecodeStats last_decode_stats() const {
    lsa::sync::MutexLock lk(plans_->mu);
    return plans_->last_stats;
  }

  /// Plan-cache bound: cached plans never outnumber the distinct survivor
  /// sets a session realistically sees; the cap only bounds adversarial
  /// churn (least-recently-used plans evict first).
  static constexpr std::size_t kMaxCachedPlans = 32;

  /// Patch-vs-rebuild crossover: a requested survivor set differing from a
  /// cached plan's by at most this many points is patched
  /// (BatchedDecodePlan::patched_from) instead of rebuilt. Patch cost is
  /// ~linear in churn while a rebuild is flat, so the measured
  /// patch-vs-rebuild speedup (bench/ablation_decode_complexity,
  /// plan-maintenance part) tracks ~20/churn uniformly across
  /// U in [64, 1024]: ~20x at churn 1, ~10x at 2, ~5.5x at 4, ~2.7-3x at
  /// 8, ~1.9x at 12, ~1.45x at 16, break-even near churn ~20. The bound
  /// sits at 8 — the largest churn that keeps a comfortable >= 2.7x
  /// margin at every U (floored in bench/decode_tolerance.json); beyond
  /// it the shrinking win stops covering cache-pollution risk from
  /// heavily-diverged bases.
  static constexpr std::size_t kMaxPatchChurn = 8;

  /// One-shot aggregate decode over share *row views*: share_owners[j] is
  /// the 0-based user id whose aggregated share rows[j] (seg_len reps) is
  /// given. Needs at least U distinct owners; uses the first U. Returns
  /// the aggregate mask sum_{i in U1} z_i (length d). The decode kernel is
  /// selectable (coding/decode_strategy.h); all strategies are bit-exact.
  /// kAuto (the default) picks the GEMM or the batched fast path from the
  /// measured crossover; plan-based strategies hit this codec's plan cache
  /// keyed on the survivor set.
  [[nodiscard]] std::vector<rep> decode_aggregate_rows(
      std::span<const std::size_t> share_owners,
      std::span<const rep* const> rows,
      const lsa::sys::ExecPolicy& pol = {},
      DecodeStrategy strategy = DecodeStrategy::kAuto) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() == rows.size(),
        "decode: owners/shares size mismatch");
    lsa::require<lsa::ProtocolError>(
        share_owners.size() >= u_,
        "decode: fewer than U aggregated shares — unrecoverable round");

    std::vector<rep> xs(u_);
    for (std::size_t j = 0; j < u_; ++j) {
      lsa::require<lsa::ProtocolError>(share_owners[j] < n_,
                                       "decode: share owner out of range");
      xs[j] = alpha_[share_owners[j]];
    }
    for (std::size_t a = 0; a < u_; ++a) {
      for (std::size_t b = a + 1; b < u_; ++b) {
        lsa::require<lsa::ProtocolError>(xs[a] != xs[b],
                                         "decode: duplicate share owners");
      }
    }

    // Evaluate the aggregate polynomial g at the U-T data slots.
    std::span<const rep> data_betas(beta_.data(), u_ - t_);
    DecodeStats stats;
    stats.requested = strategy;
    std::vector<rep> out;
    lsa::common::Stopwatch sw;
    if (strategy == DecodeStrategy::kLagrange ||
        strategy == DecodeStrategy::kNtt) {
      // Reference kernels: never plan-cached.
      stats.used = strategy;
      out = decode_eval<F>(strategy, std::span<const rep>(xs), data_betas,
                           rows.first(u_), seg_len_, pol);
      stats.stream_s = sw.elapsed_sec();
    } else {
      // Canonical cache key: the sorted survivor points (the decode result
      // is order-independent — the interpolant is unique and every kernel
      // returns canonical field elements). order[a] = incoming row index
      // of the a-th smallest point.
      std::vector<std::uint32_t> order(u_);
      for (std::size_t j = 0; j < u_; ++j) {
        order[j] = static_cast<std::uint32_t>(j);
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return xs[a] < xs[b];
                });
      std::vector<rep> sorted_xs(u_);
      for (std::size_t a = 0; a < u_; ++a) sorted_xs[a] = xs[order[a]];
      auto found = plan_for(std::move(sorted_xs));
      stats.plan_reused = found.reused;
      stats.plan_patched = found.patched;
      stats.patched_nodes = found.patched_nodes;
      // Rows in the plan's own point order: patched plans keep their
      // base's order, fresh plans the sorted key (empty perm = identity).
      std::vector<const rep*> plan_rows(u_);
      for (std::size_t j = 0; j < u_; ++j) {
        const std::size_t s = found.perm.empty() ? j : found.perm[j];
        plan_rows[j] = rows[order[s]];
      }
      stats.used = found.plan->resolve(strategy, seg_len_);
      const double setup_before = plan_setup_seconds(*found.plan);
      out = found.plan->run(stats.used,
                            std::span<const rep* const>(plan_rows), seg_len_,
                            pol);
      stats.setup_s =
          found.patch_s + plan_setup_seconds(*found.plan) - setup_before;
      stats.stream_s = sw.elapsed_sec() - stats.setup_s;
    }
    {
      lsa::sync::MutexLock lk(plans_->mu);
      stats.full_builds = plans_->full_builds;
      stats.incremental_patches = plans_->incremental_patches;
      stats.evictions = plans_->evictions;
      plans_->last_stats = stats;
    }
    out.resize(d_);  // drop zero padding
    return out;
  }

  /// Flat-arena decode: agg_shares.row(j) is owner share_owners[j]'s
  /// aggregated share.
  [[nodiscard]] std::vector<rep> decode_aggregate(
      std::span<const std::size_t> share_owners, const Matrix& agg_shares,
      const lsa::sys::ExecPolicy& pol = {},
      DecodeStrategy strategy = DecodeStrategy::kAuto) const {
    lsa::require<lsa::ProtocolError>(
        agg_shares.rows() == 0 || agg_shares.cols() == seg_len_,
        "decode: bad share length");
    const auto rows = agg_shares.row_ptrs();
    return decode_aggregate_rows(share_owners,
                                 std::span<const rep* const>(rows), pol,
                                 strategy);
  }

  /// Legacy nested-vector decode.
  [[nodiscard]] std::vector<rep> decode_aggregate(
      std::span<const std::size_t> share_owners,
      std::span<const std::vector<rep>> agg_shares,
      DecodeStrategy strategy = DecodeStrategy::kAuto) const {
    check_nested_lengths(agg_shares);
    const auto rows = share_row_ptrs<F>(agg_shares);
    return decode_aggregate_rows(share_owners,
                                 std::span<const rep* const>(rows), {},
                                 strategy);
  }

  /// Decodes twice from disjoint-as-possible share subsets and cross-checks
  /// — an error-*detecting* decode. With r = (#shares - U) redundant
  /// responses, any set of tampered shares that is not carefully coordinated
  /// across both subsets yields disagreeing decodes (MDS distance). This is
  /// the first step toward the Byzantine-robust extension the paper lists
  /// as future work (§8): detect, don't yet correct.
  /// Requires at least U + 1 shares; throws CodingError on mismatch.
  [[nodiscard]] std::vector<rep> decode_aggregate_verified_rows(
      std::span<const std::size_t> share_owners,
      std::span<const rep* const> rows,
      const lsa::sys::ExecPolicy& pol = {}) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() == rows.size(),
        "decode: owners/shares size mismatch");
    lsa::require<lsa::ProtocolError>(
        share_owners.size() >= u_ + 1,
        "verified decode: need at least U+1 shares for redundancy");
    // Subset A: first U shares. Subset B: last U shares (maximally shifted).
    const std::size_t shift = share_owners.size() - u_;
    auto a = decode_aggregate_rows(share_owners.first(u_), rows.first(u_),
                                   pol);
    auto b = decode_aggregate_rows(share_owners.subspan(shift),
                                   rows.subspan(shift), pol);
    lsa::require<lsa::CodingError>(
        a == b,
        "verified decode: redundant decodes disagree — share tampering or "
        "corruption detected");
    return a;
  }

  [[nodiscard]] std::vector<rep> decode_aggregate_verified(
      std::span<const std::size_t> share_owners, const Matrix& agg_shares,
      const lsa::sys::ExecPolicy& pol = {}) const {
    lsa::require<lsa::ProtocolError>(
        agg_shares.rows() == 0 || agg_shares.cols() == seg_len_,
        "decode: bad share length");
    const auto rows = agg_shares.row_ptrs();
    return decode_aggregate_verified_rows(
        share_owners, std::span<const rep* const>(rows), pol);
  }

  /// Legacy nested-vector verified decode.
  [[nodiscard]] std::vector<rep> decode_aggregate_verified(
      std::span<const std::size_t> share_owners,
      std::span<const std::vector<rep>> agg_shares) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() == agg_shares.size(),
        "decode: owners/shares size mismatch");
    check_nested_lengths(agg_shares);
    const auto rows = share_row_ptrs<F>(agg_shares);
    return decode_aggregate_verified_rows(
        share_owners, std::span<const rep* const>(rows));
  }

  struct CorrectedAggregate {
    std::vector<rep> aggregate;
    /// User ids whose aggregated shares were corrupted and discarded.
    std::vector<std::size_t> corrupted_owners;
  };

  /// Error-*correcting* decode (the full upgrade of the §8 first step):
  /// with r = #responses - U redundant shares, locates and discards up to
  /// floor(r/2) corrupted responses and still recovers the exact aggregate.
  ///
  /// Location runs Berlekamp-Welch once on a random linear combination of
  /// the seg_len coordinates (corruption is per-responder, so one locator
  /// pass suffices; a corrupted share escaping the random probe has
  /// probability <= #responses/q, about 2^-28 at Fp32 — vanishing, and the
  /// paper's honest-but-curious baseline assumes zero corruption anyway).
  /// Throws CodingError when more shares are corrupted than the redundancy
  /// can fix (detected via the BW consistency check, never mis-decoded).
  [[nodiscard]] CorrectedAggregate decode_aggregate_corrected(
      std::span<const std::size_t> share_owners,
      std::span<const std::vector<rep>> agg_shares,
      std::uint64_t probe_seed = 0x5eedu) const {
    lsa::require<lsa::ProtocolError>(
        share_owners.size() == agg_shares.size(),
        "corrected decode: owners/shares size mismatch");
    lsa::require<lsa::ProtocolError>(
        share_owners.size() >= u_,
        "corrected decode: fewer than U responses");
    const std::size_t n_resp = share_owners.size();
    const std::size_t budget = (n_resp - u_) / 2;

    std::vector<rep> xs(n_resp), ys(n_resp);
    lsa::common::Xoshiro256ss rng(probe_seed);
    const auto probe = lsa::field::uniform_vector<F>(seg_len_, rng);
    for (std::size_t j = 0; j < n_resp; ++j) {
      lsa::require<lsa::ProtocolError>(share_owners[j] < n_,
                                       "corrected decode: owner range");
      lsa::require<lsa::ProtocolError>(agg_shares[j].size() == seg_len_,
                                       "corrected decode: share length");
      xs[j] = alpha_[share_owners[j]];
      ys[j] = lsa::field::dot<F>(std::span<const rep>(probe),
                                 std::span<const rep>(agg_shares[j]));
    }

    const auto bw = berlekamp_welch<F>(std::span<const rep>(xs),
                                       std::span<const rep>(ys), u_, budget);
    lsa::require<lsa::CodingError>(
        bw.has_value(),
        "corrected decode: more corrupted shares than the redundancy can "
        "fix — aborting rather than mis-decoding");

    CorrectedAggregate out;
    std::vector<std::size_t> clean_owners;
    std::vector<std::vector<rep>> clean_shares;
    std::size_t next_err = 0;
    for (std::size_t j = 0; j < n_resp; ++j) {
      if (next_err < bw->error_positions.size() &&
          bw->error_positions[next_err] == j) {
        out.corrupted_owners.push_back(share_owners[j]);
        ++next_err;
        continue;
      }
      clean_owners.push_back(share_owners[j]);
      clean_shares.push_back(agg_shares[j]);
    }
    out.aggregate = decode_aggregate(clean_owners, clean_shares);
    return out;
  }

 private:
  /// Rows [0, U-T) of `segments` <- mask split into seg_len pieces
  /// (zero-padded); rows [U-T, U) are left untouched for the caller.
  void fill_data_segments(std::span<const rep> mask, Matrix& segments) const {
    lsa::require<lsa::CodingError>(mask.size() == d_,
                                   "encode: mask length != d");
    for (std::size_t k = 0; k < u_ - t_; ++k) {
      auto seg = segments.row(k);
      const std::size_t off = k * seg_len_;
      const std::size_t n = std::min(seg_len_, d_ - std::min(d_, off));
      for (std::size_t l = 0; l < n; ++l) seg[l] = mask[off + l];
      for (std::size_t l = n; l < seg_len_; ++l) seg[l] = F::zero;
    }
  }

  /// Share j <- sum_k W[k][j] * segments.row(k), via the fused axpy kernel.
  void encode_segments_into(const Matrix& segments, Matrix& out,
                            std::size_t base, std::size_t stride,
                            std::size_t chunk) const {
    lsa::require<lsa::CodingError>(out.cols() == seg_len_,
                                   "encode: arena column width != seg_len");
    lsa::require<lsa::CodingError>(
        base + (n_ - 1) * stride < out.rows(),
        "encode: arena too small for N share rows");
    std::vector<const rep*> seg_rows(u_);
    for (std::size_t k = 0; k < u_; ++k) seg_rows[k] = segments.row_ptr(k);
    for (std::size_t j = 0; j < n_; ++j) {
      auto dst = out.row(base + j * stride);
      std::fill(dst.begin(), dst.end(), F::zero);
      lsa::field::axpy_accumulate_blocked<F>(
          dst, w_cols_.row(j), std::span<const rep* const>(seg_rows), chunk);
    }
  }

  [[nodiscard]] std::vector<std::vector<rep>> rows_to_nested(
      const Matrix& m) const {
    std::vector<std::vector<rep>> out(m.rows());
    for (std::size_t j = 0; j < m.rows(); ++j) out[j] = m.row_copy(j);
    return out;
  }

  void check_nested_lengths(std::span<const std::vector<rep>> shares) const {
    for (const auto& s : shares) {
      lsa::require<lsa::ProtocolError>(s.size() == seg_len_,
                                       "decode: bad share length");
    }
  }

  /// One cached plan. key_xs is the SORTED survivor point set with its
  /// hash precomputed at insert time — a lookup hashes the incoming key
  /// once and compares hashes before any vector comparison. perm maps
  /// plan-xs order to key order (plan->xs()[j] == key_xs[perm[j]]); empty
  /// means identity (fresh plans are built from the sorted key; patched
  /// plans inherit their base's order with replaced slots).
  struct CacheEntry {
    std::size_t hash = 0;
    std::vector<rep> key_xs;
    std::vector<std::uint32_t> perm;
    std::shared_ptr<BatchedDecodePlan<F>> plan;
  };

  /// Per-session decode-plan cache (front = most recently used; a small
  /// LRU bounded by kMaxCachedPlans). Held behind a shared_ptr so the
  /// codec stays copyable; copies share the cache, which is correct —
  /// they share the parameters that determine every plan.
  struct PlanCache {
    lsa::sync::Mutex mu;
    std::list<CacheEntry> entries LSA_GUARDED_BY(mu);
    std::uint64_t full_builds LSA_GUARDED_BY(mu) = 0;
    std::uint64_t incremental_patches LSA_GUARDED_BY(mu) = 0;
    std::uint64_t evictions LSA_GUARDED_BY(mu) = 0;
    DecodeStats last_stats LSA_GUARDED_BY(mu);
  };

  struct PlanLookup {
    std::shared_ptr<BatchedDecodePlan<F>> plan;
    std::vector<std::uint32_t> perm;  ///< plan order -> sorted-key order
    bool reused = false;
    bool patched = false;
    std::size_t patched_nodes = 0;
    double patch_s = 0.0;  ///< time spent patching (0 on hit / full build)
  };

  [[nodiscard]] static std::size_t hash_points(std::span<const rep> xs) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const rep x : xs) {
      h ^= static_cast<std::uint64_t>(x) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }

  /// Elements of sorted `a` not present in sorted `b` (== vice versa for
  /// equal sizes); returns limit + 1 as soon as the count exceeds limit.
  [[nodiscard]] static std::size_t churn_between(std::span<const rep> a,
                                                 std::span<const rep> b,
                                                 std::size_t limit) {
    std::size_t ia = 0, ib = 0, c = 0;
    while (ia < a.size() && ib < b.size()) {
      if (a[ia] == b[ib]) {
        ++ia;
        ++ib;
      } else if (a[ia] < b[ib]) {
        if (++c > limit) return limit + 1;
        ++ia;
      } else {
        ++ib;
      }
    }
    c += a.size() - ia;
    return c > limit ? limit + 1 : c;
  }

  /// Returns the plan for this SORTED survivor point set: an exact cache
  /// hit (moved to the LRU front), else a patch of the closest cached
  /// plan within kMaxPatchChurn replacements, else a fresh build. The
  /// incoming key is hashed exactly once.
  [[nodiscard]] PlanLookup plan_for(std::vector<rep> sorted_xs) const {
    const std::size_t h = hash_points(std::span<const rep>(sorted_xs));
    lsa::sync::MutexLock lk(plans_->mu);
    auto& entries = plans_->entries;
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->hash != h || it->key_xs != sorted_xs) continue;
      entries.splice(entries.begin(), entries, it);
      return {it->plan, it->perm, true, false, 0, 0.0};
    }
    // Miss: scan (in LRU order) for the closest patchable base.
    const CacheEntry* base = nullptr;
    std::size_t best_churn = kMaxPatchChurn + 1;
    for (const auto& e : entries) {
      const std::size_t c = churn_between(
          std::span<const rep>(e.key_xs), std::span<const rep>(sorted_xs),
          kMaxPatchChurn);
      if (c > 0 && c < best_churn) {
        best_churn = c;
        base = &e;
        if (c == 1) break;
      }
    }
    PlanLookup out;
    if (base != nullptr) {
      lsa::common::Stopwatch sw;
      // Pair the points leaving the base's set with the points entering,
      // in sorted order, and locate each leaver in the base plan's own
      // (not necessarily sorted) point order.
      std::vector<rep> removed, added;
      removed.reserve(best_churn);
      added.reserve(best_churn);
      std::size_t ia = 0, ib = 0;
      const auto& k = base->key_xs;
      while (ia < k.size() || ib < sorted_xs.size()) {
        if (ia < k.size() && ib < sorted_xs.size() &&
            k[ia] == sorted_xs[ib]) {
          ++ia;
          ++ib;
        } else if (ib >= sorted_xs.size() ||
                   (ia < k.size() && k[ia] < sorted_xs[ib])) {
          removed.push_back(k[ia++]);
        } else {
          added.push_back(sorted_xs[ib++]);
        }
      }
      const auto base_xs = base->plan->xs();
      std::vector<typename BatchedDecodePlan<F>::PointReplacement> reps(
          removed.size());
      for (std::size_t r = 0; r < removed.size(); ++r) {
        std::size_t pos = 0;
        while (base_xs[pos] != removed[r]) ++pos;
        reps[r] = {pos, added[r]};
      }
      out.plan = BatchedDecodePlan<F>::patched_from(
          *base->plan,
          std::span<const typename BatchedDecodePlan<F>::PointReplacement>(
              reps));
      out.patched = true;
      out.patched_nodes = out.plan->patched_nodes();
      out.patch_s = sw.elapsed_sec();
      const auto pxs = out.plan->xs();
      out.perm.resize(pxs.size());
      for (std::size_t j = 0; j < pxs.size(); ++j) {
        out.perm[j] = static_cast<std::uint32_t>(
            std::lower_bound(sorted_xs.begin(), sorted_xs.end(), pxs[j]) -
            sorted_xs.begin());
      }
      ++plans_->incremental_patches;
    } else {
      out.plan = std::make_shared<BatchedDecodePlan<F>>(
          std::span<const rep>(sorted_xs),
          std::span<const rep>(beta_.data(), u_ - t_));
      ++plans_->full_builds;
    }
    entries.push_front(CacheEntry{h, std::move(sorted_xs), out.perm,
                                  out.plan});
    if (entries.size() > kMaxCachedPlans) {
      // Evict the least-recently-used entry rather than clearing: a
      // churny session keeps its other hot plans instead of re-paying
      // every setup at once.
      entries.pop_back();
      ++plans_->evictions;
    }
    return out;
  }

  [[nodiscard]] static double plan_setup_seconds(
      const BatchedDecodePlan<F>& plan) {
    return plan.barycentric_setup_seconds() + plan.batched_setup_seconds();
  }

  std::size_t n_;
  std::size_t u_;
  std::size_t t_;
  std::size_t d_;
  std::size_t seg_len_ = 0;
  std::vector<rep> beta_;
  std::vector<rep> alpha_;
  Matrix w_cols_;  ///< row j = column j of W (the U coefficients of share j)
  std::shared_ptr<PlanCache> plans_ = std::make_shared<PlanCache>();
};

}  // namespace lsa::coding
