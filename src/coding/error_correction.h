// Reed–Solomon error correction via Berlekamp–Welch — upgrading the mask
// codec's error-*detecting* redundant decode (paper §8 first step) to
// error-*correcting*: with r = (#responses - U) redundant aggregated shares
// the server can not only notice but locate and discard up to floor(r/2)
// corrupted responses and still finish the one-shot recovery.
//
// Setting. The aggregated encoded shares are evaluations y_j = g(x_j) of the
// aggregate polynomial g (degree < U). A Byzantine or faulty responder
// corrupts its y_j. Berlekamp–Welch finds a monic error locator E (degree e)
// and Q = g*E (degree < U + e) satisfying the *linear* system
//     Q(x_j) = y_j * E(x_j)        for every response j,
// which holds identically when at most e responses are wrong: E vanishes on
// the corrupted x_j. Then g = Q / E (exact division), and the corrupted
// responders are the roots of E among the share points.
//
// Cost note. Solving the (U+2e)-unknown system per mask *coordinate* would
// be prohibitive; the codec layer (MaskCodec::decode_aggregate_corrected)
// exploits that corruption is per-*responder*, locating the bad responders
// once on a random linear combination of coordinates and then running the
// normal one-shot decode on the clean survivors.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "coding/matrix.h"
#include "coding/ntt.h"   // poly_trim
#include "coding/poly.h"  // poly_eval, poly_divrem
#include "common/error.h"

namespace lsa::coding {

template <class F>
struct BwDecode {
  /// Coefficients of the recovered polynomial g (degree < k, trimmed).
  std::vector<typename F::rep> poly;
  /// Indices into xs/ys where ys disagreed with g (the corrupted shares).
  std::vector<std::size_t> error_positions;
};

/// Berlekamp–Welch: recovers the degree-<k polynomial from n = xs.size()
/// evaluations of which at most max_errors are corrupted.
/// Requires n >= k + 2*max_errors. Returns nullopt when no consistent
/// codeword exists within the error budget (e.g. more corruptions than
/// max_errors — detected, not silently mis-decoded).
template <class F>
[[nodiscard]] std::optional<BwDecode<F>> berlekamp_welch(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> ys, std::size_t k,
    std::size_t max_errors) {
  using rep = typename F::rep;
  const std::size_t n = xs.size();
  lsa::require<lsa::CodingError>(n == ys.size() && k >= 1,
                                 "berlekamp-welch: bad inputs");
  lsa::require<lsa::CodingError>(
      n >= k + 2 * max_errors,
      "berlekamp-welch: need n >= k + 2e evaluations");
  const std::size_t e = max_errors;

  std::vector<rep> q_coeffs;  // degree < k + e
  std::vector<rep> e_coeffs;  // E = x^e + e_{e-1} x^{e-1} + ... + e_0
  if (e == 0) {
    // No error budget: plain interpolation (from the first k points), then
    // the verification pass below still rejects inconsistent extras.
    SubproductTree<F> tree{xs.first(k)};
    q_coeffs = tree.interpolate(ys.first(k));
  } else {
    // Unknowns: q_0..q_{k+e-1}, e_0..e_{e-1}.
    // Row j:  sum_m q_m x_j^m - y_j * sum_m e_m x_j^m = y_j * x_j^e.
    const std::size_t nq = k + e;
    Matrix<F> m(n, nq + e);
    std::vector<rep> rhs(n);
    for (std::size_t j = 0; j < n; ++j) {
      rep pw = F::one;
      for (std::size_t c = 0; c < nq; ++c) {
        m.at(j, c) = pw;
        pw = F::mul(pw, xs[j]);
      }
      pw = F::one;
      for (std::size_t c = 0; c < e; ++c) {
        m.at(j, nq + c) = F::neg(F::mul(ys[j], pw));
        pw = F::mul(pw, xs[j]);
      }
      rhs[j] = F::mul(ys[j], F::pow(xs[j], e));
    }
    auto sol = solve_linear<F>(m, rhs);
    if (!sol.has_value()) return std::nullopt;
    q_coeffs.assign(sol->begin(),
                    sol->begin() + static_cast<std::ptrdiff_t>(nq));
    e_coeffs.assign(sol->begin() + static_cast<std::ptrdiff_t>(nq),
                    sol->end());
  }

  BwDecode<F> out;
  if (e == 0) {
    out.poly = std::move(q_coeffs);
  } else {
    std::vector<rep> locator(e_coeffs);
    locator.push_back(F::one);  // monic x^e term
    poly_trim<F>(q_coeffs);
    auto [g, r] = poly_divrem<F>(std::span<const rep>(q_coeffs),
                                 std::span<const rep>(locator));
    if (!r.empty()) return std::nullopt;  // E does not divide Q: overrun
    out.poly = std::move(g);
  }
  if (out.poly.size() > k) return std::nullopt;  // degree overflow

  // Verification: the codeword must disagree with at most e inputs.
  for (std::size_t j = 0; j < n; ++j) {
    if (poly_eval<F>(std::span<const rep>(out.poly), xs[j]) != ys[j]) {
      out.error_positions.push_back(j);
    }
  }
  if (out.error_positions.size() > e) return std::nullopt;
  return out;
}

}  // namespace lsa::coding
