// Fast dense polynomial arithmetic over F_q.
//
// This is the toolkit that turns the paper's O(U log U) server-decode claim
// (§5.2: "decoding a U-dimensional MDS code ... can be performed with
// O(U log U) operations") into running code:
//
//   * poly_divrem        — division with remainder, via Newton inversion of
//                          the reversed divisor when operands are large.
//   * SubproductTree     — the balanced product tree over evaluation points
//                          that underlies both fast algorithms below.
//   * tree.evaluate(f)   — fast multipoint evaluation, O(M(n) log n).
//   * tree.interpolate(y)— fast interpolation,        O(M(n) log n),
//
// where M(n) is the polynomial multiplication cost: n log n with an NTT
// (field::Goldilocks), n^2 otherwise. Every routine is field-generic and
// exact; the naive counterparts (poly_eval, interpolate_naive) are kept as
// cross-checks for the property tests.
//
// Representation: a polynomial is a std::vector<rep> of coefficients, lowest
// degree first, with no trailing zeros ("trimmed"); the zero polynomial is
// the empty vector. All routines return trimmed results and accept untrimmed
// inputs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "coding/ntt.h"
#include "common/error.h"
#include "field/field_vec.h"

namespace lsa::coding {

/// f(x0) by Horner's rule, O(deg f).
template <class F>
[[nodiscard]] typename F::rep poly_eval(std::span<const typename F::rep> f,
                                        typename F::rep x0) {
  typename F::rep acc = F::zero;
  for (std::size_t i = f.size(); i-- > 0;) {
    acc = F::add(F::mul(acc, x0), f[i]);
  }
  return acc;
}

/// Formal derivative f'(x).
template <class F>
[[nodiscard]] std::vector<typename F::rep> poly_derivative(
    std::span<const typename F::rep> f) {
  using rep = typename F::rep;
  if (f.size() <= 1) return {};
  std::vector<rep> out(f.size() - 1);
  for (std::size_t i = 1; i < f.size(); ++i) {
    out[i - 1] = F::mul(f[i], F::from_u64(static_cast<std::uint64_t>(i)));
  }
  poly_trim<F>(out);
  return out;
}

/// a + b.
template <class F>
[[nodiscard]] std::vector<typename F::rep> poly_add(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  using rep = typename F::rep;
  std::vector<rep> out(std::max(a.size(), b.size()), F::zero);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = F::add(out[i], b[i]);
  poly_trim<F>(out);
  return out;
}

/// a - b.
template <class F>
[[nodiscard]] std::vector<typename F::rep> poly_sub(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  using rep = typename F::rep;
  std::vector<rep> out(std::max(a.size(), b.size()), F::zero);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = F::sub(out[i], b[i]);
  poly_trim<F>(out);
  return out;
}

/// Truncated product a*b mod x^k (keeps only the low k coefficients).
template <class F>
[[nodiscard]] std::vector<typename F::rep> polymul_mod_xk(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b,
    std::size_t k) {
  auto p = polymul<F>(a, b);
  if (p.size() > k) p.resize(k);
  poly_trim<F>(p);
  return p;
}

/// Power-series inverse: returns b with a*b == 1 (mod x^k), by Newton
/// iteration b <- b*(2 - a*b), doubling precision each step.
/// Precondition: a[0] != 0 (CodingError otherwise).
template <class F>
[[nodiscard]] std::vector<typename F::rep> poly_inverse_mod_xk(
    std::span<const typename F::rep> a, std::size_t k) {
  using rep = typename F::rep;
  lsa::require<lsa::CodingError>(
      !a.empty() && a[0] != F::zero,
      "poly inverse: constant term must be nonzero");
  lsa::require<lsa::CodingError>(k >= 1, "poly inverse: k must be >= 1");
  std::vector<rep> b{F::inv(a[0])};
  std::size_t prec = 1;
  const std::vector<rep> two{F::add(F::one, F::one)};
  while (prec < k) {
    prec = std::min(prec * 2, k);
    // b <- b*(2 - a*b) mod x^prec
    std::span<const rep> a_low(a.data(), std::min(a.size(), prec));
    auto ab = polymul_mod_xk<F>(a_low, b, prec);
    auto correction = poly_sub<F>(two, ab);
    b = polymul_mod_xk<F>(b, correction, prec);
  }
  return b;
}

/// Quotient and remainder: a = q*b + r with deg r < deg b.
/// Uses the reversal + Newton-inversion algorithm (O(M(n))) for large
/// operands and schoolbook long division for small ones.
/// Precondition: b != 0.
template <class F>
struct DivRem {
  std::vector<typename F::rep> quotient;
  std::vector<typename F::rep> remainder;
};

template <class F>
[[nodiscard]] DivRem<F> poly_divrem(std::span<const typename F::rep> a_in,
                                    std::span<const typename F::rep> b_in) {
  using rep = typename F::rep;
  std::vector<rep> a(a_in.begin(), a_in.end());
  std::vector<rep> b(b_in.begin(), b_in.end());
  poly_trim<F>(a);
  poly_trim<F>(b);
  lsa::require<lsa::CodingError>(!b.empty(), "poly divrem: division by zero");
  if (a.size() < b.size()) return {{}, std::move(a)};

  const std::size_t qlen = a.size() - b.size() + 1;
  if (b.size() <= 16 || qlen <= 16) {
    // Schoolbook long division.
    std::vector<rep> q(qlen, F::zero);
    const rep lead_inv = F::inv(b.back());
    for (std::size_t i = qlen; i-- > 0;) {
      const rep coef = F::mul(a[i + b.size() - 1], lead_inv);
      q[i] = coef;
      if (coef == F::zero) continue;
      for (std::size_t j = 0; j < b.size(); ++j) {
        a[i + j] = F::sub(a[i + j], F::mul(coef, b[j]));
      }
    }
    a.resize(b.size() - 1);
    poly_trim<F>(a);
    return {std::move(q), std::move(a)};
  }

  // rev(a) = rev(b) * rev(q) mod x^qlen  =>  rev(q) = rev(a)*rev(b)^-1.
  std::vector<rep> ra(a.rbegin(), a.rend());
  std::vector<rep> rb(b.rbegin(), b.rend());
  auto rb_inv = poly_inverse_mod_xk<F>(rb, qlen);
  auto rq = polymul_mod_xk<F>(ra, rb_inv, qlen);
  rq.resize(qlen, F::zero);
  std::vector<rep> q(rq.rbegin(), rq.rend());

  auto bq = polymul<F>(b, q);
  auto r = poly_sub<F>(a, bq);
  lsa::require<lsa::CodingError>(r.size() < b.size(),
                                 "poly divrem: internal degree error");
  std::vector<rep> q_trimmed = std::move(q);
  poly_trim<F>(q_trimmed);
  return {std::move(q_trimmed), std::move(r)};
}

/// Naive O(n^2) interpolation through (xs[j], ys[j]) returning coefficients.
/// Reference implementation for tests; use SubproductTree::interpolate for
/// real workloads.
template <class F>
[[nodiscard]] std::vector<typename F::rep> interpolate_naive(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> ys) {
  using rep = typename F::rep;
  lsa::require<lsa::CodingError>(xs.size() == ys.size() && !xs.empty(),
                                 "interpolate: bad inputs");
  const std::size_t n = xs.size();
  // Newton's divided differences.
  std::vector<rep> dd(ys.begin(), ys.end());
  for (std::size_t level = 1; level < n; ++level) {
    for (std::size_t i = n - 1; i >= level; --i) {
      const rep denom = F::sub(xs[i], xs[i - level]);
      lsa::require<lsa::CodingError>(denom != F::zero,
                                     "interpolate: duplicate points");
      dd[i] = F::mul(F::sub(dd[i], dd[i - 1]), F::inv(denom));
      if (i == level) break;
    }
  }
  // Horner expansion of the Newton form into monomial coefficients.
  std::vector<rep> coef{dd[n - 1]};
  for (std::size_t i = n - 1; i-- > 0;) {
    // coef <- coef*(x - xs[i]) + dd[i]
    coef.insert(coef.begin(), F::zero);
    for (std::size_t j = 0; j + 1 < coef.size(); ++j) {
      coef[j] = F::sub(coef[j], F::mul(xs[i], coef[j + 1]));
    }
    coef[0] = F::add(coef[0], dd[i]);
  }
  poly_trim<F>(coef);
  return coef;
}

/// Balanced subproduct tree over a fixed point set, supporting fast
/// multipoint evaluation and fast interpolation. Building the tree costs
/// O(M(n) log n) and is reused across every call — exactly the access
/// pattern of the LightSecAgg decoder, which evaluates/interpolates once
/// per mask coordinate over the same survivor points.
template <class F>
class SubproductTree {
 public:
  using rep = typename F::rep;

  /// Precondition: xs pairwise distinct and non-empty.
  explicit SubproductTree(std::span<const rep> xs)
      : xs_(xs.begin(), xs.end()) {
    lsa::require<lsa::CodingError>(!xs_.empty(),
                                   "subproduct tree: no points");
    // Level 0: leaves (x - x_j).
    std::vector<std::vector<rep>> level;
    level.reserve(xs_.size());
    for (const rep x : xs_) level.push_back({F::neg(x), F::one});
    levels_.push_back(std::move(level));
    // Pairwise products up to the root.
    while (levels_.back().size() > 1) {
      const auto& prev = levels_.back();
      std::vector<std::vector<rep>> next;
      next.reserve((prev.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
        next.push_back(polymul<F>(prev[i], prev[i + 1]));
      }
      if (prev.size() % 2 == 1) next.push_back(prev.back());
      levels_.push_back(std::move(next));
    }

    // 1 / M'(x_j) for interpolation, via one multipoint evaluation of M'.
    const auto m_prime = poly_derivative<F>(std::span<const rep>(root()));
    mprime_inv_ = evaluate(m_prime);
    for (const rep v : mprime_inv_) {
      lsa::require<lsa::CodingError>(
          v != F::zero, "subproduct tree: duplicate points (M'(x_j) == 0)");
    }
    lsa::field::batch_inv_inplace<F>(std::span<rep>(mprime_inv_));
  }

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] std::span<const rep> points() const { return xs_; }

  /// M(x) = prod_j (x - x_j), the root of the tree (degree n, monic).
  [[nodiscard]] const std::vector<rep>& root() const {
    return levels_.back().front();
  }

  /// 1 / M'(x_j) — the barycentric denominators (exposed for the decoder).
  [[nodiscard]] std::span<const rep> barycentric_inverses() const {
    return mprime_inv_;
  }

  // Read-only structural access for the batched decode plane
  // (coding/decode_plan.h), which annotates every node with precomputed
  // Newton inverses and cached transforms. Level 0 is the leaves; node i
  // at `level` has children 2i and 2i+1 at level-1 (the last node carries
  // up unpaired when the level has odd size).
  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] std::size_t level_size(std::size_t level) const {
    return levels_[level].size();
  }
  [[nodiscard]] const std::vector<rep>& node_poly(std::size_t level,
                                                  std::size_t i) const {
    return levels_[level][i];
  }

  /// Fast multipoint evaluation: returns { f(x_j) } for all j.
  [[nodiscard]] std::vector<rep> evaluate(std::span<const rep> f) const {
    std::vector<rep> out(xs_.size(), F::zero);
    if (f.empty()) return out;
    eval_recurse(f, levels_.size() - 1, 0, out);
    return out;
  }

  /// Fast interpolation: the unique polynomial of degree < n through
  /// (x_j, ys[j]), via f = sum_j ys[j]/M'(x_j) * M(x)/(x - x_j) combined
  /// bottom-up along the tree.
  [[nodiscard]] std::vector<rep> interpolate(std::span<const rep> ys) const {
    lsa::require<lsa::CodingError>(ys.size() == xs_.size(),
                                   "interpolate: wrong number of values");
    std::vector<rep> c(ys.size());
    for (std::size_t j = 0; j < ys.size(); ++j) {
      c[j] = F::mul(ys[j], mprime_inv_[j]);
    }
    auto f = combine_recurse(c, levels_.size() - 1, 0);
    poly_trim<F>(f);
    return f;
  }

 private:
  // Node i at `level` covers a contiguous range of leaves; child indices at
  // level-1 are 2i and 2i+1 (the last node is carried up unpaired when the
  // level has odd size).
  [[nodiscard]] bool has_right_child(std::size_t level, std::size_t i) const {
    return 2 * i + 1 < levels_[level - 1].size();
  }

  void eval_recurse(std::span<const rep> f, std::size_t level, std::size_t i,
                    std::vector<rep>& out) const {
    const auto& node = levels_[level][i];
    auto r = (f.size() >= node.size())
                 ? poly_divrem<F>(f, node).remainder
                 : std::vector<rep>(f.begin(), f.end());
    if (level == 0) {
      out[i] = r.empty() ? F::zero : r[0];  // node is (x - x_i); r constant
      return;
    }
    if (!has_right_child(level, i)) {
      // Unpaired carry-through node: same polynomial one level down.
      eval_recurse(r, level - 1, 2 * i, out);
      return;
    }
    eval_recurse(r, level - 1, 2 * i, out);
    eval_recurse(r, level - 1, 2 * i + 1, out);
  }

  // Returns sum over leaves j under node (level, i) of
  //   c_j * prod_{m under node, m != j} (x - x_m).
  [[nodiscard]] std::vector<rep> combine_recurse(std::span<const rep> c,
                                                 std::size_t level,
                                                 std::size_t i) const {
    if (level == 0) return {c[i]};
    if (!has_right_child(level, i)) {
      return combine_recurse(c, level - 1, 2 * i);
    }
    auto left = combine_recurse(c, level - 1, 2 * i);
    auto right = combine_recurse(c, level - 1, 2 * i + 1);
    auto lm = polymul<F>(left, levels_[level - 1][2 * i + 1]);
    auto rm = polymul<F>(right, levels_[level - 1][2 * i]);
    return poly_add<F>(lm, rm);
  }

  std::vector<rep> xs_;
  std::vector<std::vector<std::vector<rep>>> levels_;
  std::vector<rep> mprime_inv_;
};

}  // namespace lsa::coding
