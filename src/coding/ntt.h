// Number-theoretic transform (NTT) and polynomial multiplication.
//
// The NTT is the finite-field DFT: for n = 2^k and a primitive n-th root of
// unity w, it maps coefficients (a_0..a_{n-1}) to evaluations (A(w^0)..
// A(w^{n-1})) in O(n log n). It is the multiplication engine behind the fast
// polynomial toolkit (coding/poly.h) that realizes the paper's O(U log U)
// server-decode complexity class (§5.2, Table 5).
//
// Field requirements are expressed by the NttCapable concept: the field must
// expose `two_adicity` and `omega(k)` (a primitive 2^k-th root). Of the three
// fields in this library only field::Goldilocks qualifies; polymul<F> remains
// usable for every field by falling back to schoolbook multiplication.
#pragma once

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "field/field_vec.h"

namespace lsa::coding {

template <class F>
concept NttCapable = requires {
  { F::two_adicity } -> std::convertible_to<unsigned>;
  { F::omega(0u) } -> std::convertible_to<typename F::rep>;
};

/// In-place bit-reversal permutation (size must be a power of two).
template <class F>
void bit_reverse_permute(std::span<typename F::rep> a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

/// In-place forward NTT: a[i] <- A(w^i) for the polynomial A with
/// coefficients a. Size must be a power of two <= 2^F::two_adicity.
template <NttCapable F>
void ntt_inplace(std::span<typename F::rep> a) {
  using rep = typename F::rep;
  const std::size_t n = a.size();
  if (n <= 1) return;
  lsa::require<lsa::CodingError>(std::has_single_bit(n),
                                 "ntt: size must be a power of two");
  const unsigned log_n = static_cast<unsigned>(std::countr_zero(n));
  lsa::require<lsa::CodingError>(log_n <= F::two_adicity,
                                 "ntt: size exceeds the field's 2-adicity");

  bit_reverse_permute<F>(a);
  for (unsigned s = 1; s <= log_n; ++s) {
    const std::size_t m = std::size_t{1} << s;
    const rep wm = F::omega(s);
    for (std::size_t k = 0; k < n; k += m) {
      rep w = F::one;
      for (std::size_t j = 0; j < m / 2; ++j) {
        const rep t = F::mul(w, a[k + j + m / 2]);
        const rep u = a[k + j];
        a[k + j] = F::add(u, t);
        a[k + j + m / 2] = F::sub(u, t);
        w = F::mul(w, wm);
      }
    }
  }
}

/// In-place inverse NTT (exact inverse of ntt_inplace).
template <NttCapable F>
void intt_inplace(std::span<typename F::rep> a) {
  using rep = typename F::rep;
  const std::size_t n = a.size();
  if (n <= 1) return;
  // Inverse transform = forward transform with w^-1, scaled by n^-1.
  // Conjugating by reversal of the non-zero indices achieves w -> w^-1.
  ntt_inplace<F>(a);
  std::reverse(a.begin() + 1, a.end());
  const rep n_inv = F::inv(F::from_u64(static_cast<std::uint64_t>(n)));
  for (auto& x : a) x = F::mul(x, n_inv);
}

/// Degree bound after trimming trailing zero coefficients; the zero
/// polynomial is represented by an empty vector.
template <class F>
void poly_trim(std::vector<typename F::rep>& a) {
  while (!a.empty() && a.back() == F::zero) a.pop_back();
}

/// Schoolbook product, O(|a|*|b|). Works for every field; used directly for
/// small operands where NTT overhead dominates.
template <class F>
[[nodiscard]] std::vector<typename F::rep> polymul_schoolbook(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  using rep = typename F::rep;
  if (a.empty() || b.empty()) return {};
  std::vector<rep> out(a.size() + b.size() - 1, F::zero);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == F::zero) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = F::add(out[i + j], F::mul(a[i], b[j]));
    }
  }
  return out;
}

/// NTT-based product, O(n log n) with n = |a| + |b|.
template <NttCapable F>
[[nodiscard]] std::vector<typename F::rep> polymul_ntt(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  using rep = typename F::rep;
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = std::bit_ceil(out_len);
  std::vector<rep> fa(a.begin(), a.end());
  std::vector<rep> fb(b.begin(), b.end());
  fa.resize(n, F::zero);
  fb.resize(n, F::zero);
  ntt_inplace<F>(std::span<rep>(fa));
  ntt_inplace<F>(std::span<rep>(fb));
  for (std::size_t i = 0; i < n; ++i) fa[i] = F::mul(fa[i], fb[i]);
  intt_inplace<F>(std::span<rep>(fa));
  fa.resize(out_len);
  return fa;
}

/// Size threshold below which schoolbook beats the transform (measured on
/// this library's kernels; the exact value only shifts constants).
inline constexpr std::size_t kNttThreshold = 64;

/// Precomputed transform of one fixed size: the full twiddle table (with
/// Shoup precomputed operands when the field supports them) is built once
/// and reused across every transform of that size — the "block NTT" engine
/// of the batched decode plane. ntt_inplace/intt_inplace above recompute
/// each twiddle by a running product per call; this class produces the
/// exact same twiddle values (exact field arithmetic), so forward/inverse
/// are bit-identical to them on every input.
template <class F>
class NttPlan {
 public:
  using rep = typename F::rep;

  explicit NttPlan(unsigned log_n) : log_n_(log_n), n_(std::size_t{1} << log_n) {
    // Unconstrained as a *type* so strategy tables can name NttPlan<F> for
    // any field; constructing one requires the NTT hooks.
    static_assert(NttCapable<F>, "NttPlan needs an NTT-capable field");
    lsa::require<lsa::CodingError>(log_n <= F::two_adicity,
                                   "ntt plan: size exceeds 2-adicity");
    // Stage s (m = 2^s) uses omega(s)^j for j < m/2, stored at offset
    // m/2 - 1 — the same running-product values ntt_inplace generates.
    tw_.resize(n_ > 0 ? n_ - 1 : 0);
    for (unsigned s = 1; s <= log_n_; ++s) {
      const std::size_t half = std::size_t{1} << (s - 1);
      const rep wm = F::omega(s);
      rep w = F::one;
      for (std::size_t j = 0; j < half; ++j) {
        tw_[half - 1 + j] = w;
        w = F::mul(w, wm);
      }
    }
    if constexpr (lsa::field::ShoupCapable<F>) {
      tw_shoup_ = lsa::field::shoup_precompute_vec<F>(
          std::span<const rep>(tw_));
    }
    n_inv_ = n_ > 0 ? F::inv(F::from_u64(static_cast<std::uint64_t>(n_)))
                    : F::one;
    if constexpr (lsa::field::ShoupCapable<F>) {
      n_inv_shoup_ = F::shoup_precompute(n_inv_);
    }
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] unsigned log_size() const { return log_n_; }

  /// In-place forward transform; bit-identical to ntt_inplace.
  void forward(std::span<rep> a) const {
    lsa::require<lsa::CodingError>(a.size() == n_, "ntt plan: size mismatch");
    if (n_ <= 1) return;
    bit_reverse_permute<F>(a);
    if constexpr (field::simd::kIsGoldilocksField<F>) {
      if (const auto* vk = field::simd::goldilocks_active()) {
        for (unsigned s = 1; s <= log_n_; ++s) {
          const std::size_t m = std::size_t{1} << s;
          const std::size_t half = m / 2;
          const rep* tw = tw_.data() + (half - 1);
          const rep* twp = tw_shoup_.data() + (half - 1);
          for (std::size_t k = 0; k < n_; k += m) {
            vk->butterfly_tw(a.data() + k, a.data() + k + half, tw, twp,
                             half);
          }
        }
        return;
      }
    }
    for (unsigned s = 1; s <= log_n_; ++s) {
      const std::size_t m = std::size_t{1} << s;
      const std::size_t half = m / 2;
      const rep* tw = tw_.data() + (half - 1);
      if constexpr (lsa::field::ShoupCapable<F>) {
        const rep* twp = tw_shoup_.data() + (half - 1);
        for (std::size_t k = 0; k < n_; k += m) {
          for (std::size_t j = 0; j < half; ++j) {
            const rep t = F::mul_shoup(a[k + j + half], tw[j], twp[j]);
            const rep u = a[k + j];
            a[k + j] = F::add(u, t);
            a[k + j + half] = F::sub(u, t);
          }
        }
      } else {
        for (std::size_t k = 0; k < n_; k += m) {
          for (std::size_t j = 0; j < half; ++j) {
            const rep t = F::mul(tw[j], a[k + j + half]);
            const rep u = a[k + j];
            a[k + j] = F::add(u, t);
            a[k + j + half] = F::sub(u, t);
          }
        }
      }
    }
  }

  /// In-place inverse transform; bit-identical to intt_inplace.
  void inverse(std::span<rep> a) const {
    lsa::require<lsa::CodingError>(a.size() == n_, "ntt plan: size mismatch");
    if (n_ <= 1) return;
    forward(a);
    std::reverse(a.begin() + 1, a.end());
    if constexpr (field::simd::kIsGoldilocksField<F>) {
      if (const auto* vk = field::simd::goldilocks_active()) {
        vk->mul_shoup_inplace(a.data(), n_inv_, n_inv_shoup_, n_);
        return;
      }
    }
    if constexpr (lsa::field::ShoupCapable<F>) {
      for (auto& x : a) x = F::mul_shoup(x, n_inv_, n_inv_shoup_);
    } else {
      for (auto& x : a) x = F::mul(x, n_inv_);
    }
  }

  // ------------------------------------------------ SoA lane-block forms
  //
  // The batched decode plane streams kLaneBlock coordinates together in
  // structure-of-arrays layout: a[j * lanes + l] holds coefficient j of
  // lane l. The SoA transforms run the same butterfly schedule as
  // forward/inverse with every element op applied per lane block, so lane l
  // of the SoA result is bit-identical to forward/inverse of lane l alone.

  /// In-place forward transform of `lanes` interleaved polynomials.
  /// a.size() must be n_ * lanes.
  void forward_soa(std::span<rep> a, std::size_t lanes) const {
    lsa::require<lsa::CodingError>(a.size() == n_ * lanes,
                                   "ntt plan: soa size mismatch");
    if (n_ <= 1 || lanes == 0) return;
    block_bit_reverse(a, lanes);
    const field::simd::GoldilocksKernels* vk = nullptr;
    if constexpr (field::simd::kIsGoldilocksField<F>) {
      vk = field::simd::goldilocks_active();
    }
    for (unsigned s = 1; s <= log_n_; ++s) {
      const std::size_t m = std::size_t{1} << s;
      const std::size_t half = m / 2;
      const rep* tw = tw_.data() + (half - 1);
      const rep* twp =
          tw_shoup_.empty() ? nullptr : tw_shoup_.data() + (half - 1);
      for (std::size_t k = 0; k < n_; k += m) {
        rep* ab = a.data() + k * lanes;
        rep* bb = a.data() + (k + half) * lanes;
        bool done = false;
        if constexpr (field::simd::kIsGoldilocksField<F>) {
          if (vk != nullptr) {
            vk->butterfly_soa(ab, bb, tw, twp, half, lanes);
            done = true;
          }
        }
        if (!done) {
          for (std::size_t j = 0; j < half; ++j) {
            for (std::size_t l = 0; l < lanes; ++l) {
              rep t;
              if constexpr (lsa::field::ShoupCapable<F>) {
                t = F::mul_shoup(bb[j * lanes + l], tw[j], twp[j]);
              } else {
                t = F::mul(tw[j], bb[j * lanes + l]);
              }
              const rep u = ab[j * lanes + l];
              ab[j * lanes + l] = F::add(u, t);
              bb[j * lanes + l] = F::sub(u, t);
            }
          }
        }
      }
    }
  }

  /// In-place inverse transform of `lanes` interleaved polynomials.
  void inverse_soa(std::span<rep> a, std::size_t lanes) const {
    lsa::require<lsa::CodingError>(a.size() == n_ * lanes,
                                   "ntt plan: soa size mismatch");
    if (n_ <= 1 || lanes == 0) return;
    forward_soa(a, lanes);
    // std::reverse(a.begin() + 1, a.end()) on each lane = reverse the
    // block order of blocks 1..n-1 keeping each lane block intact.
    for (std::size_t i = 1, j = n_ - 1; i < j; ++i, --j) {
      std::swap_ranges(a.begin() + i * lanes, a.begin() + (i + 1) * lanes,
                       a.begin() + j * lanes);
    }
    if constexpr (field::simd::kIsGoldilocksField<F>) {
      if (const auto* vk = field::simd::goldilocks_active()) {
        vk->mul_shoup_inplace(a.data(), n_inv_, n_inv_shoup_, n_ * lanes);
        return;
      }
    }
    if constexpr (lsa::field::ShoupCapable<F>) {
      for (auto& x : a) x = F::mul_shoup(x, n_inv_, n_inv_shoup_);
    } else {
      for (auto& x : a) x = F::mul(x, n_inv_);
    }
  }

 private:
  /// bit_reverse_permute on whole lane blocks.
  void block_bit_reverse(std::span<rep> a, std::size_t lanes) const {
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) {
        std::swap_ranges(a.begin() + i * lanes, a.begin() + (i + 1) * lanes,
                         a.begin() + j * lanes);
      }
    }
  }

  unsigned log_n_;
  std::size_t n_;
  std::vector<rep> tw_;        ///< stage-major twiddles (n - 1 entries)
  std::vector<rep> tw_shoup_;  ///< Shoup precomputation of tw_
  rep n_inv_ = F::one;
  rep n_inv_shoup_ = F::one;
};

/// Polynomial product with automatic algorithm selection. For fields without
/// NTT structure this is always schoolbook — correct, just quadratic.
template <class F>
[[nodiscard]] std::vector<typename F::rep> polymul(
    std::span<const typename F::rep> a, std::span<const typename F::rep> b) {
  if constexpr (NttCapable<F>) {
    if (a.size() >= kNttThreshold && b.size() >= kNttThreshold) {
      return polymul_ntt<F>(a, b);
    }
  }
  return polymul_schoolbook<F>(a, b);
}

}  // namespace lsa::coding
