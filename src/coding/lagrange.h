// Lagrange interpolation weights over F_q.
//
// Shared by Shamir reconstruction (evaluate at x = 0) and the LightSecAgg
// mask codec (evaluate the interpolated aggregate polynomial at the data
// points). Given sample points xs and a target x0, lagrange_weights_at
// returns w such that for any polynomial f of degree < xs.size():
//     f(x0) = sum_j w[j] * f(xs[j]).
#pragma once

#include <span>
#include <vector>

#include "common/error.h"
#include "field/field_vec.h"

namespace lsa::coding {

/// Precondition: xs are pairwise distinct (CodingError otherwise).
template <class F>
[[nodiscard]] std::vector<typename F::rep> lagrange_weights_at(
    std::span<const typename F::rep> xs, typename F::rep x0) {
  using rep = typename F::rep;
  const std::size_t n = xs.size();
  lsa::require<lsa::CodingError>(n > 0, "lagrange: no sample points");

  // w_j = prod_{m != j} (x0 - x_m) / (x_j - x_m).
  // Compute all denominators then batch-invert (one field inversion total).
  std::vector<rep> denom(n, F::one);
  std::vector<rep> numer(n, F::one);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t m = 0; m < n; ++m) {
      if (m == j) continue;
      const rep diff = F::sub(xs[j], xs[m]);
      lsa::require<lsa::CodingError>(diff != F::zero,
                                     "lagrange: duplicate sample points");
      denom[j] = F::mul(denom[j], diff);
      numer[j] = F::mul(numer[j], F::sub(x0, xs[m]));
    }
  }
  lsa::field::batch_inv_inplace<F>(std::span<rep>(denom));
  std::vector<rep> w(n);
  for (std::size_t j = 0; j < n; ++j) w[j] = F::mul(numer[j], denom[j]);
  return w;
}

/// Full interpolation: returns f(x0) for the unique degree-(n-1) polynomial
/// through (xs[j], ys[j]).
template <class F>
[[nodiscard]] typename F::rep interpolate_at(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> ys, typename F::rep x0) {
  lsa::require<lsa::CodingError>(xs.size() == ys.size(),
                                 "interpolate: xs/ys size mismatch");
  const auto w = lagrange_weights_at<F>(xs, x0);
  typename F::rep acc = F::zero;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    acc = F::add(acc, F::mul(w[j], ys[j]));
  }
  return acc;
}

}  // namespace lsa::coding
