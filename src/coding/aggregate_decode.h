// Server-side aggregate-mask decode kernels (paper §5.2).
//
// The one-shot recovery step of LightSecAgg reduces to: given the aggregate
// polynomial g (degree < U) through U known share points xs, evaluate g at
// the U-T data slots betas — for every one of the seg_len mask coordinates.
// Three interchangeable kernels implement this, trading scalar precomputation
// against per-coordinate cost:
//
//   kLagrange    — textbook Lagrange weights per beta, O(U^2) scalar work per
//                  beta (O(U^2 (U-T)) total) + O(U d) vector work. Reference.
//   kBarycentric — barycentric weights (shared denominators M'(x_j)),
//                  O(U^2 + U(U-T)) scalar work, then a cache-blocked
//                  (U-T) x U x seg_len field GEMM (the fused
//                  axpy_accumulate kernel of field/field_vec.h).
//                  The practical default.
//   kNtt         — fast interpolation + fast multipoint evaluation over a
//                  subproduct tree, O(U log^2 U) *per coordinate* — the
//                  complexity class the paper's Table 5 row assumes. Wins
//                  when U is large and U-T small (high privacy T); the
//                  crossover is measured in bench/ablation_decode_complexity.
//
// All kernels take the shares as *row views* (one pointer per responder) so
// flat arenas (field/flat_matrix.h), nested vectors and wire buffers all
// decode without copying, and accept a sys::ExecPolicy that fans the
// coordinate range out across a thread pool. All three strategies produce
// bit-identical results under every policy (tests/decode_strategy_test.cpp,
// tests/parallel_codec_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "coding/lagrange.h"
#include "coding/ntt.h"
#include "coding/poly.h"
#include "common/error.h"
#include "field/field_vec.h"
#include "sys/exec_policy.h"

namespace lsa::coding {

enum class DecodeStrategy {
  kLagrange,
  kBarycentric,
  kNtt,
};

[[nodiscard]] constexpr const char* to_string(DecodeStrategy s) {
  switch (s) {
    case DecodeStrategy::kLagrange: return "lagrange";
    case DecodeStrategy::kBarycentric: return "barycentric";
    case DecodeStrategy::kNtt: return "ntt";
  }
  return "?";
}

/// Adapts a nested share container (anything whose elements expose data())
/// to the row-view form the kernels consume.
template <class F, class Rows>
[[nodiscard]] std::vector<const typename F::rep*> share_row_ptrs(
    const Rows& shares) {
  std::vector<const typename F::rep*> rows;
  rows.reserve(shares.size());
  for (const auto& s : shares) rows.push_back(s.data());
  return rows;
}

/// Evaluation-weight matrix W[k][j] such that g(betas[k]) = sum_j W[k][j] *
/// g(xs[j]) for any polynomial g of degree < |xs|, computed barycentrically:
///   W[k][j] = M(beta_k) / (M'(x_j) * (beta_k - x_j)),
/// with one shared O(|xs|^2) pass for the M'(x_j) and O(|xs|) per beta.
/// Preconditions: xs pairwise distinct; no beta coincides with an x.
template <class F>
[[nodiscard]] std::vector<std::vector<typename F::rep>> barycentric_weights(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas) {
  using rep = typename F::rep;
  const std::size_t u = xs.size();
  lsa::require<lsa::CodingError>(u > 0, "barycentric: no share points");

  // M'(x_j) = prod_{m != j} (x_j - x_m), inverted in one batch.
  std::vector<rep> mprime_inv(u, F::one);
  for (std::size_t j = 0; j < u; ++j) {
    for (std::size_t m = 0; m < u; ++m) {
      if (m == j) continue;
      const rep diff = F::sub(xs[j], xs[m]);
      lsa::require<lsa::CodingError>(diff != F::zero,
                                     "barycentric: duplicate share points");
      mprime_inv[j] = F::mul(mprime_inv[j], diff);
    }
  }
  lsa::field::batch_inv_inplace<F>(std::span<rep>(mprime_inv));

  std::vector<std::vector<rep>> w(betas.size());
  std::vector<rep> diff_inv(u);
  for (std::size_t k = 0; k < betas.size(); ++k) {
    rep m_at_beta = F::one;
    for (std::size_t j = 0; j < u; ++j) {
      const rep diff = F::sub(betas[k], xs[j]);
      lsa::require<lsa::CodingError>(
          diff != F::zero, "barycentric: beta coincides with share point");
      m_at_beta = F::mul(m_at_beta, diff);
      diff_inv[j] = diff;
    }
    lsa::field::batch_inv_inplace<F>(std::span<rep>(diff_inv));
    w[k].resize(u);
    for (std::size_t j = 0; j < u; ++j) {
      w[k][j] = F::mul(m_at_beta, F::mul(mprime_inv[j], diff_inv[j]));
    }
  }
  return w;
}

/// out[k*seg + l] = sum_j w[k][j] * shares[j][l] — a (U-T) x U x seg field
/// GEMM. Column blocks fan out over the policy; within a block each output
/// row runs the fused axpy_accumulate kernel (split-word lazy accumulation
/// on 32-bit fields).
template <class F>
[[nodiscard]] std::vector<typename F::rep> weighted_combine_blocked(
    const std::vector<std::vector<typename F::rep>>& w,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  const std::size_t rows = w.size();
  std::vector<rep> out(rows * seg_len, F::zero);
  const std::size_t chunk =
      pol.chunk_reps == 0 ? lsa::field::kDefaultChunkReps : pol.chunk_reps;
  pol.run_blocked(
      seg_len,
      [&](std::size_t begin, std::size_t end) {
        std::vector<const rep*> shifted(shares.size());
        for (std::size_t j = 0; j < shares.size(); ++j) {
          shifted[j] = shares[j] + begin;
        }
        for (std::size_t k = 0; k < rows; ++k) {
          std::span<rep> dst(out.data() + k * seg_len + begin, end - begin);
          lsa::field::axpy_accumulate_blocked<F>(
              dst, std::span<const rep>(w[k]), shifted, chunk);
        }
      },
      chunk);
  return out;
}

/// kBarycentric kernel: weights + blocked GEMM. Returns the (U-T) segments
/// concatenated (length |betas| * seg_len).
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval_barycentric(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  const auto w = barycentric_weights<F>(xs, betas);
  return weighted_combine_blocked<F>(w, shares, seg_len, pol);
}

/// kNtt kernel: per coordinate, fast-interpolate g from (xs, share column)
/// and fast-evaluate it at the betas; both subproduct trees are built once
/// and shared read-only across all seg_len coordinates (and all lanes).
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval_fast(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  const std::size_t u = xs.size();
  SubproductTree<F> share_tree(xs);
  SubproductTree<F> beta_tree(betas);

  std::vector<rep> out(betas.size() * seg_len, F::zero);
  pol.run_blocked(seg_len, [&](std::size_t begin, std::size_t end) {
    std::vector<rep> column(u);
    for (std::size_t l = begin; l < end; ++l) {
      for (std::size_t j = 0; j < u; ++j) column[j] = shares[j][l];
      const auto g = share_tree.interpolate(column);
      const auto vals = beta_tree.evaluate(g);
      for (std::size_t k = 0; k < betas.size(); ++k) {
        out[k * seg_len + l] = vals[k];
      }
    }
  });
  return out;
}

/// kLagrange kernel: the reference path (one lagrange_weights_at per beta).
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval_lagrange(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  std::vector<rep> out(betas.size() * seg_len, F::zero);
  pol.run(betas.size(), [&](std::size_t k) {
    const auto w = lagrange_weights_at<F>(xs, betas[k]);
    std::span<rep> seg(out.data() + k * seg_len, seg_len);
    lsa::field::axpy_accumulate_blocked<F>(seg, std::span<const rep>(w),
                                           shares, pol.chunk_reps);
  });
  return out;
}

/// Strategy dispatch over share row views. kNtt is exact for every field
/// (the subproduct tree falls back to schoolbook products), but only
/// reaches its O(U log^2 U) complexity on NTT-capable fields such as
/// field::Goldilocks.
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval(
    DecodeStrategy strategy, std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  switch (strategy) {
    case DecodeStrategy::kLagrange:
      return decode_eval_lagrange<F>(xs, betas, shares, seg_len, pol);
    case DecodeStrategy::kBarycentric:
      return decode_eval_barycentric<F>(xs, betas, shares, seg_len, pol);
    case DecodeStrategy::kNtt:
      return decode_eval_fast<F>(xs, betas, shares, seg_len, pol);
  }
  throw lsa::CodingError("decode_eval: unknown strategy");
}

/// Legacy adapter: nested-vector shares.
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval(
    DecodeStrategy strategy, std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const std::vector<typename F::rep>> shares,
    std::size_t seg_len) {
  const auto rows = share_row_ptrs<F>(shares);
  return decode_eval<F>(strategy, xs, betas,
                        std::span<const typename F::rep* const>(rows),
                        seg_len);
}

}  // namespace lsa::coding
